package rumble

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// writeRowsJSONL writes n rows {"v": i, "k": i mod 3} and returns the path.
func writeRowsJSONL(t *testing.T, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, `{"v": %d, "k": %d}`+"\n", i, i%3)
	}
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLetRDDCachedComputedOnce pins the caching satellite with metrics: a
// leading let over json-file consumed by two pushed-down aggregates must
// read the file exactly once — the bound RDD is spark-cached, so the
// second action replays from memory instead of re-scanning.
func TestLetRDDCachedComputedOnce(t *testing.T) {
	const n = 500
	path := writeRowsJSONL(t, n)
	eng := New(Config{Parallelism: 4, Executors: 4})
	query := fmt.Sprintf(`
		let $d := json-file(%q)
		return { "n": count($d), "s": sum($d.v) }`, path)
	st, err := eng.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	eng.ResetMetrics()
	res, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d items", len(res))
	}
	obj := res[0].(*Object)
	if cnt, _ := obj.Get("n"); int64(cnt.(Int)) != n {
		t.Errorf("count = %v", cnt)
	}
	if sum, _ := obj.Get("s"); int64(sum.(Int)) != n*(n+1)/2 {
		t.Errorf("sum = %v", sum)
	}
	if got := eng.Metrics().RecordsRead; got != n {
		t.Errorf("RecordsRead = %d, want %d (pipeline must compute exactly once)", got, n)
	}
	// Re-executing the same compiled statement re-reads the input: caches
	// are per-evaluation, not baked into the plan.
	if _, err := st.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().RecordsRead; got != 2*n {
		t.Errorf("RecordsRead after rerun = %d, want %d", got, 2*n)
	}
}

// TestLetRDDAggregatePushdown checks that references to a cluster-bound
// let push aggregation down to cluster actions (visible as plan pushdown
// markers and a cluster-bound let in the explain output).
func TestLetRDDAggregatePushdown(t *testing.T) {
	eng := New(Config{})
	plan, err := eng.Explain(`
		let $d := json-file("rows.jsonl")
		return (count($d), sum($d.v))`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "let $d [cluster-bound, cached]") {
		t.Errorf("plan lacks the cluster-bound cached let:\n%s", plan)
	}
	if strings.Count(plan, "(cluster pushdown)") != 2 {
		t.Errorf("both aggregates should push down:\n%s", plan)
	}
	if !strings.Contains(plan, "$d [RDD]") {
		t.Errorf("references to $d should be RDD-mode:\n%s", plan)
	}
	// A single consumer binds the RDD without the cache.
	plan, err = eng.Explain(`let $d := json-file("rows.jsonl") return count($d)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "let $d [cluster-bound]") || strings.Contains(plan, "cached") {
		t.Errorf("single-use let should bind uncached:\n%s", plan)
	}
}

// TestLetRDDDataFrameHead checks that a for clause directly over a
// cluster-bound let heads a DataFrame plan.
func TestLetRDDDataFrameHead(t *testing.T) {
	path := writeRowsJSONL(t, 20)
	eng := New(Config{Parallelism: 2, Executors: 2})
	query := fmt.Sprintf(`
		let $d := json-file(%q)
		for $x in $d
		where $x.v ge 18
		return $x.v`, path)
	st, err := eng.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode() != "DataFrame" {
		t.Errorf("mode = %s, want DataFrame", st.Mode())
	}
	res, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int64, len(res))
	for i, it := range res {
		got[i] = int64(it.(Int))
	}
	if len(got) != 3 || got[0] != 18 || got[1] != 19 || got[2] != 20 {
		t.Errorf("result = %v", got)
	}
}

// TestLetRDDGroupByExcluded pins the semantic guard: with a group-by in
// the FLWOR, a leading parallel let must NOT hoist, because grouping
// re-binds non-grouping variables to their per-group concatenation.
func TestLetRDDGroupByExcluded(t *testing.T) {
	eng := New(Config{Parallelism: 2, Executors: 2})
	plan, err := eng.Explain(`
		let $d := parallelize(1 to 3)
		for $o in parallelize((1, 1, 2))
		group by $k := $o
		return count($d)`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "cluster-bound") {
		t.Errorf("let before group-by must not hoist:\n%s", plan)
	}
	res, err := eng.QueryJSON(`
		let $d := parallelize(1 to 3)
		for $o in parallelize((1, 1, 2))
		group by $k := $o
		return count($d)`)
	if err != nil {
		t.Fatal(err)
	}
	// JSONiq group-by semantics: $d concatenates across each group's
	// tuples — 2 tuples × 3 items, then 1 × 3.
	if len(res) != 2 || res[0] != "6" || res[1] != "3" {
		t.Errorf("group-by over let = %v", res)
	}
}

// TestLetRDDShadowing checks mode tracking under shadowing: a local
// re-binding of the same name must win over the outer cluster binding.
func TestLetRDDShadowing(t *testing.T) {
	eng := New(Config{Parallelism: 2, Executors: 2})
	res, err := eng.QueryJSON(`
		let $x := parallelize(1 to 10)
		let $x := count($x)
		return $x + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != "11" {
		t.Errorf("shadowed let = %v", res)
	}
}

// TestLetRDDStatementConcurrent runs one compiled statement with a cached
// cluster-bound let from many goroutines at once (meaningful under -race):
// evaluations must not share cache state or corrupt results.
func TestLetRDDStatementConcurrent(t *testing.T) {
	const n = 200
	path := writeRowsJSONL(t, n)
	eng := New(Config{Parallelism: 4, Executors: 4})
	st, err := eng.Compile(fmt.Sprintf(`
		let $d := json-file(%q)
		return count($d) + sum($d.k)`, path))
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				got, err := st.Collect()
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 1 || got[0] != want[0] {
					errs <- fmt.Errorf("concurrent run got %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

package rumble

import (
	"strings"
	"testing"

	"rumble/internal/compiler"
	"rumble/internal/parser"
)

// TestConformancePlansVerify runs the plan verifier over every conformance
// query's analysis result, with the vector backend both off and on: the
// entire known-good corpus must produce invariant-clean plans. Queries that
// fail parsing or static analysis are skipped — those are the wantErr
// static-error cases, which never reach the verifier in production either.
func TestConformancePlansVerify(t *testing.T) {
	for _, vectorize := range []bool{false, true} {
		opts := compiler.Options{Cluster: true, Vectorize: vectorize, Executors: 4}
		for name, c := range conformanceCases {
			m, err := parser.Parse(c.query)
			if err != nil {
				continue
			}
			info, err := compiler.Analyze(m, opts)
			if err != nil {
				continue
			}
			if err := compiler.Verify(m, info); err != nil {
				t.Errorf("%s (vectorize=%v): conformance plan failed verification:\n%v\nquery: %s",
					name, vectorize, err, c.query)
			}
		}
	}
}

// TestConformanceWithVerifyPlans re-runs the conformance table through an
// engine with plan verification (and the vector backend) enabled: turning
// the verifier on must not change a single result. This exercises the
// runtime.Compile hook end to end, the same path RUMBLE_VERIFY_PLANS=1
// takes in the server.
func TestConformanceWithVerifyPlans(t *testing.T) {
	e := New(Config{Parallelism: 4, Executors: 4, Vectorize: true, VerifyPlans: true})
	for name, c := range conformanceCases {
		t.Run(name, func(t *testing.T) {
			out, err := e.QueryJSON(c.query)
			if c.wantErr {
				if err == nil {
					t.Fatalf("query %s should fail, got %v", c.query, out)
				}
				return
			}
			if err != nil {
				t.Fatalf("query failed: %v\n%s", err, c.query)
			}
			if got := strings.Join(out, "\n"); got != c.want {
				t.Errorf("got:\n%s\nwant:\n%s\nquery: %s", got, c.want, c.query)
			}
		})
	}
}

package rumble

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSimpleMapOperator(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`(1, 2, 3) ! ($$ * 10)`:           "10\n20\n30",
		`(1 to 3) ! { "v": $$ }`:          `{"v" : 1}` + "\n" + `{"v" : 2}` + "\n" + `{"v" : 3}`,
		`("a", "bb") ! string-length($$)`: "1\n2",
		`(1, 2) ! ($$ , $$)`:              "1\n1\n2\n2",
		`({"a": {"b": 5}}) ! $$.a ! $$.b`: "5",
	}
	for q, want := range cases {
		got := strings.Join(run(t, e, q), "\n")
		if got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestSimpleMapOnRDD(t *testing.T) {
	e := newTestEngine()
	st, err := e.Compile(`parallelize(1 to 100) ! ($$ + 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsParallel() {
		t.Error("simple map over an RDD should stay parallel")
	}
	out, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 || int64(out[0].(Int)) != 2 || int64(out[99].(Int)) != 101 {
		t.Errorf("simple map RDD = %d items, first %v", len(out), out[0])
	}
}

func TestDeepEqualFunction(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`deep-equal({"a": [1, 2]}, {"a": [1, 2]})`:       "true",
		`deep-equal({"a": 1, "b": 2}, {"b": 2, "a": 1})`: "true",
		`deep-equal([1], [1, 1])`:                        "false",
		`deep-equal((1, 2), (1, 2))`:                     "true",
		`deep-equal((1, 2), (2, 1))`:                     "false",
		`deep-equal((), ())`:                             "true",
		`deep-equal(2, 2.0)`:                             "true",
	}
	for q, want := range cases {
		if got := runOne(t, e, q); got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

// TestRandomizedLocalVsParallelEquivalence is the central data-independence
// property, fuzzed: random heterogeneous datasets must produce identical
// results locally and on the cluster for a set of query shapes.
func TestRandomizedLocalVsParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	genDoc := func() string {
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf(`{"k": %d, "v": %d}`, rng.Intn(5), rng.Intn(100))
		case 1:
			return fmt.Sprintf(`{"k": "s%d", "v": %d}`, rng.Intn(3), rng.Intn(100))
		case 2:
			return fmt.Sprintf(`{"k": [%d, %d], "v": %d}`, rng.Intn(3), rng.Intn(3), rng.Intn(100))
		case 3:
			return fmt.Sprintf(`{"v": %d}`, rng.Intn(100)) // k absent
		default:
			return fmt.Sprintf(`{"k": null, "v": %d.%d}`, rng.Intn(10), rng.Intn(99))
		}
	}
	queries := []string{
		`for $o in json-file(%q) where $o.v ge 50 return $o.v`,
		`for $o in json-file(%q) group by $k := ($o.k[], $o.k, "none")[1] order by string($k) return { "k": $k, "n": count($o), "sum": sum($o.v) }`,
		`for $o in json-file(%q) order by $o.v descending, ($o.k[], $o.k, "zz")[1] ascending count $c where $c le 7 return $o.v`,
		`count(json-file(%q)[$$.v lt 25])`,
	}
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "data.jsonl")
		var sb strings.Builder
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			sb.WriteString(genDoc())
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		parallel := New(Config{Parallelism: 4, Executors: 4, SplitSize: 512})
		local := New(Config{})
		local.env.Spark = nil
		for _, tmpl := range queries {
			q := fmt.Sprintf(tmpl, path)
			pres, perr := parallel.QueryJSON(q)
			lres, lerr := local.QueryJSON(q)
			if (perr == nil) != (lerr == nil) {
				t.Fatalf("round %d: error divergence: parallel=%v local=%v\nquery: %s", round, perr, lerr, q)
			}
			if perr != nil {
				continue
			}
			if !reflect.DeepEqual(pres, lres) {
				t.Fatalf("round %d: results diverge\nquery: %s\nparallel: %v\nlocal: %v", round, q, pres, lres)
			}
		}
	}
}

// Property: count(filter p) + count(filter not p) == count(all) through
// full JSONiq queries.
func TestFilterPartitionProperty(t *testing.T) {
	e := newTestEngine()
	f := func(limit uint8) bool {
		n := int(limit)%200 + 1
		q1 := fmt.Sprintf(`count(for $x in parallelize(1 to %d) where $x mod 3 eq 0 return $x)`, n)
		q2 := fmt.Sprintf(`count(for $x in parallelize(1 to %d) where not($x mod 3 eq 0) return $x)`, n)
		a, err1 := e.Query(q1)
		b, err2 := e.Query(q2)
		if err1 != nil || err2 != nil {
			return false
		}
		return int64(a[0].(Int))+int64(b[0].(Int)) == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: group-by partitions the input: group counts sum to the input
// size for arbitrary modulus keys.
func TestGroupByPartitionProperty(t *testing.T) {
	e := newTestEngine()
	f := func(limit, mod uint8) bool {
		n := int(limit)%300 + 1
		m := int(mod)%7 + 2
		q := fmt.Sprintf(`sum(for $x in parallelize(1 to %d) group by $k := $x mod %d return count($x))`, n, m)
		out, err := e.Query(q)
		if err != nil {
			return false
		}
		return int64(out[0].(Int)) == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: order-by emits a permutation (count preserved, multiset equal).
func TestOrderByPermutationProperty(t *testing.T) {
	e := newTestEngine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		vals := make([]string, n)
		var sum int64
		for i := range vals {
			v := rng.Intn(50)
			sum += int64(v)
			vals[i] = fmt.Sprint(v)
		}
		q := fmt.Sprintf(`sum(for $x in parallelize((%s)) order by $x return $x)`, strings.Join(vals, ","))
		out, err := e.Query(q)
		if err != nil {
			return false
		}
		return int64(out[0].(Int)) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestUDFErrorInsideParallelQuery(t *testing.T) {
	// failure injection: a UDF raising an error inside a DataFrame UDF must
	// abort the whole job with that error, not hang or panic.
	e := newTestEngine()
	q := `
	declare function local:check($x) {
	  if ($x eq 57) then error("bad record 57") else $x
	};
	for $x in parallelize(1 to 100) return local:check($x)`
	_, err := e.Query(q)
	if err == nil || !strings.Contains(err.Error(), "bad record 57") {
		t.Errorf("err = %v, want the injected failure", err)
	}
}

func TestErrorInsideOrderKeyAborts(t *testing.T) {
	e := newTestEngine()
	q := `for $x in parallelize((1, 2, 0)) order by (10 div $x) return $x`
	if _, err := e.Query(q); err == nil {
		t.Error("division by zero in an order key should abort")
	}
}

func TestTryCatchAroundParallelFailure(t *testing.T) {
	e := newTestEngine()
	got := runOne(t, e, `
	try {
	  sum(for $x in parallelize((1, 2, 0)) return 10 idiv $x)
	} catch * { "rescued" }`)
	if got != `"rescued"` {
		t.Errorf("try/catch over cluster failure = %s", got)
	}
}

func TestWriteToFailurePropagates(t *testing.T) {
	e := newTestEngine()
	st, err := e.Compile(`parallelize(1 to 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteTo("/proc/definitely/not/writable"); err == nil {
		t.Error("writing to an unwritable directory should error")
	}
}

func TestDeeplyNestedNavigation(t *testing.T) {
	e := newTestEngine()
	depth := 40
	doc := strings.Repeat(`{"n":`, depth) + "42" + strings.Repeat("}", depth)
	if err := e.RegisterJSON("deep", []string{doc}); err != nil {
		t.Fatal(err)
	}
	q := `collection("deep")` + strings.Repeat(".n", depth)
	if got := runOne(t, e, q); got != "42" {
		t.Errorf("deep navigation = %s", got)
	}
}

func TestLargeGroupCardinality(t *testing.T) {
	// one group per element: stresses the shuffle with maximal key count
	e := newTestEngine()
	got := runOne(t, e, `count(for $x in parallelize(1 to 5000) group by $k := $x return $k)`)
	if got != "5000" {
		t.Errorf("distinct groups = %s", got)
	}
}

func TestStringsWithSeparatorBytesInGroupKeys(t *testing.T) {
	// Group keys containing the encoding's separator control characters
	// must not collide ("x\u001f" + "y" versus "x" + "\u001fy").
	e := newTestEngine()
	if err := e.RegisterJSON("tricky", []string{
		`{"a": "x\u001f", "b": "y"}`,
		`{"a": "x", "b": "\u001fy"}`,
	}); err != nil {
		t.Fatal(err)
	}
	got := runOne(t, e, `count(for $o in collection("tricky") group by $a := $o.a, $b := $o.b return 1)`)
	if got != "2" {
		t.Errorf("separator-byte keys collapsed: %s groups", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	e := newTestEngine()
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runOne(t, e, fmt.Sprintf(`count(json-file(%q))`, path)); got != "0" {
		t.Errorf("count of empty file = %s", got)
	}
	out := run(t, e, fmt.Sprintf(`for $o in json-file(%q) group by $k := $o.x return $k`, path))
	if len(out) != 0 {
		t.Errorf("group over empty input = %v", out)
	}
}

func TestConcurrentQueriesOnOneEngine(t *testing.T) {
	e := newTestEngine()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			out, err := e.Query(fmt.Sprintf(`sum(parallelize(1 to %d))`, 100+i))
			if err == nil {
				want := int64((100 + i) * (101 + i) / 2)
				if int64(out[0].(Int)) != want {
					err = fmt.Errorf("goroutine %d: sum = %v, want %d", i, out[0], want)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestCompiledStatementReuse(t *testing.T) {
	e := newTestEngine()
	if err := e.RegisterJSON("r", []string{`{"v": 1}`, `{"v": 2}`}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Compile(`sum(collection("r").v)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, err := st.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if int64(out[0].(Int)) != 3 {
			t.Fatalf("run %d: %v", i, out[0])
		}
	}
}

func TestShadowingAcrossClauses(t *testing.T) {
	e := newTestEngine()
	got := strings.Join(run(t, e, `
		for $x in (1, 2)
		let $x := $x * 10
		let $x := $x + 1
		return $x`), "\n")
	if got != "11\n21" {
		t.Errorf("shadowing = %s", got)
	}
}

func TestGroupByAfterCountClause(t *testing.T) {
	e := newTestEngine()
	got := strings.Join(run(t, e, `
		for $x in parallelize(1 to 10)
		count $c
		group by $parity := $c mod 2
		order by $parity
		return { "p": $parity, "n": count($x) }`), "\n")
	want := `{"p" : 0, "n" : 5}` + "\n" + `{"p" : 1, "n" : 5}`
	if got != want {
		t.Errorf("group after count = %s", got)
	}
}

func TestWhereBetweenGroupAndOrder(t *testing.T) {
	// having-style filtering after group by
	e := newTestEngine()
	got := strings.Join(run(t, e, `
		for $x in parallelize(1 to 100)
		group by $k := $x mod 10
		where count($x) ge 10
		order by $k
		return $k`), "\n")
	if len(strings.Split(got, "\n")) != 10 {
		t.Errorf("having filter = %s", got)
	}
}

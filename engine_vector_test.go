package rumble

import (
	"math"
	"sort"
	"strings"
	"testing"

	"rumble/internal/item"
)

// vectorConformanceData builds the shared test collections, including
// values JSON text cannot express (NaN, -0.0, integers beyond 2^53).
func vectorConformanceData(t *testing.T, eng *Engine) {
	t.Helper()
	if err := eng.RegisterJSON("games", []string{
		`{"guess":"fr","target":"fr","score":3,"country":"CH"}`,
		`{"guess":"de","target":"fr","score":5,"country":"CH"}`,
		`{"guess":"fr","target":"fr","score":7,"country":"FR"}`,
		`{"guess":"en","target":"en","score":1,"country":"US"}`,
		`{"guess":"en","target":"en","score":2,"country":"US"}`,
		`{"guess":"it","target":"es","score":9,"country":"IT"}`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterJSON("messy", []string{
		`{"k":1,"v":10}`,
		`{"k":1.0,"v":20}`,
		`{"k":null,"v":30}`,
		`{"v":40}`,
		`{"k":"1","v":50}`,
		`{"k":true,"v":60}`,
		`{"k":2,"v":{"nested":1}}`,
	}); err != nil {
		t.Fatal(err)
	}
	// Values JSON text can't carry: NaN keys, -0.0, integers beyond 2^53.
	mk := func(k item.Item, w int64) Item {
		return item.NewObject([]string{"k", "w"}, []item.Item{k, item.Int(w)})
	}
	eng.RegisterItems("edge", []Item{
		mk(item.Double(math.NaN()), 1),
		mk(item.Double(math.NaN()), 2),
		mk(item.Double(math.Copysign(0, -1)), 3),
		mk(item.Double(0), 4),
		mk(item.Int(1<<53), 5),
		mk(item.Int(1<<53+1), 6),
		mk(item.Double(1<<53), 7),
	})
	if err := eng.RegisterJSON("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterJSON("strnum", []string{
		`{"n":1,"s":5}`,
		`{"n":2,"s":"a"}`,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestVectorLocalConformance asserts that every vector-eligible query
// shape produces identical results with --vectorize on and off. The
// streamed (local) results must match exactly — the vector backend mirrors
// the tuple pipeline's order — while collected results (which may run as
// DataFrames when vectorization is off) must match as multisets, since
// group output order across the shuffle is implementation-defined.
func TestVectorLocalConformance(t *testing.T) {
	cases := []struct {
		name     string
		query    string
		wantMode string // mode pinned on the vectorizing engine ("" = skip)
		wantErr  bool
	}{
		{
			name: "filter project object",
			query: `for $o in collection("games")
				where $o.score ge 3 and $o.guess eq $o.target
				return { "lang": $o.target, "score": $o.score }`,
			wantMode: "Vector",
		},
		{
			name: "group count rewrite",
			query: `for $o in collection("games")
				group by $t := $o.target
				return { "t": $t, "n": count($o) }`,
			wantMode: "Vector",
		},
		{
			name: "group count sum avg min max",
			query: `for $o in collection("games")
				where $o.guess eq $o.target
				group by $t := $o.target
				return { "t": $t, "n": count($o), "sum": sum($o.score),
					"avg": avg($o.score), "min": min($o.score), "max": max($o.score) }`,
			wantMode: "Vector",
		},
		{
			name: "group by two keys",
			query: `for $o in collection("games")
				group by $c := $o.country, $t := $o.target
				return { "c": $c, "t": $t, "n": count($o) }`,
			wantMode: "Vector",
		},
		{
			name: "let and arithmetic",
			query: `for $o in collection("games")
				let $boost := $o.score * 2 + 1
				where $boost gt 5
				return $boost`,
			wantMode: "Vector",
		},
		{
			name: "contains filter",
			query: `for $o in collection("games")
				where contains($o.country, "S")
				return $o.target`,
			wantMode: "Vector",
		},
		{
			name: "mixed numeric null and absent group keys",
			query: `for $o in collection("messy")
				group by $k := $o.k
				return { "k": $k, "n": count($o) }`,
			wantMode: "Vector",
		},
		{
			name: "nan and exact-int group keys",
			query: `for $o in collection("edge")
				group by $k := $o.k
				return { "k": $k, "n": count($o), "w": sum($o.w) }`,
			wantMode: "Vector",
		},
		{
			name: "count of possibly-absent path",
			query: `for $o in collection("messy")
				group by $g := true
				return { "present": count($o.k), "rows": count($o) }`,
			wantMode: "Vector",
		},
		{
			name: "min max over absent fields",
			query: `for $o in collection("games")
				group by $t := $o.target
				return { "t": $t, "m": min($o.missing) }`,
			wantMode: "Vector",
		},
		{
			name: "decimal literal filter",
			query: `for $o in collection("games")
				where $o.score gt 2.5
				return $o.score`,
			wantMode: "Vector",
		},
		{
			name: "array constructor return",
			query: `for $o in collection("games")
				where $o.score lt 4
				return [ $o.target ]`,
			wantMode: "Vector",
		},
		{
			name: "unary minus projection",
			query: `for $o in collection("games")
				return -$o.score`,
			wantMode: "Vector",
		},
		{
			name: "or short-circuit avoids right error",
			query: `for $o in collection("strnum")
				where $o.n eq 1 or $o.s eq "a"
				return $o.n`,
			wantMode: "Vector",
		},
		{
			name: "string number compare errors",
			query: `for $o in collection("strnum")
				where $o.s eq "a"
				return $o.n`,
			wantMode: "Vector",
			wantErr:  true,
		},
		{
			name: "sum over non-numeric errors",
			query: `for $o in collection("messy")
				group by $g := true
				return sum($o.v)`,
			wantMode: "Vector",
			wantErr:  true,
		},
		{
			name: "arithmetic on object errors",
			query: `for $o in collection("messy")
				where $o.k eq 2
				return $o.v + 1`,
			wantMode: "Vector",
			wantErr:  true,
		},
		{
			name: "empty input",
			query: `for $o in collection("empty")
				group by $t := $o.x
				return { "t": $t, "n": count($o) }`,
			wantMode: "Vector",
		},
		{
			name: "external scalar variable",
			query: `declare variable $threshold := 4;
				for $o in collection("games")
				where $o.score ge $threshold
				return $o.score`,
			wantMode: "Vector",
		},
		{
			name: "external sequence variable falls back",
			query: `declare variable $tags := ("a", "b");
				for $o in collection("games")
				where $o.score gt 8
				return $tags`,
			wantMode: "Vector",
		},
		{
			name: "nested eligible pipeline per outer tuple",
			query: `for $min in (2, 6)
				return count(for $o in collection("games")
					where $o.score ge $min
					return $o)`,
		},
		// Ineligible shapes keep their non-vector mode but must still agree.
		{
			name: "order by stays non-vector",
			query: `for $o in collection("games")
				order by $o.score descending
				return $o.score`,
			wantMode: "DataFrame",
		},
		{
			name: "positional variable stays non-vector",
			query: `for $o at $i in collection("games")
				return $i * $o.score`,
			wantMode: "DataFrame",
		},
	}

	plain := New(Config{Parallelism: 2, Executors: 2})
	vectorized := New(Config{Parallelism: 2, Executors: 2, Vectorize: true})
	vectorConformanceData(t, plain)
	vectorConformanceData(t, vectorized)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps, perr := plain.Compile(tc.query)
			vs, verr := vectorized.Compile(tc.query)
			if perr != nil || verr != nil {
				t.Fatalf("compile: plain=%v vectorized=%v", perr, verr)
			}
			if tc.wantMode != "" && vs.Mode() != tc.wantMode {
				t.Fatalf("vectorized mode = %s, want %s", vs.Mode(), tc.wantMode)
			}

			// Streamed evaluation compares the two local backends directly:
			// tuple pipeline vs columnar pipeline, order and all.
			pItems, pErr := streamAll(ps)
			vItems, vErr := streamAll(vs)
			if tc.wantErr {
				if pErr == nil || vErr == nil {
					t.Fatalf("want error from both backends, got plain=%v vectorized=%v", pErr, vErr)
				}
				return
			}
			if pErr != nil || vErr != nil {
				t.Fatalf("stream: plain=%v vectorized=%v", pErr, vErr)
			}
			if got, want := item.SerializeSequence(vItems), item.SerializeSequence(pItems); got != want {
				t.Fatalf("streamed results differ\nvector:\n%s\ntuple:\n%s", got, want)
			}

			// Collected evaluation may route the plain engine through the
			// DataFrame backend; compare as multisets.
			pc, pErr := ps.Collect()
			vc, vErr := vs.Collect()
			if pErr != nil || vErr != nil {
				t.Fatalf("collect: plain=%v vectorized=%v", pErr, vErr)
			}
			if got, want := sortedLines(vc), sortedLines(pc); got != want {
				t.Fatalf("collected results differ\nvector:\n%s\nplain:\n%s", got, want)
			}
		})
	}
}

// streamAll materializes a statement through the streaming API, which
// always runs the local backend (tuple or vector) of the root plan.
func streamAll(st *Statement) ([]Item, error) {
	var out []Item
	err := st.Stream(func(it Item) error {
		out = append(out, it)
		return nil
	})
	return out, err
}

func sortedLines(items []Item) string {
	lines := make([]string, len(items))
	for i, it := range items {
		lines[i] = string(it.AppendJSON(nil))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

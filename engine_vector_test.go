package rumble

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rumble/internal/item"
)

// vectorConformanceJSON is the JSON-Lines text of every text-expressible
// conformance collection: vectorConformanceData registers it in-memory,
// and the segment conformance test writes it to storage files so the same
// query corpus runs file-backed (raw scan) and segment-backed.
func vectorConformanceJSON() map[string][]string {
	m := map[string][]string{
		"games": {
			`{"guess":"fr","target":"fr","score":3,"country":"CH"}`,
			`{"guess":"de","target":"fr","score":5,"country":"CH"}`,
			`{"guess":"fr","target":"fr","score":7,"country":"FR"}`,
			`{"guess":"en","target":"en","score":1,"country":"US"}`,
			`{"guess":"en","target":"en","score":2,"country":"US"}`,
			`{"guess":"it","target":"es","score":9,"country":"IT"}`,
		},
		"messy": {
			`{"k":1,"v":10}`,
			`{"k":1.0,"v":20}`,
			`{"k":null,"v":30}`,
			`{"v":40}`,
			`{"k":"1","v":50}`,
			`{"k":true,"v":60}`,
			`{"k":2,"v":{"nested":1}}`,
		},
		"empty": nil,
		// Join dimensions: duplicate codes (multi-match expansion), a null
		// key (eq null matches null) and an absent key (matches nothing).
		"langs": {
			`{"code":"fr","name":"French"}`,
			`{"code":"en","name":"English"}`,
			`{"code":"fr","name":"Français"}`,
			`{"code":null,"name":"nullish"}`,
			`{"name":"keyless"}`,
		},
		"nulls": {
			`{"k":null,"v":1}`,
			`{"k":1,"v":2}`,
			`{"v":3}`,
		},
		"dims": {
			`{"g":0,"name":"zero"}`,
			`{"g":1,"name":"one"}`,
			`{"g":2,"name":"two"}`,
			`{"g":3,"name":"three"}`,
			`{"g":5,"name":"five"}`,
		},
		"strnum": {
			`{"n":1,"s":5}`,
			`{"n":2,"s":"a"}`,
		},
	}
	// Multi-morsel collections (5000 rows > 4 × vector.BatchSize), so the
	// parallel backend actually splits the scan: "wide" is clean, "widebad"
	// plants differently-typed poison rows in different morsels — the
	// error of the earliest scan position must win at every worker count.
	wide := make([]string, 5000)
	widebad := make([]string, 5000)
	for i := range wide {
		wide[i] = fmt.Sprintf(`{"g":%d,"v":%d}`, i%7, i)
		switch i {
		case 1500:
			widebad[i] = fmt.Sprintf(`{"g":%d,"v":"poison"}`, i%7)
		case 3500:
			widebad[i] = fmt.Sprintf(`{"g":%d,"v":{"nested":1}}`, i%7)
		default:
			widebad[i] = wide[i]
		}
	}
	m["wide"], m["widebad"] = wide, widebad
	// Doubles whose sum is rounding-sensitive: a large head followed by
	// thousands of small addends spanning several morsels.
	floats := make([]string, 3000)
	floats[0] = `{"g":0,"v":1e16}`
	for i := 1; i < len(floats); i++ {
		floats[i] = fmt.Sprintf(`{"g":%d,"v":0.1}`, i%3)
	}
	m["floats"] = floats
	// String-heavy collection for the dictionary lanes: 1500 rows (more
	// than one morsel) cycling 40 distinct strings, embedded NUL escapes,
	// and a duplicate-key row mid-stream — segment ingest stores that row
	// as an exact-item overflow, so projected decodes must reconcile lane
	// codes with overflow lookups inside one segment.
	dict := make([]string, 1500)
	for i := range dict {
		dict[i] = fmt.Sprintf(`{"s":"s%02d","i":%d,"t":"tag\u0000%d"}`, i%40, i, i%5)
	}
	dict[700] = `{"s":"dup","s":"later","i":700,"t":"x"}`
	m["dict"] = dict
	return m
}

// registerEdgeCollection registers the in-memory "edge" collection, whose
// values JSON text cannot express (NaN keys, -0.0, integers beyond 2^53).
func registerEdgeCollection(eng *Engine) {
	mk := func(k item.Item, w int64) Item {
		return item.NewObject([]string{"k", "w"}, []item.Item{k, item.Int(w)})
	}
	eng.RegisterItems("edge", []Item{
		mk(item.Double(math.NaN()), 1),
		mk(item.Double(math.NaN()), 2),
		mk(item.Double(math.Copysign(0, -1)), 3),
		mk(item.Double(0), 4),
		mk(item.Int(1<<53), 5),
		mk(item.Int(1<<53+1), 6),
		mk(item.Double(1<<53), 7),
	})
}

// vectorConformanceData builds the shared test collections, including
// values JSON text cannot express (NaN, -0.0, integers beyond 2^53).
func vectorConformanceData(t *testing.T, eng *Engine) {
	t.Helper()
	for name, lines := range vectorConformanceJSON() {
		if err := eng.RegisterJSON(name, lines); err != nil {
			t.Fatalf("collection %s: %v", name, err)
		}
	}
	registerEdgeCollection(eng)
}

// vectorConformanceCase is one entry of the vector query corpus, shared
// by the vector-vs-tuple and segment-vs-raw conformance tests.
type vectorConformanceCase struct {
	name     string
	query    string
	wantMode string // mode pinned on the vectorizing engines ("" = skip)
	wantErr  bool
	// wantErrIn pins a substring of the deterministic first error
	// (e.g. the type of the lowest-scan-position poison row).
	wantErrIn string
	// floatSum marks double-valued sums: per-morsel partials merged in
	// scan order may differ from the tuple fold in the last units of
	// precision (float addition is not associative), so the tuple
	// comparison is skipped — cross-worker-count identity still holds.
	floatSum bool
}

// vectorConformanceCases is the vector-eligible query corpus over the
// shared conformance collections.
var vectorConformanceCases = []vectorConformanceCase{
	{
		name: "filter project object",
		query: `for $o in collection("games")
				where $o.score ge 3 and $o.guess eq $o.target
				return { "lang": $o.target, "score": $o.score }`,
		wantMode: "Vector",
	},
	{
		name: "group count rewrite",
		query: `for $o in collection("games")
				group by $t := $o.target
				return { "t": $t, "n": count($o) }`,
		wantMode: "Vector",
	},
	{
		name: "group count sum avg min max",
		query: `for $o in collection("games")
				where $o.guess eq $o.target
				group by $t := $o.target
				return { "t": $t, "n": count($o), "sum": sum($o.score),
					"avg": avg($o.score), "min": min($o.score), "max": max($o.score) }`,
		wantMode: "Vector",
	},
	{
		name: "group by two keys",
		query: `for $o in collection("games")
				group by $c := $o.country, $t := $o.target
				return { "c": $c, "t": $t, "n": count($o) }`,
		wantMode: "Vector",
	},
	{
		name: "let and arithmetic",
		query: `for $o in collection("games")
				let $boost := $o.score * 2 + 1
				where $boost gt 5
				return $boost`,
		wantMode: "Vector",
	},
	{
		name: "contains filter",
		query: `for $o in collection("games")
				where contains($o.country, "S")
				return $o.target`,
		wantMode: "Vector",
	},
	{
		name: "mixed numeric null and absent group keys",
		query: `for $o in collection("messy")
				group by $k := $o.k
				return { "k": $k, "n": count($o) }`,
		wantMode: "Vector",
	},
	{
		name: "nan and exact-int group keys",
		query: `for $o in collection("edge")
				group by $k := $o.k
				return { "k": $k, "n": count($o), "w": sum($o.w) }`,
		wantMode: "Vector",
	},
	{
		name: "count of possibly-absent path",
		query: `for $o in collection("messy")
				group by $g := true
				return { "present": count($o.k), "rows": count($o) }`,
		wantMode: "Vector",
	},
	{
		name: "min max over absent fields",
		query: `for $o in collection("games")
				group by $t := $o.target
				return { "t": $t, "m": min($o.missing) }`,
		wantMode: "Vector",
	},
	{
		name: "decimal literal filter",
		query: `for $o in collection("games")
				where $o.score gt 2.5
				return $o.score`,
		wantMode: "Vector",
	},
	{
		name: "array constructor return",
		query: `for $o in collection("games")
				where $o.score lt 4
				return [ $o.target ]`,
		wantMode: "Vector",
	},
	{
		name: "unary minus projection",
		query: `for $o in collection("games")
				return -$o.score`,
		wantMode: "Vector",
	},
	{
		name: "or short-circuit avoids right error",
		query: `for $o in collection("strnum")
				where $o.n eq 1 or $o.s eq "a"
				return $o.n`,
		wantMode: "Vector",
	},
	{
		name: "string number compare errors",
		query: `for $o in collection("strnum")
				where $o.s eq "a"
				return $o.n`,
		wantMode: "Vector",
		wantErr:  true,
	},
	{
		name: "sum over non-numeric errors",
		query: `for $o in collection("messy")
				group by $g := true
				return sum($o.v)`,
		wantMode: "Vector",
		wantErr:  true,
	},
	{
		name: "arithmetic on object errors",
		query: `for $o in collection("messy")
				where $o.k eq 2
				return $o.v + 1`,
		wantMode: "Vector",
		wantErr:  true,
	},
	{
		name: "empty input",
		query: `for $o in collection("empty")
				group by $t := $o.x
				return { "t": $t, "n": count($o) }`,
		wantMode: "Vector",
	},
	{
		name: "external scalar variable",
		query: `declare variable $threshold := 4;
				for $o in collection("games")
				where $o.score ge $threshold
				return $o.score`,
		wantMode: "Vector",
	},
	{
		name: "external sequence variable falls back",
		query: `declare variable $tags := ("a", "b");
				for $o in collection("games")
				where $o.score gt 8
				return $tags`,
		wantMode: "Vector",
	},
	{
		name: "nested eligible pipeline per outer tuple",
		query: `for $min in (2, 6)
				return count(for $o in collection("games")
					where $o.score ge $min
					return $o)`,
	},
	// Grand aggregates: count/sum/avg/min/max over a filtered scan fold
	// inside the columnar backend with mergeable accumulators.
	{
		name: "grand count over filtered scan",
		query: `count(for $o in collection("games")
				where $o.score ge 3 return $o)`,
		wantMode: "Vector",
	},
	{
		name: "grand sum over path",
		query: `sum(for $o in collection("games")
				where $o.guess eq $o.target return $o.score)`,
		wantMode: "Vector",
	},
	{
		name:     "grand avg",
		query:    `avg(for $o in collection("games") return $o.score)`,
		wantMode: "Vector",
	},
	{
		name:     "grand min over absent field is empty",
		query:    `min(for $o in collection("games") return $o.missing)`,
		wantMode: "Vector",
	},
	{
		name:     "grand max",
		query:    `max(for $o in collection("games") return $o.score)`,
		wantMode: "Vector",
	},
	{
		name:     "grand sum over empty scan is zero",
		query:    `sum(for $o in collection("empty") return $o.x)`,
		wantMode: "Vector",
	},
	{
		name:     "grand avg over empty scan is empty",
		query:    `avg(for $o in collection("empty") return $o.x)`,
		wantMode: "Vector",
	},
	{
		name:     "grand sum exact beyond 2^53",
		query:    `sum(for $o in collection("edge") return $o.k)`,
		wantMode: "Vector",
		wantErr:  false,
	},
	{
		name:      "grand sum over non-numeric errors",
		query:     `sum(for $o in collection("messy") return $o.v)`,
		wantMode:  "Vector",
		wantErr:   true,
		wantErrIn: "object",
	},
	{
		name: "grand count over cluster-bound let head",
		query: `count(let $d := collection("games")
				for $x in $d where $x.score ge 3 return $x)`,
		wantMode: "Vector",
	},
	{
		name: "grand count with multi-item external falls back",
		query: `declare variable $tags := ("a", "b");
				count(for $o in collection("games")
					where $o.score gt 0 return $tags)`,
		wantMode: "Vector",
	},
	// Multi-morsel shapes: >4 BatchSize-sized morsels, so parallel
	// workers genuinely race and the in-order merge must hide it.
	{
		name: "multi-morsel filter order",
		query: `for $o in collection("wide")
				where $o.v ge 2500 return $o.v`,
		wantMode: "Vector",
	},
	{
		name: "multi-morsel grouped aggregates",
		query: `for $o in collection("wide")
				group by $g := $o.g
				return { "g": $g, "n": count($o), "s": sum($o.v),
					"lo": min($o.v), "hi": max($o.v) }`,
		wantMode: "Vector",
	},
	{
		name: "multi-morsel grand aggregate",
		query: `sum(for $o in collection("wide")
				where $o.v ge 10 return $o.v)`,
		wantMode: "Vector",
	},
	{
		name: "multi-morsel first error wins grand",
		query: `sum(for $o in collection("widebad")
				return $o.v)`,
		wantMode: "Vector",
		wantErr:  true,
		// Row 1500 (a string) precedes row 3500 (an object): the
		// earliest scan position's error must surface at every worker
		// count, never the object one a faster worker found first.
		wantErrIn: "string",
	},
	{
		name: "multi-morsel first error wins grouped",
		query: `for $o in collection("widebad")
				group by $g := $o.g
				return { "g": $g, "s": sum($o.v) }`,
		wantMode:  "Vector",
		wantErr:   true,
		wantErrIn: "string",
	},
	{
		name: "float sum stable across worker counts",
		query: `sum(for $o in collection("floats")
				return $o.v)`,
		wantMode: "Vector",
		floatSum: true,
	},
	{
		name: "grouped float sum stable across worker counts",
		query: `for $o in collection("floats")
				group by $g := $o.g
				return { "g": $g, "s": sum($o.v), "a": avg($o.v) }`,
		wantMode: "Vector",
		floatSum: true,
	},
	// Columnar order-by: per-morsel sorted runs k-way merged in morsel
	// index order must reproduce the tuple backend's stable sort exactly.
	{
		name: "order by descending",
		query: `for $o in collection("games")
				order by $o.score descending
				return $o.score`,
		wantMode: "Vector",
	},
	{
		name: "order by two keys with ties",
		query: `for $o in collection("games")
				order by $o.target, $o.score descending
				return { "t": $o.target, "s": $o.score }`,
		wantMode: "Vector",
	},
	{
		name: "order by empty greatest over absent keys",
		query: `for $o in collection("nulls")
				order by $o.k empty greatest
				return $o.v`,
		wantMode: "Vector",
	},
	{
		name: "order by nan negative zero and beyond 2^53",
		query: `for $o in collection("edge")
				order by $o.k
				return $o.w`,
		wantMode: "Vector",
	},
	{
		name: "multi-morsel order by with massive ties",
		query: `for $o in collection("wide")
				order by $o.g descending
				return $o.v`,
		wantMode: "Vector",
	},
	{
		name: "order by after filter and let",
		query: `for $o in collection("wide")
				let $d := $o.v * 2
				where $o.g ge 3
				order by $d descending
				return $d`,
		wantMode: "Vector",
	},
	{
		name: "order by string number mix errors",
		query: `for $o in collection("strnum")
				order by $o.s
				return $o.n`,
		wantMode:  "Vector",
		wantErr:   true,
		wantErrIn: "mixes strings and numbers",
	},
	{
		name: "order by non-atomic key errors",
		query: `for $o in collection("widebad")
				order by $o.v
				return $o.g`,
		wantMode: "Vector",
		wantErr:  true,
		// Row 3500's object key fails the per-row atomicity check; the
		// string at row 1500 only feeds the end-of-stream mix check,
		// which an earlier hard error preempts.
		wantErrIn: "non-atomic",
	},
	// Fused top-k: the count + where bound folds into the sort, so only
	// k rows survive per morsel and per merge.
	{
		name: "fused top-k descending",
		query: `for $o in collection("wide")
				order by $o.v descending
				count $rank where $rank le 10
				return $o.v`,
		wantMode: "Vector",
	},
	{
		name: "fused top-k lt bound with ties",
		query: `for $o in collection("wide")
				order by $o.g
				count $rank where $rank lt 5
				return $o.v`,
		wantMode: "Vector",
	},
	{
		name: "fused top-k larger than input",
		query: `for $o in collection("games")
				order by $o.score
				count $rank where $rank le 100
				return $o.score`,
		wantMode: "Vector",
	},
	// Positional clauses derive from morsel scan indices.
	{
		name: "positional variable",
		query: `for $o at $i in collection("games")
				return $i * $o.score`,
		wantMode: "Vector",
	},
	{
		name: "multi-morsel positional filter",
		query: `for $o at $i in collection("wide")
				where $i le 3000
				return $i + $o.v`,
		wantMode: "Vector",
	},
	{
		name: "count clause before filter",
		query: `for $o in collection("wide")
				count $c
				where $c lt 2500
				return $c * 2`,
		wantMode: "Vector",
	},
	// Hash equi-joins: eq-faithful against the tuple backend's nested
	// loop, including null-match, empty-drop, expansion order and the
	// cross-side type conflict error.
	{
		name: "hash equi-join multi-match",
		query: `for $o in collection("games")
				for $l in collection("langs")
				where $o.target eq $l.code
				return { "g": $o.guess, "t": $o.target, "name": $l.name }`,
		wantMode: "Vector",
	},
	{
		name: "join null matches null and absent drops",
		query: `for $a in collection("nulls")
				for $b in collection("nulls")
				where $a.k eq $b.k
				return { "l": $a.v, "r": $b.v }`,
		wantMode: "Vector",
	},
	{
		name: "join with residual predicate",
		query: `for $o in collection("games")
				for $l in collection("langs")
				where $o.target eq $l.code and $o.score ge 3
				return { "s": $o.score, "name": $l.name }`,
		wantMode: "Vector",
	},
	{
		name: "multi-morsel join",
		query: `for $o in collection("wide")
				for $d in collection("dims")
				where $o.g eq $d.g
				return { "v": $o.v, "name": $d.name }`,
		wantMode: "Vector",
	},
	{
		name: "join cross-type keys error",
		query: `for $a in collection("messy")
				for $b in collection("messy")
				where $a.k eq $b.k
				return { "l": $a.v, "r": $b.v }`,
		wantMode:  "Vector",
		wantErr:   true,
		wantErrIn: "non-comparable",
	},
	{
		name: "join then order by",
		query: `for $o in collection("wide")
				for $d in collection("dims")
				where $o.g eq $d.g
				order by $o.v descending
				count $rank where $rank le 7
				return { "v": $o.v, "name": $d.name }`,
		wantMode: "Vector",
	},
	{
		name: "join then group",
		query: `for $o in collection("wide")
				for $d in collection("dims")
				where $o.g eq $d.g
				group by $name := $d.name
				return { "name": $name, "n": count($o), "s": sum($o.v) }`,
		wantMode: "Vector",
	},
	{
		name: "grand count over join",
		query: `count(for $o in collection("wide")
				for $d in collection("dims")
				where $o.g eq $d.g
				return $o)`,
		wantMode: "Vector",
	},
	// Existence tests fold as early-exit grand counts.
	{
		name:     "exists true",
		query:    `exists(for $o in collection("wide") where $o.v ge 4999 return $o)`,
		wantMode: "Vector",
	},
	{
		name:     "exists false",
		query:    `exists(for $o in collection("games") where $o.score gt 100 return $o)`,
		wantMode: "Vector",
	},
	{
		name:     "empty over filtered scan",
		query:    `empty(for $o in collection("wide") where $o.v ge 10 return $o)`,
		wantMode: "Vector",
	},
	{
		name:     "count eq zero fuses to existence",
		query:    `count(for $o in collection("wide") where $o.v ge 10 return $o) eq 0`,
		wantMode: "Vector",
	},
	{
		name:     "zero eq count flipped literal",
		query:    `0 eq count(for $o in collection("games") where $o.score gt 100 return $o)`,
		wantMode: "Vector",
	},
	{
		name:     "exists over empty scan",
		query:    `exists(for $o in collection("empty") return $o)`,
		wantMode: "Vector",
	},
	// Dictionary-lane corpus: string predicates and grouped counts over
	// "dict" run lane-native on a segment-backed engine (projected columns,
	// codes compared against a translated literal), with the dup-key
	// overflow row and NUL-embedded strings in the middle of the data.
	{
		name: "dict string equality projection",
		query: `for $o in collection("dict")
				where $o.s eq "s07"
				return { "s": $o.s, "i": $o.i }`,
		wantMode: "Vector",
	},
	{
		name: "dict string range scan",
		query: `for $o in collection("dict")
				where $o.s lt "s05" and $o.t ge "tag"
				return $o.i`,
		wantMode: "Vector",
	},
	{
		name: "dict grouped count by string key",
		query: `for $o in collection("dict")
				group by $s := $o.s
				return { "s": $s, "n": count($o), "hi": max($o.i) }`,
		wantMode: "Vector",
	},
	{
		name: "dict overflow row fields",
		query: `for $o in collection("dict")
				where $o.i ge 695 and $o.i le 705
				return { "s": $o.s, "t": $o.t }`,
		wantMode: "Vector",
	},
	{
		name: "dict string order by",
		query: `for $o in collection("dict")
				where $o.i lt 80
				order by $o.s descending, $o.i
				return { "s": $o.s, "i": $o.i }`,
		wantMode: "Vector",
	},
}

// TestVectorLocalConformance asserts that every vector-eligible query
// shape produces identical results with --vectorize on and off, and that
// the vectorized results — emit order, values, and which error surfaces —
// are identical at every morsel worker-pool size (Executors 1, 2 and 8).
// The streamed (local) results must match the tuple pipeline exactly — the
// vector backend mirrors its order — while collected results (which may
// run as DataFrames when vectorization is off) must match as multisets,
// since group output order across the shuffle is implementation-defined.
func TestVectorLocalConformance(t *testing.T) {
	plain := New(Config{Parallelism: 2, Executors: 2})
	vectorConformanceData(t, plain)
	workerCounts := []int{1, 2, 8}
	vecs := make([]*Engine, len(workerCounts))
	for i, w := range workerCounts {
		vecs[i] = New(Config{Parallelism: 2, Executors: w, Vectorize: true})
		vectorConformanceData(t, vecs[i])
	}

	for _, tc := range vectorConformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			ps, perr := plain.Compile(tc.query)
			if perr != nil {
				t.Fatalf("compile (plain): %v", perr)
			}
			pItems, pErr := streamAll(ps)
			var pCollected []Item
			if !tc.wantErr {
				if pErr != nil {
					t.Fatalf("stream (plain): %v", pErr)
				}
				var cerr error
				pCollected, cerr = ps.Collect()
				if cerr != nil {
					t.Fatalf("collect (plain): %v", cerr)
				}
			} else if pErr == nil {
				t.Fatal("want error from the tuple backend, got none")
			}

			// ref is the first worker count's output (or error message);
			// later counts must reproduce it exactly.
			var ref string
			for i, w := range workerCounts {
				vs, verr := vecs[i].Compile(tc.query)
				if verr != nil {
					t.Fatalf("compile (workers=%d): %v", w, verr)
				}
				if tc.wantMode != "" && vs.Mode() != tc.wantMode {
					t.Fatalf("workers=%d: mode = %s, want %s", w, vs.Mode(), tc.wantMode)
				}

				// Streamed evaluation compares the local backends directly:
				// tuple pipeline vs columnar pipeline, order and all.
				vItems, vErr := streamAll(vs)
				if tc.wantErr {
					if vErr == nil {
						t.Fatalf("workers=%d: want error, got none", w)
					}
					if tc.wantErrIn != "" && !strings.Contains(vErr.Error(), tc.wantErrIn) {
						t.Fatalf("workers=%d: error %q does not name %q — a later morsel's error won", w, vErr, tc.wantErrIn)
					}
					if i == 0 {
						ref = vErr.Error()
					} else if vErr.Error() != ref {
						t.Fatalf("error differs across worker counts:\nworkers=%d: %s\nworkers=%d: %s",
							workerCounts[0], ref, w, vErr)
					}
					continue
				}
				if vErr != nil {
					t.Fatalf("workers=%d: stream: %v", w, vErr)
				}
				got := item.SerializeSequence(vItems)
				if tc.floatSum {
					// Rounding may differ from the tuple fold; identity
					// across worker counts is the contract instead.
					if i == 0 {
						ref = got
					} else if got != ref {
						t.Fatalf("float sum differs across worker counts:\nworkers=%d:\n%s\nworkers=%d:\n%s",
							workerCounts[0], ref, w, got)
					}
					continue
				}
				if want := item.SerializeSequence(pItems); got != want {
					t.Fatalf("workers=%d: streamed results differ\nvector:\n%s\ntuple:\n%s", w, got, want)
				}

				// Collected evaluation may route the plain engine through
				// the DataFrame backend; compare as multisets.
				vc, vErr := vs.Collect()
				if vErr != nil {
					t.Fatalf("workers=%d: collect: %v", w, vErr)
				}
				if got, want := sortedLines(vc), sortedLines(pCollected); got != want {
					t.Fatalf("workers=%d: collected results differ\nvector:\n%s\nplain:\n%s", w, got, want)
				}
			}
		})
	}
}

// streamAll materializes a statement through the streaming API, which
// always runs the local backend (tuple or vector) of the root plan.
func streamAll(st *Statement) ([]Item, error) {
	var out []Item
	err := st.Stream(func(it Item) error {
		out = append(out, it)
		return nil
	})
	return out, err
}

func sortedLines(items []Item) string {
	lines := make([]string, len(items))
	for i, it := range items {
		lines[i] = string(it.AppendJSON(nil))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestVectorEarlyExitReadsFraction pins the early-exit satellite with
// metrics: an existence test over a 20k-row file-backed scan must stop
// reading as soon as the answer is decided, so the records actually read
// stay far below the collection size — a small prefix in the serial case,
// and at most the bounded in-flight window in the parallel case.
func TestVectorEarlyExitReadsFraction(t *testing.T) {
	const rows = 20000
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, `{"v": %d}`+"\n", i)
	}
	path := filepath.Join(t.TempDir(), "big.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		workers int
		maxRead int64
	}{
		{workers: 1, maxRead: 2048},  // strictly the first morsel or two
		{workers: 2, maxRead: 12288}, // one merged + the paced in-flight window
	} {
		eng := New(Config{Parallelism: 2, Executors: tc.workers, Vectorize: true})
		for _, query := range []string{
			fmt.Sprintf(`exists(for $o in json-file(%q) where $o.v ge 0 return $o)`, path),
			fmt.Sprintf(`count(for $o in json-file(%q) where $o.v ge 0 return $o) eq 0`, path),
		} {
			st, err := eng.Compile(query)
			if err != nil {
				t.Fatalf("workers=%d: compile: %v", tc.workers, err)
			}
			if st.Mode() != "Vector" {
				t.Fatalf("workers=%d: mode = %s, want Vector", tc.workers, st.Mode())
			}
			eng.ResetMetrics()
			items, err := streamAll(st)
			if err != nil {
				t.Fatalf("workers=%d: %v", tc.workers, err)
			}
			want := "true"
			if strings.Contains(query, "eq 0") {
				want = "false"
			}
			if got := item.SerializeSequence(items); got != want {
				t.Fatalf("workers=%d: result = %s, want %s", tc.workers, got, want)
			}
			if got := eng.Metrics().RecordsRead; got > tc.maxRead {
				t.Errorf("workers=%d: RecordsRead = %d, want <= %d (early exit must stop the scan)",
					tc.workers, got, tc.maxRead)
			}
		}
		// The negative case still scans everything — no rows survive the
		// filter, so the decision needs the whole input.
		st, err := eng.Compile(fmt.Sprintf(
			`exists(for $o in json-file(%q) where $o.v lt 0 return $o)`, path))
		if err != nil {
			t.Fatal(err)
		}
		eng.ResetMetrics()
		items, err := streamAll(st)
		if err != nil {
			t.Fatal(err)
		}
		if got := item.SerializeSequence(items); got != "false" {
			t.Fatalf("negative exists = %s, want false", got)
		}
		if got := eng.Metrics().RecordsRead; got != rows {
			t.Errorf("workers=%d: negative exists RecordsRead = %d, want %d", tc.workers, got, rows)
		}
	}
}

// TestVectorSortJoinMetrics pins the new backend counters: sort and top-k
// runs count per evaluation, and join probe output rows accumulate.
func TestVectorSortJoinMetrics(t *testing.T) {
	eng := New(Config{Parallelism: 2, Executors: 2, Vectorize: true})
	vectorConformanceData(t, eng)
	run := func(q string) {
		t.Helper()
		st, err := eng.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := streamAll(st); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetMetrics()
	run(`for $o in collection("games") order by $o.score return $o.score`)
	if m := eng.Metrics(); m.VectorSortRuns != 1 || m.VectorTopKRuns != 0 {
		t.Errorf("after sort: sort runs = %d, topk runs = %d, want 1, 0", m.VectorSortRuns, m.VectorTopKRuns)
	}
	run(`for $o in collection("games") order by $o.score count $c where $c le 2 return $o.score`)
	if m := eng.Metrics(); m.VectorSortRuns != 1 || m.VectorTopKRuns != 1 {
		t.Errorf("after topk: sort runs = %d, topk runs = %d, want 1, 1", m.VectorSortRuns, m.VectorTopKRuns)
	}
	run(`for $o in collection("games") for $l in collection("langs")
		where $o.target eq $l.code return $l.name`)
	if m := eng.Metrics(); m.VectorJoinRows == 0 {
		t.Error("after join: VectorJoinRows = 0, want > 0")
	}
}

// Package rumble is a JSONiq query engine for large, heterogeneous, nested
// JSON datasets, reproducing the system described in "Rumble: Data
// Independence for Large Messy Data Sets" (VLDB 2020) in pure Go.
//
// Queries are written in JSONiq and executed over an embedded Spark-like
// parallel dataflow engine: expressions map to RDD transformations and
// FLWOR clauses map to DataFrame operations, while the user only ever sees
// sequences of items.
//
//	eng := rumble.New(rumble.Config{})
//	res, err := eng.Query(`
//	    for $o in json-file("data.jsonl")
//	    where $o.guess eq $o.target
//	    group by $lang := $o.target
//	    return { "language": $lang, "correct": count($o) }`)
package rumble

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"rumble/internal/compiler"
	"rumble/internal/dfs"
	"rumble/internal/item"
	"rumble/internal/jparse"
	"rumble/internal/parser"
	"rumble/internal/profile"
	"rumble/internal/runtime"
	"rumble/internal/segment"
	"rumble/internal/spark"
)

// Profile collects per-query execution statistics (per-operator rows,
// batches and wall time, worker busy/wait, phase timings) when passed to
// CollectProfiled. A nil *Profile disables profiling at near-zero cost.
type Profile = profile.Profile

// ProfileSnapshot is the JSON-ready rendering of a Profile, as served in
// the HTTP envelope's "profile" section and the slow-query log.
type ProfileSnapshot = profile.Snapshot

// Item is one JSONiq item: an atomic value, object or array. See the
// aliased kinds (Object, Array, Str, Int, ...) for construction and
// inspection.
type Item = item.Item

// Aliases of the JSONiq data model types, so applications can construct
// and inspect items without reaching into internals.
type (
	// Object maps strings to items, preserving key order.
	Object = item.Object
	// Array is an ordered list of items.
	Array = item.Array
	// Str is a string item.
	Str = item.Str
	// Int is an integer item.
	Int = item.Int
	// Double is a floating-point item.
	Double = item.Double
	// Bool is a boolean item.
	Bool = item.Bool
	// Null is the JSON null item.
	Null = item.Null
)

// Config tunes an Engine. The zero value gives a local engine with
// defaults (4 partitions, 4 executor slots, unlimited result size).
type Config struct {
	// Parallelism is the default number of RDD/DataFrame partitions.
	Parallelism int
	// Executors bounds concurrently running partition tasks, emulating
	// the total executor cores of a cluster. The vector backend sizes its
	// morsel worker pool by the same knob, so local columnar queries scale
	// with it too.
	Executors int
	// MaxResultItems caps locally collected result sizes (0 = unlimited),
	// like Rumble's shell materialization cap.
	MaxResultItems int
	// SplitSize overrides the storage split size in bytes (0 = 8 MiB).
	SplitSize int64
	// IOLatency, when positive, simulates storage latency per 64 KiB
	// block read, for cluster-scalability experiments.
	IOLatency time.Duration
	// DisableJoin turns off the compiler's static equi-join detection so
	// nested "for ... for ... where" queries keep their nested-loop
	// evaluation — the escape hatch for comparison benchmarks.
	DisableJoin bool
	// Vectorize enables the columnar local backend: eligible FLWOR
	// pipelines (scan → filter → project → group/aggregate, order-by
	// with fused top-k, positional/count clauses, and detected hash
	// equi-joins) are compiled to Mode=Vector and execute batch-at-a-time
	// over typed columns instead of tuple-at-a-time or through the
	// DataFrame machinery.
	Vectorize bool
	// VerifyPlans checks every compiled plan's invariants (mode
	// annotations, vector operator whitelist, join legality) before
	// execution, surfacing compiler bugs as structured errors instead of
	// wrong results. Also enabled by RUMBLE_VERIFY_PLANS=1.
	VerifyPlans bool
	// Segments enables the columnar segment store: storage-backed scans
	// ingest (or reuse) an immutable `.segments` sibling next to each
	// JSON-Lines source and vector pipelines read decoded column batches
	// through a byte-bounded buffer pool, skipping whole segments whose
	// zone maps prove a pushed-down predicate can never match.
	Segments bool
	// SegmentCacheBytes bounds the segment buffer pool (0 = 64 MiB).
	SegmentCacheBytes int64
	// NoLaneScan disables the lane-native segment scan: projected vector
	// pipelines fall back to materializing whole row items per morsel (the
	// pre-projection path). The escape hatch for ablation benchmarks.
	NoLaneScan bool
}

// Engine compiles and runs JSONiq queries. Engines are safe for concurrent
// use once configured; RegisterCollection calls must happen before queries
// run.
type Engine struct {
	sc  *spark.Context
	env *runtime.Env
}

// New creates an engine.
func New(cfg Config) *Engine {
	sc := spark.NewContext(spark.Config{
		Parallelism:    cfg.Parallelism,
		Executors:      cfg.Executors,
		MaxResultItems: cfg.MaxResultItems,
		IOLatency:      cfg.IOLatency,
	})
	var segs *segment.Store
	if cfg.Segments {
		segs = segment.NewStore(cfg.SegmentCacheBytes)
		segs.OnReingest = func() { sc.AddSegmentReingests(1) }
	}
	return &Engine{
		sc: sc,
		env: &runtime.Env{
			Spark:       sc,
			Collections: map[string]string{},
			InMemory:    map[string][]item.Item{},
			SplitSize:   cfg.SplitSize,
			NoJoin:      cfg.DisableJoin,
			Vectorize:   cfg.Vectorize,
			VerifyPlans: cfg.VerifyPlans || os.Getenv("RUMBLE_VERIFY_PLANS") == "1",
			Segments:    segs,
			NoLaneScan:  cfg.NoLaneScan,
		},
	}
}

// RegisterCollection makes collection(name) resolve to a JSON-Lines file or
// directory of part files at path.
func (e *Engine) RegisterCollection(name, path string) {
	e.env.Collections[name] = path
}

// RegisterItems makes collection(name) resolve to an in-memory sequence.
func (e *Engine) RegisterItems(name string, items []Item) {
	e.env.InMemory[name] = items
}

// RegisterJSON parses one JSON document per input string and registers the
// resulting sequence as collection(name).
func (e *Engine) RegisterJSON(name string, docs []string) error {
	items := make([]Item, len(docs))
	for i, d := range docs {
		it, err := jparse.Parse([]byte(d))
		if err != nil {
			return fmt.Errorf("rumble: document %d: %w", i, err)
		}
		items[i] = it
	}
	e.RegisterItems(name, items)
	return nil
}

// Executors returns the number of executor slots the engine was configured
// with (after defaulting). Servers size their admission control against it.
func (e *Engine) Executors() int { return e.sc.Conf().Executors }

// Metrics returns a snapshot of the engine's cluster counters.
func (e *Engine) Metrics() spark.MetricsSnapshot { return e.sc.Metrics() }

// ResetMetrics zeroes the engine's cluster counters.
func (e *Engine) ResetMetrics() { e.sc.ResetMetrics() }

// Statement is a compiled query. Statements are safely re-executable and
// safe for concurrent use: the compiled iterator tree is immutable, every
// evaluation builds its cluster pipelines (including caches) fresh, and all
// per-run state lives on the stack of the run — so a server can compile a
// hot query once and serve it to many clients at once.
type Statement struct {
	eng  *Engine
	prog *runtime.Program
}

// Compile parses, statically checks and compiles a JSONiq query.
func (e *Engine) Compile(query string) (*Statement, error) {
	m, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	prog, err := runtime.Compile(m, e.env)
	if err != nil {
		return nil, err
	}
	return &Statement{eng: e, prog: prog}, nil
}

// Explain parses and statically analyzes a query, returning its physical
// plan as a mode-annotated tree: every expression node carries the
// execution mode ([Local], [RDD], [DataFrame] or [Vector]) the compiler
// assigned, and pushed-down aggregations are marked. The query is not
// executed.
//
//	plan, _ := eng.Explain(`count(json-file("data.jsonl"))`)
//	fmt.Print(plan)
//	// call count/1 (cluster pushdown) [Local]
//	//   call json-file/1 [RDD]
//	//     literal "data.jsonl" [Local]
func (e *Engine) Explain(query string) (string, error) {
	m, err := parser.Parse(query)
	if err != nil {
		return "", err
	}
	info, err := compiler.Analyze(m, compiler.Options{Cluster: e.env.Spark != nil, NoJoin: e.env.NoJoin,
		Vectorize: e.env.Vectorize, Executors: e.sc.Conf().Executors})
	if err != nil {
		return "", err
	}
	return compiler.Explain(m, info), nil
}

// Query compiles and runs a query, returning the materialized result
// sequence. Execution is parallel whenever the query's root expression
// supports RDD or DataFrame evaluation.
func (e *Engine) Query(query string) ([]Item, error) {
	st, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return st.Collect()
}

// QueryContext is Query under a Go context: cancellation or deadline
// expiry aborts evaluation cooperatively and returns the context's error.
func (e *Engine) QueryContext(ctx context.Context, query string) ([]Item, error) {
	st, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return st.CollectContext(ctx)
}

// QueryJSON runs a query and returns one canonical JSON string per result
// item, the way the Rumble shell prints results.
func (e *Engine) QueryJSON(query string) ([]string, error) {
	items, err := e.Query(query)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it.AppendJSON(nil))
	}
	return out, nil
}

// Collect runs the statement and materializes the whole result.
func (s *Statement) Collect() ([]Item, error) {
	return s.prog.Run()
}

// CollectContext is Collect under a Go context: loop iterators and cluster
// task loops poll ctx at cooperative checkpoints, so a cancelled or
// expired request stops evaluating promptly and returns ctx's error.
func (s *Statement) CollectContext(ctx context.Context) ([]Item, error) {
	return s.prog.RunContext(ctx)
}

// CollectContextLimit is CollectContext bounded to at most max items: the
// evaluation itself stops early (local streaming cap, or a cluster take
// action with sequential early-stopping partition scans), so a limited
// request never materializes an unbounded result on the driver. max <= 0
// means no limit.
func (s *Statement) CollectContextLimit(ctx context.Context, max int) ([]Item, error) {
	return s.prog.RunContextLimit(ctx, max)
}

// NewProfile allocates a Profile sized for this statement's plan: one
// counter set per operator the compiler registered during compilation.
func (s *Statement) NewProfile() *Profile { return s.prog.NewProfile() }

// CollectProfiled is CollectContextLimit with per-operator statistics
// recorded into prof (obtained from NewProfile). A nil prof runs exactly
// like CollectContextLimit — the instrumentation's off-path is one nil
// check per operator evaluation.
func (s *Statement) CollectProfiled(ctx context.Context, max int, prof *Profile) ([]Item, error) {
	return s.prog.RunProfiled(ctx, max, prof)
}

// ExplainAnalyze executes the statement and renders the mode-annotated
// plan tree with live per-operator statistics appended to each
// instrumented line — rows in/out, batches (morsels on the vector path)
// and inclusive wall time — followed by a result summary footer. The
// result itself is discarded; MaxResultItems bounds the materialization
// like any collected run.
func (s *Statement) ExplainAnalyze(ctx context.Context) (string, error) {
	prof := s.prog.NewProfile()
	start := time.Now()
	items, err := s.prog.RunProfiled(ctx, s.eng.sc.Conf().MaxResultItems, prof)
	if err != nil {
		return "", err
	}
	prof.ExecuteNS = int64(time.Since(start))
	snap := prof.Snapshot()
	note := func(key any) string {
		i := s.prog.OpIndex(key)
		if i < 0 || i >= len(snap.Ops) {
			return ""
		}
		op := snap.Ops[i]
		if op.Batches == 0 {
			// The operator never recorded (an uninstrumented lazy view on
			// the DataFrame path, or an early-exited stage): no annotation
			// beats a misleading out=0.
			return ""
		}
		// rows-in is derived from the input operator; hide it when that
		// operator itself never recorded.
		showIn := op.RowsIn >= 0 && op.Input >= 0 && op.Input < len(snap.Ops) && snap.Ops[op.Input].Batches > 0
		return formatOpStats(op, showIn)
	}
	plan := compiler.ExplainAnnotated(s.prog.Module(), s.prog.AnalysisInfo(), note)
	var b strings.Builder
	b.WriteString(plan)
	fmt.Fprintf(&b, "-- result: %d rows in %.2fms [%s]\n", len(items), snap.ExecuteMS, s.Mode())
	if snap.Workers > 0 {
		fmt.Fprintf(&b, "-- workers: %d (busy %.2fms, wait %.2fms)\n", snap.Workers, snap.BusyMS, snap.WaitMS)
	}
	return b.String(), nil
}

// formatOpStats renders one operator's annotation for explain-analyze.
func formatOpStats(op profile.OpStats, showIn bool) string {
	var b strings.Builder
	b.WriteString("(")
	if showIn {
		fmt.Fprintf(&b, "in=%d ", op.RowsIn)
	}
	fmt.Fprintf(&b, "out=%d", op.RowsOut)
	if op.Batches > 0 {
		fmt.Fprintf(&b, " batches=%d", op.Batches)
	}
	fmt.Fprintf(&b, " %.2fms)", op.WallMS)
	return b.String()
}

// ExplainAnalyze compiles and profiles a query in one step. See
// Statement.ExplainAnalyze.
func (e *Engine) ExplainAnalyze(query string) (string, error) {
	st, err := e.Compile(query)
	if err != nil {
		return "", err
	}
	return st.ExplainAnalyze(context.Background())
}

// Stream runs the statement through the local streaming API, pushing items
// to yield one at a time without materializing the result.
func (s *Statement) Stream(yield func(Item) error) error {
	return s.prog.Root.Stream(s.prog.GlobalContext(), yield)
}

// StreamContext is Stream under a Go context with the same cooperative
// cancellation semantics as CollectContext.
func (s *Statement) StreamContext(ctx context.Context, yield func(Item) error) error {
	dc := s.prog.GlobalContext()
	if ctx != nil {
		dc = dc.WithGoContext(ctx)
	}
	return s.prog.Root.Stream(dc, yield)
}

// Mode returns the execution mode the compiler statically assigned to the
// statement's root expression: "Local", "RDD", "DataFrame" or "Vector".
func (s *Statement) Mode() string { return s.prog.Mode().String() }

// IsParallel reports whether the statement's root was compiled to execute
// on the cluster (RDD/DataFrame) rather than locally. The decision is
// static: it was made during compilation, not probed at run time.
func (s *Statement) IsParallel() bool { return s.prog.Mode().Parallel() }

// WriteTo executes the statement and writes the result to dir as a
// directory of JSON-Lines part files. Parallel statements write one part
// per partition directly from the executors, never materializing the
// result on the driver; local statements write a single part.
func (s *Statement) WriteTo(dir string) error {
	w, err := dfs.NewWriter(dir)
	if err != nil {
		return err
	}
	if s.IsParallel() {
		rdd, err := s.prog.Root.RDD(s.prog.GlobalContext())
		if err != nil {
			return err
		}
		lines := spark.Map(rdd, func(it item.Item) []byte { return it.AppendJSON(nil) })
		if err := writeRDDParts(w, lines); err != nil {
			return err
		}
		return w.Commit()
	}
	pw, err := w.Part(0)
	if err != nil {
		return err
	}
	if err := s.Stream(func(it Item) error {
		return pw.WriteLine(it.AppendJSON(nil))
	}); err != nil {
		pw.Close()
		return err
	}
	if err := pw.Close(); err != nil {
		return err
	}
	return w.Commit()
}

// writeRDDParts writes one part file per RDD partition, in parallel on the
// executor pool, streaming lines straight from each partition's pipeline.
func writeRDDParts(w *dfs.Writer, lines *spark.RDD[[]byte]) error {
	return spark.ForeachPartitionSink(lines, func(p int) (spark.Sink[[]byte], error) {
		pw, err := w.Part(p)
		if err != nil {
			return spark.Sink[[]byte]{}, err
		}
		return spark.Sink[[]byte]{Write: pw.WriteLine, Close: pw.Close}, nil
	})
}

// ToNative converts an item to plain Go values: nil, bool, int64, float64,
// string, []any and map[string]any (decimals convert to float64).
func ToNative(it Item) any {
	switch v := it.(type) {
	case item.Null:
		return nil
	case item.Bool:
		return bool(v)
	case item.Int:
		return int64(v)
	case item.Double:
		return float64(v)
	case item.Dec:
		return v.Float64()
	case item.Str:
		return string(v)
	case *item.Array:
		out := make([]any, v.Len())
		for i := 0; i < v.Len(); i++ {
			out[i] = ToNative(v.Member(i))
		}
		return out
	case *item.Object:
		out := make(map[string]any, v.Len())
		for i, k := range v.Keys() {
			out[k] = ToNative(v.ValueAt(i))
		}
		return out
	default:
		return nil
	}
}

package rumble

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func newTestEngine() *Engine {
	return New(Config{Parallelism: 4, Executors: 4})
}

// run executes a query and returns the serialized result lines.
func run(t *testing.T, e *Engine, q string) []string {
	t.Helper()
	out, err := e.QueryJSON(q)
	if err != nil {
		t.Fatalf("query failed: %v\nquery: %s", err, q)
	}
	return out
}

func runOne(t *testing.T, e *Engine, q string) string {
	t.Helper()
	out := run(t, e, q)
	if len(out) != 1 {
		t.Fatalf("query returned %d items, want 1: %v\nquery: %s", len(out), out, q)
	}
	return out[0]
}

func TestAtomsAndArithmetic(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`1 + 2 * 3`:         "7",
		`(1 + 2) * 3`:       "9",
		`10 idiv 3`:         "3",
		`10 mod 3`:          "1",
		`1 div 2`:           "0.5",
		`-(3 - 5)`:          "2",
		`1.5 + 1.5`:         "3",
		`2e2 + 1`:           "201",
		`"a" || "b" || "c"`: `"abc"`,
		`true and false`:    "false",
		`true or false`:     "true",
		`not(true)`:         "false",
		`1 eq 1`:            "true",
		`1 lt 2`:            "true",
		`"b" gt "a"`:        "true",
		`1 = 1.0`:           "true",
		`null eq null`:      "true",
		`null lt 0`:         "true",
		`count(1 to 100)`:   "100",
		`sum(1 to 10)`:      "55",
		`avg((2, 4, 6))`:    "4",
		`min((3, 1, 2))`:    "1",
		`max((3, 1, 2))`:    "3",
	}
	for q, want := range cases {
		if got := runOne(t, e, q); got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestEmptySequencePropagation(t *testing.T) {
	e := newTestEngine()
	for _, q := range []string{`() + 1`, `1 + ()`, `() eq 1`, `-()`} {
		if out := run(t, e, q); len(out) != 0 {
			t.Errorf("%s = %v, want empty", q, out)
		}
	}
}

func TestConstructorsAndNavigation(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`{ "a": 1, "b": [1, 2] }.a`:           "1",
		`{ "a": { "b": { "c": 42 } } }.a.b.c`: "42",
		`[1, 2, 3][[2]]`:                      "2",
		`[[1, 2], [3]][[1]][[2]]`:             "2",
		`{ "xs": [1, 2, 3] }.xs[]`:            "1\n2\n3",
		`(1 to 10)[$$ mod 2 eq 0]`:            "2\n4\n6\n8\n10",
		`(1 to 10)[3]`:                        "3",
		`("a", "b", "c")[2]`:                  `"b"`,
		`{ "k": () }`:                         `{"k" : null}`,
		`{ "k": (1, 2) }`:                     `{"k" : [1, 2]}`,
		`{ "a" || "b": 1 }`:                   `{"ab" : 1}`,
		`[ 1 to 3 ]`:                          "[1, 2, 3]",
		`[]`:                                  "[]",
		`{}`:                                  "{}",
		`keys({ "x": 1, "y": 2 })`:            `"x"` + "\n" + `"y"`,
		`values({ "x": 1, "y": 2 })`:          "1\n2",
		`size([1, 2, 3])`:                     "3",
		`flatten([1, [2, [3]]])`:              "1\n2\n3",
	}
	for q, want := range cases {
		got := strings.Join(run(t, e, q), "\n")
		if got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestLookupOnNonObjectIsEmpty(t *testing.T) {
	e := newTestEngine()
	if out := run(t, e, `(1, "s", [1]).foo`); len(out) != 0 {
		t.Errorf("lookup on non-objects = %v", out)
	}
	if out := run(t, e, `{ "a": 1 }.missing`); len(out) != 0 {
		t.Errorf("missing key = %v", out)
	}
}

func TestControlFlow(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`if (1 lt 2) then "yes" else "no"`:                                  `"yes"`,
		`if (()) then 1 else 2`:                                             "2",
		`switch (2) case 1 return "a" case 2 return "b" default return "c"`: `"b"`,
		`switch ("x") case "y" return 1 default return 99`:                  "99",
		`try { 1 div 0 } catch * { "caught" }`:                              `"caught"`,
		`try { error("boom") } catch * { $err:description }`:                `"boom"`,
		`try { 42 } catch * { 0 }`:                                          "42",
		`some $x in (1, 2, 3) satisfies $x gt 2`:                            "true",
		`every $x in (1, 2, 3) satisfies $x gt 2`:                           "false",
		`every $x in () satisfies false`:                                    "true",
		`some $x in (1, 2), $y in (3, 4) satisfies $x + $y eq 6`:            "true",
	}
	for q, want := range cases {
		if got := runOne(t, e, q); got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestTypes(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`5 instance of integer`:           "true",
		`5 instance of decimal`:           "true",
		`5.0 instance of integer`:         "false",
		`(1, 2) instance of integer+`:     "true",
		`() instance of empty-sequence()`: "true",
		`"x" instance of atomic`:          "true",
		`[1] instance of array`:           "true",
		`"12" cast as integer`:            "12",
		`42 cast as string`:               `"42"`,
		`"3.5" cast as double`:            "3.5",
		`"x" castable as integer`:         "false",
		`"7" castable as integer`:         "true",
		`(1, 2) treat as integer+`:        "1\n2",
	}
	for q, want := range cases {
		got := strings.Join(run(t, e, q), "\n")
		if got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
	if _, err := e.Query(`"x" treat as integer`); err == nil {
		t.Error("treat as mismatch should error")
	}
}

func TestStringFunctions(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`upper-case("abc")`:                  `"ABC"`,
		`lower-case("AbC")`:                  `"abc"`,
		`string-length("héllo")`:             "5",
		`substring("hello", 2, 3)`:           `"ell"`,
		`contains("hello", "ell")`:           "true",
		`starts-with("hello", "he")`:         "true",
		`ends-with("hello", "lo")`:           "true",
		`concat("a", "b", "c")`:              `"abc"`,
		`string-join(("a", "b"), "-")`:       `"a-b"`,
		`tokenize("a b  c")`:                 `"a"` + "\n" + `"b"` + "\n" + `"c"`,
		`tokenize("a,b,c", ",")`:             `"a"` + "\n" + `"b"` + "\n" + `"c"`,
		`matches("hello", "^h.*o$")`:         "true",
		`replace("banana", "a", "o")`:        `"bonono"`,
		`substring-before("key=val", "=")`:   `"key"`,
		`substring-after("key=val", "=")`:    `"val"`,
		`normalize-space("  a   b ")`:        `"a b"`,
		`string(42)`:                         `"42"`,
		`serialize({ "a": 1 })`:              `"{\"a\" : 1}"`,
		`json-doc("{\"a\": [1, 2]}").a[[2]]`: "2",
	}
	for q, want := range cases {
		got := strings.Join(run(t, e, q), "\n")
		if got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestSequenceFunctions(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`head((1, 2, 3))`:                  "1",
		`tail((1, 2, 3))`:                  "2\n3",
		`reverse((1, 2, 3))`:               "3\n2\n1",
		`subsequence((1, 2, 3, 4), 2, 2)`:  "2\n3",
		`distinct-values((1, 2, 1, 3, 2))`: "1\n2\n3",
		`distinct-values((1, 1.0, "1"))`:   "1\n\"1\"",
		`index-of((10, 20, 10), 10)`:       "1\n3",
		`insert-before((1, 3), 2, (2))`:    "1\n2\n3",
		`remove((1, 99, 2), 2)`:            "1\n2",
		`empty(())`:                        "true",
		`exists((1))`:                      "true",
		`boolean("")`:                      "false",
		`abs(-5)`:                          "5",
		`floor(2.7)`:                       "2",
		`ceiling(2.1)`:                     "3",
		`round(2.5)`:                       "3",
		`sqrt(9)`:                          "3",
		`pow(2, 10)`:                       "1024",
		`number("2.5")`:                    "2.5",
		`number("nope")`:                   "NaN",
	}
	for q, want := range cases {
		got := strings.Join(run(t, e, q), "\n")
		if got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestFLWORBasics(t *testing.T) {
	e := newTestEngine()
	cases := map[string]string{
		`for $x in (1, 2, 3) return $x * 10`:                      "10\n20\n30",
		`for $x in (1, 2, 3) where $x ge 2 return $x`:             "2\n3",
		`let $x := (1, 2, 3) return count($x)`:                    "3",
		`for $x in (1, 2) for $y in (10, 20) return $x + $y`:      "11\n21\n12\n22",
		`for $x in (1, 2), $y in (10, 20) return $x + $y`:         "11\n21\n12\n22",
		`for $x at $i in ("a", "b") return { "i": $i, "v": $x }`:  `{"i" : 1, "v" : "a"}` + "\n" + `{"i" : 2, "v" : "b"}`,
		`for $x in (3, 1, 2) order by $x return $x`:               "1\n2\n3",
		`for $x in (3, 1, 2) order by $x descending return $x`:    "3\n2\n1",
		`for $x in (1, 2, 3, 4) count $c where $c ge 3 return $x`: "3\n4",
		`for $x allowing empty in () return "still here"`:         `"still here"`,
		`for $x in (1, 2) let $y := $x * 2 return $y`:             "2\n4",
		`let $x := 5 let $x := $x + 1 return $x`:                  "6", // redeclaration
	}
	for q, want := range cases {
		got := strings.Join(run(t, e, q), "\n")
		if got != want {
			t.Errorf("%s = %s, want %s", q, got, want)
		}
	}
}

func TestFLWORGroupBy(t *testing.T) {
	e := newTestEngine()
	// The paper's §4.7 heterogeneous grouping example: no error, 3 groups.
	q := `
	for $i in parallelize((
	  {"key" : "foo", "value" : "anything"},
	  {"key" : 1, "value" : "anything"},
	  {"key" : 1, "value" : "anything"},
	  {"key" : "foo", "value" : "anything"},
	  {"key" : true, "value" : "anything"}
	))
	group by $key := $i.key
	order by count($i) descending, string($key) ascending
	return { "key" : $key, "count" : count($i) }`
	got := run(t, e, q)
	want := []string{
		`{"key" : 1, "count" : 2}`,
		`{"key" : "foo", "count" : 2}`,
		`{"key" : true, "count" : 1}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("heterogeneous group by:\ngot  %v\nwant %v", got, want)
	}
}

func TestFLWORGroupByMaterializesNonGroupingVars(t *testing.T) {
	e := newTestEngine()
	q := `
	for $x in (1, 2, 3, 4, 5, 6)
	group by $parity := $x mod 2
	order by $parity
	return { "parity": $parity, "values": [ $x ], "sum": sum($x) }`
	got := run(t, e, q)
	want := []string{
		`{"parity" : 0, "values" : [2, 4, 6], "sum" : 12}`,
		`{"parity" : 1, "values" : [1, 3, 5], "sum" : 9}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("group by materialization:\ngot  %v\nwant %v", got, want)
	}
}

func TestFLWORGroupByEmptyKey(t *testing.T) {
	e := newTestEngine()
	q := `
	for $o in ({"k": 1, "v": 1}, {"v": 2}, {"k": 1, "v": 3})
	group by $k := $o.k
	order by $k empty least
	return { "key": $k, "n": count($o) }`
	got := run(t, e, q)
	want := []string{
		`{"key" : null, "n" : 1}`,
		`{"key" : 1, "n" : 2}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty group key:\ngot  %v\nwant %v", got, want)
	}
}

func TestFLWOROrderBySemantics(t *testing.T) {
	e := newTestEngine()
	// empty least (default) and empty greatest
	q := `for $o in ({"v": 2}, {}, {"v": 1}) order by $o.v return { "v": $o.v }`
	got := run(t, e, q)
	want := []string{`{"v" : null}`, `{"v" : 1}`, `{"v" : 2}`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty least:\ngot %v want %v", got, want)
	}
	q = `for $o in ({"v": 2}, {}, {"v": 1}) order by $o.v empty greatest return { "v": $o.v }`
	got = run(t, e, q)
	want = []string{`{"v" : 1}`, `{"v" : 2}`, `{"v" : null}`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty greatest:\ngot %v want %v", got, want)
	}
	// null sorts below any value but above empty
	q = `for $o in ({"v": 1}, {"v": null}, {}) order by $o.v return [ $o.v ]`
	got = run(t, e, q)
	want = []string{`[]`, `[null]`, `[1]`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("null ordering:\ngot %v want %v", got, want)
	}
	// incompatible types must raise an error
	if _, err := e.Query(`for $x in (1, "a") order by $x return $x`); err == nil {
		t.Error("mixed string/number order by should error")
	}
	// multi-key with directions
	q = `for $o in ({"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 9})
	     order by $o.a ascending, $o.b descending
	     return [ $o.a, $o.b ]`
	got = run(t, e, q)
	want = []string{`[0, 9]`, `[1, 2]`, `[1, 1]`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("multi-key order:\ngot %v want %v", got, want)
	}
}

func TestFLWORStableSort(t *testing.T) {
	e := newTestEngine()
	q := `for $o at $i in ({"k": 1}, {"k": 1}, {"k": 0}, {"k": 1})
	      order by $o.k
	      return $i`
	got := run(t, e, q)
	want := []string{"3", "1", "2", "4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stable sort:\ngot %v want %v", got, want)
	}
}

func TestUserDefinedFunctions(t *testing.T) {
	e := newTestEngine()
	q := `
	declare function local:fact($n) {
	  if ($n le 1) then 1 else $n * local:fact($n - 1)
	};
	local:fact(10)`
	if got := runOne(t, e, q); got != "3628800" {
		t.Errorf("fact(10) = %s", got)
	}
	q = `
	declare variable $base := 100;
	declare function local:add($x, $y) { $x + $y + $base };
	local:add(1, 2)`
	if got := runOne(t, e, q); got != "103" {
		t.Errorf("udf with global = %s", got)
	}
}

func TestPrologVariables(t *testing.T) {
	e := newTestEngine()
	q := `
	declare variable $threshold := 2;
	declare variable $double := $threshold * 2;
	for $x in (1, 2, 3, 4, 5) where $x gt $double return $x`
	got := strings.Join(run(t, e, q), "\n")
	if got != "5" {
		t.Errorf("prolog variables = %s", got)
	}
}

func TestStaticErrors(t *testing.T) {
	e := newTestEngine()
	bad := []string{
		`$undefined`,
		`for $x in (1) return $y`,
		`nosuchfunction(1)`,
		`count(1, 2, 3)`,
		`declare function local:f($a) { $a }; local:f(1, 2)`,
		`let $x := $x return 1`,
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("query %q should fail statically", q)
		}
	}
}

func TestDynamicErrors(t *testing.T) {
	e := newTestEngine()
	bad := []string{
		`1 div 0`,
		`"a" + 1`,
		`(1, 2) + 1`,
		`{ "k": 1 }.k[(1,2)]`,
		`error("explicit")`,
		`"x" cast as integer`,
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("query %q should fail dynamically", q)
		}
	}
}

// writeConfusionFile writes n confusion-style JSON objects and returns the
// path.
func writeConfusionFile(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "confusion.jsonl")
	var sb strings.Builder
	langs := []string{"French", "German", "Danish", "Swedish"}
	countries := []string{"AU", "US", "DE", "FR"}
	for i := 0; i < n; i++ {
		guess := langs[i%len(langs)]
		target := langs[(i/2)%len(langs)]
		fmt.Fprintf(&sb, `{"guess": %q, "target": %q, "country": %q, "choices": [%q, %q], "date": "2013-%02d-%02d"}`+"\n",
			guess, target, countries[i%len(countries)], langs[i%2], langs[(i+1)%3+1], i%12+1, i%28+1)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJSONFileParallelExecution(t *testing.T) {
	e := New(Config{Parallelism: 4, Executors: 4, SplitSize: 2048})
	path := writeConfusionFile(t, 1000)
	st, err := e.Compile(fmt.Sprintf(`
	  for $o in json-file(%q)
	  where $o.guess eq $o.target
	  return $o`, path))
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsParallel() {
		t.Fatal("json-file FLWOR should run in parallel (DataFrame plan)")
	}
	out, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Compare with a fully local engine (no Spark parallelism): results
	// must be identical, per the data-independence invariant.
	local := New(Config{})
	local.env.Spark = nil
	st2, err := local.Compile(fmt.Sprintf(`
	  for $o in json-file(%q)
	  where $o.guess eq $o.target
	  return $o`, path))
	if err != nil {
		t.Fatal(err)
	}
	if st2.IsParallel() {
		t.Fatal("engine without Spark should run locally")
	}
	out2, err := st2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(out2) {
		t.Fatalf("parallel %d items vs local %d items", len(out), len(out2))
	}
	for i := range out {
		if string(out[i].AppendJSON(nil)) != string(out2[i].AppendJSON(nil)) {
			t.Fatalf("row %d differs between parallel and local execution", i)
		}
	}
}

func TestLocalVsParallelEquivalence(t *testing.T) {
	// The central data-independence invariant: the same query over the
	// same data yields identical results whether executed locally or on
	// the cluster with DataFrames.
	path := writeConfusionFile(t, 600)
	queries := []string{
		`for $o in json-file(%q) where $o.guess eq $o.target return $o.country`,
		`for $o in json-file(%q) group by $t := $o.target order by $t return { "t": $t, "n": count($o) }`,
		`for $o in json-file(%q) order by $o.target ascending, $o.country descending, $o.date descending return $o.date`,
		`for $o in json-file(%q) let $len := string-length($o.guess) where $len ge 6 count $c return $c`,
		`for $o at $i in json-file(%q) where $i le 5 return $i`,
		`for $o in json-file(%q) for $c in $o.choices[] group by $ch := $c order by $ch return { "c": $ch, "n": count($o) }`,
	}
	parallel := New(Config{Parallelism: 4, Executors: 4, SplitSize: 1024})
	local := New(Config{})
	local.env.Spark = nil
	for _, tmpl := range queries {
		q := fmt.Sprintf(tmpl, path)
		pres, err := parallel.QueryJSON(q)
		if err != nil {
			t.Fatalf("parallel: %v\nquery: %s", err, q)
		}
		lres, err := local.QueryJSON(q)
		if err != nil {
			t.Fatalf("local: %v\nquery: %s", err, q)
		}
		if !reflect.DeepEqual(pres, lres) {
			t.Errorf("results diverge for %s:\nparallel %d items: %.200v\nlocal %d items: %.200v",
				q, len(pres), pres, len(lres), lres)
		}
	}
}

func TestGroupByCountOptimization(t *testing.T) {
	// count($o)-only usage after group by must not change results (the
	// §4.7 COUNT() pushdown) — verified against a sum over values form.
	e := newTestEngine()
	q := `
	for $x in parallelize(1 to 100)
	group by $m := $x mod 3
	order by $m
	return { "m": $m, "n": count($x) }`
	got := run(t, e, q)
	want := []string{
		`{"m" : 0, "n" : 33}`,
		`{"m" : 1, "n" : 34}`,
		`{"m" : 2, "n" : 33}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("count optimization:\ngot  %v\nwant %v", got, want)
	}
}

func TestParallelizeFunction(t *testing.T) {
	e := newTestEngine()
	st, err := e.Compile(`for $x in parallelize(1 to 1000) where $x mod 7 eq 0 return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsParallel() {
		t.Error("parallelize should enable the DataFrame plan")
	}
	out, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 142 {
		t.Errorf("%d multiples of 7", len(out))
	}
	// with explicit partition count
	if got := runOne(t, e, `count(parallelize(1 to 50, 5))`); got != "50" {
		t.Errorf("parallelize with partitions count = %s", got)
	}
}

func TestCollections(t *testing.T) {
	e := newTestEngine()
	if err := e.RegisterJSON("products", []string{
		`{"pid": 1, "name": "widget"}`,
		`{"pid": 2, "name": "gadget"}`,
	}); err != nil {
		t.Fatal(err)
	}
	got := run(t, e, `for $p in collection("products") where $p.pid eq 2 return $p.name`)
	if len(got) != 1 || got[0] != `"gadget"` {
		t.Errorf("collection query = %v", got)
	}
	if _, err := e.Query(`collection("nope")`); err == nil {
		t.Error("unregistered collection should error")
	}
}

func TestAggregatePushdown(t *testing.T) {
	path := writeConfusionFile(t, 500)
	e := New(Config{Parallelism: 4, Executors: 4, SplitSize: 1024})
	if got := runOne(t, e, fmt.Sprintf(`count(json-file(%q))`, path)); got != "500" {
		t.Errorf("count = %s", got)
	}
	if got := runOne(t, e, fmt.Sprintf(`exists(json-file(%q))`, path)); got != "true" {
		t.Errorf("exists = %s", got)
	}
	got := runOne(t, e, fmt.Sprintf(`count(distinct-values(json-file(%q).target))`, path))
	if got != "4" {
		t.Errorf("distinct targets = %s", got)
	}
	sum := runOne(t, e, `sum(parallelize(1 to 1000))`)
	if sum != "500500" {
		t.Errorf("sum = %s", sum)
	}
	if got := runOne(t, e, `avg(parallelize((2, 4, 6, 8)))`); got != "5" {
		t.Errorf("avg = %s", got)
	}
	if got := runOne(t, e, `max(parallelize((3, 9, 1)))`); got != "9" {
		t.Errorf("max = %s", got)
	}
}

func TestHeterogeneousDataHandling(t *testing.T) {
	// The paper's Figure 5/7 scenario: country is a string, an array of
	// strings, or missing; the fallback expression picks the first
	// available form.
	e := newTestEngine()
	if err := e.RegisterJSON("messy", []string{
		`{"country": "AU", "target": "French"}`,
		`{"country": ["DE", "AT"], "target": "French"}`,
		`{"target": "German"}`,
		`{"country": "AU", "target": "German"}`,
	}); err != nil {
		t.Fatal(err)
	}
	q := `
	for $o in collection("messy")
	group by $c := ($o.country[], $o.country, "USA")[1],
	         $t := $o.target
	order by $c, $t
	return { "country": $c, "target": $t, "count": count($o) }`
	got := run(t, e, q)
	want := []string{
		`{"country" : "AU", "target" : "French", "count" : 1}`,
		`{"country" : "AU", "target" : "German", "count" : 1}`,
		`{"country" : "DE", "target" : "French", "count" : 1}`,
		`{"country" : "USA", "target" : "German", "count" : 1}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("messy grouping:\ngot  %v\nwant %v", got, want)
	}
}

func TestFigure6TypePreservation(t *testing.T) {
	// Unlike the DataFrame import of Figure 6, heterogeneous values keep
	// their original types.
	e := newTestEngine()
	if err := e.RegisterJSON("het", []string{
		`{"foo": "1", "bar": 2, "foobar": true}`,
		`{"foo": "2", "bar": [4], "foobar": "false"}`,
		`{"foo": "3", "bar": "6"}`,
	}); err != nil {
		t.Fatal(err)
	}
	got := run(t, e, `
	for $o in collection("het")
	order by $o.foo
	return { "bar-is": switch (true)
	    case $o.bar instance of integer return "integer"
	    case $o.bar instance of array return "array"
	    case $o.bar instance of string return "string"
	    default return "other" }`)
	want := []string{
		`{"bar-is" : "integer"}`,
		`{"bar-is" : "array"}`,
		`{"bar-is" : "string"}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("type preservation:\ngot  %v\nwant %v", got, want)
	}
}

func TestWriteTo(t *testing.T) {
	e := New(Config{Parallelism: 3, Executors: 3})
	st, err := e.Compile(`for $x in parallelize(1 to 100) return { "x": $x }`)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "out")
	if err := st.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "_SUCCESS")); err != nil {
		t.Error("_SUCCESS marker missing")
	}
	// Read back through the engine.
	n := runOne(t, e, fmt.Sprintf(`count(json-file(%q))`, dir))
	if n != "100" {
		t.Errorf("read back %s items", n)
	}
}

func TestStatementStream(t *testing.T) {
	e := newTestEngine()
	st, err := e.Compile(`1 to 5`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := st.Stream(func(it Item) error {
		got = append(got, it.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "1,2,3,4,5" {
		t.Errorf("stream = %v", got)
	}
}

func TestToNative(t *testing.T) {
	e := newTestEngine()
	items, err := e.Query(`{ "a": [1, 2.5], "b": null, "c": "s", "d": true }`)
	if err != nil {
		t.Fatal(err)
	}
	native := ToNative(items[0]).(map[string]any)
	if native["b"] != nil || native["c"] != "s" || native["d"] != true {
		t.Errorf("native = %#v", native)
	}
	arr := native["a"].([]any)
	if arr[0] != int64(1) || arr[1] != 2.5 {
		t.Errorf("array = %#v", arr)
	}
}

func TestMaxResultItemsCap(t *testing.T) {
	e := New(Config{Parallelism: 4, Executors: 2, MaxResultItems: 10})
	_, err := e.Query(`for $x in parallelize(1 to 1000) return $x`)
	if err == nil {
		t.Error("materializing 1000 items with a cap of 10 should error")
	}
}

func TestPaperFigure4Query(t *testing.T) {
	// Figure 4: sort + count-clause filter.
	e := newTestEngine()
	if err := e.RegisterJSON("games", []string{
		`{"guess": "French", "target": "French", "language": "French", "country": "AU", "date": "2013-08-19"}`,
		`{"guess": "German", "target": "French", "language": "German", "country": "DE", "date": "2013-08-20"}`,
		`{"guess": "Danish", "target": "Danish", "language": "Danish", "country": "DK", "date": "2013-08-21"}`,
	}); err != nil {
		t.Fatal(err)
	}
	q := `
	for $i in collection("games")
	where $i.guess = $i.target
	order by $i.language ascending,
	         $i.country descending,
	         $i.date descending
	count $c
	where $c le 10
	return $i.language`
	got := run(t, e, q)
	want := []string{`"Danish"`, `"French"`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("figure 4 query:\ngot  %v\nwant %v", got, want)
	}
}

func TestNestedFLWORJoin(t *testing.T) {
	// A nested-loop join through a nested FLWOR, like the Figure 8 query.
	e := newTestEngine()
	if err := e.RegisterJSON("orders", []string{
		`{"oid": 1, "customer": 10, "items": [{"pid": 1}, {"pid": 2}]}`,
		`{"oid": 2, "customer": 11, "items": [{"pid": 2}]}`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterJSON("products", []string{
		`{"pid": 1, "name": "widget"}`,
		`{"pid": 2, "name": "gadget"}`,
	}); err != nil {
		t.Fatal(err)
	}
	q := `
	for $order in collection("orders")
	order by $order.oid
	return {
	  "oid": $order.oid,
	  "names": [
	    for $item in $order.items[]
	    for $p in collection("products")
	    where $p.pid eq $item.pid
	    return $p.name
	  ]
	}`
	got := run(t, e, q)
	want := []string{
		`{"oid" : 1, "names" : ["widget", "gadget"]}`,
		`{"oid" : 2, "names" : ["gadget"]}`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("join:\ngot  %v\nwant %v", got, want)
	}
}

func TestQuantifiedOverCollection(t *testing.T) {
	e := newTestEngine()
	if err := e.RegisterJSON("orders", []string{
		`{"oid": 1, "items": [1, 2]}`,
		`{"oid": 2, "items": [2, 99]}`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterJSON("catalog", []string{`{"pid": 1}`, `{"pid": 2}`}); err != nil {
		t.Fatal(err)
	}
	q := `
	for $o in collection("orders")
	where every $i in $o.items[] satisfies
	      some $p in collection("catalog") satisfies $p.pid eq $i
	return $o.oid`
	got := run(t, e, q)
	if len(got) != 1 || got[0] != "1" {
		t.Errorf("quantified join = %v", got)
	}
}

// Package lexer tokenizes JSONiq queries. It replaces the ANTLR-generated
// lexer of the paper's implementation with a hand-written scanner that
// reports line/column positions for every token.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind int

// Token kinds. Keywords are lexed as Name and classified by the parser,
// because JSONiq keywords are contextual (a field called "for" is legal).
const (
	EOF Kind = iota
	Name
	IntegerLit
	DecimalLit
	DoubleLit
	StringLit
	Symbol
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of query"
	case Name:
		return "name"
	case IntegerLit:
		return "integer literal"
	case DecimalLit:
		return "decimal literal"
	case DoubleLit:
		return "double literal"
	case StringLit:
		return "string literal"
	case Symbol:
		return "symbol"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit. Text holds the name, symbol spelling, or the
// decoded value of a string literal / raw text of numeric literals.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Is reports whether the token is the given symbol or keyword name.
func (t Token) Is(text string) bool {
	return (t.Kind == Symbol || t.Kind == Name) && t.Text == text
}

// Error is a lexical error with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lexical error at %s: %s", e.Pos, e.Msg) }

// multi-character symbols, longest first so the scanner can match greedily.
var multiSymbols = []string{
	"[[", "]]", "||", ":=", "!=", "<=", ">=", "=>", "$$", "!!",
}

const singleSymbols = "{}[]()<>=+-*,.;:$?!@#|/%"

// Lex tokenizes the whole query. Comments (: like this :) nest and are
// discarded.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '"':
		return l.scanString(start)
	case c >= '0' && c <= '9':
		return l.scanNumber(start)
	case c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9':
		return l.scanNumber(start)
	case isNameStart(rune(c)) || c >= utf8.RuneSelf:
		return l.scanName(start)
	}
	for _, sym := range multiSymbols {
		if strings.HasPrefix(l.src[l.pos:], sym) {
			l.advance(len(sym))
			return Token{Kind: Symbol, Text: sym, Pos: start}, nil
		}
	}
	if strings.IndexByte(singleSymbols, c) >= 0 {
		l.advance(1)
		return Token{Kind: Symbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, l.errorf(start, "unexpected character %q", c)
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '(' && l.peekAt(1) == ':':
			start := l.here()
			l.advance(2)
			depth := 1
			for depth > 0 {
				if l.pos >= len(l.src) {
					return l.errorf(start, "unterminated comment")
				}
				if l.peekByte() == '(' && l.peekAt(1) == ':' {
					depth++
					l.advance(2)
				} else if l.peekByte() == ':' && l.peekAt(1) == ')' {
					depth--
					l.advance(2)
				} else {
					l.advance(1)
				}
			}
		default:
			return nil
		}
	}
	return nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNamePart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// scanName scans an NCName. A '-' continues the name when the next
// character is a name character, per XML NCName rules ("json-file" is one
// name; "a - b" needs spaces to be a subtraction).
func (l *lexer) scanName(start Pos) (Token, error) {
	b := strings.Builder{}
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if isNamePart(r) {
			b.WriteRune(r)
			l.advance(size)
			continue
		}
		if r == '-' && l.pos+size < len(l.src) {
			nr, _ := utf8.DecodeRuneInString(l.src[l.pos+size:])
			if isNamePart(nr) {
				b.WriteRune('-')
				l.advance(size)
				continue
			}
		}
		break
	}
	if b.Len() == 0 {
		return Token{}, l.errorf(start, "invalid name")
	}
	return Token{Kind: Name, Text: b.String(), Pos: start}, nil
}

func (l *lexer) scanNumber(start Pos) (Token, error) {
	b := strings.Builder{}
	kind := IntegerLit
	digits := func() {
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			b.WriteByte(l.peekByte())
			l.advance(1)
		}
	}
	digits()
	if l.peekByte() == '.' && !(l.peekAt(1) == '.') {
		kind = DecimalLit
		b.WriteByte('.')
		l.advance(1)
		digits()
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		kind = DoubleLit
		b.WriteByte(c)
		l.advance(1)
		if c := l.peekByte(); c == '+' || c == '-' {
			b.WriteByte(c)
			l.advance(1)
		}
		before := b.Len()
		digits()
		if b.Len() == before {
			return Token{}, l.errorf(start, "exponent requires digits")
		}
	}
	text := b.String()
	if text == "." {
		return Token{}, l.errorf(start, "invalid number")
	}
	return Token{Kind: kind, Text: text, Pos: start}, nil
}

func (l *lexer) scanString(start Pos) (Token, error) {
	l.advance(1) // opening quote
	b := strings.Builder{}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.advance(1)
			return Token{Kind: StringLit, Text: b.String(), Pos: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return Token{}, l.errorf(start, "unterminated escape")
			}
			e := l.src[l.pos+1]
			switch e {
			case '"', '\\', '/':
				b.WriteByte(e)
				l.advance(2)
			case 'n':
				b.WriteByte('\n')
				l.advance(2)
			case 't':
				b.WriteByte('\t')
				l.advance(2)
			case 'r':
				b.WriteByte('\r')
				l.advance(2)
			case 'b':
				b.WriteByte('\b')
				l.advance(2)
			case 'f':
				b.WriteByte('\f')
				l.advance(2)
			case 'u':
				if l.pos+6 > len(l.src) {
					return Token{}, l.errorf(start, "truncated \\u escape")
				}
				var r rune
				if _, err := fmt.Sscanf(l.src[l.pos+2:l.pos+6], "%04x", &r); err != nil {
					return Token{}, l.errorf(start, "invalid \\u escape")
				}
				b.WriteRune(r)
				l.advance(6)
			default:
				return Token{}, l.errorf(start, "invalid escape \\%c", e)
			}
		case '\n':
			return Token{}, l.errorf(start, "unterminated string literal")
		default:
			b.WriteByte(c)
			l.advance(1)
		}
	}
	return Token{}, l.errorf(start, "unterminated string literal")
}

package lexer

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestBasicTokens(t *testing.T) {
	toks := kinds(t, `for $x in json-file("f.json") return $x.a[[1]]`)
	want := []struct {
		kind Kind
		text string
	}{
		{Name, "for"}, {Symbol, "$"}, {Name, "x"}, {Name, "in"},
		{Name, "json-file"}, {Symbol, "("}, {StringLit, "f.json"}, {Symbol, ")"},
		{Name, "return"}, {Symbol, "$"}, {Name, "x"}, {Symbol, "."}, {Name, "a"},
		{Symbol, "[["}, {IntegerLit, "1"}, {Symbol, "]]"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("%d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestNumberKinds(t *testing.T) {
	toks := kinds(t, "1 2.5 3e4 0.5e-2")
	wantKinds := []Kind{IntegerLit, DecimalLit, DoubleLit, DoubleLit, EOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("tok %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	toks := kinds(t, `"a\n\"b\"A"`)
	if toks[0].Text != "a\n\"b\"A" {
		t.Errorf("decoded = %q", toks[0].Text)
	}
}

func TestHyphenNameRule(t *testing.T) {
	toks := kinds(t, "a-b a -b a- b")
	if toks[0].Text != "a-b" {
		t.Errorf("a-b lexed as %q", toks[0].Text)
	}
	if toks[1].Text != "a" || !toks[2].Is("-") || toks[3].Text != "b" {
		t.Errorf("'a -b' lexed as %v %v %v", toks[1], toks[2], toks[3])
	}
	if toks[4].Text != "a" || !toks[5].Is("-") {
		t.Errorf("'a- b' lexed as %v %v", toks[4], toks[5])
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "1 +\n  2")
	if toks[2].Pos.Line != 2 || toks[2].Pos.Col != 3 {
		t.Errorf("token 2 pos = %v", toks[2].Pos)
	}
}

func TestCommentNesting(t *testing.T) {
	toks := kinds(t, "(: a (: b :) c :) 42")
	if toks[0].Kind != IntegerLit {
		t.Errorf("first token after comment = %v", toks[0])
	}
	if _, err := Lex("(: unterminated"); err == nil {
		t.Error("unterminated comment should fail")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"open`, "1e", "`", `"\q"`, "\"nl\n\""} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestUnicodeNames(t *testing.T) {
	toks := kinds(t, "héllo_wörld")
	if toks[0].Kind != Name || toks[0].Text != "héllo_wörld" {
		t.Errorf("unicode name = %+v", toks[0])
	}
}

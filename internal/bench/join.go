package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"rumble"
	"rumble/internal/datagen"
)

// ordersGenerator emits order objects whose "cust" key is uniform over the
// customer id space, so a join fan-out is predictable (~n/customers orders
// per customer).
type ordersGenerator struct {
	rng       *rand.Rand
	customers int
	oid       int64
}

func (g *ordersGenerator) Next() []byte {
	g.oid++
	return []byte(fmt.Sprintf(`{"oid": %d, "cust": %d, "amount": %d}`,
		g.oid, g.rng.Intn(g.customers), g.rng.Intn(1000)))
}

// customersGenerator emits one customer object per sequential id.
type customersGenerator struct{ cid int64 }

func (g *customersGenerator) Next() []byte {
	g.cid++
	return []byte(fmt.Sprintf(`{"cid": %d, "name": "customer-%d"}`, g.cid-1, g.cid-1))
}

// JoinDataset generates (or reuses) an orders/customers dataset pair for
// the join benchmark: n orders referencing n/10 customers.
func JoinDataset(baseDir string, n int) (orders, customers string, err error) {
	c := n / 10
	if c < 1 {
		c = 1
	}
	orders = filepath.Join(baseDir, fmt.Sprintf("orders-%d", n))
	if !ready(orders) {
		gen := &ordersGenerator{rng: rand.New(rand.NewSource(2024)), customers: c}
		if err := datagen.WriteDataset(orders, gen, n, parts(n)); err != nil {
			return "", "", err
		}
	}
	customers = filepath.Join(baseDir, fmt.Sprintf("customers-%d", c))
	if !ready(customers) {
		if err := datagen.WriteDataset(customers, &customersGenerator{}, c, parts(c)); err != nil {
			return "", "", err
		}
	}
	return orders, customers, nil
}

// JoinQuery is the two-source equality-predicate FLWOR of the join
// benchmark: every order is matched with its customer and aggregated, so
// the result is a single count and timing measures the join itself rather
// than result materialization.
func JoinQuery(orders, customers string) string {
	return fmt.Sprintf(`count(
		for $o in json-file(%q)
		for $c in json-file(%q)
		where $o.cust eq $c.cid
		return $c.name)`, orders, customers)
}

// RunJoin measures the statically detected hash join against the
// nested-loop fallback (DisableJoin) across dataset sizes. The nested loop
// is O(n^2/10) comparisons while the hash join is O(n) plus a shuffle, so
// the gap must widen superlinearly with n — the asymptotic win the figure
// demonstrates.
func RunJoin(o Options) ([]Row, error) {
	o = o.withDefaults()
	var rows []Row
	for _, n := range o.Sizes {
		orders, customers, err := JoinDataset(o.BaseDir, n)
		if err != nil {
			return nil, err
		}
		q := JoinQuery(orders, customers)
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"Join", false}, {"NestedLoop", true}} {
			eng := rumble.New(rumble.Config{Parallelism: o.Parallelism, Executors: o.ExecutorCores,
				SplitSize: o.SplitSize, DisableJoin: mode.disable})
			start := time.Now()
			res, err := eng.Query(q)
			secs := time.Since(start).Seconds()
			status := "ok"
			switch {
			case err != nil:
				status = "error: " + err.Error()
			case len(res) != 1 || int(res[0].(rumble.Int)) != n:
				status = fmt.Sprintf("error: joined %v of %d orders", res, n)
			}
			rows = append(rows, Row{Figure: "join", Engine: mode.name, Query: "join-count",
				Size: n, Seconds: secs, Status: status})
		}
	}
	return rows, nil
}

// Package bench is the figure-reproduction harness: it generates the
// datasets, runs every engine of the paper's evaluation on the paper's
// queries, and produces the series behind each figure (11-15). Both the
// testing.B benchmarks at the repository root and cmd/benchfig drive it.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rumble"
	"rumble/internal/baselines"
	"rumble/internal/baselines/pyspark"
	"rumble/internal/baselines/rawspark"
	"rumble/internal/baselines/singlenode"
	"rumble/internal/baselines/sparksql"
	"rumble/internal/datagen"
	"rumble/internal/spark"
)

// Row is one measurement of a figure's series.
type Row struct {
	Figure    string
	Engine    string
	Query     string
	Size      int     // number of objects
	Executors int     // executor cores (figures 13/14)
	Seconds   float64 // wall-clock end-to-end
	AggSecs   float64 // aggregated task time over the cluster (figure 14)
	Status    string  // "ok", "oom", "timeout"
}

// RumbleEngine adapts the public rumble API to the baselines contract so
// it can be measured next to the hand-written engines.
type RumbleEngine struct {
	Eng *rumble.Engine
}

// NewRumble builds a Rumble adapter with the given engine configuration.
func NewRumble(cfg rumble.Config) *RumbleEngine {
	return &RumbleEngine{Eng: rumble.New(cfg)}
}

// Name implements baselines.Engine.
func (r *RumbleEngine) Name() string { return "Rumble" }

// Run implements baselines.Engine with the shared JSONiq formulations of
// the three standard queries (baselines.JSONiqQuery).
func (r *RumbleEngine) Run(q baselines.Query, path string) (baselines.Result, error) {
	items, err := r.Eng.Query(baselines.JSONiqQuery(q, path))
	if err != nil {
		return baselines.Result{}, err
	}
	switch q {
	case baselines.QueryFilter:
		if len(items) != 1 {
			return baselines.Result{}, fmt.Errorf("rumble adapter: filter returned %d items", len(items))
		}
		return baselines.Result{Count: int64(items[0].(rumble.Int))}, nil
	case baselines.QueryGroup, baselines.QuerySort:
		rows := make([]string, len(items))
		for i, it := range items {
			rows[i] = string(it.(rumble.Str))
		}
		if q == baselines.QueryGroup {
			sort.Strings(rows)
		}
		return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
	default:
		return baselines.Result{}, fmt.Errorf("rumble adapter: unknown query %v", q)
	}
}

// Options tunes a harness run. Zero values pick laptop-scale defaults that
// preserve the paper's shapes.
type Options struct {
	// BaseDir holds generated datasets; defaults to a temp directory.
	BaseDir string
	// Objects is the dataset size for figures 11 and 13.
	Objects int
	// Sizes is the size sweep of figure 12 (defaults to a 1/2/4/8/16
	// geometric sweep scaled down from the paper's millions).
	Sizes []int
	// Budget is the single-node engines' materialization budget in items
	// (the 16 GB of the paper's laptop, scaled).
	Budget int
	// Executors is the executor sweep of figure 14.
	Executors []int
	// Scales is the replication sweep of figure 15.
	Scales []int
	// Parallelism and ExecutorCores configure the Spark contexts.
	Parallelism   int
	ExecutorCores int
	// SplitSize is the storage split size for parallel scans.
	SplitSize int64
	// IOLatency enables storage latency simulation for figures 14/15.
	IOLatency time.Duration
}

func (o Options) withDefaults() Options {
	if o.BaseDir == "" {
		o.BaseDir = filepath.Join(os.TempDir(), "rumble-bench")
	}
	if o.Objects == 0 {
		o.Objects = 100_000
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{12_500, 25_000, 50_000, 100_000, 200_000}
	}
	if o.Budget == 0 {
		o.Budget = 60_000
	}
	if len(o.Executors) == 0 {
		o.Executors = []int{1, 2, 4, 8, 16, 32}
	}
	if len(o.Scales) == 0 {
		o.Scales = []int{1, 2, 4, 8, 16}
	}
	if o.Parallelism == 0 {
		o.Parallelism = 8
	}
	if o.ExecutorCores == 0 {
		o.ExecutorCores = 4
	}
	if o.SplitSize == 0 {
		o.SplitSize = 1 << 20
	}
	return o
}

// ConfusionDataset generates (or reuses) a confusion dataset of n objects
// and returns its path.
func ConfusionDataset(baseDir string, n int) (string, error) {
	dir := filepath.Join(baseDir, fmt.Sprintf("confusion-%d", n))
	if ready(dir) {
		return dir, nil
	}
	if err := datagen.WriteDataset(dir, datagen.NewConfusionGenerator(2024), n, parts(n)); err != nil {
		return "", err
	}
	return dir, nil
}

// RedditDataset generates (or reuses) a reddit dataset of n objects.
func RedditDataset(baseDir string, n int) (string, error) {
	dir := filepath.Join(baseDir, fmt.Sprintf("reddit-%d", n))
	if ready(dir) {
		return dir, nil
	}
	if err := datagen.WriteDataset(dir, datagen.NewRedditGenerator(2024), n, parts(n)); err != nil {
		return "", err
	}
	return dir, nil
}

func ready(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, "_SUCCESS"))
	return err == nil
}

func parts(n int) int {
	p := n / 25_000
	if p < 2 {
		p = 2
	}
	if p > 32 {
		p = 32
	}
	return p
}

func timed(f func() error) (float64, string) {
	start := time.Now()
	err := f()
	secs := time.Since(start).Seconds()
	switch {
	case err == nil:
		return secs, "ok"
	case err == singlenode.ErrOutOfMemory:
		return secs, "oom"
	default:
		return secs, "error: " + err.Error()
	}
}

// sparkEngines builds the four Spark-based engines of figures 11/13 on
// fresh contexts.
func sparkEngines(o Options) []baselines.Engine {
	mk := func() *spark.Context {
		return spark.NewContext(spark.Config{
			Parallelism: o.Parallelism,
			Executors:   o.ExecutorCores,
			IOLatency:   o.IOLatency,
		})
	}
	return []baselines.Engine{
		NewRumble(rumble.Config{Parallelism: o.Parallelism, Executors: o.ExecutorCores,
			SplitSize: o.SplitSize, IOLatency: o.IOLatency}),
		rawspark.New(mk(), o.SplitSize),
		sparksql.New(mk(), o.SplitSize),
		pyspark.New(mk(), o.SplitSize),
	}
}

var allQueries = []baselines.Query{baselines.QueryFilter, baselines.QueryGroup, baselines.QuerySort}

// RunFigure11 reproduces the local measurements: Rumble vs Spark vs Spark
// SQL vs PySpark on the three standard queries over the confusion dataset.
func RunFigure11(o Options) ([]Row, error) {
	o = o.withDefaults()
	path, err := ConfusionDataset(o.BaseDir, o.Objects)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, q := range allQueries {
		for _, e := range sparkEngines(o) {
			secs, status := timed(func() error {
				_, err := e.Run(q, path)
				return err
			})
			rows = append(rows, Row{Figure: "11", Engine: e.Name(), Query: q.String(),
				Size: o.Objects, Seconds: secs, Status: status})
		}
	}
	return rows, nil
}

// RunFigure12 reproduces the JSONiq-engine comparison: Rumble vs Zorba vs
// Xidel across dataset sizes, with the single-threaded engines' memory
// budget producing the paper's OOM cliffs.
func RunFigure12(o Options) ([]Row, error) {
	o = o.withDefaults()
	for _, size := range o.Sizes {
		if _, err := ConfusionDataset(o.BaseDir, size); err != nil {
			return nil, err
		}
	}
	var rows []Row
	for _, q := range allQueries {
		for _, size := range o.Sizes {
			path, err := ConfusionDataset(o.BaseDir, size)
			if err != nil {
				return nil, err
			}
			engines := []baselines.Engine{
				NewRumble(rumble.Config{Parallelism: o.Parallelism, Executors: o.ExecutorCores,
					SplitSize: o.SplitSize}),
				singlenode.New(singlenode.Zorba, o.Budget),
				singlenode.New(singlenode.Xidel, o.Budget/2),
			}
			for _, e := range engines {
				secs, status := timed(func() error {
					_, err := e.Run(q, path)
					return err
				})
				rows = append(rows, Row{Figure: "12", Engine: e.Name(), Query: q.String(),
					Size: size, Seconds: secs, Status: status})
			}
		}
	}
	return rows, nil
}

// RunFigure13 reproduces the cluster measurements: the figure-11 engines
// on the 20x-duplicated dataset with the 9-node (36 core) configuration,
// scaled to the host.
func RunFigure13(o Options) ([]Row, error) {
	o = o.withDefaults()
	if o.Objects < 200_000 {
		o.Objects = 200_000 // the "20x duplication" scaled down
	}
	o.ExecutorCores *= 2
	o.Parallelism *= 2
	path, err := ConfusionDataset(o.BaseDir, o.Objects)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, q := range allQueries {
		for _, e := range sparkEngines(o) {
			secs, status := timed(func() error {
				_, err := e.Run(q, path)
				return err
			})
			rows = append(rows, Row{Figure: "13", Engine: e.Name(), Query: q.String(),
				Size: o.Objects, Executors: o.ExecutorCores, Seconds: secs, Status: status})
		}
	}
	return rows, nil
}

// RunFigure14 reproduces the speedup analysis: a highly selective filter
// over the Reddit dataset for 1..32 executors, reporting both wall-clock
// runtime and the aggregated task time over the cluster. Storage latency
// simulation lets the overlap extend beyond the host's physical cores, as
// on the paper's EMR cluster.
func RunFigure14(o Options) ([]Row, error) {
	o = o.withDefaults()
	if o.IOLatency == 0 {
		o.IOLatency = 2 * time.Millisecond
	}
	n := o.Objects
	path, err := RedditDataset(o.BaseDir, n)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, ex := range o.Executors {
		eng := NewRumble(rumble.Config{Parallelism: 64, Executors: ex,
			SplitSize: o.SplitSize / 4, IOLatency: o.IOLatency})
		q := fmt.Sprintf(`count(for $c in json-file(%q)
			where $c.score gt 1500 and contains($c.body, "data")
			return $c)`, path)
		start := time.Now()
		_, err := eng.Eng.Query(q)
		secs := time.Since(start).Seconds()
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
		}
		m := eng.Eng.Metrics()
		rows = append(rows, Row{Figure: "14", Engine: "Rumble", Query: "filter",
			Size: n, Executors: ex, Seconds: secs, AggSecs: m.TaskTime.Seconds(), Status: status})
	}
	return rows, nil
}

// RunFigure15 reproduces the big-data scaling analysis: runtime of the
// filter query against replication factors of the Reddit dataset; the
// curve must stay linear.
func RunFigure15(o Options) ([]Row, error) {
	o = o.withDefaults()
	base := o.Objects / 2
	var rows []Row
	for _, scale := range o.Scales {
		n := base * scale
		path, err := RedditDataset(o.BaseDir, n)
		if err != nil {
			return nil, err
		}
		eng := NewRumble(rumble.Config{Parallelism: o.Parallelism, Executors: o.ExecutorCores,
			SplitSize: o.SplitSize, IOLatency: o.IOLatency})
		q := fmt.Sprintf(`count(for $c in json-file(%q)
			where $c.subreddit eq "programming" and $c.score gt 100
			return $c)`, path)
		start := time.Now()
		_, err = eng.Eng.Query(q)
		secs := time.Since(start).Seconds()
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
		}
		rows = append(rows, Row{Figure: "15", Engine: "Rumble", Query: "filter",
			Size: n, Seconds: secs, Status: status})
	}
	return rows, nil
}

// PrintTable renders rows as an aligned text table.
func PrintTable(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-6s %-9s %-7s %10s %5s %9s %9s  %s\n",
		"figure", "engine", "query", "objects", "exec", "wall(s)", "agg(s)", "status")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-9s %-7s %10d %5d %9.3f %9.3f  %s\n",
			r.Figure, r.Engine, r.Query, r.Size, r.Executors, r.Seconds, r.AggSecs, r.Status)
	}
}

// WriteCSV renders rows as CSV.
func WriteCSV(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "figure,engine,query,objects,executors,wall_seconds,agg_seconds,status"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.4f,%.4f,%s\n",
			r.Figure, r.Engine, r.Query, r.Size, r.Executors, r.Seconds, r.AggSecs, r.Status); err != nil {
			return err
		}
	}
	return nil
}

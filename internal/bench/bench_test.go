package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rumble"
	"rumble/internal/baselines"
)

func tinyOptions(t *testing.T) Options {
	return Options{
		BaseDir:       t.TempDir(),
		Objects:       2_000,
		Sizes:         []int{500, 1_000},
		Budget:        100_000,
		Executors:     []int{1, 2},
		Scales:        []int{1, 2},
		Parallelism:   4,
		ExecutorCores: 2,
		SplitSize:     32 << 10,
	}
}

func requireAllOK(t *testing.T, rows []Row, figure string) {
	t.Helper()
	if len(rows) == 0 {
		t.Fatalf("figure %s produced no rows", figure)
	}
	for _, r := range rows {
		if r.Figure != figure {
			t.Errorf("row tagged %q, want %q", r.Figure, figure)
		}
		if r.Status != "ok" {
			t.Errorf("%s/%s/%s failed: %s", r.Figure, r.Engine, r.Query, r.Status)
		}
		if r.Seconds <= 0 {
			t.Errorf("%s/%s/%s has non-positive wall time", r.Figure, r.Engine, r.Query)
		}
	}
}

func TestRunFigure11(t *testing.T) {
	rows, err := RunFigure11(tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, rows, "11")
	if len(rows) != 12 { // 3 queries x 4 engines
		t.Errorf("%d rows, want 12", len(rows))
	}
}

func TestRunFigure12(t *testing.T) {
	rows, err := RunFigure12(tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, rows, "12")
	if len(rows) != 18 { // 3 queries x 2 sizes x 3 engines
		t.Errorf("%d rows, want 18", len(rows))
	}
}

func TestRunFigure12OOMCliff(t *testing.T) {
	o := tinyOptions(t)
	o.Budget = 300 // smaller than the datasets
	rows, err := RunFigure12(o)
	if err != nil {
		t.Fatal(err)
	}
	oom := 0
	for _, r := range rows {
		if r.Status == "oom" {
			oom++
			if r.Engine == "Rumble" {
				t.Error("Rumble must never hit the single-node OOM cliff")
			}
		}
	}
	if oom == 0 {
		t.Error("tiny budget should produce OOM rows for the single-node engines")
	}
}

func TestRunFigure14SpeedupShape(t *testing.T) {
	o := tinyOptions(t)
	o.Objects = 4_000
	rows, err := RunFigure14(o)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, rows, "14")
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// More executors must not be slower by more than noise; with simulated
	// I/O latency 2 executors should be measurably faster than 1.
	if rows[1].Seconds > rows[0].Seconds*1.05 {
		t.Errorf("no speedup: 1 exec %.3fs, 2 exec %.3fs", rows[0].Seconds, rows[1].Seconds)
	}
	if rows[0].AggSecs <= 0 {
		t.Error("aggregated task time missing")
	}
}

func TestRunFigure15Linearity(t *testing.T) {
	o := tinyOptions(t)
	o.Objects = 8_000
	o.Scales = []int{1, 4}
	rows, err := RunFigure15(o)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, rows, "15")
	// 4x the data should take noticeably more than 1.5x the time and not
	// explode past ~12x (linear within generous noise bounds).
	ratio := rows[1].Seconds / rows[0].Seconds
	if ratio < 1.5 || ratio > 12 {
		t.Errorf("scaling ratio %.2f outside linear envelope", ratio)
	}
}

func TestRumbleAdapterMatchesBaselines(t *testing.T) {
	o := tinyOptions(t)
	path, err := ConfusionDataset(o.BaseDir, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRumble(rumble.Config{Parallelism: 4, Executors: 2, SplitSize: o.SplitSize})
	engines := sparkEngines(o)
	for _, q := range []baselines.Query{baselines.QueryFilter, baselines.QueryGroup, baselines.QuerySort} {
		want, err := r.Run(q, path)
		if err != nil {
			t.Fatalf("rumble %s: %v", q, err)
		}
		for _, e := range engines[1:] { // skip the duplicate Rumble
			got, err := e.Run(q, path)
			if err != nil {
				t.Fatalf("%s %s: %v", e.Name(), q, err)
			}
			if got.Count != want.Count {
				t.Errorf("%s: %s count %d != rumble %d", q, e.Name(), got.Count, want.Count)
			}
			if len(want.Rows) > 0 && strings.Join(got.Rows, "|") != strings.Join(want.Rows, "|") {
				t.Errorf("%s: %s rows diverge from rumble", q, e.Name())
			}
		}
	}
}

func TestTableAndCSVOutput(t *testing.T) {
	rows := []Row{{Figure: "11", Engine: "Rumble", Query: "filter", Size: 10, Seconds: 0.5, Status: "ok"}}
	var tb bytes.Buffer
	PrintTable(&tb, rows)
	if !strings.Contains(tb.String(), "Rumble") {
		t.Error("table output missing engine")
	}
	var cb bytes.Buffer
	if err := WriteCSV(&cb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cb.String(), "figure,engine,query") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(cb.String(), "11,Rumble,filter,10,0,0.5000") {
		t.Errorf("CSV row malformed: %s", cb.String())
	}
}

func TestRunJoinBeatsNestedLoop(t *testing.T) {
	o := tinyOptions(t)
	o.Sizes = []int{400, 1_200}
	rows, err := RunJoin(o)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, rows, "join")
	if len(rows) != 4 { // 2 sizes x {Join, NestedLoop}
		t.Fatalf("%d rows, want 4", len(rows))
	}
	secs := map[string]float64{}
	for _, r := range rows {
		secs[fmt.Sprintf("%s-%d", r.Engine, r.Size)] = r.Seconds
	}
	// At the largest size the nested loop does ~1200*120 key comparisons
	// against the hash join's ~1320 probes; even with all shuffle overhead
	// the join must win clearly. The margin is deliberately loose so the
	// assertion never flakes on slow CI hosts.
	big := o.Sizes[len(o.Sizes)-1]
	join, nested := secs[fmt.Sprintf("Join-%d", big)], secs[fmt.Sprintf("NestedLoop-%d", big)]
	if nested < 2*join {
		t.Errorf("hash join (%.4fs) not clearly faster than nested loop (%.4fs) at n=%d",
			join, nested, big)
	}
}

// Package jparse is a streaming JSON parser that builds item.Item values
// directly from bytes, with no intermediate representation — the same
// optimization Rumble obtains from the JSONiter parser. It is the hot path
// of json-file(): every line of a JSON-Lines input goes through Parse.
//
// Number typing follows JSONiq: an integer literal becomes an integer item,
// a literal with a fraction part becomes a decimal, and a literal with an
// exponent becomes a double.
package jparse

import (
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"

	"rumble/internal/item"
)

// Parse parses a single JSON value from data. Trailing whitespace is
// permitted; any other trailing content is an error.
func Parse(data []byte) (item.Item, error) {
	p := parser{data: data}
	p.skipSpace()
	v, err := p.parseValue(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return nil, p.errorf("trailing content at offset %d", p.pos)
	}
	return v, nil
}

// maxDepth bounds recursion so that adversarial inputs cannot overflow the
// stack of an executor goroutine.
const maxDepth = 512

type parser struct {
	data []byte
	pos  int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("json: "+format, args...)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseValue(depth int) (item.Item, error) {
	if depth > maxDepth {
		return nil, p.errorf("value nested deeper than %d levels", maxDepth)
	}
	if p.pos >= len(p.data) {
		return nil, p.errorf("unexpected end of input")
	}
	switch c := p.data[p.pos]; c {
	case '{':
		return p.parseObject(depth)
	case '[':
		return p.parseArray(depth)
	case '"':
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return item.Str(s), nil
	case 't':
		if err := p.expect("true"); err != nil {
			return nil, err
		}
		return item.Bool(true), nil
	case 'f':
		if err := p.expect("false"); err != nil {
			return nil, err
		}
		return item.Bool(false), nil
	case 'n':
		if err := p.expect("null"); err != nil {
			return nil, err
		}
		return item.Null{}, nil
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			return p.parseNumber()
		}
		return nil, p.errorf("unexpected character %q at offset %d", c, p.pos)
	}
}

func (p *parser) expect(lit string) error {
	if p.pos+len(lit) > len(p.data) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errorf("invalid literal at offset %d", p.pos)
	}
	p.pos += len(lit)
	return nil
}

func (p *parser) parseObject(depth int) (item.Item, error) {
	p.pos++ // '{'
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return item.NewObject(nil, nil), nil
	}
	var keys []string
	var values []item.Item
	for {
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return nil, p.errorf("expected object key at offset %d", p.pos)
		}
		k, err := p.parseString()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return nil, p.errorf("expected ':' at offset %d", p.pos)
		}
		p.pos++
		p.skipSpace()
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
		values = append(values, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, p.errorf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return item.NewObject(keys, values), nil
		default:
			return nil, p.errorf("expected ',' or '}' at offset %d", p.pos)
		}
	}
}

func (p *parser) parseArray(depth int) (item.Item, error) {
	p.pos++ // '['
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return item.NewArray(nil), nil
	}
	var members []item.Item
	for {
		p.skipSpace()
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		members = append(members, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, p.errorf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return item.NewArray(members), nil
		default:
			return nil, p.errorf("expected ',' or ']' at offset %d", p.pos)
		}
	}
}

func (p *parser) parseString() (string, error) {
	p.pos++ // opening quote
	start := p.pos
	// Fast path: scan for a quote with no escapes or control characters.
	for i := p.pos; i < len(p.data); i++ {
		c := p.data[i]
		if c == '"' {
			s := string(p.data[start:i])
			p.pos = i + 1
			return s, nil
		}
		if c == '\\' || c < 0x20 {
			return p.parseStringSlow(start, i)
		}
	}
	return "", p.errorf("unterminated string")
}

func (p *parser) parseStringSlow(start, firstSpecial int) (string, error) {
	buf := make([]byte, 0, len(p.data)-start)
	buf = append(buf, p.data[start:firstSpecial]...)
	i := firstSpecial
	for i < len(p.data) {
		c := p.data[i]
		switch {
		case c == '"':
			p.pos = i + 1
			return string(buf), nil
		case c < 0x20:
			return "", p.errorf("raw control character 0x%02x in string", c)
		case c == '\\':
			i++
			if i >= len(p.data) {
				return "", p.errorf("unterminated escape")
			}
			switch e := p.data[i]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
				i++
			case 'n':
				buf = append(buf, '\n')
				i++
			case 't':
				buf = append(buf, '\t')
				i++
			case 'r':
				buf = append(buf, '\r')
				i++
			case 'b':
				buf = append(buf, '\b')
				i++
			case 'f':
				buf = append(buf, '\f')
				i++
			case 'u':
				r, n, err := p.parseUnicodeEscape(i - 1)
				if err != nil {
					return "", err
				}
				buf = utf8.AppendRune(buf, r)
				i += n
			default:
				return "", p.errorf("invalid escape \\%c", e)
			}
		default:
			buf = append(buf, c)
			i++
		}
	}
	return "", p.errorf("unterminated string")
}

// parseUnicodeEscape parses \uXXXX (and a following low surrogate if
// needed) starting at the backslash position. It returns the rune and the
// total number of bytes consumed starting at the 'u'.
func (p *parser) parseUnicodeEscape(backslash int) (rune, int, error) {
	hex := func(at int) (rune, error) {
		if at+4 > len(p.data) {
			return 0, p.errorf("truncated \\u escape")
		}
		v, err := strconv.ParseUint(string(p.data[at:at+4]), 16, 32)
		if err != nil {
			return 0, p.errorf("invalid \\u escape")
		}
		return rune(v), nil
	}
	r, err := hex(backslash + 2)
	if err != nil {
		return 0, 0, err
	}
	if utf16.IsSurrogate(r) {
		lo := backslash + 6
		if lo+6 <= len(p.data) && p.data[lo] == '\\' && p.data[lo+1] == 'u' {
			r2, err := hex(lo + 2)
			if err != nil {
				return 0, 0, err
			}
			if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
				return dec, 11, nil
			}
		}
		return utf8.RuneError, 5, nil
	}
	return r, 5, nil
}

func (p *parser) parseNumber() (item.Item, error) {
	start := p.pos
	i := p.pos
	if i < len(p.data) && p.data[i] == '-' {
		i++
	}
	digits := 0
	for i < len(p.data) && p.data[i] >= '0' && p.data[i] <= '9' {
		i++
		digits++
	}
	if digits == 0 {
		return nil, p.errorf("invalid number at offset %d", start)
	}
	hasFrac, hasExp := false, false
	if i < len(p.data) && p.data[i] == '.' {
		hasFrac = true
		i++
		fd := 0
		for i < len(p.data) && p.data[i] >= '0' && p.data[i] <= '9' {
			i++
			fd++
		}
		if fd == 0 {
			return nil, p.errorf("digits required after decimal point at offset %d", i)
		}
	}
	if i < len(p.data) && (p.data[i] == 'e' || p.data[i] == 'E') {
		hasExp = true
		i++
		if i < len(p.data) && (p.data[i] == '+' || p.data[i] == '-') {
			i++
		}
		ed := 0
		for i < len(p.data) && p.data[i] >= '0' && p.data[i] <= '9' {
			i++
			ed++
		}
		if ed == 0 {
			return nil, p.errorf("digits required in exponent at offset %d", i)
		}
	}
	text := string(p.data[start:i])
	p.pos = i
	switch {
	case hasExp:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errorf("invalid double %q", text)
		}
		return item.Double(f), nil
	case hasFrac:
		d, err := item.DecimalFromString(text)
		if err != nil {
			return nil, p.errorf("invalid decimal %q", text)
		}
		return d, nil
	default:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			// Out-of-range integers widen to decimal rather than failing.
			d, derr := item.DecimalFromString(text)
			if derr != nil {
				return nil, p.errorf("invalid integer %q", text)
			}
			return d, nil
		}
		return item.Int(n), nil
	}
}

package jparse

import (
	"strings"
	"testing"
	"testing/quick"

	"rumble/internal/item"
)

func mustParse(t *testing.T, s string) item.Item {
	t.Helper()
	it, err := Parse([]byte(s))
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return it
}

func TestParseAtoms(t *testing.T) {
	cases := []struct {
		in   string
		kind item.Kind
		out  string
	}{
		{"null", item.KindNull, "null"},
		{"true", item.KindBoolean, "true"},
		{"false", item.KindBoolean, "false"},
		{"0", item.KindInteger, "0"},
		{"-17", item.KindInteger, "-17"},
		{"3.25", item.KindDecimal, "3.25"},
		{"-0.5", item.KindDecimal, "-0.5"},
		{"1e3", item.KindDouble, "1000"},
		{"2.5E-1", item.KindDouble, "0.25"},
		{`"hi"`, item.KindString, `"hi"`},
		{`""`, item.KindString, `""`},
	}
	for _, c := range cases {
		it := mustParse(t, c.in)
		if it.Kind() != c.kind {
			t.Errorf("Parse(%q).Kind = %s, want %s", c.in, it.Kind(), c.kind)
		}
		if got := string(it.AppendJSON(nil)); got != c.out {
			t.Errorf("Parse(%q) serializes as %s, want %s", c.in, got, c.out)
		}
	}
}

func TestNumberTypingFollowsJSONiq(t *testing.T) {
	// integer literal -> integer, fraction -> decimal, exponent -> double
	if mustParse(t, "42").Kind() != item.KindInteger {
		t.Error("42 should be integer")
	}
	if mustParse(t, "42.0").Kind() != item.KindDecimal {
		t.Error("42.0 should be decimal")
	}
	if mustParse(t, "42e0").Kind() != item.KindDouble {
		t.Error("42e0 should be double")
	}
}

func TestHugeIntegerWidensToDecimal(t *testing.T) {
	it := mustParse(t, "123456789012345678901234567890")
	if it.Kind() != item.KindDecimal {
		t.Fatalf("kind = %s, want decimal", it.Kind())
	}
	if it.String() != "123456789012345678901234567890" {
		t.Errorf("value = %s", it)
	}
}

func TestParseStringEscapes(t *testing.T) {
	cases := map[string]string{
		`"a\nb"`:        "a\nb",
		`"a\tb"`:        "a\tb",
		`"q\""`:         `q"`,
		`"back\\slash"`: `back\slash`,
		`"sol\/idus"`:   "sol/idus",
		`"A"`:           "A",
		`"é"`:           "é",
		`"😀"`:           "😀",
	}
	for in, want := range cases {
		it := mustParse(t, in)
		if got := string(it.(item.Str)); got != want {
			t.Errorf("Parse(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestLoneSurrogateBecomesReplacement(t *testing.T) {
	it := mustParse(t, `"\ud800x"`)
	if got := string(it.(item.Str)); got != "�x" {
		t.Errorf("lone surrogate decoded to %q", got)
	}
}

func TestParseNested(t *testing.T) {
	it := mustParse(t, `{"a": [1, {"b": null}, "s"], "c": {"d": [true]}}`)
	o := it.(*item.Object)
	a, _ := o.Get("a")
	arr := a.(*item.Array)
	if arr.Len() != 3 {
		t.Fatalf("a has %d members", arr.Len())
	}
	inner := arr.Member(1).(*item.Object)
	if v, _ := inner.Get("b"); v.Kind() != item.KindNull {
		t.Error("a[1].b should be null")
	}
}

func TestParsePreservesKeyOrder(t *testing.T) {
	it := mustParse(t, `{"z": 1, "a": 2, "m": 3}`)
	keys := it.(*item.Object).Keys()
	if keys[0] != "z" || keys[1] != "a" || keys[2] != "m" {
		t.Errorf("key order = %v", keys)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "tru", "nul", "{", "[", `"unterminated`, "{]", "[}",
		`{"k" 1}`, `{"k": 1,}x`, "01x", "-", "1.", "1e", "1e+",
		`"bad \q escape"`, "[1 2]", `{"a": 1} extra`, "\x01",
		`{"k"}`, "[1,]]", `"\u12"`,
	}
	for _, s := range bad {
		if _, err := Parse([]byte(s)); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	it := mustParse(t, " \t\n{ \"a\" :\r\n [ 1 , 2 ] } \n")
	if it.Kind() != item.KindObject {
		t.Error("whitespace-heavy parse failed")
	}
}

func TestDepthLimit(t *testing.T) {
	deep := strings.Repeat("[", 600) + strings.Repeat("]", 600)
	if _, err := Parse([]byte(deep)); err == nil {
		t.Error("600-deep nesting should be rejected")
	}
	ok := strings.Repeat("[", 100) + strings.Repeat("]", 100)
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("100-deep nesting should parse: %v", err)
	}
}

// Property: parse ∘ serialize ∘ parse == parse (serialization round-trips).
func TestRoundTripProperty(t *testing.T) {
	f := func(s string, n int64, b bool, f64 float64) bool {
		obj := item.NewObject(
			[]string{"s", "n", "b", "f", "arr"},
			[]item.Item{item.Str(s), item.Int(n), item.Bool(b), item.Double(f64),
				item.NewArray([]item.Item{item.Null{}, item.Str(s)})},
		)
		ser1 := obj.AppendJSON(nil)
		back, err := Parse(ser1)
		if err != nil {
			return false
		}
		ser2 := back.AppendJSON(nil)
		return string(ser1) == string(ser2)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseConfusionObject(b *testing.B) {
	line := []byte(`{"guess": "French", "target": "French", "country": "AU", "choices": ["Burmese", "Danish", "French", "Swedish"], "sample": "92f9e1c17e6df988780527341fdb471d", "date": "2013-08-19"}`)
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(line); err != nil {
			b.Fatal(err)
		}
	}
}

package datagen

import (
	"path/filepath"
	"testing"

	"rumble/internal/dfs"
	"rumble/internal/item"
	"rumble/internal/jparse"
)

func TestConfusionRecordsParse(t *testing.T) {
	g := NewConfusionGenerator(1)
	for i := 0; i < 1000; i++ {
		line := g.Next()
		it, err := jparse.Parse(line)
		if err != nil {
			t.Fatalf("record %d invalid: %v\n%s", i, err, line)
		}
		obj := it.(*item.Object)
		for _, field := range []string{"guess", "target", "country", "choices", "sample", "date"} {
			if _, ok := obj.Get(field); !ok {
				t.Fatalf("record %d missing %q", i, field)
			}
		}
		choices, _ := obj.Get("choices")
		if choices.Kind() != item.KindArray {
			t.Fatalf("choices is %s", choices.Kind())
		}
	}
}

func TestConfusionAccuracyRate(t *testing.T) {
	g := NewConfusionGenerator(7)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		it, err := jparse.Parse(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		obj := it.(*item.Object)
		guess, _ := obj.Get("guess")
		target, _ := obj.Get("target")
		if item.DeepEqual(guess, target) {
			correct++
		}
	}
	rate := float64(correct) / n
	if rate < 0.70 || rate > 0.78 {
		t.Errorf("accuracy rate = %.3f, want ~0.72-0.74", rate)
	}
}

func TestConfusionDeterministic(t *testing.T) {
	a, b := NewConfusionGenerator(42), NewConfusionGenerator(42)
	for i := 0; i < 100; i++ {
		if string(a.Next()) != string(b.Next()) {
			t.Fatal("same seed should produce identical records")
		}
	}
	c := NewConfusionGenerator(43)
	same := 0
	a2 := NewConfusionGenerator(42)
	for i := 0; i < 100; i++ {
		if string(a2.Next()) == string(c.Next()) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/100 identical records", same)
	}
}

func TestRedditRecordsParseAndDrift(t *testing.T) {
	g := NewRedditGenerator(3)
	editedBool, editedNum := 0, 0
	gildingsNum, gildingsObj := 0, 0
	hasMedia := 0
	for i := 0; i < 5000; i++ {
		line := g.Next()
		it, err := jparse.Parse(line)
		if err != nil {
			t.Fatalf("record %d invalid: %v\n%s", i, err, line)
		}
		obj := it.(*item.Object)
		if v, ok := obj.Get("edited"); ok {
			switch v.Kind() {
			case item.KindBoolean:
				editedBool++
			case item.KindInteger:
				editedNum++
			}
		}
		if v, ok := obj.Get("gildings"); ok {
			switch v.Kind() {
			case item.KindInteger:
				gildingsNum++
			case item.KindObject:
				gildingsObj++
			}
		}
		if _, ok := obj.Get("media"); ok {
			hasMedia++
		}
	}
	if editedBool == 0 || editedNum == 0 {
		t.Error("edited should be heterogeneous (bool and timestamp)")
	}
	if gildingsNum == 0 || gildingsObj == 0 {
		t.Error("gildings should drift between number and object")
	}
	if hasMedia == 0 {
		t.Error("some records should carry nested media objects")
	}
}

func TestWriteDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "confusion")
	if err := WriteDataset(dir, NewConfusionGenerator(1), 250, 4); err != nil {
		t.Fatal(err)
	}
	splits, err := dfs.ListSplits(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("%d splits, want 4 parts", len(splits))
	}
	total := 0
	for _, s := range splits {
		if err := dfs.ReadLines(s, nil, func(line []byte) error {
			if _, err := jparse.Parse(line); err != nil {
				return err
			}
			total++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != 250 {
		t.Errorf("read %d records, want 250", total)
	}
}

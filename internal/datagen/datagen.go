// Package datagen generates the synthetic stand-ins for the paper's two
// evaluation datasets: the Great Language Game "confusion" dataset (highly
// structured JSON objects, §6.1) and the Reddit comments dataset
// (semi-structured, with schema drift across years and heterogeneous
// fields). Generation is deterministic for a given seed.
package datagen

import (
	"fmt"
	"math/rand"

	"rumble/internal/dfs"
)

// Languages mirrors the choice set of the Great Language Game.
var Languages = []string{
	"French", "German", "Danish", "Swedish", "Norwegian", "Dutch",
	"Italian", "Spanish", "Portuguese", "Romanian", "Polish", "Czech",
	"Russian", "Ukrainian", "Turkish", "Arabic", "Korean", "Mandarin",
	"Cantonese", "Vietnamese", "Thai", "Burmese", "Hungarian", "Finnish",
}

// Countries is the country-code pool for the confusion dataset.
var Countries = []string{
	"AU", "US", "GB", "DE", "FR", "SE", "DK", "NO", "NL", "IT",
	"ES", "PT", "PL", "CZ", "RU", "UA", "TR", "CA", "NZ", "CH",
}

// ConfusionGenerator produces confusion-dataset objects. About 72% of
// guesses are correct, matching the real dataset's overall accuracy.
type ConfusionGenerator struct {
	rng *rand.Rand
}

// NewConfusionGenerator seeds a generator.
func NewConfusionGenerator(seed int64) *ConfusionGenerator {
	return &ConfusionGenerator{rng: rand.New(rand.NewSource(seed))}
}

// Next returns one JSON-Lines record.
func (g *ConfusionGenerator) Next() []byte {
	r := g.rng
	target := Languages[r.Intn(len(Languages))]
	var guess string
	if r.Float64() < 0.72 {
		guess = target
	} else {
		guess = Languages[r.Intn(len(Languages))]
	}
	nChoices := 2 + r.Intn(3)*2 // 2, 4 or 6 choices
	choices := make([]string, 0, nChoices)
	targetAt := r.Intn(nChoices)
	for i := 0; i < nChoices; i++ {
		if i == targetAt {
			choices = append(choices, target)
		} else {
			choices = append(choices, Languages[r.Intn(len(Languages))])
		}
	}
	sample := fmt.Sprintf("%08x%08x%08x%08x", r.Uint32(), r.Uint32(), r.Uint32(), r.Uint32())
	date := fmt.Sprintf("20%02d-%02d-%02d", 13+r.Intn(3), 1+r.Intn(12), 1+r.Intn(28))
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"guess": "`...)
	buf = append(buf, guess...)
	buf = append(buf, `", "target": "`...)
	buf = append(buf, target...)
	buf = append(buf, `", "country": "`...)
	buf = append(buf, Countries[r.Intn(len(Countries))]...)
	buf = append(buf, `", "choices": [`...)
	for i, c := range choices {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = append(buf, '"')
		buf = append(buf, c...)
		buf = append(buf, '"')
	}
	buf = append(buf, `], "sample": "`...)
	buf = append(buf, sample...)
	buf = append(buf, `", "date": "`...)
	buf = append(buf, date...)
	buf = append(buf, `"}`...)
	return buf
}

// Subreddits is the subreddit pool for the Reddit generator.
var Subreddits = []string{
	"AskReddit", "funny", "pics", "gaming", "worldnews", "todayilearned",
	"science", "movies", "news", "programming", "datasets", "aww",
}

var redditWords = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"data", "query", "json", "nested", "heterogeneous", "spark", "scale",
	"comment", "thread", "upvote", "karma", "repost", "original", "source",
}

// RedditGenerator produces semi-structured Reddit-comment objects with the
// schema drift the paper describes: fields appear and change type across
// "years" of data — edited is false or a timestamp, distinguished is
// null/absent/string, score_hidden appears only in later years, media is
// occasionally a nested object, and gildings switches from a number to an
// object.
type RedditGenerator struct {
	rng *rand.Rand
}

// NewRedditGenerator seeds a generator.
func NewRedditGenerator(seed int64) *RedditGenerator {
	return &RedditGenerator{rng: rand.New(rand.NewSource(seed))}
}

// Next returns one JSON-Lines record.
func (g *RedditGenerator) Next() []byte {
	r := g.rng
	year := 2008 + r.Intn(8) // 2008..2015, the paper's range
	created := int64(year-1970)*365*24*3600 + int64(r.Intn(365*24*3600))
	score := r.Intn(2000) - 100
	nWords := 3 + r.Intn(20)
	buf := make([]byte, 0, 512)
	buf = append(buf, `{"id": "t1_`...)
	buf = appendBase36(buf, r.Int63n(1<<40))
	buf = append(buf, `", "author": "user`...)
	buf = appendInt(buf, int64(r.Intn(500000)))
	buf = append(buf, `", "subreddit": "`...)
	buf = append(buf, Subreddits[r.Intn(len(Subreddits))]...)
	buf = append(buf, `", "body": "`...)
	for i := 0; i < nWords; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, redditWords[r.Intn(len(redditWords))]...)
	}
	buf = append(buf, `", "score": `...)
	buf = appendInt(buf, int64(score))
	buf = append(buf, `, "created_utc": `...)
	buf = appendInt(buf, created)
	// ups/downs only exist in early years.
	if year <= 2012 {
		buf = append(buf, `, "ups": `...)
		buf = appendInt(buf, int64(score+r.Intn(50)))
		buf = append(buf, `, "downs": `...)
		buf = appendInt(buf, int64(r.Intn(50)))
	}
	// edited: false or a timestamp (type heterogeneity).
	if r.Float64() < 0.9 {
		buf = append(buf, `, "edited": false`...)
	} else {
		buf = append(buf, `, "edited": `...)
		buf = appendInt(buf, created+int64(r.Intn(10000)))
	}
	// distinguished: absent, null or a string.
	switch r.Intn(10) {
	case 0:
		buf = append(buf, `, "distinguished": "moderator"`...)
	case 1:
		buf = append(buf, `, "distinguished": null`...)
	}
	// score_hidden appears from 2013 on.
	if year >= 2013 {
		if r.Intn(2) == 0 {
			buf = append(buf, `, "score_hidden": true`...)
		} else {
			buf = append(buf, `, "score_hidden": false`...)
		}
	}
	// gildings: number in early years, object later (schema drift).
	if year >= 2014 {
		buf = append(buf, `, "gildings": {"gid_1": `...)
		buf = appendInt(buf, int64(r.Intn(3)))
		buf = append(buf, `, "gid_2": `...)
		buf = appendInt(buf, int64(r.Intn(2)))
		buf = append(buf, `}`...)
	} else if r.Intn(4) == 0 {
		buf = append(buf, `, "gildings": `...)
		buf = appendInt(buf, int64(r.Intn(3)))
	}
	// media: occasionally a nested object.
	if r.Intn(20) == 0 {
		buf = append(buf, `, "media": {"type": "image", "dims": [`...)
		buf = appendInt(buf, int64(100+r.Intn(1900)))
		buf = append(buf, `, `...)
		buf = appendInt(buf, int64(100+r.Intn(1000)))
		buf = append(buf, `]}`...)
	}
	buf = append(buf, `, "controversiality": `...)
	buf = appendInt(buf, int64(r.Intn(2)))
	buf = append(buf, '}')
	return buf
}

func appendInt(buf []byte, v int64) []byte {
	return fmt.Appendf(buf, "%d", v)
}

func appendBase36(buf []byte, v int64) []byte {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [16]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = digits[v%36]
		v /= 36
	}
	return append(buf, tmp[i:]...)
}

// Generator is a seeded record source.
type Generator interface {
	Next() []byte
}

// WriteDataset writes n records from gen to dir as numParts part files.
func WriteDataset(dir string, gen Generator, n, numParts int) error {
	if numParts <= 0 {
		numParts = 1
	}
	w, err := dfs.NewWriter(dir)
	if err != nil {
		return err
	}
	perPart := n / numParts
	extra := n % numParts
	for p := 0; p < numParts; p++ {
		pw, err := w.Part(p)
		if err != nil {
			return err
		}
		count := perPart
		if p < extra {
			count++
		}
		for i := 0; i < count; i++ {
			if err := pw.WriteLine(gen.Next()); err != nil {
				pw.Close()
				return err
			}
		}
		if err := pw.Close(); err != nil {
			return err
		}
	}
	return w.Commit()
}

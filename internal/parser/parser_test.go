package parser

import (
	"testing"

	"rumble/internal/ast"
	"rumble/internal/item"
)

func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestLiterals(t *testing.T) {
	cases := map[string]item.Kind{
		"1":     item.KindInteger,
		"2.5":   item.KindDecimal,
		"1e3":   item.KindDouble,
		`"s"`:   item.KindString,
		"true":  item.KindBoolean,
		"false": item.KindBoolean,
		"null":  item.KindNull,
	}
	for src, kind := range cases {
		e := mustExpr(t, src)
		lit, ok := e.(*ast.Literal)
		if !ok {
			t.Errorf("%q parsed to %T, want Literal", src, e)
			continue
		}
		if lit.Value.Kind() != kind {
			t.Errorf("%q literal kind = %s, want %s", src, lit.Value.Kind(), kind)
		}
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	e := mustExpr(t, "1 + 2 * 3")
	add, ok := e.(*ast.Arith)
	if !ok || add.Op != item.OpAdd {
		t.Fatalf("top = %#v, want +", e)
	}
	mul, ok := add.R.(*ast.Arith)
	if !ok || mul.Op != item.OpMul {
		t.Fatalf("right = %#v, want *", add.R)
	}
}

func TestLeftAssociativity(t *testing.T) {
	e := mustExpr(t, "10 - 3 - 2")
	outer := e.(*ast.Arith)
	if outer.Op != item.OpSub {
		t.Fatal("outer not -")
	}
	inner, ok := outer.L.(*ast.Arith)
	if !ok || inner.Op != item.OpSub {
		t.Fatalf("subtraction should be left-associative, left = %#v", outer.L)
	}
}

func TestDivKeywords(t *testing.T) {
	for src, op := range map[string]item.ArithOp{
		"6 div 3": item.OpDiv, "6 idiv 3": item.OpIDiv, "6 mod 3": item.OpMod,
	} {
		e := mustExpr(t, src).(*ast.Arith)
		if e.Op != op {
			t.Errorf("%q op = %v, want %v", src, e.Op, op)
		}
	}
}

func TestNameWithHyphenIsOneToken(t *testing.T) {
	e := mustExpr(t, `distinct-values(1)`)
	fc, ok := e.(*ast.FunctionCall)
	if !ok || fc.Name != "distinct-values" {
		t.Fatalf("parsed %#v", e)
	}
	// with spaces it is a subtraction of two names -> error (names alone
	// are not expressions)
	if _, err := ParseExpr("a - b"); err == nil {
		t.Error("bare names should not parse")
	}
}

func TestComparisonForms(t *testing.T) {
	v := mustExpr(t, "1 eq 2").(*ast.Comparison)
	if v.General || v.Op != "eq" {
		t.Errorf("eq parsed as %+v", v)
	}
	g := mustExpr(t, "1 = 2").(*ast.Comparison)
	if !g.General || g.Op != "=" {
		t.Errorf("= parsed as %+v", g)
	}
	le := mustExpr(t, "1 <= 2").(*ast.Comparison)
	if !le.General || le.Op != "<=" {
		t.Errorf("<= parsed as %+v", le)
	}
}

func TestLogicPrecedence(t *testing.T) {
	e := mustExpr(t, "true or false and false")
	or, ok := e.(*ast.Logic)
	if !ok || or.IsAnd {
		t.Fatalf("top should be or: %#v", e)
	}
	and, ok := or.R.(*ast.Logic)
	if !ok || !and.IsAnd {
		t.Fatalf("right of or should be and: %#v", or.R)
	}
}

func TestRangeAndConcat(t *testing.T) {
	if _, ok := mustExpr(t, "1 to 10").(*ast.RangeExpr); !ok {
		t.Error("range not parsed")
	}
	if _, ok := mustExpr(t, `"a" || "b"`).(*ast.ConcatExpr); !ok {
		t.Error("concat not parsed")
	}
}

func TestObjectConstructor(t *testing.T) {
	e := mustExpr(t, `{ "a": 1, b: 2, $x: 3 }`)
	oc := e.(*ast.ObjectConstructor)
	if len(oc.Keys) != 3 {
		t.Fatalf("%d keys", len(oc.Keys))
	}
	if k, ok := oc.Keys[1].(*ast.Literal); !ok || string(k.Value.(item.Str)) != "b" {
		t.Error("NCName key should become string literal")
	}
	if _, ok := oc.Keys[2].(*ast.VarRef); !ok {
		t.Error("dynamic key should stay an expression")
	}
}

func TestArrayConstructors(t *testing.T) {
	if ac := mustExpr(t, "[]").(*ast.ArrayConstructor); ac.Body != nil {
		t.Error("[] should have nil body")
	}
	ac := mustExpr(t, "[1, 2, 3]").(*ast.ArrayConstructor)
	if _, ok := ac.Body.(*ast.CommaExpr); !ok {
		t.Error("array body should be comma expr")
	}
	// nested arrays exercise the [[ token split
	nested := mustExpr(t, "[[1], [2]]").(*ast.ArrayConstructor)
	body := nested.Body.(*ast.CommaExpr)
	if _, ok := body.Exprs[0].(*ast.ArrayConstructor); !ok {
		t.Error("nested array did not parse")
	}
	if _, ok := mustExpr(t, "[[1]]").(*ast.ArrayConstructor); !ok {
		t.Error("[[1]] should be array of array")
	}
}

func TestPostfixChain(t *testing.T) {
	e := mustExpr(t, `$o.foo[].bar[[1]][$$.x eq 2]`)
	pred, ok := e.(*ast.Predicate)
	if !ok {
		t.Fatalf("top = %#v", e)
	}
	al, ok := pred.Input.(*ast.ArrayLookup)
	if !ok {
		t.Fatalf("pred input = %#v", pred.Input)
	}
	ol, ok := al.Input.(*ast.ObjectLookup)
	if !ok {
		t.Fatalf("array lookup input = %#v", al.Input)
	}
	ub, ok := ol.Input.(*ast.ArrayUnbox)
	if !ok {
		t.Fatalf("lookup input = %#v", ol.Input)
	}
	if _, ok := ub.Input.(*ast.ObjectLookup); !ok {
		t.Fatalf("unbox input = %#v", ub.Input)
	}
}

func TestLookupKeyVariants(t *testing.T) {
	mustExpr(t, `$o."quoted key"`)
	mustExpr(t, `$o.$k`)
	mustExpr(t, `$o.("dyn" || "amic")`)
}

func TestIfSwitchTry(t *testing.T) {
	ife := mustExpr(t, `if (1 eq 1) then "y" else "n"`).(*ast.IfExpr)
	if ife.Cond == nil || ife.Then == nil || ife.Else == nil {
		t.Error("if incomplete")
	}
	sw := mustExpr(t, `switch (2) case 1 return "one" case 2 case 3 return "few" default return "many"`).(*ast.SwitchExpr)
	if len(sw.Cases) != 2 || len(sw.Cases[1].Values) != 2 {
		t.Errorf("switch cases = %+v", sw.Cases)
	}
	tc := mustExpr(t, `try { 1 div 0 } catch * { "caught" }`).(*ast.TryCatch)
	if tc.Try == nil || tc.Catch == nil {
		t.Error("try incomplete")
	}
}

func TestQuantified(t *testing.T) {
	q := mustExpr(t, `every $x in 1 to 3, $y in 4 to 5 satisfies $x lt $y`).(*ast.Quantified)
	if !q.Every || len(q.Bindings) != 2 {
		t.Errorf("quantified = %+v", q)
	}
	s := mustExpr(t, `some $x in (1,2) satisfies $x eq 2`).(*ast.Quantified)
	if s.Every {
		t.Error("some parsed as every")
	}
}

func TestTypeExpressions(t *testing.T) {
	io := mustExpr(t, `5 instance of integer`).(*ast.InstanceOf)
	if io.Type.ItemType != "integer" || io.Type.Occurrence != "" {
		t.Errorf("instance of = %+v", io.Type)
	}
	iop := mustExpr(t, `(1,2) instance of integer+`).(*ast.InstanceOf)
	if iop.Type.Occurrence != "+" {
		t.Errorf("occurrence = %q", iop.Type.Occurrence)
	}
	ca := mustExpr(t, `"5" cast as integer`).(*ast.CastAs)
	if ca.TypeName != "integer" {
		t.Errorf("cast as = %+v", ca)
	}
	cb := mustExpr(t, `"x" castable as double`).(*ast.CastableAs)
	if cb.TypeName != "double" {
		t.Errorf("castable as = %+v", cb)
	}
	tr := mustExpr(t, `() treat as empty-sequence()`).(*ast.TreatAs)
	if !tr.Type.EmptySequence {
		t.Errorf("treat as = %+v", tr.Type)
	}
}

func TestFLWORFull(t *testing.T) {
	src := `
	for $person at $i in json-file("people.json")
	where $person.age le 65
	group by $pos := $person.position
	let $count := count($person)
	order by $count descending empty greatest
	count $c
	return { "position" : $pos, "count" : $count }`
	e := mustExpr(t, src)
	fl := e.(*ast.FLWOR)
	if len(fl.Clauses) != 6 {
		t.Fatalf("%d clauses", len(fl.Clauses))
	}
	fc := fl.Clauses[0].(*ast.ForClause)
	if fc.Var != "person" || fc.PosVar != "i" {
		t.Errorf("for clause = %+v", fc)
	}
	if _, ok := fl.Clauses[1].(*ast.WhereClause); !ok {
		t.Error("clause 1 should be where")
	}
	gb := fl.Clauses[2].(*ast.GroupByClause)
	if gb.Specs[0].Var != "pos" || gb.Specs[0].Expr == nil {
		t.Errorf("group by = %+v", gb.Specs)
	}
	if _, ok := fl.Clauses[3].(*ast.LetClause); !ok {
		t.Error("clause 3 should be let")
	}
	ob := fl.Clauses[4].(*ast.OrderByClause)
	if !ob.Specs[0].Descending || !ob.Specs[0].EmptyGreatest {
		t.Errorf("order by = %+v", ob.Specs[0])
	}
	cc := fl.Clauses[5].(*ast.CountClause)
	if cc.Var != "c" {
		t.Errorf("count var = %q", cc.Var)
	}
}

func TestFLWORMultiVarDesugaring(t *testing.T) {
	fl := mustExpr(t, `for $a in (1,2), $b in (3,4) return $a`).(*ast.FLWOR)
	if len(fl.Clauses) != 2 {
		t.Fatalf("multi-for should desugar to 2 clauses, got %d", len(fl.Clauses))
	}
	fl2 := mustExpr(t, `let $a := 1, $b := 2 return $b`).(*ast.FLWOR)
	if len(fl2.Clauses) != 2 {
		t.Fatalf("multi-let should desugar to 2 clauses, got %d", len(fl2.Clauses))
	}
}

func TestForAllowingEmpty(t *testing.T) {
	fl := mustExpr(t, `for $x allowing empty in () return $x`).(*ast.FLWOR)
	if !fl.Clauses[0].(*ast.ForClause).AllowEmpty {
		t.Error("allowing empty not set")
	}
}

func TestGroupByExistingVariable(t *testing.T) {
	fl := mustExpr(t, `for $x in (1,2) group by $x return $x`).(*ast.FLWOR)
	gb := fl.Clauses[1].(*ast.GroupByClause)
	if gb.Specs[0].Expr != nil {
		t.Error("grouping by existing variable should have nil expr")
	}
}

func TestProlog(t *testing.T) {
	m, err := Parse(`
	jsoniq version "1.0";
	declare variable $threshold := 10;
	declare function local:double($x) { $x * 2 };
	local:double($threshold)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vars) != 1 || m.Vars[0].Name != "threshold" {
		t.Errorf("vars = %+v", m.Vars)
	}
	if len(m.Functions) != 1 || m.Functions[0].Name != "local:double" || len(m.Functions[0].Params) != 1 {
		t.Errorf("functions = %+v", m.Functions)
	}
	if _, ok := m.Body.(*ast.FunctionCall); !ok {
		t.Errorf("body = %#v", m.Body)
	}
}

func TestCommentsIgnored(t *testing.T) {
	e := mustExpr(t, `(: outer (: nested :) comment :) 1 + (: mid :) 2`)
	if _, ok := e.(*ast.Arith); !ok {
		t.Errorf("comments broke parse: %#v", e)
	}
}

func TestEmptySequenceLiteral(t *testing.T) {
	e := mustExpr(t, "()")
	c, ok := e.(*ast.CommaExpr)
	if !ok || len(c.Exprs) != 0 {
		t.Errorf("() = %#v", e)
	}
}

func TestUnaryMinus(t *testing.T) {
	u := mustExpr(t, "-5").(*ast.Unary)
	if !u.Minus {
		t.Error("minus not set")
	}
	uu := mustExpr(t, "--5").(*ast.Unary)
	if uu.Minus {
		t.Error("double minus should cancel")
	}
}

func TestContextItemExpr(t *testing.T) {
	e := mustExpr(t, `$$.pid`)
	ol := e.(*ast.ObjectLookup)
	if _, ok := ol.Input.(*ast.ContextItem); !ok {
		t.Errorf("input = %#v", ol.Input)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "for $x return $x", "for x in (1) return $x",
		"{ a 1 }", "[1", `"unterminated`, "if (1) then 2", "let $x := 1",
		"1 2", "$", "switch (1) default return 2 case 1 return 3",
		"declare variable x := 1; 1", "1 ~", "try { 1 } catch { 2 }",
		"for $x in (1) order by $x ascending descending return $x",
		"some $x in (1)", "(1,)", "{ }1{",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("1 +\n  )")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Pos.Line)
	}
}

func TestComplexPaperQuery(t *testing.T) {
	// The Figure 8 query shape from the paper (adapted to implemented
	// functions).
	src := `
	{
	  "items-ordered-on-busy-days" : [
	    for $order in collection("orders")
	    let $customer := collection("customers")[$$.cid eq $order.customer]
	    where $order.from eq "USA"
	    where every $item in $order.items[] satisfies
	      some $product in collection("products") satisfies $product.pid eq $item.pid
	    group by $date := $order.date
	    let $number-of-orders := count($order)
	    order by $number-of-orders
	    count $position
	    return {
	      "date": $date,
	      "rank": $position,
	      "items": [ distinct-values(
	        for $item in $order.items[]
	        for $product in collection("products")
	        where $product.pid eq $item.pid
	        return { "name": $product.name, "id": $product.id }
	      ) ]
	    }
	  ]
	}`
	mustExpr(t, src)
}

func TestStableOrderBy(t *testing.T) {
	fl := mustExpr(t, `for $x in (1,2) stable order by $x return $x`).(*ast.FLWOR)
	if _, ok := fl.Clauses[1].(*ast.OrderByClause); !ok {
		t.Error("stable order by not parsed")
	}
}

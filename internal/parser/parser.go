// Package parser builds the ast tree from JSONiq source text. It is a
// hand-written recursive-descent parser covering the JSONiq core grammar:
// all expression forms of DESIGN.md §5, FLWOR expressions with every clause
// of the paper's Figure 9, and prolog declarations (variables and
// user-defined functions). It replaces the ANTLR ALL(*) parser of the
// paper's implementation.
package parser

import (
	"fmt"
	"strconv"

	"rumble/internal/ast"
	"rumble/internal/item"
	"rumble/internal/lexer"
)

// Error is a syntax error with source position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg) }

// Parse parses a complete query (prolog + body expression).
func Parse(src string) (*ast.Module, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &ast.Module{}
	if err := p.parseProlog(m); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.EOF) {
		return nil, p.errorf("unexpected %s", p.describe())
	}
	m.Body = body
	return m, nil
}

// ParseExpr parses a single expression (no prolog), for tests and tools.
func ParseExpr(src string) (ast.Expr, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return m.Body, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) cur() lexer.Token     { return p.toks[p.pos] }
func (p *parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) peek(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *parser) describe() string {
	t := p.cur()
	if t.Kind == lexer.EOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() lexer.Token {
	t := p.cur()
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

// isSym reports whether the current token is the given symbol.
func (p *parser) isSym(s string) bool {
	t := p.cur()
	return t.Kind == lexer.Symbol && t.Text == s
}

// isKw reports whether the current token is the given (contextual) keyword.
func (p *parser) isKw(s string) bool {
	t := p.cur()
	return t.Kind == lexer.Name && t.Text == s
}

func (p *parser) eatSym(s string) bool {
	if p.isSym(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) eatKw(s string) bool {
	if p.isKw(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.eatSym(s) {
		return p.errorf("expected %q, found %s", s, p.describe())
	}
	return nil
}

func (p *parser) expectKw(s string) error {
	if !p.eatKw(s) {
		return p.errorf("expected %q, found %s", s, p.describe())
	}
	return nil
}

// splitSym splits a two-character symbol token ("[[", "]]") into its two
// halves, consuming the first. Needed where an array constructor starts
// immediately inside another ("[[1]]").
func (p *parser) splitSym() {
	t := p.cur()
	half := t.Text[:1]
	rest := t.Text[1:]
	p.toks[p.pos] = lexer.Token{Kind: lexer.Symbol, Text: half, Pos: t.Pos}
	restTok := lexer.Token{Kind: lexer.Symbol, Text: rest, Pos: lexer.Pos{Line: t.Pos.Line, Col: t.Pos.Col + 1}}
	p.toks = append(p.toks[:p.pos+1], append([]lexer.Token{restTok}, p.toks[p.pos+1:]...)...)
	p.advance()
}

// parseVarName parses "$name" and returns the name.
func (p *parser) parseVarName() (string, error) {
	if !p.isSym("$") {
		return "", p.errorf("expected variable, found %s", p.describe())
	}
	p.advance()
	if !p.at(lexer.Name) {
		return "", p.errorf("expected variable name after '$'")
	}
	return p.parseQName()
}

// parseQName parses a possibly prefixed name (local:fn).
func (p *parser) parseQName() (string, error) {
	if !p.at(lexer.Name) {
		return "", p.errorf("expected name, found %s", p.describe())
	}
	name := p.advance().Text
	if p.isSym(":") && p.peek(1).Kind == lexer.Name && !p.isSym(":=") {
		p.advance()
		name = name + ":" + p.advance().Text
	}
	return name, nil
}

// --- Prolog ---

func (p *parser) parseProlog(m *ast.Module) error {
	// Optional "jsoniq version "1.0";"
	if p.isKw("jsoniq") && p.peek(1).Is("version") {
		p.advance()
		p.advance()
		if !p.at(lexer.StringLit) {
			return p.errorf("expected version string")
		}
		p.advance()
		if err := p.expectSym(";"); err != nil {
			return err
		}
	}
	for p.isKw("declare") {
		declPos := p.cur().Pos
		p.advance()
		switch {
		case p.eatKw("variable"):
			name, err := p.parseVarName()
			if err != nil {
				return err
			}
			if p.eatKw("as") {
				if _, err := p.parseSequenceType(); err != nil {
					return err
				}
			}
			if !p.eatSym(":=") {
				return p.errorf("expected ':=' in variable declaration")
			}
			init, err := p.parseExprSingle()
			if err != nil {
				return err
			}
			if err := p.expectSym(";"); err != nil {
				return err
			}
			m.Vars = append(m.Vars, ast.VarDecl{Pos: declPos, Name: name, Init: init})
		case p.eatKw("function"):
			name, err := p.parseQName()
			if err != nil {
				return err
			}
			if err := p.expectSym("("); err != nil {
				return err
			}
			var params []string
			for !p.isSym(")") {
				pn, err := p.parseVarName()
				if err != nil {
					return err
				}
				if p.eatKw("as") {
					if _, err := p.parseSequenceType(); err != nil {
						return err
					}
				}
				params = append(params, pn)
				if !p.eatSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return err
			}
			if p.eatKw("as") {
				if _, err := p.parseSequenceType(); err != nil {
					return err
				}
			}
			if err := p.expectSym("{"); err != nil {
				return err
			}
			body, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectSym("}"); err != nil {
				return err
			}
			if err := p.expectSym(";"); err != nil {
				return err
			}
			m.Functions = append(m.Functions, ast.FunctionDecl{Pos: declPos, Name: name, Params: params, Body: body})
		default:
			return p.errorf("expected 'variable' or 'function' after 'declare'")
		}
	}
	return nil
}

// --- Expressions ---

func (p *parser) parseExpr() (ast.Expr, error) {
	pos := p.cur().Pos
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.isSym(",") {
		return first, nil
	}
	exprs := []ast.Expr{first}
	for p.eatSym(",") {
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	c := &ast.CommaExpr{Exprs: exprs}
	c.SetPos(pos)
	return c, nil
}

func (p *parser) parseExprSingle() (ast.Expr, error) {
	switch {
	case (p.isKw("for") || p.isKw("let")) && p.peek(1).Is("$"):
		return p.parseFLWOR()
	case (p.isKw("some") || p.isKw("every")) && p.peek(1).Is("$"):
		return p.parseQuantified()
	case p.isKw("if") && p.peek(1).Is("("):
		return p.parseIf()
	case p.isKw("switch") && p.peek(1).Is("("):
		return p.parseSwitch()
	case p.isKw("try") && p.peek(1).Is("{"):
		return p.parseTryCatch()
	default:
		return p.parseOr()
	}
}

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		n := &ast.Logic{IsAnd: false, L: l, R: r}
		n.SetPos(pos)
		l = n
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		n := &ast.Logic{IsAnd: true, L: l, R: r}
		n.SetPos(pos)
		l = n
	}
	return l, nil
}

var valueCompOps = map[string]bool{"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true}

func (p *parser) comparisonOp() (op string, general bool, ok bool) {
	t := p.cur()
	if t.Kind == lexer.Name && valueCompOps[t.Text] {
		return t.Text, false, true
	}
	if t.Kind == lexer.Symbol {
		switch t.Text {
		case "=", "!=", "<", "<=", ">", ">=":
			return t.Text, true, true
		}
	}
	return "", false, false
}

func (p *parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseStringConcat()
	if err != nil {
		return nil, err
	}
	if op, general, ok := p.comparisonOp(); ok {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseStringConcat()
		if err != nil {
			return nil, err
		}
		n := &ast.Comparison{Op: ast.CompareOp(op), General: general, L: l, R: r}
		n.SetPos(pos)
		return n, nil
	}
	return l, nil
}

func (p *parser) parseStringConcat() (ast.Expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	for p.isSym("||") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		n := &ast.ConcatExpr{L: l, R: r}
		n.SetPos(pos)
		l = n
	}
	return l, nil
}

func (p *parser) parseRange() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isKw("to") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		n := &ast.RangeExpr{L: l, R: r}
		n.SetPos(pos)
		return n, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isSym("+") || p.isSym("-") {
		pos := p.cur().Pos
		op := item.OpAdd
		if p.cur().Text == "-" {
			op = item.OpSub
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		n := &ast.Arith{Op: op, L: l, R: r}
		n.SetPos(pos)
		l = n
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseInstanceOf()
	if err != nil {
		return nil, err
	}
	for {
		var op item.ArithOp
		switch {
		case p.isSym("*"):
			op = item.OpMul
		case p.isKw("div"):
			op = item.OpDiv
		case p.isKw("idiv"):
			op = item.OpIDiv
		case p.isKw("mod"):
			op = item.OpMod
		default:
			return l, nil
		}
		pos := p.cur().Pos
		p.advance()
		r, err := p.parseInstanceOf()
		if err != nil {
			return nil, err
		}
		n := &ast.Arith{Op: op, L: l, R: r}
		n.SetPos(pos)
		l = n
	}
}

func (p *parser) parseInstanceOf() (ast.Expr, error) {
	l, err := p.parseTreat()
	if err != nil {
		return nil, err
	}
	if p.isKw("instance") && p.peek(1).Is("of") {
		pos := p.cur().Pos
		p.advance()
		p.advance()
		st, err := p.parseSequenceType()
		if err != nil {
			return nil, err
		}
		n := &ast.InstanceOf{Input: l, Type: st}
		n.SetPos(pos)
		return n, nil
	}
	return l, nil
}

func (p *parser) parseTreat() (ast.Expr, error) {
	l, err := p.parseCastable()
	if err != nil {
		return nil, err
	}
	if p.isKw("treat") && p.peek(1).Is("as") {
		pos := p.cur().Pos
		p.advance()
		p.advance()
		st, err := p.parseSequenceType()
		if err != nil {
			return nil, err
		}
		n := &ast.TreatAs{Input: l, Type: st}
		n.SetPos(pos)
		return n, nil
	}
	return l, nil
}

func (p *parser) parseCastable() (ast.Expr, error) {
	l, err := p.parseCast()
	if err != nil {
		return nil, err
	}
	if p.isKw("castable") && p.peek(1).Is("as") {
		pos := p.cur().Pos
		p.advance()
		p.advance()
		tn, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		n := &ast.CastableAs{Input: l, TypeName: tn}
		n.SetPos(pos)
		return n, nil
	}
	return l, nil
}

func (p *parser) parseCast() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.isKw("cast") && p.peek(1).Is("as") {
		pos := p.cur().Pos
		p.advance()
		p.advance()
		tn, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		n := &ast.CastAs{Input: l, TypeName: tn}
		n.SetPos(pos)
		return n, nil
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	minus := false
	pos := p.cur().Pos
	seen := false
	for p.isSym("-") || p.isSym("+") {
		if p.cur().Text == "-" {
			minus = !minus
		}
		seen = true
		p.advance()
	}
	operand, err := p.parseSimpleMap()
	if err != nil {
		return nil, err
	}
	if !seen {
		return operand, nil
	}
	n := &ast.Unary{Minus: minus, Operand: operand}
	n.SetPos(pos)
	return n, nil
}

// parseSimpleMap parses the "!" mapping operator chain.
func (p *parser) parseSimpleMap() (ast.Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.isSym("!") {
		pos := p.cur().Pos
		p.advance()
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		n := &ast.SimpleMap{Input: l, Mapping: r}
		n.SetPos(pos)
		l = n
	}
	return l, nil
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isSym("."):
			pos := p.cur().Pos
			p.advance()
			key, err := p.parseLookupKey()
			if err != nil {
				return nil, err
			}
			n := &ast.ObjectLookup{Input: e, Key: key}
			n.SetPos(pos)
			e = n
		case p.isSym("[["):
			pos := p.cur().Pos
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.isSym("]]") {
				p.advance()
			} else if p.isSym("]") {
				return nil, p.errorf("expected ']]' to close array lookup")
			} else {
				return nil, p.errorf("expected ']]', found %s", p.describe())
			}
			n := &ast.ArrayLookup{Input: e, Index: idx}
			n.SetPos(pos)
			e = n
		case p.isSym("[") && p.peek(1).Is("]"):
			pos := p.cur().Pos
			p.advance()
			p.advance()
			n := &ast.ArrayUnbox{Input: e}
			n.SetPos(pos)
			e = n
		case p.isSym("["):
			pos := p.cur().Pos
			p.advance()
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.isSym("]]") {
				p.splitSym()
			} else if err := p.expectSym("]"); err != nil {
				return nil, err
			}
			n := &ast.Predicate{Input: e, Pred: pred}
			n.SetPos(pos)
			e = n
		default:
			return e, nil
		}
	}
}

// parseLookupKey parses the key of an object lookup: a name, a string
// literal, a variable, the context item, or a parenthesized expression.
func (p *parser) parseLookupKey() (ast.Expr, error) {
	pos := p.cur().Pos
	switch {
	case p.at(lexer.Name):
		name := p.advance().Text
		return ast.NewLiteral(pos, item.Str(name)), nil
	case p.at(lexer.StringLit):
		return ast.NewLiteral(pos, item.Str(p.advance().Text)), nil
	case p.isSym("$$"):
		p.advance()
		return ast.NewContextItem(pos), nil
	case p.isSym("$"):
		name, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		return ast.NewVarRef(pos, name), nil
	case p.isSym("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected object lookup key, found %s", p.describe())
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	pos := p.cur().Pos
	t := p.cur()
	switch t.Kind {
	case lexer.IntegerLit:
		p.advance()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			d, derr := item.DecimalFromString(t.Text)
			if derr != nil {
				return nil, p.errorf("invalid integer literal %q", t.Text)
			}
			return ast.NewLiteral(pos, d), nil
		}
		return ast.NewLiteral(pos, item.Int(n)), nil
	case lexer.DecimalLit:
		d, err := item.DecimalFromString(t.Text)
		if err != nil {
			return nil, p.errorf("invalid decimal literal %q", t.Text)
		}
		p.advance()
		return ast.NewLiteral(pos, d), nil
	case lexer.DoubleLit:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid double literal %q", t.Text)
		}
		p.advance()
		return ast.NewLiteral(pos, item.Double(f)), nil
	case lexer.StringLit:
		p.advance()
		return ast.NewLiteral(pos, item.Str(t.Text)), nil
	}
	switch {
	case p.isSym("$$"):
		p.advance()
		return ast.NewContextItem(pos), nil
	case p.isSym("$"):
		name, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		return ast.NewVarRef(pos, name), nil
	case p.isSym("("):
		p.advance()
		if p.eatSym(")") {
			// () is the empty sequence.
			c := &ast.CommaExpr{}
			c.SetPos(pos)
			return c, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.isSym("{"):
		return p.parseObjectConstructor()
	case p.isSym("["), p.isSym("[["):
		return p.parseArrayConstructor()
	case p.at(lexer.Name):
		switch t.Text {
		case "true":
			p.advance()
			return ast.NewLiteral(pos, item.Bool(true)), nil
		case "false":
			p.advance()
			return ast.NewLiteral(pos, item.Bool(false)), nil
		case "null":
			p.advance()
			return ast.NewLiteral(pos, item.Null{}), nil
		}
		name, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		if !p.isSym("(") {
			return nil, p.errorf("unexpected name %q (variables start with '$'; function calls need parentheses)", name)
		}
		p.advance()
		var args []ast.Expr
		for !p.isSym(")") {
			a, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.eatSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		n := &ast.FunctionCall{Name: name, Args: args}
		n.SetPos(pos)
		return n, nil
	default:
		return nil, p.errorf("unexpected %s", p.describe())
	}
}

func (p *parser) parseObjectConstructor() (ast.Expr, error) {
	pos := p.cur().Pos
	p.advance() // '{'
	oc := &ast.ObjectConstructor{}
	oc.SetPos(pos)
	if p.eatSym("}") {
		return oc, nil
	}
	for {
		key, err := p.parseObjectKey()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(":"); err != nil {
			return nil, err
		}
		val, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		oc.Keys = append(oc.Keys, key)
		oc.Values = append(oc.Values, val)
		if p.eatSym(",") {
			continue
		}
		if err := p.expectSym("}"); err != nil {
			return nil, err
		}
		return oc, nil
	}
}

// parseObjectKey parses an object constructor key: an NCName or string
// literal (static), or any expression evaluating to a string (dynamic).
func (p *parser) parseObjectKey() (ast.Expr, error) {
	pos := p.cur().Pos
	if p.at(lexer.Name) && p.peek(1).Is(":") {
		name := p.advance().Text
		return ast.NewLiteral(pos, item.Str(name)), nil
	}
	if p.at(lexer.StringLit) && p.peek(1).Is(":") {
		return ast.NewLiteral(pos, item.Str(p.advance().Text)), nil
	}
	return p.parseExprSingle()
}

func (p *parser) parseArrayConstructor() (ast.Expr, error) {
	pos := p.cur().Pos
	if p.isSym("[[") {
		p.splitSym()
	} else {
		p.advance() // '['
	}
	ac := &ast.ArrayConstructor{}
	ac.SetPos(pos)
	if p.isSym("]]") {
		p.splitSym()
		return ac, nil
	}
	if p.eatSym("]") {
		return ac, nil
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	ac.Body = body
	if p.isSym("]]") {
		p.splitSym()
		return ac, nil
	}
	if err := p.expectSym("]"); err != nil {
		return nil, err
	}
	return ac, nil
}

func (p *parser) parseIf() (ast.Expr, error) {
	pos := p.cur().Pos
	p.advance() // if
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	n := &ast.IfExpr{Cond: cond, Then: then, Else: els}
	n.SetPos(pos)
	return n, nil
}

func (p *parser) parseSwitch() (ast.Expr, error) {
	pos := p.cur().Pos
	p.advance() // switch
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	input, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	n := &ast.SwitchExpr{Input: input}
	n.SetPos(pos)
	for p.isKw("case") {
		p.advance()
		var values []ast.Expr
		for {
			v, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			values = append(values, v)
			if !p.eatKw("case") {
				break
			}
		}
		if err := p.expectKw("return"); err != nil {
			return nil, err
		}
		result, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		n.Cases = append(n.Cases, ast.SwitchCase{Values: values, Result: result})
	}
	if len(n.Cases) == 0 {
		return nil, p.errorf("switch requires at least one case")
	}
	if err := p.expectKw("default"); err != nil {
		return nil, err
	}
	if err := p.expectKw("return"); err != nil {
		return nil, err
	}
	def, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	n.Default = def
	return n, nil
}

func (p *parser) parseTryCatch() (ast.Expr, error) {
	pos := p.cur().Pos
	p.advance() // try
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	tryExpr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	if err := p.expectKw("catch"); err != nil {
		return nil, err
	}
	// catch * { ... } or catch errname { ... }; the error name is accepted
	// and ignored (all errors are caught).
	if p.isSym("*") {
		p.advance()
	} else if p.at(lexer.Name) {
		if _, err := p.parseQName(); err != nil {
			return nil, err
		}
	} else {
		return nil, p.errorf("expected '*' or error name after 'catch'")
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	catchExpr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	n := &ast.TryCatch{Try: tryExpr, Catch: catchExpr}
	n.SetPos(pos)
	return n, nil
}

func (p *parser) parseQuantified() (ast.Expr, error) {
	pos := p.cur().Pos
	every := p.cur().Text == "every"
	p.advance()
	n := &ast.Quantified{Every: every}
	n.SetPos(pos)
	for {
		v, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		in, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		n.Bindings = append(n.Bindings, ast.QuantifiedBinding{Var: v, In: in})
		if !p.eatSym(",") {
			break
		}
	}
	if err := p.expectKw("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	n.Satisfies = sat
	return n, nil
}

func (p *parser) parseSequenceType() (ast.SequenceType, error) {
	if p.isKw("empty-sequence") {
		p.advance()
		if err := p.expectSym("("); err != nil {
			return ast.SequenceType{}, err
		}
		if err := p.expectSym(")"); err != nil {
			return ast.SequenceType{}, err
		}
		return ast.SequenceType{EmptySequence: true}, nil
	}
	if !p.at(lexer.Name) {
		return ast.SequenceType{}, p.errorf("expected type name, found %s", p.describe())
	}
	name := p.advance().Text
	// item() style parentheses on item types are tolerated.
	if p.isSym("(") && p.peek(1).Is(")") {
		p.advance()
		p.advance()
	}
	st := ast.SequenceType{ItemType: name}
	if p.isSym("?") || p.isSym("*") || p.isSym("+") {
		st.Occurrence = p.advance().Text
	}
	return st, nil
}

// --- FLWOR ---

func (p *parser) parseFLWOR() (ast.Expr, error) {
	pos := p.cur().Pos
	n := &ast.FLWOR{}
	n.SetPos(pos)
	for {
		switch {
		case p.isKw("for") && p.peek(1).Is("$"):
			clauses, err := p.parseForClause()
			if err != nil {
				return nil, err
			}
			n.Clauses = append(n.Clauses, clauses...)
		case p.isKw("let") && p.peek(1).Is("$"):
			clauses, err := p.parseLetClause()
			if err != nil {
				return nil, err
			}
			n.Clauses = append(n.Clauses, clauses...)
		case p.isKw("where"):
			cpos := p.cur().Pos
			p.advance()
			cond, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			wc := &ast.WhereClause{Cond: cond}
			wc.SetPos(cpos)
			n.Clauses = append(n.Clauses, wc)
		case p.isKw("group") && p.peek(1).Is("by"):
			cpos := p.cur().Pos
			p.advance()
			p.advance()
			gc := &ast.GroupByClause{}
			gc.SetPos(cpos)
			for {
				v, err := p.parseVarName()
				if err != nil {
					return nil, err
				}
				spec := ast.GroupSpec{Var: v}
				if p.eatSym(":=") {
					e, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					spec.Expr = e
				}
				gc.Specs = append(gc.Specs, spec)
				if !p.eatSym(",") {
					break
				}
			}
			n.Clauses = append(n.Clauses, gc)
		case p.isKw("stable") && p.peek(1).Is("order"):
			p.advance()
			// fallthrough to order handling on next loop iteration
		case p.isKw("order") && p.peek(1).Is("by"):
			cpos := p.cur().Pos
			p.advance()
			p.advance()
			oc := &ast.OrderByClause{}
			oc.SetPos(cpos)
			for {
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				spec := ast.OrderSpec{Expr: e}
				if p.eatKw("ascending") {
				} else if p.eatKw("descending") {
					spec.Descending = true
				}
				if p.eatKw("empty") {
					switch {
					case p.eatKw("greatest"):
						spec.EmptyGreatest = true
					case p.eatKw("least"):
					default:
						return nil, p.errorf("expected 'greatest' or 'least' after 'empty'")
					}
				}
				oc.Specs = append(oc.Specs, spec)
				if !p.eatSym(",") {
					break
				}
			}
			n.Clauses = append(n.Clauses, oc)
		case p.isKw("count") && p.peek(1).Is("$"):
			cpos := p.cur().Pos
			p.advance()
			v, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			cc := &ast.CountClause{Var: v}
			cc.SetPos(cpos)
			n.Clauses = append(n.Clauses, cc)
		case p.isKw("return"):
			p.advance()
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			n.Return = ret
			if len(n.Clauses) == 0 {
				return nil, p.errorf("FLWOR expression requires at least one clause before 'return'")
			}
			switch n.Clauses[0].(type) {
			case *ast.ForClause, *ast.LetClause:
			default:
				return nil, p.errorf("FLWOR expression must start with 'for' or 'let'")
			}
			return n, nil
		default:
			return nil, p.errorf("expected FLWOR clause or 'return', found %s", p.describe())
		}
	}
}

func (p *parser) parseForClause() ([]ast.Clause, error) {
	p.advance() // for
	var out []ast.Clause
	for {
		cpos := p.cur().Pos
		v, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		fc := &ast.ForClause{Var: v}
		fc.SetPos(cpos)
		if p.isKw("allowing") && p.peek(1).Is("empty") {
			p.advance()
			p.advance()
			fc.AllowEmpty = true
		}
		if p.eatKw("at") {
			pv, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			fc.PosVar = pv
		}
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		in, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		fc.In = in
		out = append(out, fc)
		if !p.eatSym(",") {
			return out, nil
		}
	}
}

func (p *parser) parseLetClause() ([]ast.Clause, error) {
	p.advance() // let
	var out []ast.Clause
	for {
		cpos := p.cur().Pos
		v, err := p.parseVarName()
		if err != nil {
			return nil, err
		}
		if p.eatKw("as") {
			if _, err := p.parseSequenceType(); err != nil {
				return nil, err
			}
		}
		if !p.eatSym(":=") {
			return nil, p.errorf("expected ':=' in let clause")
		}
		val, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		lc := &ast.LetClause{Var: v, Value: val}
		lc.SetPos(cpos)
		out = append(out, lc)
		if !p.eatSym(",") {
			return out, nil
		}
	}
}

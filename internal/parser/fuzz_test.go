package parser

import "testing"

// FuzzParse asserts the parser's only failure mode is an error value:
// arbitrary input must never panic it. The seeds cover every construct
// with hand-rolled scanning logic — nested comments, string escapes,
// number forms, prologs — where an off-by-one slips in most easily.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`1 + 2`,
		`(1, (), 2)`,
		`"unterminated`,
		`"esc \" \\ \n \t A"`,
		`"bad escape \q"`,
		`(: comment (: nested :) :) 42`,
		`1 (:`,
		`for $x at $i in (1 to 10) where $x mod 2 eq 0 order by $x descending count $c where $c le 3 return {"v": $x}`,
		`for $a in parallelize((1,2)) for $b in parallelize((2,3)) where $a eq $b return $a`,
		`let $k := "x" return {"x": 9}.$k`,
		`declare variable $a := 2; declare function local:f($n) { $n * $a }; local:f(3)`,
		`switch (()) case () return "empty" default return "no"`,
		`try { error("xyz") } catch * { $err:description }`,
		`some $x in (1, 2) satisfies $x instance of integer+`,
		`9223372036854775807 + 1e308 + 0.5`,
		`[{"a": [1]}][[1]].a[]`,
		`$$[$$ gt 3][2]`,
		`{[1]: 2}`,
		"\x00\xff\"\\",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Both outcomes are fine; a panic fails the fuzz run.
		_, _ = Parse(src)
	})
}

package profile

import (
	"testing"
	"time"
)

// The "profiling off" fast path is a nil profile; every recording and
// reading method must be callable on it without panicking.
func TestNilSafety(t *testing.T) {
	var p *Profile
	p.Op(0).AddRows(1)
	p.Op(0).AddBatches(1)
	p.Op(0).AddWall(time.Millisecond)
	p.AddBusy(time.Millisecond)
	p.AddWait(time.Millisecond)
	p.SetWorkers(4)
	if got := p.Op(3).RowsOut(); got != 0 {
		t.Fatalf("nil op RowsOut = %d, want 0", got)
	}
	if s := p.Snapshot(); len(s.Ops) != 0 {
		t.Fatalf("nil snapshot has %d ops", len(s.Ops))
	}
}

func TestSnapshotDerivesRowsIn(t *testing.T) {
	p := New([]OpDesc{
		{Name: "scan", Input: -1},
		{Name: "filter", Input: 0},
		{Name: "project", Input: 1},
	})
	p.Op(0).AddRows(100)
	p.Op(1).AddRows(40)
	p.Op(2).AddRows(40)
	p.Op(99).AddRows(7) // out of range: must no-op, not panic
	s := p.Snapshot()
	if len(s.Ops) != 3 {
		t.Fatalf("got %d ops", len(s.Ops))
	}
	wantIn := []int64{-1, 100, 40}
	wantOut := []int64{100, 40, 40}
	for i, op := range s.Ops {
		if op.RowsIn != wantIn[i] || op.RowsOut != wantOut[i] {
			t.Errorf("op %d (%s): rows_in=%d rows_out=%d, want %d/%d",
				i, op.Name, op.RowsIn, op.RowsOut, wantIn[i], wantOut[i])
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Snapshot{QueryID: string(rune('a' + i))})
	}
	got := r.Snapshots()
	if len(got) != 3 {
		t.Fatalf("got %d snapshots", len(got))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if got[i].QueryID != want {
			t.Errorf("snapshot %d = %q, want %q", i, got[i].QueryID, want)
		}
	}
}

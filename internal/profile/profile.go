// Package profile records per-query execution statistics: one counter
// set per plan operator (rows out, batches, wall time), per-worker
// busy/wait time for the morsel-parallel path, and the coarse phase
// timings a server wants (queue, compile, execute, stream).
//
// The design goal is near-zero cost when profiling is off. Every
// recording method is nil-safe — a nil *Profile or nil *Op no-ops — so
// instrumented code resolves its *Op once per evaluation and calls
// through without further checks. Counters are atomics because the
// vector backend records from concurrent morsel workers; phase fields
// are plain int64s written by the single coordinating goroutine.
package profile

import (
	"sync"
	"sync/atomic"
	"time"
)

// OpDesc describes one plan operator: a display name (mirroring the
// --explain rendering) and the index of its input operator in the same
// profile, or -1 for sources. Rows-in is derived at snapshot time as
// the input's rows-out, so execution never pays for it.
type OpDesc struct {
	Name  string
	Input int
}

// Op is the live counter set for one operator. The zero value is ready
// to use; all methods no-op on a nil receiver.
type Op struct {
	rowsOut atomic.Int64
	batches atomic.Int64
	wallNS  atomic.Int64
}

// AddRows records n output rows (tuples or vector rows).
func (o *Op) AddRows(n int64) {
	if o == nil {
		return
	}
	o.rowsOut.Add(n)
}

// AddBatches records n batches (morsels on the vector path, one per
// Stream call on the tuple path).
func (o *Op) AddBatches(n int64) {
	if o == nil {
		return
	}
	o.batches.Add(n)
}

// AddWall adds inclusive wall time spent in this operator.
func (o *Op) AddWall(d time.Duration) {
	if o == nil {
		return
	}
	o.wallNS.Add(int64(d))
}

// RowsOut returns the rows recorded so far.
func (o *Op) RowsOut() int64 {
	if o == nil {
		return 0
	}
	return o.rowsOut.Load()
}

// Profile is one query's complete measurement set. Allocate via New
// with the operator descriptors the compiler registered; a nil
// *Profile is the "profiling off" state and every method on it no-ops.
type Profile struct {
	descs []OpDesc
	ops   []Op

	// Workers is the morsel worker-pool size used by the parallel
	// vector path (0 when the query ran serially).
	Workers atomic.Int64
	// BusyNS / WaitNS accumulate, across all workers, time spent
	// processing morsels vs. blocked waiting for one.
	BusyNS atomic.Int64
	WaitNS atomic.Int64

	// Phase timings, written by the single goroutine driving the
	// query (a server handler or the CLI).
	QueueNS   int64
	CompileNS int64
	ExecuteNS int64
	StreamNS  int64
	TotalNS   int64
	CacheHit  bool

	QueryID string
	Query   string
	Mode    string
	Start   time.Time
}

// New returns a Profile with one Op per descriptor.
func New(descs []OpDesc) *Profile {
	return &Profile{descs: descs, ops: make([]Op, len(descs))}
}

// Op returns the i-th operator's counters, or nil when the profile is
// nil or i is out of range — safe to call and safe to record on.
func (p *Profile) Op(i int) *Op {
	if p == nil || i < 0 || i >= len(p.ops) {
		return nil
	}
	return &p.ops[i]
}

// AddBusy records worker time spent processing (parallel vector path).
func (p *Profile) AddBusy(d time.Duration) {
	if p == nil {
		return
	}
	p.BusyNS.Add(int64(d))
}

// AddWait records worker time spent blocked on the morsel queue.
func (p *Profile) AddWait(d time.Duration) {
	if p == nil {
		return
	}
	p.WaitNS.Add(int64(d))
}

// SetWorkers records the worker-pool size.
func (p *Profile) SetWorkers(n int) {
	if p == nil {
		return
	}
	p.Workers.Store(int64(n))
}

// OpStats is the rendered form of one operator's counters. Input is the
// index of the operator's input in the same snapshot (-1 for sources),
// so consumers can rebuild the operator chain.
type OpStats struct {
	Name    string  `json:"name"`
	Input   int     `json:"input"`
	RowsIn  int64   `json:"rows_in"`
	RowsOut int64   `json:"rows_out"`
	Batches int64   `json:"batches,omitempty"`
	WallMS  float64 `json:"wall_ms"`
}

// Snapshot is a point-in-time, JSON-ready copy of a Profile. It is
// what the server envelope's "profile" section, the slow-query log and
// /debug/queries all serialize.
type Snapshot struct {
	QueryID   string    `json:"query_id,omitempty"`
	Query     string    `json:"query,omitempty"`
	Mode      string    `json:"mode,omitempty"`
	Time      time.Time `json:"time"`
	QueueMS   float64   `json:"queue_ms"`
	CompileMS float64   `json:"compile_ms"`
	ExecuteMS float64   `json:"execute_ms"`
	StreamMS  float64   `json:"stream_ms"`
	TotalMS   float64   `json:"total_ms"`
	CacheHit  bool      `json:"cache_hit"`
	Workers   int64     `json:"workers,omitempty"`
	BusyMS    float64   `json:"busy_ms,omitempty"`
	WaitMS    float64   `json:"wait_ms,omitempty"`
	Ops       []OpStats `json:"operators,omitempty"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Snapshot renders the profile. Rows-in for each operator is derived
// from its input operator's rows-out (-1 when the operator has no
// input, i.e. it is a source). Safe on a nil profile (zero Snapshot).
func (p *Profile) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{
		QueryID:   p.QueryID,
		Query:     p.Query,
		Mode:      p.Mode,
		Time:      p.Start,
		QueueMS:   ms(p.QueueNS),
		CompileMS: ms(p.CompileNS),
		ExecuteMS: ms(p.ExecuteNS),
		StreamMS:  ms(p.StreamNS),
		TotalMS:   ms(p.TotalNS),
		CacheHit:  p.CacheHit,
		Workers:   p.Workers.Load(),
		BusyMS:    ms(p.BusyNS.Load()),
		WaitMS:    ms(p.WaitNS.Load()),
	}
	if len(p.descs) > 0 {
		s.Ops = make([]OpStats, len(p.descs))
		for i, d := range p.descs {
			rowsIn := int64(-1)
			if d.Input >= 0 && d.Input < len(p.ops) {
				rowsIn = p.ops[d.Input].rowsOut.Load()
			}
			s.Ops[i] = OpStats{
				Name:    d.Name,
				Input:   d.Input,
				RowsIn:  rowsIn,
				RowsOut: p.ops[i].rowsOut.Load(),
				Batches: p.ops[i].batches.Load(),
				WallMS:  ms(p.ops[i].wallNS.Load()),
			}
		}
	}
	return s
}

// Ring is a bounded, concurrency-safe buffer of the most recent query
// snapshots, newest first on read. The server keeps one for
// GET /debug/queries.
type Ring struct {
	mu   sync.Mutex
	buf  []Snapshot
	next int
	n    int
}

// NewRing returns a ring holding at most capacity snapshots
// (a non-positive capacity is treated as 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Snapshot, capacity)}
}

// Add appends a snapshot, evicting the oldest when full.
func (r *Ring) Add(s Snapshot) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshots returns the held snapshots, newest first.
func (r *Ring) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

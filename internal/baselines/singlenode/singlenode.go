// Package singlenode models the single-threaded JSONiq engines of Figure
// 12: Zorba (a generic C++ JSONiq engine, streaming but materializing for
// group/sort) and Xidel (a Pascal engine that materializes the whole
// document tree before evaluating anything). Both run genuine JSONiq — the
// same query texts as Rumble — through this repository's runtime-iterator
// interpreter restricted to its single-threaded local execution path, so
// their per-item costs are those of a real generic JSONiq evaluator rather
// than of a hand-tuned program.
//
// Each engine enforces a materialization budget in items: queries that
// need to hold more than the budget in memory fail with ErrOutOfMemory,
// reproducing the paper's observed failure cliffs (Zorba could not group
// or sort beyond 4M objects in 16 GB; Xidel failed even earlier, on every
// query shape, because it loads the entire input first).
package singlenode

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rumble/internal/baselines"
	"rumble/internal/item"
	"rumble/internal/parser"
	"rumble/internal/runtime"
)

// ErrOutOfMemory reports that an engine exceeded its materialization
// budget, the analogue of the OOM kills in Figure 12.
var ErrOutOfMemory = errors.New("singlenode: out of memory (materialization budget exceeded)")

// Profile selects the modeled engine.
type Profile int

// The two single-threaded engines of Figure 12.
const (
	// Zorba streams filters but materializes tuples for group/sort.
	Zorba Profile = iota
	// Xidel materializes the entire input before evaluating, and walks
	// the materialized tree a second time to answer the query.
	Xidel
)

// Engine is a single-threaded JSONiq engine model.
type Engine struct {
	profile Profile
	// budget is the maximum number of items the engine may hold
	// materialized at once (its memory model); 0 means unlimited.
	budget int
}

// New creates a single-node engine with the given materialization budget
// in items (0 means unlimited).
func New(p Profile, budgetItems int) *Engine {
	return &Engine{profile: p, budget: budgetItems}
}

// Name implements baselines.Engine.
func (e *Engine) Name() string {
	if e.profile == Zorba {
		return "Zorba"
	}
	return "Xidel"
}

// countRecords counts the input records cheaply (no JSON parse), the way
// an engine's memory footprint is determined by its input cardinality.
func countRecords(path string) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	var files []string
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			if e.IsDir() || strings.HasPrefix(e.Name(), "_") || strings.HasPrefix(e.Name(), ".") {
				continue
			}
			files = append(files, filepath.Join(path, e.Name()))
		}
	} else {
		files = []string{path}
	}
	total := 0
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return 0, err
		}
		r := bufio.NewReaderSize(fh, 256<<10)
		for {
			chunk, err := r.ReadSlice('\n')
			if len(chunk) > 1 {
				total++
			}
			if err == io.EOF {
				break
			}
			if err != nil && err != bufio.ErrBufferFull {
				fh.Close()
				return 0, err
			}
		}
		fh.Close()
	}
	return total, nil
}

// wouldMaterialize reports whether the engine must hold the whole (or
// filtered) input in memory for this query.
func (e *Engine) wouldMaterialize(q baselines.Query) bool {
	if e.profile == Xidel {
		return true // whole-input materialization regardless of query
	}
	return q != baselines.QueryFilter // group and sort materialize tuples
}

// Run implements baselines.Engine: compile the JSONiq text and evaluate it
// on the interpreter's local (single-threaded) path.
func (e *Engine) Run(q baselines.Query, path string) (baselines.Result, error) {
	if e.budget > 0 && e.wouldMaterialize(q) {
		n, err := countRecords(path)
		if err != nil {
			return baselines.Result{}, err
		}
		if n > e.budget {
			return baselines.Result{}, ErrOutOfMemory
		}
	}
	env := &runtime.Env{} // no Spark context: strictly local execution
	if e.profile == Xidel {
		// Xidel's first pass: parse and hold the entire document set.
		loader, err := compileLocal(env, fmt.Sprintf(`count(json-file(%q))`, path))
		if err != nil {
			return baselines.Result{}, err
		}
		if _, err := loader.Run(); err != nil {
			return baselines.Result{}, err
		}
	}
	prog, err := compileLocal(env, baselines.JSONiqQuery(q, path))
	if err != nil {
		return baselines.Result{}, err
	}
	out, err := prog.Run()
	if err != nil {
		return baselines.Result{}, err
	}
	switch q {
	case baselines.QueryFilter:
		if len(out) != 1 {
			return baselines.Result{}, fmt.Errorf("singlenode: filter returned %d items", len(out))
		}
		n, ok := out[0].(item.Int)
		if !ok {
			return baselines.Result{}, fmt.Errorf("singlenode: filter returned %s", out[0].Kind())
		}
		return baselines.Result{Count: int64(n)}, nil
	case baselines.QueryGroup:
		rows := itemsToStrings(out)
		sort.Strings(rows)
		return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
	case baselines.QuerySort:
		rows := itemsToStrings(out)
		return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
	default:
		return baselines.Result{}, fmt.Errorf("singlenode: unknown query %v", q)
	}
}

func compileLocal(env *runtime.Env, query string) (*runtime.Program, error) {
	m, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	return runtime.Compile(m, env)
}

func itemsToStrings(items []item.Item) []string {
	rows := make([]string, len(items))
	for i, it := range items {
		rows[i] = it.String()
	}
	return rows
}

// Package pyspark is the PySpark cost model of the paper's evaluation. The
// dominant overhead of PySpark RDD programs is the per-element
// Python⇄JVM boundary: every record crossing into a Python lambda is
// pickled, shipped, interpreted and unpickled. We reproduce that cost
// structure by forcing every record through a serialize →
// generic-dynamic-value → deserialize round trip around each lambda,
// mirroring how CPython receives rows as dynamically typed dicts rather
// than typed objects. The factor this induces (~3-6x on scan-heavy
// queries) matches the relative ordering of Figures 11 and 13: PySpark is
// the slowest engine on every query.
package pyspark

import (
	"fmt"
	"sort"

	"rumble/internal/baselines"
	"rumble/internal/item"
	"rumble/internal/jparse"
	"rumble/internal/spark"
)

// Engine runs the RDD queries with the Python boundary cost model.
type Engine struct {
	sc        *spark.Context
	splitSize int64
}

// New returns the baseline over the given cluster context.
func New(sc *spark.Context, splitSize int64) *Engine {
	return &Engine{sc: sc, splitSize: splitSize}
}

// Name implements baselines.Engine.
func (e *Engine) Name() string { return "PySpark" }

// pyValue is the dynamically typed value a Python lambda sees: maps,
// slices and boxed scalars, with no schema.
type pyValue = any

// toPython crosses the JVM→Python boundary: serialize the item and rebuild
// it as generic dynamic values (the pickle round trip).
func toPython(it item.Item) pyValue {
	return decodeGeneric(it.AppendJSON(nil))
}

// decodeGeneric parses JSON into generic Go values, standing in for
// unpickling into Python dicts/lists.
func decodeGeneric(data []byte) pyValue {
	it, err := jparse.Parse(data)
	if err != nil {
		return nil
	}
	return toGeneric(it)
}

func toGeneric(it item.Item) pyValue {
	switch v := it.(type) {
	case *item.Object:
		m := make(map[string]pyValue, v.Len())
		for i, k := range v.Keys() {
			m[k] = toGeneric(v.ValueAt(i))
		}
		return m
	case *item.Array:
		s := make([]pyValue, v.Len())
		for i := range s {
			s[i] = toGeneric(v.Member(i))
		}
		return s
	case item.Str:
		return string(v)
	case item.Int:
		return int64(v)
	case item.Double:
		return float64(v)
	case item.Bool:
		return bool(v)
	default:
		return nil
	}
}

// encodeGeneric re-serializes a generic value, standing in for pickling.
func encodeGeneric(v pyValue) []byte {
	var buf []byte
	var enc func(v pyValue)
	enc = func(v pyValue) {
		switch x := v.(type) {
		case nil:
			buf = append(buf, "null"...)
		case bool:
			if x {
				buf = append(buf, "true"...)
			} else {
				buf = append(buf, "false"...)
			}
		case int64:
			buf = fmt.Appendf(buf, "%d", x)
		case float64:
			buf = fmt.Appendf(buf, "%g", x)
		case string:
			buf = fmt.Appendf(buf, "%q", x)
		case []pyValue:
			buf = append(buf, '[')
			for i, m := range x {
				if i > 0 {
					buf = append(buf, ',')
				}
				enc(m)
			}
			buf = append(buf, ']')
		case map[string]pyValue:
			buf = append(buf, '{')
			first := true
			// Deterministic order is irrelevant for the cost model; keys
			// serialize in map order like Python dicts preserve insertion.
			for k, m := range x {
				if !first {
					buf = append(buf, ',')
				}
				first = false
				buf = fmt.Appendf(buf, "%q:", k)
				enc(m)
			}
			buf = append(buf, '}')
		}
	}
	enc(v)
	return buf
}

// recross models the extra Python⇄JVM round trip that precedes every wide
// (shuffle) operation: records are pickled into the shuffle and unpickled
// on the reduce side.
func recross(r *spark.RDD[pyValue]) *spark.RDD[pyValue] {
	return spark.Map(r, func(v pyValue) pyValue {
		return decodeGeneric(encodeGeneric(v))
	})
}

// pyGetString is a dict lookup in the Python lambda.
func pyGetString(v pyValue, key string) string {
	m, ok := v.(map[string]pyValue)
	if !ok {
		return ""
	}
	s, _ := m[key].(string)
	return s
}

// Run implements baselines.Engine.
func (e *Engine) Run(q baselines.Query, path string) (baselines.Result, error) {
	items, err := baselines.ItemsRDD(e.sc, path, e.splitSize)
	if err != nil {
		return baselines.Result{}, err
	}
	// Every record crosses the boundary into Python before any lambda
	// runs (sc.textFile().map(json.loads) in Figure 2).
	py := spark.Map(items, toPython)
	switch q {
	case baselines.QueryFilter:
		matches := spark.Filter(py, func(v pyValue) bool {
			g := pyGetString(v, "guess")
			return g != "" && g == pyGetString(v, "target")
		})
		n, err := spark.Count(matches)
		if err != nil {
			return baselines.Result{}, err
		}
		return baselines.Result{Count: n}, nil
	case baselines.QueryGroup:
		// Figure 2 verbatim: map to ((country, target), 1), reduceByKey.
		type key struct{ country, target string }
		pairs := spark.MapToPair(recross(py), func(v pyValue) (key, int64) {
			return key{pyGetString(v, "country"), pyGetString(v, "target")}, 1
		})
		counts := spark.ReduceByKey(pairs, func(a, b int64) int64 { return a + b })
		collected, err := spark.Collect(counts)
		if err != nil {
			return baselines.Result{}, err
		}
		rows := make([]string, len(collected))
		for i, kv := range collected {
			rows[i] = fmt.Sprintf("%s,%s,%d", kv.Key.country, kv.Key.target, kv.Value)
		}
		sort.Strings(rows)
		return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
	case baselines.QuerySort:
		matches := spark.Filter(py, func(v pyValue) bool {
			g := pyGetString(v, "guess")
			return g != "" && g == pyGetString(v, "target")
		})
		sorted := spark.SortBy(recross(matches), func(a, b pyValue) bool {
			at, bt := pyGetString(a, "target"), pyGetString(b, "target")
			if at != bt {
				return at < bt
			}
			ac, bc := pyGetString(a, "country"), pyGetString(b, "country")
			if ac != bc {
				return ac > bc
			}
			return pyGetString(a, "date") > pyGetString(b, "date")
		})
		top, err := spark.Take(sorted, baselines.SortTopN)
		if err != nil {
			return baselines.Result{}, err
		}
		rows := make([]string, len(top))
		for i, v := range top {
			rows[i] = fmt.Sprintf("%s,%s,%s",
				pyGetString(v, "target"), pyGetString(v, "country"), pyGetString(v, "date"))
		}
		return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
	default:
		return baselines.Result{}, fmt.Errorf("pyspark: unknown query %v", q)
	}
}

// Package sparksql is the "Spark SQL" baseline: the three standard queries
// over DataFrames with native typed columns, preceded by the schema
// inference pass that spark.read.json performs (a sampling scan that
// discovers column names and types — the cost Rumble's filter query
// avoids, per §6.2). Heterogeneous columns degrade to strings exactly as
// Figure 6 shows.
package sparksql

import (
	"fmt"
	"sort"

	"rumble/internal/baselines"
	"rumble/internal/item"
	"rumble/internal/spark"
)

// Engine runs hand-coded DataFrame programs.
type Engine struct {
	sc        *spark.Context
	splitSize int64
}

// New returns the baseline over the given cluster context.
func New(sc *spark.Context, splitSize int64) *Engine {
	return &Engine{sc: sc, splitSize: splitSize}
}

// Name implements baselines.Engine.
func (e *Engine) Name() string { return "SparkSQL" }

// inferredColumns are the confusion-dataset fields the schema inference
// discovers and the typed frame carries.
var inferredColumns = []string{"guess", "target", "country", "date"}

// Run implements baselines.Engine.
func (e *Engine) Run(q baselines.Query, path string) (baselines.Result, error) {
	df, err := e.readJSON(path)
	if err != nil {
		return baselines.Result{}, err
	}
	switch q {
	case baselines.QueryFilter:
		return e.filter(df)
	case baselines.QueryGroup:
		return e.group(df)
	case baselines.QuerySort:
		return e.sort(df)
	default:
		return baselines.Result{}, fmt.Errorf("sparksql: unknown query %v", q)
	}
}

// readJSON mimics spark.read.json: a schema inference pass over the data,
// then a typed scan projecting each record onto native string columns.
// Values whose type does not match are forced to strings (Figure 6).
func (e *Engine) readJSON(path string) (*spark.DataFrame, error) {
	items, err := baselines.ItemsRDD(e.sc, path, e.splitSize)
	if err != nil {
		return nil, err
	}
	// Schema inference: scan the dataset once, unioning the key sets.
	// (Spark samples by default but falls back to a full pass for exact
	// schemas; we model the full pass, which the paper's measurements
	// reflect in Spark SQL's higher filter-query cost.)
	keysets := spark.Map(items, func(it item.Item) string {
		obj, ok := it.(*item.Object)
		if !ok {
			return ""
		}
		var sig []byte
		for _, k := range obj.Keys() {
			sig = append(sig, k...)
			sig = append(sig, ',')
		}
		return string(sig)
	})
	if _, _, err := spark.Reduce(keysets, func(a, b string) string {
		if len(a) >= len(b) {
			return a
		}
		return b
	}); err != nil {
		return nil, err
	}
	// Typed scan: project onto native string columns.
	cols := make([]spark.Column, len(inferredColumns))
	for i, c := range inferredColumns {
		cols[i] = spark.Column{Name: c, Type: spark.ColString}
	}
	rows := spark.Map(items, func(it item.Item) spark.Row {
		row := make(spark.Row, len(inferredColumns))
		for i, c := range inferredColumns {
			row[i] = baselines.FieldString(it, c)
		}
		return row
	})
	return spark.NewDataFrame(spark.Schema{Cols: cols}, rows), nil
}

// filter is SELECT COUNT(*) WHERE guess = target.
func (e *Engine) filter(df *spark.DataFrame) (baselines.Result, error) {
	matches := df.Where(func(r spark.Row) (bool, error) {
		return r[0].(string) == r[1].(string) && r[0].(string) != "", nil
	})
	n, err := matches.Count()
	if err != nil {
		return baselines.Result{}, err
	}
	return baselines.Result{Count: n}, nil
}

// group is SELECT country, target, COUNT(*) GROUP BY country, target.
func (e *Engine) group(df *spark.DataFrame) (baselines.Result, error) {
	// COUNT(*) via a constant-1 sequence column aggregated with AggCount.
	ones := df.WithColumn("one", spark.ColSeq, func(spark.Row) (any, error) {
		return []item.Item{item.Int(1)}, nil
	})
	grouped, err := ones.GroupBy([]string{"country", "target"}, []spark.Agg{
		{Col: "one", Kind: spark.AggCount, As: "n"},
	})
	if err != nil {
		return baselines.Result{}, err
	}
	collected, err := grouped.Collect()
	if err != nil {
		return baselines.Result{}, err
	}
	rows := make([]string, len(collected))
	for i, r := range collected {
		rows[i] = fmt.Sprintf("%s,%s,%d", r[0].(string), r[1].(string), r[2].(int64))
	}
	sort.Strings(rows)
	return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
}

// sort is Figure 3: SELECT * WHERE guess = target ORDER BY target ASC,
// country DESC, date DESC, then take(10).
func (e *Engine) sort(df *spark.DataFrame) (baselines.Result, error) {
	matches := df.Where(func(r spark.Row) (bool, error) {
		return r[0].(string) == r[1].(string) && r[0].(string) != "", nil
	})
	sorted, err := matches.OrderBy([]spark.SortSpec{
		{Col: "target"},
		{Col: "country", Descending: true},
		{Col: "date", Descending: true},
	})
	if err != nil {
		return baselines.Result{}, err
	}
	top, err := spark.Take(sorted.RDD(), baselines.SortTopN)
	if err != nil {
		return baselines.Result{}, err
	}
	rows := make([]string, len(top))
	for i, r := range top {
		rows[i] = fmt.Sprintf("%s,%s,%s", r[1].(string), r[2].(string), r[3].(string))
	}
	return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
}

package baselines_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"rumble/internal/baselines"
	"rumble/internal/baselines/pyspark"
	"rumble/internal/baselines/rawspark"
	"rumble/internal/baselines/singlenode"
	"rumble/internal/baselines/sparksql"
	"rumble/internal/datagen"
	"rumble/internal/spark"
)

func testDataset(t *testing.T, n int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "confusion")
	if err := datagen.WriteDataset(dir, datagen.NewConfusionGenerator(11), n, 3); err != nil {
		t.Fatal(err)
	}
	return dir
}

func engines() []baselines.Engine {
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	return []baselines.Engine{
		rawspark.New(sc, 4096),
		sparksql.New(sc, 4096),
		pyspark.New(sc, 4096),
		singlenode.New(singlenode.Zorba, 0),
		singlenode.New(singlenode.Xidel, 0),
	}
}

// TestEnginesAgree is the harness-level correctness check: every engine
// must return identical counts and rows for all three standard queries.
func TestEnginesAgree(t *testing.T) {
	path := testDataset(t, 3000)
	for _, q := range []baselines.Query{baselines.QueryFilter, baselines.QueryGroup, baselines.QuerySort} {
		var ref baselines.Result
		var refName string
		for i, e := range engines() {
			res, err := e.Run(q, path)
			if err != nil {
				t.Fatalf("%s %s: %v", e.Name(), q, err)
			}
			if i == 0 {
				ref, refName = res, e.Name()
				continue
			}
			if res.Count != ref.Count {
				t.Errorf("%s: %s count=%d but %s count=%d", q, e.Name(), res.Count, refName, ref.Count)
			}
			if len(ref.Rows) > 0 && !reflect.DeepEqual(res.Rows, ref.Rows) {
				t.Errorf("%s: %s rows differ from %s\n%v\nvs\n%v", q, e.Name(), refName, res.Rows, ref.Rows)
			}
		}
	}
}

func TestFilterCountPlausible(t *testing.T) {
	path := testDataset(t, 5000)
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	res, err := rawspark.New(sc, 4096).Run(baselines.QueryFilter, path)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Count) / 5000
	if rate < 0.65 || rate > 0.85 {
		t.Errorf("filter selectivity = %.3f, expected ~0.73", rate)
	}
}

func TestZorbaOOMOnGroupSort(t *testing.T) {
	// The Figure 12 failure cliff: a grouping/sorting budget smaller than
	// the dataset makes the single-threaded engines fail, while the
	// filter query still streams through.
	path := testDataset(t, 2000)
	zorba := singlenode.New(singlenode.Zorba, 500)
	if _, err := zorba.Run(baselines.QueryFilter, path); err != nil {
		t.Errorf("filter should stream within budget: %v", err)
	}
	if _, err := zorba.Run(baselines.QueryGroup, path); err != singlenode.ErrOutOfMemory {
		t.Errorf("group beyond budget: err = %v, want ErrOutOfMemory", err)
	}
	if _, err := zorba.Run(baselines.QuerySort, path); err != singlenode.ErrOutOfMemory {
		t.Errorf("sort beyond budget: err = %v, want ErrOutOfMemory", err)
	}
	// Xidel fails even on the filter query (whole-input materialization).
	xidel := singlenode.New(singlenode.Xidel, 500)
	if _, err := xidel.Run(baselines.QueryFilter, path); err != singlenode.ErrOutOfMemory {
		t.Errorf("xidel filter beyond budget: err = %v, want ErrOutOfMemory", err)
	}
}

func TestSortTopNStable(t *testing.T) {
	path := testDataset(t, 1000)
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	res, err := rawspark.New(sc, 2048).Run(baselines.QuerySort, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != baselines.SortTopN {
		t.Fatalf("sort returned %d rows", len(res.Rows))
	}
	// Rows must already be ordered by target asc.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i] < res.Rows[i-1] && res.Rows[i][:6] != res.Rows[i-1][:6] {
			// only verify the leading (target) field ordering
			t.Errorf("rows out of order: %q before %q", res.Rows[i-1], res.Rows[i])
		}
	}
}

// Package rawspark is the "Spark (Java)" baseline of the paper's
// evaluation: the three standard queries hand-written directly against the
// RDD API, the way an experienced Spark developer would (Figure 2's style),
// with no query-language layer on top.
package rawspark

import (
	"fmt"
	"sort"

	"rumble/internal/baselines"
	"rumble/internal/item"
	"rumble/internal/spark"
)

// Engine runs hand-coded RDD programs.
type Engine struct {
	sc        *spark.Context
	splitSize int64
}

// New returns the baseline over the given cluster context.
func New(sc *spark.Context, splitSize int64) *Engine {
	return &Engine{sc: sc, splitSize: splitSize}
}

// Name implements baselines.Engine.
func (e *Engine) Name() string { return "Spark" }

// Run implements baselines.Engine.
func (e *Engine) Run(q baselines.Query, path string) (baselines.Result, error) {
	items, err := baselines.ItemsRDD(e.sc, path, e.splitSize)
	if err != nil {
		return baselines.Result{}, err
	}
	switch q {
	case baselines.QueryFilter:
		return e.filter(items)
	case baselines.QueryGroup:
		return e.group(items)
	case baselines.QuerySort:
		return e.sort(items)
	default:
		return baselines.Result{}, fmt.Errorf("rawspark: unknown query %v", q)
	}
}

// filter counts objects whose guess equals their target:
// rdd.filter(o -> o.guess == o.target).count().
func (e *Engine) filter(items *spark.RDD[item.Item]) (baselines.Result, error) {
	matches := spark.Filter(items, func(it item.Item) bool {
		return baselines.FieldString(it, "guess") == baselines.FieldString(it, "target") &&
			baselines.FieldString(it, "guess") != ""
	})
	n, err := spark.Count(matches)
	if err != nil {
		return baselines.Result{}, err
	}
	return baselines.Result{Count: n}, nil
}

// group is Figure 2's aggregation: mapToPair((country, target) -> 1)
// followed by reduceByKey(+) and collect.
func (e *Engine) group(items *spark.RDD[item.Item]) (baselines.Result, error) {
	type key struct{ country, target string }
	pairs := spark.MapToPair(items, func(it item.Item) (key, int64) {
		return key{
			country: baselines.FieldString(it, "country"),
			target:  baselines.FieldString(it, "target"),
		}, 1
	})
	counts := spark.ReduceByKey(pairs, func(a, b int64) int64 { return a + b })
	collected, err := spark.Collect(counts)
	if err != nil {
		return baselines.Result{}, err
	}
	rows := make([]string, len(collected))
	for i, kv := range collected {
		rows[i] = fmt.Sprintf("%s,%s,%d", kv.Key.country, kv.Key.target, kv.Value)
	}
	sort.Strings(rows)
	return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
}

// sort is Figure 3's query shape on the RDD API: sortBy with a composite
// comparator, then take(10).
func (e *Engine) sort(items *spark.RDD[item.Item]) (baselines.Result, error) {
	correct := spark.Filter(items, func(it item.Item) bool {
		return baselines.FieldString(it, "guess") == baselines.FieldString(it, "target") &&
			baselines.FieldString(it, "guess") != ""
	})
	sorted := spark.SortBy(correct, func(a, b item.Item) bool {
		at, bt := baselines.FieldString(a, "target"), baselines.FieldString(b, "target")
		if at != bt {
			return at < bt
		}
		ac, bc := baselines.FieldString(a, "country"), baselines.FieldString(b, "country")
		if ac != bc {
			return ac > bc
		}
		return baselines.FieldString(a, "date") > baselines.FieldString(b, "date")
	})
	top, err := spark.Take(sorted, baselines.SortTopN)
	if err != nil {
		return baselines.Result{}, err
	}
	rows := make([]string, len(top))
	for i, it := range top {
		rows[i] = fmt.Sprintf("%s,%s,%s",
			baselines.FieldString(it, "target"),
			baselines.FieldString(it, "country"),
			baselines.FieldString(it, "date"))
	}
	return baselines.Result{Count: int64(len(rows)), Rows: rows}, nil
}

// Package baselines defines the common benchmark contract implemented by
// every engine of the paper's evaluation: Rumble itself, hand-written RDD
// programs ("Spark (Java)"), hand-written DataFrame programs ("Spark SQL"),
// a PySpark cost model, and the single-threaded JSONiq engines (Zorba,
// Xidel). All engines answer the same three standard queries over the
// confusion dataset (§6.1): filtering, grouping (aggregation) and sorting.
package baselines

import (
	"fmt"

	"rumble/internal/dfs"
	"rumble/internal/item"
	"rumble/internal/jparse"
	"rumble/internal/spark"
)

// Query identifies one of the paper's three standard query types.
type Query int

// The three standard queries of §6.1.
const (
	QueryFilter Query = iota // count objects where guess = target
	QueryGroup               // count per (country, target) group
	QuerySort                // top 10 by target asc, country desc, date desc
)

// String returns the query name as used in figures.
func (q Query) String() string {
	switch q {
	case QueryFilter:
		return "filter"
	case QueryGroup:
		return "group"
	case QuerySort:
		return "sort"
	default:
		return fmt.Sprintf("query(%d)", int(q))
	}
}

// Result is an engine's answer: a scalar count (filter: matches; group:
// groups; sort: rows returned) plus the output rows in canonical form so
// harnesses can verify engines agree.
type Result struct {
	Count int64
	Rows  []string
}

// Engine is one comparable system.
type Engine interface {
	// Name is the engine label used in figures.
	Name() string
	// Run executes the query against a JSON-Lines dataset at path.
	Run(q Query, path string) (Result, error)
}

// SortTopN is the take size of the sorting query, matching Figure 3's
// take(10).
const SortTopN = 10

// JSONiqQuery returns the JSONiq formulation of a standard query over the
// dataset at path, shared by every JSONiq engine under test (Rumble and
// the single-threaded engines) so that their outputs are comparable with
// the hand-coded Spark programs: the filter query returns a single count;
// group returns "country,target,count" strings; sort returns the top-N
// "target,country,date" strings.
func JSONiqQuery(q Query, path string) string {
	switch q {
	case QueryFilter:
		return fmt.Sprintf(
			`count(for $o in json-file(%q) where $o.guess eq $o.target return $o)`, path)
	case QueryGroup:
		return fmt.Sprintf(`
			for $o in json-file(%q)
			group by $c := $o.country, $t := $o.target
			return $c || "," || $t || "," || string(count($o))`, path)
	case QuerySort:
		return fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess eq $o.target
			order by $o.target ascending,
			         $o.country descending,
			         $o.date descending
			count $c
			where $c le %d
			return $o.target || "," || $o.country || "," || $o.date`, path, SortTopN)
	default:
		return ""
	}
}

// ItemsRDD scans a JSON-Lines dataset into an RDD of items — the shared
// input stage of the Spark-based engines.
func ItemsRDD(sc *spark.Context, path string, splitSize int64) (*spark.RDD[item.Item], error) {
	splits, err := dfs.ListSplits(path, splitSize)
	if err != nil {
		return nil, err
	}
	return spark.NewRDD(sc, len(splits), "json-lines", func(p int, yield func(item.Item) error) error {
		return dfs.ReadLines(splits[p], func(blocks int) { sc.SimulateIO(blocks) }, func(line []byte) error {
			it, perr := jparse.Parse(line)
			if perr != nil {
				return perr
			}
			return yield(it)
		})
	}), nil
}

// FieldString extracts a string field of a confusion object, with "" for
// absent or non-string values.
func FieldString(it item.Item, key string) string {
	obj, ok := it.(*item.Object)
	if !ok {
		return ""
	}
	v, ok := obj.Get(key)
	if !ok {
		return ""
	}
	s, ok := v.(item.Str)
	if !ok {
		return ""
	}
	return string(s)
}

// Package vector implements the columnar local execution backend behind
// Mode=Vector: typed column batches and the batch-at-a-time kernels
// (field lookup, comparison, arithmetic, effective-boolean filters,
// grouped aggregation) the runtime compiles eligible FLWOR pipelines to.
//
// A Col holds one value per pipeline row, discriminated by a per-row Tag:
// absent (the empty sequence), null, booleans, int64s, float64s and
// strings live in flat typed arrays, while decimals, arrays and objects —
// the values a typed column cannot carry — ride in an item overflow lane
// (TagItem) and are processed row-at-a-time through the same scalar
// functions the tuple backend uses. That per-row fallback is spill-free:
// heterogeneous data never forces the batch (or the query) off the
// columnar path, it just pays scalar cost for the odd row.
//
// Grouping reuses the typed sort-key column encodings of package item
// (item.SortKey / item.AppendSortKey): two column rows land in the same
// group exactly when the tuple backend's group-by would have bucketed
// them together, so results are identical across backends — including
// NaN keys, -0.0, and integers beyond the float64-exact range.
package vector

import (
	"fmt"
	"math"

	"rumble/internal/item"
)

// BatchSize is the number of rows the runtime packs into one batch before
// pushing it through the kernels: large enough to amortize dispatch, small
// enough to stay cache-resident.
const BatchSize = 1024

// Tag discriminates the per-row representation of a column value.
type Tag uint8

// The column value tags. TagAbsent is the zero value: a freshly extended
// column row is the empty sequence until written.
const (
	// TagAbsent marks the empty sequence: a missing object field, an
	// absorbed arithmetic operand, a filtered-out aggregate input.
	TagAbsent Tag = iota
	// TagNull is JSON null.
	TagNull
	// TagFalse and TagTrue are the booleans, kept as tags so boolean
	// columns need no value array at all.
	TagFalse
	TagTrue
	// TagInt values live in Ints.
	TagInt
	// TagDouble values live in Nums.
	TagDouble
	// TagString values live in Strs.
	TagString
	// TagItem is the overflow lane: decimals, arrays and objects live in
	// Items and are processed row-at-a-time (the spill-free fallback).
	TagItem
)

// Col is a typed column: one value per row, represented by parallel arrays
// indexed by row. A Const column holds a single logical value broadcast
// over the whole batch (row 0 is the value); kernels index it through idx.
type Col struct {
	Const bool
	Tags  []Tag
	Ints  []int64
	Nums  []float64
	Strs  []string
	Items []item.Item

	// Dict, when non-nil, makes this a dictionary string column: every
	// TagString row stores a code into Dict in the Ints lane instead of a
	// materialized string in Strs. Dict is sorted ascending and shared by
	// every column decoded from the same segment, so comparison kernels can
	// translate a literal once and compare codes. Dictionary columns are
	// read-only views produced by the segment decoder; append methods must
	// not be used on them.
	Dict []string
}

// NewCol returns an empty column with capacity for cap rows.
func NewCol(cap int) *Col {
	return &Col{
		Tags: make([]Tag, 0, cap),
		Ints: make([]int64, 0, cap),
		Nums: make([]float64, 0, cap),
		Strs: make([]string, 0, cap),
	}
}

// ConstCol returns a broadcast column holding it in every row; a nil item
// broadcasts the empty sequence.
func ConstCol(it item.Item) *Col {
	c := NewCol(1)
	if it == nil {
		c.AppendAbsent()
	} else {
		c.AppendItem(it)
	}
	c.Const = true
	return c
}

// Len returns the physical row count (1 for Const columns).
func (c *Col) Len() int { return len(c.Tags) }

// Reset truncates the column to zero rows, keeping capacity.
func (c *Col) Reset() {
	c.Tags = c.Tags[:0]
	c.Ints = c.Ints[:0]
	c.Nums = c.Nums[:0]
	c.Strs = c.Strs[:0]
	c.Items = c.Items[:0]
}

// idx maps a logical row to a physical row (0 for Const columns).
func (c *Col) idx(i int) int {
	if c.Const {
		return 0
	}
	return i
}

// str returns the string value of physical row i, which must be a
// TagString row: the dictionary entry for code columns, the Strs lane
// otherwise.
func (c *Col) str(i int) string {
	if c.Dict != nil {
		return c.Dict[c.Ints[i]]
	}
	return c.Strs[i]
}

// Slice returns a view of rows [off, off+n) sharing the underlying lanes
// (and dictionary). Const columns pass through: they broadcast over any
// row range. The view must be treated as read-only.
func (c *Col) Slice(off, n int) *Col {
	if c.Const {
		return c
	}
	out := &Col{
		Tags: c.Tags[off : off+n : off+n],
		Ints: c.Ints[off : off+n : off+n],
		Nums: c.Nums[off : off+n : off+n],
		Strs: c.Strs[off : off+n : off+n],
		Dict: c.Dict,
	}
	// The item lane is lazy: it may end before off+n (or before off) when
	// no TagItem row lands that late. Any TagItem row inside the window is
	// covered, which is the lane's only invariant.
	if len(c.Items) > off {
		end := off + n
		if end > len(c.Items) {
			end = len(c.Items)
		}
		out.Items = c.Items[off:end:end]
	}
	return out
}

// grow appends one zeroed row to the typed lanes. The item overflow lane
// stays lazy: most columns never see a TagItem row, so Items is only
// padded (by putItem) when one actually lands — a TagItem row is always
// covered by Items, later typed rows may leave Items short.
func (c *Col) grow() int {
	c.Tags = append(c.Tags, TagAbsent)
	c.Ints = append(c.Ints, 0)
	c.Nums = append(c.Nums, 0)
	c.Strs = append(c.Strs, "")
	return len(c.Tags) - 1
}

// putItem stores an overflow value at row i, padding the lazy lane.
func (c *Col) putItem(i int, it item.Item) {
	for len(c.Items) <= i {
		c.Items = append(c.Items, nil)
	}
	c.Items[i] = it
}

// AppendAbsent appends an empty-sequence row.
func (c *Col) AppendAbsent() { c.grow() }

// AppendItem appends one item, routing it to its typed lane. A nil item
// appends the empty sequence.
func (c *Col) AppendItem(it item.Item) {
	i := c.grow()
	if it == nil {
		return
	}
	switch v := it.(type) {
	case item.Null:
		c.Tags[i] = TagNull
	case item.Bool:
		if v {
			c.Tags[i] = TagTrue
		} else {
			c.Tags[i] = TagFalse
		}
	case item.Int:
		c.Tags[i] = TagInt
		c.Ints[i] = int64(v)
	case item.Double:
		c.Tags[i] = TagDouble
		c.Nums[i] = float64(v)
	case item.Str:
		c.Tags[i] = TagString
		c.Strs[i] = string(v)
	default:
		c.Tags[i] = TagItem
		c.putItem(i, it)
	}
}

// AppendInt appends a present integer row.
func (c *Col) AppendInt(v int64) {
	i := c.grow()
	c.Tags[i] = TagInt
	c.Ints[i] = v
}

// AppendBool appends a present boolean row.
func (c *Col) AppendBool(b bool) {
	i := c.grow()
	if b {
		c.Tags[i] = TagTrue
	} else {
		c.Tags[i] = TagFalse
	}
}

// Item decodes row i back into an item; nil means the row is absent (the
// empty sequence). Decoding boxes scalar lanes, so kernels avoid it on hot
// paths and reserve it for yields and the overflow lane.
func (c *Col) Item(i int) item.Item {
	i = c.idx(i)
	switch c.Tags[i] {
	case TagAbsent:
		return nil
	case TagNull:
		return item.Null{}
	case TagFalse:
		return item.Bool(false)
	case TagTrue:
		return item.Bool(true)
	case TagInt:
		return item.Int(c.Ints[i])
	case TagDouble:
		return item.Double(c.Nums[i])
	case TagString:
		return item.Str(c.str(i))
	default:
		return c.Items[i]
	}
}

// SortKey encodes row i with the shared typed key encoding, exactly as
// item.EncodeSortKey would encode the row's item; non-atomic overflow rows
// return EncodeSortKey's error.
func (c *Col) SortKey(i int) (item.SortKey, error) {
	i = c.idx(i)
	switch c.Tags[i] {
	case TagAbsent:
		return item.SortKey{Tag: item.TagEmptyLeast}, nil
	case TagNull:
		return item.SortKey{Tag: item.TagNull}, nil
	case TagFalse:
		return item.SortKey{Tag: item.TagFalse}, nil
	case TagTrue:
		return item.SortKey{Tag: item.TagTrue}, nil
	case TagInt:
		return item.IntKey(c.Ints[i]), nil
	case TagDouble:
		return item.NumberKey(c.Nums[i]), nil
	case TagString:
		return item.SortKey{Tag: item.TagString, Str: c.str(i)}, nil
	default:
		return item.EncodeSortKey([]item.Item{c.Items[i]}, false)
	}
}

// Kind returns the JSONiq kind name of row i, for error messages matching
// the tuple backend's wording. The row must be present.
func (c *Col) Kind(i int) item.Kind {
	i = c.idx(i)
	switch c.Tags[i] {
	case TagNull:
		return item.KindNull
	case TagFalse, TagTrue:
		return item.KindBoolean
	case TagInt:
		return item.KindInteger
	case TagDouble:
		return item.KindDouble
	case TagString:
		return item.KindString
	default:
		return c.Items[i].Kind()
	}
}

// atomic reports whether present row i is an atomic item.
func (c *Col) atomic(i int) bool {
	i = c.idx(i)
	if c.Tags[i] != TagItem {
		return true
	}
	return item.IsAtomic(c.Items[i])
}

// EBV computes the effective boolean value of row i under single-item EBV
// rules (absent is false); it mirrors item.EffectiveBoolean, which never
// errors on a single item.
func (c *Col) EBV(i int) bool {
	i = c.idx(i)
	switch c.Tags[i] {
	case TagAbsent, TagNull, TagFalse:
		return false
	case TagTrue:
		return true
	case TagInt:
		return c.Ints[i] != 0
	case TagDouble:
		return c.Nums[i] != 0 && !math.IsNaN(c.Nums[i])
	case TagString:
		return c.str(i) != ""
	default:
		b, _ := item.EffectiveBoolean([]item.Item{c.Items[i]})
		return b
	}
}

// Compact returns the column restricted to rows where keep is true (kept
// rows, in order). Const columns pass through unchanged: they broadcast
// over whatever batch length remains.
func (c *Col) Compact(keep []bool, kept int) *Col {
	if c.Const {
		return c
	}
	out := NewCol(kept)
	out.Dict = c.Dict // codes travel in the Ints lane copied below
	for i, k := range keep {
		if !k {
			continue
		}
		j := out.grow()
		out.Tags[j] = c.Tags[i]
		out.Ints[j] = c.Ints[i]
		out.Nums[j] = c.Nums[i]
		out.Strs[j] = c.Strs[i]
		if c.Tags[i] == TagItem {
			out.putItem(j, c.Items[i])
		}
	}
	return out
}

// errNonAtomic builds the "<context> requires an atomic item" error with
// the tuple backend's wording.
func errNonAtomic(what string, k item.Kind) error {
	return fmt.Errorf("%s requires an atomic item, got %s", what, k)
}

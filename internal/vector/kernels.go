package vector

import (
	"fmt"
	"math"
	"sort"

	"rumble/internal/functions"
	"rumble/internal/item"
)

// CmpOp is a value-comparison operator code.
type CmpOp int

// The six value comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// ParseCmpOp maps the AST spelling of a value comparison to its code.
func ParseCmpOp(op string) (CmpOp, bool) {
	switch op {
	case "eq":
		return CmpEq, true
	case "ne":
		return CmpNe, true
	case "lt":
		return CmpLt, true
	case "le":
		return CmpLe, true
	case "gt":
		return CmpGt, true
	case "ge":
		return CmpGe, true
	default:
		return 0, false
	}
}

// matches reports whether a three-way comparison result c satisfies op.
func (op CmpOp) matches(c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// Lookup extracts the key field of every object row of in: non-objects and
// absent keys contribute the empty sequence, mirroring the tuple backend's
// object lookup.
func Lookup(in *Col, key string, n int) *Col {
	out := NewCol(n)
	for i := 0; i < n; i++ {
		j := in.idx(i)
		if in.Tags[j] == TagItem {
			if obj, ok := in.Items[j].(*item.Object); ok {
				if v, found := obj.Get(key); found {
					out.AppendItem(v)
					continue
				}
			}
		}
		out.AppendAbsent()
	}
	return out
}

// exactFloatInt is the largest int64 magnitude exactly representable as a
// float64 (2^53): below it, an int column row compares against a finite
// double row in pure float arithmetic without losing exactness.
const exactFloatInt = int64(1) << 53

// dictProbe is a comparison literal translated into a sorted dictionary
// once per batch: lo is the rank of the first dictionary entry >= the
// literal (sort.SearchStrings), exact whether that entry equals it. A code
// k then three-way-compares against the literal without touching string
// bytes: k < lo ⇒ less, k == lo && exact ⇒ equal, otherwise greater.
type dictProbe struct {
	lo    int64
	exact bool
}

func probeDict(dict []string, lit string) *dictProbe {
	lo := sort.SearchStrings(dict, lit)
	return &dictProbe{lo: int64(lo), exact: lo < len(dict) && dict[lo] == lit}
}

func (p *dictProbe) cmp(code int64) int {
	switch {
	case code < p.lo:
		return -1
	case code == p.lo && p.exact:
		return 0
	default:
		return 1
	}
}

// constString returns the broadcast string of a Const TagString column
// without a dictionary (the shape a pushed-down comparison literal takes).
func constString(c *Col) (string, bool) {
	if c.Const && len(c.Tags) == 1 && c.Tags[0] == TagString && c.Dict == nil {
		return c.Strs[0], true
	}
	return "", false
}

// Compare applies a value comparison row-by-row with the tuple backend's
// semantics: an absent operand absorbs to absent, a non-atomic operand is
// an error, and mixed-type rows fall back to item.CompareValues so cross-
// type exactness (and its error cases) match exactly. A dictionary column
// compared against a constant string literal translates the literal into
// the dictionary once and compares codes.
func Compare(l, r *Col, n int, op CmpOp) (*Col, error) {
	var lProbe, rProbe *dictProbe
	if l.Dict != nil {
		if lit, ok := constString(r); ok {
			lProbe = probeDict(l.Dict, lit)
		}
	}
	if r.Dict != nil {
		if lit, ok := constString(l); ok {
			rProbe = probeDict(r.Dict, lit)
		}
	}
	out := NewCol(n)
	for i := 0; i < n; i++ {
		li, ri := l.idx(i), r.idx(i)
		lt, rt := l.Tags[li], r.Tags[ri]
		if lt == TagAbsent || rt == TagAbsent {
			out.AppendAbsent()
			continue
		}
		if !l.atomic(i) {
			return nil, errNonAtomic("comparison operand", l.Kind(i))
		}
		if !r.atomic(i) {
			return nil, errNonAtomic("comparison operand", r.Kind(i))
		}
		var c int
		switch {
		case lt == TagInt && rt == TagInt:
			c = cmpInt(l.Ints[li], r.Ints[ri])
		case lt == TagDouble && rt == TagDouble:
			// Pure float ordering, including its NaN behavior — exactly
			// what CompareValues does for double-double pairs.
			c = cmpFloat(l.Nums[li], r.Nums[ri])
		case lt == TagString && rt == TagString:
			switch {
			case lProbe != nil:
				c = lProbe.cmp(l.Ints[li])
			case rProbe != nil:
				c = -rProbe.cmp(r.Ints[ri])
			default:
				c = cmpString(l.str(li), r.str(ri))
			}
		case lt == TagInt && rt == TagDouble && intDoubleExact(l.Ints[li], r.Nums[ri]):
			c = cmpFloat(float64(l.Ints[li]), r.Nums[ri])
		case lt == TagDouble && rt == TagInt && intDoubleExact(r.Ints[ri], l.Nums[li]):
			c = cmpFloat(l.Nums[li], float64(r.Ints[ri]))
		case (lt == TagFalse || lt == TagTrue) && (rt == TagFalse || rt == TagTrue):
			c = cmpInt(int64(lt), int64(rt)) // TagFalse < TagTrue
		default:
			var err error
			c, err = item.CompareValues(l.Item(i), r.Item(i))
			if err != nil {
				return nil, err
			}
		}
		out.AppendBool(op.matches(c))
	}
	return out, nil
}

// intDoubleExact reports whether a plain float comparison of v against f is
// exact: f must be finite (non-finite pairs use float ordering anyway, but
// NaN handling lives in the slow path) and v exactly representable.
func intDoubleExact(v int64, f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0) && v >= -exactFloatInt && v <= exactFloatInt
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Arith applies a binary arithmetic operator row-by-row: absent operands
// absorb, int/int and double rows run in typed loops, and anything else —
// decimals, overflow, division promotion, non-numeric operands — falls
// back to item.Arithmetic so results and errors match the tuple backend.
func Arith(l, r *Col, n int, op item.ArithOp) (*Col, error) {
	out := NewCol(n)
	for i := 0; i < n; i++ {
		li, ri := l.idx(i), r.idx(i)
		lt, rt := l.Tags[li], r.Tags[ri]
		if lt == TagAbsent || rt == TagAbsent {
			out.AppendAbsent()
			continue
		}
		if !l.atomic(i) {
			return nil, errNonAtomic("arithmetic operand", l.Kind(i))
		}
		if !r.atomic(i) {
			return nil, errNonAtomic("arithmetic operand", r.Kind(i))
		}
		if lt == TagInt && rt == TagInt {
			if v, ok := intFast(op, l.Ints[li], r.Ints[ri]); ok {
				j := out.grow()
				out.Tags[j] = TagInt
				out.Ints[j] = v
				continue
			}
		} else if (lt == TagInt || lt == TagDouble) && (rt == TagInt || rt == TagDouble) &&
			(lt == TagDouble || rt == TagDouble) {
			a, b := l.Nums[li], r.Nums[ri]
			if lt == TagInt {
				a = float64(l.Ints[li])
			}
			if rt == TagInt {
				b = float64(r.Ints[ri])
			}
			if v, ok := doubleFast(op, a, b); ok {
				j := out.grow()
				out.Tags[j] = TagDouble
				out.Nums[j] = v
				continue
			}
		}
		res, err := item.Arithmetic(op, l.Item(i), r.Item(i))
		if err != nil {
			return nil, err
		}
		out.AppendItem(res)
	}
	return out, nil
}

// intFast computes op over int64 operands when the result provably matches
// item.Arithmetic's Int result: overflow, promotion (div) and error cases
// (zero divisors) decline to the generic path.
func intFast(op item.ArithOp, a, b int64) (int64, bool) {
	switch op {
	case item.OpAdd:
		r := a + b
		if (b > 0 && r < a) || (b < 0 && r > a) {
			return 0, false
		}
		return r, true
	case item.OpSub:
		if b == math.MinInt64 {
			return 0, false
		}
		r := a - b
		if (b < 0 && r < a) || (b > 0 && r > a) {
			return 0, false
		}
		return r, true
	case item.OpMul:
		if a == 0 {
			return 0, true
		}
		r := a * b
		if r/a != b {
			return 0, false
		}
		return r, true
	case item.OpIDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case item.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	default:
		return 0, false // div promotes to decimal
	}
}

// doubleFast computes op over float64 operands for the operators whose
// double semantics are a plain float op; idiv and mod have edge-case
// errors and integer results, so they take the generic path.
func doubleFast(op item.ArithOp, a, b float64) (float64, bool) {
	switch op {
	case item.OpAdd:
		return a + b, true
	case item.OpSub:
		return a - b, true
	case item.OpMul:
		return a * b, true
	case item.OpDiv:
		return a / b, true
	default:
		return 0, false
	}
}

// Unary applies unary plus/minus row-by-row with the tuple backend's
// semantics: absent absorbs, plus requires (and passes through) a numeric,
// minus negates via item.Negate on the slow path.
func Unary(in *Col, n int, minus bool) (*Col, error) {
	out := NewCol(n)
	for i := 0; i < n; i++ {
		j := in.idx(i)
		switch in.Tags[j] {
		case TagAbsent:
			out.AppendAbsent()
			continue
		case TagInt:
			if !minus {
				k := out.grow()
				out.Tags[k] = TagInt
				out.Ints[k] = in.Ints[j]
				continue
			}
			if in.Ints[j] != math.MinInt64 {
				k := out.grow()
				out.Tags[k] = TagInt
				out.Ints[k] = -in.Ints[j]
				continue
			}
		case TagDouble:
			k := out.grow()
			out.Tags[k] = TagDouble
			if minus {
				out.Nums[k] = -in.Nums[j]
			} else {
				out.Nums[k] = in.Nums[j]
			}
			continue
		}
		if !in.atomic(i) {
			return nil, errNonAtomic("unary operand", in.Kind(i))
		}
		it := in.Item(i)
		if !minus {
			if !item.IsNumeric(it) {
				return nil, fmt.Errorf("unary plus requires a numeric operand, got %s", it.Kind())
			}
			out.AppendItem(it)
			continue
		}
		neg, err := item.Negate(it)
		if err != nil {
			return nil, err
		}
		out.AppendItem(neg)
	}
	return out, nil
}

// MakeObjects builds one object per row from parallel value columns with
// fixed keys; absent values become null, as in the tuple backend's object
// constructor. The key slice is shared across all built objects.
func MakeObjects(keys []string, vals []*Col, n int) *Col {
	out := NewCol(n)
	for i := 0; i < n; i++ {
		values := make([]item.Item, len(vals))
		for k, v := range vals {
			if it := v.Item(i); it != nil {
				values[k] = it
			} else {
				values[k] = item.Null{}
			}
		}
		out.AppendItem(item.NewObject(keys, values))
	}
	return out
}

// MakeArrays builds one array per row from the body column (nil body means
// the constant empty array): an absent body row yields an empty array, a
// present one a singleton, mirroring [ expr ] over single-valued bodies.
func MakeArrays(body *Col, n int) *Col {
	out := NewCol(n)
	for i := 0; i < n; i++ {
		if body == nil {
			out.AppendItem(item.NewArray(nil))
			continue
		}
		if it := body.Item(i); it != nil {
			out.AppendItem(item.NewArray([]item.Item{it}))
		} else {
			out.AppendItem(item.NewArray(nil))
		}
	}
	return out
}

// Call evaluates a scalar builtin row-by-row over single-valued argument
// columns, the generic bridge for whitelisted functions (contains,
// lower-case, ...). Absent argument rows pass the empty sequence, as the
// tuple backend's call iterator does after materialization.
func Call(fn functions.Func, args []*Col, n int) (*Col, error) {
	out := NewCol(n)
	argSeqs := make([][]item.Item, len(args))
	argBufs := make([][1]item.Item, len(args))
	for i := 0; i < n; i++ {
		for k, a := range args {
			if it := a.Item(i); it != nil {
				argBufs[k][0] = it
				argSeqs[k] = argBufs[k][:1]
			} else {
				argSeqs[k] = nil
			}
		}
		res, err := fn.Call(argSeqs)
		if err != nil {
			return nil, err
		}
		switch len(res) {
		case 0:
			out.AppendAbsent()
		case 1:
			out.AppendItem(res[0])
		default:
			return nil, fmt.Errorf("vector: builtin %s returned %d items for one row", fn.Name, len(res))
		}
	}
	return out, nil
}

package vector

import (
	"fmt"

	"rumble/internal/item"
)

// AggKind names an aggregate the grouped pipeline folds columnar-ly.
type AggKind int

// The aggregates the backend folds without materializing groups.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// aggState is one running accumulator: n counts present values; sums run
// in a fast int64 lane while every value is an integer and the running sum
// fits, then spill into cur via item.Arithmetic (preserving the tuple
// backend's left-to-right fold, including its overflow promotion).
type aggState struct {
	n       int64
	intSum  int64
	fastInt bool
	cur     item.Item
}

// groupState is one group: the first-seen key values (nil = absent), the
// canonical key encoding it buckets under (kept so partial tables merge
// without re-encoding), and the per-aggregate accumulators.
type groupState struct {
	key  string
	keys []item.Item
	aggs []aggState
}

// Groups is the grouped-aggregation hash table: rows bucket by the
// canonical sort-key encoding of their key columns (item.AppendSortKey),
// so two rows group together exactly when the tuple backend's group-by
// would bucket them. Groups emit in first-seen order, matching the tuple
// backend's output order.
type Groups struct {
	isMin  []bool // per aggregate, for AggMin/AggMax
	kinds  []AggKind
	m      map[string]*groupState
	order  []*groupState
	keyBuf []byte
}

// NewGroups creates a table for nKeys grouping keys and the given
// aggregate kinds.
func NewGroups(nKeys int, kinds []AggKind) *Groups {
	g := &Groups{kinds: kinds, m: map[string]*groupState{}}
	g.isMin = make([]bool, len(kinds))
	for i, k := range kinds {
		g.isMin[i] = k == AggMin
	}
	return g
}

// Update folds one batch of n rows into the table: keyCols are the
// grouping key columns (already in spec order), aggCols the per-aggregate
// argument columns (aligned with the kinds passed to NewGroups).
func (g *Groups) Update(keyCols, aggCols []*Col, n int) error {
	for i := 0; i < n; i++ {
		g.keyBuf = g.keyBuf[:0]
		for _, kc := range keyCols {
			sk, err := kc.SortKey(i)
			if err != nil {
				// Same wording as the tuple backend's group-by encoding.
				return fmt.Errorf("group by: %v", err)
			}
			g.keyBuf = item.AppendSortKey(g.keyBuf, sk)
		}
		st, ok := g.m[string(g.keyBuf)]
		if !ok {
			st = &groupState{
				key:  string(g.keyBuf),
				keys: make([]item.Item, len(keyCols)),
				aggs: make([]aggState, len(g.kinds)),
			}
			for k, kc := range keyCols {
				st.keys[k] = kc.Item(i)
			}
			g.m[st.key] = st
			g.order = append(g.order, st)
		}
		for j := range g.kinds {
			if err := g.updateAgg(&st.aggs[j], g.kinds[j], g.isMin[j], aggCols[j], i); err != nil {
				return err
			}
		}
	}
	return nil
}

// updateAgg folds row i of col into one accumulator. Absent rows
// contribute nothing to any aggregate, exactly as they are missing from
// the materialized sequence the tuple backend would fold.
func (g *Groups) updateAgg(a *aggState, kind AggKind, isMin bool, col *Col, i int) error {
	j := col.idx(i)
	tag := col.Tags[j]
	if tag == TagAbsent {
		return nil
	}
	switch kind {
	case AggCount:
		a.n++
		return nil
	case AggSum, AggAvg:
		if !numericTag(col, i) {
			return fmt.Errorf("sum: non-numeric item of type %s", col.Kind(i))
		}
		switch {
		case a.n == 0 && tag == TagInt:
			a.intSum = col.Ints[j]
			a.fastInt = true
		case a.n == 0:
			a.cur = col.Item(i)
		case a.fastInt && tag == TagInt:
			v := col.Ints[j]
			r := a.intSum + v
			if (v > 0 && r < a.intSum) || (v < 0 && r > a.intSum) {
				res, err := item.Arithmetic(item.OpAdd, item.Int(a.intSum), item.Int(v))
				if err != nil {
					return err
				}
				a.cur = res
				a.fastInt = false
			} else {
				a.intSum = r
			}
		default:
			if a.fastInt {
				a.cur = item.Int(a.intSum)
				a.fastInt = false
			}
			res, err := item.Arithmetic(item.OpAdd, a.cur, col.Item(i))
			if err != nil {
				return err
			}
			a.cur = res
		}
		a.n++
		return nil
	default: // AggMin, AggMax
		it := col.Item(i)
		if a.n == 0 {
			a.cur = it
		} else {
			c, err := item.CompareValues(it, a.cur)
			if err != nil {
				return fmt.Errorf("min/max: %v", err)
			}
			if (isMin && c < 0) || (!isMin && c > 0) {
				a.cur = it
			}
		}
		a.n++
		return nil
	}
}

// Merge folds other's groups into g, preserving global first-seen order
// when partial tables are merged in morsel index order: other's new groups
// append after g's in other's own first-seen order, and an existing
// group's accumulators combine with other's as the later partial. Merging
// per-morsel partials left to right is the parallel backend's determinism
// contract — the result depends only on the morsel order, never on which
// worker processed which morsel.
func (g *Groups) Merge(other *Groups) error {
	for _, ost := range other.order {
		st, ok := g.m[ost.key]
		if !ok {
			// Adopt the partial state wholesale: first-seen keys and
			// accumulators travel as-is.
			g.m[ost.key] = ost
			g.order = append(g.order, ost)
			continue
		}
		for j := range g.kinds {
			if err := mergeAgg(&st.aggs[j], &ost.aggs[j], g.kinds[j], g.isMin[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeAgg combines o (the later partial) into a. The combination mirrors
// the row-at-a-time fold: counts add, partial sums add through the fast
// int lane with the same overflow promotion, and min/max keep a on ties so
// the earlier partial's first-seen extremum survives.
func mergeAgg(a, o *aggState, kind AggKind, isMin bool) error {
	if o.n == 0 {
		return nil
	}
	if a.n == 0 {
		*a = *o
		return nil
	}
	switch kind {
	case AggCount:
		a.n += o.n
		return nil
	case AggSum, AggAvg:
		if a.fastInt && o.fastInt {
			v := o.intSum
			r := a.intSum + v
			if (v > 0 && r < a.intSum) || (v < 0 && r > a.intSum) {
				res, err := item.Arithmetic(item.OpAdd, item.Int(a.intSum), item.Int(v))
				if err != nil {
					return err
				}
				a.cur = res
				a.fastInt = false
			} else {
				a.intSum = r
			}
		} else {
			res, err := item.Arithmetic(item.OpAdd, a.sum(), o.sum())
			if err != nil {
				return err
			}
			a.cur = res
			a.fastInt = false
		}
		a.n += o.n
		return nil
	default: // AggMin, AggMax
		c, err := item.CompareValues(o.cur, a.cur)
		if err != nil {
			return fmt.Errorf("min/max: %v", err)
		}
		if (isMin && c < 0) || (!isMin && c > 0) {
			a.cur = o.cur
		}
		a.n += o.n
		return nil
	}
}

// EnsureGrand guarantees the single group of a grand (no group-by)
// aggregation exists, so empty input still finalizes to the builtin
// aggregates' empty-sequence results (count 0, sum 0, empty avg/min/max).
func (g *Groups) EnsureGrand() {
	if len(g.order) != 0 {
		return
	}
	st := &groupState{aggs: make([]aggState, len(g.kinds))}
	g.m[st.key] = st
	g.order = append(g.order, st)
}

// numericTag reports whether present row i of col is numeric.
func numericTag(col *Col, i int) bool {
	j := col.idx(i)
	switch col.Tags[j] {
	case TagInt, TagDouble:
		return true
	case TagItem:
		return item.IsNumeric(col.Items[j])
	default:
		return false
	}
}

// Len returns the number of groups, in first-seen order.
func (g *Groups) Len() int { return len(g.order) }

// GrandCount returns the running count accumulator of a grand (no group-by)
// aggregation whose first aggregate is AggCount — 0 when no present value
// has been folded yet. Early-exit aggregates (exists/empty) poll it to stop
// scanning as soon as the answer is decided.
func (g *Groups) GrandCount() int64 {
	if len(g.order) == 0 {
		return 0
	}
	return g.order[0].aggs[0].n
}

// Key returns grouping key ki of group gi (nil = absent), the first-seen
// key value exactly as the tuple backend binds it.
func (g *Groups) Key(gi, ki int) item.Item { return g.order[gi].keys[ki] }

// Agg finalizes aggregate j of group gi. A nil result is the empty
// sequence (avg/min/max over no present values); sum over no present
// values is integer zero, count is always present.
func (g *Groups) Agg(gi, j int) (item.Item, error) {
	a := &g.order[gi].aggs[j]
	switch g.kinds[j] {
	case AggCount:
		return item.Int(a.n), nil
	case AggSum:
		if a.n == 0 {
			return item.Int(0), nil
		}
		return a.sum(), nil
	case AggAvg:
		if a.n == 0 {
			return nil, nil
		}
		return item.Arithmetic(item.OpDiv, a.sum(), item.Int(a.n))
	default: // AggMin, AggMax
		if a.n == 0 {
			return nil, nil
		}
		return a.cur, nil
	}
}

// sum returns the running sum as an item, materializing the fast int lane.
func (a *aggState) sum() item.Item {
	if a.fastInt {
		return item.Int(a.intSum)
	}
	return a.cur
}

package vector

import (
	"math"
	"math/big"
	"testing"

	"rumble/internal/item"
)

func colOf(items ...item.Item) *Col {
	c := NewCol(len(items))
	for _, it := range items {
		c.AppendItem(it) // nil appends absent
	}
	return c
}

func TestColRoundTrip(t *testing.T) {
	dec, _ := item.DecimalFromString("3.14")
	items := []item.Item{
		nil,
		item.Null{},
		item.Bool(true),
		item.Bool(false),
		item.Int(42),
		item.Double(2.5),
		item.Str("hi"),
		dec,
		item.NewArray([]item.Item{item.Int(1)}),
		item.NewObject([]string{"a"}, []item.Item{item.Int(1)}),
	}
	c := colOf(items...)
	for i, want := range items {
		got := c.Item(i)
		if want == nil {
			if got != nil {
				t.Fatalf("row %d: want absent, got %v", i, got)
			}
			continue
		}
		if got.String() != want.String() || got.Kind() != want.Kind() {
			t.Fatalf("row %d: got %s (%s), want %s (%s)", i, got, got.Kind(), want, want.Kind())
		}
	}
}

// TestColSortKeyMatchesEncode pins that the column's direct key encoding
// agrees byte-for-byte with item.EncodeSortKey on the decoded value — the
// invariant that makes vector group-by bucket exactly like tuple group-by.
func TestColSortKeyMatchesEncode(t *testing.T) {
	dec, _ := item.DecimalFromString("2.75")
	big53 := item.Int(1<<53 + 1)
	values := []item.Item{
		nil, item.Null{}, item.Bool(false), item.Bool(true),
		item.Int(7), item.Int(-7), big53,
		item.Double(2.5), item.Double(math.NaN()), item.Double(math.Copysign(0, -1)),
		item.Double(1 << 53), item.Str(""), item.Str("x"), dec,
	}
	c := colOf(values...)
	for i, v := range values {
		got, err := c.SortKey(i)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		var seq []item.Item
		if v != nil {
			seq = []item.Item{v}
		}
		want, err := item.EncodeSortKey(seq, false)
		if err != nil {
			t.Fatalf("row %d: encode: %v", i, err)
		}
		gb := item.AppendSortKey(nil, got)
		wb := item.AppendSortKey(nil, want)
		if string(gb) != string(wb) {
			t.Fatalf("row %d (%v): key bytes differ", i, v)
		}
	}
	// Non-atomic keys must fail exactly like EncodeSortKey.
	bad := colOf(item.NewArray(nil))
	if _, err := bad.SortKey(0); err == nil {
		t.Fatal("want error for non-atomic key")
	}
}

func TestCompareMirrorsCompareValues(t *testing.T) {
	dec, _ := item.DecimalFromString("2.5")
	vals := []item.Item{
		item.Null{}, item.Bool(false), item.Bool(true),
		item.Int(1), item.Int(2), item.Int(1<<53 + 1),
		item.Double(1), item.Double(2.5), item.Double(1 << 53),
		item.Double(math.NaN()), item.Double(math.Inf(1)),
		item.Str(""), item.Str("a"), dec,
	}
	for _, a := range vals {
		for _, b := range vals {
			l, r := colOf(a), colOf(b)
			got, gotErr := Compare(l, r, 1, CmpEq)
			wantC, wantErr := item.CompareValues(a, b)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%s eq %s: err = %v, want-err %v", a, b, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if want := wantC == 0; got.EBV(0) != want {
				t.Fatalf("%s eq %s: got %v, want %v", a, b, got.EBV(0), want)
			}
		}
	}
	// Absent operands absorb.
	out, err := Compare(colOf(nil), colOf(item.Int(1)), 1, CmpLt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tags[0] != TagAbsent {
		t.Fatal("absent operand must yield absent")
	}
}

func TestArithMirrorsArithmetic(t *testing.T) {
	dec, _ := item.DecimalFromString("0.1")
	pairs := []struct{ a, b item.Item }{
		{item.Int(2), item.Int(3)},
		{item.Int(math.MaxInt64), item.Int(1)}, // overflow promotes
		{item.Int(2), item.Double(0.5)},
		{item.Double(1.5), item.Double(2.5)},
		{item.Int(1), dec},
		{item.Int(7), item.Int(2)},
	}
	ops := []item.ArithOp{item.OpAdd, item.OpSub, item.OpMul, item.OpDiv, item.OpIDiv, item.OpMod}
	for _, p := range pairs {
		for _, op := range ops {
			got, gotErr := Arith(colOf(p.a), colOf(p.b), 1, op)
			want, wantErr := item.Arithmetic(op, p.a, p.b)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%s %s %s: err=%v want-err=%v", p.a, op, p.b, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			gi := got.Item(0)
			if gi.String() != want.String() || gi.Kind() != want.Kind() {
				t.Fatalf("%s %s %s: got %s (%s), want %s (%s)",
					p.a, op, p.b, gi, gi.Kind(), want, want.Kind())
			}
		}
	}
	// Division by zero errors on both paths.
	if _, err := Arith(colOf(item.Int(1)), colOf(item.Int(0)), 1, item.OpIDiv); err == nil {
		t.Fatal("idiv by zero must error")
	}
	if _, err := Arith(colOf(item.Int(1)), colOf(item.Int(0)), 1, item.OpMod); err == nil {
		t.Fatal("mod by zero must error")
	}
	// Non-numeric operands error like item.Arithmetic.
	if _, err := Arith(colOf(item.Str("x")), colOf(item.Int(1)), 1, item.OpAdd); err == nil {
		t.Fatal("string operand must error")
	}
}

func TestGroupsSumOverflowPromotes(t *testing.T) {
	g := NewGroups(1, []AggKind{AggSum})
	key := ConstCol(item.Str("k"))
	vals := colOf(item.Int(math.MaxInt64), item.Int(math.MaxInt64))
	if err := g.Update([]*Col{key}, []*Col{vals}, 2); err != nil {
		t.Fatal(err)
	}
	res, err := g.Agg(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).SetInt64(math.MaxInt64)
	want.Add(want, new(big.Rat).SetInt64(math.MaxInt64))
	if res.Kind() != item.KindDecimal {
		t.Fatalf("overflowed sum kind = %s, want decimal", res.Kind())
	}
	if res.(item.Dec).Rat().Cmp(want) != 0 {
		t.Fatalf("overflowed sum = %s", res)
	}
}

func TestGroupsFirstSeenOrderAndEmptyAggs(t *testing.T) {
	g := NewGroups(1, []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax})
	keys := colOf(item.Str("b"), item.Str("a"), item.Str("b"))
	present := colOf(item.Int(1), nil, item.Int(3))
	if err := g.Update([]*Col{keys},
		[]*Col{present, present, present, present, present}, 3); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d, want 2", g.Len())
	}
	if g.Key(0, 0).String() != "b" || g.Key(1, 0).String() != "a" {
		t.Fatal("groups must emit in first-seen order")
	}
	// Group "a" saw only an absent value: count 0, sum 0, avg/min/max empty.
	checks := []struct {
		j    int
		want string // "" = absent
	}{{0, "0"}, {1, "0"}, {2, ""}, {3, ""}, {4, ""}}
	for _, ck := range checks {
		res, err := g.Agg(1, ck.j)
		if err != nil {
			t.Fatal(err)
		}
		if ck.want == "" {
			if res != nil {
				t.Fatalf("agg %d = %v, want absent", ck.j, res)
			}
		} else if res == nil || res.String() != ck.want {
			t.Fatalf("agg %d = %v, want %s", ck.j, res, ck.want)
		}
	}
	// Group "b": count 2, sum 4, avg 2, min 1, max 3.
	for j, want := range []string{"2", "4", "2", "1", "3"} {
		res, err := g.Agg(0, j)
		if err != nil {
			t.Fatal(err)
		}
		if res.String() != want {
			t.Fatalf("group b agg %d = %s, want %s", j, res, want)
		}
	}
}

// TestGroupsMergeMatchesSequential pins the mergeable-state contract: a
// fold split into per-chunk partial tables merged in chunk order produces
// the same groups — order, keys, counts, sums, extrema — as one continuous
// fold, for any chunking. This is what makes morsel-parallel grouped
// aggregation deterministic across worker counts.
func TestGroupsMergeMatchesSequential(t *testing.T) {
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax}
	var keys, vals []item.Item
	for i := 0; i < 100; i++ {
		switch i % 9 {
		case 7:
			keys = append(keys, nil) // absent key
		case 8:
			keys = append(keys, item.Double(float64(i%5)))
		default:
			keys = append(keys, item.Int(int64(i%5)))
		}
		if i%11 == 10 {
			vals = append(vals, nil) // absent value
		} else {
			vals = append(vals, item.Int(int64(i)))
		}
	}
	fold := func(chunk int) *Groups {
		var merged *Groups
		for start := 0; start < len(keys); start += chunk {
			end := min(start+chunk, len(keys))
			part := NewGroups(1, kinds)
			kc, vc := colOf(keys[start:end]...), colOf(vals[start:end]...)
			if err := part.Update([]*Col{kc}, []*Col{vc, vc, vc, vc, vc}, end-start); err != nil {
				t.Fatal(err)
			}
			if merged == nil {
				merged = part
			} else if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		return merged
	}
	whole := fold(len(keys))
	for _, chunk := range []int{1, 3, 7, 33, 99} {
		got := fold(chunk)
		if got.Len() != whole.Len() {
			t.Fatalf("chunk %d: %d groups, want %d", chunk, got.Len(), whole.Len())
		}
		for gi := 0; gi < whole.Len(); gi++ {
			wk, gk := whole.Key(gi, 0), got.Key(gi, 0)
			if (wk == nil) != (gk == nil) || (wk != nil && wk.String() != gk.String()) {
				t.Fatalf("chunk %d: group %d key = %v, want %v", chunk, gi, gk, wk)
			}
			for j := range kinds {
				w, err := whole.Agg(gi, j)
				if err != nil {
					t.Fatal(err)
				}
				g, err := got.Agg(gi, j)
				if err != nil {
					t.Fatal(err)
				}
				if (w == nil) != (g == nil) || (w != nil && w.String() != g.String()) {
					t.Fatalf("chunk %d: group %d agg %d = %v, want %v", chunk, gi, j, g, w)
				}
			}
		}
	}
}

// TestGroupsMergeKeepsFirstSeenExtremum pins min/max tie-breaking across a
// merge: when partials hold compare-equal extrema of different types (Int 5
// vs Double 5.0), the earlier partial's first-seen value survives, exactly
// as the continuous left-to-right fold keeps the first of equals.
func TestGroupsMergeKeepsFirstSeenExtremum(t *testing.T) {
	kinds := []AggKind{AggMin, AggMax}
	key := ConstCol(item.Str("k"))
	a := NewGroups(1, kinds)
	av := colOf(item.Int(5))
	if err := a.Update([]*Col{key}, []*Col{av, av}, 1); err != nil {
		t.Fatal(err)
	}
	b := NewGroups(1, kinds)
	bv := colOf(item.Double(5))
	if err := b.Update([]*Col{key}, []*Col{bv, bv}, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for j := range kinds {
		res, err := a.Agg(0, j)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind() != item.KindInteger {
			t.Fatalf("agg %d kept %s (%v), want the first-seen integer", j, res.Kind(), res)
		}
	}
}

// TestGroupsMergeGrand pins the grand-aggregate helpers: EnsureGrand
// materializes the single implicit group of an empty fold, and merging
// keyless partials combines their accumulators.
func TestGroupsMergeGrand(t *testing.T) {
	kinds := []AggKind{AggCount, AggSum}
	empty := NewGroups(0, kinds)
	empty.EnsureGrand()
	if empty.Len() != 1 {
		t.Fatalf("EnsureGrand: %d groups, want 1", empty.Len())
	}
	if res, err := empty.Agg(0, 0); err != nil || res.String() != "0" {
		t.Fatalf("empty grand count = %v, %v", res, err)
	}
	if res, err := empty.Agg(0, 1); err != nil || res.String() != "0" {
		t.Fatalf("empty grand sum = %v, %v", res, err)
	}
	part := NewGroups(0, kinds)
	v := colOf(item.Int(2), item.Int(3))
	if err := part.Update(nil, []*Col{v, v}, 2); err != nil {
		t.Fatal(err)
	}
	if err := empty.Merge(part); err != nil {
		t.Fatal(err)
	}
	if res, _ := empty.Agg(0, 0); res.String() != "2" {
		t.Fatalf("merged grand count = %v, want 2", res)
	}
	if res, _ := empty.Agg(0, 1); res.String() != "5" {
		t.Fatalf("merged grand sum = %v, want 5", res)
	}
}

func TestCompactAndConst(t *testing.T) {
	c := colOf(item.Int(1), item.Int(2), item.Int(3))
	out := c.Compact([]bool{true, false, true}, 2)
	if out.Len() != 2 || out.Ints[0] != 1 || out.Ints[1] != 3 {
		t.Fatalf("compact = %v", out.Ints)
	}
	k := ConstCol(item.Str("x"))
	if got := k.Compact([]bool{false}, 0); got != k {
		t.Fatal("const columns must pass through compaction")
	}
	if k.Item(5).String() != "x" {
		t.Fatal("const column must broadcast to any row")
	}
}

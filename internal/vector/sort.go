package vector

import (
	"container/heap"
	"fmt"
	"sort"

	"rumble/internal/item"
)

// SortSpec is one order-by key direction. Empty-sequence placement is baked
// into the key encoding (OrderKey), so the spec only carries the direction.
type SortSpec struct {
	Descending bool
}

// OrderKey encodes row i as an order-by key with the tuple backend's
// semantics: the empty sequence sorts least (or greatest under "empty
// greatest"), and non-atomic rows error with the tuple order-by wording.
func (c *Col) OrderKey(i int, emptyGreatest bool) (item.SortKey, error) {
	j := c.idx(i)
	switch c.Tags[j] {
	case TagAbsent:
		if emptyGreatest {
			return item.SortKey{Tag: item.TagEmptyGreatest}, nil
		}
		return item.SortKey{Tag: item.TagEmptyLeast}, nil
	case TagNull:
		return item.SortKey{Tag: item.TagNull}, nil
	case TagFalse:
		return item.SortKey{Tag: item.TagFalse}, nil
	case TagTrue:
		return item.SortKey{Tag: item.TagTrue}, nil
	case TagInt:
		return item.IntKey(c.Ints[j]), nil
	case TagDouble:
		return item.NumberKey(c.Nums[j]), nil
	case TagString:
		return item.SortKey{Tag: item.TagString, Str: c.str(j)}, nil
	default:
		it := c.Items[j]
		if !item.IsAtomic(it) {
			// The tuple order-by's pre-encoding wording.
			return item.SortKey{}, fmt.Errorf("key is a non-atomic %s item", it.Kind())
		}
		return item.EncodeSortKey([]item.Item{it}, emptyGreatest)
	}
}

// Absent reports whether row i is the empty sequence.
func (c *Col) Absent(i int) bool { return c.Tags[c.idx(i)] == TagAbsent }

// sortRow is one pipeline row awaiting merge: its encoded keys (one per
// order-by spec) and the slot values needed to project it later.
type sortRow struct {
	keys []item.SortKey
	vals []item.Item
}

// SortRows is a sorted run of pipeline rows: each morsel worker sorts its
// own run stably in scan order, and the coordinator merges runs in morsel
// index order, so the merged stream is exactly the stable sort of the whole
// scan — identical at every worker count.
type SortRows struct {
	specs []SortSpec
	rows  []sortRow
}

// NewSortRows returns an empty run ordered by specs.
func NewSortRows(specs []SortSpec) *SortRows {
	return &SortRows{specs: specs}
}

// Append adds one row (keys in spec order, vals indexed by pipeline slot).
func (r *SortRows) Append(keys []item.SortKey, vals []item.Item) {
	r.rows = append(r.rows, sortRow{keys: keys, vals: vals})
}

// Len returns the number of rows in the run.
func (r *SortRows) Len() int { return len(r.rows) }

// AppendTopK inserts one row into a run kept sorted and bounded at k rows —
// the fused top-k morsel path. Insertion is stable (a row ties after the
// equal rows already present, preserving scan order), so the bounded run is
// exactly the first k rows of Append-all + Sort + Truncate(k). vals is only
// called when the row survives, so the tail of the scan is never
// materialized; the common case once the run saturates is a single
// comparison against the current k-th row.
func (r *SortRows) AppendTopK(keys []item.SortKey, k int, vals func() []item.Item) {
	if len(r.rows) >= k && compareKeys(r.specs, keys, r.rows[k-1].keys) >= 0 {
		return
	}
	lo, hi := 0, len(r.rows)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareKeys(r.specs, r.rows[mid].keys, keys) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.rows = append(r.rows, sortRow{})
	copy(r.rows[lo+1:], r.rows[lo:])
	r.rows[lo] = sortRow{keys: keys, vals: vals()}
	if len(r.rows) > k {
		r.rows = r.rows[:k]
	}
}

// compareKeys orders two key tuples under specs: per spec a three-way
// SortKey comparison, with descending specs flipped — the same comparator
// the tuple backend's sort.SliceStable uses.
func compareKeys(specs []SortSpec, a, b []item.SortKey) int {
	for s := range specs {
		c := a[s].Compare(b[s])
		if c == 0 {
			continue
		}
		if specs[s].Descending {
			return -c
		}
		return c
	}
	return 0
}

// Sort stably sorts the run; equal keys keep their append (scan) order.
func (r *SortRows) Sort() {
	sort.SliceStable(r.rows, func(i, j int) bool {
		return compareKeys(r.specs, r.rows[i].keys, r.rows[j].keys) < 0
	})
}

// Truncate keeps only the first k rows of the run.
func (r *SortRows) Truncate(k int) {
	if k < len(r.rows) {
		r.rows = r.rows[:k]
	}
}

// MergeTopK merges a later sorted run into the accumulated top-k, keeping
// at most k rows. acc wins ties: its rows come from earlier morsels, so the
// bounded result is exactly the first k rows of the full stable sort.
func MergeTopK(acc, run *SortRows, k int) *SortRows {
	out := NewSortRows(acc.specs)
	out.rows = make([]sortRow, 0, k)
	i, j := 0, 0
	for len(out.rows) < k && (i < len(acc.rows) || j < len(run.rows)) {
		switch {
		case j >= len(run.rows):
			out.rows = append(out.rows, acc.rows[i])
			i++
		case i >= len(acc.rows):
			out.rows = append(out.rows, run.rows[j])
			j++
		case compareKeys(acc.specs, acc.rows[i].keys, run.rows[j].keys) <= 0:
			out.rows = append(out.rows, acc.rows[i])
			i++
		default:
			out.rows = append(out.rows, run.rows[j])
			j++
		}
	}
	return out
}

// mergeHeap is the k-way merge frontier: one cursor per non-empty run,
// ordered by (keys, run index) so equal keys drain lower-indexed (earlier
// morsel) runs first — the stable-sort tie rule.
type mergeHeap struct {
	specs []SortSpec
	runs  []*SortRows
	heads []mergeCursor
}

type mergeCursor struct {
	run int
	pos int
}

func (h *mergeHeap) Len() int { return len(h.heads) }

func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.heads[i], h.heads[j]
	c := compareKeys(h.specs, h.runs[a.run].rows[a.pos].keys, h.runs[b.run].rows[b.pos].keys)
	if c != 0 {
		return c < 0
	}
	return a.run < b.run
}

func (h *mergeHeap) Swap(i, j int) { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }

func (h *mergeHeap) Push(x any) { h.heads = append(h.heads, x.(mergeCursor)) }

func (h *mergeHeap) Pop() any {
	old := h.heads
	n := len(old)
	x := old[n-1]
	h.heads = old[:n-1]
	return x
}

// MergeRuns k-way-merges sorted runs (indexed in morsel order) and calls
// emit once per row with its slot values, in globally sorted order.
func MergeRuns(runs []*SortRows, emit func(vals []item.Item) error) error {
	var specs []SortSpec
	for _, r := range runs {
		if r != nil {
			specs = r.specs
			break
		}
	}
	h := &mergeHeap{specs: specs, runs: runs}
	for ri, r := range runs {
		if r != nil && len(r.rows) > 0 {
			h.heads = append(h.heads, mergeCursor{run: ri})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		cur := h.heads[0]
		if err := emit(h.runs[cur.run].rows[cur.pos].vals); err != nil {
			return err
		}
		if cur.pos+1 < len(h.runs[cur.run].rows) {
			h.heads[0].pos++
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return nil
}

package spark

import (
	"fmt"
	"testing"

	"rumble/internal/item"
)

func seq(items ...item.Item) []item.Item { return items }

func makeDF(t *testing.T, ctx *Context, n int) *DataFrame {
	t.Helper()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{seq(item.Int(int64(i))), seq(item.Str(fmt.Sprintf("name%d", i%3)))}
	}
	schema := Schema{Cols: []Column{{Name: "x", Type: ColSeq}, {Name: "name", Type: ColSeq}}}
	return NewDataFrame(schema, Parallelize(ctx, rows, 4))
}

func TestWithColumnExtendedProjection(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 10)
	df2 := df.WithColumn("double", ColSeq, func(r Row) (any, error) {
		x := r.Seq(0)[0].(item.Int)
		return seq(item.Int(int64(x) * 2)), nil
	})
	rows, err := df2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	if df2.Schema().IndexOf("double") != 2 {
		t.Error("new column not appended")
	}
	for _, r := range rows {
		x := int64(r.Seq(0)[0].(item.Int))
		d := int64(r.Seq(2)[0].(item.Int))
		if d != 2*x {
			t.Fatalf("row %d: double = %d", x, d)
		}
	}
}

func TestWithColumnUDFErrorPropagates(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 10)
	df2 := df.WithColumn("bad", ColSeq, func(r Row) (any, error) {
		return nil, fmt.Errorf("udf failure")
	})
	if _, err := df2.Collect(); err == nil {
		t.Fatal("expected udf error")
	}
}

func TestExplodeColumn(t *testing.T) {
	ctx := testCtx()
	rows := []Row{
		{seq(item.Int(1))},
		{seq(item.Int(2))},
	}
	df := NewDataFrame(Schema{Cols: []Column{{Name: "a", Type: ColSeq}}}, Parallelize(ctx, rows, 2))
	// for $d in 1 to $a  — each row explodes into $a rows.
	df2 := df.ExplodeColumn("d", func(r Row) ([]item.Item, error) {
		n := int64(r.Seq(0)[0].(item.Int))
		var out []item.Item
		for i := int64(1); i <= n; i++ {
			out = append(out, item.Int(i))
		}
		return out, nil
	}, false)
	got, err := df2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // 1 + 2
		t.Fatalf("exploded to %d rows, want 3", len(got))
	}
}

func TestExplodeEmptySequence(t *testing.T) {
	ctx := testCtx()
	rows := []Row{{seq(item.Int(1))}, {seq(item.Int(2))}}
	df := NewDataFrame(Schema{Cols: []Column{{Name: "a", Type: ColSeq}}}, Parallelize(ctx, rows, 1))
	empty := func(r Row) ([]item.Item, error) { return nil, nil }
	dropped, err := df.ExplodeColumn("d", empty, false).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Errorf("without keepEmpty: %d rows, want 0", len(dropped))
	}
	kept, err := df.ExplodeColumn("d", empty, true).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("with keepEmpty (allowing empty): %d rows, want 2", len(kept))
	}
	if len(kept[0].Seq(1)) != 0 {
		t.Error("allowing-empty row should bind the empty sequence")
	}
}

func TestWhere(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 100)
	df2 := df.Where(func(r Row) (bool, error) {
		return int64(r.Seq(0)[0].(item.Int))%2 == 0, nil
	})
	n, err := df2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("filtered count = %d", n)
	}
}

func TestSelectProjection(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 5)
	sel, err := df.Select("name")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Schema().Cols) != 1 || sel.Schema().Cols[0].Name != "name" {
		t.Errorf("schema = %+v", sel.Schema())
	}
	if _, err := df.Select("nope"); err == nil {
		t.Error("selecting unknown column should error")
	}
}

func TestGroupByWithSequenceAndCount(t *testing.T) {
	ctx := testCtx()
	// Rows: (tag: int, payload: seq) — group by tag, materialize payloads
	// and count them.
	var rows []Row
	for i := 0; i < 90; i++ {
		rows = append(rows, Row{int64(i % 3), seq(item.Int(int64(i)))})
	}
	schema := Schema{Cols: []Column{{Name: "tag", Type: ColInt}, {Name: "p", Type: ColSeq}}}
	df := NewDataFrame(schema, Parallelize(ctx, rows, 4))
	grouped, err := df.GroupBy([]string{"tag"}, []Agg{
		{Col: "p", Kind: AggSequence, As: "all"},
		{Col: "p", Kind: AggCount, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d groups", len(got))
	}
	gotTotal := 0
	for _, r := range got {
		all := r.Seq(1)
		n := r[2].(int64)
		if int64(len(all)) != n {
			t.Fatalf("group %v: len(seq)=%d but count=%d", r[0], len(all), n)
		}
		if n != 30 {
			t.Errorf("group %v has %d members", r[0], n)
		}
		gotTotal += len(all)
	}
	if gotTotal != 90 {
		t.Errorf("groups cover %d rows", gotTotal)
	}
}

func TestGroupByHeterogeneousTypedKeys(t *testing.T) {
	// The paper's §4.7 example: keys "foo", 1, 1, "foo", true group into 3
	// groups without error, via the (tag, str, num) encoding.
	ctx := testCtx()
	keys := []item.Item{item.Str("foo"), item.Int(1), item.Int(1), item.Str("foo"), item.Bool(true)}
	var rows []Row
	for _, k := range keys {
		sk, err := item.EncodeSortKey(seq(k), false)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, Row{int64(sk.Tag), sk.Str, sk.Num, seq(k)})
	}
	schema := Schema{Cols: []Column{
		{Name: "k1", Type: ColInt}, {Name: "k2", Type: ColString}, {Name: "k3", Type: ColDouble},
		{Name: "i", Type: ColSeq},
	}}
	df := NewDataFrame(schema, Parallelize(ctx, rows, 2))
	grouped, err := df.GroupBy([]string{"k1", "k2", "k3"}, []Agg{{Col: "i", Kind: AggCount, As: "count"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d groups, want 3 (foo, 1, true)", len(got))
	}
	counts := map[int64]int{}
	for _, r := range got {
		counts[r[3].(int64)]++
	}
	if counts[2] != 2 || counts[1] != 1 {
		t.Errorf("group sizes wrong: %v", counts)
	}
}

func TestGroupByErrors(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 4)
	if _, err := df.GroupBy([]string{"missing"}, nil); err == nil {
		t.Error("unknown key column should error")
	}
	if _, err := df.GroupBy([]string{"x"}, nil); err == nil {
		t.Error("grouping on a sequence column should error")
	}
}

func TestOrderByNativeColumns(t *testing.T) {
	ctx := testCtx()
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64((i * 37) % 100), fmt.Sprintf("s%02d", i%7)})
	}
	schema := Schema{Cols: []Column{{Name: "n", Type: ColInt}, {Name: "s", Type: ColString}}}
	df := NewDataFrame(schema, Parallelize(ctx, rows, 5))
	sorted, err := df.OrderBy([]SortSpec{{Col: "s"}, {Col: "n", Descending: true}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		sa, sb := a[1].(string), b[1].(string)
		if sa > sb {
			t.Fatalf("row %d out of order on s", i)
		}
		if sa == sb && a[0].(int64) < b[0].(int64) {
			t.Fatalf("row %d out of order on n desc", i)
		}
	}
	if _, err := df.OrderBy([]SortSpec{{Col: "zzz"}}); err == nil {
		t.Error("unknown sort column should error")
	}
}

func TestZipWithIndexColumn(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 50)
	z := df.ZipWithIndex("pos")
	rows, err := z.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[2].(int64) != int64(i) {
			t.Fatalf("row %d has pos %v", i, r[2])
		}
	}
	if z.Schema().Cols[2].Type != ColInt {
		t.Error("pos column should be int-typed")
	}
}

func TestWithColumnsMultiple(t *testing.T) {
	ctx := testCtx()
	df := makeDF(t, ctx, 4)
	cols := []Column{{Name: "t", Type: ColInt}, {Name: "sv", Type: ColString}}
	df2 := df.WithColumns(cols, func(r Row) ([]any, error) {
		return []any{int64(5), "v"}, nil
	})
	rows, err := df2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][2].(int64) != 5 || rows[0][3].(string) != "v" {
		t.Errorf("row = %v", rows[0])
	}
	bad := df.WithColumns(cols, func(r Row) ([]any, error) { return []any{int64(1)}, nil })
	if _, err := bad.Collect(); err == nil {
		t.Error("arity mismatch should error")
	}
}

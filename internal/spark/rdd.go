package spark

import (
	"fmt"
	"sync"
	"time"
)

// RDD is a lazy, partitioned dataset of T values. A transformation returns
// a new RDD whose partitions pipeline over the parent's without
// materializing intermediate results; an action (Collect, Count, ...) runs
// the pipeline on the executor pool.
//
// Compute functions are push-based: computing partition p calls yield once
// per element. A non-nil error from yield aborts the partition (used by
// Take to stop early).
type RDD[T any] struct {
	ctx     *Context
	parts   int
	name    string
	compute func(p int, yield func(T) error) error
}

// errStopEarly signals deliberate early termination of a partition scan.
var errStopEarly = fmt.Errorf("spark: stop early")

// NewRDD constructs an RDD from a raw compute function. Library code and
// input sources use it; query-level code should prefer the transformations.
func NewRDD[T any](ctx *Context, parts int, name string, compute func(p int, yield func(T) error) error) *RDD[T] {
	if parts < 0 {
		parts = 0
	}
	return &RDD[T]{ctx: ctx, parts: parts, name: name, compute: compute}
}

// Context returns the owning context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// Name returns the debug name of the RDD.
func (r *RDD[T]) Name() string { return r.name }

// Parallelize distributes data over parts partitions (parts <= 0 uses the
// context default). It mirrors Spark's parallelize and backs the JSONiq
// parallelize() function.
func Parallelize[T any](ctx *Context, data []T, parts int) *RDD[T] {
	if parts <= 0 {
		parts = ctx.conf.Parallelism
	}
	if parts > len(data) && len(data) > 0 {
		parts = len(data)
	}
	if len(data) == 0 {
		parts = 1
	}
	n := len(data)
	return NewRDD(ctx, parts, "parallelize", func(p int, yield func(T) error) error {
		lo, hi := sliceRange(n, parts, p)
		//rumble:ctxpoll-ok source scan over an in-memory slice; engine pipelines wrap the sink in WithCancel, whose yield error aborts this loop
		for _, v := range data[lo:hi] {
			if err := yield(v); err != nil {
				return err
			}
		}
		return nil
	})
}

// sliceRange splits n elements into parts contiguous ranges and returns the
// bounds of range p.
func sliceRange(n, parts, p int) (lo, hi int) {
	q, rem := n/parts, n%parts
	lo = p*q + min(p, rem)
	hi = lo + q
	if p < rem {
		hi++
	}
	return lo, hi
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return NewRDD(r.ctx, r.parts, "map("+r.name+")", func(p int, yield func(U) error) error {
		return r.compute(p, func(v T) error { return yield(f(v)) })
	})
}

// MapE is Map with an error-returning function; an error aborts the job.
func MapE[T, U any](r *RDD[T], f func(T) (U, error)) *RDD[U] {
	return NewRDD(r.ctx, r.parts, "map("+r.name+")", func(p int, yield func(U) error) error {
		return r.compute(p, func(v T) error {
			u, err := f(v)
			if err != nil {
				return err
			}
			return yield(u)
		})
	})
}

// Filter keeps the elements for which pred returns true.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return NewRDD(r.ctx, r.parts, "filter("+r.name+")", func(p int, yield func(T) error) error {
		return r.compute(p, func(v T) error {
			if pred(v) {
				return yield(v)
			}
			return nil
		})
	})
}

// FilterE is Filter with an error-returning predicate.
func FilterE[T any](r *RDD[T], pred func(T) (bool, error)) *RDD[T] {
	return NewRDD(r.ctx, r.parts, "filter("+r.name+")", func(p int, yield func(T) error) error {
		return r.compute(p, func(v T) error {
			ok, err := pred(v)
			if err != nil {
				return err
			}
			if ok {
				return yield(v)
			}
			return nil
		})
	})
}

// FlatMap applies f to every element and flattens the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return NewRDD(r.ctx, r.parts, "flatMap("+r.name+")", func(p int, yield func(U) error) error {
		return r.compute(p, func(v T) error {
			for _, u := range f(v) {
				if err := yield(u); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// FlatMapE is FlatMap with an error-returning function.
func FlatMapE[T, U any](r *RDD[T], f func(T) ([]U, error)) *RDD[U] {
	return NewRDD(r.ctx, r.parts, "flatMap("+r.name+")", func(p int, yield func(U) error) error {
		return r.compute(p, func(v T) error {
			us, err := f(v)
			if err != nil {
				return err
			}
			for _, u := range us {
				if err := yield(u); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// MapPartitions transforms one whole partition at a time. f receives the
// partition index and a pull function and pushes results to yield; it is
// the engine-level hook json-file uses to run a streaming parser per split.
func MapPartitions[T, U any](r *RDD[T], f func(p int, in []T, yield func(U) error) error) *RDD[U] {
	return NewRDD(r.ctx, r.parts, "mapPartitions("+r.name+")", func(p int, yield func(U) error) error {
		var buf []T
		if err := r.compute(p, func(v T) error {
			buf = append(buf, v)
			return nil
		}); err != nil {
			return err
		}
		return f(p, buf, yield)
	})
}

// Union concatenates two RDDs (partitions of a followed by partitions of b).
func Union[T any](a, b *RDD[T]) *RDD[T] {
	return NewRDD(a.ctx, a.parts+b.parts, "union", func(p int, yield func(T) error) error {
		if p < a.parts {
			return a.compute(p, yield)
		}
		return b.compute(p-a.parts, yield)
	})
}

// Coalesce reduces the partition count to parts by concatenating ranges of
// parent partitions. It does not shuffle.
func Coalesce[T any](r *RDD[T], parts int) *RDD[T] {
	if parts <= 0 || parts >= r.parts {
		return r
	}
	return NewRDD(r.ctx, parts, "coalesce("+r.name+")", func(p int, yield func(T) error) error {
		lo, hi := sliceRange(r.parts, parts, p)
		for pp := lo; pp < hi; pp++ {
			if err := r.compute(pp, yield); err != nil {
				return err
			}
		}
		return nil
	})
}

// Cache materializes the RDD on first action and serves subsequent
// computations from memory, like Spark's cache()/persist(MEMORY_ONLY).
func Cache[T any](r *RDD[T]) *RDD[T] {
	var (
		once sync.Once
		data [][]T
		err  error
	)
	materialize := func() {
		data = make([][]T, r.parts)
		err = r.ctx.runStage(r.parts, func(p int) error {
			var part []T
			e := r.compute(p, func(v T) error {
				part = append(part, v)
				return nil
			})
			data[p] = part
			return e
		})
	}
	return NewRDD(r.ctx, r.parts, "cache("+r.name+")", func(p int, yield func(T) error) error {
		once.Do(materialize)
		if err != nil {
			return err
		}
		for _, v := range data[p] {
			if e := yield(v); e != nil {
				return e
			}
		}
		return nil
	})
}

// Scan streams every element to yield on the calling goroutine, partitions
// in order, without materializing and without using the executor pool. It
// is the driver-side local iterator API over a cluster-resident dataset
// (e.g. a variable bound to an RDD consumed by a local expression).
func (r *RDD[T]) Scan(yield func(T) error) error {
	for p := 0; p < r.parts; p++ {
		if err := r.compute(p, yield); err != nil {
			return err
		}
	}
	return nil
}

// cancelCheckStride bounds how many elements flow between two cooperative
// cancellation checks inside a partition task.
const cancelCheckStride = 64

// WithCancel returns an RDD that polls check cooperatively while partition
// tasks run: once before each partition starts and every cancelCheckStride
// elements after that. A non-nil result from check aborts the job with that
// error, so a caller's deadline or cancellation propagates into running
// task loops instead of waiting for the stage to drain. A nil check returns
// r unchanged.
func WithCancel[T any](r *RDD[T], check func() error) *RDD[T] {
	if check == nil {
		return r
	}
	return NewRDD(r.ctx, r.parts, "cancellable("+r.name+")", func(p int, yield func(T) error) error {
		if err := check(); err != nil {
			return err
		}
		n := 0
		return r.compute(p, func(v T) error {
			n++
			if n%cancelCheckStride == 0 {
				if err := check(); err != nil {
					return err
				}
			}
			return yield(v)
		})
	})
}

// Observe returns an RDD that reports each partition's element count and
// task wall time to rec when the partition task finishes (successfully or
// not). rec is called from executor goroutines, so it must be safe for
// concurrent use — the profiling counters it feeds are atomics. A nil rec
// returns r unchanged, keeping the profiling-off path allocation-free.
func Observe[T any](r *RDD[T], rec func(rows int64, wall time.Duration)) *RDD[T] {
	if rec == nil {
		return r
	}
	return NewRDD(r.ctx, r.parts, "observed("+r.name+")", func(p int, yield func(T) error) error {
		start := time.Now()
		var n int64
		err := r.compute(p, func(v T) error {
			n++
			return yield(v)
		})
		rec(n, time.Since(start))
		return err
	})
}

// Collect materializes every element on the driver, partition order
// preserved. It fails with ErrResultTooLarge when MaxResultItems is set and
// exceeded.
func Collect[T any](r *RDD[T]) ([]T, error) {
	parts := make([][]T, r.parts)
	limit := r.ctx.conf.MaxResultItems
	var total int64
	var mu sync.Mutex
	err := r.ctx.runStage(r.parts, func(p int) error {
		var buf []T
		if err := r.compute(p, func(v T) error {
			buf = append(buf, v)
			return nil
		}); err != nil {
			return err
		}
		mu.Lock()
		total += int64(len(buf))
		over := limit > 0 && total > int64(limit)
		mu.Unlock()
		if over {
			return ErrResultTooLarge
		}
		parts[p] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, part := range parts {
		out = append(out, part...)
	}
	return out, nil
}

// Count returns the number of elements.
func Count[T any](r *RDD[T]) (int64, error) {
	counts := make([]int64, r.parts)
	err := r.ctx.runStage(r.parts, func(p int) error {
		var n int64
		if err := r.compute(p, func(T) error { n++; return nil }); err != nil {
			return err
		}
		counts[p] = n
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// Take returns the first n elements in partition order, scanning partitions
// sequentially and stopping early, like Spark's take().
func Take[T any](r *RDD[T], n int) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, 0, n)
	for p := 0; p < r.parts && len(out) < n; p++ {
		err := r.ctx.runTask(p, func(p int) error {
			return r.compute(p, func(v T) error {
				out = append(out, v)
				if len(out) >= n {
					return errStopEarly
				}
				return nil
			})
		})
		if err != nil && err != errStopEarly {
			return nil, err
		}
	}
	return out, nil
}

// Reduce combines all elements with f. It returns ok=false on an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (zero T, ok bool, err error) {
	partials := make([]*T, r.parts)
	err = r.ctx.runStage(r.parts, func(p int) error {
		var acc *T
		if e := r.compute(p, func(v T) error {
			if acc == nil {
				vv := v
				acc = &vv
			} else {
				*acc = f(*acc, v)
			}
			return nil
		}); e != nil {
			return e
		}
		partials[p] = acc
		return nil
	})
	if err != nil {
		return zero, false, err
	}
	var acc *T
	for _, pv := range partials {
		if pv == nil {
			continue
		}
		if acc == nil {
			acc = pv
		} else {
			*acc = f(*acc, *pv)
		}
	}
	if acc == nil {
		return zero, false, nil
	}
	return *acc, true, nil
}

// Foreach runs f on every element for its side effects.
func Foreach[T any](r *RDD[T], f func(T) error) error {
	return r.ctx.runStage(r.parts, func(p int) error {
		return r.compute(p, f)
	})
}

// ForeachPartition streams every partition through f for its side effects;
// f is called once per element with the partition index.
func ForeachPartition[T any](r *RDD[T], f func(p int, v T) error) error {
	return r.ctx.runStage(r.parts, func(p int) error {
		return r.compute(p, func(v T) error { return f(p, v) })
	})
}

// Sink receives one partition's elements during ForeachPartitionSink.
type Sink[T any] struct {
	Write func(T) error
	Close func() error
}

// ForeachPartitionSink opens one sink per partition (on the executor), and
// streams the partition's elements into it — the saveAsTextFile pattern:
// output flows straight from the pipeline to storage without driver-side
// materialization.
func ForeachPartitionSink[T any](r *RDD[T], open func(p int) (Sink[T], error)) error {
	return r.ctx.runStage(r.parts, func(p int) error {
		sink, err := open(p)
		if err != nil {
			return err
		}
		if err := r.compute(p, sink.Write); err != nil {
			sink.Close()
			return err
		}
		return sink.Close()
	})
}

package spark

import (
	"fmt"
	"strconv"

	"rumble/internal/item"
)

// ColType is the static type of a DataFrame column.
type ColType int

// Column types. ColSeq carries a JSONiq sequence of items — the paper's
// "List of Items" column type used for FLWOR variables. The native types
// back the three-column key encoding of §4.7/§4.8 and the count clause.
const (
	ColSeq    ColType = iota // []item.Item
	ColInt                   // int64
	ColString                // string
	ColDouble                // float64
)

// String returns the type name.
func (t ColType) String() string {
	switch t {
	case ColSeq:
		return "seq"
	case ColInt:
		return "int"
	case ColString:
		return "string"
	case ColDouble:
		return "double"
	default:
		return fmt.Sprintf("coltype(%d)", int(t))
	}
}

// Column is a named, typed DataFrame column.
type Column struct {
	Name string
	Type ColType
}

// Schema is the ordered column list of a DataFrame.
type Schema struct {
	Cols []Column
}

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row is one DataFrame record; cell i holds a value of the schema's column
// type i ([]item.Item, int64, string or float64).
type Row []any

// Seq returns cell i as a sequence.
func (r Row) Seq(i int) []item.Item {
	if r[i] == nil {
		return nil
	}
	return r[i].([]item.Item)
}

// DataFrame is a typed, partitioned table built on an RDD of rows. It
// stands in for Spark SQL: extended projections with UDFs, EXPLODE,
// selections, hash aggregation, total-order sort and zip-with-index.
type DataFrame struct {
	schema Schema
	rows   *RDD[Row]
}

// NewDataFrame wraps an RDD of rows with a schema.
func NewDataFrame(schema Schema, rows *RDD[Row]) *DataFrame {
	return &DataFrame{schema: schema, rows: rows}
}

// Schema returns the schema.
func (df *DataFrame) Schema() Schema { return df.schema }

// RDD returns the underlying row RDD.
func (df *DataFrame) RDD() *RDD[Row] { return df.rows }

// Context returns the owning context.
func (df *DataFrame) Context() *Context { return df.rows.ctx }

// WithColumn appends a column computed by udf from each input row — the
// extended projection used to evaluate let-clause expressions
// (SELECT a, b, EVALUATE_EXPRESSION(a, b) AS c).
func (df *DataFrame) WithColumn(name string, t ColType, udf func(Row) (any, error)) *DataFrame {
	schema := Schema{Cols: append(append([]Column{}, df.schema.Cols...), Column{Name: name, Type: t})}
	rows := MapE(df.rows, func(r Row) (Row, error) {
		v, err := udf(r)
		if err != nil {
			return nil, err
		}
		out := make(Row, len(r)+1)
		copy(out, r)
		out[len(r)] = v
		return out, nil
	})
	return NewDataFrame(schema, rows)
}

// WithColumns appends several columns computed together by udf, which must
// return one value per added column.
func (df *DataFrame) WithColumns(cols []Column, udf func(Row) ([]any, error)) *DataFrame {
	schema := Schema{Cols: append(append([]Column{}, df.schema.Cols...), cols...)}
	rows := MapE(df.rows, func(r Row) (Row, error) {
		vs, err := udf(r)
		if err != nil {
			return nil, err
		}
		if len(vs) != len(cols) {
			return nil, fmt.Errorf("dataframe: udf returned %d values for %d columns", len(vs), len(cols))
		}
		out := make(Row, len(r), len(r)+len(cols))
		copy(out, r)
		return append(out, vs...), nil
	})
	return NewDataFrame(schema, rows)
}

// ExplodeColumn computes a sequence with udf for each row and emits one
// output row per item in it, appending the item as a singleton sequence in
// a new column: SELECT *, EXPLODE(EVALUATE_EXPRESSION(...)) AS name — the
// for-clause mapping of §4.4. When keepEmpty is true, rows whose sequence
// is empty survive with an empty-sequence cell ("allowing empty").
func (df *DataFrame) ExplodeColumn(name string, udf func(Row) ([]item.Item, error), keepEmpty bool) *DataFrame {
	schema := Schema{Cols: append(append([]Column{}, df.schema.Cols...), Column{Name: name, Type: ColSeq})}
	rows := FlatMapE(df.rows, func(r Row) ([]Row, error) {
		seq, err := udf(r)
		if err != nil {
			return nil, err
		}
		if len(seq) == 0 {
			if !keepEmpty {
				return nil, nil
			}
			out := make(Row, len(r)+1)
			copy(out, r)
			out[len(r)] = []item.Item(nil)
			return []Row{out}, nil
		}
		outs := make([]Row, 0, len(seq))
		for _, it := range seq {
			out := make(Row, len(r)+1)
			copy(out, r)
			out[len(r)] = []item.Item{it}
			outs = append(outs, out)
		}
		return outs, nil
	})
	return NewDataFrame(schema, rows)
}

// ExplodeWithPosition is ExplodeColumn plus a second sequence column
// holding the 1-based position of each exploded item within its source
// row's sequence — the "for ... at $i" positional binding. Allowing-empty
// rows bind position 0.
func (df *DataFrame) ExplodeWithPosition(name, posName string, udf func(Row) ([]item.Item, error), keepEmpty bool) *DataFrame {
	schema := Schema{Cols: append(append([]Column{}, df.schema.Cols...),
		Column{Name: name, Type: ColSeq}, Column{Name: posName, Type: ColSeq})}
	rows := FlatMapE(df.rows, func(r Row) ([]Row, error) {
		seq, err := udf(r)
		if err != nil {
			return nil, err
		}
		if len(seq) == 0 {
			if !keepEmpty {
				return nil, nil
			}
			out := make(Row, len(r)+2)
			copy(out, r)
			out[len(r)] = []item.Item(nil)
			out[len(r)+1] = []item.Item{item.Int(0)}
			return []Row{out}, nil
		}
		outs := make([]Row, 0, len(seq))
		for i, it := range seq {
			out := make(Row, len(r)+2)
			copy(out, r)
			out[len(r)] = []item.Item{it}
			out[len(r)+1] = []item.Item{item.Int(int64(i + 1))}
			outs = append(outs, out)
		}
		return outs, nil
	})
	return NewDataFrame(schema, rows)
}

// Where keeps the rows for which pred is true — the where-clause selection
// of §4.6.
func (df *DataFrame) Where(pred func(Row) (bool, error)) *DataFrame {
	return NewDataFrame(df.schema, FilterE(df.rows, pred))
}

// Select projects the DataFrame onto the named columns, in order.
func (df *DataFrame) Select(names ...string) (*DataFrame, error) {
	idx := make([]int, len(names))
	cols := make([]Column, len(names))
	for i, n := range names {
		j := df.schema.IndexOf(n)
		if j < 0 {
			return nil, fmt.Errorf("dataframe: unknown column %q", n)
		}
		idx[i] = j
		cols[i] = df.schema.Cols[j]
	}
	rows := Map(df.rows, func(r Row) Row {
		out := make(Row, len(idx))
		for i, j := range idx {
			out[i] = r[j]
		}
		return out
	})
	return NewDataFrame(Schema{Cols: cols}, rows), nil
}

// SortSpec describes one ORDER BY key over native columns.
type SortSpec struct {
	Col        string
	Descending bool
}

// OrderBy globally sorts the DataFrame by the given native-typed columns —
// the order-by mapping of §4.8 (the caller encodes JSONiq keys into native
// tag/string/double columns first).
func (df *DataFrame) OrderBy(specs []SortSpec) (*DataFrame, error) {
	type colRef struct {
		idx  int
		typ  ColType
		desc bool
	}
	refs := make([]colRef, len(specs))
	for i, s := range specs {
		j := df.schema.IndexOf(s.Col)
		if j < 0 {
			return nil, fmt.Errorf("dataframe: unknown sort column %q", s.Col)
		}
		if df.schema.Cols[j].Type == ColSeq {
			return nil, fmt.Errorf("dataframe: cannot sort on sequence column %q", s.Col)
		}
		refs[i] = colRef{idx: j, typ: df.schema.Cols[j].Type, desc: s.Descending}
	}
	less := func(a, b Row) bool {
		for _, ref := range refs {
			c := compareNative(ref.typ, a[ref.idx], b[ref.idx])
			if c == 0 {
				continue
			}
			if ref.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	return NewDataFrame(df.schema, SortBy(df.rows, less)), nil
}

func compareNative(t ColType, a, b any) int {
	switch t {
	case ColInt:
		x, y := a.(int64), b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case ColString:
		x, y := a.(string), b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case ColDouble:
		x, y := a.(float64), b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	}
	return 0
}

// AggKind selects what GroupBy computes for a non-grouping column.
type AggKind int

// Aggregations over non-grouping columns: SEQUENCE concatenates all
// sequences (the default group-by materialization), COUNT counts items
// without materializing (the paper's count-detection optimization), FIRST
// keeps the first row's value (used to recover grouping keys), and DROP
// discards the column (the paper's unused-variable optimization).
const (
	AggSequence AggKind = iota
	AggCount
	AggFirst
	AggDrop
	// AggSumInt sums a native int column — the physical form of COUNT()
	// pushdown: the map side pre-reduces each row's contribution to one
	// integer so the shuffle ships no payload data.
	AggSumInt
)

// Agg describes one aggregation in a GroupBy.
type Agg struct {
	Col  string
	Kind AggKind
	As   string // output column name; defaults to Col
}

// GroupBy hash-groups rows by the named native-typed key columns and
// applies the aggregations — the group-by mapping of §4.7. The key columns
// are preserved in the output; aggregated columns follow in Agg order.
func (df *DataFrame) GroupBy(keyCols []string, aggs []Agg) (*DataFrame, error) {
	keyIdx := make([]int, len(keyCols))
	keyTypes := make([]ColType, len(keyCols))
	for i, n := range keyCols {
		j := df.schema.IndexOf(n)
		if j < 0 {
			return nil, fmt.Errorf("dataframe: unknown group column %q", n)
		}
		if df.schema.Cols[j].Type == ColSeq {
			return nil, fmt.Errorf("dataframe: cannot group on sequence column %q", n)
		}
		keyIdx[i] = j
		keyTypes[i] = df.schema.Cols[j].Type
	}
	type aggRef struct {
		idx  int
		kind AggKind
	}
	outCols := make([]Column, 0, len(keyCols)+len(aggs))
	for i, n := range keyCols {
		outCols = append(outCols, Column{Name: n, Type: keyTypes[i]})
	}
	refs := make([]aggRef, 0, len(aggs))
	for _, a := range aggs {
		if a.Kind == AggDrop {
			continue
		}
		j := df.schema.IndexOf(a.Col)
		if j < 0 {
			return nil, fmt.Errorf("dataframe: unknown aggregation column %q", a.Col)
		}
		name := a.As
		if name == "" {
			name = a.Col
		}
		t := df.schema.Cols[j].Type
		if a.Kind == AggCount || a.Kind == AggSumInt {
			t = ColInt
		}
		outCols = append(outCols, Column{Name: name, Type: t})
		refs = append(refs, aggRef{idx: j, kind: a.Kind})
	}
	encodeKey := func(r Row) string {
		var buf []byte
		for i, j := range keyIdx {
			switch keyTypes[i] {
			case ColInt:
				buf = strconv.AppendInt(buf, r[j].(int64), 10)
			case ColString:
				buf = strconv.AppendQuote(buf, r[j].(string))
			case ColDouble:
				buf = strconv.AppendFloat(buf, r[j].(float64), 'g', -1, 64)
			}
			buf = append(buf, 0x1f)
		}
		return string(buf)
	}
	pairs := Map(df.rows, func(r Row) Pair[string, Row] {
		return Pair[string, Row]{Key: encodeKey(r), Value: r}
	})
	grouped := GroupByKey(pairs)
	outRows := MapE(grouped, func(kv Pair[string, []Row]) (Row, error) {
		group := kv.Value
		out := make(Row, 0, len(keyIdx)+len(refs))
		for _, j := range keyIdx {
			out = append(out, group[0][j])
		}
		for _, ref := range refs {
			switch ref.kind {
			case AggFirst:
				out = append(out, group[0][ref.idx])
			case AggCount:
				var n int64
				for _, r := range group {
					n += int64(len(r.Seq(ref.idx)))
				}
				out = append(out, n)
			case AggSumInt:
				var n int64
				for _, r := range group {
					n += r[ref.idx].(int64)
				}
				out = append(out, n)
			case AggSequence:
				var all []item.Item
				for _, r := range group {
					all = append(all, r.Seq(ref.idx)...)
				}
				out = append(out, all)
			}
		}
		return out, nil
	})
	return NewDataFrame(Schema{Cols: outCols}, outRows), nil
}

// ZipWithIndex appends an int column holding each row's global 0-based
// position — the count-clause mapping of §4.9.
func (df *DataFrame) ZipWithIndex(name string) *DataFrame {
	schema := Schema{Cols: append(append([]Column{}, df.schema.Cols...), Column{Name: name, Type: ColInt})}
	zipped := ZipWithIndex(df.rows)
	rows := Map(zipped, func(kv Pair[int64, Row]) Row {
		out := make(Row, len(kv.Value)+1)
		copy(out, kv.Value)
		out[len(kv.Value)] = kv.Key
		return out
	})
	return NewDataFrame(schema, rows)
}

// Collect materializes all rows on the driver.
func (df *DataFrame) Collect() ([]Row, error) { return Collect(df.rows) }

// Count returns the number of rows.
func (df *DataFrame) Count() (int64, error) { return Count(df.rows) }

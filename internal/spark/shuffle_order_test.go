package spark

import (
	"fmt"
	"testing"
)

// The shuffle reducers used to emit by ranging over their accumulation
// maps, so ReduceByKey and GroupByKey output order changed run to run with
// Go's randomized map iteration. They now replay first-seen key order;
// these tests pin that by collecting each RDD many times across fresh
// contexts and demanding bit-identical order every time. With 64 keys per
// partition, map-order iteration would shuffle the emit with overwhelming
// probability on every build.

func shuffleInput(ctx *Context) *RDD[Pair[string, int]] {
	var data []int
	for i := 0; i < 512; i++ {
		data = append(data, i)
	}
	r := Parallelize(ctx, data, 4)
	return MapToPair(r, func(v int) (string, int) { return fmt.Sprintf("k%03d", v%64), v })
}

func collectOrder[V any](t *testing.T, r *RDD[Pair[string, V]]) []string {
	t.Helper()
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(got))
	for i, kv := range got {
		keys[i] = kv.Key
	}
	return keys
}

func TestReduceByKeyDeterministicOrder(t *testing.T) {
	base := collectOrder(t, ReduceByKey(shuffleInput(testCtx()), func(a, b int) int { return a + b }))
	if len(base) != 64 {
		t.Fatalf("got %d keys, want 64", len(base))
	}
	for run := 0; run < 10; run++ {
		again := collectOrder(t, ReduceByKey(shuffleInput(testCtx()), func(a, b int) int { return a + b }))
		for i := range base {
			if again[i] != base[i] {
				t.Fatalf("run %d: key order diverged at %d: %s vs %s", run, i, again[i], base[i])
			}
		}
	}
}

func TestGroupByKeyDeterministicOrder(t *testing.T) {
	base := collectOrder(t, GroupByKey(shuffleInput(testCtx())))
	if len(base) != 64 {
		t.Fatalf("got %d keys, want 64", len(base))
	}
	for run := 0; run < 10; run++ {
		again := collectOrder(t, GroupByKey(shuffleInput(testCtx())))
		for i := range base {
			if again[i] != base[i] {
				t.Fatalf("run %d: key order diverged at %d: %s vs %s", run, i, again[i], base[i])
			}
		}
	}
}

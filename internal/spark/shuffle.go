package spark

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Pair is a key-value record for the pair-RDD operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// MapToPair turns an RDD into a pair RDD, mirroring Spark's mapToPair.
func MapToPair[T any, K comparable, V any](r *RDD[T], f func(T) (K, V)) *RDD[Pair[K, V]] {
	return Map(r, func(v T) Pair[K, V] {
		k, val := f(v)
		return Pair[K, V]{Key: k, Value: val}
	})
}

// hashKey hashes an arbitrary comparable key through its string formatting
// when it is not one of the fast-path types.
func hashKey[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case string:
		h := fnv.New64a()
		h.Write([]byte(v))
		return h.Sum64()
	case int:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", v)
		return h.Sum64()
	}
}

// mix64 is a finalizer-style bit mixer so that consecutive integer keys
// spread over partitions.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// shuffleExchange materializes the parent pair RDD once, bucketing records
// by hash of key into numOut buckets. Concurrent consumers share one
// exchange via sync.Once, matching Spark's write-once shuffle files.
type shuffleExchange[K comparable, V any] struct {
	once    sync.Once
	err     error
	buckets [][]Pair[K, V]
}

func (ex *shuffleExchange[K, V]) runOnce(r *RDD[Pair[K, V]], numOut int) {
	ex.once.Do(func() {
		perPart := make([][][]Pair[K, V], r.parts)
		err := r.ctx.runStage(r.parts, func(p int) error {
			local := make([][]Pair[K, V], numOut)
			e := r.compute(p, func(kv Pair[K, V]) error {
				b := int(hashKey(kv.Key) % uint64(numOut))
				local[b] = append(local[b], kv)
				return nil
			})
			perPart[p] = local
			return e
		})
		if err != nil {
			ex.err = err
			return
		}
		ex.buckets = make([][]Pair[K, V], numOut)
		var n int64
		for _, local := range perPart {
			for b, recs := range local {
				ex.buckets[b] = append(ex.buckets[b], recs...)
				n += int64(len(recs))
			}
		}
		r.ctx.metrics.ShuffleRecords.Add(n)
	})
}

// ReduceByKey merges the values of each key with combine, with map-side
// combining before the shuffle like Spark's reduceByKey.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], combine func(V, V) V) *RDD[Pair[K, V]] {
	numOut := r.ctx.conf.Parallelism
	// Map-side combine: collapse duplicate keys within each partition
	// before the exchange.
	pre := NewRDD(r.ctx, r.parts, "mapSideCombine("+r.name+")", func(p int, yield func(Pair[K, V]) error) error {
		acc := make(map[K]V)
		var order []K // first-seen key order keeps the emit deterministic
		if err := r.compute(p, func(kv Pair[K, V]) error {
			if cur, ok := acc[kv.Key]; ok {
				acc[kv.Key] = combine(cur, kv.Value)
			} else {
				acc[kv.Key] = kv.Value
				order = append(order, kv.Key)
			}
			return nil
		}); err != nil {
			return err
		}
		for _, k := range order {
			if err := yield(Pair[K, V]{k, acc[k]}); err != nil {
				return err
			}
		}
		return nil
	})
	var ex shuffleExchange[K, V]
	return NewRDD(r.ctx, numOut, "reduceByKey("+r.name+")", func(p int, yield func(Pair[K, V]) error) error {
		ex.runOnce(pre, numOut)
		if ex.err != nil {
			return ex.err
		}
		acc := make(map[K]V)
		var order []K // bucket replay order is deterministic, so this is too
		for _, kv := range ex.buckets[p] {
			if cur, ok := acc[kv.Key]; ok {
				acc[kv.Key] = combine(cur, kv.Value)
			} else {
				acc[kv.Key] = kv.Value
				order = append(order, kv.Key)
			}
		}
		for _, k := range order {
			if err := yield(Pair[K, V]{k, acc[k]}); err != nil {
				return err
			}
		}
		return nil
	})
}

// GroupByKey gathers all values of each key into a slice.
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[Pair[K, []V]] {
	numOut := r.ctx.conf.Parallelism
	var ex shuffleExchange[K, V]
	return NewRDD(r.ctx, numOut, "groupByKey("+r.name+")", func(p int, yield func(Pair[K, []V]) error) error {
		ex.runOnce(r, numOut)
		if ex.err != nil {
			return ex.err
		}
		groups := make(map[K][]V)
		var order []K // first-seen key order keeps the emit deterministic
		for _, kv := range ex.buckets[p] {
			if _, ok := groups[kv.Key]; !ok {
				order = append(order, kv.Key)
			}
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
		for _, k := range order {
			if err := yield(Pair[K, []V]{k, groups[k]}); err != nil {
				return err
			}
		}
		return nil
	})
}

// SortBy produces a globally sorted RDD using sampled range boundaries, a
// range-partitioning shuffle and a per-partition sort — Spark's sortByKey
// strategy. less must be a strict weak ordering.
func SortBy[T any](r *RDD[T], less func(a, b T) bool) *RDD[T] {
	numOut := r.ctx.conf.Parallelism
	type state struct {
		once    sync.Once
		err     error
		buckets [][]T
	}
	st := &state{}
	run := func() {
		st.once.Do(func() {
			// Stage 1: materialize partitions (also serves as the sample).
			parts := make([][]T, r.parts)
			st.err = r.ctx.runStage(r.parts, func(p int) error {
				var buf []T
				e := r.compute(p, func(v T) error {
					buf = append(buf, v)
					return nil
				})
				parts[p] = buf
				return e
			})
			if st.err != nil {
				return
			}
			var total int
			for _, p := range parts {
				total += len(p)
			}
			// Choose numOut-1 boundaries from a deterministic stride sample.
			var sample []T
			stride := total/1024 + 1
			i := 0
			for _, p := range parts {
				for _, v := range p {
					if i%stride == 0 {
						sample = append(sample, v)
					}
					i++
				}
			}
			sort.SliceStable(sample, func(i, j int) bool { return less(sample[i], sample[j]) })
			bounds := make([]T, 0, numOut-1)
			for b := 1; b < numOut; b++ {
				idx := b * len(sample) / numOut
				if idx < len(sample) {
					bounds = append(bounds, sample[idx])
				}
			}
			// Stage 2: range-partition and sort each bucket.
			st.buckets = make([][]T, numOut)
			for _, p := range parts {
				for _, v := range p {
					b := sort.Search(len(bounds), func(i int) bool { return less(v, bounds[i]) })
					st.buckets[b] = append(st.buckets[b], v)
				}
			}
			serr := r.ctx.runStage(numOut, func(p int) error {
				sort.SliceStable(st.buckets[p], func(i, j int) bool {
					return less(st.buckets[p][i], st.buckets[p][j])
				})
				return nil
			})
			if serr != nil {
				st.err = serr
				return
			}
			var n int64
			for _, b := range st.buckets {
				n += int64(len(b))
			}
			r.ctx.metrics.ShuffleRecords.Add(n)
		})
	}
	return NewRDD(r.ctx, numOut, "sortBy("+r.name+")", func(p int, yield func(T) error) error {
		run()
		if st.err != nil {
			return st.err
		}
		for _, v := range st.buckets[p] {
			if err := yield(v); err != nil {
				return err
			}
		}
		return nil
	})
}

// ZipWithIndex pairs each element with its global 0-based index. It runs a
// counting stage first (like Spark), then streams each partition with the
// proper offset.
func ZipWithIndex[T any](r *RDD[T]) *RDD[Pair[int64, T]] {
	type state struct {
		once    sync.Once
		err     error
		offsets []int64
	}
	st := &state{}
	countStage := func() {
		st.once.Do(func() {
			counts := make([]int64, r.parts)
			st.err = r.ctx.runStage(r.parts, func(p int) error {
				var n int64
				e := r.compute(p, func(T) error { n++; return nil })
				counts[p] = n
				return e
			})
			if st.err != nil {
				return
			}
			st.offsets = make([]int64, r.parts)
			var acc int64
			for p, n := range counts {
				st.offsets[p] = acc
				acc += n
			}
		})
	}
	return NewRDD(r.ctx, r.parts, "zipWithIndex("+r.name+")", func(p int, yield func(Pair[int64, T]) error) error {
		countStage()
		if st.err != nil {
			return st.err
		}
		i := st.offsets[p]
		return r.compute(p, func(v T) error {
			kv := Pair[int64, T]{Key: i, Value: v}
			i++
			return yield(kv)
		})
	})
}

// Distinct removes duplicates using key extraction through keyFn (elements
// with equal keys are considered duplicates; the first per key survives).
func Distinct[T any, K comparable](r *RDD[T], keyFn func(T) K) *RDD[T] {
	pairs := MapToPair(r, func(v T) (K, T) { return keyFn(v), v })
	dedup := ReduceByKey(pairs, func(a, b T) T { return a })
	return Map(dedup, func(kv Pair[K, T]) T { return kv.Value })
}

// Keys projects a pair RDD to its keys.
func Keys[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[K] {
	return Map(r, func(kv Pair[K, V]) K { return kv.Key })
}

// Values projects a pair RDD to its values.
func Values[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[V] {
	return Map(r, func(kv Pair[K, V]) V { return kv.Value })
}

package spark

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rumble/internal/item"
)

func TestExplodeWithPosition(t *testing.T) {
	ctx := testCtx()
	rows := []Row{{seq(item.Int(2))}, {seq(item.Int(0))}, {seq(item.Int(3))}}
	df := NewDataFrame(Schema{Cols: []Column{{Name: "n", Type: ColSeq}}}, Parallelize(ctx, rows, 2))
	udf := func(r Row) ([]item.Item, error) {
		n := int64(r.Seq(0)[0].(item.Int))
		var out []item.Item
		for i := int64(0); i < n; i++ {
			out = append(out, item.Str(fmt.Sprintf("v%d", i)))
		}
		return out, nil
	}
	exploded := df.ExplodeWithPosition("v", "pos", udf, false)
	got, err := exploded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // 2 + 0 + 3
		t.Fatalf("%d rows", len(got))
	}
	// Position restarts per source row and is 1-based.
	if p := got[0].Seq(2); int64(p[0].(item.Int)) != 1 {
		t.Errorf("first position = %v", p)
	}
	if p := got[1].Seq(2); int64(p[0].(item.Int)) != 2 {
		t.Errorf("second position = %v", p)
	}
	if p := got[2].Seq(2); int64(p[0].(item.Int)) != 1 {
		t.Errorf("position should restart per row: %v", p)
	}
	// keepEmpty binds position 0
	kept, err := df.ExplodeWithPosition("v", "pos", udf, true).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 6 {
		t.Fatalf("keepEmpty rows = %d", len(kept))
	}
	foundZero := false
	for _, r := range kept {
		if p := r.Seq(2); len(p) == 1 && int64(p[0].(item.Int)) == 0 {
			foundZero = true
			if len(r.Seq(1)) != 0 {
				t.Error("allowing-empty row should bind the empty sequence")
			}
		}
	}
	if !foundZero {
		t.Error("allowing-empty row with position 0 missing")
	}
}

func TestAggSumInt(t *testing.T) {
	ctx := testCtx()
	var rows []Row
	for i := 0; i < 60; i++ {
		rows = append(rows, Row{int64(i % 3), int64(2)})
	}
	schema := Schema{Cols: []Column{{Name: "k", Type: ColInt}, {Name: "c", Type: ColInt}}}
	df := NewDataFrame(schema, Parallelize(ctx, rows, 4))
	grouped, err := df.GroupBy([]string{"k"}, []Agg{{Col: "c", Kind: AggSumInt, As: "total"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d groups", len(got))
	}
	for _, r := range got {
		if r[1].(int64) != 40 { // 20 rows per group x 2
			t.Errorf("group %v total = %v", r[0], r[1])
		}
	}
	if grouped.Schema().Cols[1].Type != ColInt {
		t.Error("AggSumInt output should be int-typed")
	}
}

func TestForeachPartitionSink(t *testing.T) {
	ctx := testCtx()
	dir := t.TempDir()
	r := Parallelize(ctx, []string{"a", "b", "c", "d", "e"}, 3)
	lines := Map(r, func(s string) []byte { return []byte(s) })
	err := ForeachPartitionSink(lines, func(p int) (Sink[[]byte], error) {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part-%d", p)))
		if err != nil {
			return Sink[[]byte]{}, err
		}
		return Sink[[]byte]{
			Write: func(b []byte) error {
				_, err := f.Write(append(b, '\n'))
				return err
			},
			Close: f.Close,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("%d part files", len(entries))
	}
	total := 0
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			if b == '\n' {
				total++
			}
		}
	}
	if total != 5 {
		t.Errorf("wrote %d lines", total)
	}
}

func TestForeachPartitionSinkOpenError(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []int{1, 2, 3}, 2)
	err := ForeachPartitionSink(r, func(p int) (Sink[int], error) {
		return Sink[int]{}, fmt.Errorf("cannot open %d", p)
	})
	if err == nil {
		t.Error("sink open failure should propagate")
	}
}

func TestSimulateIOLatency(t *testing.T) {
	ctx := NewContext(Config{Parallelism: 2, Executors: 2, IOLatency: 5 * time.Millisecond})
	start := time.Now()
	ctx.SimulateIO(3)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("SimulateIO(3) slept only %v", elapsed)
	}
	// disabled latency must not sleep
	fast := NewContext(Config{Parallelism: 2, Executors: 2})
	start = time.Now()
	fast.SimulateIO(1000)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("disabled SimulateIO slept %v", elapsed)
	}
}

func TestIOLatencyOverlapsAcrossExecutors(t *testing.T) {
	// With per-partition I/O latency, doubling executors should roughly
	// halve the wall time of an I/O-bound stage.
	run := func(executors int) time.Duration {
		ctx := NewContext(Config{Parallelism: 8, Executors: executors, IOLatency: 4 * time.Millisecond})
		r := NewRDD(ctx, 8, "io", func(p int, yield func(int) error) error {
			ctx.SimulateIO(2) // 8 ms per partition
			return yield(p)
		})
		start := time.Now()
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := run(1)
	parallel := run(8)
	if parallel*2 >= serial {
		t.Errorf("no overlap: 1 exec %v, 8 exec %v", serial, parallel)
	}
}

package spark

import (
	"fmt"
	"sort"
	"testing"
)

func pairsOf(keys []string) []Pair[string, int] {
	out := make([]Pair[string, int], len(keys))
	for i, k := range keys {
		out[i] = Pair[string, int]{Key: k, Value: i}
	}
	return out
}

func sortedJoinStrings[K comparable, V, W any](t *testing.T, r *RDD[Pair[K, Joined[V, W]]]) []string {
	t.Helper()
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(got))
	for i, kv := range got {
		out[i] = fmt.Sprintf("%v:%v-%v", kv.Key, kv.Value.Left, kv.Value.Right)
	}
	sort.Strings(out)
	return out
}

func TestJoinByKeyMatchesAndMultiplies(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, pairsOf([]string{"a", "b", "a", "d"}), 3)
	right := Parallelize(ctx, pairsOf([]string{"b", "a", "a", "c"}), 2)
	got := sortedJoinStrings(t, JoinByKey(left, right, nil))
	// "a" appears 2x on the left and 2x on the right: 4 pairs; "b" 1x1;
	// "c" and "d" are unmatched.
	want := []string{"a:0-1", "a:0-2", "a:2-1", "a:2-2", "b:1-0"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("join pairs:\ngot  %v\nwant %v", got, want)
	}
}

func TestJoinByKeyEmptySides(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, pairsOf([]string{"a", "b"}), 2)
	empty := Parallelize(ctx, pairsOf(nil), 1)
	if got := sortedJoinStrings(t, JoinByKey(left, empty, nil)); len(got) != 0 {
		t.Errorf("join with empty right produced %v", got)
	}
	if got := sortedJoinStrings(t, JoinByKey(empty, left, nil)); len(got) != 0 {
		t.Errorf("join with empty left produced %v", got)
	}
}

func TestJoinByKeyCountsShuffleRecords(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, pairsOf([]string{"a", "b", "c"}), 2)
	right := Parallelize(ctx, pairsOf([]string{"a", "b"}), 2)
	ctx.ResetMetrics()
	if _, err := Collect(JoinByKey(left, right, nil)); err != nil {
		t.Fatal(err)
	}
	if n := ctx.Metrics().ShuffleRecords; n != 5 {
		t.Errorf("ShuffleRecords = %d, want 5 (both sides shuffled)", n)
	}
}

func TestJoinByKeyCheckRunsBeforeOutput(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, pairsOf([]string{"a"}), 1)
	right := Parallelize(ctx, pairsOf([]string{"a"}), 1)
	wantErr := fmt.Errorf("incompatible key types")
	joined := JoinByKey(left, right, func() error { return wantErr })
	if _, err := Collect(joined); err != wantErr {
		t.Errorf("check error not propagated: %v", err)
	}
}

func TestJoinByKeyDeterministic(t *testing.T) {
	ctx := testCtx()
	var keys []string
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i%17))
	}
	left := Parallelize(ctx, pairsOf(keys), 5)
	right := Parallelize(ctx, pairsOf(keys[:50]), 3)
	first, err := Collect(JoinByKey(left, right, nil))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Collect(JoinByKey(left, right, nil))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(first) != fmt.Sprint(again) {
			t.Fatal("join output order is not deterministic across runs")
		}
	}
}

func TestBroadcastHashJoinPreservesBigSideOrder(t *testing.T) {
	ctx := testCtx()
	big := Parallelize(ctx, pairsOf([]string{"a", "b", "a", "c"}), 2)
	small := []Pair[string, string]{{Key: "a", Value: "x"}, {Key: "b", Value: "y"}, {Key: "a", Value: "z"}}
	got, err := Collect(BroadcastHashJoin(big, small))
	if err != nil {
		t.Fatal(err)
	}
	var flat []string
	for _, kv := range got {
		flat = append(flat, fmt.Sprintf("%s:%d-%s", kv.Key, kv.Value.Left, kv.Value.Right))
	}
	// Big-side order with per-key small-side order: a(0) matches x then z,
	// b(1) matches y, a(2) matches x then z, c unmatched.
	want := []string{"a:0-x", "a:0-z", "b:1-y", "a:2-x", "a:2-z"}
	if fmt.Sprint(flat) != fmt.Sprint(want) {
		t.Errorf("broadcast join:\ngot  %v\nwant %v", flat, want)
	}
}

func TestBroadcastHashJoinCountsBroadcastRecords(t *testing.T) {
	ctx := testCtx()
	big := Parallelize(ctx, pairsOf([]string{"a", "b"}), 2)
	small := []Pair[string, string]{{Key: "a", Value: "x"}, {Key: "q", Value: "y"}}
	ctx.ResetMetrics()
	if _, err := Collect(BroadcastHashJoin(big, small)); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.BroadcastRecords != 2 {
		t.Errorf("BroadcastRecords = %d, want 2", m.BroadcastRecords)
	}
	if m.ShuffleRecords != 0 {
		t.Errorf("broadcast join shuffled %d records, want 0", m.ShuffleRecords)
	}
}

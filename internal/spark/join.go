package spark

import "sync"

// Joined is one matched record pair produced by an equi-join: the value
// from the left (probe) input and the value from the right (build) input.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// JoinByKey is the shuffle hash join: both sides are hash-partitioned on
// their key through the write-once shuffle exchange, then each output
// partition builds a hash table over its right-side bucket and probes it
// with its left-side bucket, preserving left order within the partition.
// Shuffled records on both sides count toward the ShuffleRecords metric.
//
// check, when non-nil, runs in every output partition after both sides are
// fully materialized but before any pair is emitted; a non-nil error aborts
// the join. Engine layers use it for cross-side validation (e.g. key type
// compatibility) that needs both inputs observed in full.
func JoinByKey[K comparable, V, W any](left *RDD[Pair[K, V]], right *RDD[Pair[K, W]], check func() error) *RDD[Pair[K, Joined[V, W]]] {
	numOut := left.ctx.conf.Parallelism
	var exL shuffleExchange[K, V]
	var exR shuffleExchange[K, W]
	name := "joinByKey(" + left.name + ", " + right.name + ")"
	return NewRDD(left.ctx, numOut, name, func(p int, yield func(Pair[K, Joined[V, W]]) error) error {
		exL.runOnce(left, numOut)
		if exL.err != nil {
			return exL.err
		}
		exR.runOnce(right, numOut)
		if exR.err != nil {
			return exR.err
		}
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		build := make(map[K][]W)
		for _, kv := range exR.buckets[p] {
			build[kv.Key] = append(build[kv.Key], kv.Value)
		}
		for _, kv := range exL.buckets[p] {
			for _, w := range build[kv.Key] {
				if err := yield(Pair[K, Joined[V, W]]{Key: kv.Key, Value: Joined[V, W]{Left: kv.Value, Right: w}}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// BroadcastHashJoin joins a large RDD against a small side that is already
// collected on the driver, the way Spark broadcasts a small relation to
// every executor: the hash table is built once (counting the broadcast
// records metric), then the big side streams through it with no shuffle,
// preserving the big side's order. Matches per key come in small-side
// order.
func BroadcastHashJoin[K comparable, V, W any](big *RDD[Pair[K, V]], small []Pair[K, W]) *RDD[Pair[K, Joined[V, W]]] {
	var (
		once  sync.Once
		build map[K][]W
	)
	prepare := func() {
		build = make(map[K][]W, len(small))
		for _, kv := range small {
			build[kv.Key] = append(build[kv.Key], kv.Value)
		}
		big.ctx.metrics.BroadcastRecords.Add(int64(len(small)))
	}
	return NewRDD(big.ctx, big.parts, "broadcastHashJoin("+big.name+")", func(p int, yield func(Pair[K, Joined[V, W]]) error) error {
		once.Do(prepare)
		return big.compute(p, func(kv Pair[K, V]) error {
			for _, w := range build[kv.Key] {
				if err := yield(Pair[K, Joined[V, W]]{Key: kv.Key, Value: Joined[V, W]{Left: kv.Value, Right: w}}); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

package spark

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestReduceByKeyWordCount(t *testing.T) {
	ctx := testCtx()
	words := []string{"a", "b", "a", "c", "b", "a", "a"}
	r := Parallelize(ctx, words, 3)
	pairs := MapToPair(r, func(w string) (string, int) { return w, 1 })
	counts := ReduceByKey(pairs, func(a, b int) int { return a + b })
	got, err := Collect(counts)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]int{}
	for _, kv := range got {
		m[kv.Key] = kv.Value
	}
	want := map[string]int{"a": 4, "b": 2, "c": 1}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, m[k], v)
		}
	}
	if len(m) != 3 {
		t.Errorf("got %d distinct keys", len(m))
	}
}

func TestGroupByKeyGathersAll(t *testing.T) {
	ctx := testCtx()
	type rec struct {
		k string
		v int
	}
	var data []rec
	for i := 0; i < 100; i++ {
		data = append(data, rec{k: string(rune('a' + i%5)), v: i})
	}
	r := Parallelize(ctx, data, 4)
	pairs := MapToPair(r, func(x rec) (string, int) { return x.k, x.v })
	groups, err := Collect(GroupByKey(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 5 {
		t.Fatalf("got %d groups", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Value)
		for _, v := range g.Value {
			if string(rune('a'+v%5)) != g.Key {
				t.Fatalf("value %d landed in group %s", v, g.Key)
			}
		}
	}
	if total != 100 {
		t.Errorf("groups cover %d values, want 100 (exactly-once)", total)
	}
}

func TestSortByGlobalOrder(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(42))
	data := make([]int, 10000)
	for i := range data {
		data[i] = rng.Intn(1 << 20)
	}
	r := Parallelize(ctx, data, 8)
	sorted := SortBy(r, func(a, b int) bool { return a < b })
	got, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("sorted has %d elements, want %d", len(got), len(data))
	}
	want := sortedCopy(data)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSortByDescendingAndDuplicates(t *testing.T) {
	ctx := testCtx()
	data := []int{5, 3, 5, 1, 3, 3, 9, 0}
	sorted := SortBy(Parallelize(ctx, data, 3), func(a, b int) bool { return a > b })
	got, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatalf("not descending: %v", got)
		}
	}
}

func TestSortByStability(t *testing.T) {
	ctx := testCtx()
	type rec struct{ k, seq int }
	var data []rec
	for i := 0; i < 500; i++ {
		data = append(data, rec{k: i % 7, seq: i})
	}
	sorted := SortBy(Parallelize(ctx, data, 5), func(a, b rec) bool { return a.k < b.k })
	got, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].k == got[i-1].k && got[i].seq < got[i-1].seq {
			t.Fatalf("sort not stable at %d", i)
		}
	}
}

func TestZipWithIndex(t *testing.T) {
	ctx := testCtx()
	data := make([]string, 100)
	for i := range data {
		data[i] = string(rune('A' + i%26))
	}
	zipped := ZipWithIndex(Parallelize(ctx, data, 7))
	got, err := Collect(zipped)
	if err != nil {
		t.Fatal(err)
	}
	for i, kv := range got {
		if kv.Key != int64(i) {
			t.Fatalf("index %d has key %d", i, kv.Key)
		}
		if kv.Value != data[i] {
			t.Fatalf("index %d holds %q, want %q", i, kv.Value, data[i])
		}
	}
}

func TestDistinct(t *testing.T) {
	ctx := testCtx()
	data := []int{1, 2, 2, 3, 3, 3, 4}
	d := Distinct(Parallelize(ctx, data, 3), func(x int) int { return x })
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct = %v", got)
		}
	}
}

func TestKeysValues(t *testing.T) {
	ctx := testCtx()
	pairs := Parallelize(ctx, []Pair[string, int]{{"a", 1}, {"b", 2}}, 1)
	ks, err := Collect(Keys(pairs))
	if err != nil || len(ks) != 2 || ks[0] != "a" {
		t.Errorf("keys = %v, %v", ks, err)
	}
	vs, err := Collect(Values(pairs))
	if err != nil || len(vs) != 2 || vs[1] != 2 {
		t.Errorf("values = %v, %v", vs, err)
	}
}

// Property: ReduceByKey(+) over integer keys equals a sequential
// hash-reduce of the same data.
func TestReduceByKeyMatchesSequential(t *testing.T) {
	ctx := testCtx()
	f := func(data []int16) bool {
		r := Parallelize(ctx, data, 4)
		pairs := MapToPair(r, func(v int16) (int16, int64) { return v % 10, int64(v) })
		reduced, err := Collect(ReduceByKey(pairs, func(a, b int64) int64 { return a + b }))
		if err != nil {
			return false
		}
		want := map[int16]int64{}
		for _, v := range data {
			want[v%10] += int64(v)
		}
		if len(reduced) != len(want) {
			return false
		}
		for _, kv := range reduced {
			if want[kv.Key] != kv.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SortBy preserves the multiset (same length, same sorted content).
func TestSortByPreservesMultiset(t *testing.T) {
	ctx := testCtx()
	f := func(data []int32) bool {
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		got, err := Collect(SortBy(Parallelize(ctx, ints, 4), func(a, b int) bool { return a < b }))
		if err != nil {
			return false
		}
		want := sortedCopy(ints)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestShuffleSharedAcrossConsumers(t *testing.T) {
	// Two different downstream actions on the same grouped RDD must reuse
	// one exchange (write-once shuffle).
	ctx := testCtx()
	data := intsUpTo(1000)
	pairs := MapToPair(Parallelize(ctx, data, 4), func(v int) (int, int) { return v % 10, v })
	grouped := GroupByKey(pairs)
	before := ctx.Metrics().ShuffleRecords
	if _, err := Count(grouped); err != nil {
		t.Fatal(err)
	}
	mid := ctx.Metrics().ShuffleRecords
	if _, err := Count(grouped); err != nil {
		t.Fatal(err)
	}
	after := ctx.Metrics().ShuffleRecords
	if mid == before {
		t.Error("first action did not record shuffle records")
	}
	if after != mid {
		t.Errorf("second action re-ran the shuffle: %d -> %d", mid, after)
	}
}

package spark

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testCtx() *Context {
	return NewContext(Config{Parallelism: 4, Executors: 4})
}

func intsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := testCtx()
	data := intsUpTo(1000)
	got, err := Collect(Parallelize(ctx, data, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("collected %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; partition order not preserved", i, v)
		}
	}
}

func TestParallelizeEmptyAndSmall(t *testing.T) {
	ctx := testCtx()
	if got, err := Collect(Parallelize[int](ctx, nil, 5)); err != nil || len(got) != 0 {
		t.Errorf("empty parallelize = %v, %v", got, err)
	}
	r := Parallelize(ctx, []int{1, 2}, 10)
	if r.NumPartitions() > 2 {
		t.Errorf("2 elements got %d partitions", r.NumPartitions())
	}
	got, err := Collect(r)
	if err != nil || len(got) != 2 {
		t.Errorf("small parallelize = %v, %v", got, err)
	}
}

func TestSliceRangeCoversAll(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		np := int(parts)%16 + 1
		nn := int(n) % 5000
		covered := 0
		prevHi := 0
		for p := 0; p < np; p++ {
			lo, hi := sliceRange(nn, np, p)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == nn && prevHi == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapFilterFlatMapPipeline(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(100), 4)
	doubled := Map(r, func(x int) int { return x * 2 })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	split := FlatMap(evens, func(x int) []int { return []int{x, x + 1} })
	n, err := Count(split)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("count = %d, want 100", n)
	}
}

func TestMapEErrorPropagates(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(10), 2)
	bad := MapE(r, func(x int) (int, error) {
		if x == 7 {
			return 0, fmt.Errorf("boom at %d", x)
		}
		return x, nil
	})
	if _, err := Collect(bad); err == nil {
		t.Fatal("expected error from failing map")
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(10), 2)
	bad := Map(r, func(x int) int {
		if x == 3 {
			panic("kaboom")
		}
		return x
	})
	if _, err := Collect(bad); err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestTakeStopsEarly(t *testing.T) {
	ctx := testCtx()
	var visited atomic.Int64
	r := NewRDD(ctx, 4, "counting", func(p int, yield func(int) error) error {
		for i := 0; i < 1000; i++ {
			visited.Add(1)
			if err := yield(p*1000 + i); err != nil {
				return err
			}
		}
		return nil
	})
	got, err := Take(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("take(5) returned %d", len(got))
	}
	if v := visited.Load(); v > 10 {
		t.Errorf("take(5) visited %d elements; early stop not working", v)
	}
}

func TestReduce(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(101), 5)
	sum, ok, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil || !ok {
		t.Fatalf("reduce: %v %v", ok, err)
	}
	if sum != 5050 {
		t.Errorf("sum = %d", sum)
	}
	_, ok, err = Reduce(Parallelize[int](ctx, nil, 1), func(a, b int) int { return a + b })
	if err != nil || ok {
		t.Error("reduce of empty should report !ok")
	}
}

func TestUnionCoalesce(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4, 5}, 3)
	u := Union(a, b)
	if u.NumPartitions() != 5 {
		t.Errorf("union partitions = %d", u.NumPartitions())
	}
	got, err := Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union order %v", got)
		}
	}
	c := Coalesce(u, 2)
	if c.NumPartitions() != 2 {
		t.Errorf("coalesce partitions = %d", c.NumPartitions())
	}
	got2, err := Collect(c)
	if err != nil || len(got2) != 5 {
		t.Fatalf("coalesce collect %v %v", got2, err)
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := testCtx()
	var computations atomic.Int64
	r := NewRDD(ctx, 3, "expensive", func(p int, yield func(int) error) error {
		computations.Add(1)
		return yield(p)
	})
	c := Cache(r)
	for i := 0; i < 3; i++ {
		if _, err := Collect(c); err != nil {
			t.Fatal(err)
		}
	}
	if n := computations.Load(); n != 3 {
		t.Errorf("parent partitions computed %d times, want 3 (once each)", n)
	}
}

func TestMaxResultItems(t *testing.T) {
	ctx := NewContext(Config{Parallelism: 2, Executors: 2, MaxResultItems: 10})
	r := Parallelize(ctx, intsUpTo(100), 2)
	if _, err := Collect(r); err != ErrResultTooLarge {
		t.Errorf("Collect err = %v, want ErrResultTooLarge", err)
	}
	small := Parallelize(ctx, intsUpTo(5), 2)
	if _, err := Collect(small); err != nil {
		t.Errorf("small collect should pass: %v", err)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(100), 4)
	if _, err := Count(r); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.TasksRun < 4 || m.StagesRun < 1 {
		t.Errorf("metrics = %+v", m)
	}
	ctx.ResetMetrics()
	if ctx.Metrics().TasksRun != 0 {
		t.Error("reset did not clear metrics")
	}
}

func TestSingleExecutorStillCorrect(t *testing.T) {
	ctx := NewContext(Config{Parallelism: 8, Executors: 1})
	r := Parallelize(ctx, intsUpTo(500), 8)
	n, err := Count(Filter(r, func(x int) bool { return x%3 == 0 }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 167 {
		t.Errorf("count = %d, want 167", n)
	}
}

// Property: algebraic law count(filter p) + count(filter !p) == count.
func TestFilterPartition(t *testing.T) {
	ctx := testCtx()
	f := func(data []int32) bool {
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		r := Parallelize(ctx, ints, 3)
		even := Filter(r, func(x int) bool { return x%2 == 0 })
		odd := Filter(r, func(x int) bool { return x%2 != 0 })
		ne, err1 := Count(even)
		no, err2 := Count(odd)
		nall, err3 := Count(r)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return ne+no == nall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: map fusion — Map(Map(r,f),g) == Map(r, g∘f).
func TestMapFusionLaw(t *testing.T) {
	ctx := testCtx()
	f := func(data []int16) bool {
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		r := Parallelize(ctx, ints, 4)
		double := func(x int) int { return x * 2 }
		inc := func(x int) int { return x + 1 }
		a, err1 := Collect(Map(Map(r, double), inc))
		b, err2 := Collect(Map(r, func(x int) int { return inc(double(x)) }))
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(20), 4)
	sums := MapPartitions(r, func(p int, in []int, yield func(int) error) error {
		s := 0
		for _, v := range in {
			s += v
		}
		return yield(s)
	})
	got, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("expected one sum per partition, got %d", len(got))
	}
	total := 0
	for _, s := range got {
		total += s
	}
	if total != 190 {
		t.Errorf("total = %d", total)
	}
}

func TestForeachPartition(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, intsUpTo(10), 2)
	var seen atomic.Int64
	if err := ForeachPartition(r, func(p int, v int) error {
		seen.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 10 {
		t.Errorf("seen = %d", seen.Load())
	}
}

func sortedCopy(xs []int) []int {
	out := append([]int{}, xs...)
	sort.Ints(out)
	return out
}

// Package spark is a miniature Apache-Spark-like parallel dataflow engine:
// lazy RDDs computed partition-by-partition on a bounded executor pool,
// narrow transformations pipelined without materialization, wide
// transformations (group, sort, zip-with-index) separated by shuffle
// barriers, and a DataFrame layer with typed columns on top.
//
// It is the substrate Rumble's runtime iterators compile to, standing in
// for Apache Spark 2.4 in the paper. The engine preserves Spark's cost
// structure — per-partition pipelines, shuffle barriers, schema-less rows
// (RDD) versus columnar typed rows (DataFrame) — which is what the paper's
// experiments exercise.
package spark

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Context. The zero value is usable: missing fields default
// to 4 partitions and 4 executor slots.
type Config struct {
	// Parallelism is the default number of partitions for new RDDs.
	Parallelism int
	// Executors bounds how many partition tasks run concurrently,
	// emulating the total executor cores of a cluster.
	Executors int
	// MaxResultItems caps Collect sizes; 0 means unlimited. Mirrors
	// Rumble's configurable materialization cap.
	MaxResultItems int
	// IOLatency, if positive, simulates storage latency: readers sleep
	// this long per simulated block read (see dfs integration). It lets
	// scalability experiments show I/O overlap beyond the host's core
	// count, as on the paper's EMR clusters.
	IOLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Executors <= 0 {
		c.Executors = 4
	}
	return c
}

// Context owns the executor pool and metrics for one logical "cluster".
// Contexts are safe for concurrent use.
type Context struct {
	conf    Config
	metrics Metrics
}

// NewContext returns a Context with the given configuration.
func NewContext(conf Config) *Context {
	return &Context{conf: conf.withDefaults()}
}

// Conf returns the context configuration.
func (c *Context) Conf() Config { return c.conf }

// DefaultParallelism returns the default partition count.
func (c *Context) DefaultParallelism() int { return c.conf.Parallelism }

// Metrics is a snapshot of engine counters. Aggregated task time is the
// "aggregated runtime over the cluster" series of the paper's Figure 14.
type Metrics struct {
	TasksRun         atomic.Int64
	TaskNanos        atomic.Int64
	RecordsRead      atomic.Int64
	ShuffleRecords   atomic.Int64
	BroadcastRecords atomic.Int64
	StagesRun        atomic.Int64
	VectorRuns       atomic.Int64
	VectorMorsels    atomic.Int64
	VectorWorkers    atomic.Int64
	VectorSortRuns   atomic.Int64
	VectorTopKRuns   atomic.Int64
	VectorJoinRows   atomic.Int64
	SegmentsRead     atomic.Int64
	SegmentsSkipped  atomic.Int64
	SegmentCacheHits atomic.Int64
	SegmentCacheMiss atomic.Int64
	SegmentReingests atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	TasksRun       int64
	TaskTime       time.Duration
	RecordsRead    int64
	ShuffleRecords int64
	// BroadcastRecords counts build-side records shipped to executors by
	// broadcast hash joins.
	BroadcastRecords int64
	StagesRun        int64
	// VectorRuns counts vector-backend pipeline evaluations, VectorMorsels
	// the scan morsels they processed, and VectorWorkers the worker tasks
	// launched to process them (1 per run when the pool is a single slot).
	VectorRuns    int64
	VectorMorsels int64
	VectorWorkers int64
	// VectorSortRuns counts vector pipeline evaluations that ran a full
	// columnar sort, VectorTopKRuns those that ran a fused bounded top-k,
	// and VectorJoinRows the rows emitted by vector hash-join probes.
	VectorSortRuns int64 `json:"vector_sort_runs"`
	VectorTopKRuns int64 `json:"vector_topk_runs"`
	VectorJoinRows int64 `json:"vector_join_rows"`
	// SegmentsRead counts columnar segments scanned, SegmentsSkipped those
	// a zone-map prune rejected without touching a row, and the cache pair
	// counts buffer-pool hits vs cold decodes.
	SegmentsRead     int64 `json:"segments_read"`
	SegmentsSkipped  int64 `json:"segments_skipped"`
	SegmentCacheHits int64 `json:"segment_cache_hits"`
	SegmentCacheMiss int64 `json:"segment_cache_miss"`
	// SegmentReingests counts background dataset rebuilds triggered by a
	// stale source hash at open time.
	SegmentReingests int64 `json:"segment_reingests"`
}

// Metrics returns a snapshot of the counters.
func (c *Context) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		TasksRun:         c.metrics.TasksRun.Load(),
		TaskTime:         time.Duration(c.metrics.TaskNanos.Load()),
		RecordsRead:      c.metrics.RecordsRead.Load(),
		ShuffleRecords:   c.metrics.ShuffleRecords.Load(),
		BroadcastRecords: c.metrics.BroadcastRecords.Load(),
		StagesRun:        c.metrics.StagesRun.Load(),
		VectorRuns:       c.metrics.VectorRuns.Load(),
		VectorMorsels:    c.metrics.VectorMorsels.Load(),
		VectorWorkers:    c.metrics.VectorWorkers.Load(),
		VectorSortRuns:   c.metrics.VectorSortRuns.Load(),
		VectorTopKRuns:   c.metrics.VectorTopKRuns.Load(),
		VectorJoinRows:   c.metrics.VectorJoinRows.Load(),
		SegmentsRead:     c.metrics.SegmentsRead.Load(),
		SegmentsSkipped:  c.metrics.SegmentsSkipped.Load(),
		SegmentCacheHits: c.metrics.SegmentCacheHits.Load(),
		SegmentCacheMiss: c.metrics.SegmentCacheMiss.Load(),
		SegmentReingests: c.metrics.SegmentReingests.Load(),
	}
}

// ResetMetrics zeroes all counters.
func (c *Context) ResetMetrics() {
	c.metrics.TasksRun.Store(0)
	c.metrics.TaskNanos.Store(0)
	c.metrics.RecordsRead.Store(0)
	c.metrics.ShuffleRecords.Store(0)
	c.metrics.BroadcastRecords.Store(0)
	c.metrics.StagesRun.Store(0)
	c.metrics.VectorRuns.Store(0)
	c.metrics.VectorMorsels.Store(0)
	c.metrics.VectorWorkers.Store(0)
	c.metrics.VectorSortRuns.Store(0)
	c.metrics.VectorTopKRuns.Store(0)
	c.metrics.VectorJoinRows.Store(0)
	c.metrics.SegmentsRead.Store(0)
	c.metrics.SegmentsSkipped.Store(0)
	c.metrics.SegmentCacheHits.Store(0)
	c.metrics.SegmentCacheMiss.Store(0)
	c.metrics.SegmentReingests.Store(0)
}

// AddVectorRun counts one vector-backend pipeline evaluation.
func (c *Context) AddVectorRun() { c.metrics.VectorRuns.Add(1) }

// AddVectorMorsels counts scan morsels processed by the vector backend.
func (c *Context) AddVectorMorsels(n int64) { c.metrics.VectorMorsels.Add(n) }

// AddVectorWorkers counts worker tasks launched by the vector backend.
func (c *Context) AddVectorWorkers(n int64) { c.metrics.VectorWorkers.Add(n) }

// AddVectorSortRun counts one vector pipeline run with a full columnar sort.
func (c *Context) AddVectorSortRun() { c.metrics.VectorSortRuns.Add(1) }

// AddVectorTopKRun counts one vector pipeline run with a fused top-k.
func (c *Context) AddVectorTopKRun() { c.metrics.VectorTopKRuns.Add(1) }

// AddVectorJoinRows counts rows emitted by vector hash-join probes.
func (c *Context) AddVectorJoinRows(n int64) { c.metrics.VectorJoinRows.Add(n) }

// AddSegmentsRead counts columnar segments scanned by the vector backend.
func (c *Context) AddSegmentsRead(n int64) { c.metrics.SegmentsRead.Add(n) }

// AddSegmentsSkipped counts segments a zone-map prune skipped wholesale.
func (c *Context) AddSegmentsSkipped(n int64) { c.metrics.SegmentsSkipped.Add(n) }

// AddSegmentCacheHits counts buffer-pool hits serving decoded segments.
func (c *Context) AddSegmentCacheHits(n int64) { c.metrics.SegmentCacheHits.Add(n) }

// AddSegmentCacheMiss counts cold segment reads that had to decode.
func (c *Context) AddSegmentCacheMiss(n int64) { c.metrics.SegmentCacheMiss.Add(n) }

// AddSegmentReingests counts background re-ingests of stale datasets.
func (c *Context) AddSegmentReingests(n int64) { c.metrics.SegmentReingests.Add(n) }

// AddRecordsRead is called by input sources when they produce records.
func (c *Context) AddRecordsRead(n int64) { c.metrics.RecordsRead.Add(n) }

// SimulateIO sleeps for blocks*IOLatency when latency simulation is
// enabled. Input sources call it once per block read.
func (c *Context) SimulateIO(blocks int) {
	if c.conf.IOLatency > 0 && blocks > 0 {
		time.Sleep(time.Duration(blocks) * c.conf.IOLatency)
	}
}

// runStage executes task(p) for p in [0, parts) on at most conf.Executors
// concurrent goroutines and returns the first error. Each call owns its own
// worker group, so stages nested inside a running task (a shuffle evaluating
// its parent) cannot deadlock the pool.
func (c *Context) runStage(parts int, task func(p int) error) error {
	c.metrics.StagesRun.Add(1)
	if parts == 0 {
		return nil
	}
	if parts == 1 {
		return c.runTask(0, task)
	}
	workers := c.conf.Executors
	if workers > parts {
		workers = parts
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		err  error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1) - 1)
				if p >= parts {
					return
				}
				mu.Lock()
				stop := err != nil
				mu.Unlock()
				if stop {
					return
				}
				if e := c.runTask(p, task); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

func (c *Context) runTask(p int, task func(p int) error) (err error) {
	start := time.Now()
	defer func() {
		c.metrics.TasksRun.Add(1)
		c.metrics.TaskNanos.Add(int64(time.Since(start)))
		if r := recover(); r != nil {
			err = fmt.Errorf("task %d panicked: %v", p, r)
		}
	}()
	return task(p)
}

// ErrResultTooLarge is returned by Collect when MaxResultItems is exceeded.
var ErrResultTooLarge = fmt.Errorf("spark: result exceeds MaxResultItems")

package server

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"rumble/internal/compiler"
	"rumble/internal/lexer"
)

// TestWriteVerifyError pins the wire shape of a failed plan verification:
// one structured diagnostic per invariant, each carrying its stable code,
// instead of a single flattened error string.
func TestWriteVerifyError(t *testing.T) {
	ve := &compiler.VerifyError{Diags: []compiler.PlanDiagnostic{
		{Code: "vector-topk", Pos: lexer.Pos{Line: 2, Col: 7}, Msg: "vector top-k bound is 0"},
		{Code: "join-keys", Pos: lexer.Pos{Line: 4, Col: 1}, Msg: "join plan has no key pairs"},
	}}
	rec := httptest.NewRecorder()
	writeVerifyError(rec, ve)
	if rec.Code != 500 {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var resp struct {
		Error string `json:"error"`
		Diags []struct {
			Code    string `json:"code"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"plan_diagnostics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.Error != "plan verification failed" {
		t.Errorf("error = %q", resp.Error)
	}
	if len(resp.Diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(resp.Diags))
	}
	if resp.Diags[0].Code != "vector-topk" || resp.Diags[0].Line != 2 || resp.Diags[0].Col != 7 {
		t.Errorf("first diagnostic = %+v", resp.Diags[0])
	}
	if resp.Diags[1].Code != "join-keys" || resp.Diags[1].Message != "join plan has no key pairs" {
		t.Errorf("second diagnostic = %+v", resp.Diags[1])
	}
}

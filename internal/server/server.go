// Package server exposes a rumble Engine as a long-lived concurrent HTTP
// query service — the mode in which the paper's Rumble backs Jupyter
// notebooks. It adds three things on top of the library API:
//
//   - a compiled-plan LRU cache keyed by normalized query text (comments
//     stripped, whitespace collapsed outside string literals), so hot
//     queries — even trivially reformatted ones — skip parse / static
//     analysis / join detection / vector compilation entirely;
//   - admission control: a semaphore sized against the engine's executor
//     slots plus a bounded wait queue, so N concurrent clients degrade
//     gracefully (429) instead of oversubscribing the executor pool;
//   - per-request deadlines and cancellation threaded through evaluation
//     via context.Context — a client that disconnects or times out frees
//     its executor slots promptly.
//
// Endpoints: POST /query, GET /explain, GET /metrics, GET /healthz. Every
// query response reports the execution mode the compiler chose (envelope
// "mode" field and X-Rumble-Mode header: Local, RDD, DataFrame or
// Vector), and /metrics counts evaluations per mode. See docs/server.md
// for the full API reference.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"rumble"
	"rumble/internal/compiler"
	"rumble/internal/profile"
	"rumble/internal/spark"
)

// Options tunes a Server. The zero value gives sensible defaults sized
// against the engine.
type Options struct {
	// MaxConcurrent bounds query evaluations running at once. Each
	// evaluation may spawn up to Executors worker goroutines per stage, so
	// this is the knob that keeps N clients from oversubscribing the pool.
	// 0 defaults to the engine's executor count.
	MaxConcurrent int
	// QueueDepth bounds requests allowed to wait for an evaluation slot
	// beyond MaxConcurrent; anything past that is rejected with 429.
	// 0 defaults to 2×MaxConcurrent.
	QueueDepth int
	// PlanCacheBytes bounds the compiled-plan LRU by approximate resident
	// bytes (each entry is charged a cost derived from its query length),
	// evicting least-recently-used plans past the budget. 0 defaults to
	// 8 MiB.
	PlanCacheBytes int64
	// DefaultTimeout is the evaluation deadline applied when a request
	// carries no timeout_ms. 0 defaults to 30s; negative disables the
	// default deadline.
	DefaultTimeout time.Duration
	// MaxResultItems bounds how many result items any single request may
	// materialize on the driver; requests whose result would exceed it are
	// rejected (422) and told to set a limit. The bound is enforced inside
	// the evaluation (early stop), so an oversized result never occupies
	// memory first. 0 defaults to 1,000,000; negative disables the bound.
	MaxResultItems int
	// MaxBodyBytes caps the request body. 0 defaults to 1 MiB.
	MaxBodyBytes int64
	// ProfileRing bounds the in-memory buffer of recent query profiles
	// served by GET /debug/queries. 0 defaults to 128.
	ProfileRing int
	// SlowQueryMS, when positive, logs one JSON line (the query's profile
	// snapshot) to SlowQueryLog for every evaluation whose total time
	// meets or exceeds this many milliseconds.
	SlowQueryMS int
	// SlowQueryLog receives slow-query lines. nil defaults to stderr.
	SlowQueryLog io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's handler. Off by default: profiling endpoints expose
	// internals and cost CPU, so operators opt in.
	EnablePprof bool
}

func (o Options) withDefaults(eng *rumble.Engine) Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = eng.Executors()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.MaxConcurrent
	}
	if o.PlanCacheBytes <= 0 {
		o.PlanCacheBytes = 8 << 20
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxResultItems == 0 {
		o.MaxResultItems = 1_000_000
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.ProfileRing <= 0 {
		o.ProfileRing = 128
	}
	if o.SlowQueryLog == nil {
		o.SlowQueryLog = os.Stderr
	}
	return o
}

// Server is a concurrent JSONiq query service over one engine. Create it
// with New and mount Handler on an http.Server.
type Server struct {
	eng   *rumble.Engine
	opt   Options
	cache *planCache
	sem   chan struct{}
	mux   *http.ServeMux
	ring  *profile.Ring

	inFlight atomic.Int64 // running + queued (gauge, not a counter)
	active   atomic.Int64
	qid      atomic.Int64 // query-id sequence

	m Metrics
}

// countMode bumps the per-execution-mode query counter.
func (s *Server) countMode(mode string) {
	switch mode {
	case "RDD":
		s.m.modeRDD.Add(1)
	case "DataFrame":
		s.m.modeDF.Add(1)
	case "Vector":
		s.m.modeVector.Add(1)
	default:
		s.m.modeLocal.Add(1)
	}
}

// New builds a server around eng. The engine must already have its
// collections registered; the server never mutates it.
func New(eng *rumble.Engine, opt Options) *Server {
	opt = opt.withDefaults(eng)
	s := &Server{
		eng:   eng,
		opt:   opt,
		cache: newPlanCache(opt.PlanCacheBytes),
		sem:   make(chan struct{}, opt.MaxConcurrent),
		mux:   http.NewServeMux(),
		ring:  profile.NewRing(opt.ProfileRing),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	if opt.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler serving the query API.
func (s *Server) Handler() http.Handler { return s.mux }

// queryRequest is the POST /query body.
type queryRequest struct {
	// Query is the JSONiq query text (required).
	Query string `json:"query"`
	// Limit truncates the result to at most this many items (0 = all).
	Limit int `json:"limit"`
	// Format is "json" (envelope, the default) or "ndjson" (one item per
	// line, streamed).
	Format string `json:"format"`
	// TimeoutMS overrides the server's default evaluation deadline.
	TimeoutMS int `json:"timeout_ms"`
	// Profile requests per-operator execution statistics: the envelope
	// gains a "profile" section and the /debug/queries entry carries the
	// operator breakdown. Equivalent to the profile=1 query parameter.
	Profile bool `json:"profile"`
}

// queryResponse is the JSON envelope of POST /query. The phase timings
// split where the request's wall time went: queue_ms waiting for an
// executor slot, compile_ms in parse/analysis (0 on a plan-cache hit),
// execute_ms evaluating, total_ms from arrival to the envelope being
// built. elapsed_ms remains as a deprecated alias of execute_ms.
type queryResponse struct {
	QueryID   string            `json:"query_id"`
	Items     []json.RawMessage `json:"items"`
	Count     int               `json:"count"`
	Truncated bool              `json:"truncated"`
	Cached    bool              `json:"cached"`
	Mode      string            `json:"mode"`
	QueueMS   float64           `json:"queue_ms"`
	CompileMS float64           `json:"compile_ms"`
	ExecuteMS float64           `json:"execute_ms"`
	TotalMS   float64           `json:"total_ms"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Profile   *profile.Snapshot `json:"profile,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// planDiagnostic is the wire form of one plan-verifier finding.
type planDiagnostic struct {
	Code    string `json:"code"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// writeVerifyError renders a failed plan verification (RUMBLE_VERIFY_PLANS)
// as structured diagnostics rather than one flattened string, so clients
// and operators can file the invariant code directly.
func writeVerifyError(w http.ResponseWriter, ve *compiler.VerifyError) {
	diags := make([]planDiagnostic, len(ve.Diags))
	for i, d := range ve.Diags {
		diags[i] = planDiagnostic{Code: d.Code, Line: d.Pos.Line, Col: d.Pos.Col, Message: d.Msg}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusInternalServerError)
	json.NewEncoder(w).Encode(map[string]any{
		"error":            "plan verification failed",
		"plan_diagnostics": diags,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /query")
		return
	}
	qid := fmt.Sprintf("q-%d", s.qid.Add(1))
	w.Header().Set("X-Rumble-Query-Id", qid)
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing query text")
		return
	}
	profiling := req.Profile || r.URL.Query().Get("profile") == "1"

	// The request deadline covers queue wait and evaluation both.
	ctx := r.Context()
	timeout := s.opt.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	release, admitted := s.admit(w, ctx)
	if !admitted {
		return
	}
	defer release()
	queueNS := int64(time.Since(arrival))

	// Compile (or fetch) the plan, then evaluate under the deadline.
	compileStart := time.Now()
	st, hit, err := s.cache.get(s.eng, req.Query)
	compileNS := int64(time.Since(compileStart))
	if hit {
		s.m.hits.Add(1)
	} else {
		s.m.misses.Add(1)
	}
	if err != nil {
		var ve *compiler.VerifyError
		if errors.As(err, &ve) {
			writeVerifyError(w, ve)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.m.queries.Add(1)
	s.countMode(st.Mode())

	var prof *rumble.Profile
	if profiling {
		prof = st.NewProfile()
	}
	// record builds the query's snapshot — phase timings always, the
	// operator breakdown when profiling — observes the latency histogram
	// and feeds the /debug/queries ring plus the slow-query log. It runs
	// once per evaluation, on the success and failure paths both.
	record := func(execNS, streamNS int64) {
		if prof != nil {
			prof.QueryID, prof.Query, prof.Mode = qid, req.Query, st.Mode()
			prof.Start, prof.CacheHit = arrival, hit
			prof.QueueNS, prof.CompileNS = queueNS, compileNS
			prof.ExecuteNS, prof.StreamNS = execNS, streamNS
			prof.TotalNS = int64(time.Since(arrival))
		}
		snap := prof.Snapshot()
		if prof == nil {
			snap = profile.Snapshot{
				QueryID: qid, Query: req.Query, Mode: st.Mode(),
				Time: arrival, CacheHit: hit,
				QueueMS: float64(queueNS) / 1e6, CompileMS: float64(compileNS) / 1e6,
				ExecuteMS: float64(execNS) / 1e6, StreamMS: float64(streamNS) / 1e6,
				TotalMS: float64(time.Since(arrival)) / 1e6,
			}
		}
		s.m.observeLatency(st.Mode(), time.Duration(execNS))
		s.ring.Add(snap)
		if s.opt.SlowQueryMS > 0 && snap.TotalMS >= float64(s.opt.SlowQueryMS) {
			line, _ := json.Marshal(snap)
			fmt.Fprintf(s.opt.SlowQueryLog, "rumble: slow query: %s\n", line)
		}
	}

	start := time.Now()
	// The request is bounded inside the evaluation itself: fetch one item
	// past the client's limit (to detect truncation) or past the server's
	// result bound (to detect overflow) without materializing the rest.
	bound := s.opt.MaxResultItems
	fetch := 0
	switch {
	case req.Limit > 0 && (bound <= 0 || req.Limit <= bound):
		fetch = req.Limit + 1
	case bound > 0:
		fetch = bound + 1
	}
	items, err := st.CollectProfiled(ctx, fetch, prof)
	execNS := int64(time.Since(start))
	if err != nil {
		record(execNS, 0)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.m.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "query exceeded its deadline")
		case errors.Is(err, context.Canceled):
			s.m.cancelled.Add(1) // client went away; nobody reads the response
		case errors.Is(err, spark.ErrResultTooLarge):
			s.m.errors.Add(1)
			writeError(w, http.StatusUnprocessableEntity,
				"result exceeds the server's max result size; request a limit")
		default:
			s.m.errors.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}

	// Truncate to the client's limit first: a result truncated to a limit
	// within the bound is always servable, whatever the untruncated size.
	truncated := false
	if req.Limit > 0 && len(items) > req.Limit {
		items = items[:req.Limit]
		truncated = true
	}
	if bound > 0 && len(items) > bound {
		record(execNS, 0)
		s.m.errors.Add(1)
		writeError(w, http.StatusUnprocessableEntity,
			"result exceeds the server bound of %d items; request a limit", bound)
		return
	}

	w.Header().Set("X-Rumble-Plan-Cache", cacheHeader(hit))
	w.Header().Set("X-Rumble-Mode", st.Mode())
	if req.Format == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		streamStart := time.Now()
		for i, it := range items {
			// A client that disconnects (or a deadline expiring)
			// mid-stream stops the writes.
			if i&255 == 0 && ctx.Err() != nil {
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					s.m.timeouts.Add(1)
				} else {
					s.m.cancelled.Add(1)
				}
				record(execNS, int64(time.Since(streamStart)))
				return
			}
			w.Write(it.AppendJSON(nil))
			w.Write([]byte("\n"))
		}
		record(execNS, int64(time.Since(streamStart)))
		return
	}
	resp := queryResponse{
		QueryID:   qid,
		Items:     make([]json.RawMessage, len(items)),
		Count:     len(items),
		Truncated: truncated,
		Cached:    hit,
		Mode:      st.Mode(),
		QueueMS:   float64(queueNS) / 1e6,
		CompileMS: float64(compileNS) / 1e6,
		ExecuteMS: float64(execNS) / 1e6,
		TotalMS:   float64(time.Since(arrival)) / 1e6,
		ElapsedMS: float64(execNS) / 1e6,
	}
	if prof != nil {
		// The envelope's profile section is rendered before the response
		// streams, so its stream_ms is necessarily 0; the /debug/queries
		// entry (recorded after encoding) carries the measured value.
		prof.QueryID, prof.Query, prof.Mode = qid, req.Query, st.Mode()
		prof.Start, prof.CacheHit = arrival, hit
		prof.QueueNS, prof.CompileNS = queueNS, compileNS
		prof.ExecuteNS = execNS
		prof.TotalNS = int64(time.Since(arrival))
		snap := prof.Snapshot()
		resp.Profile = &snap
	}
	for i, it := range items {
		resp.Items[i] = it.AppendJSON(nil)
	}
	w.Header().Set("Content-Type", "application/json")
	streamStart := time.Now()
	json.NewEncoder(w).Encode(resp)
	record(execNS, int64(time.Since(streamStart)))
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// admit applies the two-stage admission control: first bound the total of
// running plus queued requests (reject with 429 beyond the queue), then
// wait for an evaluation slot under ctx. When admitted is true the caller
// owns a slot and must call release; otherwise the response has already
// been written (or the client is gone).
func (s *Server) admit(w http.ResponseWriter, ctx context.Context) (release func(), admitted bool) {
	if s.inFlight.Add(1) > int64(s.opt.MaxConcurrent+s.opt.QueueDepth) {
		s.inFlight.Add(-1)
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d running, %d queued)",
			s.opt.MaxConcurrent, s.opt.QueueDepth)
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.inFlight.Add(-1)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.m.timeouts.Add(1)
			writeError(w, http.StatusServiceUnavailable, "timed out waiting for an executor slot")
		} else {
			s.m.cancelled.Add(1)
		}
		return nil, false
	}
	s.active.Add(1)
	return func() {
		s.active.Add(-1)
		<-s.sem
		s.inFlight.Add(-1)
	}, true
}

// handleExplain serves the mode-annotated physical plan of ?q=<query>
// (alias ?query=) as text/plain, without executing it. Compilation is CPU
// work too, so explain requests pass through the same admission control as
// queries — a flood of compile-heavy explains cannot starve the pool.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /explain?q=<query>")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		q = r.URL.Query().Get("query")
	}
	if strings.TrimSpace(q) == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	ctx := r.Context()
	if s.opt.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.DefaultTimeout)
		defer cancel()
	}
	release, admitted := s.admit(w, ctx)
	if !admitted {
		return
	}
	defer release()
	plan, err := s.eng.Explain(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, plan)
}

// handleMetrics serves server counters next to the engine's cluster
// counters. The default rendering is one JSON document; a client whose
// Accept header asks for text/plain (a Prometheus scraper) gets the
// text exposition format instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, s.Metrics(), s.eng.Metrics())
		return
	}
	snap := struct {
		Server MetricsSnapshot       `json:"server"`
		Engine spark.MetricsSnapshot `json:"engine"`
	}{Server: s.Metrics(), Engine: s.eng.Metrics()}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

// wantsPrometheus reports whether the request negotiates the Prometheus
// text format: any Accept entry of text/plain (with or without the
// version parameter Prometheus sends) that is not outranked by an
// explicit application/json entry earlier in the list.
func wantsPrometheus(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "application/json":
			return false
		case "text/plain":
			return true
		}
	}
	return false
}

// handleDebugQueries serves the bounded ring of recent query profiles,
// newest first. Entries always carry the query id, mode and phase
// timings; the per-operator breakdown is present for queries that ran
// with profile=1.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /debug/queries")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"queries": s.ring.Snapshots()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

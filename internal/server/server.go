// Package server exposes a rumble Engine as a long-lived concurrent HTTP
// query service — the mode in which the paper's Rumble backs Jupyter
// notebooks. It adds three things on top of the library API:
//
//   - a compiled-plan LRU cache keyed by normalized query text (comments
//     stripped, whitespace collapsed outside string literals), so hot
//     queries — even trivially reformatted ones — skip parse / static
//     analysis / join detection / vector compilation entirely;
//   - admission control: a semaphore sized against the engine's executor
//     slots plus a bounded wait queue, so N concurrent clients degrade
//     gracefully (429) instead of oversubscribing the executor pool;
//   - per-request deadlines and cancellation threaded through evaluation
//     via context.Context — a client that disconnects or times out frees
//     its executor slots promptly.
//
// Endpoints: POST /query, GET /explain, GET /metrics, GET /healthz. Every
// query response reports the execution mode the compiler chose (envelope
// "mode" field and X-Rumble-Mode header: Local, RDD, DataFrame or
// Vector), and /metrics counts evaluations per mode. See docs/server.md
// for the full API reference.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"rumble"
	"rumble/internal/compiler"
	"rumble/internal/spark"
)

// Options tunes a Server. The zero value gives sensible defaults sized
// against the engine.
type Options struct {
	// MaxConcurrent bounds query evaluations running at once. Each
	// evaluation may spawn up to Executors worker goroutines per stage, so
	// this is the knob that keeps N clients from oversubscribing the pool.
	// 0 defaults to the engine's executor count.
	MaxConcurrent int
	// QueueDepth bounds requests allowed to wait for an evaluation slot
	// beyond MaxConcurrent; anything past that is rejected with 429.
	// 0 defaults to 2×MaxConcurrent.
	QueueDepth int
	// PlanCacheBytes bounds the compiled-plan LRU by approximate resident
	// bytes (each entry is charged a cost derived from its query length),
	// evicting least-recently-used plans past the budget. 0 defaults to
	// 8 MiB.
	PlanCacheBytes int64
	// DefaultTimeout is the evaluation deadline applied when a request
	// carries no timeout_ms. 0 defaults to 30s; negative disables the
	// default deadline.
	DefaultTimeout time.Duration
	// MaxResultItems bounds how many result items any single request may
	// materialize on the driver; requests whose result would exceed it are
	// rejected (422) and told to set a limit. The bound is enforced inside
	// the evaluation (early stop), so an oversized result never occupies
	// memory first. 0 defaults to 1,000,000; negative disables the bound.
	MaxResultItems int
	// MaxBodyBytes caps the request body. 0 defaults to 1 MiB.
	MaxBodyBytes int64
}

func (o Options) withDefaults(eng *rumble.Engine) Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = eng.Executors()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.MaxConcurrent
	}
	if o.PlanCacheBytes <= 0 {
		o.PlanCacheBytes = 8 << 20
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxResultItems == 0 {
		o.MaxResultItems = 1_000_000
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// Metrics is a snapshot of the server's own counters, served by /metrics
// next to the engine's cluster counters.
type Metrics struct {
	// Queries counts evaluations started (admitted past the queue).
	Queries int64 `json:"queries"`
	// Errors counts evaluations that failed with a query error.
	Errors int64 `json:"errors"`
	// Rejected counts requests turned away with 429 (queue full).
	Rejected int64 `json:"rejected"`
	// Timeouts counts requests that exceeded their deadline.
	Timeouts int64 `json:"timeouts"`
	// Cancelled counts requests whose client went away mid-flight.
	Cancelled int64 `json:"cancelled"`
	// CacheHits / CacheMisses count compiled-plan cache outcomes.
	CacheHits   int64 `json:"plan_cache_hits"`
	CacheMisses int64 `json:"plan_cache_misses"`
	// ModeLocal..ModeVector count evaluations by the execution mode the
	// compiler statically assigned to the query's root (the same value the
	// envelope's "mode" field and X-Rumble-Mode header report).
	ModeLocal     int64 `json:"queries_mode_local"`
	ModeRDD       int64 `json:"queries_mode_rdd"`
	ModeDataFrame int64 `json:"queries_mode_dataframe"`
	ModeVector    int64 `json:"queries_mode_vector"`
	// CachedPlans is the current number of cached statements; CacheBytes
	// their approximate resident footprint, the quantity the cache is
	// bounded by.
	CachedPlans int   `json:"plan_cache_size"`
	CacheBytes  int64 `json:"plan_cache_bytes"`
	// Active is the number of evaluations running right now; Queued the
	// number waiting for a slot.
	Active int64 `json:"active"`
	Queued int64 `json:"queued"`
}

// Server is a concurrent JSONiq query service over one engine. Create it
// with New and mount Handler on an http.Server.
type Server struct {
	eng   *rumble.Engine
	opt   Options
	cache *planCache
	sem   chan struct{}
	mux   *http.ServeMux

	inFlight  atomic.Int64 // running + queued
	active    atomic.Int64
	queries   atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64
	timeouts  atomic.Int64
	cancelled atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64

	modeLocal  atomic.Int64
	modeRDD    atomic.Int64
	modeDF     atomic.Int64
	modeVector atomic.Int64
}

// countMode bumps the per-execution-mode query counter.
func (s *Server) countMode(mode string) {
	switch mode {
	case "RDD":
		s.modeRDD.Add(1)
	case "DataFrame":
		s.modeDF.Add(1)
	case "Vector":
		s.modeVector.Add(1)
	default:
		s.modeLocal.Add(1)
	}
}

// New builds a server around eng. The engine must already have its
// collections registered; the server never mutates it.
func New(eng *rumble.Engine, opt Options) *Server {
	opt = opt.withDefaults(eng)
	s := &Server{
		eng:   eng,
		opt:   opt,
		cache: newPlanCache(opt.PlanCacheBytes),
		sem:   make(chan struct{}, opt.MaxConcurrent),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler serving the query API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	active := s.active.Load()
	return Metrics{
		Queries:       s.queries.Load(),
		Errors:        s.errors.Load(),
		Rejected:      s.rejected.Load(),
		Timeouts:      s.timeouts.Load(),
		Cancelled:     s.cancelled.Load(),
		CacheHits:     s.hits.Load(),
		CacheMisses:   s.misses.Load(),
		ModeLocal:     s.modeLocal.Load(),
		ModeRDD:       s.modeRDD.Load(),
		ModeDataFrame: s.modeDF.Load(),
		ModeVector:    s.modeVector.Load(),
		CachedPlans:   s.cache.len(),
		CacheBytes:    s.cache.size(),
		Active:        active,
		Queued:        s.inFlight.Load() - active,
	}
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Query is the JSONiq query text (required).
	Query string `json:"query"`
	// Limit truncates the result to at most this many items (0 = all).
	Limit int `json:"limit"`
	// Format is "json" (envelope, the default) or "ndjson" (one item per
	// line, streamed).
	Format string `json:"format"`
	// TimeoutMS overrides the server's default evaluation deadline.
	TimeoutMS int `json:"timeout_ms"`
}

// queryResponse is the JSON envelope of POST /query.
type queryResponse struct {
	Items     []json.RawMessage `json:"items"`
	Count     int               `json:"count"`
	Truncated bool              `json:"truncated"`
	Cached    bool              `json:"cached"`
	Mode      string            `json:"mode"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// planDiagnostic is the wire form of one plan-verifier finding.
type planDiagnostic struct {
	Code    string `json:"code"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// writeVerifyError renders a failed plan verification (RUMBLE_VERIFY_PLANS)
// as structured diagnostics rather than one flattened string, so clients
// and operators can file the invariant code directly.
func writeVerifyError(w http.ResponseWriter, ve *compiler.VerifyError) {
	diags := make([]planDiagnostic, len(ve.Diags))
	for i, d := range ve.Diags {
		diags[i] = planDiagnostic{Code: d.Code, Line: d.Pos.Line, Col: d.Pos.Col, Message: d.Msg}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusInternalServerError)
	json.NewEncoder(w).Encode(map[string]any{
		"error":            "plan verification failed",
		"plan_diagnostics": diags,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON body to /query")
		return
	}
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing query text")
		return
	}

	// The request deadline covers queue wait and evaluation both.
	ctx := r.Context()
	timeout := s.opt.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	release, admitted := s.admit(w, ctx)
	if !admitted {
		return
	}
	defer release()

	// Compile (or fetch) the plan, then evaluate under the deadline.
	st, hit, err := s.cache.get(s.eng, req.Query)
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	if err != nil {
		var ve *compiler.VerifyError
		if errors.As(err, &ve) {
			writeVerifyError(w, ve)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.queries.Add(1)
	s.countMode(st.Mode())
	start := time.Now()
	// The request is bounded inside the evaluation itself: fetch one item
	// past the client's limit (to detect truncation) or past the server's
	// result bound (to detect overflow) without materializing the rest.
	bound := s.opt.MaxResultItems
	fetch := 0
	switch {
	case req.Limit > 0 && (bound <= 0 || req.Limit <= bound):
		fetch = req.Limit + 1
	case bound > 0:
		fetch = bound + 1
	}
	items, err := st.CollectContextLimit(ctx, fetch)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "query exceeded its deadline")
		case errors.Is(err, context.Canceled):
			s.cancelled.Add(1) // client went away; nobody reads the response
		case errors.Is(err, spark.ErrResultTooLarge):
			s.errors.Add(1)
			writeError(w, http.StatusUnprocessableEntity,
				"result exceeds the server's max result size; request a limit")
		default:
			s.errors.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	elapsed := time.Since(start)

	// Truncate to the client's limit first: a result truncated to a limit
	// within the bound is always servable, whatever the untruncated size.
	truncated := false
	if req.Limit > 0 && len(items) > req.Limit {
		items = items[:req.Limit]
		truncated = true
	}
	if bound > 0 && len(items) > bound {
		s.errors.Add(1)
		writeError(w, http.StatusUnprocessableEntity,
			"result exceeds the server bound of %d items; request a limit", bound)
		return
	}

	w.Header().Set("X-Rumble-Plan-Cache", cacheHeader(hit))
	w.Header().Set("X-Rumble-Mode", st.Mode())
	if req.Format == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i, it := range items {
			// A client that disconnects (or a deadline expiring)
			// mid-stream stops the writes.
			if i&255 == 0 && ctx.Err() != nil {
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					s.timeouts.Add(1)
				} else {
					s.cancelled.Add(1)
				}
				return
			}
			w.Write(it.AppendJSON(nil))
			w.Write([]byte("\n"))
		}
		return
	}
	resp := queryResponse{
		Items:     make([]json.RawMessage, len(items)),
		Count:     len(items),
		Truncated: truncated,
		Cached:    hit,
		Mode:      st.Mode(),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	for i, it := range items {
		resp.Items[i] = it.AppendJSON(nil)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// admit applies the two-stage admission control: first bound the total of
// running plus queued requests (reject with 429 beyond the queue), then
// wait for an evaluation slot under ctx. When admitted is true the caller
// owns a slot and must call release; otherwise the response has already
// been written (or the client is gone).
func (s *Server) admit(w http.ResponseWriter, ctx context.Context) (release func(), admitted bool) {
	if s.inFlight.Add(1) > int64(s.opt.MaxConcurrent+s.opt.QueueDepth) {
		s.inFlight.Add(-1)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d running, %d queued)",
			s.opt.MaxConcurrent, s.opt.QueueDepth)
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.inFlight.Add(-1)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.timeouts.Add(1)
			writeError(w, http.StatusServiceUnavailable, "timed out waiting for an executor slot")
		} else {
			s.cancelled.Add(1)
		}
		return nil, false
	}
	s.active.Add(1)
	return func() {
		s.active.Add(-1)
		<-s.sem
		s.inFlight.Add(-1)
	}, true
}

// handleExplain serves the mode-annotated physical plan of ?q=<query>
// (alias ?query=) as text/plain, without executing it. Compilation is CPU
// work too, so explain requests pass through the same admission control as
// queries — a flood of compile-heavy explains cannot starve the pool.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /explain?q=<query>")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		q = r.URL.Query().Get("query")
	}
	if strings.TrimSpace(q) == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	ctx := r.Context()
	if s.opt.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.DefaultTimeout)
		defer cancel()
	}
	release, admitted := s.admit(w, ctx)
	if !admitted {
		return
	}
	defer release()
	plan, err := s.eng.Explain(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, plan)
}

// handleMetrics serves server counters next to the engine's cluster
// counters as one JSON document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := struct {
		Server Metrics               `json:"server"`
		Engine spark.MetricsSnapshot `json:"engine"`
	}{Server: s.Metrics(), Engine: s.eng.Metrics()}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

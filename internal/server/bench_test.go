package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rumble"
)

// compileHeavyQuery builds a query whose compilation cost dwarfs its
// evaluation cost: a large arithmetic expression hidden in a dead if
// branch, so the parser and static analyzer walk ~terms nodes while the
// evaluator only ever touches the condition and the else branch. salt
// makes the text (and therefore the cache key) unique without changing
// the result.
func compileHeavyQuery(terms, salt int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "if (1 eq 2) then (%d", salt)
	for i := 0; i < terms; i++ {
		fmt.Fprintf(&b, " + %d", i)
	}
	b.WriteString(") else 0")
	return b.String()
}

// BenchmarkServer_HotQueryPlanCache contrasts serving a hot query from the
// compiled-plan cache against cold-compiling it on every request. The two
// sub-benchmarks run the identical handler path; only the cache key
// differs, so the per-op gap is the parse+analyze+compile cost the cache
// removes.
func BenchmarkServer_HotQueryPlanCache(b *testing.B) {
	serve := func(b *testing.B, srv *Server, query string) {
		b.Helper()
		body, _ := json.Marshal(queryRequest{Query: query})
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	const terms = 4000
	b.Run("cache-hit", func(b *testing.B) {
		srv := New(rumble.New(rumble.Config{}), Options{})
		query := compileHeavyQuery(terms, 0)
		serve(b, srv, query) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(b, srv, query)
		}
		if srv.Metrics().CacheHits != int64(b.N) {
			b.Fatalf("hits = %d, want %d", srv.Metrics().CacheHits, b.N)
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		srv := New(rumble.New(rumble.Config{}), Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(b, srv, compileHeavyQuery(terms, i+1))
		}
		if srv.Metrics().CacheMisses != int64(b.N) {
			b.Fatalf("misses = %d, want %d", srv.Metrics().CacheMisses, b.N)
		}
	})
}

package server

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"rumble/internal/spark"
)

// histBuckets is the bucket count of the per-mode latency histograms:
// fifteen log-scale finite buckets plus the +Inf overflow bucket.
const histBuckets = 16

// histLimitMS returns the upper bound (in milliseconds) of finite bucket
// i: 0.25ms·2^i, i.e. 0.25ms, 0.5ms, 1ms, ... 4096ms. The last bucket
// (i = histBuckets-1) is +Inf.
func histLimitMS(i int) float64 { return 0.25 * float64(int64(1)<<i) }

// histBucketFor maps a latency to its (non-cumulative) bucket index.
func histBucketFor(d time.Duration) int {
	ms := float64(d) / float64(time.Millisecond)
	for i := 0; i < histBuckets-1; i++ {
		if ms <= histLimitMS(i) {
			return i
		}
	}
	return histBuckets - 1
}

// Metrics holds the server's live counters. Every atomic field must be
// snapshotted in Metrics(), zeroed in ResetMetrics() and carried by an
// exported MetricsSnapshot field — the metricsreg analyzer enforces all
// three, including the histogram bucket arrays.
type Metrics struct {
	queries   atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64
	timeouts  atomic.Int64
	cancelled atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64

	modeLocal  atomic.Int64
	modeRDD    atomic.Int64
	modeDF     atomic.Int64
	modeVector atomic.Int64

	// Per-mode query latency histograms (execution time, log-scale
	// buckets) and their running sums. Bucket counts are per-bucket, not
	// cumulative; the Prometheus rendering accumulates them.
	histLocal   [histBuckets]atomic.Int64
	histRDD     [histBuckets]atomic.Int64
	histDF      [histBuckets]atomic.Int64
	histVector  [histBuckets]atomic.Int64
	sumLocalNS  atomic.Int64
	sumRDDNS    atomic.Int64
	sumDFNS     atomic.Int64
	sumVectorNS atomic.Int64
}

// observeLatency records one query evaluation's execution latency under
// its execution mode.
func (m *Metrics) observeLatency(mode string, d time.Duration) {
	i := histBucketFor(d)
	switch mode {
	case "RDD":
		m.histRDD[i].Add(1)
		m.sumRDDNS.Add(int64(d))
	case "DataFrame":
		m.histDF[i].Add(1)
		m.sumDFNS.Add(int64(d))
	case "Vector":
		m.histVector[i].Add(1)
		m.sumVectorNS.Add(int64(d))
	default:
		m.histLocal[i].Add(1)
		m.sumLocalNS.Add(int64(d))
	}
}

// HistogramSnapshot is the JSON rendering of one latency histogram.
// Counts are per-bucket (not cumulative); LeMS holds the finite upper
// bounds, so len(Counts) == len(LeMS)+1 and the last count is overflow.
type HistogramSnapshot struct {
	LeMS   []float64 `json:"le_ms"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	SumMS  float64   `json:"sum_ms"`
}

// MetricsSnapshot is a plain-value copy of the server counters, served by
// /metrics next to the engine's cluster counters.
type MetricsSnapshot struct {
	// Queries counts evaluations started (admitted past the queue).
	Queries int64 `json:"queries"`
	// Errors counts evaluations that failed with a query error.
	Errors int64 `json:"errors"`
	// Rejected counts requests turned away with 429 (queue full).
	Rejected int64 `json:"rejected"`
	// Timeouts counts requests that exceeded their deadline.
	Timeouts int64 `json:"timeouts"`
	// Cancelled counts requests whose client went away mid-flight.
	Cancelled int64 `json:"cancelled"`
	// CacheHits / CacheMisses count compiled-plan cache outcomes.
	CacheHits   int64 `json:"plan_cache_hits"`
	CacheMisses int64 `json:"plan_cache_misses"`
	// ModeLocal..ModeVector count evaluations by the execution mode the
	// compiler statically assigned to the query's root (the same value the
	// envelope's "mode" field and X-Rumble-Mode header report).
	ModeLocal     int64 `json:"queries_mode_local"`
	ModeRDD       int64 `json:"queries_mode_rdd"`
	ModeDataFrame int64 `json:"queries_mode_dataframe"`
	ModeVector    int64 `json:"queries_mode_vector"`
	// LatencyLocal..LatencyVector are the per-mode execution-latency
	// histograms over fixed log-scale buckets.
	LatencyLocal     HistogramSnapshot `json:"latency_local"`
	LatencyRDD       HistogramSnapshot `json:"latency_rdd"`
	LatencyDataFrame HistogramSnapshot `json:"latency_dataframe"`
	LatencyVector    HistogramSnapshot `json:"latency_vector"`
	// CachedPlans is the current number of cached statements; CacheBytes
	// their approximate resident footprint, the quantity the cache is
	// bounded by.
	CachedPlans int   `json:"plan_cache_size"`
	CacheBytes  int64 `json:"plan_cache_bytes"`
	// Active is the number of evaluations running right now; Queued the
	// number waiting for a slot.
	Active int64 `json:"active"`
	Queued int64 `json:"queued"`
}

// newHistSnapshot returns a histogram rendering with the bucket bounds
// filled in and the counts zeroed, ready for the snapshot loop.
func newHistSnapshot(sumNS int64) HistogramSnapshot {
	h := HistogramSnapshot{
		LeMS:   make([]float64, histBuckets-1),
		Counts: make([]int64, histBuckets),
		SumMS:  float64(sumNS) / 1e6,
	}
	for i := 0; i < histBuckets-1; i++ {
		h.LeMS[i] = histLimitMS(i)
	}
	return h
}

// total sums the per-bucket counts into Count.
func (h *HistogramSnapshot) total() {
	h.Count = 0
	for _, c := range h.Counts {
		h.Count += c
	}
}

// Metrics snapshots the server counters. The histogram bucket loads are
// spelled out here (not in a helper) so the metricsreg analyzer can see
// each bucket array flow into the snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	m := &s.m
	active := s.active.Load()
	snap := MetricsSnapshot{
		Queries:          m.queries.Load(),
		Errors:           m.errors.Load(),
		Rejected:         m.rejected.Load(),
		Timeouts:         m.timeouts.Load(),
		Cancelled:        m.cancelled.Load(),
		CacheHits:        m.hits.Load(),
		CacheMisses:      m.misses.Load(),
		ModeLocal:        m.modeLocal.Load(),
		ModeRDD:          m.modeRDD.Load(),
		ModeDataFrame:    m.modeDF.Load(),
		ModeVector:       m.modeVector.Load(),
		LatencyLocal:     newHistSnapshot(m.sumLocalNS.Load()),
		LatencyRDD:       newHistSnapshot(m.sumRDDNS.Load()),
		LatencyDataFrame: newHistSnapshot(m.sumDFNS.Load()),
		LatencyVector:    newHistSnapshot(m.sumVectorNS.Load()),
		CachedPlans:      s.cache.len(),
		CacheBytes:       s.cache.size(),
		Active:           active,
		Queued:           s.inFlight.Load() - active,
	}
	for i := 0; i < histBuckets; i++ {
		snap.LatencyLocal.Counts[i] = m.histLocal[i].Load()
		snap.LatencyRDD.Counts[i] = m.histRDD[i].Load()
		snap.LatencyDataFrame.Counts[i] = m.histDF[i].Load()
		snap.LatencyVector.Counts[i] = m.histVector[i].Load()
	}
	snap.LatencyLocal.total()
	snap.LatencyRDD.total()
	snap.LatencyDataFrame.total()
	snap.LatencyVector.total()
	return snap
}

// ResetMetrics zeroes the server counters (cache contents and in-flight
// gauges are state, not counters, and are left alone).
func (s *Server) ResetMetrics() {
	m := &s.m
	m.queries.Store(0)
	m.errors.Store(0)
	m.rejected.Store(0)
	m.timeouts.Store(0)
	m.cancelled.Store(0)
	m.hits.Store(0)
	m.misses.Store(0)
	m.modeLocal.Store(0)
	m.modeRDD.Store(0)
	m.modeDF.Store(0)
	m.modeVector.Store(0)
	for i := 0; i < histBuckets; i++ {
		m.histLocal[i].Store(0)
		m.histRDD[i].Store(0)
		m.histDF[i].Store(0)
		m.histVector[i].Store(0)
	}
	m.sumLocalNS.Store(0)
	m.sumRDDNS.Store(0)
	m.sumDFNS.Store(0)
	m.sumVectorNS.Store(0)
}

// writePrometheus renders the server and engine counters in the
// Prometheus text exposition format (version 0.0.4). Histogram buckets
// accumulate left to right and carry le labels in seconds, per the
// Prometheus convention.
func writePrometheus(w io.Writer, srv MetricsSnapshot, eng spark.MetricsSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("rumble_queries_total", "Query evaluations started.", srv.Queries)
	counter("rumble_query_errors_total", "Query evaluations that failed.", srv.Errors)
	counter("rumble_rejected_total", "Requests rejected with 429.", srv.Rejected)
	counter("rumble_timeouts_total", "Requests that exceeded their deadline.", srv.Timeouts)
	counter("rumble_cancelled_total", "Requests whose client went away.", srv.Cancelled)
	counter("rumble_plan_cache_hits_total", "Compiled-plan cache hits.", srv.CacheHits)
	counter("rumble_plan_cache_misses_total", "Compiled-plan cache misses.", srv.CacheMisses)

	fmt.Fprintf(w, "# HELP rumble_queries_mode_total Query evaluations by execution mode.\n# TYPE rumble_queries_mode_total counter\n")
	for _, mc := range []struct {
		mode string
		n    int64
	}{{"local", srv.ModeLocal}, {"rdd", srv.ModeRDD}, {"dataframe", srv.ModeDataFrame}, {"vector", srv.ModeVector}} {
		fmt.Fprintf(w, "rumble_queries_mode_total{mode=%q} %d\n", mc.mode, mc.n)
	}

	fmt.Fprintf(w, "# HELP rumble_query_duration_seconds Query execution latency by mode.\n# TYPE rumble_query_duration_seconds histogram\n")
	for _, mh := range []struct {
		mode string
		h    HistogramSnapshot
	}{{"local", srv.LatencyLocal}, {"rdd", srv.LatencyRDD}, {"dataframe", srv.LatencyDataFrame}, {"vector", srv.LatencyVector}} {
		var cum int64
		for i, le := range mh.h.LeMS {
			cum += mh.h.Counts[i]
			fmt.Fprintf(w, "rumble_query_duration_seconds_bucket{mode=%q,le=%q} %d\n",
				mh.mode, formatLE(le/1000), cum)
		}
		fmt.Fprintf(w, "rumble_query_duration_seconds_bucket{mode=%q,le=\"+Inf\"} %d\n", mh.mode, mh.h.Count)
		fmt.Fprintf(w, "rumble_query_duration_seconds_sum{mode=%q} %s\n", mh.mode, formatLE(mh.h.SumMS/1000))
		fmt.Fprintf(w, "rumble_query_duration_seconds_count{mode=%q} %d\n", mh.mode, mh.h.Count)
	}

	gauge("rumble_plan_cache_size", "Compiled plans resident in the cache.", int64(srv.CachedPlans))
	gauge("rumble_plan_cache_bytes", "Approximate resident bytes of cached plans.", srv.CacheBytes)
	gauge("rumble_active_queries", "Evaluations running right now.", srv.Active)
	gauge("rumble_queued_queries", "Requests waiting for an executor slot.", srv.Queued)

	counter("rumble_engine_tasks_total", "Cluster partition tasks run.", eng.TasksRun)
	fmt.Fprintf(w, "# HELP rumble_engine_task_seconds_total Aggregated task time over the cluster.\n# TYPE rumble_engine_task_seconds_total counter\nrumble_engine_task_seconds_total %s\n",
		formatLE(eng.TaskTime.Seconds()))
	counter("rumble_engine_records_read_total", "Records read by scans.", eng.RecordsRead)
	counter("rumble_engine_shuffle_records_total", "Records shuffled between stages.", eng.ShuffleRecords)
	counter("rumble_engine_broadcast_records_total", "Build-side records broadcast for hash joins.", eng.BroadcastRecords)
	counter("rumble_engine_stages_total", "Cluster stages run.", eng.StagesRun)
	counter("rumble_engine_vector_runs_total", "Vector-backend pipeline evaluations.", eng.VectorRuns)
	counter("rumble_engine_vector_morsels_total", "Scan morsels processed by the vector backend.", eng.VectorMorsels)
	counter("rumble_engine_vector_workers_total", "Worker tasks launched by the vector backend.", eng.VectorWorkers)
	counter("rumble_engine_vector_sort_runs_total", "Vector pipeline evaluations that ran a columnar sort.", eng.VectorSortRuns)
	counter("rumble_engine_vector_topk_runs_total", "Vector pipeline evaluations that ran a fused top-k.", eng.VectorTopKRuns)
	counter("rumble_engine_vector_join_rows_total", "Rows emitted by vector hash-join probes.", eng.VectorJoinRows)
	counter("rumble_engine_segments_read_total", "Columnar segments scanned by the vector backend.", eng.SegmentsRead)
	counter("rumble_engine_segments_skipped_total", "Segments skipped wholesale by zone-map pruning.", eng.SegmentsSkipped)
	counter("rumble_engine_segment_cache_hits_total", "Segment buffer-pool hits.", eng.SegmentCacheHits)
	counter("rumble_engine_segment_cache_miss_total", "Cold segment reads that decoded from disk.", eng.SegmentCacheMiss)
}

// formatLE renders a float the way Prometheus le labels and sample
// values expect: shortest plain decimal, no exponent for the bucket
// range we use.
func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

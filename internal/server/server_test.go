package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rumble"
)

// post sends a query request to ts and returns status plus body.
func post(t *testing.T, ts *httptest.Server, req queryRequest) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func decodeEnvelope(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad envelope %q: %v", body, err)
	}
	return resp
}

// waitUntil polls cond for up to timeout.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// slowFixture writes a JSON-Lines file and returns a server whose engine
// reads it with simulated storage latency: the query
// count(json-file(path)) takes roughly blocks×latency to evaluate and is
// cancellable between parsed lines.
func slowFixture(t *testing.T, blocks int, latency time.Duration, opt Options) (*Server, *httptest.Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "slow.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bytes.Buffer{}
	line := []byte(`{"v": 1, "pad": "` + strings.Repeat("x", 100) + `"}` + "\n")
	for w.Len() < blocks*64*1024 {
		w.Write(line)
	}
	if _, err := f.Write(w.Bytes()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	eng := rumble.New(rumble.Config{Parallelism: 2, Executors: 1, IOLatency: latency})
	srv := New(eng, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, path
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	eng := rumble.New(rumble.Config{Parallelism: 4, Executors: 4})
	srv := New(eng, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestServerQueryEnvelope(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	code, body := post(t, ts, queryRequest{Query: `for $x in parallelize(1 to 5) return $x * $x`})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	resp := decodeEnvelope(t, body)
	if resp.Count != 5 || string(resp.Items[4]) != "25" {
		t.Errorf("envelope = %+v", resp)
	}
	if resp.Cached {
		t.Error("first request claimed a cache hit")
	}
	if resp.Mode != "DataFrame" {
		t.Errorf("mode = %q, want DataFrame", resp.Mode)
	}
	// Second time around: same plan, served from the cache — observable in
	// both the envelope and the server metrics.
	code, body = post(t, ts, queryRequest{Query: `for $x in parallelize(1 to 5) return $x * $x`})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if resp := decodeEnvelope(t, body); !resp.Cached {
		t.Error("hot query did not hit the plan cache")
	}
	m := srv.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.CachedPlans != 1 {
		t.Errorf("cache metrics = %+v", m)
	}
}

func TestServerQueryNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := json.Marshal(queryRequest{Query: `parallelize((1, 2, 3))`, Format: "ndjson"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if got := string(out); got != "1\n2\n3\n" {
		t.Errorf("ndjson body = %q", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	if h := resp.Header.Get("X-Rumble-Plan-Cache"); h != "miss" {
		t.Errorf("plan cache header = %q", h)
	}
}

func TestServerQueryLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := post(t, ts, queryRequest{Query: `1 to 100`, Limit: 3})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	resp := decodeEnvelope(t, body)
	if resp.Count != 3 || !resp.Truncated {
		t.Errorf("limit not applied: %+v", resp)
	}
	// An under-limit result is not marked truncated.
	code, body = post(t, ts, queryRequest{Query: `1 to 2`, Limit: 3})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if resp := decodeEnvelope(t, body); resp.Count != 2 || resp.Truncated {
		t.Errorf("under-limit result: %+v", resp)
	}
}

// TestServerLimitBoundsEvaluation pins that the limit is pushed into the
// evaluation: a limited request over an astronomically large sequence must
// answer fast via early stop, not materialize the result first.
func TestServerLimitBoundsEvaluation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	start := time.Now()
	code, body := post(t, ts, queryRequest{Query: `1 to 10000000000`, Limit: 5})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	resp := decodeEnvelope(t, body)
	if resp.Count != 5 || !resp.Truncated || string(resp.Items[4]) != "5" {
		t.Errorf("limited result = %+v", resp)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("limited request took %v — limit not pushed into evaluation", d)
	}
}

// TestServerMaxResultItems pins the server-wide result bound: an
// unlimited oversized result is rejected with 422 without being
// materialized, and a limited request within the bound still works.
func TestServerMaxResultItems(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxResultItems: 100})
	code, body := post(t, ts, queryRequest{Query: `1 to 10000000000`})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized result status = %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte("request a limit")) {
		t.Errorf("unhelpful bound error: %s", body)
	}
	if code, _ := post(t, ts, queryRequest{Query: `1 to 10000000000`, Limit: 10}); code != http.StatusOK {
		t.Errorf("limited request within bound status = %d", code)
	}
	// A limit above the bound cannot smuggle an oversized result through.
	if code, _ := post(t, ts, queryRequest{Query: `1 to 10000000000`, Limit: 500}); code != http.StatusUnprocessableEntity {
		t.Errorf("limit above bound status = %d", code)
	}
	// A limit exactly at the bound is valid: 200 with bound items.
	code, body = post(t, ts, queryRequest{Query: `1 to 10000000000`, Limit: 100})
	if code != http.StatusOK {
		t.Fatalf("limit == bound status = %d: %s", code, body)
	}
	if resp := decodeEnvelope(t, body); resp.Count != 100 || !resp.Truncated {
		t.Errorf("limit == bound result: count %d truncated %v", resp.Count, resp.Truncated)
	}
}

func TestServerQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code, _ := post(t, ts, queryRequest{Query: `for $x in`}); code != http.StatusBadRequest {
		t.Errorf("parse error status = %d", code)
	}
	if code, _ := post(t, ts, queryRequest{Query: `$unbound`}); code != http.StatusBadRequest {
		t.Errorf("static error status = %d", code)
	}
	if code, _ := post(t, ts, queryRequest{Query: `1 div 0`}); code != http.StatusUnprocessableEntity {
		t.Errorf("runtime error status = %d", code)
	}
	if code, _ := post(t, ts, queryRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty query status = %d", code)
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestServerExplainMetricsHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/explain?q=" + url.QueryEscape("count(parallelize(1 to 9))"))
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(plan), "(cluster pushdown)") {
		t.Errorf("explain plan = %q", plan)
	}

	post(t, ts, queryRequest{Query: `1 + 1`})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Server MetricsSnapshot `json:"server"`
		Engine struct {
			StagesRun int64
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Server.Queries != 1 {
		t.Errorf("metrics queries = %d", m.Server.Queries)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestServerHotQueryConcurrent exercises the plan-cache path under -race:
// many clients hammer the same query; exactly one compilation happens and
// every client gets the full, correct result from the shared Statement.
func TestServerHotQueryConcurrent(t *testing.T) {
	srv, ts := newTestServer(t, Options{MaxConcurrent: 8, QueueDepth: 64})
	const clients, rounds = 8, 5
	query := `for $x in parallelize(1 to 50) where $x mod 2 eq 0 return $x`
	var wg sync.WaitGroup
	errs := make(chan string, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				code, body := post(t, ts, queryRequest{Query: query})
				if code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", code, body)
					return
				}
				if resp := decodeEnvelope(t, body); resp.Count != 25 {
					errs <- fmt.Sprintf("count = %d", resp.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	m := srv.Metrics()
	if m.CacheMisses != 1 {
		t.Errorf("misses = %d, want exactly one compilation", m.CacheMisses)
	}
	if m.CacheHits != clients*rounds-1 {
		t.Errorf("hits = %d, want %d", m.CacheHits, clients*rounds-1)
	}
	if m.Active != 0 || m.Queued != 0 {
		t.Errorf("leaked slots: %+v", m)
	}
}

// TestServerQueueFull pins the 429 behavior: with one evaluation slot and
// a one-deep queue, a third concurrent request is rejected immediately.
func TestServerQueueFull(t *testing.T) {
	srv, ts, path := slowFixture(t, 12, 50*time.Millisecond, Options{MaxConcurrent: 1, QueueDepth: 1})
	slow := queryRequest{Query: fmt.Sprintf(`count(json-file(%q))`, path), TimeoutMS: 30000}

	results := make(chan int, 2)
	go func() { code, _ := post(t, ts, slow); results <- code }()
	waitUntil(t, 5*time.Second, "first query running", func() bool { return srv.Metrics().Active == 1 })
	go func() { code, _ := post(t, ts, slow); results <- code }()
	waitUntil(t, 5*time.Second, "second query queued", func() bool { return srv.Metrics().Queued >= 1 })

	// Slot busy, queue full: the server must say 429 now, not block.
	start := time.Now()
	code, body := post(t, ts, queryRequest{Query: `1 + 1`})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d: %s", code, body)
	}
	// Explain shares the admission control: compile work cannot bypass it.
	eresp, err := http.Get(ts.URL + "/explain?q=" + url.QueryEscape("1 + 1"))
	if err != nil {
		t.Fatal(err)
	}
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("explain under overload status = %d", eresp.StatusCode)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("429 took %v, should be immediate", d)
	}
	if srv.Metrics().Rejected == 0 {
		t.Error("rejected counter not bumped")
	}
	// The queued requests drain and succeed.
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("slow query %d status = %d", i, code)
		}
	}
	if code, _ := post(t, ts, queryRequest{Query: `1 + 1`}); code != http.StatusOK {
		t.Errorf("server did not recover after drain: %d", code)
	}
}

// TestServerDeadline pins that a request exceeding its deadline returns
// promptly with 504 and frees its executor slot.
func TestServerDeadline(t *testing.T) {
	srv, ts, path := slowFixture(t, 24, 100*time.Millisecond, Options{MaxConcurrent: 1})
	slow := queryRequest{Query: fmt.Sprintf(`count(json-file(%q))`, path), TimeoutMS: 200}
	start := time.Now()
	code, body := post(t, ts, slow)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", code, body)
	}
	// Full evaluation would take ~2.4s of simulated I/O; the deadline must
	// cut it well short of that.
	if elapsed > 1500*time.Millisecond {
		t.Errorf("deadline response took %v", elapsed)
	}
	if m := srv.Metrics(); m.Timeouts == 0 || m.Active != 0 {
		t.Errorf("metrics after timeout = %+v", m)
	}
	// The slot is free again: a quick query runs immediately.
	if code, body := post(t, ts, queryRequest{Query: `sum(1 to 10)`}); code != http.StatusOK {
		t.Errorf("follow-up query status = %d: %s", code, body)
	}
}

// TestServerClientCancelMidFlight pins that a client disconnect cancels
// the running evaluation and frees its slot.
func TestServerClientCancelMidFlight(t *testing.T) {
	srv, ts, path := slowFixture(t, 24, 100*time.Millisecond, Options{MaxConcurrent: 1})
	body, _ := json.Marshal(queryRequest{Query: fmt.Sprintf(`count(json-file(%q))`, path), TimeoutMS: 30000})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	waitUntil(t, 5*time.Second, "query running", func() bool { return srv.Metrics().Active == 1 })
	cancel()
	<-done
	// The evaluation notices the cancellation and releases its slot long
	// before the ~2.4s the full scan would take.
	waitUntil(t, 1500*time.Millisecond, "slot released after cancel", func() bool {
		return srv.Metrics().Active == 0
	})
	if code, _ := post(t, ts, queryRequest{Query: `1 + 1`}); code != http.StatusOK {
		t.Error("server did not recover after client cancel")
	}
}

// TestServerPlanCacheNormalization pins the cache-key normalization: a hot
// query that arrives reformatted — re-indented, minified or annotated with
// comments — hits the plan compiled for its first spelling, while queries
// that differ inside string literals stay distinct.
func TestServerPlanCacheNormalization(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	variants := []string{
		"for $x in parallelize(1 to 3)\n\treturn $x * $x",
		"for $x in parallelize(1 to 3) return $x * $x",
		"  for   $x   in parallelize(1 to 3)\r\n return $x * $x  ",
		"for $x in (: hot path (: nested :) :) parallelize(1 to 3) return $x * $x",
	}
	for i, q := range variants {
		code, body := post(t, ts, queryRequest{Query: q})
		if code != http.StatusOK {
			t.Fatalf("variant %d: status %d: %s", i, code, body)
		}
		if resp := decodeEnvelope(t, body); resp.Cached != (i > 0) {
			t.Errorf("variant %d: cached = %v, want %v", i, resp.Cached, i > 0)
		}
	}
	m := srv.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != int64(len(variants)-1) || m.CachedPlans != 1 {
		t.Errorf("cache metrics after reformatted variants = %+v", m)
	}
	// Whitespace inside a string literal is semantic: no false sharing.
	code, body := post(t, ts, queryRequest{Query: `concat("a b", "c")`})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	code, body = post(t, ts, queryRequest{Query: `concat("a  b", "c")`})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if resp := decodeEnvelope(t, body); resp.Cached {
		t.Error("queries differing inside a string literal shared a plan")
	}
	if got := srv.Metrics().CachedPlans; got != 3 {
		t.Errorf("cached plans = %d, want 3", got)
	}
}

// TestServerVectorMode pins that a vectorizing engine reports Mode=Vector
// through the envelope, the X-Rumble-Mode header and the per-mode metrics.
func TestServerVectorMode(t *testing.T) {
	eng := rumble.New(rumble.Config{Parallelism: 2, Executors: 2, Vectorize: true})
	if err := eng.RegisterJSON("games", []string{
		`{"t":"fr","ok":true}`, `{"t":"fr","ok":false}`, `{"t":"en","ok":true}`,
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	q := `for $o in collection("games") group by $t := $o.t return { "t": $t, "n": count($o) }`
	body, _ := json.Marshal(queryRequest{Query: q})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Rumble-Mode"); got != "Vector" {
		t.Errorf("X-Rumble-Mode = %q, want Vector", got)
	}
	if env := decodeEnvelope(t, out); env.Mode != "Vector" || env.Count != 2 {
		t.Errorf("envelope = %+v", env)
	}
	m := srv.Metrics()
	if m.ModeVector != 1 || m.ModeDataFrame != 0 {
		t.Errorf("mode metrics = %+v", m)
	}
	// The counters serve through /metrics next to the engine's.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mbody), `"queries_mode_vector":1`) {
		t.Errorf("/metrics lacks vector mode counter: %s", mbody)
	}
	// The engine's morsel/worker counters ride along: one vector run over
	// a single morsel, processed by the pool.
	em := eng.Metrics()
	if em.VectorRuns != 1 || em.VectorMorsels != 1 || em.VectorWorkers < 1 {
		t.Errorf("engine vector counters = %+v", em)
	}
	for _, field := range []string{`"VectorRuns":1`, `"VectorMorsels":1`} {
		if !strings.Contains(string(mbody), field) {
			t.Errorf("/metrics lacks %s: %s", field, mbody)
		}
	}
}

// TestServerPlanCacheByteBounding pins the byte-bounded plan cache: entries
// are charged an approximate plan cost, eviction runs by bytes (LRU), an
// evicted query recompiles on return, and /metrics reports the footprint.
func TestServerPlanCacheByteBounding(t *testing.T) {
	// Budget for exactly two of these entries: the third insert evicts
	// the least-recently-used one by bytes.
	queries := []string{`1 + 1`, `2 + 2`, `3 + 3`}
	budget := 2 * approxPlanCost(normalizeQuery(queries[0]))
	srv, ts := newTestServer(t, Options{PlanCacheBytes: budget})
	for _, q := range queries {
		if code, body := post(t, ts, queryRequest{Query: q}); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	m := srv.Metrics()
	if m.CachedPlans != 2 {
		t.Fatalf("cached plans = %d, want 2 (byte budget holds two entries)", m.CachedPlans)
	}
	if m.CacheBytes <= 0 || m.CacheBytes > budget {
		t.Fatalf("cache bytes = %d, want within (0, %d]", m.CacheBytes, budget)
	}
	// The oldest entry was evicted by bytes; re-serving it is a miss.
	misses := m.CacheMisses
	if code, body := post(t, ts, queryRequest{Query: `1 + 1`}); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := srv.Metrics().CacheMisses; got != misses+1 {
		t.Errorf("cache misses after evicted re-serve = %d, want %d", got, misses+1)
	}
	// An entry larger than the whole budget still caches — alone.
	big := "1" + strings.Repeat(" + 1", 1000)
	if code, body := post(t, ts, queryRequest{Query: big}); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := srv.Metrics().CachedPlans; got != 1 {
		t.Errorf("cached plans after oversized insert = %d, want 1", got)
	}
	if code, _ := post(t, ts, queryRequest{Query: big}); code != http.StatusOK {
		t.Fatal("oversized re-serve failed")
	}
	if m := srv.Metrics(); m.CacheHits < 1 {
		t.Errorf("oversized entry did not serve from cache: %+v", m)
	}
	if !strings.Contains(metricsBody(t, ts), `"plan_cache_bytes"`) {
		t.Error("/metrics lacks plan_cache_bytes")
	}
}

// metricsBody fetches /metrics as a string.
func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rumble"
	"rumble/internal/profile"
)

// syncBuffer is an io.Writer safe to read while the server goroutine is
// still appending slow-query lines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestServerQueryID(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(queryRequest{Query: `1 + 1`})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		hdr := resp.Header.Get("X-Rumble-Query-Id")
		if hdr == "" {
			t.Fatal("response carries no X-Rumble-Query-Id header")
		}
		env := decodeEnvelope(t, out)
		if env.QueryID != hdr {
			t.Errorf("envelope query_id %q != header %q", env.QueryID, hdr)
		}
		if ids[hdr] {
			t.Errorf("query id %q reused", hdr)
		}
		ids[hdr] = true
	}
	// Errors get an id too: the header is set before the body is parsed.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"1 +"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Rumble-Query-Id") == "" {
		t.Error("failed query carries no X-Rumble-Query-Id header")
	}
}

func TestServerProfileEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	q := `for $x in parallelize(1 to 100) where $x mod 2 eq 0 return $x`

	// Without profile the envelope still splits its phases but carries no
	// operator breakdown.
	code, body := post(t, ts, queryRequest{Query: q})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	env := decodeEnvelope(t, body)
	if env.Profile != nil {
		t.Errorf("unprofiled response carries a profile section: %+v", env.Profile)
	}
	if env.TotalMS < env.ExecuteMS {
		t.Errorf("total_ms %.3f < execute_ms %.3f", env.TotalMS, env.ExecuteMS)
	}
	if env.ElapsedMS != env.ExecuteMS {
		t.Errorf("elapsed_ms %.3f is not the execute_ms alias %.3f", env.ElapsedMS, env.ExecuteMS)
	}

	code, body = post(t, ts, queryRequest{Query: q, Profile: true})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	env = decodeEnvelope(t, body)
	if env.Profile == nil {
		t.Fatal("profile:true response has no profile section")
	}
	p := env.Profile
	if p.QueryID != env.QueryID || p.Mode != env.Mode {
		t.Errorf("profile identity mismatch: %+v vs envelope %+v", p, env)
	}
	if len(p.Ops) == 0 {
		t.Fatalf("profile has no operators: %+v", p)
	}
	rows := int64(0)
	for _, op := range p.Ops {
		rows += op.RowsOut
	}
	if rows == 0 {
		t.Errorf("profile operators recorded no rows: %+v", p.Ops)
	}

	// The profile=1 query parameter is equivalent to the body field.
	reqBody, _ := json.Marshal(queryRequest{Query: q})
	resp, err := http.Post(ts.URL+"/query?profile=1", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if env := decodeEnvelope(t, out); env.Profile == nil {
		t.Error("profile=1 query parameter did not enable profiling")
	}
}

// TestServerPhaseTimingsQueued pins the elapsed-time split that motivated
// retiring the single elapsed_ms number: a request that waits for an
// executor slot must report that wait in queue_ms, separate from
// execute_ms. One slot, one slow occupant, one queued probe.
func TestServerPhaseTimingsQueued(t *testing.T) {
	_, ts, path := slowFixture(t, 6, 20*time.Millisecond, Options{MaxConcurrent: 1, QueueDepth: 4})
	slow := fmt.Sprintf(`count(json-file(%q))`, path)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts, queryRequest{Query: slow})
	}()
	// Let the slow query take the only slot before probing.
	time.Sleep(20 * time.Millisecond)
	code, body := post(t, ts, queryRequest{Query: `1 + 1`})
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("probe status %d: %s", code, body)
	}
	env := decodeEnvelope(t, body)
	if env.QueueMS <= 0 {
		t.Errorf("queued probe reports queue_ms = %.3f, want > 0", env.QueueMS)
	}
	if env.TotalMS < env.QueueMS+env.ExecuteMS {
		t.Errorf("total_ms %.3f < queue_ms %.3f + execute_ms %.3f", env.TotalMS, env.QueueMS, env.ExecuteMS)
	}
}

func TestServerMetricsPrometheus(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	if code, body := post(t, ts, queryRequest{Query: `for $x in parallelize(1 to 5) return $x`}); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus text format", ct)
	}
	body := string(text)
	for _, want := range []string{
		"# TYPE rumble_queries_total counter",
		"rumble_queries_total 1",
		`rumble_queries_mode_total{mode="dataframe"} 1`,
		"# TYPE rumble_query_duration_seconds histogram",
		`rumble_query_duration_seconds_bucket{mode="dataframe",le="+Inf"} 1`,
		`rumble_query_duration_seconds_count{mode="dataframe"} 1`,
		"# TYPE rumble_active_queries gauge",
		"rumble_engine_tasks_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus exposition missing %q:\n%s", want, body)
		}
	}
	// Histogram buckets must be cumulative: each successive count >= the
	// previous, ending exactly at the series count.
	var prev, last int64 = 0, -1
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `rumble_query_duration_seconds_bucket{mode="dataframe"`) {
			var n int64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if n < prev {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			prev, last = n, n
		}
	}
	if last != 1 {
		t.Errorf("+Inf bucket = %d, want 1", last)
	}

	// A JSON client — or an Accept list preferring application/json — keeps
	// the JSON document.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json, text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Server MetricsSnapshot `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("JSON /metrics did not decode: %v", err)
	}
	resp.Body.Close()
	if doc.Server.LatencyDataFrame.Count != 1 {
		t.Errorf("JSON histogram count = %d, want 1", doc.Server.LatencyDataFrame.Count)
	}
	if got := doc.Server.LatencyDataFrame.LeMS; len(got) != histBuckets-1 || got[0] != 0.25 {
		t.Errorf("histogram bounds = %v", got)
	}
	_ = srv
}

func TestServerDebugQueries(t *testing.T) {
	_, ts := newTestServer(t, Options{ProfileRing: 2})
	for i, q := range []string{`1 + 1`, `2 + 2`, `3 + 3`} {
		req := queryRequest{Query: q, Profile: i == 2}
		if code, body := post(t, ts, req); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	var doc struct {
		Queries []profile.Snapshot `json:"queries"`
	}
	// The ring entry lands after the response body is written; poll.
	waitUntil(t, time.Second, "ring entries", func() bool {
		resp, err := http.Get(ts.URL + "/debug/queries")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		doc = struct {
			Queries []profile.Snapshot `json:"queries"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("/debug/queries did not decode: %v", err)
		}
		return len(doc.Queries) == 2 && doc.Queries[0].Query == `3 + 3`
	})
	// Newest first, ring bound evicted the oldest.
	if doc.Queries[1].Query != `2 + 2` {
		t.Errorf("ring order = [%q %q]", doc.Queries[0].Query, doc.Queries[1].Query)
	}
	newest := doc.Queries[0]
	if newest.QueryID == "" || newest.Mode == "" || newest.TotalMS <= 0 {
		t.Errorf("ring entry lacks identity/timings: %+v", newest)
	}
	if len(newest.Ops) == 0 {
		t.Errorf("profiled ring entry has no operator breakdown: %+v", newest)
	}
	if len(doc.Queries[1].Ops) != 0 {
		t.Errorf("unprofiled ring entry has operators: %+v", doc.Queries[1].Ops)
	}
}

func TestServerSlowQueryLog(t *testing.T) {
	buf := &syncBuffer{}
	// Threshold 0 disables the log; threshold 1ms with simulated scan
	// latency catches the slow query but not the trivial one.
	_, ts, path := slowFixture(t, 4, 5*time.Millisecond, Options{SlowQueryMS: 1, SlowQueryLog: buf})
	if code, body := post(t, ts, queryRequest{Query: fmt.Sprintf(`count(json-file(%q))`, path)}); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	waitUntil(t, time.Second, "slow-query line", func() bool {
		return strings.Contains(buf.String(), "rumble: slow query: ")
	})
	line := strings.TrimPrefix(strings.TrimSpace(buf.String()), "rumble: slow query: ")
	var snap profile.Snapshot
	if err := json.Unmarshal([]byte(line), &snap); err != nil {
		t.Fatalf("slow-query line is not a profile JSON document: %v\n%s", err, line)
	}
	if snap.QueryID == "" || snap.TotalMS < 1 {
		t.Errorf("slow-query snapshot = %+v", snap)
	}
}

func TestServerPprofGate(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without --enable-pprof: status %d", resp.StatusCode)
	}

	eng := rumble.New(rumble.Config{Parallelism: 2, Executors: 2})
	srv := New(eng, Options{EnablePprof: true})
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	resp, err = http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d with EnablePprof", resp.StatusCode)
	}
}

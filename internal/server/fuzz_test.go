package server

import (
	"testing"

	"rumble/internal/lexer"
)

// FuzzNormalizeQuery checks the cache-key contract of normalizeQuery: two
// queries may share a key only when they tokenize identically. Concretely,
// for any input q and its normal form n:
//
//   - normalization is idempotent (n normalizes to itself), so a key is a
//     fixed point and re-keying a cached key cannot drift;
//   - q lexes successfully exactly when n does — a lexically broken query
//     must not share a key with a valid one, because the cache entry
//     compiles whichever original text arrives first;
//   - when q lexes, n yields the same token stream (kinds and texts).
func FuzzNormalizeQuery(f *testing.F) {
	seeds := []string{
		``,
		`1 + 2`,
		`1 (:`,
		`1 (: never closed`,
		`(: comment (: nested :) :) 42`,
		`(:a:)`,
		"for  $x \t in\n(1,2)  return $x",
		`"white  space   kept" || "tab\there"`,
		`"esc \" \\ inside"`,
		`"unterminated with (: comment-looking text`,
		`{"k (: not a comment :)": 1}.$k`,
		`1(:sep:)2`,
		`"a" (: c :) "b"`,
		"\x00(\xff:",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n := normalizeQuery(q)
		if nn := normalizeQuery(n); nn != n {
			t.Errorf("not idempotent:\n q: %q\n n: %q\nnn: %q", q, n, nn)
		}
		toks, err := lexer.Lex(q)
		ntoks, nerr := lexer.Lex(n)
		if (err == nil) != (nerr == nil) {
			t.Fatalf("lex outcome diverged: original err=%v, normalized err=%v\n q: %q\n n: %q", err, nerr, q, n)
		}
		if err != nil {
			return
		}
		if len(toks) != len(ntoks) {
			t.Fatalf("token count diverged: %d vs %d\n q: %q\n n: %q", len(toks), len(ntoks), q, n)
		}
		for i := range toks {
			if toks[i].Kind != ntoks[i].Kind || toks[i].Text != ntoks[i].Text {
				t.Fatalf("token %d diverged: %v %q vs %v %q\n q: %q\n n: %q",
					i, toks[i].Kind, toks[i].Text, ntoks[i].Kind, ntoks[i].Text, q, n)
			}
		}
	})
}

// TestNormalizeQueryUnterminatedComment pins the cache-poisoning fix: an
// unterminated comment is a lexical error, so "1 (:" must not normalize to
// the same key as the valid query "1" — the cache compiles the first
// arrival's original text, and a shared key would serve that compile error
// to every valid spelling afterwards.
func TestNormalizeQueryUnterminatedComment(t *testing.T) {
	broken := normalizeQuery("1 (:")
	valid := normalizeQuery("1")
	if broken == valid {
		t.Fatalf("broken and valid queries share cache key %q", valid)
	}
	if got := normalizeQuery("1 (: stripped :) + 2"); got != "1 + 2" {
		t.Errorf("terminated comments should still strip: got %q", got)
	}
}

package server

import (
	"container/list"
	"strings"
	"sync"

	"rumble"
)

// planCache is a thread-safe LRU of compiled statements keyed by the
// normalized query text: comments are stripped and whitespace runs outside
// string literals collapse to a single space, so a hot query that arrives
// trivially reformatted (re-indented, commented, minified) still hits the
// plan compiled for its first spelling. A hot query served twice skips
// parse, static analysis and join detection entirely — the compiled
// Statement is immutable and safe to execute concurrently, so one plan
// serves any number of clients.
//
// Each entry compiles at most once (sync.Once): N concurrent clients
// issuing the same cold query share a single compilation instead of
// racing N of them.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type planEntry struct {
	key  string
	once sync.Once
	st   *rumble.Statement
	err  error
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// get returns the compiled statement for query, compiling through eng on a
// miss. hit reports whether an entry already existed (it may still be
// compiling; the caller then waits on the shared compilation). Compile
// errors are cached too: static errors are deterministic, so retrying the
// same text would only burn CPU.
func (c *planCache) get(eng *rumble.Engine, query string) (st *rumble.Statement, hit bool, err error) {
	key := normalizeQuery(query)
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&planEntry{key: key})
		c.entries[key] = el
		if c.order.Len() > c.cap {
			lru := c.order.Back()
			c.order.Remove(lru)
			delete(c.entries, lru.Value.(*planEntry).key)
		}
	}
	e := el.Value.(*planEntry)
	c.mu.Unlock()
	e.once.Do(func() { e.st, e.err = eng.Compile(query) })
	return e.st, ok, e.err
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// normalizeQuery canonicalizes query text for cache keying: JSONiq
// comments "(: ... :)" (which nest) are replaced by a single space and
// runs of whitespace collapse to one space — but only outside string
// literals, whose contents (including escapes) are preserved verbatim.
// Normalization only ever inserts or shrinks separators between tokens,
// never removes one entirely, so two queries share a key only when they
// tokenize identically.
func normalizeQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	pendingSpace := false
	sep := func() {
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
	}
	for i := 0; i < len(q); {
		c := q[i]
		switch {
		case c == '"':
			// Copy the string literal verbatim, honoring escapes. An
			// unterminated literal copies through to the end; the parser
			// will reject it identically for every spelling.
			start := i
			i++
			for i < len(q) {
				if q[i] == '\\' && i+1 < len(q) {
					i += 2
					continue
				}
				if q[i] == '"' {
					i++
					break
				}
				i++
			}
			sep()
			b.WriteString(q[start:i])
		case c == '(' && i+1 < len(q) && q[i+1] == ':':
			depth := 1
			i += 2
			for i < len(q) && depth > 0 {
				switch {
				case q[i] == '(' && i+1 < len(q) && q[i+1] == ':':
					depth++
					i += 2
				case q[i] == ':' && i+1 < len(q) && q[i+1] == ')':
					depth--
					i += 2
				default:
					i++
				}
			}
			pendingSpace = true // a comment separates tokens like whitespace
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
			i++
		default:
			sep()
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

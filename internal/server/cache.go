package server

import (
	"container/list"
	"strings"
	"sync"

	"rumble"
)

// planCache is a thread-safe, byte-bounded LRU of compiled statements
// keyed by the normalized query text: comments are stripped and whitespace
// runs outside string literals collapse to a single space, so a hot query
// that arrives trivially reformatted (re-indented, commented, minified)
// still hits the plan compiled for its first spelling. A hot query served
// twice skips parse, static analysis and join detection entirely — the
// compiled Statement is immutable and safe to execute concurrently, so one
// plan serves any number of clients.
//
// The cache is bounded by an approximate memory footprint, not an entry
// count: each entry is charged a byte cost derived from its query length
// (plan size grows roughly linearly with token count), and inserting past
// the budget evicts least-recently-used entries by bytes. A handful of
// enormous generated queries therefore cannot pin an unbounded amount of
// plan memory the way a count-based bound would let them.
//
// Each entry compiles at most once (sync.Once): N concurrent clients
// issuing the same cold query share a single compilation instead of
// racing N of them.
type planCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
}

type planEntry struct {
	key  string
	cost int64
	once sync.Once
	st   *rumble.Statement
	err  error
}

// Approximate per-entry footprint: a fixed overhead for the LRU
// bookkeeping and the baseline iterator tree, plus a per-query-byte factor
// covering AST nodes, iterators and analysis maps — all of which grow
// roughly linearly with the query's token count.
const (
	planEntryOverhead    = 4 << 10
	planBytesPerTextByte = 48
)

// approxPlanCost estimates the resident bytes a cached plan costs.
func approxPlanCost(key string) int64 {
	return planEntryOverhead + int64(len(key))*planBytesPerTextByte
}

func newPlanCache(capBytes int64) *planCache {
	if capBytes < 1 {
		capBytes = 8 << 20
	}
	return &planCache{capBytes: capBytes, order: list.New(), entries: map[string]*list.Element{}}
}

// get returns the compiled statement for query, compiling through eng on a
// miss. hit reports whether an entry already existed (it may still be
// compiling; the caller then waits on the shared compilation). Compile
// errors are cached too: static errors are deterministic, so retrying the
// same text would only burn CPU.
func (c *planCache) get(eng *rumble.Engine, query string) (st *rumble.Statement, hit bool, err error) {
	key := normalizeQuery(query)
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
	} else {
		e := &planEntry{key: key, cost: approxPlanCost(key)}
		el = c.order.PushFront(e)
		c.entries[key] = el
		c.bytes += e.cost
		// Evict least-recently-used entries until the budget holds. The
		// newly inserted entry itself is never evicted: an oversized
		// query still caches (it alone empties the rest of the cache),
		// so a hot oversized query does not recompile forever.
		for c.bytes > c.capBytes && c.order.Len() > 1 {
			lru := c.order.Back()
			c.order.Remove(lru)
			le := lru.Value.(*planEntry)
			delete(c.entries, le.key)
			c.bytes -= le.cost
		}
	}
	e := el.Value.(*planEntry)
	c.mu.Unlock()
	e.once.Do(func() { e.st, e.err = eng.Compile(query) })
	return e.st, ok, e.err
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// size returns the approximate resident bytes of the cached plans.
func (c *planCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// normalizeQuery canonicalizes query text for cache keying: JSONiq
// comments "(: ... :)" (which nest) are replaced by a single space and
// runs of whitespace collapse to one space — but only outside string
// literals, whose contents (including escapes) are preserved verbatim.
// Normalization only ever inserts or shrinks separators between tokens,
// never removes one entirely, so two queries share a key only when they
// tokenize identically.
func normalizeQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	pendingSpace := false
	sep := func() {
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
	}
	for i := 0; i < len(q); {
		c := q[i]
		switch {
		case c == '"':
			// Copy the string literal verbatim, honoring escapes. An
			// unterminated literal copies through to the end; the parser
			// will reject it identically for every spelling.
			start := i
			i++
			for i < len(q) {
				if q[i] == '\\' && i+1 < len(q) {
					i += 2
					continue
				}
				if q[i] == '"' {
					i++
					break
				}
				i++
			}
			sep()
			b.WriteString(q[start:i])
		case c == '(' && i+1 < len(q) && q[i+1] == ':':
			start := i
			depth := 1
			i += 2
			for i < len(q) && depth > 0 {
				switch {
				case q[i] == '(' && i+1 < len(q) && q[i+1] == ':':
					depth++
					i += 2
				case q[i] == ':' && i+1 < len(q) && q[i+1] == ')':
					depth--
					i += 2
				default:
					i++
				}
			}
			if depth > 0 {
				// Unterminated comment: a lexical error the parser reports,
				// while the stripped form may be a valid query. Keep the
				// broken tail verbatim so the two never share a cache key —
				// the entry compiles the first arrival's original text, and
				// a poisoned key would serve that error to valid spellings.
				sep()
				b.WriteString(q[start:])
				break
			}
			pendingSpace = true // a comment separates tokens like whitespace
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
			i++
		default:
			sep()
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

package server

import (
	"container/list"
	"sync"

	"rumble"
)

// planCache is a thread-safe LRU of compiled statements keyed by exact
// query text. A hot query served twice skips parse, static analysis and
// join detection entirely — the compiled Statement is immutable and safe
// to execute concurrently, so one plan serves any number of clients.
//
// Each entry compiles at most once (sync.Once): N concurrent clients
// issuing the same cold query share a single compilation instead of
// racing N of them.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type planEntry struct {
	key  string
	once sync.Once
	st   *rumble.Statement
	err  error
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// get returns the compiled statement for query, compiling through eng on a
// miss. hit reports whether an entry already existed (it may still be
// compiling; the caller then waits on the shared compilation). Compile
// errors are cached too: static errors are deterministic, so retrying the
// same text would only burn CPU.
func (c *planCache) get(eng *rumble.Engine, query string) (st *rumble.Statement, hit bool, err error) {
	c.mu.Lock()
	el, ok := c.entries[query]
	if ok {
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&planEntry{key: query})
		c.entries[query] = el
		if c.order.Len() > c.cap {
			lru := c.order.Back()
			c.order.Remove(lru)
			delete(c.entries, lru.Value.(*planEntry).key)
		}
	}
	e := el.Value.(*planEntry)
	c.mu.Unlock()
	e.once.Do(func() { e.st, e.err = eng.Compile(query) })
	return e.st, ok, e.err
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

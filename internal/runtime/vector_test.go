package runtime

import (
	"testing"

	"rumble/internal/parser"
	"rumble/internal/spark"
)

// TestVectorPlansBuildVectorIter pins that every vector-eligible query
// shape actually compiles to the columnar iterator. The eligibility
// analysis (compiler/vector.go) and the runtime vector compiler
// (runtime/vector.go) are parallel grammars; compileVector failures fall
// back silently to the tuple pipeline by design, so without this test a
// divergence would keep reporting Mode=Vector while running tuples.
func TestVectorPlansBuildVectorIter(t *testing.T) {
	env := &Env{
		Spark:       spark.NewContext(spark.Config{Parallelism: 2, Executors: 2}),
		Collections: map[string]string{},
		InMemory:    nil,
		Vectorize:   true,
	}
	queries := map[string]string{
		"filter-project": `for $o in json-file("d.jsonl")
			where $o.score gt 3 and contains($o.body, "x")
			return { "s": $o.score }`,
		"lets-and-arith": `for $o in json-file("d.jsonl")
			let $b := $o.score * 2
			where $b gt 3
			return [ -$b ]`,
		"group-aggregates": `for $o in json-file("d.jsonl")
			group by $t := $o.target
			return { "t": $t, "n": count($o), "s": sum($o.score),
				"a": avg($o.score), "lo": min($o.score), "hi": max($o.score) }`,
		"group-by-existing-var": `for $o in json-file("d.jsonl")
			let $t := $o.target
			group by $t
			return { "t": $t, "n": count($o) }`,
		"free-variable": `declare variable $min := 3;
			for $o in json-file("d.jsonl") where $o.score ge $min return $o.score`,
		"rdd-let-head": `let $d := json-file("d.jsonl")
			for $x in $d where $x.score ge 100 return $x.body`,
		"scalar-builtins": `for $o in json-file("d.jsonl")
			where starts-with(upper-case($o.t), "A") or string-length($o.t) eq 3
			return string($o.t)`,
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			m, err := parser.Parse(q)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			prog, err := Compile(m, env)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			root := prog.Root
			if rl, ok := root.(*rddLetIter); ok {
				root = rl.inner
			}
			vit, ok := root.(*vectorIter)
			if !ok {
				t.Fatalf("root is %T, want *vectorIter — the runtime vector "+
					"compiler declined a shape the eligibility analysis admitted", root)
			}
			if vit.fallback == nil {
				t.Fatal("vectorIter built without a tuple fallback")
			}
		})
	}
}

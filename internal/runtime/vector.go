package runtime

import (
	"context"

	"rumble/internal/ast"
	"rumble/internal/compiler"
	"rumble/internal/functions"
	"rumble/internal/item"
	"rumble/internal/spark"
	"rumble/internal/vector"
)

// This file bridges the columnar backend (internal/vector) into the
// iterator plan: compileVector turns a FLWOR the compiler annotated
// ModeVector into a vectorIter that scans its input into typed column
// batches and pushes them through filter / project / group kernels,
// instead of streaming tuple-at-a-time through the clause chain.
//
// The tuple pipeline is always compiled alongside and kept as a fallback:
// a free variable that resolves to a multi-item sequence at run time (a
// value no single-valued column can carry) re-routes that evaluation
// through the tuple path, so results are identical either way.

// vbatch is one batch of rows: the pipeline's variable columns by slot.
// Unbound slots are nil until a let (or the scan) fills them.
type vbatch struct {
	n    int
	cols []*vector.Col
}

// compact restricts every bound column to the kept rows.
func (b *vbatch) compact(keep []bool, kept int) *vbatch {
	nb := &vbatch{n: kept, cols: make([]*vector.Col, len(b.cols))}
	for i, c := range b.cols {
		if c != nil {
			nb.cols[i] = c.Compact(keep, kept)
		}
	}
	return nb
}

// vstate is per-evaluation state: free variables resolved once against the
// dynamic context and broadcast as constant columns.
type vstate struct {
	ext []*vector.Col
}

// vexpr is a compiled vector scalar expression: one column per batch.
type vexpr interface {
	eval(vs *vstate, b *vbatch) (*vector.Col, error)
}

// vlitExpr broadcasts a literal; the constant column is immutable and
// shared across evaluations.
type vlitExpr struct{ col *vector.Col }

func (v *vlitExpr) eval(*vstate, *vbatch) (*vector.Col, error) { return v.col, nil }

// vcolExpr reads a batch slot.
type vcolExpr struct{ slot int }

func (v *vcolExpr) eval(_ *vstate, b *vbatch) (*vector.Col, error) { return b.cols[v.slot], nil }

// vextExpr reads a resolved free-variable constant.
type vextExpr struct{ idx int }

func (v *vextExpr) eval(vs *vstate, _ *vbatch) (*vector.Col, error) { return vs.ext[v.idx], nil }

// vlookupExpr is a literal-key object lookup.
type vlookupExpr struct {
	in  vexpr
	key string
}

func (v *vlookupExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	in, err := v.in.eval(vs, b)
	if err != nil {
		return nil, err
	}
	return vector.Lookup(in, v.key, b.n), nil
}

// vcmpExpr is a value comparison.
type vcmpExpr struct {
	op   vector.CmpOp
	l, r vexpr
}

func (v *vcmpExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	l, err := v.l.eval(vs, b)
	if err != nil {
		return nil, err
	}
	r, err := v.r.eval(vs, b)
	if err != nil {
		return nil, err
	}
	out, err := vector.Compare(l, r, b.n, v.op)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// varithExpr is binary arithmetic.
type varithExpr struct {
	op   item.ArithOp
	l, r vexpr
}

func (v *varithExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	l, err := v.l.eval(vs, b)
	if err != nil {
		return nil, err
	}
	r, err := v.r.eval(vs, b)
	if err != nil {
		return nil, err
	}
	out, err := vector.Arith(l, r, b.n, v.op)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// vunaryExpr is unary plus/minus.
type vunaryExpr struct {
	minus bool
	in    vexpr
}

func (v *vunaryExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	in, err := v.in.eval(vs, b)
	if err != nil {
		return nil, err
	}
	out, err := vector.Unary(in, b.n, v.minus)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// vlogicExpr is and/or over effective boolean values. The right operand
// only runs on the rows the left operand leaves undecided — evaluated on a
// compacted sub-batch — so its errors surface exactly where the tuple
// backend's short-circuiting would evaluate it.
type vlogicExpr struct {
	isAnd bool
	l, r  vexpr
}

func (v *vlogicExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	lc, err := v.l.eval(vs, b)
	if err != nil {
		return nil, err
	}
	lb := make([]bool, b.n)
	keep := make([]bool, b.n)
	kept := 0
	for i := 0; i < b.n; i++ {
		lb[i] = lc.EBV(i)
		// and: a false left decides false; or: a true left decides true.
		if lb[i] != v.isAnd {
			continue
		}
		keep[i] = true
		kept++
	}
	out := vector.NewCol(b.n)
	if kept == 0 {
		for i := 0; i < b.n; i++ {
			out.AppendBool(lb[i])
		}
		return out, nil
	}
	rc, err := v.r.eval(vs, b.compact(keep, kept))
	if err != nil {
		return nil, err
	}
	j := 0
	for i := 0; i < b.n; i++ {
		if !keep[i] {
			out.AppendBool(lb[i])
			continue
		}
		out.AppendBool(rc.EBV(j))
		j++
	}
	return out, nil
}

// vobjExpr is an object constructor with literal keys.
type vobjExpr struct {
	keys []string
	vals []vexpr
}

func (v *vobjExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	cols := make([]*vector.Col, len(v.vals))
	for i, e := range v.vals {
		c, err := e.eval(vs, b)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	return vector.MakeObjects(v.keys, cols, b.n), nil
}

// varrExpr is a square-bracket array constructor (nil body = empty array).
type varrExpr struct{ body vexpr }

func (v *varrExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	if v.body == nil {
		return vector.MakeArrays(nil, b.n), nil
	}
	c, err := v.body.eval(vs, b)
	if err != nil {
		return nil, err
	}
	return vector.MakeArrays(c, b.n), nil
}

// vcallExpr is a whitelisted scalar builtin.
type vcallExpr struct {
	fn   functions.Func
	args []vexpr
}

func (v *vcallExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	cols := make([]*vector.Col, len(v.args))
	for i, e := range v.args {
		c, err := e.eval(vs, b)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	out, err := vector.Call(v.fn, cols, b.n)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// vop is one pipeline step after the scan: a let binding its column slot,
// or a filter (slot < 0) compacting the batch by its condition column.
type vop struct {
	slot int
	expr vexpr
}

// vgroupExec is the grouped tail of a vector pipeline.
type vgroupExec struct {
	keyExprs []vexpr
	keySlots []int // main-batch slots the key variables rebind to
	kinds    []vector.AggKind
	aggArgs  []vexpr // evaluated on the main batch, aligned with kinds
	gslots   int     // group-batch width: len(keyExprs) + len(kinds)
	project  vexpr   // return projection over the group batch
}

// vectorIter is a FLWOR compiled to the columnar backend. Stream packs the
// scan input into batches and pushes them through the ops; RDD is never
// available (ModeVector is a local mode).
type vectorIter struct {
	planNode
	fallback  Iterator // tuple pipeline, for multi-item free variables
	in        Iterator
	nslots    int
	externals []string
	ops       []vop
	group     *vgroupExec
	project   vexpr // non-group row projection
}

func (v *vectorIter) RDD(*DynamicContext) (*spark.RDD[item.Item], error) {
	return nil, Errorf("vector plans execute locally")
}

func (v *vectorIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	vs := &vstate{ext: make([]*vector.Col, len(v.externals))}
	for i, name := range v.externals {
		seq, rdd, ok := dc.Resolve(name)
		if !ok {
			return Errorf("variable $%s is not bound", name)
		}
		if rdd != nil {
			// A cluster-resident binding would materialize through the
			// driver-side scan, as the tuple path's reference does — but a
			// column only carries it when it is empty or a singleton, so
			// stop after two items: that already decides the fallback.
			var items []item.Item
			err := rdd.Scan(func(it item.Item) error {
				items = append(items, it)
				if len(items) > 1 {
					return errLimitReached
				}
				return nil
			})
			if err != nil && err != errLimitReached {
				return err
			}
			seq = items
		}
		if len(seq) > 1 {
			// Columns are single-valued; a sequence-valued free variable
			// re-routes this evaluation through the tuple pipeline.
			return v.fallback.Stream(dc, yield)
		}
		if len(seq) == 1 {
			vs.ext[i] = vector.ConstCol(seq[0])
		} else {
			vs.ext[i] = vector.ConstCol(nil)
		}
	}

	ctx := dc.GoContext()
	var groups *vector.Groups
	if v.group != nil {
		groups = vector.NewGroups(len(v.group.keyExprs), v.group.kinds)
	}
	scan := vector.NewCol(vector.BatchSize)

	flush := func() error {
		n := scan.Len()
		if n == 0 {
			return nil
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		b := &vbatch{n: n, cols: make([]*vector.Col, v.nslots)}
		b.cols[0] = scan
		for _, op := range v.ops {
			col, err := op.expr.eval(vs, b)
			if err != nil {
				return err
			}
			if op.slot >= 0 {
				b.cols[op.slot] = col
				continue
			}
			keep := make([]bool, b.n)
			kept := 0
			for i := 0; i < b.n; i++ {
				if col.EBV(i) {
					keep[i] = true
					kept++
				}
			}
			if kept < b.n {
				b = b.compact(keep, kept)
			}
			if b.n == 0 {
				break
			}
		}
		if b.n > 0 {
			if v.group != nil {
				if err := v.updateGroups(vs, b, groups); err != nil {
					return err
				}
			} else {
				col, err := v.project.eval(vs, b)
				if err != nil {
					return err
				}
				for i := 0; i < b.n; i++ {
					if it := col.Item(i); it != nil {
						if err := yield(it); err != nil {
							return err
						}
					}
				}
			}
		}
		scan.Reset()
		return nil
	}

	if err := v.in.Stream(dc, func(it item.Item) error {
		scan.AppendItem(it)
		if scan.Len() >= vector.BatchSize {
			return flush()
		}
		return nil
	}); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if v.group != nil {
		return v.emitGroups(vs, groups, ctx, yield)
	}
	return nil
}

// updateGroups binds the grouping keys (left to right, each visible to the
// specs after it), evaluates the aggregate arguments, and folds the batch
// into the hash table.
func (v *vectorIter) updateGroups(vs *vstate, b *vbatch, groups *vector.Groups) error {
	g := v.group
	keyCols := make([]*vector.Col, len(g.keyExprs))
	for i, ke := range g.keyExprs {
		col, err := ke.eval(vs, b)
		if err != nil {
			return err
		}
		keyCols[i] = col
		b.cols[g.keySlots[i]] = col
	}
	aggCols := make([]*vector.Col, len(g.aggArgs))
	for i, ae := range g.aggArgs {
		col, err := ae.eval(vs, b)
		if err != nil {
			return err
		}
		aggCols[i] = col
	}
	if err := groups.Update(keyCols, aggCols, b.n); err != nil {
		return Errorf("%v", err)
	}
	return nil
}

// emitGroups builds group batches (keys plus finalized aggregates) in
// first-seen order and projects the return expression over them.
func (v *vectorIter) emitGroups(vs *vstate, groups *vector.Groups, ctx context.Context, yield func(item.Item) error) error {
	g := v.group
	nk := len(g.keyExprs)
	for start := 0; start < groups.Len(); start += vector.BatchSize {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		end := start + vector.BatchSize
		if end > groups.Len() {
			end = groups.Len()
		}
		gb := &vbatch{n: end - start, cols: make([]*vector.Col, g.gslots)}
		for ki := 0; ki < nk; ki++ {
			col := vector.NewCol(gb.n)
			for gi := start; gi < end; gi++ {
				col.AppendItem(groups.Key(gi, ki))
			}
			gb.cols[ki] = col
		}
		for j := range g.kinds {
			col := vector.NewCol(gb.n)
			for gi := start; gi < end; gi++ {
				res, err := groups.Agg(gi, j)
				if err != nil {
					return Errorf("%v", err)
				}
				col.AppendItem(res)
			}
			gb.cols[nk+j] = col
		}
		pc, err := g.project.eval(vs, gb)
		if err != nil {
			return err
		}
		for i := 0; i < gb.n; i++ {
			if it := pc.Item(i); it != nil {
				if err := yield(it); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// vectorAggKinds maps aggregate builtin names to their fold kinds.
var vectorAggKinds = map[string]vector.AggKind{
	"count": vector.AggCount,
	"sum":   vector.AggSum,
	"avg":   vector.AggAvg,
	"min":   vector.AggMin,
	"max":   vector.AggMax,
}

// vcomp compiles vector expressions against a slot environment. The main
// environment covers the scan variable and let bindings; a grouped
// pipeline compiles its return against a second environment of key-
// variable and aggregate-result slots.
type vcomp struct {
	c      *comp
	slots  map[string]int
	nslots int
	extIdx map[string]int
	ext    []string
}

func (vc *vcomp) bind(name string) int {
	slot := vc.nslots
	vc.nslots++
	vc.slots[name] = slot
	return slot
}

func (vc *vcomp) external(name string) *vextExpr {
	if idx, ok := vc.extIdx[name]; ok {
		return &vextExpr{idx: idx}
	}
	idx := len(vc.ext)
	vc.ext = append(vc.ext, name)
	vc.extIdx[name] = idx
	return &vextExpr{idx: idx}
}

// compileVector builds the columnar plan for a FLWOR the compiler
// annotated ModeVector. clauses is the clause list after cluster-bound
// lets were peeled; fallback is the tuple pipeline compiled for the same
// clauses. Any unexpected shape returns an error and the caller keeps the
// tuple pipeline.
func (c *comp) compileVector(f *ast.FLWOR, clauses []ast.Clause, fallback Iterator) (Iterator, error) {
	if len(clauses) == 0 {
		return nil, Errorf("vector: empty clause list")
	}
	head, ok := clauses[0].(*ast.ForClause)
	if !ok {
		return nil, Errorf("vector: pipeline must start with a for clause")
	}
	in, err := c.compile(head.In)
	if err != nil {
		return nil, err
	}
	vc := &vcomp{c: c, slots: map[string]int{}, extIdx: map[string]int{}}
	vc.bind(head.Var) // slot 0: the scan column
	it := &vectorIter{planNode: c.pn(f), fallback: fallback, in: in}

	var group *ast.GroupByClause
	for _, cl := range clauses[1:] {
		switch n := cl.(type) {
		case *ast.LetClause:
			e, err := vc.compileExpr(n.Value)
			if err != nil {
				return nil, err
			}
			it.ops = append(it.ops, vop{slot: vc.bind(n.Var), expr: e})
		case *ast.WhereClause:
			e, err := vc.compileExpr(n.Cond)
			if err != nil {
				return nil, err
			}
			it.ops = append(it.ops, vop{slot: -1, expr: e})
		case *ast.GroupByClause:
			group = n
		default:
			return nil, Errorf("vector: unsupported clause %T", cl)
		}
	}
	if group == nil {
		proj, err := vc.compileExpr(f.Return)
		if err != nil {
			return nil, err
		}
		it.project = proj
		it.nslots = vc.nslots
		it.externals = vc.ext
		return it, nil
	}
	ge := &vgroupExec{}
	for _, spec := range group.Specs {
		var ke vexpr
		if spec.Expr != nil {
			e, err := vc.compileExpr(spec.Expr)
			if err != nil {
				return nil, err
			}
			ke = e
		} else {
			slot, ok := vc.slots[spec.Var]
			if !ok {
				return nil, Errorf("vector: group key $%s is not a pipeline column", spec.Var)
			}
			ke = &vcolExpr{slot: slot}
		}
		ge.keyExprs = append(ge.keyExprs, ke)
		ge.keySlots = append(ge.keySlots, vc.bind(spec.Var))
	}
	gc := &vgroupComp{main: vc, ge: ge, keys: map[string]int{}}
	for i, spec := range group.Specs {
		gc.keys[spec.Var] = i
	}
	proj, err := gc.compileExpr(f.Return)
	if err != nil {
		return nil, err
	}
	ge.project = proj
	ge.gslots = len(ge.keyExprs) + len(ge.kinds)
	it.group = ge
	it.nslots = vc.nslots
	it.externals = vc.ext
	return it, nil
}

// vexprEnv resolves the two environment-dependent leaves of the shared
// scalar grammar: variable references and special function calls. The
// main environment (vcomp) and the grouped-return environment (vgroupComp)
// differ only here; everything else compiles through compileVExpr.
type vexprEnv interface {
	compileVarRef(n *ast.VarRef) (vexpr, error)
	// compileSpecialCall intercepts calls before the scalar-builtin
	// whitelist; handled=false defers to the shared path.
	compileSpecialCall(n *ast.FunctionCall) (ve vexpr, handled bool, err error)
}

// compileVExpr compiles the shared scalar expression grammar against env.
func compileVExpr(env vexprEnv, e ast.Expr) (vexpr, error) {
	switch n := e.(type) {
	case *ast.Literal:
		return &vlitExpr{col: vector.ConstCol(n.Value)}, nil
	case *ast.VarRef:
		return env.compileVarRef(n)
	case *ast.ObjectLookup:
		key, ok := literalStringKey(n.Key)
		if !ok {
			return nil, Errorf("vector: dynamic object lookup key")
		}
		in, err := compileVExpr(env, n.Input)
		if err != nil {
			return nil, err
		}
		return &vlookupExpr{in: in, key: key}, nil
	case *ast.Comparison:
		op, ok := vector.ParseCmpOp(string(n.Op))
		if !ok || n.General {
			return nil, Errorf("vector: unsupported comparison %s", n.Op)
		}
		l, err := compileVExpr(env, n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVExpr(env, n.R)
		if err != nil {
			return nil, err
		}
		return &vcmpExpr{op: op, l: l, r: r}, nil
	case *ast.Arith:
		l, err := compileVExpr(env, n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVExpr(env, n.R)
		if err != nil {
			return nil, err
		}
		return &varithExpr{op: n.Op, l: l, r: r}, nil
	case *ast.Logic:
		l, err := compileVExpr(env, n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVExpr(env, n.R)
		if err != nil {
			return nil, err
		}
		return &vlogicExpr{isAnd: n.IsAnd, l: l, r: r}, nil
	case *ast.Unary:
		in, err := compileVExpr(env, n.Operand)
		if err != nil {
			return nil, err
		}
		return &vunaryExpr{minus: n.Minus, in: in}, nil
	case *ast.ObjectConstructor:
		oe := &vobjExpr{}
		for i := range n.Keys {
			key, ok := literalStringKey(n.Keys[i])
			if !ok {
				return nil, Errorf("vector: dynamic object constructor key")
			}
			v, err := compileVExpr(env, n.Values[i])
			if err != nil {
				return nil, err
			}
			oe.keys = append(oe.keys, key)
			oe.vals = append(oe.vals, v)
		}
		return oe, nil
	case *ast.ArrayConstructor:
		if n.Body == nil {
			return &varrExpr{}, nil
		}
		body, err := compileVExpr(env, n.Body)
		if err != nil {
			return nil, err
		}
		return &varrExpr{body: body}, nil
	case *ast.FunctionCall:
		if ve, handled, err := env.compileSpecialCall(n); handled || err != nil {
			return ve, err
		}
		if !compiler.VectorScalarFunctions[n.Name] {
			return nil, Errorf("vector: unsupported function %s", n.Name)
		}
		fn, ok := functions.Lookup(n.Name)
		if !ok {
			return nil, Errorf("vector: unknown function %s", n.Name)
		}
		ce := &vcallExpr{fn: fn}
		for _, a := range n.Args {
			ae, err := compileVExpr(env, a)
			if err != nil {
				return nil, err
			}
			ce.args = append(ce.args, ae)
		}
		return ce, nil
	default:
		return nil, Errorf("vector: unsupported expression %T", e)
	}
}

// compileExpr compiles a scalar expression against the main environment.
func (vc *vcomp) compileExpr(e ast.Expr) (vexpr, error) { return compileVExpr(vc, e) }

// compileVarRef implements vexprEnv: pipeline bindings are columns, free
// variables per-evaluation constants.
func (vc *vcomp) compileVarRef(n *ast.VarRef) (vexpr, error) {
	if slot, ok := vc.slots[n.Name]; ok {
		return &vcolExpr{slot: slot}, nil
	}
	return vc.external(n.Name), nil
}

// compileSpecialCall implements vexprEnv: the pipeline body has no
// special calls.
func (vc *vcomp) compileSpecialCall(*ast.FunctionCall) (vexpr, bool, error) {
	return nil, false, nil
}

// vgroupComp compiles the return expression of a grouped pipeline against
// the group-batch environment: key variables map to the leading group
// slots, aggregate calls allocate accumulator slots (their arguments
// compile against the main environment), and free variables stay external.
type vgroupComp struct {
	main *vcomp
	ge   *vgroupExec
	keys map[string]int // key var → group slot
}

func (gc *vgroupComp) compileExpr(e ast.Expr) (vexpr, error) { return compileVExpr(gc, e) }

// compileVarRef implements vexprEnv for the grouped return: only key
// variables and free variables are readable; non-key pipeline variables
// reach their values exclusively through aggregates.
func (gc *vgroupComp) compileVarRef(n *ast.VarRef) (vexpr, error) {
	if slot, ok := gc.keys[n.Name]; ok {
		return &vcolExpr{slot: slot}, nil
	}
	if _, bound := gc.main.slots[n.Name]; bound {
		return nil, Errorf("vector: non-key variable $%s outside an aggregate", n.Name)
	}
	return gc.main.external(n.Name), nil
}

// compileSpecialCall implements vexprEnv for the grouped return:
// #count-of and the aggregate builtins become accumulator slots.
func (gc *vgroupComp) compileSpecialCall(n *ast.FunctionCall) (vexpr, bool, error) {
	if base, ok := compiler.CountOfVar(n); ok {
		slot, bound := gc.main.slots[base]
		if !bound {
			return nil, true, Errorf("vector: #count-of over unbound $%s", base)
		}
		return gc.aggSlot(vector.AggCount, &vcolExpr{slot: slot}), true, nil
	}
	if kind, isAgg := vectorAggKinds[n.Name]; isAgg && len(n.Args) == 1 {
		arg, err := gc.main.compileExpr(n.Args[0])
		if err != nil {
			return nil, true, err
		}
		return gc.aggSlot(kind, arg), true, nil
	}
	return nil, false, nil
}

// aggSlot allocates one accumulator and returns the group-batch column
// reading its finalized value.
func (gc *vgroupComp) aggSlot(kind vector.AggKind, arg vexpr) vexpr {
	idx := len(gc.ge.kinds)
	gc.ge.kinds = append(gc.ge.kinds, kind)
	gc.ge.aggArgs = append(gc.ge.aggArgs, arg)
	return &vcolExpr{slot: len(gc.keys) + idx}
}

// literalStringKey extracts a compile-time string key.
func literalStringKey(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.Literal)
	if !ok {
		return "", false
	}
	s, ok := lit.Value.(item.Str)
	if !ok {
		return "", false
	}
	return string(s), true
}

package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rumble/internal/ast"
	"rumble/internal/compiler"
	"rumble/internal/dfs"
	"rumble/internal/functions"
	"rumble/internal/item"
	"rumble/internal/jparse"
	"rumble/internal/profile"
	"rumble/internal/segment"
	"rumble/internal/spark"
	"rumble/internal/vector"
)

// This file bridges the columnar backend (internal/vector) into the
// iterator plan: compileVector turns a FLWOR the compiler annotated
// ModeVector into a vectorIter that scans its input into typed column
// batches and pushes them through filter / project / group kernels,
// instead of streaming tuple-at-a-time through the clause chain.
//
// The tuple pipeline is always compiled alongside and kept as a fallback:
// a free variable that resolves to a multi-item sequence at run time (a
// value no single-valued column can carry) re-routes that evaluation
// through the tuple path, so results are identical either way.

// vbatch is one batch of rows: the pipeline's variable columns by slot.
// Unbound slots are nil until a let (or the scan) fills them.
type vbatch struct {
	n    int
	cols []*vector.Col
}

// compact restricts every bound column to the kept rows.
func (b *vbatch) compact(keep []bool, kept int) *vbatch {
	nb := &vbatch{n: kept, cols: make([]*vector.Col, len(b.cols))}
	for i, c := range b.cols {
		if c != nil {
			nb.cols[i] = c.Compact(keep, kept)
		}
	}
	return nb
}

// vstate is per-evaluation state: free variables resolved once against the
// dynamic context and broadcast as constant columns, plus the evaluation's
// profile (nil when profiling is off — the per-morsel fast path is a
// single nil check).
type vstate struct {
	ext  []*vector.Col
	prof *profile.Profile
}

// vexpr is a compiled vector scalar expression: one column per batch.
type vexpr interface {
	eval(vs *vstate, b *vbatch) (*vector.Col, error)
}

// vlitExpr broadcasts a literal; the constant column is immutable and
// shared across evaluations.
type vlitExpr struct{ col *vector.Col }

func (v *vlitExpr) eval(*vstate, *vbatch) (*vector.Col, error) { return v.col, nil }

// vcolExpr reads a batch slot.
type vcolExpr struct{ slot int }

func (v *vcolExpr) eval(_ *vstate, b *vbatch) (*vector.Col, error) { return b.cols[v.slot], nil }

// vextExpr reads a resolved free-variable constant.
type vextExpr struct{ idx int }

func (v *vextExpr) eval(vs *vstate, _ *vbatch) (*vector.Col, error) { return vs.ext[v.idx], nil }

// vlookupExpr is a literal-key object lookup.
type vlookupExpr struct {
	in  vexpr
	key string
}

func (v *vlookupExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	in, err := v.in.eval(vs, b)
	if err != nil {
		return nil, err
	}
	return vector.Lookup(in, v.key, b.n), nil
}

// vcmpExpr is a value comparison.
type vcmpExpr struct {
	op   vector.CmpOp
	l, r vexpr
}

func (v *vcmpExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	l, err := v.l.eval(vs, b)
	if err != nil {
		return nil, err
	}
	r, err := v.r.eval(vs, b)
	if err != nil {
		return nil, err
	}
	out, err := vector.Compare(l, r, b.n, v.op)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// varithExpr is binary arithmetic.
type varithExpr struct {
	op   item.ArithOp
	l, r vexpr
}

func (v *varithExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	l, err := v.l.eval(vs, b)
	if err != nil {
		return nil, err
	}
	r, err := v.r.eval(vs, b)
	if err != nil {
		return nil, err
	}
	out, err := vector.Arith(l, r, b.n, v.op)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// vunaryExpr is unary plus/minus.
type vunaryExpr struct {
	minus bool
	in    vexpr
}

func (v *vunaryExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	in, err := v.in.eval(vs, b)
	if err != nil {
		return nil, err
	}
	out, err := vector.Unary(in, b.n, v.minus)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// vlogicExpr is and/or over effective boolean values. The right operand
// only runs on the rows the left operand leaves undecided — evaluated on a
// compacted sub-batch — so its errors surface exactly where the tuple
// backend's short-circuiting would evaluate it.
type vlogicExpr struct {
	isAnd bool
	l, r  vexpr
}

func (v *vlogicExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	lc, err := v.l.eval(vs, b)
	if err != nil {
		return nil, err
	}
	lb := make([]bool, b.n)
	keep := make([]bool, b.n)
	kept := 0
	for i := 0; i < b.n; i++ {
		lb[i] = lc.EBV(i)
		// and: a false left decides false; or: a true left decides true.
		if lb[i] != v.isAnd {
			continue
		}
		keep[i] = true
		kept++
	}
	out := vector.NewCol(b.n)
	if kept == 0 {
		for i := 0; i < b.n; i++ {
			out.AppendBool(lb[i])
		}
		return out, nil
	}
	rc, err := v.r.eval(vs, b.compact(keep, kept))
	if err != nil {
		return nil, err
	}
	j := 0
	for i := 0; i < b.n; i++ {
		if !keep[i] {
			out.AppendBool(lb[i])
			continue
		}
		out.AppendBool(rc.EBV(j))
		j++
	}
	return out, nil
}

// vobjExpr is an object constructor with literal keys.
type vobjExpr struct {
	keys []string
	vals []vexpr
}

func (v *vobjExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	cols := make([]*vector.Col, len(v.vals))
	for i, e := range v.vals {
		c, err := e.eval(vs, b)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	return vector.MakeObjects(v.keys, cols, b.n), nil
}

// varrExpr is a square-bracket array constructor (nil body = empty array).
type varrExpr struct{ body vexpr }

func (v *varrExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	if v.body == nil {
		return vector.MakeArrays(nil, b.n), nil
	}
	c, err := v.body.eval(vs, b)
	if err != nil {
		return nil, err
	}
	return vector.MakeArrays(c, b.n), nil
}

// vcallExpr is a whitelisted scalar builtin.
type vcallExpr struct {
	fn   functions.Func
	args []vexpr
}

func (v *vcallExpr) eval(vs *vstate, b *vbatch) (*vector.Col, error) {
	cols := make([]*vector.Col, len(v.args))
	for i, e := range v.args {
		c, err := e.eval(vs, b)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	out, err := vector.Call(v.fn, cols, b.n)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	return out, nil
}

// vop is one pipeline step after the scan: a let binding its column slot,
// or a filter (slot < 0) compacting the batch by its condition column.
// opID is the profiling operator shared with the tuple pipeline's
// evaluator for the same clause.
type vop struct {
	slot int
	expr vexpr
	opID int
}

// vgroupExec is the grouped (or grand-aggregate) tail of a vector
// pipeline.
type vgroupExec struct {
	grand    bool // no group-by: one implicit group over the whole scan
	keyExprs []vexpr
	keySlots []int // main-batch slots the key variables rebind to
	kinds    []vector.AggKind
	aggArgs  []vexpr // evaluated on the main batch, aligned with kinds
	gslots   int     // group-batch width: len(keyExprs) + len(kinds)
	project  vexpr   // return projection over the group batch
	// earlyExit marks an existence test (exists/empty/count-eq-zero): the
	// single grand count only needs to reach one, so the coordinator stops
	// the scan and cancels remaining morsels as soon as a merged partial
	// shows a present row.
	earlyExit bool
}

// vcountBoolExpr finalizes an existence test over the grand count column:
// Bool(n == 0) for empty (and count-eq-zero), Bool(n > 0) for exists.
type vcountBoolExpr struct {
	wantEmpty bool
}

func (v *vcountBoolExpr) eval(_ *vstate, b *vbatch) (*vector.Col, error) {
	in := b.cols[0]
	out := vector.NewCol(b.n)
	for i := 0; i < b.n; i++ {
		n, _ := in.Item(i).(item.Int)
		out.AppendBool((n == 0) == v.wantEmpty)
	}
	return out, nil
}

// vsortExec is the order-by tail of a vector pipeline: every morsel worker
// encodes its rows' sort keys and produces a stably sorted run, and the
// coordinator k-way-merges the runs in morsel index order — so ties resolve
// by scan position and the merged stream is the stable sort of the whole
// scan, identical at every worker count. The return projection is deferred
// to the merged stream: key errors surface before projection errors (as in
// the tuple path, which sorts before projecting), and a bounded top-k never
// projects the tail it discards.
type vsortExec struct {
	keys          []vexpr
	emptyGreatest []bool
	specs         []vector.SortSpec
	topK          int64 // 0 = full sort; otherwise each run truncates to k
	project       vexpr
}

// vjoinExec is the hash equi-join head of a vector pipeline: the left
// (probe) side is the scan, the right (build) side materializes once per
// evaluation into a hash table pre-sized from its cardinality, and every
// morsel probes it, expanding matches left-major in build order — the
// nested loop's output order, as the tuple path's joinEval produces.
type vjoinExec struct {
	rightIn   Iterator
	rightSlot int     // main-batch slot the right variable binds
	leftKeys  []vexpr // evaluated on the main (probe) batch
	rightKeys []vexpr // evaluated on build batches (slot 0 = right var)
}

// vjoinRun is the per-evaluation state of a vector join: the build runs
// lazily on the first non-empty probe morsel (an empty probe side never
// evaluates the right keys, like the tuple path), guarded by a Once so
// concurrent workers block until one build finishes. A build error reaches
// every morsel, so the coordinator surfaces it at the lowest index.
type vjoinRun struct {
	dc    *DynamicContext
	once  sync.Once
	table map[string][]item.Item
	rmask uint64
	err   error
}

// vectorIter is a FLWOR compiled to the columnar backend. Stream splits
// the scan into BatchSize-row morsels and dispatches them to a worker pool
// sized by the engine's executor slots; workers run the filter / project
// kernels independently and grouped pipelines fold per-morsel partial
// aggregation tables that merge in morsel index order. RDD is never
// available (ModeVector is a local mode).
//
// Parallel execution is bit-compatible with a single worker by
// construction: every morsel folds its own partial state and partials
// always merge in scan order, so emit order, aggregate results, and which
// error surfaces ("first error wins": the lowest-indexed failing morsel)
// depend only on the input — never on the worker count or scheduling.
type vectorIter struct {
	planNode
	fallback  Iterator       // tuple pipeline, for multi-item free variables
	in        Iterator       // the scan
	sc        *spark.Context // executor pool configuration + metrics (nil in bare tests)
	workers   int            // morsel worker pool size (Config.Executors)
	nslots    int
	externals []string
	posSlots  []int // slots bound to the 1-based scan position (at / count)
	// prune is the compiler's zone-map pushdown: the prefix of
	// and-conjuncts from the pipeline's leading where run that a
	// segment-backed scan may test against per-segment zone maps to skip
	// whole segments. Empty when the plan has no prunable prefix; unused
	// when the scan is not segment-backed.
	prune   []segment.Predicate
	join    *vjoinExec
	ops     []vop
	group   *vgroupExec
	sort    *vsortExec
	project vexpr // non-group row projection
	// fields/fieldSlots is the lane-native projection: when non-nil, the
	// plan proved every consumption of the scan variable goes through these
	// top-level fields (VectorPlan.Columns), each compiled to the batch slot
	// at the same index. Segment morsels then fetch just these columns'
	// decoded lanes and never materialize row items; raw and item morsels
	// still decode rows but expand them into the same field lanes. Slot 0
	// (the scan variable itself) stays nil in every batch — the compiler
	// rejects any expression that would read it.
	fields     []string
	fieldSlots []int

	// Profiling operator indices, -1 when the stage is absent or not
	// registered. They name the same operators the tuple pipeline's
	// profiledClause wrappers record into — only one backend runs per
	// evaluation, so the counts never mix.
	opScan, opJoin, opGroup, opSort, opRoot int
}

func (v *vectorIter) RDD(*DynamicContext) (*spark.RDD[item.Item], error) {
	return nil, Errorf("vector plans execute locally")
}

// resolveExternals resolves the pipeline's free variables against the
// dynamic context into per-evaluation constant columns. A multi-item
// binding cannot ride in a single-valued column: fellBack=true tells the
// caller to re-route the evaluation through the tuple pipeline.
func (v *vectorIter) resolveExternals(dc *DynamicContext) (vs *vstate, fellBack bool, err error) {
	vs = &vstate{ext: make([]*vector.Col, len(v.externals))}
	for i, name := range v.externals {
		seq, rdd, ok := dc.Resolve(name)
		if !ok {
			return nil, false, Errorf("variable $%s is not bound", name)
		}
		if rdd != nil {
			// A cluster-resident binding would materialize through the
			// driver-side scan, as the tuple path's reference does — but a
			// column only carries it when it is empty or a singleton, so
			// stop after two items: that already decides the fallback.
			var items []item.Item
			err := rdd.Scan(func(it item.Item) error {
				items = append(items, it)
				if len(items) > 1 {
					return errLimitReached
				}
				return nil
			})
			if err != nil && err != errLimitReached {
				return nil, false, err
			}
			seq = items
		}
		if len(seq) > 1 {
			return nil, true, nil
		}
		if len(seq) == 1 {
			vs.ext[i] = vector.ConstCol(seq[0])
		} else {
			vs.ext[i] = vector.ConstCol(nil)
		}
	}
	return vs, false, nil
}

func (v *vectorIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	vs, fellBack, err := v.resolveExternals(dc)
	if err != nil {
		return err
	}
	if fellBack {
		// Columns are single-valued; a sequence-valued free variable
		// re-routes this evaluation through the tuple pipeline.
		return v.fallback.Stream(dc, yield)
	}
	vs.prof = dc.Profile()
	if v.sc != nil {
		v.sc.AddVectorRun()
		if v.sort != nil {
			if v.sort.topK > 0 {
				v.sc.AddVectorTopKRun()
			} else {
				v.sc.AddVectorSortRun()
			}
		}
	}
	var jr *vjoinRun
	if v.join != nil {
		jr = &vjoinRun{dc: dc}
	}
	ctx := dc.GoContext()
	if v.workers > 1 {
		return v.streamParallel(dc, vs, jr, ctx, yield)
	}
	return v.streamSerial(dc, vs, jr, ctx, yield)
}

// rawScanner is implemented by scan sources that can stream raw,
// not-yet-decoded records (JSON-Lines storage). The vector backend prefers
// it: the producer hands byte records to the morsel workers, which decode
// them — and incur the simulated storage round trips — in parallel,
// mirroring how the RDD path's partition tasks own both the read and the
// decode. Decoding dominates real scan cost, so moving it off the
// sequential producer is what lets the scan side of a vector pipeline
// scale with the worker pool.
type rawScanner interface {
	// StreamRaw streams raw records with their consumed byte counts.
	// handled must be decided before the first yield: false means the
	// source cannot serve this evaluation raw (an in-memory collection)
	// and the caller must scan decoded items instead.
	StreamRaw(dc *DynamicContext, yield func(line []byte, bytes int64) error) (handled bool, err error)
}

// segmentSource is implemented by scan sources that can serve an
// evaluation from the columnar segment store. The vector backend prefers
// it over both raw and item scanning: the producer walks segment metadata
// only — testing pushed-down predicates against per-segment zone maps to
// skip segments outright — and the morsel workers fetch decoded column
// batches through the byte-bounded buffer pool, so a hot segment costs no
// parse and no simulated storage round trip at all.
type segmentSource interface {
	// SegmentDataset returns the dataset backing this evaluation, or nil
	// when the source cannot serve segments (no store configured, an
	// in-memory collection, or ingest failed — the caller then falls back
	// to raw/item scanning, which surfaces any real source error).
	SegmentDataset(dc *DynamicContext) *segment.Dataset
}

// vmorselResult is one processed morsel: projected rows in scan order, the
// morsel's partial aggregation table, or (for an order-by tail) the
// morsel's sorted run plus the per-spec key type observations the global
// string/number mix check needs.
type vmorselResult struct {
	items     []item.Item
	groups    *vector.Groups
	run       *vector.SortRows
	sawString []bool
	sawNumber []bool
}

// decodeRows turns a raw morsel into its item rows, charging the morsel's
// simulated storage round trips and record count exactly as an RDD
// partition task would while scanning. Segment morsels fetch their rows
// through the buffer pool: the pool's per-segment single-flight makes one
// worker pay the cold decode (and its storage round trips) while the
// other morsels of the same segment ride the cached residency for free.
// Item morsels pass through.
func (v *vectorIter) decodeRows(m vmorsel) ([]item.Item, error) {
	if m.ds != nil {
		rows, coldBlocks, err := m.ds.Fetch(m.seg)
		if err != nil {
			return nil, err
		}
		if v.sc != nil {
			if coldBlocks > 0 {
				v.sc.SimulateIO(coldBlocks)
				v.sc.AddSegmentCacheMiss(1)
			} else {
				v.sc.AddSegmentCacheHits(1)
			}
			v.sc.AddRecordsRead(int64(m.n))
		}
		return rows[m.off : m.off+m.n], nil
	}
	if m.lines == nil {
		return m.rows, nil
	}
	if v.sc != nil {
		v.sc.SimulateIO(m.blocks)
		v.sc.AddRecordsRead(int64(len(m.lines)))
	}
	rows := make([]item.Item, 0, len(m.lines))
	for _, line := range m.lines {
		it, err := jparse.Parse(line)
		if err != nil {
			return nil, Errorf("json-file: %v", err)
		}
		rows = append(rows, it)
	}
	return rows, nil
}

// morselBatch turns one scan morsel into its initial column batch. On a
// projected plan a segment morsel fetches only the plan's columns through
// the buffer pool — decoded lanes slice straight into the field slots, no
// row item is ever built — while raw and item morsels decode rows and
// expand them into the same field lanes, so the compiled expressions see
// one batch shape regardless of the source. Whole-row plans keep the
// PR-9 item path: rows pack into the scan column at slot 0.
func (v *vectorIter) morselBatch(m vmorsel) (*vbatch, error) {
	if m.ds != nil && v.fields != nil {
		cs, coldBlocks, err := m.ds.FetchBatch(m.seg, v.fields)
		if err != nil {
			return nil, err
		}
		if v.sc != nil {
			if coldBlocks > 0 {
				v.sc.SimulateIO(coldBlocks)
				v.sc.AddSegmentCacheMiss(1)
			} else {
				v.sc.AddSegmentCacheHits(1)
			}
			v.sc.AddRecordsRead(int64(m.n))
		}
		b := &vbatch{n: m.n, cols: make([]*vector.Col, v.nslots)}
		for i, f := range v.fields {
			b.cols[v.fieldSlots[i]] = cs.Col(f).Slice(m.off, m.n)
		}
		return b, nil
	}
	rows, err := v.decodeRows(m)
	if err != nil {
		return nil, err
	}
	scan := vector.NewCol(len(rows))
	for _, it := range rows {
		scan.AppendItem(it)
	}
	b := &vbatch{n: scan.Len(), cols: make([]*vector.Col, v.nslots)}
	if v.fields != nil {
		for i, f := range v.fields {
			b.cols[v.fieldSlots[i]] = vector.Lookup(scan, f, b.n)
		}
		return b, nil
	}
	b.cols[0] = scan
	return b, nil
}

// encodeVectorJoinKey encodes one row's equi-join keys from the evaluated
// key columns into buf, mirroring the tuple path's encodeJoinKeys: an
// absent key stops (the row cannot match, and later keys never contribute
// to the type mask), and the mask records each seen key's type tag for the
// cross-side comparability check. Vector key expressions are single-valued
// by construction, so the tuple path's "binds a sequence" error cannot
// arise here.
func encodeVectorJoinKey(keyCols []*vector.Col, row int, buf []byte) (key []byte, mask uint64, ok bool, err error) {
	for i, kc := range keyCols {
		if kc.Absent(row) {
			return buf, mask, false, nil
		}
		sk, e := kc.SortKey(row)
		if e != nil {
			return buf, mask, false, Errorf("join key %d: %v", i+1, e)
		}
		mask |= (1 << uint(sk.Tag)) << (8 * uint(i))
		buf = item.AppendSortKey(buf, sk)
	}
	return buf, mask, true, nil
}

// buildJoinTable materializes the right (build) side once and hashes it by
// encoded key, pre-sizing the table from the scan cardinality. Rows whose
// key is absent drop out (an eq against the empty sequence matches
// nothing); per-bucket rows keep build order so probe expansion reproduces
// the nested loop's right-input order.
func (v *vectorIter) buildJoinTable(vs *vstate, jr *vjoinRun) error {
	j := v.join
	items, err := Materialize(j.rightIn, jr.dc)
	if err != nil {
		return err
	}
	jr.table = make(map[string][]item.Item, len(items))
	var buf []byte
	for start := 0; start < len(items); start += vector.BatchSize {
		end := start + vector.BatchSize
		if end > len(items) {
			end = len(items)
		}
		col := vector.NewCol(end - start)
		for _, it := range items[start:end] {
			col.AppendItem(it)
		}
		rb := &vbatch{n: col.Len(), cols: []*vector.Col{col}}
		keyCols := make([]*vector.Col, len(j.rightKeys))
		for ki, ke := range j.rightKeys {
			kc, err := ke.eval(vs, rb)
			if err != nil {
				return err
			}
			keyCols[ki] = kc
		}
		for i := 0; i < rb.n; i++ {
			key, mask, ok, err := encodeVectorJoinKey(keyCols, i, buf[:0])
			buf = key
			if err != nil {
				return err
			}
			jr.rmask |= mask
			if ok {
				jr.table[string(key)] = append(jr.table[string(key)], items[start+i])
			}
		}
	}
	return nil
}

// probeJoin streams one probe batch through the hash table, expanding each
// left row into one output row per match (left-major, matches in build
// order). The build runs lazily on the first non-empty probe batch; the
// cross-side type comparability check runs per probe row before the
// missing-key skip, exactly as the tuple path orders them.
func (v *vectorIter) probeJoin(vs *vstate, jr *vjoinRun, b *vbatch) (*vbatch, error) {
	if b.n == 0 {
		return b, nil
	}
	jr.once.Do(func() { jr.err = v.buildJoinTable(vs, jr) })
	if jr.err != nil {
		return nil, jr.err
	}
	j := v.join
	keyCols := make([]*vector.Col, len(j.leftKeys))
	for ki, ke := range j.leftKeys {
		kc, err := ke.eval(vs, b)
		if err != nil {
			return nil, err
		}
		keyCols[ki] = kc
	}
	matches := make([][]item.Item, b.n)
	total := 0
	var buf []byte
	for i := 0; i < b.n; i++ {
		key, mask, ok, err := encodeVectorJoinKey(keyCols, i, buf[:0])
		buf = key
		if err != nil {
			return nil, err
		}
		if err := joinKeyTypeConflict(mask, jr.rmask, len(j.leftKeys)); err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		matches[i] = jr.table[string(key)]
		total += len(matches[i])
	}
	if v.sc != nil {
		v.sc.AddVectorJoinRows(int64(total))
	}
	nb := &vbatch{n: total, cols: make([]*vector.Col, len(b.cols))}
	for slot, c := range b.cols {
		if c == nil || slot == j.rightSlot {
			continue
		}
		if c.Const {
			nb.cols[slot] = c
			continue
		}
		oc := vector.NewCol(total)
		for i := 0; i < b.n; i++ {
			it := c.Item(i)
			for range matches[i] {
				oc.AppendItem(it)
			}
		}
		nb.cols[slot] = oc
	}
	rcol := vector.NewCol(total)
	for i := 0; i < b.n; i++ {
		for _, it := range matches[i] {
			rcol.AppendItem(it)
		}
	}
	nb.cols[j.rightSlot] = rcol
	return nb, nil
}

// sortMorsel encodes the batch's order-by keys and produces this morsel's
// stably sorted run (truncated to k for a fused top-k), carrying each
// surviving row's bound column values for the deferred projection.
func (v *vectorIter) sortMorsel(vs *vstate, b *vbatch) (*vmorselResult, error) {
	s := v.sort
	res := &vmorselResult{
		run:       vector.NewSortRows(s.specs),
		sawString: make([]bool, len(s.keys)),
		sawNumber: make([]bool, len(s.keys)),
	}
	keyCols := make([]*vector.Col, len(s.keys))
	for ki, ke := range s.keys {
		kc, err := ke.eval(vs, b)
		if err != nil {
			return nil, err
		}
		keyCols[ki] = kc
	}
	for i := 0; i < b.n; i++ {
		keys := make([]item.SortKey, len(keyCols))
		for ki, kc := range keyCols {
			sk, err := kc.OrderKey(i, s.emptyGreatest[ki])
			if err != nil {
				return nil, Errorf("order by: %v", err)
			}
			keys[ki] = sk
			switch sk.Tag {
			case item.TagString:
				res.sawString[ki] = true
			case item.TagNumber:
				res.sawNumber[ki] = true
			}
		}
		row := i
		vals := func() []item.Item {
			vs := make([]item.Item, len(b.cols))
			for slot, c := range b.cols {
				if c != nil {
					vs[slot] = c.Item(row)
				}
			}
			return vs
		}
		if s.topK > 0 {
			res.run.AppendTopK(keys, int(s.topK), vals)
			continue
		}
		res.run.Append(keys, vals())
	}
	if s.topK == 0 {
		res.run.Sort()
	}
	return res, nil
}

// processMorsel decodes one morsel into a column batch and runs it through
// the pipeline: a join head expands rows against the build table,
// positional slots fill from the morsel's scan indices, lets bind their
// slots, filters compact the batch, and the tail projects the surviving
// rows, folds them into a fresh partial aggregation table, or sorts them
// into a run.
func (v *vectorIter) processMorsel(vs *vstate, jr *vjoinRun, m vmorsel) (*vmorselResult, error) {
	if v.sc != nil {
		v.sc.AddVectorMorsels(1)
	}
	// Profiling is per-stage when a profile rides the evaluation; every
	// recording site below no-ops on the nil ops of a nil profile, and
	// time.Now is only called when one is attached.
	prof := vs.prof
	var t0 time.Time
	if prof != nil {
		t0 = time.Now()
	}
	b, err := v.morselBatch(m)
	if err != nil {
		return nil, err
	}
	if len(v.posSlots) > 0 {
		// Every morsel but the last is exactly BatchSize rows, so the
		// 1-based scan position of row i is idx*BatchSize + i + 1.
		base := int64(m.idx) * int64(vector.BatchSize)
		pc := vector.NewCol(b.n)
		for i := 0; i < b.n; i++ {
			pc.AppendInt(base + int64(i) + 1)
		}
		for _, slot := range v.posSlots {
			b.cols[slot] = pc
		}
	}
	if prof != nil {
		op := prof.Op(v.opScan)
		op.AddRows(int64(b.n))
		op.AddBatches(1)
		now := time.Now()
		op.AddWall(now.Sub(t0))
		t0 = now
	}
	if v.join != nil {
		nb, err := v.probeJoin(vs, jr, b)
		if err != nil {
			return nil, err
		}
		b = nb
		if prof != nil {
			op := prof.Op(v.opJoin)
			op.AddRows(int64(b.n))
			op.AddBatches(1)
			now := time.Now()
			op.AddWall(now.Sub(t0))
			t0 = now
		}
	}
	for _, op := range v.ops {
		col, err := op.expr.eval(vs, b)
		if err != nil {
			return nil, err
		}
		if op.slot >= 0 {
			b.cols[op.slot] = col
		} else {
			keep := make([]bool, b.n)
			kept := 0
			for i := 0; i < b.n; i++ {
				if col.EBV(i) {
					keep[i] = true
					kept++
				}
			}
			if kept < b.n {
				b = b.compact(keep, kept)
			}
		}
		if prof != nil {
			pop := prof.Op(op.opID)
			pop.AddRows(int64(b.n))
			pop.AddBatches(1)
			now := time.Now()
			pop.AddWall(now.Sub(t0))
			t0 = now
		}
		if b.n == 0 {
			break
		}
	}
	if v.sort != nil {
		res, err := v.sortMorsel(vs, b)
		if err == nil && prof != nil {
			op := prof.Op(v.opSort)
			op.AddRows(int64(b.n))
			op.AddBatches(1)
			op.AddWall(time.Since(t0))
		}
		return res, err
	}
	res := &vmorselResult{}
	if v.group != nil {
		res.groups = vector.NewGroups(len(v.group.keyExprs), v.group.kinds)
		if b.n > 0 {
			if err := v.updateGroups(vs, b, res.groups); err != nil {
				return nil, err
			}
		}
		if prof != nil {
			// Rows out of a group stage only exist after the global merge;
			// per-morsel we record batches and fold time (emitGroups adds
			// the group cardinality when the merged table projects).
			op := prof.Op(v.opGroup)
			op.AddBatches(1)
			op.AddWall(time.Since(t0))
		}
		return res, nil
	}
	if b.n == 0 {
		return res, nil
	}
	col, err := v.project.eval(vs, b)
	if err != nil {
		return nil, err
	}
	res.items = make([]item.Item, 0, b.n)
	for i := 0; i < b.n; i++ {
		if it := col.Item(i); it != nil {
			res.items = append(res.items, it)
		}
	}
	if prof != nil {
		op := prof.Op(v.opRoot)
		op.AddRows(int64(len(res.items)))
		op.AddBatches(1)
		op.AddWall(time.Since(t0))
	}
	return res, nil
}

// vmergeState is the coordinator's running evaluation state: the merged
// aggregation table, the collected (or running top-k merged) sorted runs,
// and the per-spec key type observations feeding the global mix check.
type vmergeState struct {
	groups    *vector.Groups
	runs      []*vector.SortRows
	topk      *vector.SortRows
	sawString []bool
	sawNumber []bool
}

func (v *vectorIter) newMergeState() *vmergeState {
	st := &vmergeState{}
	if v.sort != nil {
		st.sawString = make([]bool, len(v.sort.keys))
		st.sawNumber = make([]bool, len(v.sort.keys))
	}
	return st
}

// mergeResult folds one morsel's result — in morsel index order — into the
// evaluation: non-group rows yield immediately, partial aggregation tables
// merge into the running table, sorted runs collect (or two-way merge into
// the running top-k, bounding memory to k). stop=true asks the caller to
// cancel the remaining scan: an early-exit existence test is decided.
func (v *vectorIter) mergeResult(st *vmergeState, res *vmorselResult, yield func(item.Item) error) (stop bool, err error) {
	if v.sort != nil {
		for ki := range st.sawString {
			st.sawString[ki] = st.sawString[ki] || res.sawString[ki]
			st.sawNumber[ki] = st.sawNumber[ki] || res.sawNumber[ki]
		}
		if v.sort.topK > 0 {
			if st.topk == nil {
				st.topk = res.run
			} else {
				st.topk = vector.MergeTopK(st.topk, res.run, int(v.sort.topK))
			}
			return false, nil
		}
		st.runs = append(st.runs, res.run)
		return false, nil
	}
	if v.group != nil {
		if st.groups == nil {
			st.groups = res.groups
		} else if err := st.groups.Merge(res.groups); err != nil {
			return false, Errorf("%v", err)
		}
		if v.group.earlyExit && st.groups.GrandCount() > 0 {
			// The existence test is decided; no further morsel can change
			// it, so the scan and the remaining morsels are cancelled.
			return true, nil
		}
		return false, nil
	}
	//rumble:ctxpoll-ok bounded: emits one morsel's batch; the morsel driver polls GoContext between morsels
	for _, it := range res.items {
		if err := yield(it); err != nil {
			return false, err
		}
	}
	return false, nil
}

// finish emits the evaluation's tail after every merged morsel: the merged
// sorted runs (projected in merge order), or the merged aggregation table.
func (v *vectorIter) finish(vs *vstate, st *vmergeState, ctx context.Context, yield func(item.Item) error) error {
	if v.sort != nil {
		return v.finishSort(vs, st, ctx, yield)
	}
	return v.finishGroups(vs, st.groups, ctx, yield)
}

// finishSort runs the global string/number mix check the tuple path applies
// after seeing the whole stream, then k-way merges the per-morsel runs and
// projects the return expression over the merged order in batches.
func (v *vectorIter) finishSort(vs *vstate, st *vmergeState, ctx context.Context, yield func(item.Item) error) error {
	s := v.sort
	for ki := range st.sawString {
		if st.sawString[ki] && st.sawNumber[ki] {
			return Errorf("order by: key %d mixes strings and numbers across the tuple stream", ki+1)
		}
	}
	runs := st.runs
	if s.topK > 0 {
		if st.topk == nil {
			return nil
		}
		runs = []*vector.SortRows{st.topk}
	}
	var rootOp *profile.Op
	var rootStart time.Time
	var rootRows int64
	if vs.prof != nil {
		if rootOp = vs.prof.Op(v.opRoot); rootOp != nil {
			rootStart = time.Now()
		}
	}
	b := &vbatch{cols: make([]*vector.Col, v.nslots)}
	for i := range b.cols {
		b.cols[i] = vector.NewCol(vector.BatchSize)
	}
	flush := func() error {
		if b.n == 0 {
			return nil
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		pc, err := s.project.eval(vs, b)
		if err != nil {
			return err
		}
		for i := 0; i < b.n; i++ {
			if it := pc.Item(i); it != nil {
				rootRows++
				if err := yield(it); err != nil {
					return err
				}
			}
		}
		b = &vbatch{cols: make([]*vector.Col, v.nslots)}
		for i := range b.cols {
			b.cols[i] = vector.NewCol(vector.BatchSize)
		}
		return nil
	}
	err := vector.MergeRuns(runs, func(vals []item.Item) error {
		for slot, c := range b.cols {
			c.AppendItem(vals[slot])
		}
		b.n++
		if b.n >= vector.BatchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if rootOp != nil {
		rootOp.AddRows(rootRows)
		rootOp.AddBatches(1)
		rootOp.AddWall(time.Since(rootStart))
	}
	return nil
}

// finishGroups emits the merged aggregation table (if the pipeline has
// one), materializing the implicit group of a grand aggregate first.
func (v *vectorIter) finishGroups(vs *vstate, merged *vector.Groups, ctx context.Context, yield func(item.Item) error) error {
	if v.group == nil {
		return nil
	}
	if merged == nil {
		merged = vector.NewGroups(len(v.group.keyExprs), v.group.kinds)
	}
	if v.group.grand {
		merged.EnsureGrand()
	}
	return v.emitGroups(vs, merged, ctx, yield)
}

// streamSerial is the single-worker evaluation: morsels process inline on
// the calling goroutine, with the same per-morsel partial fold and
// in-order merge the parallel path uses.
func (v *vectorIter) streamSerial(dc *DynamicContext, vs *vstate, jr *vjoinRun, ctx context.Context, yield func(item.Item) error) error {
	if v.sc != nil {
		v.sc.AddVectorWorkers(1)
	}
	vs.prof.SetWorkers(1)
	st := v.newMergeState()
	stopped := false
	_, err := v.scanMorsels(dc, nil, func(m vmorsel) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		res, err := v.processMorsel(vs, jr, m)
		if err != nil {
			return err
		}
		stop, err := v.mergeResult(st, res, yield)
		if err != nil {
			return err
		}
		if stop {
			stopped = true
			return errStopScan
		}
		return nil
	})
	if err != nil && !(stopped && err == errStopScan) {
		return err
	}
	return v.finish(vs, st, ctx, yield)
}

// errStopScan aborts the producer's scan when the evaluation no longer
// needs further morsels (a lower-indexed morsel failed, the consumer
// stopped, or the context was cancelled). It never escapes the vector
// backend.
var errStopScan = fmt.Errorf("runtime: vector scan stopped")

// vmorsel is one scan morsel awaiting a worker: a segment slice when the
// source scans segments (the worker fetches the decoded rows through the
// buffer pool), raw byte records when the source scans raw (the worker
// decodes them), decoded items otherwise.
type vmorsel struct {
	idx    int
	rows   []item.Item
	lines  [][]byte
	blocks int // simulated storage blocks behind lines, charged by the worker

	// Segment-backed scan: the morsel is rows [off, off+n) of segment seg
	// in ds. ds==nil means a raw or item morsel.
	ds     *segment.Dataset
	seg    int
	off, n int
}

// scanMorsels runs the scan on the calling goroutine, cutting it into
// BatchSize-record morsels handed to emit in scan-index order. Raw-capable
// sources stream undecoded records so the workers own the decode; other
// sources stream items. rowCheck, when non-nil, runs per input record for
// early abort. Returns the number of morsels emit accepted.
func (v *vectorIter) scanMorsels(dc *DynamicContext, rowCheck func() error, emit func(m vmorsel) error) (int, error) {
	idx := 0
	if src, ok := v.in.(segmentSource); ok {
		if ds := src.SegmentDataset(dc); ds != nil {
			return v.scanSegments(ds, rowCheck, emit)
		}
	}
	if raw, ok := v.in.(rawScanner); ok {
		var lines [][]byte
		// Block accounting is byte-accurate across morsels: each morsel
		// is charged the whole blocks the cumulative scan position crossed
		// while it filled, and the trailing partial block rounds up once
		// per scan — mirroring dfs.ReadLines' accounting rather than
		// ceiling every morsel to a full block.
		var cum, prev int64
		handled, err := raw.StreamRaw(dc, func(line []byte, n int64) error {
			if rowCheck != nil {
				if err := rowCheck(); err != nil {
					return err
				}
			}
			lines = append(lines, line)
			cum += n
			if len(lines) >= vector.BatchSize {
				m := vmorsel{idx: idx, lines: lines, blocks: int(cum/dfs.BlockSize - prev/dfs.BlockSize)}
				lines, prev = nil, cum
				if err := emit(m); err != nil {
					return err
				}
				idx++
			}
			return nil
		})
		if handled {
			if err != nil {
				return idx, err
			}
			blocks := int(cum/dfs.BlockSize - prev/dfs.BlockSize)
			if cum%dfs.BlockSize > 0 {
				blocks++ // the residual partial block still costs a round trip
			}
			if len(lines) > 0 {
				if err := emit(vmorsel{idx: idx, lines: lines, blocks: blocks}); err != nil {
					return idx, err
				}
				idx++
			}
			return idx, nil
		}
		if err != nil {
			return idx, err
		}
	}
	var rows []item.Item
	err := v.in.Stream(dc, func(it item.Item) error {
		if rowCheck != nil {
			if err := rowCheck(); err != nil {
				return err
			}
		}
		if rows == nil {
			rows = make([]item.Item, 0, vector.BatchSize)
		}
		rows = append(rows, it)
		if len(rows) >= vector.BatchSize {
			m := vmorsel{idx: idx, rows: rows}
			rows = nil
			if err := emit(m); err != nil {
				return err
			}
			idx++
		}
		return nil
	})
	if err != nil {
		return idx, err
	}
	if len(rows) > 0 {
		if err := emit(vmorsel{idx: idx, rows: rows}); err != nil {
			return idx, err
		}
		idx++
	}
	return idx, nil
}

// scanSegments cuts a segment-backed dataset into BatchSize-row morsels.
// The producer touches metadata only: pushed-down predicates run against
// each segment's zone maps first, and a provably irrelevant segment is
// skipped before any of its rows is fetched or decoded (SegmentsSkipped
// counts them; SegmentsRead counts the rest). Morsel indices stay
// contiguous across skips, which is safe because the compiler never
// records prune predicates on positional pipelines — and segment.Skip
// guarantees a skipped segment contributes no rows and no errors, so
// emit order and error selection match an unpruned scan exactly. A full
// segment holds segment.Rows = 4*BatchSize rows, so every morsel but the
// final segment's tail is exactly BatchSize rows, as the positional
// columns require.
func (v *vectorIter) scanSegments(ds *segment.Dataset, rowCheck func() error, emit func(m vmorsel) error) (int, error) {
	idx := 0
	for si := 0; si < ds.NumSegments(); si++ {
		if rowCheck != nil {
			if err := rowCheck(); err != nil {
				return idx, err
			}
		}
		meta := ds.Meta(si)
		if len(v.prune) > 0 && segment.Skip(meta, v.prune) {
			if v.sc != nil {
				v.sc.AddSegmentsSkipped(1)
			}
			continue
		}
		if v.sc != nil {
			v.sc.AddSegmentsRead(1)
		}
		for off := 0; off < meta.Rows; off += vector.BatchSize {
			n := meta.Rows - off
			if n > vector.BatchSize {
				n = vector.BatchSize
			}
			if err := emit(vmorsel{idx: idx, ds: ds, seg: si, off: off, n: n}); err != nil {
				return idx, err
			}
			idx++
		}
	}
	return idx, nil
}

// vresult is one morsel's outcome traveling back to the coordinator.
type vresult struct {
	idx     int
	res     *vmorselResult
	err     error
	skipped bool // cancelled: a lower-indexed morsel already failed
}

// lowerFail lowers f to idx if idx is smaller, so f converges on the
// lowest-indexed failing morsel whatever order failures are observed in.
func lowerFail(f *atomic.Int64, idx int64) {
	for {
		cur := f.Load()
		if idx >= cur || f.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// streamParallel is the morsel-driven evaluation: a producer goroutine
// runs the scan and packs BatchSize-row morsels tagged with their scan
// index, v.workers workers pull and process them, and the coordinator (the
// calling goroutine) merges results strictly in index order — yielding
// projected rows, merging partial aggregation tables, and surfacing the
// lowest-indexed morsel error. Workers poll the Go context between morsels
// exactly as spark.runStage's task loop does, and a failure cancels every
// higher-indexed morsel (workers skip them, the producer stops scanning).
func (v *vectorIter) streamParallel(dc *DynamicContext, vs *vstate, jr *vjoinRun, ctx context.Context, yield func(item.Item) error) error {
	workers := v.workers
	if v.sc != nil {
		v.sc.AddVectorWorkers(int64(workers))
	}
	vs.prof.SetWorkers(workers)
	var (
		work    = make(chan vmorsel, workers)
		results = make(chan vresult, workers)
		scanEnd = make(chan vresult, 1) // idx = morsel count, err = scan error
		done    = make(chan struct{})
		// pace bounds morsels in flight (queued, processing, or waiting in
		// the coordinator's reorder buffer): the producer acquires a slot
		// per morsel, the coordinator releases it when the morsel merges.
		// Without it one slow morsel would let the scan run ahead and
		// materialize the rest of the output in the reorder buffer.
		pace    = make(chan struct{}, 4*workers)
		failIdx atomic.Int64
		wg      sync.WaitGroup
	)
	failIdx.Store(math.MaxInt64)

	// Producer: run the scan, cut morsels, hand them to the pool. The scan
	// itself stays sequential — it is the ordered source the morsel
	// indices are defined by — but raw-capable sources leave the decode to
	// the workers, so the producer's share of the scan is just the reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(work)
		rowCheck := func() error {
			select {
			case <-done:
				return errStopScan
			default:
				return nil
			}
		}
		count, err := v.scanMorsels(dc, rowCheck, func(m vmorsel) error {
			if int64(m.idx) > failIdx.Load() {
				return errStopScan // later morsels are cancelled
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			select {
			case pace <- struct{}{}:
			case <-done:
				return errStopScan
			}
			select {
			case work <- m:
				return nil
			case <-done:
				return errStopScan
			}
		})
		if err == errStopScan {
			// The coordinator aborted (or cancelled the tail); it already
			// holds the error that matters.
			err = nil
		}
		scanEnd <- vresult{idx: count, err: err}
	}()

	// Workers: pull morsels until the producer closes the queue. A morsel
	// above the lowest known failure is skipped — its output could never
	// be observed — while lower-indexed morsels still run to completion,
	// because one of them may fail (and win) or still owe output.
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Per-worker busy/wait split: the gap before a morsel arrives is
			// wait, decode+process is busy; result-send blocking folds into
			// the next wait. Profile counters are atomics, so the workers
			// record concurrently without coordination.
			prof := vs.prof
			var last time.Time
			if prof != nil {
				last = time.Now()
			}
			for m := range work {
				if prof != nil {
					now := time.Now()
					prof.AddWait(now.Sub(last))
					last = now
				}
				r := vresult{idx: m.idx}
				switch {
				case int64(m.idx) > failIdx.Load():
					r.skipped = true
				case ctx != nil && ctx.Err() != nil:
					r.err = ctx.Err()
					lowerFail(&failIdx, int64(m.idx))
				default:
					res, err := v.processMorsel(vs, jr, m)
					if err != nil {
						r.err = err
						lowerFail(&failIdx, int64(m.idx))
					} else {
						r.res = res
					}
				}
				if prof != nil {
					now := time.Now()
					prof.AddBusy(now.Sub(last))
					last = now
				}
				select {
				case results <- r:
				case <-done:
					return
				}
			}
		}()
	}

	abort := func(err error) error {
		close(done)
		wg.Wait()
		return err
	}

	// Coordinator: reorder results and merge them strictly in morsel index
	// order, so emit order and error selection are those of a sequential
	// left-to-right run.
	st := v.newMergeState()
	pending := map[int]vresult{}
	next, total := 0, -1
	var scanErr error
	for total < 0 || next < total {
		if r, ok := pending[next]; ok {
			delete(pending, next)
			<-pace // the morsel left the pipeline; let the scan advance
			if r.err != nil {
				return abort(r.err)
			}
			if r.skipped {
				// Unreachable: a skip implies a lower-indexed failure that
				// returns above. Fail loudly rather than drop rows.
				return abort(Errorf("vector: morsel %d cancelled without a failing predecessor", r.idx))
			}
			stop, err := v.mergeResult(st, r.res, yield)
			if err != nil {
				return abort(err)
			}
			if stop {
				// The early-exit decision is made by the merged prefix
				// alone, so cancelling the scan and discarding the pending
				// higher-indexed morsels cannot change the result —
				// whatever the worker count.
				close(done)
				wg.Wait()
				return v.finish(vs, st, ctx, yield)
			}
			next++
			continue
		}
		select {
		case r := <-results:
			pending[r.idx] = r
		case se := <-scanEnd:
			total, scanErr = se.idx, se.err
			scanEnd = nil
		}
	}
	// Every sent morsel was consumed above, so the pool drains naturally.
	wg.Wait()
	if scanErr != nil {
		// The scan failed after its last complete morsel: everything
		// before it was already merged, exactly as the sequential path
		// would have flushed it.
		return scanErr
	}
	return v.finish(vs, st, ctx, yield)
}

// updateGroups binds the grouping keys (left to right, each visible to the
// specs after it), evaluates the aggregate arguments, and folds the batch
// into the hash table.
func (v *vectorIter) updateGroups(vs *vstate, b *vbatch, groups *vector.Groups) error {
	g := v.group
	keyCols := make([]*vector.Col, len(g.keyExprs))
	for i, ke := range g.keyExprs {
		col, err := ke.eval(vs, b)
		if err != nil {
			return err
		}
		keyCols[i] = col
		b.cols[g.keySlots[i]] = col
	}
	aggCols := make([]*vector.Col, len(g.aggArgs))
	for i, ae := range g.aggArgs {
		col, err := ae.eval(vs, b)
		if err != nil {
			return err
		}
		aggCols[i] = col
	}
	if err := groups.Update(keyCols, aggCols, b.n); err != nil {
		return Errorf("%v", err)
	}
	return nil
}

// emitGroups builds group batches (keys plus finalized aggregates) in
// first-seen order and projects the return expression over them.
func (v *vectorIter) emitGroups(vs *vstate, groups *vector.Groups, ctx context.Context, yield func(item.Item) error) error {
	g := v.group
	nk := len(g.keyExprs)
	var rootOp *profile.Op
	var rootStart time.Time
	var rootRows int64
	if vs.prof != nil {
		// The merged table's cardinality is the group stage's row count;
		// the projected output rows belong to the whole-FLWOR operator.
		vs.prof.Op(v.opGroup).AddRows(int64(groups.Len()))
		if rootOp = vs.prof.Op(v.opRoot); rootOp != nil {
			rootStart = time.Now()
		}
	}
	for start := 0; start < groups.Len(); start += vector.BatchSize {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		end := start + vector.BatchSize
		if end > groups.Len() {
			end = groups.Len()
		}
		gb := &vbatch{n: end - start, cols: make([]*vector.Col, g.gslots)}
		for ki := 0; ki < nk; ki++ {
			col := vector.NewCol(gb.n)
			for gi := start; gi < end; gi++ {
				col.AppendItem(groups.Key(gi, ki))
			}
			gb.cols[ki] = col
		}
		for j := range g.kinds {
			col := vector.NewCol(gb.n)
			for gi := start; gi < end; gi++ {
				res, err := groups.Agg(gi, j)
				if err != nil {
					return Errorf("%v", err)
				}
				col.AppendItem(res)
			}
			gb.cols[nk+j] = col
		}
		pc, err := g.project.eval(vs, gb)
		if err != nil {
			return err
		}
		for i := 0; i < gb.n; i++ {
			if it := pc.Item(i); it != nil {
				rootRows++
				if err := yield(it); err != nil {
					return err
				}
			}
		}
	}
	if rootOp != nil {
		rootOp.AddRows(rootRows)
		rootOp.AddBatches(1)
		rootOp.AddWall(time.Since(rootStart))
	}
	return nil
}

// vectorAggKinds maps aggregate builtin names to their fold kinds.
var vectorAggKinds = map[string]vector.AggKind{
	"count": vector.AggCount,
	"sum":   vector.AggSum,
	"avg":   vector.AggAvg,
	"min":   vector.AggMin,
	"max":   vector.AggMax,
}

// vexternals interns the pipeline's free variables. It is shared between
// the slot environments of one plan (a join's probe and build sides), so a
// free variable resolves once per evaluation wherever it is referenced.
type vexternals struct {
	idx   map[string]int
	names []string
}

func (ex *vexternals) ref(name string) *vextExpr {
	if idx, ok := ex.idx[name]; ok {
		return &vextExpr{idx: idx}
	}
	idx := len(ex.names)
	ex.names = append(ex.names, name)
	ex.idx[name] = idx
	return &vextExpr{idx: idx}
}

// vcomp compiles vector expressions against a slot environment. The main
// environment covers the scan variable and let bindings; a grouped
// pipeline compiles its return against a second environment of key-
// variable and aggregate-result slots, and a join compiles its build-side
// keys against an environment whose slot 0 is the right variable.
type vcomp struct {
	c      *comp
	slots  map[string]int
	nslots int
	ext    *vexternals

	// Lane-native projection: when scanVar is non-empty the plan proved
	// every consumption of the scan variable goes through fieldSlots'
	// fields, so $scanVar.f compiles to a direct field-slot read and a bare
	// $scanVar reference is a compile error (the batch never materializes
	// row items; slot 0 stays nil).
	scanVar    string
	fieldSlots map[string]int
	fields     []string // allocation order, parallel to the slots handed out
	slotList   []int
}

func (vc *vcomp) bind(name string) int {
	slot := vc.nslots
	vc.nslots++
	vc.slots[name] = slot
	return slot
}

// bindField allocates (or reuses) the batch slot carrying one projected
// field of the scan variable. Fields live outside the variable namespace:
// they are filled by the scan itself, never by a let.
func (vc *vcomp) bindField(f string) int {
	if slot, ok := vc.fieldSlots[f]; ok {
		return slot
	}
	slot := vc.nslots
	vc.nslots++
	vc.fieldSlots[f] = slot
	vc.fields = append(vc.fields, f)
	vc.slotList = append(vc.slotList, slot)
	return slot
}

// install copies the compiled environment onto the iterator: slot count,
// free-variable names, and the lane-native projection (nil fields keeps
// the whole-row scan).
func (vc *vcomp) install(it *vectorIter) {
	it.nslots = vc.nslots
	it.externals = vc.ext.names
	it.fields = vc.fields
	it.fieldSlots = vc.slotList
}

// vectorWorkers is the morsel worker pool size: the engine's executor
// slots, the same knob that bounds concurrent partition tasks on the
// RDD/DataFrame paths.
func (c *comp) vectorWorkers() int {
	if c.env.Spark == nil {
		return 1
	}
	return c.env.Spark.Conf().Executors
}

// vaggSpec names the grand aggregate a vector pipeline folds into, and the
// plan node the resulting iterator reports as: the aggregate call for
// count/sum/avg/min/max/exists/empty, or the comparison node for a fused
// count(...) eq 0 existence test.
type vaggSpec struct {
	name string
	pn   planNode
}

// compileVector builds the columnar plan for a FLWOR the compiler
// annotated ModeVector. clauses is the clause list after cluster-bound
// lets were peeled; fallback is a tuple-path iterator producing identical
// results for the same expression. When agg is non-nil the FLWOR is the
// argument of that grand aggregate and the pipeline ends in a
// single-group fold of the return projection instead of row emission. Any
// unexpected shape returns an error and the caller keeps the tuple path.
func (c *comp) compileVector(f *ast.FLWOR, clauses []ast.Clause, fallback Iterator, agg *vaggSpec) (Iterator, error) {
	if len(clauses) == 0 {
		return nil, Errorf("vector: empty clause list")
	}
	vp := c.info.VectorPlans[f]
	if vp == nil {
		return nil, Errorf("vector: no plan recorded for this FLWOR")
	}
	ext := &vexternals{idx: map[string]int{}}
	vc := &vcomp{c: c, slots: map[string]int{}, ext: ext}
	pn := c.pn(f)
	if agg != nil {
		pn = agg.pn
	}
	it := &vectorIter{planNode: pn, fallback: fallback,
		sc: c.env.Spark, workers: c.vectorWorkers(),
		opScan: -1, opJoin: -1, opGroup: -1, opSort: -1, opRoot: -1}

	var rest []ast.Clause
	if jp := c.info.Joins[f]; vp.Join && jp != nil {
		// Join head: the left side is the scan (slot 0), the right side
		// compiles against its own single-slot environment for the build.
		in, err := c.compile(jp.Left.In)
		if err != nil {
			return nil, err
		}
		it.in = in
		vc.bind(jp.Left.Var) // slot 0: the probe (scan) column
		j := &vjoinExec{rightSlot: vc.bind(jp.Right.Var)}
		rightIn, err := c.compile(jp.Right.In)
		if err != nil {
			return nil, err
		}
		j.rightIn = rightIn
		rvc := &vcomp{c: c, slots: map[string]int{}, ext: ext}
		rvc.bind(jp.Right.Var) // slot 0 of build batches
		for _, ke := range jp.LeftKeys {
			e, err := vc.compileExpr(ke)
			if err != nil {
				return nil, err
			}
			j.leftKeys = append(j.leftKeys, e)
		}
		for _, ke := range jp.RightKeys {
			e, err := rvc.compileExpr(ke)
			if err != nil {
				return nil, err
			}
			j.rightKeys = append(j.rightKeys, e)
		}
		it.join = j
		// Profiling ops are dedup lookups: the tuple pipeline registered
		// the same clauses (same AST keys) when it compiled first.
		it.opJoin = c.op(jp, "join", -1)
		for _, cond := range jp.Residual {
			e, err := vc.compileExpr(cond)
			if err != nil {
				return nil, err
			}
			it.ops = append(it.ops, vop{slot: -1, expr: e, opID: c.op(cond, "where", -1)})
		}
		rest = clauses[3:]
	} else {
		head, ok := clauses[0].(*ast.ForClause)
		if !ok {
			return nil, Errorf("vector: pipeline must start with a for clause")
		}
		in, err := c.compile(head.In)
		if err != nil {
			return nil, err
		}
		it.in = in
		vc.bind(head.Var) // slot 0: the scan column
		if !vp.AllColumns && !c.env.NoLaneScan {
			// Lane-native scan: the plan proved the pipeline reads only
			// these fields off the scan variable, so batches carry one slot
			// per field (pre-bound here, in the plan's sorted order) and
			// slot 0 never materializes. Config.NoLaneScan keeps the item
			// path for ablation.
			vc.scanVar = head.Var
			vc.fieldSlots = map[string]int{}
			for _, f := range vp.Columns {
				vc.bindField(f)
			}
		}
		it.opScan = c.op(head, "for $"+head.Var, c.opOf(in, head.In))
		if head.PosVar != "" {
			it.posSlots = append(it.posSlots, vc.bind(head.PosVar))
		}
		// Zone-map pushdown: the plan's prune prefix becomes the segment
		// predicates a segment-backed scan tests before touching rows. The
		// where clauses themselves still compile below — pruning only skips
		// segments no row of which could pass (or error in) the prefix, so
		// running the full filter over the surviving segments is what keeps
		// results identical.
		for _, p := range vp.Prune {
			it.prune = append(it.prune, segment.Predicate{Field: p.Field, Op: p.Op, Lit: p.Lit})
		}
		rest = clauses[1:]
	}

	var group *ast.GroupByClause
	var orderBy *ast.OrderByClause
	for ci := 0; ci < len(rest); ci++ {
		switch n := rest[ci].(type) {
		case *ast.LetClause:
			e, err := vc.compileExpr(n.Value)
			if err != nil {
				return nil, err
			}
			it.ops = append(it.ops, vop{slot: vc.bind(n.Var), expr: e, opID: c.op(n, "let $"+n.Var, -1)})
		case *ast.WhereClause:
			e, err := vc.compileExpr(n.Cond)
			if err != nil {
				return nil, err
			}
			it.ops = append(it.ops, vop{slot: -1, expr: e, opID: c.op(n, "where", -1)})
		case *ast.CountClause:
			// Positional: the clause precedes every filter (the planner
			// declines it otherwise), so the count is the scan position.
			it.posSlots = append(it.posSlots, vc.bind(n.Var))
		case *ast.GroupByClause:
			group = n
		case *ast.OrderByClause:
			orderBy = n
			if vp.TopK > 0 {
				// The trailing count + where pair is fused into the sort
				// bound; neither clause materializes.
				ci += 2
			}
		default:
			return nil, Errorf("vector: unsupported clause %T", rest[ci])
		}
	}
	if group != nil {
		it.opGroup = c.op(group, "group by", -1)
	}
	if orderBy != nil {
		it.opSort = c.op(orderBy, "order by", -1)
	}
	if agg == nil {
		// The whole-FLWOR operator records the pipeline's emitted rows;
		// grand aggregates leave it to their enclosing profiled wrapper.
		it.opRoot = c.op(f, "flwor", -1)
	}
	if agg != nil {
		if group != nil || orderBy != nil {
			return nil, Errorf("vector: grand aggregate over a grouped pipeline")
		}
		proj, err := vc.compileExpr(f.Return)
		if err != nil {
			return nil, err
		}
		switch agg.name {
		case "exists", "empty":
			// Fold the projection into a grand count and finalize it to a
			// boolean; the coordinator stops the scan once it is positive.
			it.group = &vgroupExec{
				grand:     true,
				earlyExit: true,
				kinds:     []vector.AggKind{vector.AggCount},
				aggArgs:   []vexpr{proj},
				gslots:    1,
				project:   &vcountBoolExpr{wantEmpty: agg.name == "empty"},
			}
		default:
			kind, ok := vectorAggKinds[agg.name]
			if !ok {
				return nil, Errorf("vector: unsupported grand aggregate %s", agg.name)
			}
			it.group = &vgroupExec{
				grand:   true,
				kinds:   []vector.AggKind{kind},
				aggArgs: []vexpr{proj},
				gslots:  1,
				project: &vcolExpr{slot: 0},
			}
		}
		vc.install(it)
		return it, nil
	}
	if orderBy != nil {
		s := &vsortExec{topK: vp.TopK}
		for _, spec := range orderBy.Specs {
			ke, err := vc.compileExpr(spec.Expr)
			if err != nil {
				return nil, err
			}
			s.keys = append(s.keys, ke)
			s.emptyGreatest = append(s.emptyGreatest, spec.EmptyGreatest)
			s.specs = append(s.specs, vector.SortSpec{Descending: spec.Descending})
		}
		proj, err := vc.compileExpr(f.Return)
		if err != nil {
			return nil, err
		}
		s.project = proj
		it.sort = s
		vc.install(it)
		return it, nil
	}
	if group == nil {
		proj, err := vc.compileExpr(f.Return)
		if err != nil {
			return nil, err
		}
		it.project = proj
		vc.install(it)
		return it, nil
	}
	ge := &vgroupExec{}
	for _, spec := range group.Specs {
		var ke vexpr
		if spec.Expr != nil {
			e, err := vc.compileExpr(spec.Expr)
			if err != nil {
				return nil, err
			}
			ke = e
		} else {
			slot, ok := vc.slots[spec.Var]
			if !ok {
				return nil, Errorf("vector: group key $%s is not a pipeline column", spec.Var)
			}
			ke = &vcolExpr{slot: slot}
		}
		ge.keyExprs = append(ge.keyExprs, ke)
		ge.keySlots = append(ge.keySlots, vc.bind(spec.Var))
	}
	gc := &vgroupComp{main: vc, ge: ge, keys: map[string]int{}}
	for i, spec := range group.Specs {
		gc.keys[spec.Var] = i
	}
	proj, err := gc.compileExpr(f.Return)
	if err != nil {
		return nil, err
	}
	ge.project = proj
	ge.gslots = len(ge.keyExprs) + len(ge.kinds)
	it.group = ge
	vc.install(it)
	return it, nil
}

// vexprEnv resolves the two environment-dependent leaves of the shared
// scalar grammar: variable references and special function calls. The
// main environment (vcomp) and the grouped-return environment (vgroupComp)
// differ only here; everything else compiles through compileVExpr.
type vexprEnv interface {
	compileVarRef(n *ast.VarRef) (vexpr, error)
	// compileSpecialCall intercepts calls before the scalar-builtin
	// whitelist; handled=false defers to the shared path.
	compileSpecialCall(n *ast.FunctionCall) (ve vexpr, handled bool, err error)
	// compileScanField intercepts a literal-key lookup on a variable before
	// the generic vlookupExpr: on a lane-native plan $scanVar.key reads the
	// field's decoded lane straight from its batch slot.
	compileScanField(varName, key string) (vexpr, bool)
}

// compileVExpr compiles the shared scalar expression grammar against env.
func compileVExpr(env vexprEnv, e ast.Expr) (vexpr, error) {
	switch n := e.(type) {
	case *ast.Literal:
		return &vlitExpr{col: vector.ConstCol(n.Value)}, nil
	case *ast.VarRef:
		return env.compileVarRef(n)
	case *ast.ObjectLookup:
		key, ok := literalStringKey(n.Key)
		if !ok {
			return nil, Errorf("vector: dynamic object lookup key")
		}
		if vr, isVar := n.Input.(*ast.VarRef); isVar {
			if ve, handled := env.compileScanField(vr.Name, key); handled {
				return ve, nil
			}
		}
		in, err := compileVExpr(env, n.Input)
		if err != nil {
			return nil, err
		}
		return &vlookupExpr{in: in, key: key}, nil
	case *ast.Comparison:
		op, ok := vector.ParseCmpOp(string(n.Op))
		if !ok || n.General {
			return nil, Errorf("vector: unsupported comparison %s", n.Op)
		}
		l, err := compileVExpr(env, n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVExpr(env, n.R)
		if err != nil {
			return nil, err
		}
		return &vcmpExpr{op: op, l: l, r: r}, nil
	case *ast.Arith:
		l, err := compileVExpr(env, n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVExpr(env, n.R)
		if err != nil {
			return nil, err
		}
		return &varithExpr{op: n.Op, l: l, r: r}, nil
	case *ast.Logic:
		l, err := compileVExpr(env, n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileVExpr(env, n.R)
		if err != nil {
			return nil, err
		}
		return &vlogicExpr{isAnd: n.IsAnd, l: l, r: r}, nil
	case *ast.Unary:
		in, err := compileVExpr(env, n.Operand)
		if err != nil {
			return nil, err
		}
		return &vunaryExpr{minus: n.Minus, in: in}, nil
	case *ast.ObjectConstructor:
		oe := &vobjExpr{}
		for i := range n.Keys {
			key, ok := literalStringKey(n.Keys[i])
			if !ok {
				return nil, Errorf("vector: dynamic object constructor key")
			}
			v, err := compileVExpr(env, n.Values[i])
			if err != nil {
				return nil, err
			}
			oe.keys = append(oe.keys, key)
			oe.vals = append(oe.vals, v)
		}
		return oe, nil
	case *ast.ArrayConstructor:
		if n.Body == nil {
			return &varrExpr{}, nil
		}
		body, err := compileVExpr(env, n.Body)
		if err != nil {
			return nil, err
		}
		return &varrExpr{body: body}, nil
	case *ast.FunctionCall:
		if ve, handled, err := env.compileSpecialCall(n); handled || err != nil {
			return ve, err
		}
		if !compiler.VectorScalarFunctions[n.Name] {
			return nil, Errorf("vector: unsupported function %s", n.Name)
		}
		fn, ok := functions.Lookup(n.Name)
		if !ok {
			return nil, Errorf("vector: unknown function %s", n.Name)
		}
		ce := &vcallExpr{fn: fn}
		for _, a := range n.Args {
			ae, err := compileVExpr(env, a)
			if err != nil {
				return nil, err
			}
			ce.args = append(ce.args, ae)
		}
		return ce, nil
	default:
		return nil, Errorf("vector: unsupported expression %T", e)
	}
}

// compileExpr compiles a scalar expression against the main environment.
func (vc *vcomp) compileExpr(e ast.Expr) (vexpr, error) { return compileVExpr(vc, e) }

// compileVarRef implements vexprEnv: pipeline bindings are columns, free
// variables per-evaluation constants.
func (vc *vcomp) compileVarRef(n *ast.VarRef) (vexpr, error) {
	if vc.scanVar != "" && n.Name == vc.scanVar {
		// The plan promised whole-row consumption never happens on a
		// lane-native scan; refusing here (rather than reading the nil scan
		// slot) turns a planner bug into a tuple-path fallback.
		return nil, Errorf("vector: scan variable $%s consumed whole under a projected scan", n.Name)
	}
	if slot, ok := vc.slots[n.Name]; ok {
		return &vcolExpr{slot: slot}, nil
	}
	return vc.ext.ref(n.Name), nil
}

// compileSpecialCall implements vexprEnv: the pipeline body has no
// special calls.
func (vc *vcomp) compileSpecialCall(*ast.FunctionCall) (vexpr, bool, error) {
	return nil, false, nil
}

// compileScanField implements vexprEnv: on a lane-native plan a field of
// the scan variable reads its decoded lane's batch slot.
func (vc *vcomp) compileScanField(varName, key string) (vexpr, bool) {
	if vc.scanVar == "" || varName != vc.scanVar {
		return nil, false
	}
	return &vcolExpr{slot: vc.bindField(key)}, true
}

// vgroupComp compiles the return expression of a grouped pipeline against
// the group-batch environment: key variables map to the leading group
// slots, aggregate calls allocate accumulator slots (their arguments
// compile against the main environment), and free variables stay external.
type vgroupComp struct {
	main *vcomp
	ge   *vgroupExec
	keys map[string]int // key var → group slot
}

func (gc *vgroupComp) compileExpr(e ast.Expr) (vexpr, error) { return compileVExpr(gc, e) }

// compileVarRef implements vexprEnv for the grouped return: only key
// variables and free variables are readable; non-key pipeline variables
// reach their values exclusively through aggregates.
func (gc *vgroupComp) compileVarRef(n *ast.VarRef) (vexpr, error) {
	if slot, ok := gc.keys[n.Name]; ok {
		return &vcolExpr{slot: slot}, nil
	}
	if _, bound := gc.main.slots[n.Name]; bound {
		return nil, Errorf("vector: non-key variable $%s outside an aggregate", n.Name)
	}
	return gc.main.ext.ref(n.Name), nil
}

// compileSpecialCall implements vexprEnv for the grouped return:
// #count-of and the aggregate builtins become accumulator slots.
func (gc *vgroupComp) compileSpecialCall(n *ast.FunctionCall) (vexpr, bool, error) {
	if base, ok := compiler.CountOfVar(n); ok {
		if gc.main.scanVar != "" && base == gc.main.scanVar {
			// Counting the scan variable needs row presence only: fold an
			// always-present constant instead of touching the nil scan slot.
			return gc.aggSlot(vector.AggCount, onesExpr()), true, nil
		}
		slot, bound := gc.main.slots[base]
		if !bound {
			return nil, true, Errorf("vector: #count-of over unbound $%s", base)
		}
		return gc.aggSlot(vector.AggCount, &vcolExpr{slot: slot}), true, nil
	}
	if kind, isAgg := vectorAggKinds[n.Name]; isAgg && len(n.Args) == 1 {
		if vr, isVar := n.Args[0].(*ast.VarRef); isVar && kind == vector.AggCount &&
			gc.main.scanVar != "" && vr.Name == gc.main.scanVar {
			return gc.aggSlot(vector.AggCount, onesExpr()), true, nil
		}
		arg, err := gc.main.compileExpr(n.Args[0])
		if err != nil {
			return nil, true, err
		}
		return gc.aggSlot(kind, arg), true, nil
	}
	return nil, false, nil
}

// compileScanField implements vexprEnv for the grouped return: aggregate
// arguments compile against the main environment, so a scan-field lookup
// reaching this environment directly can only sit outside an aggregate —
// defer to the generic path, whose compileVarRef rejects it.
func (gc *vgroupComp) compileScanField(varName, key string) (vexpr, bool) {
	return nil, false
}

// onesExpr broadcasts an always-present constant: the count-aggregate
// argument standing in for "one per row" when the plan never materializes
// the scan variable itself.
func onesExpr() vexpr {
	return &vlitExpr{col: vector.ConstCol(item.Bool(true))}
}

// aggSlot allocates one accumulator and returns the group-batch column
// reading its finalized value.
func (gc *vgroupComp) aggSlot(kind vector.AggKind, arg vexpr) vexpr {
	idx := len(gc.ge.kinds)
	gc.ge.kinds = append(gc.ge.kinds, kind)
	gc.ge.aggArgs = append(gc.ge.aggArgs, arg)
	return &vcolExpr{slot: len(gc.keys) + idx}
}

// literalStringKey extracts a compile-time string key.
func literalStringKey(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.Literal)
	if !ok {
		return "", false
	}
	s, ok := lit.Value.(item.Str)
	if !ok {
		return "", false
	}
	return string(s), true
}

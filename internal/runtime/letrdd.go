package runtime

import (
	"rumble/internal/item"
	"rumble/internal/spark"
)

// rddLetBinding is one leading let clause whose value the compiler
// annotated with a parallel mode: the variable binds to the value's RDD
// rather than a materialized sequence.
type rddLetBinding struct {
	name  string
	value Iterator
	cache bool // consumed more than once downstream → spark-level cache
}

// rddLetIter wraps a FLWOR whose leading let clauses bind cluster-resident
// values. The bindings are established once per evaluation — not once per
// tuple — so a pipeline consumed N times downstream computes once
// (spark.Cache), aggregates over the variable push down to cluster
// actions, and a following for clause can head a DataFrame plan directly
// on the bound RDD.
type rddLetIter struct {
	planNode
	lets  []*rddLetBinding
	inner Iterator
}

// bind builds the RDDs of every hoisted let, in clause order, each seeing
// the bindings before it. The RDD graphs are constructed fresh per
// evaluation, so a reused Statement re-reads its inputs and concurrent
// evaluations share no mutable state.
func (r *rddLetIter) bind(dc *DynamicContext) (*DynamicContext, error) {
	for _, b := range r.lets {
		rdd, err := b.value.RDD(dc)
		if err != nil {
			return nil, err
		}
		if b.cache {
			rdd = spark.Cache(rdd)
		}
		dc = dc.BindRDDVar(b.name, rdd)
	}
	return dc, nil
}

func (r *rddLetIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	bdc, err := r.bind(dc)
	if err != nil {
		return err
	}
	return r.inner.Stream(bdc, yield)
}

func (r *rddLetIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	bdc, err := r.bind(dc)
	if err != nil {
		return nil, err
	}
	return r.inner.RDD(bdc)
}

// unitEval yields exactly one empty tuple: the incoming tuple stream of a
// FLWOR whose leading clauses were all hoisted out of the tuple chain.
type unitEval struct{}

func (unitEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	return yield(tuple{})
}

package runtime

import (
	"rumble/internal/item"
	"rumble/internal/spark"
)

// literalIter yields one constant item.
type literalIter struct {
	localOnly
	value item.Item
}

func (l *literalIter) Stream(_ *DynamicContext, yield func(item.Item) error) error {
	return yield(l.value)
}

// varRefIter resolves a variable binding. The compiler annotates it with
// the statically known mode of its binding: ModeRDD when the binding is a
// cluster-bound let (the value lives as an RDD), ModeLocal otherwise. An
// RDD-bound variable streams through the driver-side Scan for local
// consumers and hands its RDD to cluster consumers (aggregate pushdown,
// DataFrame heads).
type varRefIter struct {
	planNode
	name string
}

func (v *varRefIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, rdd, ok := dc.Resolve(v.name)
	if !ok {
		return Errorf("variable $%s is not bound", v.name)
	}
	if rdd != nil {
		return rdd.Scan(yield)
	}
	for _, it := range seq {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

func (v *varRefIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	_, rdd, ok := dc.Resolve(v.name)
	if !ok {
		return nil, Errorf("variable $%s is not bound", v.name)
	}
	if rdd == nil {
		return nil, Errorf("variable $%s is not cluster-resident", v.name)
	}
	return rdd, nil
}

// contextItemIter yields $$.
type contextItemIter struct {
	localOnly
}

func (contextItemIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	it, _, ok := dc.ContextItem()
	if !ok {
		return Errorf("$$ is not bound in this context")
	}
	return yield(it)
}

// commaIter concatenates its children's sequences. The compiler annotates
// it ModeRDD when every child is parallel, in which case the physical plan
// is a union of RDDs.
type commaIter struct {
	planNode
	children []Iterator
}

func (c *commaIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	for _, child := range c.children {
		if err := child.Stream(dc, yield); err != nil {
			return err
		}
	}
	return nil
}

func (c *commaIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	if !c.Mode().Parallel() {
		return nil, Errorf("comma expression does not support RDD execution")
	}
	out, err := c.children[0].RDD(dc)
	if err != nil {
		return nil, err
	}
	for _, child := range c.children[1:] {
		r, err := child.RDD(dc)
		if err != nil {
			return nil, err
		}
		out = spark.Union(out, r)
	}
	return out, nil
}

// arithIter is binary arithmetic. Operands must each evaluate to a single
// numeric item; an empty operand propagates the empty sequence.
type arithIter struct {
	localOnly
	op   item.ArithOp
	l, r Iterator
}

func (a *arithIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	ls, err := Materialize(a.l, dc)
	if err != nil {
		return err
	}
	rs, err := Materialize(a.r, dc)
	if err != nil {
		return err
	}
	if len(ls) == 0 || len(rs) == 0 {
		return nil // the empty sequence absorbs arithmetics
	}
	li, err := exactlyOneAtomic(ls, "arithmetic operand")
	if err != nil {
		return err
	}
	ri, err := exactlyOneAtomic(rs, "arithmetic operand")
	if err != nil {
		return err
	}
	res, err := item.Arithmetic(a.op, li, ri)
	if err != nil {
		return Errorf("%v", err)
	}
	return yield(res)
}

// unaryIter is unary plus/minus.
type unaryIter struct {
	localOnly
	minus   bool
	operand Iterator
}

func (u *unaryIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(u.operand, dc)
	if err != nil {
		return err
	}
	if len(seq) == 0 {
		return nil
	}
	it, err := exactlyOneAtomic(seq, "unary operand")
	if err != nil {
		return err
	}
	if !u.minus {
		if !item.IsNumeric(it) {
			return Errorf("unary plus requires a numeric operand, got %s", it.Kind())
		}
		return yield(it)
	}
	neg, err := item.Negate(it)
	if err != nil {
		return Errorf("%v", err)
	}
	return yield(neg)
}

// rangeIter is "L to R" over integers.
type rangeIter struct {
	localOnly
	l, r Iterator
}

func (r *rangeIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	ls, err := Materialize(r.l, dc)
	if err != nil {
		return err
	}
	rs, err := Materialize(r.r, dc)
	if err != nil {
		return err
	}
	if len(ls) == 0 || len(rs) == 0 {
		return nil
	}
	li, err := exactlyOneAtomic(ls, "range bound")
	if err != nil {
		return err
	}
	ri, err := exactlyOneAtomic(rs, "range bound")
	if err != nil {
		return err
	}
	lo, err := item.CastToInteger(li)
	if err != nil {
		return Errorf("range bounds must be integers: %v", err)
	}
	hi, err := item.CastToInteger(ri)
	if err != nil {
		return Errorf("range bounds must be integers: %v", err)
	}
	ctx := dc.GoContext()
	for i := int64(lo.(item.Int)); i <= int64(hi.(item.Int)); i++ {
		if ctx != nil && i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := yield(item.Int(i)); err != nil {
			return err
		}
	}
	return nil
}

// concatIter is the || string concatenation operator. Empty operands
// behave as empty strings.
type concatIter struct {
	localOnly
	l, r Iterator
}

func (c *concatIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	toStr := func(it Iterator) (string, error) {
		seq, err := Materialize(it, dc)
		if err != nil {
			return "", err
		}
		if len(seq) == 0 {
			return "", nil
		}
		one, err := exactlyOneAtomic(seq, "concatenation operand")
		if err != nil {
			return "", err
		}
		s, err := item.StringValue(one)
		if err != nil {
			return "", Errorf("%v", err)
		}
		return s, nil
	}
	ls, err := toStr(c.l)
	if err != nil {
		return err
	}
	rs, err := toStr(c.r)
	if err != nil {
		return err
	}
	return yield(item.Str(ls + rs))
}

// comparisonIter implements value comparisons (eq, ne, ...) and general
// comparisons (=, !=, ...) with existential semantics.
type comparisonIter struct {
	localOnly
	op      string
	general bool
	l, r    Iterator
}

func matchesOp(op string, c int) bool {
	switch op {
	case "eq", "=":
		return c == 0
	case "ne", "!=":
		return c != 0
	case "lt", "<":
		return c < 0
	case "le", "<=":
		return c <= 0
	case "gt", ">":
		return c > 0
	case "ge", ">=":
		return c >= 0
	default:
		return false
	}
}

func (cmp *comparisonIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	ls, err := Materialize(cmp.l, dc)
	if err != nil {
		return err
	}
	rs, err := Materialize(cmp.r, dc)
	if err != nil {
		return err
	}
	if cmp.general {
		// Existential: true if any pair matches. Non-comparable pairs are
		// simply non-matches under general comparison.
		for _, a := range ls {
			for _, b := range rs {
				c, err := item.CompareValues(a, b)
				if err != nil {
					continue
				}
				if matchesOp(cmp.op, c) {
					return yield(item.Bool(true))
				}
			}
		}
		return yield(item.Bool(false))
	}
	// Value comparison: empty operands yield the empty sequence.
	if len(ls) == 0 || len(rs) == 0 {
		return nil
	}
	a, err := exactlyOneAtomic(ls, "comparison operand")
	if err != nil {
		return err
	}
	b, err := exactlyOneAtomic(rs, "comparison operand")
	if err != nil {
		return err
	}
	c, err := item.CompareValues(a, b)
	if err != nil {
		return Errorf("%v", err)
	}
	return yield(item.Bool(matchesOp(cmp.op, c)))
}

// logicIter is and/or over effective boolean values, with short-circuiting.
type logicIter struct {
	localOnly
	isAnd bool
	l, r  Iterator
}

func ebvOf(it Iterator, dc *DynamicContext) (bool, error) {
	seq, err := Materialize(it, dc)
	if err != nil {
		return false, err
	}
	b, err := item.EffectiveBoolean(seq)
	if err != nil {
		return false, Errorf("%v", err)
	}
	return b, nil
}

func (l *logicIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	lb, err := ebvOf(l.l, dc)
	if err != nil {
		return err
	}
	if l.isAnd && !lb {
		return yield(item.Bool(false))
	}
	if !l.isAnd && lb {
		return yield(item.Bool(true))
	}
	rb, err := ebvOf(l.r, dc)
	if err != nil {
		return err
	}
	return yield(item.Bool(rb))
}

// objectConstructorIter builds an object from key and value expressions.
// Each key must evaluate to a single string-castable atomic; each value
// expression contributes its whole sequence (empty becomes null, a
// multi-item sequence becomes an array, matching JSONiq object semantics).
type objectConstructorIter struct {
	localOnly
	keys   []Iterator
	values []Iterator
}

func (o *objectConstructorIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	keys := make([]string, len(o.keys))
	values := make([]item.Item, len(o.values))
	for i := range o.keys {
		kseq, err := Materialize(o.keys[i], dc)
		if err != nil {
			return err
		}
		kit, err := exactlyOneAtomic(kseq, "object key")
		if err != nil {
			return err
		}
		ks, err := item.StringValue(kit)
		if err != nil {
			return Errorf("%v", err)
		}
		keys[i] = ks
		vseq, err := Materialize(o.values[i], dc)
		if err != nil {
			return err
		}
		switch len(vseq) {
		case 0:
			values[i] = item.Null{}
		case 1:
			values[i] = vseq[0]
		default:
			values[i] = item.NewArray(vseq)
		}
	}
	return yield(item.NewObject(keys, values))
}

// arrayConstructorIter builds an array from the whole sequence of its body.
type arrayConstructorIter struct {
	localOnly
	body Iterator // nil for []
}

func (a *arrayConstructorIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	if a.body == nil {
		return yield(item.NewArray(nil))
	}
	seq, err := Materialize(a.body, dc)
	if err != nil {
		return err
	}
	return yield(item.NewArray(seq))
}

package runtime

import (
	"os"

	"rumble/internal/dfs"
	"rumble/internal/functions"
	"rumble/internal/item"
	"rumble/internal/jparse"
	"rumble/internal/segment"
	"rumble/internal/spark"
)

// Env is the compile-time environment: the cluster context plus named
// collections available to the collection() function.
type Env struct {
	// Spark is the cluster context; nil restricts execution to local.
	Spark *spark.Context
	// Collections maps collection names to json-lines paths on the
	// storage layer.
	Collections map[string]string
	// InMemory maps collection names to in-memory sequences, useful in
	// tests and examples.
	InMemory map[string][]item.Item
	// SplitSize overrides the storage split size (0 = default).
	SplitSize int64
	// Segments, when non-nil, lets storage-backed scans serve from the
	// columnar segment store: json-file and collection sources ingest (or
	// reuse) a `.segments` sibling of the data and vector pipelines scan
	// decoded column batches through its buffer pool, with zone-map
	// pruning for pushed-down predicates. Sources the store cannot serve
	// fall back to the JSON-Lines paths unchanged.
	Segments *segment.Store
	// NoJoin disables the compiler's static equi-join detection, forcing
	// nested-loop evaluation (for comparison benchmarks).
	NoJoin bool
	// NoLaneScan keeps projected vector pipelines on the whole-row item
	// scan instead of the lane-native segment path (ablation knob).
	NoLaneScan bool
	// Vectorize enables the columnar local backend: the compiler annotates
	// eligible FLWOR pipelines ModeVector and they execute batch-at-a-time
	// (internal/vector) instead of tuple-at-a-time.
	Vectorize bool
	// VerifyPlans runs compiler.Verify over every analyzed module before
	// compiling it, failing compilation with structured diagnostics when a
	// plan invariant is violated. Always on in tests; servers enable it
	// with RUMBLE_VERIFY_PLANS=1.
	VerifyPlans bool
}

// builtinCallIter dispatches a call to the local builtin library,
// materializing argument sequences first.
type builtinCallIter struct {
	localOnly
	fn   functions.Func
	args []Iterator
}

func (b *builtinCallIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	argSeqs := make([][]item.Item, len(b.args))
	for i, a := range b.args {
		seq, err := Materialize(a, dc)
		if err != nil {
			return err
		}
		argSeqs[i] = seq
	}
	out, err := b.fn.Call(argSeqs)
	if err != nil {
		return Errorf("%v", err)
	}
	for _, it := range out {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

// aggregateIter evaluates count/sum/avg/min/max/exists/empty. When the
// compiler marked the call for pushdown (the argument is cluster-resident),
// the aggregation runs as a Spark action and only the scalar result travels
// back (§5.5 of the paper: "aggregating iterators invoke a Spark count
// action on the child RDD").
type aggregateIter struct {
	localOnly
	name     string
	arg      Iterator
	dflt     Iterator // sum's optional zero value
	pushdown bool     // decided statically by the compiler
}

func (a *aggregateIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	if a.pushdown {
		return a.streamFromRDD(dc, yield)
	}
	seq, err := Materialize(a.arg, dc)
	if err != nil {
		return err
	}
	args := [][]item.Item{seq}
	if a.dflt != nil {
		d, err := Materialize(a.dflt, dc)
		if err != nil {
			return err
		}
		args = append(args, d)
	}
	fn, _ := functions.Lookup(a.name)
	out, err := fn.Call(args)
	if err != nil {
		return Errorf("%v", err)
	}
	for _, it := range out {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

func (a *aggregateIter) streamFromRDD(dc *DynamicContext, yield func(item.Item) error) error {
	rdd, err := a.arg.RDD(dc)
	if err != nil {
		return err
	}
	// Cluster actions below poll the caller's Go context inside their
	// partition tasks, so a cancelled request stops the aggregation.
	rdd = spark.WithCancel(rdd, cancelOf(dc))
	switch a.name {
	case "count":
		n, err := spark.Count(rdd)
		if err != nil {
			return err
		}
		return yield(item.Int(n))
	case "exists":
		first, err := spark.Take(rdd, 1)
		if err != nil {
			return err
		}
		return yield(item.Bool(len(first) > 0))
	case "empty":
		first, err := spark.Take(rdd, 1)
		if err != nil {
			return err
		}
		return yield(item.Bool(len(first) == 0))
	case "sum":
		acc, ok, err := reduceItems(rdd, func(x, y item.Item) (item.Item, error) {
			return item.Arithmetic(item.OpAdd, x, y)
		})
		if err != nil {
			return err
		}
		if !ok {
			if a.dflt != nil {
				d, err := Materialize(a.dflt, dc)
				if err != nil {
					return err
				}
				for _, it := range d {
					if err := yield(it); err != nil {
						return err
					}
				}
				return nil
			}
			return yield(item.Int(0))
		}
		return yield(acc)
	case "avg":
		// One pass computes both the sum and the count per partition.
		type sc struct {
			sum item.Item
			n   int64
		}
		pairRDD := spark.MapE(rdd, func(it item.Item) (sc, error) {
			if !item.IsNumeric(it) {
				return sc{}, Errorf("avg: non-numeric item of type %s", it.Kind())
			}
			return sc{sum: it, n: 1}, nil
		})
		total, ok, err := spark.Reduce(pairRDD, func(x, y sc) sc {
			s, err := item.Arithmetic(item.OpAdd, x.sum, y.sum)
			if err != nil {
				// Numeric inputs cannot fail addition; guard anyway.
				panic(err)
			}
			return sc{sum: s, n: x.n + y.n}
		})
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		res, err := item.Arithmetic(item.OpDiv, total.sum, item.Int(total.n))
		if err != nil {
			return Errorf("%v", err)
		}
		return yield(res)
	case "min", "max":
		isMin := a.name == "min"
		best, ok, err := reduceItems(rdd, func(x, y item.Item) (item.Item, error) {
			c, err := item.CompareValues(y, x)
			if err != nil {
				return nil, Errorf("min/max: %v", err)
			}
			if (isMin && c < 0) || (!isMin && c > 0) {
				return y, nil
			}
			return x, nil
		})
		if err != nil || !ok {
			return err
		}
		return yield(best)
	default:
		return Errorf("unknown aggregate %s", a.name)
	}
}

// reduceItems folds an RDD of items with an error-returning combiner.
func reduceItems(rdd *spark.RDD[item.Item], f func(x, y item.Item) (item.Item, error)) (item.Item, bool, error) {
	type res struct {
		it  item.Item
		err error
	}
	wrapped := spark.Map(rdd, func(it item.Item) res { return res{it: it} })
	out, ok, err := spark.Reduce(wrapped, func(x, y res) res {
		if x.err != nil {
			return x
		}
		if y.err != nil {
			return y
		}
		r, err := f(x.it, y.it)
		if err != nil {
			return res{err: err}
		}
		return res{it: r}
	})
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	if out.err != nil {
		return nil, false, out.err
	}
	return out.it, true, nil
}

// distinctValuesIter pushes distinct-values down to a shuffle when the
// argument is cluster-resident (the compiler propagates the argument's
// mode to this node).
type distinctValuesIter struct {
	planNode
	arg Iterator
}

func (d *distinctValuesIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(d.arg, dc)
	if err != nil {
		return err
	}
	for _, it := range functions.DistinctValues(seq) {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

func (d *distinctValuesIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	rdd, err := d.arg.RDD(dc)
	if err != nil {
		return nil, err
	}
	return spark.Distinct(rdd, func(it item.Item) string {
		return string(it.AppendJSON(nil))
	}), nil
}

// jsonFileIter reads a json-lines dataset from the storage layer as an RDD
// of items, one streaming parse per split (the json-file() function of
// §5.7). The optional second argument is a minimum partition count.
type jsonFileIter struct {
	planNode
	env  *Env
	path Iterator
	min  Iterator // optional minimum partitions
}

func (j *jsonFileIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	splits, err := j.splits(dc)
	if err != nil {
		return err
	}
	ctx := dc.GoContext()
	var n int
	for _, s := range splits {
		if err := dfs.ReadLines(s, nil, func(line []byte) error {
			if ctx != nil {
				if n++; n&255 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
			it, perr := jparse.Parse(line)
			if perr != nil {
				return Errorf("json-file: %v", perr)
			}
			return yield(it)
		}); err != nil {
			return err
		}
	}
	return nil
}

// StreamRaw implements rawScanner: it streams the dataset's raw JSON-Lines
// records with their byte volume, leaving both the parse and the simulated
// storage round trips to the consumer — the vector backend's morsel
// workers decode (and charge) them in parallel.
func (j *jsonFileIter) StreamRaw(dc *DynamicContext, yield func(line []byte, bytes int64) error) (bool, error) {
	splits, err := j.splits(dc)
	if err != nil {
		return true, err
	}
	ctx := dc.GoContext()
	var n int
	for _, s := range splits {
		if err := dfs.ReadLines(s, nil, func(line []byte) error {
			if ctx != nil {
				if n++; n&255 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
			return yield(line, int64(len(line))+1)
		}); err != nil {
			return true, err
		}
	}
	return true, nil
}

// SegmentDataset implements segmentSource: when the environment carries a
// segment store, the scan serves decoded column batches from the source's
// `.segments` sibling (ingesting it on first touch). A source the store
// cannot serve — no store configured, unparseable data — returns nil and
// the scan falls back to the JSON-Lines paths, which surface the real
// source error.
func (j *jsonFileIter) SegmentDataset(dc *DynamicContext) *segment.Dataset {
	if j.env.Segments == nil {
		return nil
	}
	path, err := j.resolvePath(dc)
	if err != nil {
		return nil
	}
	ds, err := j.env.Segments.Open(path)
	if err != nil {
		return nil
	}
	return ds
}

func (j *jsonFileIter) resolvePath(dc *DynamicContext) (string, error) {
	pseq, err := Materialize(j.path, dc)
	if err != nil {
		return "", err
	}
	pit, err := exactlyOneAtomic(pseq, "json-file path")
	if err != nil {
		return "", err
	}
	path, err := item.StringValue(pit)
	if err != nil {
		return "", Errorf("%v", err)
	}
	return path, nil
}

func (j *jsonFileIter) splits(dc *DynamicContext) ([]dfs.Split, error) {
	path, err := j.resolvePath(dc)
	if err != nil {
		return nil, err
	}
	splitSize := j.env.SplitSize
	if j.min != nil {
		mseq, err := Materialize(j.min, dc)
		if err != nil {
			return nil, err
		}
		mit, err := exactlyOneAtomic(mseq, "json-file partition count")
		if err != nil {
			return nil, err
		}
		mi, err := item.CastToInteger(mit)
		if err != nil {
			return nil, Errorf("json-file: %v", err)
		}
		if n := int64(mi.(item.Int)); n > 0 {
			if info, statErr := statSize(path); statErr == nil && info > 0 {
				splitSize = info/n + 1
			}
		}
	}
	splits, err := dfs.ListSplits(path, splitSize)
	if err != nil {
		return nil, Errorf("json-file: %v", err)
	}
	return splits, nil
}

func (j *jsonFileIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	splits, err := j.splits(dc)
	if err != nil {
		return nil, err
	}
	sc := j.env.Spark
	ctx := dc.GoContext()
	return spark.NewRDD(sc, len(splits), "json-file", func(p int, yield func(item.Item) error) error {
		var n int64
		defer func() { sc.AddRecordsRead(n) }()
		return dfs.ReadLines(splits[p], func(blocks int) { sc.SimulateIO(blocks) }, func(line []byte) error {
			// Scans dominate task time, so the cancellation checkpoint
			// lives in the parse loop itself, not just at stage edges.
			if ctx != nil && n&255 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			it, perr := jparse.Parse(line)
			if perr != nil {
				return Errorf("json-file: %v", perr)
			}
			n++
			return yield(it)
		})
	}), nil
}

// parallelizeIter distributes a locally computed sequence over the cluster,
// the JSONiq wrapper for Spark's parallelize() (§5.7).
type parallelizeIter struct {
	planNode
	env   *Env
	child Iterator
	parts Iterator // optional partition count
}

func (p *parallelizeIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	// Local mode: parallelize is the identity on the logical layer.
	return p.child.Stream(dc, yield)
}

func (p *parallelizeIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	seq, err := Materialize(p.child, dc)
	if err != nil {
		return nil, err
	}
	parts := 0
	if p.parts != nil {
		pseq, err := Materialize(p.parts, dc)
		if err != nil {
			return nil, err
		}
		pit, err := exactlyOneAtomic(pseq, "parallelize partition count")
		if err != nil {
			return nil, err
		}
		pi, err := item.CastToInteger(pit)
		if err != nil {
			return nil, Errorf("parallelize: %v", err)
		}
		parts = int(pi.(item.Int))
	}
	return spark.Parallelize(p.env.Spark, seq, parts), nil
}

// collectionIter resolves collection(name) against the environment's
// registered collections: a storage path or an in-memory sequence.
type collectionIter struct {
	planNode
	env  *Env
	name Iterator
}

func (c *collectionIter) resolve(dc *DynamicContext) (Iterator, error) {
	nseq, err := Materialize(c.name, dc)
	if err != nil {
		return nil, err
	}
	nit, err := exactlyOneAtomic(nseq, "collection name")
	if err != nil {
		return nil, err
	}
	name, err := item.StringValue(nit)
	if err != nil {
		return nil, Errorf("%v", err)
	}
	// The resolved source inherits this node's statically assigned mode.
	if path, ok := c.env.Collections[name]; ok {
		return &jsonFileIter{planNode: c.planNode, env: c.env, path: &literalIter{value: item.Str(path)}}, nil
	}
	if seq, ok := c.env.InMemory[name]; ok {
		return &parallelizeIter{planNode: c.planNode, env: c.env, child: &constSeqIter{seq: seq}}, nil
	}
	return nil, Errorf("collection %q is not registered", name)
}

func (c *collectionIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	it, err := c.resolve(dc)
	if err != nil {
		return err
	}
	return it.Stream(dc, yield)
}

// StreamRaw implements rawScanner for storage-backed collections by
// delegating to the resolved json-file scan; in-memory collections report
// handled=false and stream decoded items instead.
func (c *collectionIter) StreamRaw(dc *DynamicContext, yield func(line []byte, bytes int64) error) (bool, error) {
	it, err := c.resolve(dc)
	if err != nil {
		return true, err
	}
	raw, ok := it.(rawScanner)
	if !ok {
		return false, nil
	}
	return raw.StreamRaw(dc, yield)
}

// SegmentDataset implements segmentSource by delegating to the resolved
// source; in-memory collections have no segment backing and report nil.
func (c *collectionIter) SegmentDataset(dc *DynamicContext) *segment.Dataset {
	it, err := c.resolve(dc)
	if err != nil {
		return nil
	}
	src, ok := it.(segmentSource)
	if !ok {
		return nil
	}
	return src.SegmentDataset(dc)
}

func (c *collectionIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	it, err := c.resolve(dc)
	if err != nil {
		return nil, err
	}
	return it.RDD(dc)
}

// constSeqIter yields a fixed sequence (used for bound collections).
type constSeqIter struct {
	localOnly
	seq []item.Item
}

func (c *constSeqIter) Stream(_ *DynamicContext, yield func(item.Item) error) error {
	//rumble:ctxpoll-ok bounded: emits a fixed already-bound sequence; downstream consumers checkpoint
	for _, it := range c.seq {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

// udf is a compiled user-declared function.
type udf struct {
	name   string
	params []string
	body   Iterator // filled after compilation to allow recursion
}

// udfCallIter invokes a user-declared function: parameters are materialized
// and bound in a fresh context rooted at the global scope (JSONiq functions
// see global variables but not the caller's locals).
type udfCallIter struct {
	localOnly
	fn      *udf
	args    []Iterator
	globals func() *DynamicContext
}

func (u *udfCallIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	vars := make(map[string][]item.Item, len(u.args))
	for i, a := range u.args {
		seq, err := Materialize(a, dc)
		if err != nil {
			return err
		}
		vars[u.fn.params[i]] = seq
	}
	fdc := u.globals().BindVars(vars)
	return u.fn.body.Stream(fdc, yield)
}

// statSize returns the total byte size of a file or of the part files in a
// directory, used to honor json-file's minimum-partition hint.
func statSize(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if !info.IsDir() {
		return info.Size(), nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

package runtime

import (
	"math/bits"
	"sync/atomic"

	"rumble/internal/compiler"
	"rumble/internal/item"
	"rumble/internal/spark"
)

// compiledJoin is the runtime form of a compiler.JoinPlan: the two join
// inputs, the compiled key expression pairs, and the statically chosen
// strategy. It replaces the FLWOR's leading for/for/where clauses on both
// the local tuple path (joinEval) and the DataFrame path (dfPlan.join);
// residual conjuncts are applied as ordinary where steps by the compiler.
type compiledJoin struct {
	leftVar, rightVar   string
	leftIn, rightIn     Iterator
	leftKeys, rightKeys []Iterator
	residual            []Iterator
	strategy            compiler.JoinStrategy
	buildLeft           bool
}

// compileJoin compiles the plan's expressions into iterators.
func (c *comp) compileJoin(jp *compiler.JoinPlan) (*compiledJoin, error) {
	j := &compiledJoin{
		leftVar:   jp.Left.Var,
		rightVar:  jp.Right.Var,
		strategy:  jp.Strategy,
		buildLeft: jp.BuildLeft,
	}
	var err error
	if j.leftIn, err = c.compile(jp.Left.In); err != nil {
		return nil, err
	}
	if j.rightIn, err = c.compile(jp.Right.In); err != nil {
		return nil, err
	}
	for i := range jp.LeftKeys {
		lk, err := c.compile(jp.LeftKeys[i])
		if err != nil {
			return nil, err
		}
		rk, err := c.compile(jp.RightKeys[i])
		if err != nil {
			return nil, err
		}
		j.leftKeys = append(j.leftKeys, lk)
		j.rightKeys = append(j.rightKeys, rk)
	}
	for _, res := range jp.Residual {
		ri, err := c.compile(res)
		if err != nil {
			return nil, err
		}
		j.residual = append(j.residual, ri)
	}
	return j, nil
}

// encodeJoinKeys evaluates one side's key expressions for one item and
// returns the canonical composite key bytes (via item.AppendSortKey, so
// keys match exactly when every SortKey pair compares equal, the same
// equivalence "eq" implements), the observed type-tag mask (8 bits per
// key, as in the order-by type check), and ok=false when some key is the
// empty sequence — "eq" over an empty operand is the empty sequence, whose
// effective boolean value is false, so the row joins nothing. Encoding
// stops at the first empty key, mirroring the short-circuit of "and".
func encodeJoinKeys(keys []Iterator, varName string, it item.Item, dc *DynamicContext) (string, uint64, bool, error) {
	bdc := dc.BindVar(varName, []item.Item{it})
	var buf []byte
	var mask uint64
	for i, k := range keys {
		seq, err := Materialize(k, bdc)
		if err != nil {
			return "", 0, false, err
		}
		if len(seq) > 1 {
			return "", 0, false, Errorf("join key %d binds a sequence of %d items; eq requires a single item", i+1, len(seq))
		}
		sk, err := item.EncodeSortKey(seq, false)
		if err != nil {
			return "", 0, false, Errorf("join key %d: %v", i+1, err)
		}
		if len(seq) == 0 {
			return "", mask, false, nil
		}
		mask |= (1 << uint(sk.Tag)) << (8 * uint(i))
		buf = item.AppendSortKey(buf, sk)
	}
	return string(buf), mask, true, nil
}

// keyCats folds one key's tag bits into comparable categories: booleans,
// strings and numbers are mutually non-comparable under "eq" (null
// compares with everything and the empty sequence never reaches a
// comparison).
func keyCats(tagBits byte) byte {
	var c byte
	if tagBits&(1<<item.TagFalse|1<<item.TagTrue) != 0 {
		c |= 1
	}
	if tagBits&(1<<item.TagString) != 0 {
		c |= 2
	}
	if tagBits&(1<<item.TagNumber) != 0 {
		c |= 4
	}
	return c
}

// joinKeyTypeConflict replays the nested loop's type errors: a pair of
// items from the two sides with non-comparable kinds exists exactly when
// both sides observed a comparable category for some key and their union
// holds more than one category — "eq" would have raised on that pair.
func joinKeyTypeConflict(lmask, rmask uint64, numKeys int) error {
	for i := 0; i < numKeys; i++ {
		lc := keyCats(byte(lmask >> (8 * uint(i))))
		rc := keyCats(byte(rmask >> (8 * uint(i))))
		if lc != 0 && rc != 0 && bits.OnesCount8(lc|rc) > 1 {
			return Errorf("join key %d mixes non-comparable types across the two sides: %v", i+1, item.ErrNonComparable)
		}
	}
	return nil
}

// atomicMask accumulates tag masks from concurrent executor tasks.
type atomicMask struct{ v atomic.Uint64 }

func (m *atomicMask) or(bits uint64) {
	for {
		old := m.v.Load()
		if old&bits == bits || m.v.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// --- local path ---

// joinEval is the local hash-join head of a FLWOR's tuple pipeline: it
// builds a hash table over the right input keyed by encoded join keys,
// then probes it while streaming the left input. Output order is exactly
// the nested loop's (left-major, right input order within a key), so local
// results are bit-identical to the fallback.
type joinEval struct {
	j *compiledJoin
}

func (e *joinEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	j := e.j
	var build map[string][]item.Item
	var rmask uint64
	// The hash table is built lazily on the first left row: a nested loop
	// over an empty left input never evaluates the right side's keys, so
	// neither may the join (a malformed right-side key must not abort a
	// query whose probe side is empty).
	buildRight := func() error {
		build = map[string][]item.Item{}
		return j.rightIn.Stream(dc, func(it item.Item) error {
			key, mask, ok, err := encodeJoinKeys(j.rightKeys, j.rightVar, it, dc)
			if err != nil {
				return err
			}
			rmask |= mask
			if ok {
				build[key] = append(build[key], it)
			}
			return nil
		})
	}
	return j.leftIn.Stream(dc, func(it item.Item) error {
		if build == nil {
			if err := buildRight(); err != nil {
				return err
			}
		}
		key, mask, ok, err := encodeJoinKeys(j.leftKeys, j.leftVar, it, dc)
		if err != nil {
			return err
		}
		// This left row meets every right row in the nested loop; raise the
		// type error the loop's "eq" would have raised.
		if err := joinKeyTypeConflict(mask, rmask, len(j.leftKeys)); err != nil {
			return err
		}
		if !ok {
			return nil
		}
		base := tuple{}.extend(j.leftVar, []item.Item{it})
		for _, r := range build[key] {
			if err := yield(base.extend(j.rightVar, []item.Item{r})); err != nil {
				return err
			}
		}
		return nil
	})
}

// --- DataFrame path ---

// joinInit runs the join on the cluster and returns the initial DataFrame
// state: one ColSeq column per join variable, one row per matched pair.
func (p *dfPlan) joinInit(dc *DynamicContext) (*dfState, error) {
	j := p.join
	leftRDD, err := j.leftIn.RDD(dc)
	if err != nil {
		return nil, err
	}
	rightRDD, err := j.rightIn.RDD(dc)
	if err != nil {
		return nil, err
	}
	numKeys := len(j.leftKeys)
	var lmask, rmask atomicMask
	// encodePairs keys one side's items; perRow, when set, validates each
	// row's types eagerly against the already-complete other-side mask.
	encodePairs := func(r *spark.RDD[item.Item], keys []Iterator, varName string, acc *atomicMask, perRow func(mask uint64) error) *spark.RDD[spark.Pair[string, item.Item]] {
		return spark.FlatMapE(r, func(it item.Item) ([]spark.Pair[string, item.Item], error) {
			key, mask, ok, err := encodeJoinKeys(keys, varName, it, dc)
			if err != nil {
				return nil, err
			}
			acc.or(mask)
			if perRow != nil {
				if err := perRow(mask); err != nil {
					return nil, err
				}
			}
			if !ok {
				return nil, nil
			}
			return []spark.Pair[string, item.Item]{{Key: key, Value: it}}, nil
		})
	}
	var joined *spark.RDD[spark.Pair[string, spark.Joined[item.Item, item.Item]]]
	switch {
	case j.strategy == compiler.JoinHash:
		// Shuffle hash join: both sides exchange; the type check runs once
		// both sides are fully materialized, before any pair is emitted.
		lp := encodePairs(leftRDD, j.leftKeys, j.leftVar, &lmask, nil)
		rp := encodePairs(rightRDD, j.rightKeys, j.rightVar, &rmask, nil)
		joined = spark.JoinByKey(lp, rp, func() error {
			return joinKeyTypeConflict(lmask.v.Load(), rmask.v.Load(), numKeys)
		})
	case j.buildLeft:
		// Broadcast the small left side; stream the big right side over it.
		small, err := spark.Collect(encodePairs(leftRDD, j.leftKeys, j.leftVar, &lmask, nil))
		if err != nil {
			return nil, err
		}
		big := encodePairs(rightRDD, j.rightKeys, j.rightVar, &rmask, func(mask uint64) error {
			return joinKeyTypeConflict(lmask.v.Load(), mask, numKeys)
		})
		bj := spark.BroadcastHashJoin(big, small)
		joined = spark.Map(bj, func(kv spark.Pair[string, spark.Joined[item.Item, item.Item]]) spark.Pair[string, spark.Joined[item.Item, item.Item]] {
			kv.Value.Left, kv.Value.Right = kv.Value.Right, kv.Value.Left
			return kv
		})
	default:
		// Broadcast the small right side; stream the big left side over it.
		small, err := spark.Collect(encodePairs(rightRDD, j.rightKeys, j.rightVar, &rmask, nil))
		if err != nil {
			return nil, err
		}
		big := encodePairs(leftRDD, j.leftKeys, j.leftVar, &lmask, func(mask uint64) error {
			return joinKeyTypeConflict(mask, rmask.v.Load(), numKeys)
		})
		joined = spark.BroadcastHashJoin(big, small)
	}
	st := &dfState{varCol: map[string]string{}}
	lcol, rcol := st.freshCol(), st.freshCol()
	rows := spark.Map(joined, func(kv spark.Pair[string, spark.Joined[item.Item, item.Item]]) spark.Row {
		return spark.Row{[]item.Item{kv.Value.Left}, []item.Item{kv.Value.Right}}
	})
	st.varCol[j.leftVar] = lcol
	st.varCol[j.rightVar] = rcol
	st.df = spark.NewDataFrame(spark.Schema{Cols: []spark.Column{
		{Name: lcol, Type: spark.ColSeq}, {Name: rcol, Type: spark.ColSeq},
	}}, rows)
	return st, nil
}

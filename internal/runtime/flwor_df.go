package runtime

import (
	"fmt"
	"time"

	"rumble/internal/compiler"
	"rumble/internal/item"
	"rumble/internal/spark"
)

// dfPlan is the DataFrame execution plan of a FLWOR expression, built at
// compile time when the initial clause is a for over an RDD-capable
// expression. Tuple streams physically live as DataFrames whose variable
// columns have type "sequence of items" (§4.3); each clause maps the
// incoming DataFrame to the outgoing one with the §4.4-§4.9 mappings.
type dfPlan struct {
	sc      *spark.Context
	join    *compiledJoin // non-nil when the head is a detected equi-join
	initVar string
	initPos string // "" when the initial for has no positional variable
	initIn  Iterator
	steps   []dfStep
	ret     Iterator
}

// dfState is the evolving physical state while the plan applies.
type dfState struct {
	df     *spark.DataFrame
	varCol map[string]string // variable name -> column name
	nextID int
}

// dfStep applies one clause's DataFrame mapping.
type dfStep func(st *dfState, dc *DynamicContext) error

func (st *dfState) freshCol() string {
	st.nextID++
	return fmt.Sprintf("c%d", st.nextID)
}

// rowBinder precomputes the column indexes of all bound variables so UDFs
// can build a dynamic context per row cheaply.
func (st *dfState) rowBinder(dc *DynamicContext) func(spark.Row) *DynamicContext {
	type bind struct {
		name string
		idx  int
	}
	schema := st.df.Schema()
	binds := make([]bind, 0, len(st.varCol))
	for _, v := range st.varNames() {
		idx := schema.IndexOf(st.varCol[v])
		if idx >= 0 {
			binds = append(binds, bind{name: v, idx: idx})
		}
	}
	return func(r spark.Row) *DynamicContext {
		vars := make(map[string][]item.Item, len(binds))
		for _, b := range binds {
			vars[b.name] = r.Seq(b.idx)
		}
		return dc.BindVars(vars)
	}
}

// varColumns returns the bound variable names in a deterministic order.
func (st *dfState) varNames() []string {
	names := make([]string, 0, len(st.varCol))
	//rumble:nondeterministic-ok keys are insertion-sorted immediately below
	for v := range st.varCol {
		names = append(names, v)
	}
	// insertion sort for determinism; variable counts are small
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// RDD materializes the FLWOR's output sequence as an RDD by running the
// DataFrame plan. When the evaluation carries a profile, the output RDD
// is wrapped so executor tasks record the FLWOR's result cardinality —
// the intermediate DataFrame steps stay uninstrumented (they are lazy
// views whose per-step cardinalities never materialize separately).
func (f *flworIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	rdd, err := f.rddPlan(dc)
	if err != nil {
		return nil, err
	}
	op := dc.Profile().Op(f.opRoot)
	if op == nil {
		return rdd, nil
	}
	return spark.Observe(rdd, func(rows int64, wall time.Duration) {
		op.AddRows(rows)
		op.AddBatches(1)
		op.AddWall(wall)
	}), nil
}

func (f *flworIter) rddPlan(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	if f.df == nil {
		return nil, Errorf("FLWOR expression does not support RDD execution")
	}
	p := f.df
	if p.join != nil {
		// The head of the FLWOR is a statically detected equi-join: the
		// initial two-column DataFrame comes from the join operator.
		st, err := p.joinInit(dc)
		if err != nil {
			return nil, err
		}
		return p.applySteps(st, dc)
	}
	in, err := p.initIn.RDD(dc)
	if err != nil {
		return nil, err
	}
	st := &dfState{varCol: map[string]string{}}
	// Initial for clause: one single-column DataFrame row per item (§4.4:
	// "if the clause is the very first one, it creates a new DataFrame
	// with a single column"), plus a position column when requested.
	if p.initPos == "" {
		rows := spark.Map(in, func(it item.Item) spark.Row {
			return spark.Row{[]item.Item{it}}
		})
		col := st.freshCol()
		st.varCol[p.initVar] = col
		st.df = spark.NewDataFrame(spark.Schema{Cols: []spark.Column{{Name: col, Type: spark.ColSeq}}}, rows)
	} else {
		zipped := spark.ZipWithIndex(in)
		rows := spark.Map(zipped, func(kv spark.Pair[int64, item.Item]) spark.Row {
			return spark.Row{[]item.Item{kv.Value}, []item.Item{item.Int(kv.Key + 1)}}
		})
		vcol, pcol := st.freshCol(), st.freshCol()
		st.varCol[p.initVar] = vcol
		st.varCol[p.initPos] = pcol
		st.df = spark.NewDataFrame(spark.Schema{Cols: []spark.Column{
			{Name: vcol, Type: spark.ColSeq}, {Name: pcol, Type: spark.ColSeq},
		}}, rows)
	}
	return p.applySteps(st, dc)
}

// applySteps runs the clause steps over the initial DataFrame state and
// flat-maps the return clause (§4.10) into the output RDD of items.
func (p *dfPlan) applySteps(st *dfState, dc *DynamicContext) (*spark.RDD[item.Item], error) {
	for _, step := range p.steps {
		if err := step(st, dc); err != nil {
			return nil, err
		}
	}
	binder := st.rowBinder(dc)
	ret := p.ret
	return spark.FlatMapE(st.df.RDD(), func(r spark.Row) ([]item.Item, error) {
		return Materialize(ret, binder(r))
	}), nil
}

// --- step builders, one per clause type ---

// dfForStep maps a non-initial for clause to an extended projection plus
// EXPLODE (§4.4).
func dfForStep(varName, posVar string, allowEmpty bool, in Iterator) dfStep {
	return func(st *dfState, dc *DynamicContext) error {
		binder := st.rowBinder(dc)
		udf := func(r spark.Row) ([]item.Item, error) {
			return Materialize(in, binder(r))
		}
		if posVar == "" {
			col := st.freshCol()
			st.df = st.df.ExplodeColumn(col, udf, allowEmpty)
			st.varCol[varName] = col
			return nil
		}
		vcol, pcol := st.freshCol(), st.freshCol()
		st.df = st.df.ExplodeWithPosition(vcol, pcol, udf, allowEmpty)
		st.varCol[varName] = vcol
		st.varCol[posVar] = pcol
		return nil
	}
}

// dfLetStep maps a let clause to an extended projection (§4.5).
func dfLetStep(varName string, value Iterator) dfStep {
	return func(st *dfState, dc *DynamicContext) error {
		binder := st.rowBinder(dc)
		col := st.freshCol()
		st.df = st.df.WithColumn(col, spark.ColSeq, func(r spark.Row) (any, error) {
			return Materialize(value, binder(r))
		})
		st.varCol[varName] = col
		return nil
	}
}

// dfWhereStep maps a where clause to a selection (§4.6).
func dfWhereStep(cond Iterator) dfStep {
	return func(st *dfState, dc *DynamicContext) error {
		binder := st.rowBinder(dc)
		st.df = st.df.Where(func(r spark.Row) (bool, error) {
			return ebvOf(cond, binder(r))
		})
		return nil
	}
}

// dfGroupSpec is one grouping key for the DataFrame path.
type dfGroupSpec struct {
	varName string
	expr    Iterator // nil when grouping on an existing variable
}

// dfGroupStep maps a group-by clause (§4.7): three typed native columns per
// key (type tag, string, double), a Spark-SQL GROUP BY on those columns,
// SEQUENCE()/COUNT() aggregation of the non-grouping variables according to
// the usage analysis, and reconstruction of the key items.
func dfGroupStep(specs []dfGroupSpec, usage map[string]compiler.VarUsage) dfStep {
	return func(st *dfState, dc *DynamicContext) error {
		// Bind keys that come with expressions (let-like extension).
		for _, spec := range specs {
			if spec.expr == nil {
				continue
			}
			if err := dfLetStep(spec.varName, spec.expr)(st, dc); err != nil {
				return err
			}
		}
		// Native key encoding: three columns per grouping variable.
		schema := st.df.Schema()
		var keyNative []string
		for _, spec := range specs {
			col, ok := st.varCol[spec.varName]
			if !ok {
				return Errorf("group by: variable $%s is not bound", spec.varName)
			}
			idx := schema.IndexOf(col)
			tagCol, strCol, numCol, intCol := st.freshCol(), st.freshCol(), st.freshCol(), st.freshCol()
			cols := []spark.Column{
				{Name: tagCol, Type: spark.ColInt},
				{Name: strCol, Type: spark.ColString},
				{Name: numCol, Type: spark.ColDouble},
				{Name: intCol, Type: spark.ColInt},
			}
			st.df = st.df.WithColumns(cols, func(r spark.Row) ([]any, error) {
				seq := r.Seq(idx)
				if len(seq) > 1 {
					return nil, Errorf("group by: key $%s binds a sequence of %d items", spec.varName, len(seq))
				}
				sk, err := item.EncodeSortKey(seq, false)
				if err != nil {
					return nil, Errorf("group by: %v", err)
				}
				return []any{int64(sk.Tag), sk.Str, sk.Num, sk.Int}, nil
			})
			schema = st.df.Schema()
			keyNative = append(keyNative, tagCol, strCol, numCol, intCol)
		}
		// Aggregations: keys keep their first (identical) value; the
		// others follow the usage plan.
		keySet := map[string]bool{}
		var aggs []spark.Agg
		for _, spec := range specs {
			keySet[spec.varName] = true
			aggs = append(aggs, spark.Agg{Col: st.varCol[spec.varName], Kind: spark.AggFirst})
		}
		newVarCol := map[string]string{}
		for _, spec := range specs {
			newVarCol[spec.varName] = st.varCol[spec.varName]
		}
		countCols := map[string]string{} // output int col -> synthetic var
		var countOrder []string          // insertion order of countCols keys
		for _, v := range st.varNames() {
			if keySet[v] {
				continue
			}
			col := st.varCol[v]
			switch usage[v] {
			case compiler.UsageUnused:
				// Column dropped entirely (§4.7 optimization).
			case compiler.UsageCountOnly:
				// COUNT() pushdown: pre-reduce the column to one integer
				// per row so the shuffle ships no payload data, then sum.
				preCol := st.freshCol()
				idx := st.df.Schema().IndexOf(col)
				st.df = st.df.WithColumn(preCol, spark.ColInt, func(r spark.Row) (any, error) {
					return int64(len(r.Seq(idx))), nil
				})
				out := st.freshCol()
				aggs = append(aggs, spark.Agg{Col: preCol, Kind: spark.AggSumInt, As: out})
				countCols[out] = v + compiler.CountMarkerSuffix
				countOrder = append(countOrder, out)
			default:
				aggs = append(aggs, spark.Agg{Col: col, Kind: spark.AggSequence})
				newVarCol[v] = col
			}
		}
		// Project away everything the aggregation does not consume before
		// the shuffle (dropped and pre-reduced columns ride along
		// otherwise).
		needed := append([]string{}, keyNative...)
		for _, a := range aggs {
			needed = append(needed, a.Col)
		}
		pruned, err := st.df.Select(needed...)
		if err != nil {
			return Errorf("group by: %v", err)
		}
		st.df = pruned
		grouped, err := st.df.GroupBy(keyNative, aggs)
		if err != nil {
			return Errorf("group by: %v", err)
		}
		st.df = grouped
		st.varCol = newVarCol
		// Convert COUNT() results into singleton integer sequences bound
		// to the synthetic count variables, in recorded insertion order so
		// synthetic column numbering is stable run to run.
		for _, intCol := range countOrder {
			syntheticVar := countCols[intCol]
			idx := st.df.Schema().IndexOf(intCol)
			seqCol := st.freshCol()
			st.df = st.df.WithColumn(seqCol, spark.ColSeq, func(r spark.Row) (any, error) {
				return []item.Item{item.Int(r[idx].(int64))}, nil
			})
			st.varCol[syntheticVar] = seqCol
		}
		// Project away the native key and raw count columns.
		keep := make([]string, 0, len(st.varCol))
		for _, v := range st.varNames() {
			keep = append(keep, st.varCol[v])
		}
		sel, err := st.df.Select(keep...)
		if err != nil {
			return Errorf("group by: %v", err)
		}
		st.df = sel
		return nil
	}
}

// dfOrderSpec is one ordering key for the DataFrame path.
type dfOrderSpec struct {
	expr          Iterator
	descending    bool
	emptyGreatest bool
}

// dfOrderStep maps an order-by clause (§4.8): a first pass discovers the
// key types and rejects incompatible mixes, then native key columns feed a
// Spark SQL ORDER BY.
func dfOrderStep(specs []dfOrderSpec) dfStep {
	return func(st *dfState, dc *DynamicContext) error {
		// Compute the typed key columns for every spec.
		binder := st.rowBinder(dc)
		var sortSpecs []spark.SortSpec
		var keyCols []string
		for _, spec := range specs {
			spec := spec
			tagCol, strCol, numCol, intCol := st.freshCol(), st.freshCol(), st.freshCol(), st.freshCol()
			cols := []spark.Column{
				{Name: tagCol, Type: spark.ColInt},
				{Name: strCol, Type: spark.ColString},
				{Name: numCol, Type: spark.ColDouble},
				{Name: intCol, Type: spark.ColInt},
			}
			st.df = st.df.WithColumns(cols, func(r spark.Row) ([]any, error) {
				seq, err := Materialize(spec.expr, binder(r))
				if err != nil {
					return nil, err
				}
				if len(seq) > 1 {
					return nil, Errorf("order by: key binds a sequence of %d items", len(seq))
				}
				if len(seq) == 1 && !item.IsAtomic(seq[0]) {
					return nil, Errorf("order by: key is a non-atomic %s item", seq[0].Kind())
				}
				sk, err := item.EncodeSortKey(seq, spec.emptyGreatest)
				if err != nil {
					return nil, Errorf("order by: %v", err)
				}
				return []any{int64(sk.Tag), sk.Str, sk.Num, sk.Int}, nil
			})
			sortSpecs = append(sortSpecs,
				spark.SortSpec{Col: tagCol, Descending: spec.descending},
				spark.SortSpec{Col: strCol, Descending: spec.descending},
				spark.SortSpec{Col: numCol, Descending: spec.descending},
				spark.SortSpec{Col: intCol, Descending: spec.descending},
			)
			keyCols = append(keyCols, tagCol)
		}
		// Cache the keyed rows: the type-check pass and the sort both
		// consume them, and recomputing would replay the whole upstream
		// pipeline (including the input parse) a second time.
		st.df = spark.NewDataFrame(st.df.Schema(), spark.Cache(st.df.RDD()))
		// First pass (§4.8): discover the observed type tags per key and
		// throw on incompatible mixes (string vs number).
		tagIdx := make([]int, len(keyCols))
		for i, kc := range keyCols {
			tagIdx[i] = st.df.Schema().IndexOf(kc)
		}
		masks := spark.Map(st.df.RDD(), func(r spark.Row) uint64 {
			var m uint64
			for i, idx := range tagIdx {
				m |= 1 << (uint(r[idx].(int64)) + 8*uint(i))
			}
			return m
		})
		seen, ok, err := spark.Reduce(masks, func(a, b uint64) uint64 { return a | b })
		if err != nil {
			return err
		}
		if ok {
			for i := range keyCols {
				tags := (seen >> (8 * uint(i))) & 0xff
				hasString := tags&(1<<uint(item.TagString)) != 0
				hasNumber := tags&(1<<uint(item.TagNumber)) != 0
				if hasString && hasNumber {
					return Errorf("order by: key %d mixes strings and numbers across the tuple stream", i+1)
				}
			}
		}
		sorted, err := st.df.OrderBy(sortSpecs)
		if err != nil {
			return Errorf("order by: %v", err)
		}
		st.df = sorted
		// Project the key columns away.
		keep := make([]string, 0, len(st.varCol))
		for _, v := range st.varNames() {
			keep = append(keep, st.varCol[v])
		}
		sel, err := st.df.Select(keep...)
		if err != nil {
			return Errorf("order by: %v", err)
		}
		st.df = sel
		return nil
	}
}

// dfCountStep maps a count clause to the incremental-integer column of
// §4.9 (zipWithIndex on the DataFrame).
func dfCountStep(varName string) dfStep {
	return func(st *dfState, dc *DynamicContext) error {
		idxCol := st.freshCol()
		st.df = st.df.ZipWithIndex(idxCol)
		idx := st.df.Schema().IndexOf(idxCol)
		seqCol := st.freshCol()
		st.df = st.df.WithColumn(seqCol, spark.ColSeq, func(r spark.Row) (any, error) {
			return []item.Item{item.Int(r[idx].(int64) + 1)}, nil
		})
		st.varCol[varName] = seqCol
		keep := make([]string, 0, len(st.varCol))
		for _, v := range st.varNames() {
			keep = append(keep, st.varCol[v])
		}
		sel, err := st.df.Select(keep...)
		if err != nil {
			return Errorf("count clause: %v", err)
		}
		st.df = sel
		return nil
	}
}

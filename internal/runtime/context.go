// Package runtime implements Rumble's runtime iterators: each compiled
// JSONiq expression becomes an iterator that can evaluate (i) locally by
// streaming items, (ii) on the cluster as an RDD of items, (iii) — for
// FLWOR clauses — as DataFrames of tuples, and (iv) — for vector-eligible
// FLWOR pipelines under Options.Vectorize — batch-at-a-time over the typed
// column kernels of internal/vector. The backend choice is the compiler's
// static mode annotation (compiler.Mode); plan nodes carry it and never
// probe it at run time, exactly as §5 of the paper describes.
//
// Local evaluation is push-based: an iterator streams its items through a
// yield callback. All evaluation state lives on the stack of the call, so a
// compiled iterator tree is immutable and can be shared freely by
// concurrent executor tasks — this replaces the closure-serialization
// machinery Spark uses to ship Java iterators to executors. Evaluation is
// cancellable: a Go context threaded through the DynamicContext is polled
// at loop checkpoints and inside cluster task loops.
package runtime

import (
	"context"
	"fmt"

	"rumble/internal/compiler"
	"rumble/internal/item"
	"rumble/internal/profile"
	"rumble/internal/spark"
)

// DynamicContext carries variable bindings and the optional context item
// ($$) during evaluation. Contexts chain to their parent and never mutate
// after construction, so child contexts can be created per row inside
// concurrent executor tasks.
type DynamicContext struct {
	parent     *DynamicContext
	vars       map[string][]item.Item
	rdds       map[string]*spark.RDD[item.Item] // cluster-resident bindings
	goCtx      context.Context                  // cancellation/deadline, set once at the root
	prof       *profile.Profile                 // per-query stats, copied down from the root
	ctxItem    item.Item
	ctxPos     int64 // 1-based position for positional predicates
	hasCtxItem bool
}

// NewDynamicContext returns an empty root context.
func NewDynamicContext() *DynamicContext {
	return &DynamicContext{}
}

// BindVars returns a child context with the given variable bindings added.
// The map is owned by the context afterwards.
func (dc *DynamicContext) BindVars(vars map[string][]item.Item) *DynamicContext {
	return &DynamicContext{parent: dc, prof: dc.prof, vars: vars}
}

// BindVar returns a child context with one extra binding.
func (dc *DynamicContext) BindVar(name string, seq []item.Item) *DynamicContext {
	return dc.BindVars(map[string][]item.Item{name: seq})
}

// BindRDDVar returns a child context binding name to a cluster-resident
// sequence. The compiler only emits references that consume such a binding
// through Resolve, so ordinary Lookup never observes it.
func (dc *DynamicContext) BindRDDVar(name string, r *spark.RDD[item.Item]) *DynamicContext {
	return &DynamicContext{parent: dc, prof: dc.prof, rdds: map[string]*spark.RDD[item.Item]{name: r}}
}

// WithGoContext returns a child context carrying a Go context. Evaluation
// honors its cancellation and deadline at cooperative checkpoints: loop
// iterators check it periodically and cluster actions poll it inside
// partition tasks.
func (dc *DynamicContext) WithGoContext(ctx context.Context) *DynamicContext {
	return &DynamicContext{parent: dc, prof: dc.prof, goCtx: ctx}
}

// GoContext resolves the nearest Go context in the chain; nil means the
// evaluation is not cancellable.
func (dc *DynamicContext) GoContext() context.Context {
	for c := dc; c != nil; c = c.parent {
		if c.goCtx != nil {
			return c.goCtx
		}
	}
	return nil
}

// WithProfile returns a child context carrying a per-query profile.
// Instrumented iterators resolve it via Profile(); recording methods on
// the ops of a nil profile no-op, so profiling off costs one nil check.
func (dc *DynamicContext) WithProfile(p *profile.Profile) *DynamicContext {
	return &DynamicContext{parent: dc, prof: p}
}

// Profile returns this evaluation's profile; nil means profiling is
// off. Unlike GoContext, the pointer is copied into every child
// context at construction, so the lookup is a single field read — the
// profiling-off fast path costs one nil check on hot paths.
func (dc *DynamicContext) Profile() *profile.Profile { return dc.prof }

// cancelOf adapts the context's Go context into the polling function
// spark.WithCancel expects, or nil when evaluation is not cancellable.
func cancelOf(dc *DynamicContext) func() error {
	ctx := dc.GoContext()
	if ctx == nil {
		return nil
	}
	return ctx.Err
}

// WithContextItem returns a child context whose context item ($$) is it,
// with 1-based position pos.
func (dc *DynamicContext) WithContextItem(it item.Item, pos int64) *DynamicContext {
	return &DynamicContext{parent: dc, prof: dc.prof, ctxItem: it, ctxPos: pos, hasCtxItem: true}
}

// Lookup resolves a variable through the context chain.
func (dc *DynamicContext) Lookup(name string) ([]item.Item, bool) {
	for c := dc; c != nil; c = c.parent {
		if c.vars != nil {
			if seq, ok := c.vars[name]; ok {
				return seq, true
			}
		}
	}
	return nil, false
}

// Resolve resolves a variable to either a materialized sequence or a
// cluster-resident RDD, whichever binding is nearest in the chain. Exactly
// one of seq/rdd is meaningful when found.
func (dc *DynamicContext) Resolve(name string) (seq []item.Item, rdd *spark.RDD[item.Item], found bool) {
	for c := dc; c != nil; c = c.parent {
		if c.vars != nil {
			if s, ok := c.vars[name]; ok {
				return s, nil, true
			}
		}
		if c.rdds != nil {
			if r, ok := c.rdds[name]; ok {
				return nil, r, true
			}
		}
	}
	return nil, nil, false
}

// ContextItem resolves $$ through the chain.
func (dc *DynamicContext) ContextItem() (item.Item, int64, bool) {
	for c := dc; c != nil; c = c.parent {
		if c.hasCtxItem {
			return c.ctxItem, c.ctxPos, true
		}
	}
	return nil, 0, false
}

// Error is a dynamic (runtime) error raised during evaluation, catchable by
// try/catch expressions.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return e.Msg }

// Errorf constructs a dynamic error.
func Errorf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Iterator is a compiled expression — one node of the physical plan.
// Stream is always available; RDD is available when the statically assigned
// mode is parallel (RDD or DataFrame), in which case the expression's
// output physically lives on the cluster and is never materialized locally
// unless a consumer demands it.
type Iterator interface {
	// Stream evaluates the expression in dc and pushes every result item
	// to yield, in order.
	Stream(dc *DynamicContext, yield func(item.Item) error) error
	// Mode returns the execution mode the compiler's static annotation
	// phase assigned to this plan node. It is a compile-time constant:
	// nothing is probed at run time.
	Mode() compiler.Mode
	// RDD returns the result as an RDD of items. Callers must check that
	// Mode is parallel.
	RDD(dc *DynamicContext) (*spark.RDD[item.Item], error)
}

// planNode carries the execution mode the compiler assigned to a plan node.
// Iterators with cluster execution paths embed it; the runtime compiler
// fills it from compiler.Info when it builds the node.
type planNode struct {
	mode compiler.Mode
}

// Mode implements Iterator.
func (p planNode) Mode() compiler.Mode { return p.mode }

// localOnly provides the mode and RDD stubs for iterators that only ever
// run locally (the compiler annotates them ModeLocal unconditionally).
type localOnly struct{}

// Mode implements Iterator.
func (localOnly) Mode() compiler.Mode { return compiler.ModeLocal }

// RDD implements Iterator.
func (localOnly) RDD(*DynamicContext) (*spark.RDD[item.Item], error) {
	return nil, Errorf("expression does not support RDD execution")
}

// Materialize evaluates it locally and returns the whole sequence. For
// RDD-capable iterators this collects the RDD (subject to the context's
// MaxResultItems cap), mirroring Rumble's local API over Spark results.
func Materialize(it Iterator, dc *DynamicContext) ([]item.Item, error) {
	var out []item.Item
	if err := it.Stream(dc, func(i item.Item) error {
		out = append(out, i)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// errLimitReached aborts a limited materialization once max items are
// held. It is deliberately not a *Error: try/catch must not observe it.
var errLimitReached = fmt.Errorf("runtime: result limit reached")

// MaterializeN evaluates like Materialize but stops the evaluation as soon
// as max items are held, so a limited consumer never pays for (or buffers)
// the rest of the result. max must be positive.
func MaterializeN(it Iterator, dc *DynamicContext, max int) ([]item.Item, error) {
	out := make([]item.Item, 0, min(max, 1024))
	err := it.Stream(dc, func(i item.Item) error {
		out = append(out, i)
		if len(out) >= max {
			return errLimitReached
		}
		return nil
	})
	if err != nil && err != errLimitReached {
		return nil, err
	}
	return out, nil
}

// CollectRDD materializes an RDD-capable iterator through the cluster,
// subject to the context's MaxResultItems cap — the "collect and replay
// locally" path of §5.5. Consumers that hold a whole query result (the
// engine root, the shell) use it; nested evaluation inside closures always
// streams through the local API instead. When dc carries a Go context, the
// collect polls it cooperatively inside the partition tasks.
func CollectRDD(it Iterator, dc *DynamicContext) ([]item.Item, error) {
	rdd, err := it.RDD(dc)
	if err != nil {
		return nil, err
	}
	return spark.Collect(spark.WithCancel(rdd, cancelOf(dc)))
}

// exactlyOneAtomic enforces that a sequence holds exactly one atomic item,
// the common requirement of arithmetic and comparison operands.
func exactlyOneAtomic(seq []item.Item, what string) (item.Item, error) {
	if len(seq) != 1 {
		return nil, Errorf("%s requires a single item, got a sequence of %d", what, len(seq))
	}
	if !item.IsAtomic(seq[0]) {
		return nil, Errorf("%s requires an atomic item, got %s", what, seq[0].Kind())
	}
	return seq[0], nil
}

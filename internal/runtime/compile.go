package runtime

import (
	"context"
	"time"

	"rumble/internal/ast"
	"rumble/internal/compiler"
	"rumble/internal/functions"
	"rumble/internal/item"
	"rumble/internal/profile"
	"rumble/internal/spark"
)

// Program is a fully compiled query: a root iterator plus the global
// dynamic context holding prolog variable bindings. It also retains the
// analyzed module, the analysis info and the profiling operator
// registry, so explain-analyze can render the same plan tree the
// operators were registered on.
type Program struct {
	Root    Iterator
	globals *DynamicContext

	module   *ast.Module
	info     *compiler.Info
	descs    []profile.OpDesc
	opKeys   map[any]int
	resultOp int
}

// GlobalContext returns the dynamic context with prolog variables bound.
func (p *Program) GlobalContext() *DynamicContext { return p.globals }

// Module returns the analyzed module this program was compiled from.
func (p *Program) Module() *ast.Module { return p.module }

// AnalysisInfo returns the static analysis the program was compiled
// under — the same Info Explain renders mode annotations from.
func (p *Program) AnalysisInfo() *compiler.Info { return p.info }

// NewProfile allocates a profile sized for this program's registered
// plan operators. Pass it to the profiled run variants; a nil profile
// keeps the zero-overhead fast path.
func (p *Program) NewProfile() *profile.Profile { return profile.New(p.descs) }

// OpIndex returns the profiling operator registered for an AST node
// during compilation, or -1. The explain-analyze renderer uses it to
// look up live stats by the same keys the compiler registered.
func (p *Program) OpIndex(key any) int {
	if id, ok := p.opKeys[key]; ok {
		return id
	}
	return -1
}

// ResultOp returns the index of the program-level result operator,
// which records the rows and wall time of the whole query.
func (p *Program) ResultOp() int { return p.resultOp }

// Mode returns the statically assigned execution mode of the root plan
// node: Local, RDD or DataFrame.
func (p *Program) Mode() compiler.Mode { return p.Root.Mode() }

// Run materializes the whole result locally (collecting through the
// cluster when the root plan node was compiled to a parallel mode).
func (p *Program) Run() ([]item.Item, error) { return p.RunContext(nil) }

// RunContext is Run under a Go context: cancellation or deadline expiry
// aborts evaluation cooperatively — loop iterators and cluster task loops
// poll the context and unwind with its error. A nil ctx disables the
// checkpoints entirely (no per-iteration overhead).
func (p *Program) RunContext(ctx context.Context) ([]item.Item, error) {
	return p.runDC(p.evalCtx(ctx, nil), 0)
}

// RunContextLimit is RunContext bounded to at most max result items: local
// evaluation stops streaming once max items are held, and cluster
// evaluation runs a take action (sequential partition scans with early
// stop) instead of a full collect — so a limited request never
// materializes an unbounded result on the driver. max <= 0 means no limit.
func (p *Program) RunContextLimit(ctx context.Context, max int) ([]item.Item, error) {
	return p.runDC(p.evalCtx(ctx, nil), max)
}

// RunProfiled is RunContextLimit with a per-query profile attached:
// every instrumented plan operator the evaluation passes through
// records rows and wall time into prof, and the program-level result
// operator records the result cardinality. A nil prof is exactly
// RunContextLimit — the nil check is the profiling-off fast path.
func (p *Program) RunProfiled(ctx context.Context, max int, prof *profile.Profile) ([]item.Item, error) {
	if prof == nil {
		return p.runDC(p.evalCtx(ctx, nil), max)
	}
	dc := p.evalCtx(ctx, prof)
	op := prof.Op(p.resultOp)
	start := time.Now()
	items, err := p.runDC(dc, max)
	op.AddRows(int64(len(items)))
	op.AddBatches(1)
	op.AddWall(time.Since(start))
	return items, err
}

// evalCtx builds the evaluation context: globals plus the optional Go
// context and profile, each attached only when present.
func (p *Program) evalCtx(ctx context.Context, prof *profile.Profile) *DynamicContext {
	dc := p.globals
	if ctx != nil {
		dc = dc.WithGoContext(ctx)
	}
	if prof != nil {
		dc = dc.WithProfile(prof)
	}
	return dc
}

// runDC evaluates the root under dc, bounded to max items when max is
// positive (local streaming cap, or a cluster take action instead of a
// full collect).
func (p *Program) runDC(dc *DynamicContext, max int) ([]item.Item, error) {
	if p.Root.Mode().Parallel() {
		if max > 0 {
			rdd, err := p.Root.RDD(dc)
			if err != nil {
				return nil, err
			}
			return spark.Take(spark.WithCancel(rdd, cancelOf(dc)), max)
		}
		return CollectRDD(p.Root, dc)
	}
	if max > 0 {
		return MaterializeN(p.Root, dc, max)
	}
	return Materialize(p.Root, dc)
}

// Compile analyzes and compiles a parsed module against an environment.
// The static phase assigns every expression its execution mode; the plan
// nodes built here carry that annotation and never probe it dynamically.
func Compile(m *ast.Module, env *Env) (*Program, error) {
	executors := 0
	if env.Spark != nil {
		executors = env.Spark.Conf().Executors
	}
	info, err := compiler.Analyze(m, compiler.Options{Cluster: env.Spark != nil, NoJoin: env.NoJoin,
		Vectorize: env.Vectorize, Executors: executors})
	if err != nil {
		return nil, err
	}
	if env.VerifyPlans {
		if err := compiler.Verify(m, info); err != nil {
			return nil, err
		}
	}
	c := &comp{env: env, info: info, udfs: map[string]*udf{}, opKeys: map[any]int{}}
	prog := &Program{}
	c.globals = func() *DynamicContext { return prog.globals }
	// Declare UDFs first (bodies compiled after, enabling recursion).
	for _, fd := range m.Functions {
		c.udfs[fd.Name] = &udf{name: fd.Name, params: fd.Params}
	}
	for _, fd := range m.Functions {
		body, err := c.compile(fd.Body)
		if err != nil {
			return nil, err
		}
		c.udfs[fd.Name].body = body
	}
	// Global variables evaluate eagerly, in declaration order.
	globals := NewDynamicContext()
	for _, vd := range m.Vars {
		init, err := c.compile(vd.Init)
		if err != nil {
			return nil, err
		}
		seq, err := Materialize(init, globals)
		if err != nil {
			return nil, err
		}
		globals = globals.BindVar(vd.Name, seq)
	}
	prog.globals = globals
	root, err := c.compile(m.Body)
	if err != nil {
		return nil, err
	}
	prog.Root = root
	// The program-level result operator records the whole query's output
	// cardinality and wall time, whichever backend ran. Its input is the
	// root expression's operator when one was registered.
	prog.resultOp = c.op(nil, "result", c.opOf(root, m.Body))
	prog.module, prog.info = m, info
	prog.descs, prog.opKeys = c.descs, c.opKeys
	return prog, nil
}

type comp struct {
	env     *Env
	info    *compiler.Info
	udfs    map[string]*udf
	globals func() *DynamicContext

	// Profiling operator registry. Ops are dedup-keyed by AST node: the
	// tuple pipeline and the vector backend compile from the same clause
	// pointers, so both register the same operator and — since exactly
	// one backend runs per evaluation — never double-count.
	descs  []profile.OpDesc
	opKeys map[any]int
}

// pn builds the planNode of e from the compiler's mode annotation.
func (c *comp) pn(e ast.Expr) planNode {
	return planNode{mode: c.info.ModeOf(e)}
}

// op registers a profiling operator named name whose upstream operator
// is input (-1 for sources), dedup-keyed by key; a nil key always
// appends. Returns the operator's index into the program's profiles.
func (c *comp) op(key any, name string, input int) int {
	if key != nil {
		if id, ok := c.opKeys[key]; ok {
			return id
		}
	}
	id := len(c.descs)
	c.descs = append(c.descs, profile.OpDesc{Name: name, Input: input})
	if key != nil {
		c.opKeys[key] = id
	}
	return id
}

// opOf resolves the profiling operator already registered for a
// compiled iterator (or its AST node), or -1. Used to chain rows-in
// derivation across operator boundaries.
func (c *comp) opOf(it Iterator, e ast.Expr) int {
	if p, ok := it.(*profiledIter); ok {
		return p.opID
	}
	if e != nil {
		if id, ok := c.opKeys[e]; ok {
			return id
		}
	}
	return -1
}

// profiled wraps it so evaluations with a profile attached record rows
// out, batches and wall time under the operator registered for key.
func (c *comp) profiled(key any, name string, input int, it Iterator) Iterator {
	return &profiledIter{inner: it, opID: c.op(key, name, input)}
}

func (c *comp) compile(e ast.Expr) (Iterator, error) {
	switch n := e.(type) {
	case *ast.Literal:
		return &literalIter{value: n.Value}, nil
	case *ast.VarRef:
		return &varRefIter{planNode: c.pn(n), name: n.Name}, nil
	case *ast.ContextItem:
		return contextItemIter{}, nil
	case *ast.CommaExpr:
		children := make([]Iterator, len(n.Exprs))
		for i, ch := range n.Exprs {
			it, err := c.compile(ch)
			if err != nil {
				return nil, err
			}
			children[i] = it
		}
		return &commaIter{planNode: c.pn(n), children: children}, nil
	case *ast.ObjectConstructor:
		oc := &objectConstructorIter{}
		for i := range n.Keys {
			k, err := c.compile(n.Keys[i])
			if err != nil {
				return nil, err
			}
			v, err := c.compile(n.Values[i])
			if err != nil {
				return nil, err
			}
			oc.keys = append(oc.keys, k)
			oc.values = append(oc.values, v)
		}
		return oc, nil
	case *ast.ArrayConstructor:
		if n.Body == nil {
			return &arrayConstructorIter{}, nil
		}
		body, err := c.compile(n.Body)
		if err != nil {
			return nil, err
		}
		return &arrayConstructorIter{body: body}, nil
	case *ast.Unary:
		op, err := c.compile(n.Operand)
		if err != nil {
			return nil, err
		}
		return &unaryIter{minus: n.Minus, operand: op}, nil
	case *ast.Arith:
		l, r, err := c.compileTwo(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return &arithIter{op: n.Op, l: l, r: r}, nil
	case *ast.RangeExpr:
		l, r, err := c.compileTwo(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return &rangeIter{l: l, r: r}, nil
	case *ast.ConcatExpr:
		l, r, err := c.compileTwo(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return &concatIter{l: l, r: r}, nil
	case *ast.Comparison:
		l, r, err := c.compileTwo(n.L, n.R)
		if err != nil {
			return nil, err
		}
		ci := &comparisonIter{op: string(n.Op), general: n.General, l: l, r: r}
		if call := c.info.VectorCountZero[n]; call != nil {
			// count(<vector-eligible scan>) eq 0 is an existence test: fold
			// it as an early-exit vector pipeline that stops scanning at the
			// first surviving row. A decline keeps the tuple comparison.
			if vit, err := c.compileVectorCountZero(n, call, ci); err == nil {
				return vit, nil
			}
		}
		return ci, nil
	case *ast.Logic:
		l, r, err := c.compileTwo(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return &logicIter{isAnd: n.IsAnd, l: l, r: r}, nil
	case *ast.Predicate:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		pred, err := c.compile(n.Pred)
		if err != nil {
			return nil, err
		}
		return &predicateIter{planNode: c.pn(n), input: in, pred: pred}, nil
	case *ast.SimpleMap:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		mapping, err := c.compile(n.Mapping)
		if err != nil {
			return nil, err
		}
		return &simpleMapIter{planNode: c.pn(n), input: in, mapping: mapping}, nil
	case *ast.ObjectLookup:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		key, err := c.compile(n.Key)
		if err != nil {
			return nil, err
		}
		return &objectLookupIter{planNode: c.pn(n), input: in, key: key}, nil
	case *ast.ArrayLookup:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		idx, err := c.compile(n.Index)
		if err != nil {
			return nil, err
		}
		return &arrayLookupIter{planNode: c.pn(n), input: in, index: idx}, nil
	case *ast.ArrayUnbox:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		return &arrayUnboxIter{planNode: c.pn(n), input: in}, nil
	case *ast.FunctionCall:
		return c.compileCall(n)
	case *ast.IfExpr:
		cond, err := c.compile(n.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compile(n.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.compile(n.Else)
		if err != nil {
			return nil, err
		}
		return &ifIter{planNode: c.pn(n), cond: cond, then: then, els: els, sc: c.env.Spark}, nil
	case *ast.SwitchExpr:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		si := &switchIter{input: in}
		for _, cs := range n.Cases {
			var vals []Iterator
			for _, v := range cs.Values {
				vi, err := c.compile(v)
				if err != nil {
					return nil, err
				}
				vals = append(vals, vi)
			}
			res, err := c.compile(cs.Result)
			if err != nil {
				return nil, err
			}
			si.cases = append(si.cases, switchCase{values: vals, result: res})
		}
		dflt, err := c.compile(n.Default)
		if err != nil {
			return nil, err
		}
		si.deflt = dflt
		return si, nil
	case *ast.TryCatch:
		try, err := c.compile(n.Try)
		if err != nil {
			return nil, err
		}
		catch, err := c.compile(n.Catch)
		if err != nil {
			return nil, err
		}
		return &tryCatchIter{try: try, catch: catch}, nil
	case *ast.Quantified:
		qi := &quantifiedIter{every: n.Every}
		for _, b := range n.Bindings {
			in, err := c.compile(b.In)
			if err != nil {
				return nil, err
			}
			qi.bindings = append(qi.bindings, quantBinding{name: b.Var, in: in})
		}
		sat, err := c.compile(n.Satisfies)
		if err != nil {
			return nil, err
		}
		qi.satisfies = sat
		return qi, nil
	case *ast.InstanceOf:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		return &instanceOfIter{input: in, typ: n.Type}, nil
	case *ast.TreatAs:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		return &treatIter{input: in, typ: n.Type}, nil
	case *ast.CastableAs:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		return &castableIter{input: in, typeName: n.TypeName}, nil
	case *ast.CastAs:
		in, err := c.compile(n.Input)
		if err != nil {
			return nil, err
		}
		return &castIter{input: in, typeName: n.TypeName}, nil
	case *ast.FLWOR:
		return c.compileFLWOR(n)
	default:
		return nil, Errorf("compile: unknown expression node %T", e)
	}
}

func (c *comp) compileTwo(l, r ast.Expr) (Iterator, Iterator, error) {
	li, err := c.compile(l)
	if err != nil {
		return nil, nil, err
	}
	ri, err := c.compile(r)
	if err != nil {
		return nil, nil, err
	}
	return li, ri, nil
}

func (c *comp) compileCall(n *ast.FunctionCall) (Iterator, error) {
	if c.info.VectorAggs[n] {
		// The compiler proved the argument a vector-eligible scan: the
		// whole aggregation folds inside the columnar backend. Tried
		// before the generic argument compilation below, which would
		// build (and discard) the same pipelines a second time. A decline
		// falls through to the ordinary local fold.
		if vit, err := c.compileVectorAgg(n); err == nil {
			return vit, nil
		}
	}
	args := make([]Iterator, len(n.Args))
	for i, a := range n.Args {
		it, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = it
	}
	// The compiler's group-by rewrite turns count($v) into #count-of($v#count),
	// whose value is the pre-aggregated singleton integer.
	if n.Name == "#count-of" {
		return args[0], nil
	}
	if fn, ok := c.udfs[n.Name]; ok {
		return &udfCallIter{fn: fn, args: args, globals: c.globals}, nil
	}
	switch n.Name {
	case "json-file":
		ji := &jsonFileIter{planNode: c.pn(n), env: c.env, path: args[0]}
		if len(args) == 2 {
			ji.min = args[1]
		}
		return c.profiled(n, "json-file", -1, ji), nil
	case "parallelize":
		pi := &parallelizeIter{planNode: c.pn(n), env: c.env, child: args[0]}
		if len(args) == 2 {
			pi.parts = args[1]
		}
		return c.profiled(n, "parallelize", c.opOf(args[0], n.Args[0]), pi), nil
	case "collection":
		return c.profiled(n, "collection", -1,
			&collectionIter{planNode: c.pn(n), env: c.env, name: args[0]}), nil
	case "distinct-values":
		return c.profiled(n, "distinct-values", c.opOf(args[0], n.Args[0]),
			&distinctValuesIter{planNode: c.pn(n), arg: args[0]}), nil
	}
	if compiler.AggregateFunctions[n.Name] {
		// The compiler decided statically whether the aggregation pushes
		// down to a cluster action or folds the materialized sequence.
		ai := &aggregateIter{name: n.Name, arg: args[0], pushdown: c.info.Pushdown[n]}
		if len(args) == 2 {
			ai.dflt = args[1]
		}
		return c.profiled(n, n.Name, c.opOf(args[0], n.Args[0]), ai), nil
	}
	fn, ok := functions.Lookup(n.Name)
	if !ok {
		return nil, Errorf("unknown function %s", n.Name)
	}
	return &builtinCallIter{fn: fn, args: args}, nil
}

// peelRDDLets compiles the unbroken prefix of leading let clauses the
// compiler marked as cluster-bound (Info.RDDLets): their variables bind to
// the value's RDD once per evaluation — cached when consumed more than
// once — instead of materializing per tuple. It returns the remaining
// clause chain alongside the bindings.
func (c *comp) peelRDDLets(f *ast.FLWOR) ([]ast.Clause, []*rddLetBinding, error) {
	clauses := f.Clauses
	var rlets []*rddLetBinding
	for len(clauses) > 0 {
		lc, ok := clauses[0].(*ast.LetClause)
		if !ok {
			break
		}
		lp := c.info.RDDLets[lc]
		if lp == nil {
			break
		}
		val, err := c.compile(lc.Value)
		if err != nil {
			return nil, nil, err
		}
		rlets = append(rlets, &rddLetBinding{name: lc.Var, value: val, cache: lp.Cache})
		clauses = clauses[1:]
	}
	return clauses, rlets, nil
}

// compileFLWOR builds the local tuple pipeline (plus the DataFrame plan
// when annotated ModeDataFrame), upgrades it to the columnar backend when
// the compiler chose ModeVector, and wraps any peeled cluster-bound lets.
func (c *comp) compileFLWOR(f *ast.FLWOR) (Iterator, error) {
	clauses, rlets, err := c.peelRDDLets(f)
	if err != nil {
		return nil, err
	}
	out, err := c.compileFLWORPipeline(f, clauses, len(rlets) > 0)
	if err != nil {
		return nil, err
	}
	var result Iterator = out
	if c.info.VectorPlans[f] != nil {
		// The compiler chose the columnar backend. The tuple pipeline just
		// built stays attached as the fallback (multi-item free variables);
		// if the vector compile itself declines — a shape the eligibility
		// analysis admitted but the backend cannot build — the tuple
		// pipeline runs alone, preserving results over raw speed.
		if vit, err := c.compileVector(f, clauses, out, nil); err == nil {
			result = vit
		}
	}
	if len(rlets) > 0 {
		return &rddLetIter{planNode: c.pn(f), lets: rlets, inner: result}, nil
	}
	return result, nil
}

// compileFLWORPipeline builds the tuple pipeline (and DataFrame plan) for
// the clause chain remaining after cluster-bound lets were peeled; hoisted
// reports whether such lets exist, in which case the chain evaluates under
// their bindings off a single unit tuple.
func (c *comp) compileFLWORPipeline(f *ast.FLWOR, clauses []ast.Clause, hoisted bool) (*flworIter, error) {
	ret, err := c.compile(f.Return)
	if err != nil {
		return nil, err
	}
	out := &flworIter{planNode: c.pn(f), clauses: f.Clauses, ret: ret}

	var local clauseEval
	var steps []dfStep
	// The mode decision was made statically (§4.4/§4.5): ModeDataFrame
	// exactly when the initial clause (after any cluster-bound lets) is a
	// for (without "allowing empty") over a parallel expression on an
	// available cluster.
	dfOK := c.info.ModeOf(f) == compiler.ModeDataFrame
	var plan *dfPlan

	// prev tracks the profiling operator of the clause upstream of the
	// one being compiled, so rows-in derivation chains through the
	// pipeline. Ops are keyed by clause AST pointers: the vector backend
	// compiles from the same clauses and shares the same operators.
	prev := -1
	if hoisted {
		// The hoisted lets produce exactly one incoming tuple; the
		// remaining chain (possibly empty) evaluates under their bindings.
		local = unitEval{}
	}
	if jp := c.info.Joins[f]; jp != nil {
		// The compiler replaced the leading for/for/where with an equi-join:
		// the join heads both the local tuple pipeline and the DataFrame
		// plan, and residual conjuncts become ordinary where steps.
		cj, err := c.compileJoin(jp)
		if err != nil {
			return nil, err
		}
		local = &joinEval{j: cj}
		prev = c.op(jp, "join", -1)
		local = &profiledClause{inner: local, opID: prev}
		if dfOK {
			plan = &dfPlan{sc: c.env.Spark, join: cj, ret: ret}
		}
		for i, res := range cj.residual {
			local = &whereEval{parent: local, cond: res}
			prev = c.op(jp.Residual[i], "where", prev)
			local = &profiledClause{inner: local, opID: prev}
			if dfOK {
				steps = append(steps, dfWhereStep(res))
			}
		}
		clauses = clauses[3:]
	}

	headDone := plan != nil
	for i, cl := range clauses {
		switch n := cl.(type) {
		case *ast.ForClause:
			in, err := c.compile(n.In)
			if err != nil {
				return nil, err
			}
			fe := &forEval{parent: local, varName: n.Var, posVar: n.PosVar, allowEmpty: n.AllowEmpty, in: in}
			local = fe
			input := prev
			if input < 0 {
				input = c.opOf(in, n.In) // head for: rows in = scan rows out
			}
			prev = c.op(n, "for $"+n.Var, input)
			local = &profiledClause{inner: local, opID: prev}
			if i == 0 && !headDone {
				if dfOK {
					plan = &dfPlan{sc: c.env.Spark, initVar: n.Var, initPos: n.PosVar, initIn: in, ret: ret}
				}
			} else if dfOK {
				steps = append(steps, dfForStep(n.Var, n.PosVar, n.AllowEmpty, in))
			}
		case *ast.LetClause:
			val, err := c.compile(n.Value)
			if err != nil {
				return nil, err
			}
			local = &letEval{parent: local, varName: n.Var, value: val}
			prev = c.op(n, "let $"+n.Var, prev)
			local = &profiledClause{inner: local, opID: prev}
			if dfOK && (i > 0 || headDone) {
				steps = append(steps, dfLetStep(n.Var, val))
			}
		case *ast.WhereClause:
			cond, err := c.compile(n.Cond)
			if err != nil {
				return nil, err
			}
			local = &whereEval{parent: local, cond: cond}
			prev = c.op(n, "where", prev)
			local = &profiledClause{inner: local, opID: prev}
			if dfOK {
				steps = append(steps, dfWhereStep(cond))
			}
		case *ast.GroupByClause:
			gplan := c.info.GroupPlans[n]
			var lspecs []groupSpecEval
			var dspecs []dfGroupSpec
			for _, spec := range n.Specs {
				var exprIt Iterator
				if spec.Expr != nil {
					e, err := c.compile(spec.Expr)
					if err != nil {
						return nil, err
					}
					exprIt = e
				}
				lspecs = append(lspecs, groupSpecEval{varName: spec.Var, expr: exprIt})
				dspecs = append(dspecs, dfGroupSpec{varName: spec.Var, expr: exprIt})
			}
			usage := map[string]compiler.VarUsage{}
			if gplan != nil {
				usage = gplan.Usage
			}
			local = &groupByEval{parent: local, specs: lspecs, usage: usage}
			prev = c.op(n, "group by", prev)
			local = &profiledClause{inner: local, opID: prev}
			if dfOK {
				steps = append(steps, dfGroupStep(dspecs, usage))
			}
		case *ast.OrderByClause:
			var lspecs []orderSpecEval
			var dspecs []dfOrderSpec
			for _, spec := range n.Specs {
				e, err := c.compile(spec.Expr)
				if err != nil {
					return nil, err
				}
				lspecs = append(lspecs, orderSpecEval{expr: e, descending: spec.Descending, emptyGreatest: spec.EmptyGreatest})
				dspecs = append(dspecs, dfOrderSpec{expr: e, descending: spec.Descending, emptyGreatest: spec.EmptyGreatest})
			}
			local = &orderByEval{parent: local, specs: lspecs}
			prev = c.op(n, "order by", prev)
			local = &profiledClause{inner: local, opID: prev}
			if dfOK {
				steps = append(steps, dfOrderStep(dspecs))
			}
		case *ast.CountClause:
			local = &countEval{parent: local, varName: n.Var}
			prev = c.op(n, "count $"+n.Var, prev)
			local = &profiledClause{inner: local, opID: prev}
			if dfOK {
				steps = append(steps, dfCountStep(n.Var))
			}
		default:
			return nil, Errorf("compile: unknown clause node %T", cl)
		}
	}
	out.local = local
	out.opRoot = c.op(f, "flwor", prev)
	if dfOK {
		plan.steps = steps
		out.df = plan
	}
	return out, nil
}

// compileVectorAgg builds the columnar plan of a grand aggregate call the
// compiler annotated ModeVector (Info.VectorAggs): the vector-eligible
// FLWOR argument compiles into a morsel pipeline whose tail folds the
// return projection into a single mergeable accumulator instead of
// emitting rows, so a filtered-scan count/sum/avg/min/max runs (and
// parallelizes) entirely inside the columnar backend. The fallback — used
// when a free variable binds a multi-item sequence at run time — is the
// ordinary local aggregate fold over the tuple pipeline.
func (c *comp) compileVectorAgg(n *ast.FunctionCall) (Iterator, error) {
	f, ok := n.Args[0].(*ast.FLWOR)
	if !ok {
		return nil, Errorf("vector: grand aggregate argument is not a FLWOR")
	}
	clauses, rlets, err := c.peelRDDLets(f)
	if err != nil {
		return nil, err
	}
	tuple, err := c.compileFLWORPipeline(f, clauses, len(rlets) > 0)
	if err != nil {
		return nil, err
	}
	fallback := &aggregateIter{name: n.Name, arg: tuple}
	vit, err := c.compileVector(f, clauses, fallback, &vaggSpec{name: n.Name, pn: c.pn(n)})
	if err != nil {
		return nil, err
	}
	out := c.profiled(n, n.Name, c.opOf(nil, f), vit)
	if len(rlets) > 0 {
		return &rddLetIter{planNode: c.pn(n), lets: rlets, inner: out}, nil
	}
	return out, nil
}

// compileVectorCountZero builds the early-exit vector pipeline of a
// count(...) eq 0 comparison the compiler annotated (Info.VectorCountZero):
// the count call's FLWOR argument folds as an `empty` existence test, so
// the scan stops at the first surviving row instead of counting them all.
// The fallback — a comparison over the ordinary local count — runs when a
// free variable binds a multi-item sequence at run time.
func (c *comp) compileVectorCountZero(n *ast.Comparison, call *ast.FunctionCall, fallback Iterator) (Iterator, error) {
	f, ok := call.Args[0].(*ast.FLWOR)
	if !ok {
		return nil, Errorf("vector: count argument is not a FLWOR")
	}
	clauses, rlets, err := c.peelRDDLets(f)
	if err != nil {
		return nil, err
	}
	vit, err := c.compileVector(f, clauses, fallback, &vaggSpec{name: "empty", pn: c.pn(n)})
	if err != nil {
		return nil, err
	}
	out := c.profiled(n, "count-eq-zero", c.opOf(nil, f), vit)
	if len(rlets) > 0 {
		return &rddLetIter{planNode: c.pn(n), lets: rlets, inner: out}, nil
	}
	return out, nil
}

package runtime

import (
	"sort"
	"time"

	"rumble/internal/ast"
	"rumble/internal/compiler"
	"rumble/internal/item"
)

// tuple is one assignment of FLWOR variables — part of the dynamic context,
// not a database tuple (footnote 1 of the paper). Variable order is
// tracked so tuples convert deterministically to DataFrame rows.
type tuple struct {
	names  []string
	values [][]item.Item
}

func (t tuple) lookup(name string) ([]item.Item, bool) {
	for i := len(t.names) - 1; i >= 0; i-- {
		if t.names[i] == name {
			return t.values[i], true
		}
	}
	return nil, false
}

// extend returns a copy of the tuple with one more binding. Variable
// redeclaration shadows: lookup scans from the end, and hidden variables
// are dropped when materializing contexts.
func (t tuple) extend(name string, seq []item.Item) tuple {
	names := make([]string, len(t.names)+1)
	copy(names, t.names)
	names[len(t.names)] = name
	values := make([][]item.Item, len(t.values)+1)
	copy(values, t.values)
	values[len(t.values)] = seq
	return tuple{names: names, values: values}
}

// context converts the tuple into a child dynamic context of dc.
func (t tuple) context(dc *DynamicContext) *DynamicContext {
	vars := make(map[string][]item.Item, len(t.names))
	for i, n := range t.names {
		vars[n] = t.values[i] // later (shadowing) bindings overwrite
	}
	return dc.BindVars(vars)
}

// clauseEval streams the tuple output of one FLWOR clause.
type clauseEval interface {
	streamTuples(dc *DynamicContext, yield func(tuple) error) error
}

// forEval implements the for clause: one output tuple per item.
type forEval struct {
	parent     clauseEval // nil when this is the initial clause
	varName    string
	posVar     string
	allowEmpty bool
	in         Iterator
}

func (f *forEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	// Cooperative cancellation: the for clause is the driving loop of
	// local FLWOR evaluation, so it checks the Go context periodically.
	ctx := dc.GoContext()
	var seen int
	emit := func(base tuple) error {
		bdc := base.context(dc)
		var pos int64
		err := f.in.Stream(bdc, func(it item.Item) error {
			if ctx != nil {
				if seen++; seen&63 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
			pos++
			out := base.extend(f.varName, []item.Item{it})
			if f.posVar != "" {
				out = out.extend(f.posVar, []item.Item{item.Int(pos)})
			}
			return yield(out)
		})
		if err != nil {
			return err
		}
		if pos == 0 && f.allowEmpty {
			out := base.extend(f.varName, nil)
			if f.posVar != "" {
				out = out.extend(f.posVar, []item.Item{item.Int(0)})
			}
			return yield(out)
		}
		return nil
	}
	if f.parent == nil {
		return emit(tuple{})
	}
	return f.parent.streamTuples(dc, emit)
}

// letEval implements the let clause: extend each tuple with the whole
// sequence.
type letEval struct {
	parent  clauseEval // nil when this is the initial clause
	varName string
	value   Iterator
}

func (l *letEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	emit := func(base tuple) error {
		seq, err := Materialize(l.value, base.context(dc))
		if err != nil {
			return err
		}
		return yield(base.extend(l.varName, seq))
	}
	if l.parent == nil {
		return emit(tuple{})
	}
	return l.parent.streamTuples(dc, emit)
}

// whereEval filters tuples by the effective boolean value of the condition.
type whereEval struct {
	parent clauseEval
	cond   Iterator
}

func (w *whereEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	return w.parent.streamTuples(dc, func(t tuple) error {
		b, err := ebvOf(w.cond, t.context(dc))
		if err != nil {
			return err
		}
		if b {
			return yield(t)
		}
		return nil
	})
}

// groupSpecEval is one compiled grouping key.
type groupSpecEval struct {
	varName string
	expr    Iterator // nil when grouping by an existing variable
}

// groupByEval implements the group-by clause locally: materialize, bucket
// by encoded keys, emit one tuple per group with non-grouping variables
// re-bound to the concatenation of their values. The usage analysis mirrors
// the DataFrame path: count-only variables bind only their pre-aggregated
// count, and unused variables are not carried at all.
type groupByEval struct {
	parent clauseEval
	specs  []groupSpecEval
	usage  map[string]compiler.VarUsage
}

func (g *groupByEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	type group struct {
		keys   [][]item.Item // singleton or empty sequence per spec
		tuples []tuple
	}
	groups := make(map[string]*group)
	var order []string
	err := g.parent.streamTuples(dc, func(t tuple) error {
		// Bind / resolve each grouping key on this tuple.
		keySeqs := make([][]item.Item, len(g.specs))
		work := t
		for i, spec := range g.specs {
			var seq []item.Item
			if spec.expr != nil {
				s, err := Materialize(spec.expr, work.context(dc))
				if err != nil {
					return err
				}
				seq = s
			} else {
				s, ok := work.lookup(spec.varName)
				if !ok {
					return Errorf("group by: variable $%s is not bound", spec.varName)
				}
				seq = s
			}
			if len(seq) > 1 {
				return Errorf("group by: key $%s binds a sequence of %d items", spec.varName, len(seq))
			}
			keySeqs[i] = seq
			work = work.extend(spec.varName, seq)
		}
		var keyBuf []byte
		for _, seq := range keySeqs {
			sk, err := item.EncodeSortKey(seq, false)
			if err != nil {
				return Errorf("group by: %v", err)
			}
			keyBuf = item.AppendSortKey(keyBuf, sk)
		}
		k := string(keyBuf)
		grp, ok := groups[k]
		if !ok {
			grp = &group{keys: keySeqs}
			groups[k] = grp
			order = append(order, k)
		}
		grp.tuples = append(grp.tuples, work)
		return nil
	})
	if err != nil {
		return err
	}
	for _, k := range order {
		grp := groups[k]
		out := tuple{}
		isKey := make(map[string]bool, len(g.specs))
		for i, spec := range g.specs {
			out = out.extend(spec.varName, grp.keys[i])
			isKey[spec.varName] = true
		}
		// Non-grouping variables: concatenation across the group's tuples,
		// or just the count / nothing per the usage analysis.
		seen := map[string]bool{}
		for _, name := range grp.tuples[0].names {
			if isKey[name] || seen[name] {
				continue
			}
			seen[name] = true
			if g.usage[name] == compiler.UsageUnused {
				continue
			}
			var n int64
			var all []item.Item
			for _, t := range grp.tuples {
				if seq, ok := t.lookup(name); ok {
					n += int64(len(seq))
					if g.usage[name] != compiler.UsageCountOnly {
						all = append(all, seq...)
					}
				}
			}
			if g.usage[name] == compiler.UsageCountOnly {
				out = out.extend(name+compiler.CountMarkerSuffix, []item.Item{item.Int(n)})
				continue
			}
			out = out.extend(name, all)
		}
		if err := yield(out); err != nil {
			return err
		}
	}
	return nil
}

// orderSpecEval is one compiled ordering key.
type orderSpecEval struct {
	expr          Iterator
	descending    bool
	emptyGreatest bool
}

// orderByEval implements the order-by clause locally: materialize tuples,
// compute keys (single atomic or empty required; mixed string/number types
// raise an error per the JSONiq spec), sort stably, re-emit.
type orderByEval struct {
	parent clauseEval
	specs  []orderSpecEval
}

func (o *orderByEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	type keyed struct {
		t    tuple
		keys []item.SortKey
	}
	var rows []keyed
	// Track observed value tags per spec for the compatibility check.
	sawString := make([]bool, len(o.specs))
	sawNumber := make([]bool, len(o.specs))
	err := o.parent.streamTuples(dc, func(t tuple) error {
		keys := make([]item.SortKey, len(o.specs))
		tdc := t.context(dc)
		for i, spec := range o.specs {
			seq, err := Materialize(spec.expr, tdc)
			if err != nil {
				return err
			}
			if len(seq) > 1 {
				return Errorf("order by: key binds a sequence of %d items", len(seq))
			}
			if len(seq) == 1 && !item.IsAtomic(seq[0]) {
				return Errorf("order by: key is a non-atomic %s item", seq[0].Kind())
			}
			sk, err := item.EncodeSortKey(seq, spec.emptyGreatest)
			if err != nil {
				return Errorf("order by: %v", err)
			}
			switch sk.Tag {
			case item.TagString:
				sawString[i] = true
			case item.TagNumber:
				sawNumber[i] = true
			}
			keys[i] = sk
		}
		rows = append(rows, keyed{t: t, keys: keys})
		return nil
	})
	if err != nil {
		return err
	}
	for i := range o.specs {
		if sawString[i] && sawNumber[i] {
			return Errorf("order by: key %d mixes strings and numbers across the tuple stream", i+1)
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, spec := range o.specs {
			c := rows[a].keys[i].Compare(rows[b].keys[i])
			if c == 0 {
				continue
			}
			if spec.descending {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		if err := yield(r.t); err != nil {
			return err
		}
	}
	return nil
}

// countEval implements the count clause: bind the 1-based tuple position.
type countEval struct {
	parent  clauseEval
	varName string
}

func (c *countEval) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	var n int64
	return c.parent.streamTuples(dc, func(t tuple) error {
		n++
		return yield(t.extend(c.varName, []item.Item{item.Int(n)}))
	})
}

// compile-time representation of a whole FLWOR expression. The compiler
// chose the execution mode statically: the DataFrame plan exists exactly
// when the node was annotated ModeDataFrame.
type flworIter struct {
	planNode
	clauses []ast.Clause // original clause list (for DataFrame planning)
	local   clauseEval   // chained local evaluators
	ret     Iterator
	df      *dfPlan // non-nil when the static mode is ModeDataFrame
	opRoot  int     // profiling operator of the whole FLWOR (result rows)
}

func (f *flworIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	op := dc.Profile().Op(f.opRoot)
	if op == nil {
		return f.local.streamTuples(dc, func(t tuple) error {
			return f.ret.Stream(t.context(dc), yield)
		})
	}
	start := time.Now()
	var rows int64
	err := f.local.streamTuples(dc, func(t tuple) error {
		return f.ret.Stream(t.context(dc), func(it item.Item) error {
			rows++
			return yield(it)
		})
	})
	op.AddRows(rows)
	op.AddBatches(1)
	op.AddWall(time.Since(start))
	return err
}

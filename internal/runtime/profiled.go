package runtime

import (
	"time"

	"rumble/internal/compiler"
	"rumble/internal/item"
	"rumble/internal/segment"
	"rumble/internal/spark"
)

// profiledIter instruments one plan operator (a scan source or an
// aggregate): evaluations whose DynamicContext carries a profile record
// rows out, batches and inclusive wall time under opID; all other
// evaluations pay a single nil check per Stream/RDD call.
//
// The wrapper is transparent to every runtime capability of the wrapped
// iterator: Mode delegates, RDD wraps the cluster pipeline with
// spark.Observe (per-partition counts recorded from executor tasks),
// and StreamRaw forwards to a raw-capable source so the vector
// backend's byte-level scan handoff still engages through the wrapper.
type profiledIter struct {
	inner Iterator
	opID  int
}

func (p *profiledIter) Mode() compiler.Mode { return p.inner.Mode() }

func (p *profiledIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	op := dc.Profile().Op(p.opID)
	if op == nil {
		return p.inner.Stream(dc, yield)
	}
	start := time.Now()
	var rows int64
	err := p.inner.Stream(dc, func(it item.Item) error {
		rows++
		return yield(it)
	})
	op.AddRows(rows)
	op.AddBatches(1)
	op.AddWall(time.Since(start))
	return err
}

func (p *profiledIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	rdd, err := p.inner.RDD(dc)
	if err != nil {
		return nil, err
	}
	op := dc.Profile().Op(p.opID)
	if op == nil {
		return rdd, nil
	}
	return spark.Observe(rdd, func(rows int64, wall time.Duration) {
		op.AddRows(rows)
		op.AddBatches(1)
		op.AddWall(wall)
	}), nil
}

// StreamRaw implements rawScanner by forwarding to the wrapped source.
// handled=false when the source is not raw-capable for this evaluation,
// exactly as if the wrapper were absent; raw rows count once here (the
// decoded-item Stream path is not taken when raw scanning engages).
func (p *profiledIter) StreamRaw(dc *DynamicContext, yield func(line []byte, bytes int64) error) (bool, error) {
	raw, ok := p.inner.(rawScanner)
	if !ok {
		return false, nil
	}
	op := dc.Profile().Op(p.opID)
	if op == nil {
		return raw.StreamRaw(dc, yield)
	}
	start := time.Now()
	var rows int64
	handled, err := raw.StreamRaw(dc, func(line []byte, n int64) error {
		rows++
		return yield(line, n)
	})
	if handled {
		op.AddRows(rows)
		op.AddBatches(1)
		op.AddWall(time.Since(start))
	}
	return handled, err
}

// SegmentDataset implements segmentSource by forwarding to the wrapped
// source, so a segment-backed scan still engages through the wrapper.
// Scan rows are profiled per batch by the vector backend itself
// (processMorsel records into the scan operator), so nothing is counted
// here.
func (p *profiledIter) SegmentDataset(dc *DynamicContext) *segment.Dataset {
	if src, ok := p.inner.(segmentSource); ok {
		return src.SegmentDataset(dc)
	}
	return nil
}

// profiledClause instruments one FLWOR clause of the tuple pipeline,
// counting the tuples it emits downstream. Wall time is inclusive: it
// covers the wrapped clause, its upstream chain and the downstream
// consumption driven through yield — explain-analyze renders it as such.
type profiledClause struct {
	inner clauseEval
	opID  int
}

func (p *profiledClause) streamTuples(dc *DynamicContext, yield func(tuple) error) error {
	op := dc.Profile().Op(p.opID)
	if op == nil {
		return p.inner.streamTuples(dc, yield)
	}
	start := time.Now()
	var rows int64
	err := p.inner.streamTuples(dc, func(t tuple) error {
		rows++
		return yield(t)
	})
	op.AddRows(rows)
	op.AddBatches(1)
	op.AddWall(time.Since(start))
	return err
}

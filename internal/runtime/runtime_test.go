package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumble/internal/compiler"
	"rumble/internal/item"
	"rumble/internal/parser"
	"rumble/internal/spark"
)

func testEnv(sc *spark.Context) *Env {
	return &Env{
		Spark:       sc,
		Collections: map[string]string{},
		InMemory:    map[string][]item.Item{},
	}
}

func compileQuery(t *testing.T, env *Env, q string) *Program {
	t.Helper()
	m, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Compile(m, env)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestDynamicContextChaining(t *testing.T) {
	root := NewDynamicContext()
	a := root.BindVar("x", []item.Item{item.Int(1)})
	b := a.BindVar("y", []item.Item{item.Int(2)})
	if v, ok := b.Lookup("x"); !ok || int64(v[0].(item.Int)) != 1 {
		t.Error("parent binding not visible")
	}
	// Shadowing: the child wins; the parent is untouched.
	c := b.BindVar("x", []item.Item{item.Int(9)})
	if v, _ := c.Lookup("x"); int64(v[0].(item.Int)) != 9 {
		t.Error("shadowing failed")
	}
	if v, _ := b.Lookup("x"); int64(v[0].(item.Int)) != 1 {
		t.Error("parent context mutated by child binding")
	}
	if _, ok := root.Lookup("x"); ok {
		t.Error("root sees child binding")
	}
}

func TestContextItemChaining(t *testing.T) {
	root := NewDynamicContext()
	if _, _, ok := root.ContextItem(); ok {
		t.Error("root should have no context item")
	}
	c1 := root.WithContextItem(item.Str("outer"), 1)
	c2 := c1.BindVar("v", nil)
	it, pos, ok := c2.ContextItem()
	if !ok || string(it.(item.Str)) != "outer" || pos != 1 {
		t.Error("context item should be visible through variable frames")
	}
	c3 := c2.WithContextItem(item.Str("inner"), 5)
	it, pos, _ = c3.ContextItem()
	if string(it.(item.Str)) != "inner" || pos != 5 {
		t.Error("inner context item should shadow")
	}
}

func TestTupleShadowing(t *testing.T) {
	tu := tuple{}
	tu = tu.extend("x", []item.Item{item.Int(1)})
	tu = tu.extend("y", []item.Item{item.Int(2)})
	tu2 := tu.extend("x", []item.Item{item.Int(3)})
	if v, _ := tu2.lookup("x"); int64(v[0].(item.Int)) != 3 {
		t.Error("tuple redeclaration should shadow")
	}
	if v, _ := tu.lookup("x"); int64(v[0].(item.Int)) != 1 {
		t.Error("tuple extension must not mutate the original")
	}
	dc := tu2.context(NewDynamicContext())
	if v, _ := dc.Lookup("x"); int64(v[0].(item.Int)) != 3 {
		t.Error("context conversion should expose the shadowing binding")
	}
}

// TestClauseMappingFigure9 verifies the physical mappings of Figure 9: a
// group-by runs a shuffle, an order-by runs a sort shuffle, a count clause
// runs the zip-with-index stages, and a pure for/where pipeline shuffles
// nothing.
func TestClauseMappingFigure9(t *testing.T) {
	cases := []struct {
		name        string
		query       string
		wantShuffle bool
		wantMode    compiler.Mode
	}{
		{"for-where pipeline", `for $x in parallelize(1 to 100) where $x gt 50 return $x`, false, compiler.ModeDataFrame},
		{"group-by shuffles", `for $x in parallelize(1 to 100) group by $k := $x mod 3 return $k`, true, compiler.ModeDataFrame},
		{"order-by shuffles", `for $x in parallelize(1 to 100) order by $x descending return $x`, true, compiler.ModeDataFrame},
		{"let extends only", `for $x in parallelize(1 to 10) let $y := $x * 2 return $y`, false, compiler.ModeDataFrame},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
			prog := compileQuery(t, testEnv(sc), c.query)
			if prog.Mode() != c.wantMode {
				t.Fatalf("mode = %v, want %v", prog.Mode(), c.wantMode)
			}
			if _, err := prog.Run(); err != nil {
				t.Fatal(err)
			}
			m := sc.Metrics()
			if (m.ShuffleRecords > 0) != c.wantShuffle {
				t.Errorf("shuffle records = %d, want shuffle=%v", m.ShuffleRecords, c.wantShuffle)
			}
		})
	}
}

func TestCountClauseRunsZipWithIndexStages(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	prog := compileQuery(t, testEnv(sc),
		`for $x in parallelize(1 to 100) count $c where $c le 3 return $c`)
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("count clause result = %v", out)
	}
	// zipWithIndex needs a counting stage before the streaming stage.
	if sc.Metrics().StagesRun < 2 {
		t.Errorf("stages = %d, want at least 2 (count stage + compute)", sc.Metrics().StagesRun)
	}
}

func TestMaterializeVsStreamAgree(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	prog := compileQuery(t, testEnv(sc),
		`for $x in parallelize(1 to 50) where $x mod 5 eq 0 return $x`)
	viaRDD, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	viaStream, err := Materialize(prog.Root, prog.GlobalContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRDD) != len(viaStream) {
		t.Fatalf("RDD %d items vs stream %d items", len(viaRDD), len(viaStream))
	}
	for i := range viaRDD {
		if !item.DeepEqual(viaRDD[i], viaStream[i]) {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestPredicatePositionalOnRDD(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	prog := compileQuery(t, testEnv(sc), `parallelize(10 to 100)[5]`)
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || int64(out[0].(item.Int)) != 14 {
		t.Errorf("positional predicate over RDD = %v", out)
	}
}

func TestJSONFileStreamAndRDDAgree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.jsonl")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, `{"i": %d}`+"\n", i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	env := testEnv(sc)
	env.SplitSize = 256
	prog := compileQuery(t, env, fmt.Sprintf(`json-file(%q).i`, path))
	if prog.Mode() != compiler.ModeRDD {
		t.Fatalf("json-file lookup chain mode = %v, want RDD", prog.Mode())
	}
	viaRDD, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	viaStream, err := Materialize(prog.Root, prog.GlobalContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRDD) != 200 || len(viaStream) != 200 {
		t.Fatalf("RDD %d, stream %d", len(viaRDD), len(viaStream))
	}
	for i := range viaRDD {
		if !item.DeepEqual(viaRDD[i], viaStream[i]) {
			t.Fatalf("item %d differs: %v vs %v", i, viaRDD[i], viaStream[i])
		}
	}
}

func TestJSONFileMissingPath(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2})
	prog := compileQuery(t, testEnv(sc), `json-file("/no/such/file.jsonl")`)
	if _, err := prog.Run(); err == nil {
		t.Error("missing input should error")
	}
}

func TestJSONFileMalformedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"ok\": 1}\n{broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2})
	prog := compileQuery(t, testEnv(sc), fmt.Sprintf(`count(json-file(%q))`, path))
	if _, err := prog.Run(); err == nil {
		t.Error("malformed JSON line should surface as an error")
	}
}

func TestGroupByCountSyntheticVarHiddenLocally(t *testing.T) {
	// The count-only optimization must also apply on the purely local
	// path (no Spark context).
	env := testEnv(nil)
	prog := compileQuery(t, env, `
		for $x in (1, 2, 3, 4)
		group by $k := $x mod 2
		order by $k
		return count($x)`)
	if prog.Mode() != compiler.ModeLocal {
		t.Fatal("no spark context: must be local")
	}
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || int64(out[0].(item.Int)) != 2 || int64(out[1].(item.Int)) != 2 {
		t.Errorf("local count-only grouping = %v", out)
	}
}

func TestIfBranchRDDCapability(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2})
	prog := compileQuery(t, testEnv(sc),
		`if (1 eq 1) then parallelize(1 to 10) else ()`)
	if prog.Mode() != compiler.ModeRDD {
		t.Fatalf("if with an RDD branch mode = %v, want RDD", prog.Mode())
	}
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Errorf("%d items", len(out))
	}
	// The other branch is local; the if must parallelize its result.
	prog2 := compileQuery(t, testEnv(sc),
		`if (1 eq 2) then parallelize(1 to 10) else (42, 43)`)
	out2, err := prog2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 2 || int64(out2[0].(item.Int)) != 42 {
		t.Errorf("local branch through RDD = %v", out2)
	}
}

func TestCommaRDDUnion(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2})
	prog := compileQuery(t, testEnv(sc),
		`(parallelize(1 to 3), parallelize(7 to 9))`)
	if prog.Mode() != compiler.ModeRDD {
		t.Fatalf("comma of RDDs mode = %v, want RDD", prog.Mode())
	}
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 7, 8, 9}
	if len(out) != len(want) {
		t.Fatalf("union = %v", out)
	}
	for i, w := range want {
		if int64(out[i].(item.Int)) != w {
			t.Fatalf("union[%d] = %v", i, out[i])
		}
	}
}

func TestDataFrameOrderByTypeCheckOnCluster(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 4, Executors: 4})
	prog := compileQuery(t, testEnv(sc), `
		for $o in parallelize(({"v": 1}, {"v": "a"}))
		order by $o.v
		return $o`)
	if _, err := prog.Run(); err == nil {
		t.Error("mixed-type order-by on the DataFrame path should error")
	}
}

func TestErrDynamicVsStatic(t *testing.T) {
	env := testEnv(nil)
	// static: unknown variable caught at compile time
	m, err := parser.Parse(`$nope`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, env); err == nil {
		t.Error("unbound variable should fail at compile time")
	}
	// dynamic: division by zero only fails at run time
	prog := compileQuery(t, env, `1 idiv 0`)
	if _, err := prog.Run(); err == nil {
		t.Error("idiv 0 should fail at run time")
	}
}

func TestAllowingEmptyDFFallsBackLocal(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2})
	prog := compileQuery(t, testEnv(sc),
		`for $x allowing empty in parallelize(()) return "kept"`)
	if prog.Mode() != compiler.ModeLocal {
		t.Error("initial for with allowing empty must fall back to local execution")
	}
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0].(item.Str)) != "kept" {
		t.Errorf("allowing empty = %v", out)
	}
}

func TestLeadingLetKeepsLocalExecution(t *testing.T) {
	sc := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2})
	prog := compileQuery(t, testEnv(sc),
		`let $n := 3 for $x in parallelize(1 to 10) where $x le $n return $x`)
	if prog.Mode() != compiler.ModeLocal {
		t.Error("a leading let keeps FLWOR execution local (§4.5)")
	}
	out, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("%d items", len(out))
	}
}

package runtime

import (
	"rumble/internal/item"
	"rumble/internal/spark"
)

// objectLookupIter implements Input.Key: for every object item in the
// input, yield the value bound to the key; non-objects and absent keys
// contribute nothing. RDD execution is a flatMap, as §4.1.2 describes.
type objectLookupIter struct {
	planNode
	input Iterator
	key   Iterator
}

// lookupKey evaluates the key expression to a string.
func (o *objectLookupIter) lookupKey(dc *DynamicContext) (string, error) {
	seq, err := Materialize(o.key, dc)
	if err != nil {
		return "", err
	}
	kit, err := exactlyOneAtomic(seq, "object lookup key")
	if err != nil {
		return "", err
	}
	s, err := item.StringValue(kit)
	if err != nil {
		return "", Errorf("%v", err)
	}
	return s, nil
}

func (o *objectLookupIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	key, err := o.lookupKey(dc)
	if err != nil {
		return err
	}
	return o.input.Stream(dc, func(it item.Item) error {
		if obj, ok := it.(*item.Object); ok {
			if v, found := obj.Get(key); found {
				return yield(v)
			}
		}
		return nil
	})
}

func (o *objectLookupIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	in, err := o.input.RDD(dc)
	if err != nil {
		return nil, err
	}
	key, err := o.lookupKey(dc)
	if err != nil {
		return nil, err
	}
	return spark.FlatMap(in, func(it item.Item) []item.Item {
		if obj, ok := it.(*item.Object); ok {
			if v, found := obj.Get(key); found {
				return []item.Item{v}
			}
		}
		return nil
	}), nil
}

// arrayUnboxIter implements Input[]: stream the members of each array item;
// non-arrays contribute nothing.
type arrayUnboxIter struct {
	planNode
	input Iterator
}

func (a *arrayUnboxIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	return a.input.Stream(dc, func(it item.Item) error {
		if arr, ok := it.(*item.Array); ok {
			for _, m := range arr.Members() {
				if err := yield(m); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func (a *arrayUnboxIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	in, err := a.input.RDD(dc)
	if err != nil {
		return nil, err
	}
	return spark.FlatMap(in, func(it item.Item) []item.Item {
		if arr, ok := it.(*item.Array); ok {
			return arr.Members()
		}
		return nil
	}), nil
}

// arrayLookupIter implements Input[[Index]] (1-based member access).
type arrayLookupIter struct {
	planNode
	input Iterator
	index Iterator
}

func (a *arrayLookupIter) indexValue(dc *DynamicContext) (int64, bool, error) {
	seq, err := Materialize(a.index, dc)
	if err != nil {
		return 0, false, err
	}
	if len(seq) == 0 {
		return 0, false, nil
	}
	iit, err := exactlyOneAtomic(seq, "array lookup index")
	if err != nil {
		return 0, false, err
	}
	n, err := item.CastToInteger(iit)
	if err != nil {
		return 0, false, Errorf("array lookup index must be an integer: %v", err)
	}
	return int64(n.(item.Int)), true, nil
}

func member(it item.Item, idx int64) (item.Item, bool) {
	arr, ok := it.(*item.Array)
	if !ok || idx < 1 || idx > int64(arr.Len()) {
		return nil, false
	}
	return arr.Member(int(idx - 1)), true
}

func (a *arrayLookupIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	idx, ok, err := a.indexValue(dc)
	if err != nil || !ok {
		return err
	}
	return a.input.Stream(dc, func(it item.Item) error {
		if m, found := member(it, idx); found {
			return yield(m)
		}
		return nil
	})
}

func (a *arrayLookupIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	in, err := a.input.RDD(dc)
	if err != nil {
		return nil, err
	}
	idx, ok, err := a.indexValue(dc)
	if err != nil {
		return nil, err
	}
	if !ok {
		return spark.Parallelize[item.Item](in.Context(), nil, 1), nil
	}
	return spark.FlatMap(in, func(it item.Item) []item.Item {
		if m, found := member(it, idx); found {
			return []item.Item{m}
		}
		return nil
	}), nil
}

// simpleMapIter implements the "!" operator: the mapping expression is
// evaluated once per input item with $$ bound to it, results concatenated.
// On the cluster it is a flatMap whose closure carries the mapping
// iterator, evaluated through its local API per item (§5.6).
type simpleMapIter struct {
	planNode
	input   Iterator
	mapping Iterator
}

func (s *simpleMapIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	var pos int64
	return s.input.Stream(dc, func(it item.Item) error {
		pos++
		return s.mapping.Stream(dc.WithContextItem(it, pos), yield)
	})
}

func (s *simpleMapIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	in, err := s.input.RDD(dc)
	if err != nil {
		return nil, err
	}
	indexed := spark.ZipWithIndex(in)
	return spark.FlatMapE(indexed, func(kv spark.Pair[int64, item.Item]) ([]item.Item, error) {
		return Materialize(s.mapping, dc.WithContextItem(kv.Value, kv.Key+1))
	}), nil
}

// predicateIter implements Input[Pred]. For every input item, the predicate
// is evaluated with $$ bound to the item and the context position to its
// 1-based index: a numeric predicate value selects by position, anything
// else filters by effective boolean value. On the cluster, the predicate
// iterator travels inside the closure and runs through its local API on
// each executor (§5.6).
type predicateIter struct {
	planNode
	input Iterator
	pred  Iterator
}

// keep decides whether the item at position pos (1-based) passes.
func (p *predicateIter) keep(dc *DynamicContext, it item.Item, pos int64) (bool, error) {
	pdc := dc.WithContextItem(it, pos)
	seq, err := Materialize(p.pred, pdc)
	if err != nil {
		return false, err
	}
	if len(seq) == 1 && item.IsNumeric(seq[0]) {
		return item.Float64Value(seq[0]) == float64(pos), nil
	}
	b, err := item.EffectiveBoolean(seq)
	if err != nil {
		return false, Errorf("%v", err)
	}
	return b, nil
}

func (p *predicateIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	var pos int64
	return p.input.Stream(dc, func(it item.Item) error {
		pos++
		ok, err := p.keep(dc, it, pos)
		if err != nil {
			return err
		}
		if ok {
			return yield(it)
		}
		return nil
	})
}

func (p *predicateIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	in, err := p.input.RDD(dc)
	if err != nil {
		return nil, err
	}
	indexed := spark.ZipWithIndex(in)
	filtered := spark.FilterE(indexed, func(kv spark.Pair[int64, item.Item]) (bool, error) {
		return p.keep(dc, kv.Value, kv.Key+1)
	})
	return spark.Values(filtered), nil
}

package runtime

import (
	"errors"

	"rumble/internal/ast"
	"rumble/internal/item"
	"rumble/internal/spark"
)

// ifIter chooses a branch by the effective boolean value of the condition.
// The compiler annotates it ModeRDD when either branch is parallel: the
// chosen branch runs as an RDD if its own static mode allows, and is
// parallelized from its local result otherwise.
type ifIter struct {
	planNode
	cond, then, els Iterator
	sc              *spark.Context
}

func (i *ifIter) branch(dc *DynamicContext) (Iterator, error) {
	b, err := ebvOf(i.cond, dc)
	if err != nil {
		return nil, err
	}
	if b {
		return i.then, nil
	}
	return i.els, nil
}

func (i *ifIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	br, err := i.branch(dc)
	if err != nil {
		return err
	}
	return br.Stream(dc, yield)
}

func (i *ifIter) RDD(dc *DynamicContext) (*spark.RDD[item.Item], error) {
	br, err := i.branch(dc)
	if err != nil {
		return nil, err
	}
	if br.Mode().Parallel() {
		return br.RDD(dc)
	}
	seq, err := Materialize(br, dc)
	if err != nil {
		return nil, err
	}
	return spark.Parallelize(i.sc, seq, 0), nil
}

// switchIter compares the switch operand against each case value using
// deep-equal semantics (atomics compare by value; the empty sequence
// matches an empty case).
type switchIter struct {
	localOnly
	input Iterator
	cases []switchCase
	deflt Iterator
}

type switchCase struct {
	values []Iterator
	result Iterator
}

func (s *switchIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	inSeq, err := Materialize(s.input, dc)
	if err != nil {
		return err
	}
	if len(inSeq) > 1 {
		return Errorf("switch operand must be a single item or empty, got %d items", len(inSeq))
	}
	for _, c := range s.cases {
		for _, v := range c.values {
			vSeq, err := Materialize(v, dc)
			if err != nil {
				return err
			}
			if len(vSeq) > 1 {
				return Errorf("switch case operand must be a single item or empty")
			}
			match := false
			switch {
			case len(inSeq) == 0 && len(vSeq) == 0:
				match = true
			case len(inSeq) == 1 && len(vSeq) == 1:
				match = item.DeepEqual(inSeq[0], vSeq[0])
			}
			if match {
				return c.result.Stream(dc, yield)
			}
		}
	}
	return s.deflt.Stream(dc, yield)
}

// tryCatchIter evaluates the try branch, switching to the catch branch on
// any dynamic error. Errors during the already-yielded prefix cannot be
// unwound, so the try result is materialized first, per snapshot semantics.
type tryCatchIter struct {
	localOnly
	try, catch Iterator
}

func (t *tryCatchIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(t.try, dc)
	if err != nil {
		var dyn *Error
		if errors.As(err, &dyn) {
			cdc := dc.BindVar("err:description", []item.Item{item.Str(dyn.Msg)})
			return t.catch.Stream(cdc, yield)
		}
		return err
	}
	for _, it := range seq {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

// quantifiedIter is some/every … satisfies, with nested binding loops.
type quantifiedIter struct {
	localOnly
	every     bool
	bindings  []quantBinding
	satisfies Iterator
}

type quantBinding struct {
	name string
	in   Iterator
}

func (q *quantifiedIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	result, err := q.eval(dc, 0)
	if err != nil {
		return err
	}
	return yield(item.Bool(result))
}

// eval recursively iterates binding i; returns the quantified truth value.
func (q *quantifiedIter) eval(dc *DynamicContext, i int) (bool, error) {
	if i == len(q.bindings) {
		return ebvOf(q.satisfies, dc)
	}
	seq, err := Materialize(q.bindings[i].in, dc)
	if err != nil {
		return false, err
	}
	for _, it := range seq {
		sub, err := q.eval(dc.BindVar(q.bindings[i].name, []item.Item{it}), i+1)
		if err != nil {
			return false, err
		}
		if q.every && !sub {
			return false, nil
		}
		if !q.every && sub {
			return true, nil
		}
	}
	return q.every, nil
}

// instanceOfIter implements "instance of" over sequence types.
type instanceOfIter struct {
	localOnly
	input Iterator
	typ   ast.SequenceType
}

func matchesSequenceType(seq []item.Item, st ast.SequenceType) bool {
	if st.EmptySequence {
		return len(seq) == 0
	}
	switch st.Occurrence {
	case "":
		if len(seq) != 1 {
			return false
		}
	case "?":
		if len(seq) > 1 {
			return false
		}
	case "+":
		if len(seq) == 0 {
			return false
		}
	case "*":
		// any length
	}
	for _, it := range seq {
		if !item.InstanceOf(it, st.ItemType) {
			return false
		}
	}
	return true
}

func (i *instanceOfIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(i.input, dc)
	if err != nil {
		return err
	}
	return yield(item.Bool(matchesSequenceType(seq, i.typ)))
}

// treatIter implements "treat as": identity with a runtime type check.
type treatIter struct {
	localOnly
	input Iterator
	typ   ast.SequenceType
}

func (t *treatIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(t.input, dc)
	if err != nil {
		return err
	}
	if !matchesSequenceType(seq, t.typ) {
		return Errorf("treat as: sequence does not match type %s%s", t.typ.ItemType, t.typ.Occurrence)
	}
	for _, it := range seq {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

// castableIter implements "castable as".
type castableIter struct {
	localOnly
	input    Iterator
	typeName string
}

func (c *castableIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(c.input, dc)
	if err != nil {
		return err
	}
	if len(seq) != 1 || !item.IsAtomic(seq[0]) {
		return yield(item.Bool(false))
	}
	return yield(item.Bool(item.Castable(seq[0], c.typeName)))
}

// castIter implements "cast as".
type castIter struct {
	localOnly
	input    Iterator
	typeName string
}

func (c *castIter) Stream(dc *DynamicContext, yield func(item.Item) error) error {
	seq, err := Materialize(c.input, dc)
	if err != nil {
		return err
	}
	if len(seq) == 0 {
		return Errorf("cast as %s: empty sequence (use castable or '?')", c.typeName)
	}
	it, err := exactlyOneAtomic(seq, "cast operand")
	if err != nil {
		return err
	}
	out, err := item.CastTo(it, c.typeName)
	if err != nil {
		return Errorf("%v", err)
	}
	return yield(out)
}

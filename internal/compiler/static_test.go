package compiler

import (
	"strings"
	"testing"

	"rumble/internal/ast"
	"rumble/internal/parser"
)

func analyze(t *testing.T, src string) (*ast.Module, *Info) {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(m, Options{Cluster: true})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return m, info
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(m, Options{Cluster: true})
	return err
}

func TestScopeErrors(t *testing.T) {
	bad := map[string]string{
		`$x`:                            "not in scope",
		`for $a in (1) return $b`:       "not in scope",
		`let $a := $a return 1`:         "not in scope",
		`some $q in (1) satisfies $w`:   "not in scope",
		`(for $a in (1) return $a), $a`: "not in scope", // FLWOR vars don't leak
		`nosuch()`:                      "unknown function",
		`count()`:                       "called with 0",
		`json-file()`:                   "expects 1 to 2",
		`declare function local:f($x) { $x }; local:f()`:                            "expects 1",
		`declare function local:f($x) { $y }; 1`:                                    "not in scope",
		`declare function local:f($x) { 1 }; declare function local:f($x) { 2 }; 1`: "declared twice",
	}
	for src, fragment := range bad {
		err := analyzeErr(t, src)
		if err == nil {
			t.Errorf("Analyze(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), fragment) {
			t.Errorf("Analyze(%q) error %q does not mention %q", src, err, fragment)
		}
	}
}

func TestScopeSuccesses(t *testing.T) {
	good := []string{
		`for $a in (1) let $b := $a where $b eq $a order by $b count $c return ($a, $b, $c)`,
		`declare variable $g := 1; for $a in (1) return $a + $g`,
		`declare function local:rec($n) { if ($n le 0) then 0 else local:rec($n - 1) }; local:rec(3)`,
		`try { 1 } catch * { $err:description }`,
		`every $a in (1), $b in ($a) satisfies $b eq $a`,
		`for $a in (1) group by $k := $a return ($k, $a)`,
		`for $o in (1) for $o in (2) return $o`, // redeclaration shadows
	}
	for _, src := range good {
		if err := analyzeErr(t, src); err != nil {
			t.Errorf("Analyze(%q) failed: %v", src, err)
		}
	}
}

func findGroupPlan(t *testing.T, info *Info) *GroupPlan {
	t.Helper()
	if len(info.GroupPlans) != 1 {
		t.Fatalf("%d group plans", len(info.GroupPlans))
	}
	for _, p := range info.GroupPlans {
		return p
	}
	return nil
}

func TestUsageCountOnly(t *testing.T) {
	m, info := analyze(t, `
		for $o in (1, 2)
		group by $k := $o mod 2
		return { "k": $k, "n": count($o) }`)
	plan := findGroupPlan(t, info)
	if plan.Usage["o"] != UsageCountOnly {
		t.Errorf("usage[o] = %v, want UsageCountOnly", plan.Usage["o"])
	}
	// the count($o) node must have been rewritten to the synthetic var
	var found bool
	collect := map[string]*useInfo{"o" + CountMarkerSuffix: {}}
	collectUses(m.Body, collect)
	if collect["o"+CountMarkerSuffix].plainUses > 0 {
		found = true
	}
	if !found {
		t.Error("count($o) was not rewritten to the synthetic count variable")
	}
}

func TestUsageMaterialize(t *testing.T) {
	_, info := analyze(t, `
		for $o in (1, 2)
		group by $k := $o mod 2
		return { "k": $k, "n": count($o), "all": [ $o ] }`)
	plan := findGroupPlan(t, info)
	if plan.Usage["o"] != UsageMaterialize {
		t.Errorf("usage[o] = %v, want UsageMaterialize (plain use present)", plan.Usage["o"])
	}
}

func TestUsageUnused(t *testing.T) {
	_, info := analyze(t, `
		for $o in (1, 2)
		let $tag := "t"
		group by $k := $o mod 2
		return { "k": $k, "n": count($o) }`)
	plan := findGroupPlan(t, info)
	if plan.Usage["tag"] != UsageUnused {
		t.Errorf("usage[tag] = %v, want UsageUnused", plan.Usage["tag"])
	}
	if plan.Usage["o"] != UsageCountOnly {
		t.Errorf("usage[o] = %v, want UsageCountOnly", plan.Usage["o"])
	}
}

func TestUsageCountInLaterClause(t *testing.T) {
	_, info := analyze(t, `
		for $o in (1, 2)
		group by $k := $o mod 2
		order by count($o)
		return $k`)
	plan := findGroupPlan(t, info)
	if plan.Usage["o"] != UsageCountOnly {
		t.Errorf("usage[o] = %v, want UsageCountOnly (count in order-by)", plan.Usage["o"])
	}
}

func TestGroupByUnboundKeyFails(t *testing.T) {
	if err := analyzeErr(t, `for $o in (1) group by $zzz return 1`); err == nil {
		t.Error("grouping by unbound variable should fail")
	}
}

func TestPositionalVarCollision(t *testing.T) {
	if err := analyzeErr(t, `for $x at $x in (1) return $x`); err == nil {
		t.Error("positional variable colliding with for variable should fail")
	}
}

func TestInScopeOrderRecorded(t *testing.T) {
	_, info := analyze(t, `
		for $a in (1)
		let $b := 2
		group by $k := $a
		return count($b)`)
	plan := findGroupPlan(t, info)
	want := []string{"a", "b", "k"}
	if len(plan.InScope) != len(want) {
		t.Fatalf("InScope = %v", plan.InScope)
	}
	for i, n := range want {
		if plan.InScope[i] != n {
			t.Errorf("InScope[%d] = %s, want %s", i, plan.InScope[i], n)
		}
	}
}

func TestNestedFLWORUsageIndependent(t *testing.T) {
	// The inner FLWOR's group plan must be independent of the outer's.
	_, info := analyze(t, `
		for $a in (1, 2)
		group by $k := $a
		return count(
			for $b in (1, 2)
			group by $j := $b
			return ($j, [ $b ])
		)`)
	if len(info.GroupPlans) != 2 {
		t.Fatalf("%d group plans, want 2", len(info.GroupPlans))
	}
	classes := map[VarUsage]int{}
	for _, p := range info.GroupPlans {
		for _, u := range p.Usage {
			classes[u]++
		}
	}
	if classes[UsageMaterialize] == 0 {
		t.Error("inner $b (used plainly) should be materialized")
	}
}

// Package compiler performs the static phase of query compilation: it
// builds the chained static contexts of §5.3 of the paper, verifies that
// every variable reference is in scope and every function call resolves
// with a legal arity, and computes the group-by usage analysis that powers
// the paper's §4.7 optimizations (COUNT() pushdown for count-only
// non-grouping variables, dropped columns for unused ones).
//
// After checking, the annotation phase (modes.go) assigns every expression
// one of four execution modes — Local, RDD, DataFrame or Vector — the
// single static decision the runtime backends hang off. It also detects
// equi-joins (join.go), cluster-bound let clauses, aggregate pushdown
// opportunities, and — when Options.Vectorize is on — FLWOR pipelines
// eligible for the columnar local backend (vector.go). Explain (explain.go)
// renders the annotated plan for `rumble --explain` and GET /explain.
package compiler

import (
	"fmt"

	"rumble/internal/ast"
	"rumble/internal/functions"
	"rumble/internal/lexer"
)

// Error is a static error with source position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("static error at %s: %s", e.Pos, e.Msg) }

func errf(pos lexer.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// VarUsage classifies how a non-grouping variable is consumed downstream of
// a group-by clause.
type VarUsage int

// Usage classes, in decreasing order of cost: materialized as a sequence,
// consumed only through count(), or not consumed at all.
const (
	UsageMaterialize VarUsage = iota
	UsageCountOnly
	UsageUnused
)

// CountMarkerSuffix is appended to a variable name to form the synthetic
// variable that carries a pre-aggregated count. "#" cannot appear in user
// variable names, so the namespace is private to the compiler.
const CountMarkerSuffix = "#count"

// GroupPlan records, for one group-by clause, the in-scope variables before
// the clause and the usage class of every non-grouping variable.
type GroupPlan struct {
	// InScope lists the FLWOR variables bound before the clause, in
	// binding order, keys included.
	InScope []string
	// Usage maps every non-grouping in-scope variable to its usage class.
	Usage map[string]VarUsage
}

// RDDLetPlan records a leading let clause whose value the annotation phase
// proved cluster-resident: the runtime binds the variable to the value's
// RDD once per FLWOR evaluation instead of materializing it per tuple, and
// references to the variable are annotated ModeRDD (enabling aggregate
// pushdown and DataFrame heads over the binding).
type RDDLetPlan struct {
	// Uses counts downstream references to the variable (clauses after
	// the let plus the return expression).
	Uses int
	// Cache wraps the bound RDD in a spark-level cache because the
	// variable is consumed more than once: the pipeline computes once and
	// every further consumer replays it from memory.
	Cache bool
}

// Info is the static analysis result consumed by the runtime compiler.
type Info struct {
	// GroupPlans is keyed by group-by clause node.
	GroupPlans map[*ast.GroupByClause]*GroupPlan
	// Modes records the execution mode annotation of every expression
	// node, assigned bottom-up by the annotation phase.
	Modes map[ast.Expr]Mode
	// Pushdown marks aggregate calls (count, sum, ...) whose argument is
	// cluster-resident, so the aggregation runs as a cluster action and
	// only the scalar result travels back.
	Pushdown map[*ast.FunctionCall]bool
	// Joins records, per FLWOR whose leading clauses form a statically
	// detected equi-join, the plan replacing its nested-loop evaluation.
	Joins map[*ast.FLWOR]*JoinPlan
	// RDDLets marks leading let clauses whose variables bind to RDDs.
	RDDLets map[*ast.LetClause]*RDDLetPlan
	// VectorPlans marks FLWORs annotated ModeVector: pipelines the
	// columnar local backend executes batch-at-a-time.
	VectorPlans map[*ast.FLWOR]*VectorPlan
	// VectorAggs marks aggregate calls (count/sum/avg/min/max) whose
	// single argument is a vector-eligible non-grouped FLWOR: the whole
	// aggregation folds inside the columnar backend as a grand (no
	// group-by) aggregate with mergeable accumulators.
	VectorAggs map[*ast.FunctionCall]bool
	// VectorCountZero maps a "count(F) eq 0" comparison to its inner count
	// call: the emptiness test folds as an early-exit vector grand
	// aggregate (like empty(F)) instead of counting the whole scan.
	VectorCountZero map[*ast.Comparison]*ast.FunctionCall
	// VectorWorkers is the executor-pool size morsel-driven vector
	// execution will use; Explain renders it next to the mode
	// ("[Vector x4]") when greater than one.
	VectorWorkers int
}

// ModeOf returns the annotated execution mode of e. Unannotated nodes (and
// nil) are ModeLocal, the degradation default.
func (i *Info) ModeOf(e ast.Expr) Mode { return i.Modes[e] }

// Options configures the static analysis.
type Options struct {
	// Cluster reports whether a cluster context is available to the
	// runtime. Without it every expression is annotated ModeLocal.
	Cluster bool
	// NoJoin disables equi-join detection, forcing nested-loop evaluation
	// of nested for clauses — the escape hatch for comparison benchmarks.
	NoJoin bool
	// Vectorize enables the columnar local backend: eligible FLWOR
	// pipelines (scan → filter → project → group/aggregate) are annotated
	// ModeVector instead of Local or DataFrame.
	Vectorize bool
	// Executors is the engine's executor-pool size; vector plans execute
	// morsel-driven on that many workers and Explain renders the count.
	Executors int
}

// specialFunctions are implemented by the runtime rather than the local
// library: data sources and the aggregations with RDD pushdown.
var specialFunctions = map[string][2]int{
	"json-file":   {1, 2},
	"parallelize": {1, 2},
	"collection":  {1, 1},
}

// scope is the chained static context: each frame adds variables.
type scope struct {
	parent *scope
	vars   map[string]bool
}

func (s *scope) child() *scope {
	return &scope{parent: s, vars: map[string]bool{}}
}

func (s *scope) declare(name string) { s.vars[name] = true }

func (s *scope) lookup(name string) bool {
	for c := s; c != nil; c = c.parent {
		if c.vars[name] {
			return true
		}
	}
	return false
}

type checker struct {
	info      *Info
	functions map[string][2]int // name -> [min,max] args (max -1 variadic)
	cluster   bool
	noJoin    bool
	vectorize bool
	modeEnv   *modeScope // variable→mode bindings of the annotation phase
}

// Analyze checks the module statically and returns the analysis info. It
// also rewrites count($v) calls over count-only grouped variables into
// references to the synthetic pre-aggregated variable, then runs the
// execution-mode annotation phase over the rewritten tree.
func Analyze(m *ast.Module, opts Options) (*Info, error) {
	c := &checker{
		info: &Info{
			GroupPlans:      map[*ast.GroupByClause]*GroupPlan{},
			Modes:           map[ast.Expr]Mode{},
			Pushdown:        map[*ast.FunctionCall]bool{},
			Joins:           map[*ast.FLWOR]*JoinPlan{},
			RDDLets:         map[*ast.LetClause]*RDDLetPlan{},
			VectorPlans:     map[*ast.FLWOR]*VectorPlan{},
			VectorAggs:      map[*ast.FunctionCall]bool{},
			VectorCountZero: map[*ast.Comparison]*ast.FunctionCall{},
			VectorWorkers:   opts.Executors,
		},
		functions: map[string][2]int{},
		cluster:   opts.Cluster,
		noJoin:    opts.NoJoin,
		vectorize: opts.Vectorize,
	}
	for _, fd := range m.Functions {
		if _, dup := c.functions[fd.Name]; dup {
			return nil, errf(fd.Pos, "function %s declared twice", fd.Name)
		}
		c.functions[fd.Name] = [2]int{len(fd.Params), len(fd.Params)}
	}
	globals := &scope{vars: map[string]bool{}}
	for _, vd := range m.Vars {
		if err := c.checkExpr(vd.Init, globals); err != nil {
			return nil, err
		}
		globals.declare(vd.Name)
	}
	for _, fd := range m.Functions {
		fnScope := globals.child()
		for _, p := range fd.Params {
			fnScope.declare(p)
		}
		if err := c.checkExpr(fd.Body, fnScope); err != nil {
			return nil, err
		}
	}
	if err := c.checkExpr(m.Body, globals); err != nil {
		return nil, err
	}
	c.annotateModule(m)
	return c.info, nil
}

func (c *checker) checkExpr(e ast.Expr, sc *scope) error {
	switch n := e.(type) {
	case nil:
		return nil
	case *ast.Literal, *ast.ContextItem:
		return nil
	case *ast.VarRef:
		if !sc.lookup(n.Name) {
			return errf(n.Pos(), "variable $%s is not in scope", n.Name)
		}
		return nil
	case *ast.CommaExpr:
		for _, ch := range n.Exprs {
			if err := c.checkExpr(ch, sc); err != nil {
				return err
			}
		}
		return nil
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			if err := c.checkExpr(n.Keys[i], sc); err != nil {
				return err
			}
			if err := c.checkExpr(n.Values[i], sc); err != nil {
				return err
			}
		}
		return nil
	case *ast.ArrayConstructor:
		return c.checkExpr(n.Body, sc)
	case *ast.Unary:
		return c.checkExpr(n.Operand, sc)
	case *ast.Arith:
		return c.checkTwo(n.L, n.R, sc)
	case *ast.RangeExpr:
		return c.checkTwo(n.L, n.R, sc)
	case *ast.ConcatExpr:
		return c.checkTwo(n.L, n.R, sc)
	case *ast.Comparison:
		return c.checkTwo(n.L, n.R, sc)
	case *ast.Logic:
		return c.checkTwo(n.L, n.R, sc)
	case *ast.Predicate:
		if err := c.checkExpr(n.Input, sc); err != nil {
			return err
		}
		return c.checkExpr(n.Pred, sc)
	case *ast.SimpleMap:
		if err := c.checkExpr(n.Input, sc); err != nil {
			return err
		}
		return c.checkExpr(n.Mapping, sc)
	case *ast.ObjectLookup:
		if err := c.checkExpr(n.Input, sc); err != nil {
			return err
		}
		return c.checkExpr(n.Key, sc)
	case *ast.ArrayLookup:
		if err := c.checkExpr(n.Input, sc); err != nil {
			return err
		}
		return c.checkExpr(n.Index, sc)
	case *ast.ArrayUnbox:
		return c.checkExpr(n.Input, sc)
	case *ast.FunctionCall:
		if err := c.checkCallTarget(n); err != nil {
			return err
		}
		for _, a := range n.Args {
			if err := c.checkExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	case *ast.IfExpr:
		if err := c.checkExpr(n.Cond, sc); err != nil {
			return err
		}
		if err := c.checkExpr(n.Then, sc); err != nil {
			return err
		}
		return c.checkExpr(n.Else, sc)
	case *ast.SwitchExpr:
		if err := c.checkExpr(n.Input, sc); err != nil {
			return err
		}
		for _, cs := range n.Cases {
			for _, v := range cs.Values {
				if err := c.checkExpr(v, sc); err != nil {
					return err
				}
			}
			if err := c.checkExpr(cs.Result, sc); err != nil {
				return err
			}
		}
		return c.checkExpr(n.Default, sc)
	case *ast.TryCatch:
		if err := c.checkExpr(n.Try, sc); err != nil {
			return err
		}
		catchScope := sc.child()
		catchScope.declare("err:description")
		return c.checkExpr(n.Catch, catchScope)
	case *ast.Quantified:
		qs := sc.child()
		for _, b := range n.Bindings {
			if err := c.checkExpr(b.In, qs); err != nil {
				return err
			}
			qs.declare(b.Var)
		}
		return c.checkExpr(n.Satisfies, qs)
	case *ast.InstanceOf:
		return c.checkExpr(n.Input, sc)
	case *ast.TreatAs:
		return c.checkExpr(n.Input, sc)
	case *ast.CastableAs:
		return c.checkExpr(n.Input, sc)
	case *ast.CastAs:
		return c.checkExpr(n.Input, sc)
	case *ast.FLWOR:
		return c.checkFLWOR(n, sc)
	default:
		return fmt.Errorf("static error: unknown expression node %T", e)
	}
}

func (c *checker) checkTwo(l, r ast.Expr, sc *scope) error {
	if err := c.checkExpr(l, sc); err != nil {
		return err
	}
	return c.checkExpr(r, sc)
}

func (c *checker) checkCallTarget(n *ast.FunctionCall) error {
	if n.Name == "#count-of" {
		// Synthetic call produced by the group-by count rewrite.
		return nil
	}
	if bounds, ok := c.functions[n.Name]; ok {
		if len(n.Args) != bounds[0] {
			return errf(n.Pos(), "function %s expects %d arguments, got %d", n.Name, bounds[0], len(n.Args))
		}
		return nil
	}
	if bounds, ok := specialFunctions[n.Name]; ok {
		if len(n.Args) < bounds[0] || len(n.Args) > bounds[1] {
			return errf(n.Pos(), "function %s expects %d to %d arguments, got %d", n.Name, bounds[0], bounds[1], len(n.Args))
		}
		return nil
	}
	if f, ok := functions.Lookup(n.Name); ok {
		if len(n.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(n.Args) > f.MaxArgs) {
			return errf(n.Pos(), "function %s called with %d arguments", n.Name, len(n.Args))
		}
		return nil
	}
	return errf(n.Pos(), "unknown function %s/%d", n.Name, len(n.Args))
}

// checkFLWOR walks the clause chain with the variable scoping rules of
// JSONiq and builds the group-by plans.
func (c *checker) checkFLWOR(f *ast.FLWOR, outer *scope) error {
	sc := outer.child()
	var bound []string // FLWOR variables in binding order
	declare := func(name string) {
		sc.declare(name)
		for _, b := range bound {
			if b == name {
				return // redeclaration shadows; keep first position
			}
		}
		bound = append(bound, name)
	}
	for ci, cl := range f.Clauses {
		switch n := cl.(type) {
		case *ast.ForClause:
			if err := c.checkExpr(n.In, sc); err != nil {
				return err
			}
			declare(n.Var)
			if n.PosVar != "" {
				if n.PosVar == n.Var {
					return errf(n.Pos(), "positional variable $%s collides with the for variable", n.PosVar)
				}
				declare(n.PosVar)
			}
		case *ast.LetClause:
			if err := c.checkExpr(n.Value, sc); err != nil {
				return err
			}
			declare(n.Var)
		case *ast.WhereClause:
			if err := c.checkExpr(n.Cond, sc); err != nil {
				return err
			}
		case *ast.CountClause:
			declare(n.Var)
		case *ast.OrderByClause:
			for _, spec := range n.Specs {
				if err := c.checkExpr(spec.Expr, sc); err != nil {
					return err
				}
			}
		case *ast.GroupByClause:
			plan := &GroupPlan{Usage: map[string]VarUsage{}}
			keySet := map[string]bool{}
			for _, spec := range n.Specs {
				if spec.Expr != nil {
					if err := c.checkExpr(spec.Expr, sc); err != nil {
						return err
					}
					declare(spec.Var)
				} else if !sc.lookup(spec.Var) {
					return errf(n.Pos(), "group by: variable $%s is not in scope", spec.Var)
				}
				keySet[spec.Var] = true
			}
			plan.InScope = append(plan.InScope, bound...)
			// Usage analysis over everything downstream of this clause.
			uses := map[string]*useInfo{}
			for _, name := range bound {
				if !keySet[name] {
					uses[name] = &useInfo{}
				}
			}
			for _, rest := range f.Clauses[ci+1:] {
				collectClauseUses(rest, uses)
			}
			collectUses(f.Return, uses)
			for name, u := range uses {
				switch {
				case u.plainUses == 0 && u.countCalls == nil:
					plan.Usage[name] = UsageUnused
				case u.plainUses == 0 && len(u.countCalls) > 0:
					plan.Usage[name] = UsageCountOnly
					for _, call := range u.countCalls {
						// Rewrite count($v) into $v#count, pre-aggregated
						// by the group-by clause itself.
						rewriteToCountVar(call, name)
					}
					declare(name + CountMarkerSuffix)
				default:
					plan.Usage[name] = UsageMaterialize
				}
			}
			c.info.GroupPlans[n] = plan
		default:
			return fmt.Errorf("static error: unknown clause node %T", cl)
		}
	}
	return c.checkExpr(f.Return, sc)
}

// useInfo accumulates how a variable is referenced downstream.
type useInfo struct {
	plainUses  int
	countCalls []*ast.FunctionCall
}

// countVarUses counts downstream references to name across the given
// clauses and the return expression; plain references and count($v) calls
// each count as one consumption. Shadowed references may overcount, which
// at worst caches an RDD that is consumed once.
func countVarUses(name string, clauses []ast.Clause, ret ast.Expr) int {
	uses := map[string]*useInfo{name: {}}
	for _, cl := range clauses {
		collectClauseUses(cl, uses)
	}
	collectUses(ret, uses)
	u := uses[name]
	return u.plainUses + len(u.countCalls)
}

// collectClauseUses gathers variable references in one clause.
func collectClauseUses(cl ast.Clause, uses map[string]*useInfo) {
	switch n := cl.(type) {
	case *ast.ForClause:
		collectUses(n.In, uses)
	case *ast.LetClause:
		collectUses(n.Value, uses)
	case *ast.WhereClause:
		collectUses(n.Cond, uses)
	case *ast.GroupByClause:
		for _, spec := range n.Specs {
			if spec.Expr != nil {
				collectUses(spec.Expr, uses)
			} else if u, ok := uses[spec.Var]; ok {
				// Re-grouping by the variable forces materialization.
				u.plainUses++
			}
		}
	case *ast.OrderByClause:
		for _, spec := range n.Specs {
			collectUses(spec.Expr, uses)
		}
	case *ast.CountClause:
	}
}

// collectUses walks an expression, recording plain references and
// count($v) calls for the tracked variables.
func collectUses(e ast.Expr, uses map[string]*useInfo) {
	switch n := e.(type) {
	case nil:
		return
	case *ast.VarRef:
		if u, ok := uses[n.Name]; ok {
			u.plainUses++
		}
	case *ast.FunctionCall:
		if n.Name == "count" && len(n.Args) == 1 {
			if vr, ok := n.Args[0].(*ast.VarRef); ok {
				if u, tracked := uses[vr.Name]; tracked {
					u.countCalls = append(u.countCalls, n)
					return
				}
			}
		}
		for _, a := range n.Args {
			collectUses(a, uses)
		}
	case *ast.CommaExpr:
		for _, ch := range n.Exprs {
			collectUses(ch, uses)
		}
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			collectUses(n.Keys[i], uses)
			collectUses(n.Values[i], uses)
		}
	case *ast.ArrayConstructor:
		collectUses(n.Body, uses)
	case *ast.Unary:
		collectUses(n.Operand, uses)
	case *ast.Arith:
		collectUses(n.L, uses)
		collectUses(n.R, uses)
	case *ast.RangeExpr:
		collectUses(n.L, uses)
		collectUses(n.R, uses)
	case *ast.ConcatExpr:
		collectUses(n.L, uses)
		collectUses(n.R, uses)
	case *ast.Comparison:
		collectUses(n.L, uses)
		collectUses(n.R, uses)
	case *ast.Logic:
		collectUses(n.L, uses)
		collectUses(n.R, uses)
	case *ast.Predicate:
		collectUses(n.Input, uses)
		collectUses(n.Pred, uses)
	case *ast.SimpleMap:
		collectUses(n.Input, uses)
		collectUses(n.Mapping, uses)
	case *ast.ObjectLookup:
		collectUses(n.Input, uses)
		collectUses(n.Key, uses)
	case *ast.ArrayLookup:
		collectUses(n.Input, uses)
		collectUses(n.Index, uses)
	case *ast.ArrayUnbox:
		collectUses(n.Input, uses)
	case *ast.IfExpr:
		collectUses(n.Cond, uses)
		collectUses(n.Then, uses)
		collectUses(n.Else, uses)
	case *ast.SwitchExpr:
		collectUses(n.Input, uses)
		for _, cs := range n.Cases {
			for _, v := range cs.Values {
				collectUses(v, uses)
			}
			collectUses(cs.Result, uses)
		}
		collectUses(n.Default, uses)
	case *ast.TryCatch:
		collectUses(n.Try, uses)
		collectUses(n.Catch, uses)
	case *ast.Quantified:
		for _, b := range n.Bindings {
			collectUses(b.In, uses)
		}
		collectUses(n.Satisfies, uses)
	case *ast.InstanceOf:
		collectUses(n.Input, uses)
	case *ast.TreatAs:
		collectUses(n.Input, uses)
	case *ast.CastableAs:
		collectUses(n.Input, uses)
	case *ast.CastAs:
		collectUses(n.Input, uses)
	case *ast.FLWOR:
		for _, cl := range n.Clauses {
			collectClauseUses(cl, uses)
		}
		collectUses(n.Return, uses)
	}
}

// rewriteToCountVar mutates a count($v) call node in place into a reference
// to the synthetic $v#count variable. The node stays a FunctionCall
// structurally; the runtime compiler recognizes the rewritten shape.
func rewriteToCountVar(call *ast.FunctionCall, varName string) {
	call.Name = "#count-of"
	call.Args = []ast.Expr{ast.NewVarRef(call.Pos(), varName+CountMarkerSuffix)}
}

package compiler

import (
	"strings"

	"rumble/internal/ast"
	"rumble/internal/item"
)

// VectorPlan marks a FLWOR the annotation phase proved eligible for the
// columnar local backend (ModeVector). Eligibility is a pure shape check;
// the runtime compiles the same clauses into batch operators and falls back
// to the tuple pipeline if anything unexpected surfaces at run time, so the
// plan carries no state beyond what Explain wants to show.
type VectorPlan struct {
	// Grouped reports whether the pipeline ends in a group-by, i.e. the
	// vector run aggregates instead of projecting row-by-row.
	Grouped bool
}

// VectorAggregates are the aggregation builtins the vector backend folds
// with columnar accumulators after a group-by.
var VectorAggregates = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// VectorScalarFunctions are the scalar builtins the vector backend
// evaluates per row inside filters and projections. All are single-valued
// over single-valued (or empty) arguments.
var VectorScalarFunctions = map[string]bool{
	"contains": true, "starts-with": true, "ends-with": true,
	"upper-case": true, "lower-case": true, "string": true,
	"string-length": true,
}

// detectVector decides whether f runs on the columnar local backend: an
// unbroken pipeline of
//
//	[cluster-bound lets] for $x in <src> (let|where)* [group by] return <e>
//
// where every let value, where condition, group key and the return
// expression are vector-compilable scalars (literals, variable references,
// object-field lookups, arithmetic, value comparisons, and/or logic, object
// and array constructors, and a whitelist of scalar builtins), and — after
// a group-by — non-key variables are consumed only through aggregates.
//
// Cluster-bound lets stay hoisted exactly as in the tuple plan: the vector
// scan begins after them, streaming the bound RDD through the driver. A
// positional variable, "allowing empty", order-by, count clause, nested
// for, or any non-vectorizable expression declines eligibility and the
// FLWOR keeps its Local or DataFrame mode.
func (c *checker) detectVector(f *ast.FLWOR) *VectorPlan {
	clauses := f.Clauses
	for len(clauses) > 0 {
		lc, ok := clauses[0].(*ast.LetClause)
		if !ok || c.info.RDDLets[lc] == nil {
			break
		}
		clauses = clauses[1:]
	}
	if len(clauses) == 0 {
		return nil
	}
	head, ok := clauses[0].(*ast.ForClause)
	if !ok || head.AllowEmpty || head.PosVar != "" {
		return nil
	}
	bound := map[string]bool{head.Var: true}
	var group *ast.GroupByClause
	rest := clauses[1:]
	for i, cl := range rest {
		switch n := cl.(type) {
		case *ast.LetClause:
			if !c.vectorizableExpr(n.Value) {
				return nil
			}
			bound[n.Var] = true
		case *ast.WhereClause:
			if !c.vectorizableExpr(n.Cond) {
				return nil
			}
		case *ast.GroupByClause:
			if i != len(rest)-1 {
				return nil // group-by must be the last clause
			}
			group = n
		default:
			return nil
		}
	}
	if group == nil {
		if !c.vectorizableExpr(f.Return) {
			return nil
		}
		return &VectorPlan{}
	}
	// Group keys evaluate left to right, each binding its variable for the
	// specs after it (mirroring the tuple path's progressive extension).
	keys := map[string]bool{}
	for _, spec := range group.Specs {
		if spec.Expr != nil {
			if !c.vectorizableExpr(spec.Expr) {
				return nil
			}
		} else if !bound[spec.Var] {
			return nil
		}
		keys[spec.Var] = true
		bound[spec.Var] = true
	}
	if !c.vectorizableGroupReturn(f.Return, keys, bound) {
		return nil
	}
	return &VectorPlan{Grouped: true}
}

// vectorizableExpr reports whether e compiles to a single-valued column
// expression. Every variable reference is acceptable here: pipeline
// bindings become columns, and free variables (globals, outer FLWOR
// bindings) become per-evaluation constants — the runtime falls back to
// the tuple pipeline if such a binding turns out to be a multi-item
// sequence.
func (c *checker) vectorizableExpr(e ast.Expr) bool {
	return c.vectorizable(e, func(string) bool { return true }, nil)
}

// vectorizableGroupReturn checks the return expression of a grouped
// pipeline: key variables and free variables behave as in
// vectorizableExpr, while non-key pipeline variables may be consumed only
// through aggregates the backend can fold — agg($v), agg($v.path...), or
// the #count-of($v#count) call the count rewrite produced.
func (c *checker) vectorizableGroupReturn(e ast.Expr, keys, bound map[string]bool) bool {
	varOK := func(name string) bool {
		// A bound non-key variable holds the per-group concatenation; the
		// backend only materializes it through aggregates.
		return keys[name] || !bound[name]
	}
	aggOK := func(n *ast.FunctionCall) (handled, ok bool) {
		if base, found := CountOfVar(n); found {
			return true, bound[base] && !keys[base]
		}
		if _, isUDF := c.functions[n.Name]; !isUDF && VectorAggregates[n.Name] && len(n.Args) == 1 {
			base, found := aggArgRoot(n.Args[0])
			return true, found && bound[base] && !keys[base]
		}
		return false, false
	}
	return c.vectorizable(e, varOK, aggOK)
}

// vectorizable is the shared walker behind both checks above: the scalar
// expression grammar is identical, only the treatment of variable
// references (varOK) and — after a group-by — aggregate calls (aggCall,
// consulted before the scalar-builtin whitelist; nil outside groups)
// differs between the pipeline body and a grouped return.
func (c *checker) vectorizable(e ast.Expr, varOK func(string) bool, aggCall func(*ast.FunctionCall) (handled, ok bool)) bool {
	rec := func(ch ast.Expr) bool { return c.vectorizable(ch, varOK, aggCall) }
	switch n := e.(type) {
	case *ast.Literal:
		return true
	case *ast.VarRef:
		return varOK(n.Name)
	case *ast.ObjectLookup:
		lit, ok := n.Key.(*ast.Literal)
		if !ok || lit.Value.Kind() != item.KindString {
			return false
		}
		return rec(n.Input)
	case *ast.Comparison:
		return !n.General && rec(n.L) && rec(n.R)
	case *ast.Arith:
		return rec(n.L) && rec(n.R)
	case *ast.Logic:
		return rec(n.L) && rec(n.R)
	case *ast.Unary:
		return rec(n.Operand)
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			lit, ok := n.Keys[i].(*ast.Literal)
			if !ok || lit.Value.Kind() != item.KindString {
				return false
			}
			if !rec(n.Values[i]) {
				return false
			}
		}
		return true
	case *ast.ArrayConstructor:
		return n.Body == nil || rec(n.Body)
	case *ast.FunctionCall:
		if aggCall != nil {
			if handled, ok := aggCall(n); handled {
				return ok
			}
		}
		if _, isUDF := c.functions[n.Name]; isUDF {
			return false
		}
		if !VectorScalarFunctions[n.Name] {
			return false
		}
		for _, a := range n.Args {
			if !rec(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// CountOfVar recognizes the #count-of($v#count) call the group-by count
// rewrite produces and returns the base variable name. The runtime's
// vector compiler resolves the same shape to a count accumulator, so the
// recognizer is shared rather than duplicated.
func CountOfVar(n *ast.FunctionCall) (string, bool) {
	if n.Name != "#count-of" || len(n.Args) != 1 {
		return "", false
	}
	vr, ok := n.Args[0].(*ast.VarRef)
	if !ok || !strings.HasSuffix(vr.Name, CountMarkerSuffix) {
		return "", false
	}
	return strings.TrimSuffix(vr.Name, CountMarkerSuffix), true
}

// aggArgRoot accepts an aggregate argument of the form $v or a chain of
// literal-key object lookups rooted at $v, returning the root variable.
func aggArgRoot(e ast.Expr) (string, bool) {
	for {
		switch n := e.(type) {
		case *ast.VarRef:
			return n.Name, true
		case *ast.ObjectLookup:
			lit, ok := n.Key.(*ast.Literal)
			if !ok || lit.Value.Kind() != item.KindString {
				return "", false
			}
			e = n.Input
		default:
			return "", false
		}
	}
}

package compiler

import (
	"sort"
	"strings"

	"rumble/internal/ast"
	"rumble/internal/item"
)

// VectorPlan marks a FLWOR the annotation phase proved eligible for the
// columnar local backend (ModeVector). Eligibility is a pure shape check;
// the runtime compiles the same clauses into batch operators and falls back
// to the tuple pipeline if anything unexpected surfaces at run time, so the
// plan carries no state beyond what Explain wants to show.
type VectorPlan struct {
	// Grouped reports whether the pipeline ends in a group-by, i.e. the
	// vector run aggregates instead of projecting row-by-row.
	Grouped bool
	// OrderBy is the order-by clause the backend runs as a columnar sort
	// (each morsel worker sorts a run, the coordinator k-way-merges them);
	// nil when the pipeline has none.
	OrderBy *ast.OrderByClause
	// TopK, when positive, bounds the sort: the clause tail was
	// "count $c where $c le/lt K" (or the flipped ge/gt form), so the
	// backend keeps a bounded top-k per morsel and never materializes the
	// tail. The count variable itself is fused away.
	TopK int64
	// Join reports that the FLWOR's detected equi-join (Info.Joins) runs as
	// a vector hash join: the right side builds a pre-sized hash table, the
	// left side probes it morsel by morsel.
	Join bool
	// Positional reports that the pipeline binds scan positions — a
	// positional "at $p" variable or a pre-filter count clause — derived
	// from morsel scan indices.
	Positional bool
	// Prune is the zone-map pushdown: the longest prefix of and-conjuncts
	// from the leading where run right after the head for clause that are
	// value comparisons between a literal-key field lookup on the scan
	// variable and an Int/Double/Dec/Str literal. A segment-backed scan may
	// skip a whole segment when some conjunct is provably unsatisfiable
	// there while every earlier conjunct is provably error-free — the
	// prefix shape plus the backend's per-row short-circuit of "and" make
	// that exactly result- and error-preserving. Never set on join or
	// positional pipelines (skipping would renumber scan positions).
	Prune []PrunePred
	// Columns is the column-projection pushdown: the sorted set of
	// top-level fields the pipeline reads off the scan variable through
	// literal-key lookups ($x.field...). When AllColumns is false, every
	// consumption of the scan variable goes through these fields (or a
	// count aggregate, which needs only row presence), so a segment-backed
	// scan decodes just these columns' lanes and skips every other lane's
	// bytes. Meaningful only when AllColumns is false; nil on join plans.
	Columns []string
	// AllColumns reports that some expression consumes the scan variable
	// whole — a bare $x in a let/return, a join side, a group key binding
	// $x, an aggregate folding $x itself — so the scan must materialize
	// full rows and the lane-native path does not apply.
	AllColumns bool
}

// PrunePred is one pushed-down conjunct of VectorPlan.Prune.
type PrunePred struct {
	Field string    // top-level field looked up on the scan variable
	Op    string    // eq, ne, lt, le, gt, ge — normalized to field-on-left
	Lit   item.Item // Int, Double, Dec or Str literal
}

// VectorAggregates are the aggregation builtins the vector backend folds
// with columnar accumulators after a group-by.
var VectorAggregates = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// VectorGrandAggregates are the builtins the backend folds as grand (no
// group-by) aggregates over a vector pipeline. exists and empty fold as
// early-exit counts: the scan cancels as soon as the answer is decided.
var VectorGrandAggregates = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"exists": true, "empty": true,
}

// VectorScalarFunctions are the scalar builtins the vector backend
// evaluates per row inside filters and projections. All are single-valued
// over single-valued (or empty) arguments.
var VectorScalarFunctions = map[string]bool{
	"contains": true, "starts-with": true, "ends-with": true,
	"upper-case": true, "lower-case": true, "string": true,
	"string-length": true,
}

// detectVector decides whether f runs on the columnar local backend: an
// unbroken pipeline of
//
//	[cluster-bound lets] for $x [at $p] in <src> (let|where|count)*
//	    [order by ... [count $c where $c le K]] | [group by] return <e>
//
// or a detected equi-join (Info.Joins) followed by the same tail, where
// every let value, where condition, sort key, join key and the return
// expression are vector-compilable scalars (literals, variable references,
// object-field lookups, arithmetic, value comparisons, and/or logic, object
// and array constructors, and a whitelist of scalar builtins), and — after
// a group-by — non-key variables are consumed only through aggregates.
//
// Positional variables and count clauses bind scan positions, so a count
// is eligible only while no preceding filter (or join) has changed the row
// count. An order-by whose tail is "count $c where $c le K" (the count
// variable unused elsewhere) fuses into a bounded top-k. "allowing empty",
// a nested for, order-by before group-by, or any non-vectorizable
// expression declines eligibility and the FLWOR keeps its Local or
// DataFrame mode.
//
// Cluster-bound lets stay hoisted exactly as in the tuple plan: the vector
// scan begins after them, streaming the bound RDD through the driver.
func (c *checker) detectVector(f *ast.FLWOR) *VectorPlan {
	clauses := f.Clauses
	for len(clauses) > 0 {
		lc, ok := clauses[0].(*ast.LetClause)
		if !ok || c.info.RDDLets[lc] == nil {
			break
		}
		clauses = clauses[1:]
	}
	if len(clauses) == 0 {
		return nil
	}
	vp := &VectorPlan{}
	bound := map[string]bool{}
	filtered := false
	var rest []ast.Clause
	var pruneHead *ast.ForClause
	if jp := c.info.Joins[f]; jp != nil {
		// detectJoin consumed f.Clauses[0:3] (for/for/where); it only fires
		// on a leading for clause, so no cluster-bound lets were peeled.
		for _, keys := range [][]ast.Expr{jp.LeftKeys, jp.RightKeys, jp.Residual} {
			for _, k := range keys {
				if !c.vectorizableExpr(k) {
					return nil
				}
			}
		}
		vp.Join = true
		bound[jp.Left.Var] = true
		bound[jp.Right.Var] = true
		filtered = true // join output positions are not scan positions
		rest = clauses[3:]
	} else {
		head, ok := clauses[0].(*ast.ForClause)
		if !ok || head.AllowEmpty {
			return nil
		}
		bound[head.Var] = true
		if head.PosVar != "" {
			bound[head.PosVar] = true
			vp.Positional = true
		}
		rest = clauses[1:]
		pruneHead = head
	}
	var group *ast.GroupByClause
	for i := 0; i < len(rest); i++ {
		switch n := rest[i].(type) {
		case *ast.LetClause:
			if !c.vectorizableExpr(n.Value) {
				return nil
			}
			bound[n.Var] = true
		case *ast.WhereClause:
			if !c.vectorizableExpr(n.Cond) {
				return nil
			}
			filtered = true
		case *ast.CountClause:
			if filtered {
				return nil // count no longer equals the scan position
			}
			bound[n.Var] = true
			vp.Positional = true
		case *ast.GroupByClause:
			if i != len(rest)-1 {
				return nil // group-by must be the last clause
			}
			group = n
		case *ast.OrderByClause:
			for _, spec := range n.Specs {
				if spec.Expr == nil || !c.vectorizableExpr(spec.Expr) {
					return nil
				}
			}
			// The sort must end the pipeline, except for the fused top-k
			// tail: "count $c where $c le K" with $c unused in the return.
			tail := rest[i+1:]
			switch len(tail) {
			case 0:
			case 2:
				cc, okC := tail[0].(*ast.CountClause)
				wc, okW := tail[1].(*ast.WhereClause)
				if !okC || !okW {
					return nil
				}
				k, ok := topKBound(wc.Cond, cc.Var)
				if !ok || k < 1 || exprUsesVar(f.Return, cc.Var) {
					return nil
				}
				vp.TopK = k
			default:
				return nil
			}
			vp.OrderBy = n
			i = len(rest) // tail consumed
		default:
			return nil
		}
	}
	if pruneHead != nil && !vp.Positional {
		vp.Prune = prunePredicates(pruneHead.Var, rest)
	}
	if group == nil {
		if !c.vectorizableExpr(f.Return) {
			return nil
		}
		deriveScanColumns(vp, pruneHead, rest, f.Return)
		return vp
	}
	// Group keys evaluate left to right, each binding its variable for the
	// specs after it (mirroring the tuple path's progressive extension).
	keys := map[string]bool{}
	for _, spec := range group.Specs {
		if spec.Expr != nil {
			if !c.vectorizableExpr(spec.Expr) {
				return nil
			}
		} else if !bound[spec.Var] {
			return nil
		}
		keys[spec.Var] = true
		bound[spec.Var] = true
	}
	if !c.vectorizableGroupReturn(f.Return, keys, bound) {
		return nil
	}
	vp.Grouped = true
	deriveScanColumns(vp, pruneHead, rest, f.Return)
	return vp
}

// deriveScanColumns fills VectorPlan.Columns/AllColumns for a non-join
// pipeline by walking every expression that can observe the scan variable:
// let values, where conditions, sort keys, group key expressions and the
// return. If every consumption goes through a literal-key field lookup (or
// a count aggregate, which needs only row presence), the sorted field set
// becomes the projection a segment scan pushes down; any whole-row
// consumption — a bare $x, a group key binding $x itself — flips
// AllColumns instead. Join pipelines always materialize full rows on both
// sides, so they are AllColumns unconditionally.
func deriveScanColumns(vp *VectorPlan, head *ast.ForClause, rest []ast.Clause, ret ast.Expr) {
	if head == nil {
		vp.AllColumns = true
		return
	}
	cols := map[string]bool{}
	ok := true
	visit := func(e ast.Expr) {
		if ok && e != nil && !scanColumns(e, head.Var, cols) {
			ok = false
		}
	}
	for _, cl := range rest {
		switch n := cl.(type) {
		case *ast.LetClause:
			visit(n.Value)
		case *ast.WhereClause:
			visit(n.Cond)
		case *ast.CountClause:
			// binds a scan position; reads nothing off the scan variable
		case *ast.OrderByClause:
			for _, spec := range n.Specs {
				visit(spec.Expr)
			}
		case *ast.GroupByClause:
			for _, spec := range n.Specs {
				if spec.Expr != nil {
					visit(spec.Expr)
				} else if spec.Var == head.Var {
					ok = false // grouping on the scan variable keys whole rows
				}
			}
		}
	}
	visit(ret)
	if !ok {
		vp.AllColumns = true
		return
	}
	names := make([]string, 0, len(cols))
	for f := range cols {
		names = append(names, f)
	}
	sort.Strings(names)
	vp.Columns = names
}

// scanColumns walks e collecting the top-level fields read off scanVar
// through literal-key lookups into cols. It reports false as soon as any
// subexpression consumes the variable whole (a bare reference, a
// non-literal key on it) or falls outside the vector grammar — the caller
// then marks the plan AllColumns. Count aggregates over the variable are
// exempt: counting needs row presence, never row contents.
func scanColumns(e ast.Expr, scanVar string, cols map[string]bool) bool {
	rec := func(ch ast.Expr) bool { return scanColumns(ch, scanVar, cols) }
	switch n := e.(type) {
	case *ast.Literal:
		return true
	case *ast.VarRef:
		return n.Name != scanVar
	case *ast.ObjectLookup:
		if vr, ok := n.Input.(*ast.VarRef); ok && vr.Name == scanVar {
			lit, ok := n.Key.(*ast.Literal)
			if !ok || lit.Value.Kind() != item.KindString {
				return false
			}
			cols[string(lit.Value.(item.Str))] = true
			return true
		}
		return rec(n.Input) && rec(n.Key)
	case *ast.Comparison:
		return rec(n.L) && rec(n.R)
	case *ast.Arith:
		return rec(n.L) && rec(n.R)
	case *ast.Logic:
		return rec(n.L) && rec(n.R)
	case *ast.Unary:
		return rec(n.Operand)
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			if !rec(n.Keys[i]) || !rec(n.Values[i]) {
				return false
			}
		}
		return true
	case *ast.ArrayConstructor:
		return n.Body == nil || rec(n.Body)
	case *ast.FunctionCall:
		if base, found := CountOfVar(n); found && base == scanVar {
			return true
		}
		if n.Name == "count" && len(n.Args) == 1 {
			if vr, ok := n.Args[0].(*ast.VarRef); ok && vr.Name == scanVar {
				return true
			}
		}
		for _, a := range n.Args {
			if !rec(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// prunePredicates extracts VectorPlan.Prune from the clauses after the
// head for clause: conjuncts are collected from the leading consecutive
// where clauses (a let can error, so pruning never reaches past one), in
// evaluation order through the and-spines, stopping at the first conjunct
// that is not a prunable comparison. Keeping only that prefix preserves
// the left-to-right safety contract segment.Skip relies on.
func prunePredicates(headVar string, rest []ast.Clause) []PrunePred {
	var preds []PrunePred
	for _, cl := range rest {
		wc, ok := cl.(*ast.WhereClause)
		if !ok {
			break
		}
		for _, conj := range andConjuncts(wc.Cond, nil) {
			p, ok := pruneConjunct(headVar, conj)
			if !ok {
				return preds
			}
			preds = append(preds, p)
		}
	}
	return preds
}

// andConjuncts flattens an and-spine into evaluation order.
func andConjuncts(e ast.Expr, out []ast.Expr) []ast.Expr {
	if l, ok := e.(*ast.Logic); ok && l.IsAnd {
		return andConjuncts(l.R, andConjuncts(l.L, out))
	}
	return append(out, e)
}

// pruneConjunct recognizes one prunable conjunct: a value comparison of a
// literal-key field lookup on the scan variable against an atomic literal
// (either operand order; a flipped comparison normalizes its operator).
func pruneConjunct(headVar string, e ast.Expr) (PrunePred, bool) {
	cmp, ok := e.(*ast.Comparison)
	if !ok || cmp.General {
		return PrunePred{}, false
	}
	switch cmp.Op {
	case "eq", "ne", "lt", "le", "gt", "ge":
	default:
		return PrunePred{}, false
	}
	if f, ok := pruneLookupField(headVar, cmp.L); ok {
		if lit, ok := pruneLiteral(cmp.R); ok {
			return PrunePred{Field: f, Op: string(cmp.Op), Lit: lit}, true
		}
		return PrunePred{}, false
	}
	if f, ok := pruneLookupField(headVar, cmp.R); ok {
		if lit, ok := pruneLiteral(cmp.L); ok {
			return PrunePred{Field: f, Op: flipCompareOp(string(cmp.Op)), Lit: lit}, true
		}
	}
	return PrunePred{}, false
}

// pruneLookupField matches $head.field with a literal string key.
func pruneLookupField(headVar string, e ast.Expr) (string, bool) {
	ol, ok := e.(*ast.ObjectLookup)
	if !ok {
		return "", false
	}
	vr, ok := ol.Input.(*ast.VarRef)
	if !ok || vr.Name != headVar {
		return "", false
	}
	lit, ok := ol.Key.(*ast.Literal)
	if !ok || lit.Value.Kind() != item.KindString {
		return "", false
	}
	return string(lit.Value.(item.Str)), true
}

// pruneLiteral admits the literal kinds the zone-map rules understand.
func pruneLiteral(e ast.Expr) (item.Item, bool) {
	lit, ok := e.(*ast.Literal)
	if !ok {
		return nil, false
	}
	switch lit.Value.Kind() {
	case item.KindInteger, item.KindDecimal, item.KindDouble, item.KindString:
		return lit.Value, true
	}
	return nil, false
}

// flipCompareOp mirrors a value-comparison operator across its operands.
func flipCompareOp(op string) string {
	switch op {
	case "lt":
		return "gt"
	case "le":
		return "ge"
	case "gt":
		return "lt"
	case "ge":
		return "le"
	}
	return op // eq and ne are symmetric
}

// topKBound recognizes a where condition that bounds the count variable of
// an order-by tail to a static rank: "$c le K" / "$c lt K" or the flipped
// "K ge $c" / "K gt $c" (value comparisons with an integer literal K),
// returning the inclusive bound.
func topKBound(cond ast.Expr, countVar string) (int64, bool) {
	cmp, ok := cond.(*ast.Comparison)
	if !ok || cmp.General {
		return 0, false
	}
	if vr, ok := cmp.L.(*ast.VarRef); ok && vr.Name == countVar {
		if k, ok := literalInt(cmp.R); ok {
			switch cmp.Op {
			case "le":
				return k, true
			case "lt":
				return k - 1, true
			}
		}
		return 0, false
	}
	if vr, ok := cmp.R.(*ast.VarRef); ok && vr.Name == countVar {
		if k, ok := literalInt(cmp.L); ok {
			switch cmp.Op {
			case "ge":
				return k, true
			case "gt":
				return k - 1, true
			}
		}
	}
	return 0, false
}

// literalInt unwraps an integer literal.
func literalInt(e ast.Expr) (int64, bool) {
	lit, ok := e.(*ast.Literal)
	if !ok {
		return 0, false
	}
	v, ok := lit.Value.(item.Int)
	return int64(v), ok
}

// countZeroCall recognizes "count(F) eq 0" (either operand order, value
// comparison) over a vector-eligible non-grouped, non-sorted pipeline: the
// emptiness test folds as an early-exit grand aggregate, like empty(F).
// Returns the inner count call, or nil.
func (c *checker) countZeroCall(n *ast.Comparison) *ast.FunctionCall {
	if !c.vectorize || n.General || n.Op != "eq" {
		return nil
	}
	call, lit := n.L, n.R
	if _, ok := call.(*ast.Literal); ok {
		call, lit = lit, call
	}
	if v, ok := literalInt(lit); !ok || v != 0 {
		return nil
	}
	fc, ok := call.(*ast.FunctionCall)
	if !ok || fc.Name != "count" || len(fc.Args) != 1 {
		return nil
	}
	if _, isUDF := c.functions[fc.Name]; isUDF {
		return nil
	}
	if c.info.Pushdown[fc] {
		return nil // the cluster count action already short-circuits costs
	}
	f, ok := fc.Args[0].(*ast.FLWOR)
	if !ok {
		return nil
	}
	vp := c.info.VectorPlans[f]
	if vp == nil || vp.Grouped || vp.OrderBy != nil {
		return nil
	}
	return fc
}

// vectorizableExpr reports whether e compiles to a single-valued column
// expression. Every variable reference is acceptable here: pipeline
// bindings become columns, and free variables (globals, outer FLWOR
// bindings) become per-evaluation constants — the runtime falls back to
// the tuple pipeline if such a binding turns out to be a multi-item
// sequence.
func (c *checker) vectorizableExpr(e ast.Expr) bool {
	return c.vectorizable(e, func(string) bool { return true }, nil)
}

// vectorizableGroupReturn checks the return expression of a grouped
// pipeline: key variables and free variables behave as in
// vectorizableExpr, while non-key pipeline variables may be consumed only
// through aggregates the backend can fold — agg($v), agg($v.path...), or
// the #count-of($v#count) call the count rewrite produced.
func (c *checker) vectorizableGroupReturn(e ast.Expr, keys, bound map[string]bool) bool {
	varOK := func(name string) bool {
		// A bound non-key variable holds the per-group concatenation; the
		// backend only materializes it through aggregates.
		return keys[name] || !bound[name]
	}
	aggOK := func(n *ast.FunctionCall) (handled, ok bool) {
		if base, found := CountOfVar(n); found {
			return true, bound[base] && !keys[base]
		}
		if _, isUDF := c.functions[n.Name]; !isUDF && VectorAggregates[n.Name] && len(n.Args) == 1 {
			base, found := aggArgRoot(n.Args[0])
			return true, found && bound[base] && !keys[base]
		}
		return false, false
	}
	return c.vectorizable(e, varOK, aggOK)
}

// vectorizable is the shared walker behind both checks above: the scalar
// expression grammar is identical, only the treatment of variable
// references (varOK) and — after a group-by — aggregate calls (aggCall,
// consulted before the scalar-builtin whitelist; nil outside groups)
// differs between the pipeline body and a grouped return.
func (c *checker) vectorizable(e ast.Expr, varOK func(string) bool, aggCall func(*ast.FunctionCall) (handled, ok bool)) bool {
	rec := func(ch ast.Expr) bool { return c.vectorizable(ch, varOK, aggCall) }
	switch n := e.(type) {
	case *ast.Literal:
		return true
	case *ast.VarRef:
		return varOK(n.Name)
	case *ast.ObjectLookup:
		lit, ok := n.Key.(*ast.Literal)
		if !ok || lit.Value.Kind() != item.KindString {
			return false
		}
		return rec(n.Input)
	case *ast.Comparison:
		return !n.General && rec(n.L) && rec(n.R)
	case *ast.Arith:
		return rec(n.L) && rec(n.R)
	case *ast.Logic:
		return rec(n.L) && rec(n.R)
	case *ast.Unary:
		return rec(n.Operand)
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			lit, ok := n.Keys[i].(*ast.Literal)
			if !ok || lit.Value.Kind() != item.KindString {
				return false
			}
			if !rec(n.Values[i]) {
				return false
			}
		}
		return true
	case *ast.ArrayConstructor:
		return n.Body == nil || rec(n.Body)
	case *ast.FunctionCall:
		if aggCall != nil {
			if handled, ok := aggCall(n); handled {
				return ok
			}
		}
		if _, isUDF := c.functions[n.Name]; isUDF {
			return false
		}
		if !VectorScalarFunctions[n.Name] {
			return false
		}
		for _, a := range n.Args {
			if !rec(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// CountOfVar recognizes the #count-of($v#count) call the group-by count
// rewrite produces and returns the base variable name. The runtime's
// vector compiler resolves the same shape to a count accumulator, so the
// recognizer is shared rather than duplicated.
func CountOfVar(n *ast.FunctionCall) (string, bool) {
	if n.Name != "#count-of" || len(n.Args) != 1 {
		return "", false
	}
	vr, ok := n.Args[0].(*ast.VarRef)
	if !ok || !strings.HasSuffix(vr.Name, CountMarkerSuffix) {
		return "", false
	}
	return strings.TrimSuffix(vr.Name, CountMarkerSuffix), true
}

// aggArgRoot accepts an aggregate argument of the form $v or a chain of
// literal-key object lookups rooted at $v, returning the root variable.
func aggArgRoot(e ast.Expr) (string, bool) {
	for {
		switch n := e.(type) {
		case *ast.VarRef:
			return n.Name, true
		case *ast.ObjectLookup:
			lit, ok := n.Key.(*ast.Literal)
			if !ok || lit.Value.Kind() != item.KindString {
				return "", false
			}
			e = n.Input
		default:
			return "", false
		}
	}
}

// Static equi-join detection. The paper's FLWOR-on-Spark mapping leaves a
// nested "for A for B where key(A) eq key(B)" to degrade into a quadratic
// nested loop; this pass recognizes the shape on the mode-annotated AST and
// records an explicit join plan so the runtime can execute it as a hash or
// broadcast join instead. Detection is entirely static — it hangs off the
// mode annotation exactly as the roadmap prescribes — and declines
// conservatively: any query it does not recognize keeps the (correct)
// nested-loop evaluation.
package compiler

import "rumble/internal/ast"

// JoinStrategy is the physical join operator the compiler selected.
type JoinStrategy int

// The two equi-join strategies: a shuffle hash join, or a broadcast hash
// join when one side is statically known to be driver-resident and small.
const (
	JoinHash JoinStrategy = iota
	JoinBroadcast
)

// String renders the strategy the way Explain prints it.
func (s JoinStrategy) String() string {
	if s == JoinBroadcast {
		return "broadcast"
	}
	return "hash"
}

// MaxJoinKeys bounds how many equality conjuncts become physical join
// keys; further equality conjuncts stay in the residual predicate. The
// bound keeps the runtime's per-key type masks in one machine word.
const MaxJoinKeys = 8

// JoinPlan describes one statically detected equi-join: the FLWOR's two
// leading for clauses, the key expression pairs extracted from the where
// clause (LeftKeys[i] references only the left variable, RightKeys[i] only
// the right), and the conjuncts that did not split, to be evaluated as a
// filter after the join. The runtime consumes the plan in place of the
// first three clauses (for, for, where) of the FLWOR.
type JoinPlan struct {
	Left, Right         *ast.ForClause
	LeftKeys, RightKeys []ast.Expr
	Residual            []ast.Expr
	Strategy            JoinStrategy
	// BuildLeft is set on broadcast joins whose left side is the small,
	// collected one; otherwise the right side is built/broadcast.
	BuildLeft bool
}

// detectJoin recognizes the equi-join shape on one FLWOR whose clauses are
// already mode-annotated. It returns nil when the FLWOR must keep
// nested-loop evaluation:
//
//   - the first two clauses must be plain for clauses (no positional
//     variable, no "allowing empty", distinct variables) over parallel
//     (RDD/DataFrame) inputs — both sides must be cluster-resident for a
//     distributed join to pay off;
//   - the right input must not depend on the left variable (otherwise the
//     nested loop is a genuine dependent iteration, not a join);
//   - the third clause must be a where whose condition contains at least
//     one conjunct of the form "leftExpr eq rightExpr" splitting cleanly
//     by variable use. Remaining conjuncts become the residual filter.
func (c *checker) detectJoin(f *ast.FLWOR) *JoinPlan {
	if !c.cluster || c.noJoin || len(f.Clauses) < 3 {
		return nil
	}
	left, ok := f.Clauses[0].(*ast.ForClause)
	if !ok || left.PosVar != "" || left.AllowEmpty {
		return nil
	}
	right, ok := f.Clauses[1].(*ast.ForClause)
	if !ok || right.PosVar != "" || right.AllowEmpty || right.Var == left.Var {
		return nil
	}
	where, ok := f.Clauses[2].(*ast.WhereClause)
	if !ok {
		return nil
	}
	if !c.info.ModeOf(left.In).Parallel() || !c.info.ModeOf(right.In).Parallel() {
		return nil
	}
	if exprUsesVar(right.In, left.Var) {
		return nil
	}
	plan := &JoinPlan{Left: left, Right: right}
	for _, conj := range splitConjuncts(where.Cond) {
		l, r, ok := splitEquiPair(conj, left.Var, right.Var)
		if ok && len(plan.LeftKeys) < MaxJoinKeys {
			plan.LeftKeys = append(plan.LeftKeys, l)
			plan.RightKeys = append(plan.RightKeys, r)
			continue
		}
		plan.Residual = append(plan.Residual, conj)
	}
	if len(plan.LeftKeys) == 0 {
		return nil
	}
	switch {
	case broadcastable(right.In):
		plan.Strategy = JoinBroadcast
	case broadcastable(left.In):
		plan.Strategy = JoinBroadcast
		plan.BuildLeft = true
	default:
		plan.Strategy = JoinHash
	}
	return plan
}

// splitConjuncts flattens the and-tree of a where condition.
func splitConjuncts(e ast.Expr) []ast.Expr {
	if l, ok := e.(*ast.Logic); ok && l.IsAnd {
		return append(splitConjuncts(l.L), splitConjuncts(l.R)...)
	}
	return []ast.Expr{e}
}

// splitEquiPair decides whether one conjunct is a join-key equality: a
// value comparison "eq" whose operands reference exactly one of the two
// join variables each (either orientation). Only the value form qualifies
// — the general "=" has existential semantics over sequences, which a
// single-key hash table does not implement.
func splitEquiPair(e ast.Expr, leftVar, rightVar string) (l, r ast.Expr, ok bool) {
	cmp, isCmp := e.(*ast.Comparison)
	if !isCmp || cmp.General || cmp.Op != "eq" {
		return nil, nil, false
	}
	lUsesL, lUsesR := exprUsesVar(cmp.L, leftVar), exprUsesVar(cmp.L, rightVar)
	rUsesL, rUsesR := exprUsesVar(cmp.R, leftVar), exprUsesVar(cmp.R, rightVar)
	switch {
	case lUsesL && !lUsesR && rUsesR && !rUsesL:
		return cmp.L, cmp.R, true
	case lUsesR && !lUsesL && rUsesL && !rUsesR:
		return cmp.R, cmp.L, true
	default:
		return nil, nil, false
	}
}

// exprUsesVar reports whether any variable reference in e names v. The
// check is conservative about shadowing: a nested binding of the same name
// still counts as a use, which at worst demotes a key conjunct to the
// residual filter.
func exprUsesVar(e ast.Expr, v string) bool {
	uses := map[string]*useInfo{v: {}}
	collectUses(e, uses)
	return uses[v].plainUses > 0 || len(uses[v].countCalls) > 0
}

// broadcastable reports whether a for-clause input is statically known to
// be small enough to collect on the driver and broadcast: parallelize()
// distributes a sequence the driver materializes anyway, so its data is
// driver-resident by construction. File-backed sources (json-file,
// collection) have statically unknown cardinality and stay on the shuffle
// path.
func broadcastable(e ast.Expr) bool {
	call, ok := e.(*ast.FunctionCall)
	return ok && call.Name == "parallelize"
}

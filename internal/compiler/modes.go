package compiler

import (
	"rumble/internal/ast"
)

// Mode is the physical execution mode the static compiler assigns to every
// expression node, the §5–§6 design point of the paper: the decision whether
// an expression is materialized locally, runs as an RDD pipeline, or runs
// natively on DataFrames is made once at compile time, never probed at run
// time.
type Mode int

// The execution modes. Local is the zero value: every expression degrades
// to local materialized execution unless the annotation rules below prove a
// better backend is available. The first three are the paper's modes;
// Vector is the columnar local backend selected when Options.Vectorize is
// on and the plan shape is eligible.
const (
	// ModeLocal executes by streaming materialized items on the driver.
	ModeLocal Mode = iota
	// ModeRDD executes as an RDD pipeline of items on the cluster.
	ModeRDD
	// ModeDataFrame executes FLWOR tuple streams natively as DataFrames
	// with one column per variable (§4.3).
	ModeDataFrame
	// ModeVector executes FLWOR pipelines locally over typed column
	// batches (scan → filter → project → group/aggregate) instead of
	// tuple-at-a-time interpretation. Selected statically when
	// Options.Vectorize is on and the plan is vector-eligible.
	ModeVector
)

// String renders the mode the way Explain prints it.
func (m Mode) String() string {
	switch m {
	case ModeRDD:
		return "RDD"
	case ModeDataFrame:
		return "DataFrame"
	case ModeVector:
		return "Vector"
	default:
		return "Local"
	}
}

// Parallel reports whether the mode executes on the cluster. A DataFrame
// expression also exposes its output as an RDD of items, so both cluster
// modes propagate parallelism to consuming expressions. Vector is a local
// mode: it executes on the driver, batch-at-a-time.
func (m Mode) Parallel() bool { return m == ModeRDD || m == ModeDataFrame }

// AggregateFunctions are the builtin aggregations whose evaluation pushes
// down to a cluster action when their argument is cluster-resident (§5.5:
// "aggregating iterators invoke a Spark count action on the child RDD").
var AggregateFunctions = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"exists": true, "empty": true,
}

// dataSourceFunctions seed RDD mode when a cluster is available (§5.7).
var dataSourceFunctions = map[string]bool{
	"json-file": true, "parallelize": true, "collection": true,
}

// modeScope chains variable→mode bindings during the annotation phase, so
// a VarRef inherits the statically known mode of its binding: ModeRDD for
// cluster-bound lets, ModeLocal for everything else. Lookup of an unbound
// name degrades to ModeLocal.
type modeScope struct {
	parent *modeScope
	vars   map[string]Mode
}

func (s *modeScope) child() *modeScope {
	return &modeScope{parent: s, vars: map[string]Mode{}}
}

func (s *modeScope) bind(name string, m Mode) { s.vars[name] = m }

func (s *modeScope) lookup(name string) Mode {
	for c := s; c != nil; c = c.parent {
		if m, ok := c.vars[name]; ok {
			return m
		}
	}
	return ModeLocal
}

// annotateModule assigns execution modes to every expression of the module,
// bottom-up. It runs after scope/arity checking and after the group-by
// count rewrite, so it sees the final shape of the tree.
func (c *checker) annotateModule(m *ast.Module) {
	c.modeEnv = &modeScope{vars: map[string]Mode{}}
	for _, vd := range m.Vars {
		// Global variables are evaluated eagerly on the driver; their
		// initializers may still read cluster data sources.
		c.annotate(vd.Init)
		c.modeEnv.bind(vd.Name, ModeLocal)
	}
	for _, fd := range m.Functions {
		// User-defined function calls materialize their result through the
		// local API, so bodies are annotated independently with their
		// parameters bound local.
		saved := c.modeEnv
		c.modeEnv = saved.child()
		for _, p := range fd.Params {
			c.modeEnv.bind(p, ModeLocal)
		}
		c.annotate(fd.Body)
		c.modeEnv = saved
	}
	c.annotate(m.Body)
}

// annotate computes and records the mode of e, returning it. The rules
// mirror §5.5–§5.7 of the paper:
//
//   - data sources (json-file, parallelize, collection) seed ModeRDD;
//   - path steps, predicates, simple map and distinct-values preserve the
//     parallelism of their input;
//   - a comma expression is an RDD union when every member is parallel;
//   - a conditional is parallel when either branch is;
//   - a FLWOR whose initial clause is a for over a parallel expression
//     (without "allowing empty") runs natively on DataFrames;
//   - aggregates stay local but push the aggregation down to a cluster
//     action when their argument is parallel (recorded in Info.Pushdown);
//   - everything else degrades to ModeLocal.
func (c *checker) annotate(e ast.Expr) Mode {
	if e == nil {
		return ModeLocal
	}
	mode := ModeLocal
	switch n := e.(type) {
	case *ast.Literal, *ast.ContextItem:
		// Local leaves.
	case *ast.VarRef:
		// A variable inherits the mode of its binding: references to
		// cluster-bound lets are RDDs themselves.
		mode = c.modeEnv.lookup(n.Name)
	case *ast.CommaExpr:
		allParallel := len(n.Exprs) > 0
		for _, ch := range n.Exprs {
			if !c.annotate(ch).Parallel() {
				allParallel = false
			}
		}
		if allParallel {
			mode = ModeRDD
		}
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			c.annotate(n.Keys[i])
			c.annotate(n.Values[i])
		}
	case *ast.ArrayConstructor:
		c.annotate(n.Body)
	case *ast.Unary:
		c.annotate(n.Operand)
	case *ast.Arith:
		c.annotate(n.L)
		c.annotate(n.R)
	case *ast.RangeExpr:
		c.annotate(n.L)
		c.annotate(n.R)
	case *ast.ConcatExpr:
		c.annotate(n.L)
		c.annotate(n.R)
	case *ast.Comparison:
		c.annotate(n.L)
		c.annotate(n.R)
		// "count(F) eq 0" over a vector pipeline is an emptiness test: fold
		// it as an early-exit grand aggregate instead of counting the scan.
		if call := c.countZeroCall(n); call != nil {
			c.info.VectorCountZero[n] = call
			mode = ModeVector
		}
	case *ast.Logic:
		c.annotate(n.L)
		c.annotate(n.R)
	case *ast.Predicate:
		in := c.annotate(n.Input)
		c.annotate(n.Pred)
		if in.Parallel() {
			mode = ModeRDD
		}
	case *ast.SimpleMap:
		in := c.annotate(n.Input)
		c.annotate(n.Mapping)
		if in.Parallel() {
			mode = ModeRDD
		}
	case *ast.ObjectLookup:
		in := c.annotate(n.Input)
		c.annotate(n.Key)
		if in.Parallel() {
			mode = ModeRDD
		}
	case *ast.ArrayLookup:
		in := c.annotate(n.Input)
		c.annotate(n.Index)
		if in.Parallel() {
			mode = ModeRDD
		}
	case *ast.ArrayUnbox:
		if c.annotate(n.Input).Parallel() {
			mode = ModeRDD
		}
	case *ast.FunctionCall:
		mode = c.annotateCall(n)
	case *ast.IfExpr:
		c.annotate(n.Cond)
		thenMode := c.annotate(n.Then)
		elseMode := c.annotate(n.Else)
		// Either branch may be chosen at run time; when at least one is
		// parallel the conditional executes as an RDD, parallelizing the
		// other branch's local result if needed.
		if thenMode.Parallel() || elseMode.Parallel() {
			mode = ModeRDD
		}
	case *ast.SwitchExpr:
		c.annotate(n.Input)
		for _, cs := range n.Cases {
			for _, v := range cs.Values {
				c.annotate(v)
			}
			c.annotate(cs.Result)
		}
		c.annotate(n.Default)
	case *ast.TryCatch:
		// Snapshot semantics force materialization of the try branch.
		c.annotate(n.Try)
		saved := c.modeEnv
		c.modeEnv = saved.child()
		c.modeEnv.bind("err:description", ModeLocal)
		c.annotate(n.Catch)
		c.modeEnv = saved
	case *ast.Quantified:
		saved := c.modeEnv
		c.modeEnv = saved.child()
		for _, b := range n.Bindings {
			c.annotate(b.In)
			c.modeEnv.bind(b.Var, ModeLocal)
		}
		c.annotate(n.Satisfies)
		c.modeEnv = saved
	case *ast.InstanceOf:
		c.annotate(n.Input)
	case *ast.TreatAs:
		c.annotate(n.Input)
	case *ast.CastableAs:
		c.annotate(n.Input)
	case *ast.CastAs:
		c.annotate(n.Input)
	case *ast.FLWOR:
		mode = c.annotateFLWOR(n)
	}
	c.info.Modes[e] = mode
	return mode
}

// annotateCall assigns the mode of a function call. User-declared functions
// shadow builtins, matching the runtime's dispatch order.
func (c *checker) annotateCall(n *ast.FunctionCall) Mode {
	for _, a := range n.Args {
		c.annotate(a)
	}
	if _, isUDF := c.functions[n.Name]; isUDF {
		return ModeLocal
	}
	switch {
	case dataSourceFunctions[n.Name]:
		if c.cluster {
			return ModeRDD
		}
	case n.Name == "distinct-values" && len(n.Args) == 1:
		if c.info.ModeOf(n.Args[0]).Parallel() {
			return ModeRDD
		}
	case AggregateFunctions[n.Name] && len(n.Args) >= 1:
		if c.info.ModeOf(n.Args[0]).Parallel() {
			c.info.Pushdown[n] = true
			break
		}
		// A grand aggregate over a vector-eligible non-grouped, non-sorted
		// pipeline folds inside the columnar backend: the scan, filters and
		// the accumulator all run morsel-driven, nothing materializes
		// between the FLWOR and the aggregate. exists and empty fold as
		// early-exit counts — remaining morsels cancel once decided.
		if c.vectorize && VectorGrandAggregates[n.Name] && len(n.Args) == 1 {
			if f, isFLWOR := n.Args[0].(*ast.FLWOR); isFLWOR {
				if vp := c.info.VectorPlans[f]; vp != nil && !vp.Grouped && vp.OrderBy == nil {
					c.info.VectorAggs[n] = true
					return ModeVector
				}
			}
		}
	}
	return ModeLocal
}

// annotateFLWOR assigns the FLWOR's mode: ModeDataFrame exactly when the
// initial clause — after an unbroken prefix of cluster-bound lets — is a
// for (without "allowing empty") over a parallel expression and a cluster
// is available, the static criterion of §4.4. A local-valued leading let
// keeps execution local (§4.5), as does any local initial input.
//
// A leading let whose value is parallel becomes a cluster-bound let
// (Info.RDDLets): its variable binds to the value's RDD once per
// evaluation, cached when consumed more than once. The hoist is skipped
// when the FLWOR has a group-by clause, because grouping re-binds
// non-grouping variables to their per-group concatenation — a let variable
// must then travel in the tuples.
func (c *checker) annotateFLWOR(f *ast.FLWOR) Mode {
	mode := ModeLocal
	hasGroup := false
	for _, cl := range f.Clauses {
		if _, ok := cl.(*ast.GroupByClause); ok {
			hasGroup = true
			break
		}
	}
	saved := c.modeEnv
	c.modeEnv = saved.child()
	defer func() { c.modeEnv = saved }()
	// leading is true while every clause seen so far is a cluster-bound
	// let, i.e. the prefix the runtime hoists out of the tuple chain.
	leading := true
	for i, cl := range f.Clauses {
		switch n := cl.(type) {
		case *ast.ForClause:
			in := c.annotate(n.In)
			if leading && c.cluster && in.Parallel() && !n.AllowEmpty {
				mode = ModeDataFrame
			}
			leading = false
			c.modeEnv.bind(n.Var, ModeLocal)
			if n.PosVar != "" {
				c.modeEnv.bind(n.PosVar, ModeLocal)
			}
		case *ast.LetClause:
			vm := c.annotate(n.Value)
			if leading && c.cluster && vm.Parallel() && !hasGroup {
				uses := countVarUses(n.Var, f.Clauses[i+1:], f.Return)
				c.info.RDDLets[n] = &RDDLetPlan{Uses: uses, Cache: uses > 1}
				c.modeEnv.bind(n.Var, ModeRDD)
			} else {
				leading = false
				c.modeEnv.bind(n.Var, ModeLocal)
			}
		case *ast.WhereClause:
			c.annotate(n.Cond)
			leading = false
		case *ast.GroupByClause:
			for _, spec := range n.Specs {
				c.annotate(spec.Expr)
				if spec.Expr != nil {
					c.modeEnv.bind(spec.Var, ModeLocal)
				}
			}
			leading = false
		case *ast.OrderByClause:
			for _, spec := range n.Specs {
				c.annotate(spec.Expr)
			}
			leading = false
		case *ast.CountClause:
			c.modeEnv.bind(n.Var, ModeLocal)
			leading = false
		}
	}
	c.annotate(f.Return)
	// Join detection runs first: it only fires on DataFrame-shaped FLWORs
	// (two parallel for clauses plus an equi-where), and a detected join
	// plan is itself input to vector eligibility — when the keys and the
	// pipeline tail are vectorizable, the same JoinPlan compiles to a
	// vector hash join instead of a DataFrame shuffle join.
	if mode == ModeDataFrame {
		if plan := c.detectJoin(f); plan != nil {
			c.info.Joins[f] = plan
		}
	}
	// The columnar local backend takes precedence over both Local and
	// DataFrame execution when enabled and the pipeline shape is eligible:
	// a hot scan→filter→sort→project→group pipeline runs faster
	// batch-at-a-time on the driver than tuple-at-a-time (Local) or through
	// the exchange machinery (DataFrame). The JoinPlan stays recorded either
	// way, so the tuple fallback of a vector join keeps hash semantics.
	if c.vectorize {
		if vp := c.detectVector(f); vp != nil {
			mode = ModeVector
			c.info.VectorPlans[f] = vp
		}
	}
	return mode
}

package compiler

import (
	"strings"
	"testing"

	"rumble/internal/ast"
	"rumble/internal/parser"
)

// joinPlanOf analyzes src and returns the plan of the first FLWOR with a
// detected join, or nil.
func joinPlanOf(t *testing.T, src string, opts Options) *JoinPlan {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	info, err := Analyze(m, opts)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	for _, plan := range info.Joins {
		return plan
	}
	return nil
}

const hashJoinQuery = `
	for $a in json-file("a.jsonl")
	for $b in json-file("b.jsonl")
	where $a.k eq $b.k
	return { "a": $a.v, "b": $b.v }`

func TestDetectHashJoin(t *testing.T) {
	plan := joinPlanOf(t, hashJoinQuery, Options{Cluster: true})
	if plan == nil {
		t.Fatal("equi-join not detected")
	}
	if plan.Strategy != JoinHash {
		t.Errorf("strategy = %s, want hash", plan.Strategy)
	}
	if len(plan.LeftKeys) != 1 || len(plan.RightKeys) != 1 || len(plan.Residual) != 0 {
		t.Errorf("keys/residual = %d/%d/%d, want 1/1/0",
			len(plan.LeftKeys), len(plan.RightKeys), len(plan.Residual))
	}
	if plan.Left.Var != "a" || plan.Right.Var != "b" {
		t.Errorf("join variables $%s/$%s", plan.Left.Var, plan.Right.Var)
	}
}

func TestDetectBroadcastJoin(t *testing.T) {
	q := `
		for $a in json-file("big.jsonl")
		for $b in parallelize(({"k": 1}, {"k": 2}))
		where $a.k eq $b.k
		return $a`
	plan := joinPlanOf(t, q, Options{Cluster: true})
	if plan == nil {
		t.Fatal("join not detected")
	}
	if plan.Strategy != JoinBroadcast || plan.BuildLeft {
		t.Errorf("strategy = %s buildLeft=%v, want broadcast build-right", plan.Strategy, plan.BuildLeft)
	}
	// Small side on the left broadcasts the left.
	q = `
		for $a in parallelize(({"k": 1}, {"k": 2}))
		for $b in json-file("big.jsonl")
		where $a.k eq $b.k
		return $b`
	plan = joinPlanOf(t, q, Options{Cluster: true})
	if plan == nil {
		t.Fatal("join not detected")
	}
	if plan.Strategy != JoinBroadcast || !plan.BuildLeft {
		t.Errorf("strategy = %s buildLeft=%v, want broadcast build-left", plan.Strategy, plan.BuildLeft)
	}
}

func TestDetectJoinSwappedOperandsAndConjuncts(t *testing.T) {
	q := `
		for $a in json-file("a.jsonl")
		for $b in json-file("b.jsonl")
		where $b.k eq $a.k and $a.x eq $b.y and $a.v gt 3
		return $a`
	plan := joinPlanOf(t, q, Options{Cluster: true})
	if plan == nil {
		t.Fatal("join not detected")
	}
	if len(plan.LeftKeys) != 2 {
		t.Fatalf("got %d key pairs, want 2", len(plan.LeftKeys))
	}
	// The swapped first conjunct must be normalized: LeftKeys reference $a.
	for i, k := range plan.LeftKeys {
		if !exprUsesVar(k, "a") || exprUsesVar(k, "b") {
			t.Errorf("LeftKeys[%d] does not reference only $a", i)
		}
		if !exprUsesVar(plan.RightKeys[i], "b") || exprUsesVar(plan.RightKeys[i], "a") {
			t.Errorf("RightKeys[%d] does not reference only $b", i)
		}
	}
	if len(plan.Residual) != 1 {
		t.Errorf("residual = %d conjuncts, want 1 ($a.v gt 3)", len(plan.Residual))
	}
}

func TestJoinDetectionDeclines(t *testing.T) {
	cases := map[string]string{
		"no cluster means no join": hashJoinQuery, // run with Cluster: false below
		"non-equality predicate":   `for $a in json-file("a") for $b in json-file("b") where $a.k lt $b.k return $a`,
		"general comparison":       `for $a in json-file("a") for $b in json-file("b") where $a.k = $b.k return $a`,
		"disjunctive predicate":    `for $a in json-file("a") for $b in json-file("b") where $a.k eq $b.k or $a.v eq $b.v return $a`,
		"same-side equality":       `for $a in json-file("a") for $b in json-file("b") where $a.k eq $a.j return $a`,
		"local left side":          `for $a in (1, 2, 3) for $b in json-file("b") where $a eq $b.k return $a`,
		"local right side":         `for $a in json-file("a") for $b in (1, 2, 3) where $a.k eq $b return $a`,
		"dependent right input":    `for $a in json-file("a") for $b in json-file($a.path) where $a.k eq $b.k return $a`,
		"positional variable":      `for $a at $i in json-file("a") for $b in json-file("b") where $a.k eq $b.k return $i`,
		"allowing empty":           `for $a in json-file("a") for $b allowing empty in json-file("b") where $a.k eq $b.k return $a`,
		"where not third clause":   `for $a in json-file("a") for $b in json-file("b") let $x := 1 where $a.k eq $b.k return $x`,
		"single for is not a join": `for $a in json-file("a") where $a.k eq 3 return $a`,
		"cross product, no keys":   `for $a in json-file("a") for $b in json-file("b") where $a.v gt 3 return $b`,
		"constant-only equality":   `for $a in json-file("a") for $b in json-file("b") where 1 eq 1 return $a`,
	}
	for name, q := range cases {
		cluster := name != "no cluster means no join"
		if plan := joinPlanOf(t, q, Options{Cluster: cluster}); plan != nil {
			t.Errorf("%s: unexpectedly detected a join (%s)", name, plan.Strategy)
		}
	}
}

func TestNoJoinOptionDisablesDetection(t *testing.T) {
	if plan := joinPlanOf(t, hashJoinQuery, Options{Cluster: true, NoJoin: true}); plan != nil {
		t.Error("NoJoin option did not disable detection")
	}
}

func TestJoinKeepsDataFrameMode(t *testing.T) {
	m, info := annotateSrc(t, hashJoinQuery, true)
	if mode := info.ModeOf(m.Body); mode != ModeDataFrame {
		t.Errorf("join FLWOR mode = %s, want DataFrame", mode)
	}
	if info.Joins[m.Body.(*ast.FLWOR)] == nil {
		t.Error("join plan not keyed by the FLWOR node")
	}
}

func TestExplainRendersJoinNode(t *testing.T) {
	m, info := annotateSrc(t, hashJoinQuery, true)
	plan := Explain(m, info)
	if !strings.Contains(plan, "Join[hash] for $a, for $b") {
		t.Errorf("explain lacks the Join[hash] node:\n%s", plan)
	}
	// The consumed for/for/where clauses must not be double-rendered.
	if strings.Contains(plan, "for $a\n") || strings.Contains(plan, "where\n") {
		t.Errorf("consumed clauses still rendered:\n%s", plan)
	}
	q := `
		for $a in json-file("big.jsonl")
		for $b in parallelize(({"k": 1}, {"k": 2}))
		where $a.k eq $b.k and $a.v gt 2
		return $a`
	m2, info2 := annotateSrc(t, q, true)
	plan2 := Explain(m2, info2)
	if !strings.Contains(plan2, "Join[broadcast] for $a, for $b (build: right)") {
		t.Errorf("explain lacks the Join[broadcast] node:\n%s", plan2)
	}
	if !strings.Contains(plan2, "residual where: ") {
		t.Errorf("explain lacks the residual filter:\n%s", plan2)
	}
}

// Compiled-plan invariant verification. Analyze produces a mode-annotated
// tree plus side tables (vector plans, join plans, pushdown marks) that the
// runtime consumes without re-checking; a bug that records an inconsistent
// annotation silently compiles to the wrong backend. Verify re-walks the
// analyzed module and checks every invariant the runtime relies on,
// returning structured diagnostics instead of a single opaque error so
// tests and the server can report exactly which invariant broke.
//
// Verification is meant to be cheap enough to run on every compile in
// tests, and behind RUMBLE_VERIFY_PLANS=1 in servers.
package compiler

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"rumble/internal/ast"
	"rumble/internal/item"
	"rumble/internal/lexer"
)

// PlanDiagnostic is one violated plan invariant.
type PlanDiagnostic struct {
	// Code names the invariant, stable across message wording changes:
	// mode-unannotated, mode-child, mode-dataframe-head, vector-plan-missing,
	// vector-plan-orphan, vector-operator, vector-topk, vector-agg,
	// vector-count-zero, join-head, join-keys, join-strategy,
	// plan-field-coverage.
	Code string
	Pos  lexer.Pos
	Msg  string
}

func (d PlanDiagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Code, d.Msg)
}

// VerifyError is the non-nil result of Verify: one diagnostic per violated
// invariant, in source order.
type VerifyError struct {
	Diags []PlanDiagnostic
}

func (e *VerifyError) Error() string {
	msgs := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		msgs[i] = d.String()
	}
	return fmt.Sprintf("plan verification failed (%d invariant(s)):\n  %s",
		len(e.Diags), strings.Join(msgs, "\n  "))
}

// verifiedVectorPlanFields lists the VectorPlan fields the verifier checks.
// A reflection pass compares this against the struct, so adding a field to
// VectorPlan without teaching Verify about it is itself a diagnostic.
var verifiedVectorPlanFields = map[string]bool{
	"Grouped": true, "OrderBy": true, "TopK": true, "Join": true, "Positional": true,
	"Prune": true, "Columns": true, "AllColumns": true,
}

// verifiedJoinPlanFields is the same coverage contract for JoinPlan.
var verifiedJoinPlanFields = map[string]bool{
	"Left": true, "Right": true, "LeftKeys": true, "RightKeys": true,
	"Residual": true, "Strategy": true, "BuildLeft": true,
}

// Verify checks the invariants of an analyzed module against its Info and
// returns a *VerifyError listing every violation, or nil when the plan is
// consistent.
func Verify(m *ast.Module, info *Info) error {
	v := &verifier{info: info}
	v.checkFieldCoverage()
	for _, vd := range m.Vars {
		v.expr(vd.Init)
	}
	for _, fd := range m.Functions {
		v.expr(fd.Body)
	}
	v.expr(m.Body)
	if len(v.diags) == 0 {
		return nil
	}
	sort.SliceStable(v.diags, func(i, j int) bool {
		a, b := v.diags[i].Pos, v.diags[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return &VerifyError{Diags: v.diags}
}

type verifier struct {
	info  *Info
	diags []PlanDiagnostic
}

func (v *verifier) report(code string, pos lexer.Pos, format string, args ...any) {
	v.diags = append(v.diags, PlanDiagnostic{Code: code, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// checkFieldCoverage fails when VectorPlan or JoinPlan gained a field the
// verifier does not know about: every plan field must be consumed by
// exactly one verification rule.
func (v *verifier) checkFieldCoverage() {
	check := func(t reflect.Type, covered map[string]bool) {
		for i := 0; i < t.NumField(); i++ {
			if name := t.Field(i).Name; !covered[name] {
				v.report("plan-field-coverage", lexer.Pos{},
					"%s field %s is not covered by any plan verification rule; extend Verify", t.Name(), name)
			}
		}
	}
	check(reflect.TypeOf(VectorPlan{}), verifiedVectorPlanFields)
	check(reflect.TypeOf(JoinPlan{}), verifiedJoinPlanFields)
}

// expr checks one expression node and recurses into its children.
func (v *verifier) expr(e ast.Expr) {
	if e == nil {
		return
	}
	mode, annotated := v.info.Modes[e]
	if !annotated {
		v.report("mode-unannotated", e.Pos(), "%T has no execution-mode annotation", e)
	}
	switch n := e.(type) {
	case *ast.Literal, *ast.ContextItem:
	case *ast.VarRef:
	case *ast.CommaExpr:
		for _, ch := range n.Exprs {
			v.expr(ch)
		}
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			v.expr(n.Keys[i])
			v.expr(n.Values[i])
		}
	case *ast.ArrayConstructor:
		v.expr(n.Body)
	case *ast.Unary:
		v.expr(n.Operand)
	case *ast.Arith:
		v.expr(n.L)
		v.expr(n.R)
	case *ast.RangeExpr:
		v.expr(n.L)
		v.expr(n.R)
	case *ast.ConcatExpr:
		v.expr(n.L)
		v.expr(n.R)
	case *ast.Comparison:
		v.expr(n.L)
		v.expr(n.R)
		if call := v.info.VectorCountZero[n]; call != nil {
			v.checkCountZero(n, call, mode)
		}
	case *ast.Logic:
		v.expr(n.L)
		v.expr(n.R)
	case *ast.Predicate:
		v.childMode(e, n.Input, mode)
		v.expr(n.Input)
		v.expr(n.Pred)
	case *ast.SimpleMap:
		v.childMode(e, n.Input, mode)
		v.expr(n.Input)
		v.expr(n.Mapping)
	case *ast.ObjectLookup:
		v.childMode(e, n.Input, mode)
		v.expr(n.Input)
		v.expr(n.Key)
	case *ast.ArrayLookup:
		v.childMode(e, n.Input, mode)
		v.expr(n.Input)
		v.expr(n.Index)
	case *ast.ArrayUnbox:
		v.childMode(e, n.Input, mode)
		v.expr(n.Input)
	case *ast.FunctionCall:
		if v.info.VectorAggs[n] {
			v.checkVectorAgg(n, mode)
		}
		for _, a := range n.Args {
			v.expr(a)
		}
	case *ast.IfExpr:
		v.expr(n.Cond)
		v.expr(n.Then)
		v.expr(n.Else)
	case *ast.SwitchExpr:
		v.expr(n.Input)
		for _, cs := range n.Cases {
			for _, val := range cs.Values {
				v.expr(val)
			}
			v.expr(cs.Result)
		}
		v.expr(n.Default)
	case *ast.TryCatch:
		v.expr(n.Try)
		v.expr(n.Catch)
	case *ast.Quantified:
		for _, b := range n.Bindings {
			v.expr(b.In)
		}
		v.expr(n.Satisfies)
	case *ast.InstanceOf:
		v.expr(n.Input)
	case *ast.TreatAs:
		v.expr(n.Input)
	case *ast.CastableAs:
		v.expr(n.Input)
	case *ast.CastAs:
		v.expr(n.Input)
	case *ast.FLWOR:
		v.checkFLWOR(n, mode)
	}
}

// childMode enforces the parallelism-preserving rule of path steps,
// predicates, simple map and lookups: the node executes as an RDD exactly
// when its input does.
func (v *verifier) childMode(parent, input ast.Expr, mode Mode) {
	inMode := v.info.ModeOf(input)
	if (mode == ModeRDD) != inMode.Parallel() {
		v.report("mode-child", parent.Pos(),
			"%T is annotated %s but its input is %s; parallelism-preserving nodes must be RDD exactly when their input is parallel",
			parent, mode, inMode)
	}
}

// checkFLWOR verifies the FLWOR-level plan tables: DataFrame head shape,
// vector plan presence and contents, and the join plan.
func (v *verifier) checkFLWOR(f *ast.FLWOR, mode Mode) {
	vp := v.info.VectorPlans[f]
	jp := v.info.Joins[f]

	if mode == ModeVector && vp == nil {
		v.report("vector-plan-missing", f.Pos(), "FLWOR is annotated Vector but has no VectorPlan")
	}
	if vp != nil && mode != ModeVector {
		v.report("vector-plan-orphan", f.Pos(), "FLWOR has a VectorPlan but is annotated %s", mode)
	}
	if mode == ModeDataFrame {
		clauses := v.peel(f)
		head, ok := firstFor(clauses)
		switch {
		case !ok:
			v.report("mode-dataframe-head", f.Pos(), "DataFrame FLWOR does not start with a for clause after cluster-bound lets")
		case head.AllowEmpty:
			v.report("mode-dataframe-head", f.Pos(), "DataFrame FLWOR head for clause allows empty")
		case !v.info.ModeOf(head.In).Parallel():
			v.report("mode-dataframe-head", head.In.Pos(),
				"DataFrame FLWOR head input is annotated %s; must be parallel", v.info.ModeOf(head.In))
		}
	}
	if jp != nil {
		v.checkJoin(f, jp)
	}
	if vp != nil {
		v.checkVectorPlan(f, vp, jp)
	}

	for _, cl := range f.Clauses {
		v.clause(cl)
	}
	v.expr(f.Return)
}

// clause recurses into the expressions of one FLWOR clause.
func (v *verifier) clause(cl ast.Clause) {
	switch n := cl.(type) {
	case *ast.ForClause:
		v.expr(n.In)
	case *ast.LetClause:
		v.expr(n.Value)
	case *ast.WhereClause:
		v.expr(n.Cond)
	case *ast.GroupByClause:
		for _, spec := range n.Specs {
			v.expr(spec.Expr)
		}
	case *ast.OrderByClause:
		for _, spec := range n.Specs {
			v.expr(spec.Expr)
		}
	case *ast.CountClause:
	}
}

// peel returns f's clauses with the leading cluster-bound lets removed, the
// way the runtime hoists them before building the pipeline.
func (v *verifier) peel(f *ast.FLWOR) []ast.Clause {
	clauses := f.Clauses
	for len(clauses) > 0 {
		lc, ok := clauses[0].(*ast.LetClause)
		if !ok || v.info.RDDLets[lc] == nil {
			break
		}
		clauses = clauses[1:]
	}
	return clauses
}

func firstFor(clauses []ast.Clause) (*ast.ForClause, bool) {
	if len(clauses) == 0 {
		return nil, false
	}
	fc, ok := clauses[0].(*ast.ForClause)
	return fc, ok
}

// checkJoin verifies one join plan: the consumed clause shape, key pairing
// and bounds, and strategy legality.
func (v *verifier) checkJoin(f *ast.FLWOR, jp *JoinPlan) {
	if len(f.Clauses) < 3 {
		v.report("join-head", f.Pos(), "join plan on a FLWOR with %d clauses; the plan consumes for/for/where", len(f.Clauses))
		return
	}
	left, lok := f.Clauses[0].(*ast.ForClause)
	right, rok := f.Clauses[1].(*ast.ForClause)
	_, wok := f.Clauses[2].(*ast.WhereClause)
	if !lok || !rok || !wok {
		v.report("join-head", f.Pos(), "join plan FLWOR must start for/for/where")
		return
	}
	if jp.Left != left || jp.Right != right {
		v.report("join-head", f.Pos(), "join plan sides do not reference the FLWOR's leading for clauses")
	}
	if len(jp.LeftKeys) != len(jp.RightKeys) {
		v.report("join-keys", f.Pos(), "join plan has %d left keys but %d right keys", len(jp.LeftKeys), len(jp.RightKeys))
	}
	if len(jp.LeftKeys) == 0 {
		v.report("join-keys", f.Pos(), "join plan has no key pairs; a keyless join is a cross product")
	}
	if len(jp.LeftKeys) > MaxJoinKeys {
		v.report("join-keys", f.Pos(), "join plan has %d key pairs, exceeding MaxJoinKeys=%d", len(jp.LeftKeys), MaxJoinKeys)
	}
	switch jp.Strategy {
	case JoinHash:
		if jp.BuildLeft {
			v.report("join-strategy", f.Pos(), "hash join sets BuildLeft; the flag is only meaningful for broadcast joins")
		}
	case JoinBroadcast:
		small := right.In
		if jp.BuildLeft {
			small = left.In
		}
		if !broadcastable(small) {
			v.report("join-strategy", f.Pos(), "broadcast join build side is not statically driver-resident")
		}
	default:
		v.report("join-strategy", f.Pos(), "unknown join strategy %d", int(jp.Strategy))
	}
	// Residual conjuncts ride along as post-join filters; any expression is
	// legal there, so Residual is covered by being allowed to be anything.
}

// checkVectorAgg verifies an Info.VectorAggs mark: the call must be
// annotated Vector and wrap a non-grouped, non-sorted vector pipeline.
func (v *verifier) checkVectorAgg(n *ast.FunctionCall, mode Mode) {
	if mode != ModeVector {
		v.report("vector-agg", n.Pos(), "call is marked VectorAggs but annotated %s", mode)
	}
	if !VectorGrandAggregates[n.Name] || len(n.Args) != 1 {
		v.report("vector-agg", n.Pos(), "call %s/%d is marked VectorAggs but is not a single-argument grand aggregate", n.Name, len(n.Args))
		return
	}
	f, ok := n.Args[0].(*ast.FLWOR)
	if !ok {
		v.report("vector-agg", n.Pos(), "VectorAggs argument is not a FLWOR")
		return
	}
	vp := v.info.VectorPlans[f]
	if vp == nil || vp.Grouped || vp.OrderBy != nil {
		v.report("vector-agg", n.Pos(), "VectorAggs argument pipeline must be a non-grouped, non-sorted vector plan")
	}
}

// checkCountZero verifies an Info.VectorCountZero mark.
func (v *verifier) checkCountZero(n *ast.Comparison, call *ast.FunctionCall, mode Mode) {
	if mode != ModeVector {
		v.report("vector-count-zero", n.Pos(), "comparison is marked VectorCountZero but annotated %s", mode)
	}
	if call.Name != "count" || len(call.Args) != 1 {
		v.report("vector-count-zero", n.Pos(), "VectorCountZero target must be count/1, got %s/%d", call.Name, len(call.Args))
		return
	}
	f, ok := call.Args[0].(*ast.FLWOR)
	if !ok {
		v.report("vector-count-zero", n.Pos(), "VectorCountZero count argument is not a FLWOR")
		return
	}
	vp := v.info.VectorPlans[f]
	if vp == nil || vp.Grouped || vp.OrderBy != nil {
		v.report("vector-count-zero", n.Pos(), "VectorCountZero pipeline must be a non-grouped, non-sorted vector plan")
	}
}

// checkVectorPlan verifies one vector plan against the FLWOR it annotates:
// the clause chain must contain only whitelisted vector operators, every
// embedded expression must be a vector-compilable scalar, the recorded
// order-by/top-k must re-derive from the AST, and the join flag must match
// the join table.
func (v *verifier) checkVectorPlan(f *ast.FLWOR, vp *VectorPlan, jp *JoinPlan) {
	clauses := v.peel(f)
	grouped := false
	positional := false
	sawOrderBy := false
	var topK int64
	var pruneHead *ast.ForClause
	var pruneRest []ast.Clause

	if vp.Join {
		if jp == nil {
			v.report("vector-operator", f.Pos(), "vector plan sets Join but the FLWOR has no join plan")
			return
		}
		if len(clauses) != len(f.Clauses) {
			v.report("vector-operator", f.Pos(), "vector join plan cannot follow cluster-bound lets")
			return
		}
		if len(clauses) < 3 {
			return // join-head already reported
		}
		for _, keys := range [][]ast.Expr{jp.LeftKeys, jp.RightKeys, jp.Residual} {
			for _, k := range keys {
				v.vectorScalar(k, false)
			}
		}
		positional = true // join output positions are not scan positions
		clauses = clauses[3:]
	} else {
		head, ok := firstFor(clauses)
		if !ok {
			v.report("vector-operator", f.Pos(), "vector plan head is not a for clause")
			return
		}
		if head.AllowEmpty {
			v.report("vector-operator", head.Pos(), "vector scan head allows empty; the backend has no outer-scan operator")
		}
		clauses = clauses[1:]
		pruneHead, pruneRest = head, clauses
	}

	for i := 0; i < len(clauses); i++ {
		switch n := clauses[i].(type) {
		case *ast.LetClause:
			v.vectorScalar(n.Value, false)
		case *ast.WhereClause:
			v.vectorScalar(n.Cond, false)
		case *ast.CountClause:
			positional = true
		case *ast.GroupByClause:
			if i != len(clauses)-1 {
				v.report("vector-operator", n.Pos(), "vector group-by must be the final operator")
			}
			for _, spec := range n.Specs {
				if spec.Expr != nil {
					v.vectorScalar(spec.Expr, false)
				}
			}
			grouped = true
		case *ast.OrderByClause:
			sawOrderBy = true
			if vp.OrderBy != n {
				v.report("vector-topk", n.Pos(), "vector plan's OrderBy does not reference the pipeline's order-by clause")
			}
			for _, spec := range n.Specs {
				v.vectorScalar(spec.Expr, false)
			}
			// The sort ends the pipeline except for the fused top-k tail.
			tail := clauses[i+1:]
			switch len(tail) {
			case 0:
			case 2:
				cc, okC := tail[0].(*ast.CountClause)
				wc, okW := tail[1].(*ast.WhereClause)
				if !okC || !okW {
					v.report("vector-operator", n.Pos(), "vector order-by is followed by non-top-k clauses")
					break
				}
				k, ok := topKBound(wc.Cond, cc.Var)
				if !ok {
					v.report("vector-topk", wc.Pos(), "vector top-k tail does not bound the count variable with a literal rank")
					break
				}
				topK = k
			default:
				v.report("vector-operator", n.Pos(), "vector order-by must end the pipeline (or fuse a count/where top-k tail)")
			}
			i = len(clauses)
		default:
			v.report("vector-operator", clauses[i].Pos(),
				"clause %T is not a whitelisted vector operator (let/where/count/order-by/group-by)", clauses[i])
		}
	}
	v.vectorScalar(f.Return, grouped)

	if vp.Grouped != grouped {
		v.report("vector-operator", f.Pos(), "vector plan Grouped=%v but the pipeline's group-by presence is %v", vp.Grouped, grouped)
	}
	if vp.OrderBy != nil && !sawOrderBy {
		v.report("vector-topk", f.Pos(), "vector plan records an order-by the pipeline does not contain")
	}
	if vp.TopK != 0 || topK != 0 {
		if vp.TopK < 1 {
			v.report("vector-topk", f.Pos(), "vector top-k bound is %d; a fused top-k must keep at least one row", vp.TopK)
		} else if vp.TopK != topK {
			v.report("vector-topk", f.Pos(), "vector plan TopK=%d but the AST derives %d", vp.TopK, topK)
		}
	}
	if vp.Join && jp == nil {
		v.report("vector-operator", f.Pos(), "vector plan sets Join without a join plan")
	}
	if vp.Positional && !positionalEligible(f, vp) {
		v.report("vector-operator", f.Pos(), "vector plan sets Positional but the pipeline binds no scan positions")
	}
	_ = positional

	if len(vp.Prune) > 0 {
		switch {
		case vp.Join || vp.Positional:
			// Skipping segments renumbers scan positions and bypasses the
			// join's consumed where clause: pruning there changes results.
			v.report("vector-prune", f.Pos(), "vector plan pushes prune predicates into a join or positional pipeline")
		case pruneHead == nil:
		default:
			// The recorded predicates must be a prefix of what the AST
			// derives: a shorter prefix only prunes less, but any extra or
			// altered predicate could skip rows the query would keep.
			derived := prunePredicates(pruneHead.Var, pruneRest)
			if len(vp.Prune) > len(derived) {
				v.report("vector-prune", f.Pos(), "vector plan records %d prune predicates but the AST derives only %d", len(vp.Prune), len(derived))
			} else {
				for i, p := range vp.Prune {
					d := derived[i]
					if p.Field != d.Field || p.Op != d.Op ||
						p.Lit == nil || p.Lit.Kind() != d.Lit.Kind() || !item.DeepEqual(p.Lit, d.Lit) {
						v.report("vector-prune", f.Pos(), "prune predicate %d (%s %s) does not re-derive from the AST", i, p.Field, p.Op)
					}
				}
			}
		}
	}

	// The recorded projection must re-derive exactly from the AST: a
	// missing column would make the lane scan skip lanes the pipeline
	// reads, and a spuriously clear AllColumns would run whole-row
	// consumers against projected batches.
	re := &VectorPlan{}
	deriveScanColumns(re, pruneHead, pruneRest, f.Return)
	if vp.AllColumns != re.AllColumns {
		v.report("vector-columns", f.Pos(), "vector plan AllColumns=%v but the AST derives %v", vp.AllColumns, re.AllColumns)
	} else if !vp.AllColumns {
		match := len(vp.Columns) == len(re.Columns)
		if match {
			for i := range vp.Columns {
				if vp.Columns[i] != re.Columns[i] {
					match = false
					break
				}
			}
		}
		if !match {
			v.report("vector-columns", f.Pos(), "vector plan Columns %v does not re-derive from the AST (%v)", vp.Columns, re.Columns)
		}
	}
}

// positionalEligible reports whether the pipeline binds scan positions: a
// positional for variable, a count clause, or a join (whose output
// positions the backend derives from probe order).
func positionalEligible(f *ast.FLWOR, vp *VectorPlan) bool {
	if vp.Join {
		return true
	}
	for _, cl := range f.Clauses {
		switch n := cl.(type) {
		case *ast.ForClause:
			if n.PosVar != "" {
				return true
			}
		case *ast.CountClause:
			return true
		}
	}
	return false
}

// vectorScalar checks that e stays inside the vector backend's scalar
// expression whitelist: literals, variable references, literal-key object
// lookups and constructors, arithmetic, value comparisons, and/or logic,
// and whitelisted scalar builtins — plus, in a grouped return position,
// the foldable aggregates. Anything else is an operator the columnar
// backend does not implement.
func (v *verifier) vectorScalar(e ast.Expr, groupedReturn bool) {
	if e == nil {
		return
	}
	rec := func(ch ast.Expr) { v.vectorScalar(ch, groupedReturn) }
	switch n := e.(type) {
	case *ast.Literal:
	case *ast.VarRef:
	case *ast.ObjectLookup:
		if _, ok := n.Key.(*ast.Literal); !ok {
			v.report("vector-operator", n.Pos(), "vector object lookup key must be a literal")
		}
		rec(n.Input)
	case *ast.Comparison:
		if n.General {
			v.report("vector-operator", n.Pos(), "general comparison is not a vector operator; only value comparisons vectorize")
		}
		rec(n.L)
		rec(n.R)
	case *ast.Arith:
		rec(n.L)
		rec(n.R)
	case *ast.Logic:
		rec(n.L)
		rec(n.R)
	case *ast.Unary:
		rec(n.Operand)
	case *ast.ObjectConstructor:
		for i := range n.Keys {
			if _, ok := n.Keys[i].(*ast.Literal); !ok {
				v.report("vector-operator", n.Pos(), "vector object constructor keys must be literals")
			}
			rec(n.Values[i])
		}
	case *ast.ArrayConstructor:
		rec(n.Body)
	case *ast.FunctionCall:
		if groupedReturn {
			if _, ok := CountOfVar(n); ok {
				return
			}
			if VectorAggregates[n.Name] && len(n.Args) == 1 {
				return // aggregate arguments fold inside the backend
			}
		}
		if !VectorScalarFunctions[n.Name] {
			v.report("vector-operator", n.Pos(), "call %s/%d is not a whitelisted vector scalar function", n.Name, len(n.Args))
			return
		}
		for _, a := range n.Args {
			rec(a)
		}
	default:
		v.report("vector-operator", e.Pos(), "%T is not a vector-compilable expression", e)
	}
}

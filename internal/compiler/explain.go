package compiler

import (
	"fmt"
	"strings"

	"rumble/internal/ast"
	"rumble/internal/item"
)

// Explain renders the analyzed module as a mode-annotated physical plan
// tree: one line per expression node, indented by depth, each carrying the
// execution mode the annotation phase assigned ([Local], [RDD] or
// [DataFrame]). FLWOR clause and object-field lines structure the tree but
// carry no mode of their own.
func Explain(m *ast.Module, info *Info) string {
	return ExplainAnnotated(m, info, nil)
}

// ExplainAnnotated renders the same plan tree with an optional annotation
// per operator line: note is called with the operator's registration key —
// the AST node, clause pointer or join plan the runtime keyed its profile
// operator by — and a non-empty return is appended to the line. A nil note
// (or one that always returns "") reproduces Explain byte for byte, which
// pins the explain goldens.
func ExplainAnnotated(m *ast.Module, info *Info, note func(key any) string) string {
	p := &explainPrinter{info: info, note: note}
	for _, vd := range m.Vars {
		p.line(0, "declare variable $"+vd.Name, nil)
		p.expr(1, ":= ", vd.Init)
	}
	for _, fd := range m.Functions {
		params := make([]string, len(fd.Params))
		for i, prm := range fd.Params {
			params[i] = "$" + prm
		}
		p.line(0, fmt.Sprintf("declare function %s(%s)", fd.Name, strings.Join(params, ", ")), nil)
		p.expr(1, "", fd.Body)
	}
	p.expr(0, "", m.Body)
	return p.b.String()
}

type explainPrinter struct {
	b    strings.Builder
	info *Info
	note func(key any) string
}

// tag appends the annotation for key (if any) to a label that is not
// itself an expression line — clause headers, join nodes, Sort/TopK.
func (p *explainPrinter) tag(label string, key any) string {
	if p.note == nil || key == nil {
		return label
	}
	if s := p.note(key); s != "" {
		return label + "  " + s
	}
	return label
}

// line emits one indented line; when e is non-nil its mode is appended.
// Vector nodes carry the morsel worker-pool size ("[Vector x4]") when the
// executor pool holds more than one slot.
func (p *explainPrinter) line(depth int, label string, e ast.Expr) {
	for i := 0; i < depth; i++ {
		p.b.WriteString("  ")
	}
	p.b.WriteString(label)
	if e != nil {
		m := p.info.ModeOf(e)
		p.b.WriteString(" [")
		p.b.WriteString(m.String())
		if m == ModeVector && p.info.VectorWorkers > 1 {
			fmt.Fprintf(&p.b, " x%d", p.info.VectorWorkers)
		}
		p.b.WriteString("]")
	}
	if p.note != nil && e != nil {
		if s := p.note(e); s != "" {
			p.b.WriteString("  ")
			p.b.WriteString(s)
		}
	}
	p.b.WriteString("\n")
}

// expr renders the node label (prefixed by the structural role) and
// recurses into children one level deeper.
func (p *explainPrinter) expr(depth int, prefix string, e ast.Expr) {
	switch n := e.(type) {
	case nil:
		p.line(depth, prefix+"()", nil)
	case *ast.Literal:
		p.line(depth, prefix+"literal "+string(n.Value.AppendJSON(nil)), n)
	case *ast.VarRef:
		p.line(depth, prefix+"$"+n.Name, n)
	case *ast.ContextItem:
		p.line(depth, prefix+"$$", n)
	case *ast.CommaExpr:
		p.line(depth, prefix+"sequence", n)
		for _, ch := range n.Exprs {
			p.expr(depth+1, "", ch)
		}
	case *ast.ObjectConstructor:
		p.line(depth, prefix+"object", n)
		for i := range n.Keys {
			if lit, ok := n.Keys[i].(*ast.Literal); ok {
				p.expr(depth+1, string(lit.Value.AppendJSON(nil))+": ", n.Values[i])
				continue
			}
			p.line(depth+1, "dynamic field", nil)
			p.expr(depth+2, "key: ", n.Keys[i])
			p.expr(depth+2, "value: ", n.Values[i])
		}
	case *ast.ArrayConstructor:
		p.line(depth, prefix+"array", n)
		if n.Body != nil {
			p.expr(depth+1, "", n.Body)
		}
	case *ast.Unary:
		op := "+"
		if n.Minus {
			op = "-"
		}
		p.line(depth, prefix+"unary "+op, n)
		p.expr(depth+1, "", n.Operand)
	case *ast.Arith:
		p.line(depth, prefix+"arith "+n.Op.String(), n)
		p.expr(depth+1, "", n.L)
		p.expr(depth+1, "", n.R)
	case *ast.RangeExpr:
		p.line(depth, prefix+"range", n)
		p.expr(depth+1, "", n.L)
		p.expr(depth+1, "", n.R)
	case *ast.ConcatExpr:
		p.line(depth, prefix+"concat", n)
		p.expr(depth+1, "", n.L)
		p.expr(depth+1, "", n.R)
	case *ast.Comparison:
		p.line(depth, prefix+"compare "+string(n.Op), n)
		p.expr(depth+1, "", n.L)
		p.expr(depth+1, "", n.R)
	case *ast.Logic:
		op := "or"
		if n.IsAnd {
			op = "and"
		}
		p.line(depth, prefix+op, n)
		p.expr(depth+1, "", n.L)
		p.expr(depth+1, "", n.R)
	case *ast.Predicate:
		p.line(depth, prefix+"predicate", n)
		p.expr(depth+1, "", n.Input)
		p.expr(depth+1, "filter: ", n.Pred)
	case *ast.SimpleMap:
		p.line(depth, prefix+"simple-map", n)
		p.expr(depth+1, "", n.Input)
		p.expr(depth+1, "map: ", n.Mapping)
	case *ast.ObjectLookup:
		if lit, ok := n.Key.(*ast.Literal); ok {
			p.line(depth, prefix+"lookup ."+strings.Trim(string(lit.Value.AppendJSON(nil)), `"`), n)
			p.expr(depth+1, "", n.Input)
			return
		}
		p.line(depth, prefix+"lookup (dynamic)", n)
		p.expr(depth+1, "", n.Input)
		p.expr(depth+1, "key: ", n.Key)
	case *ast.ArrayLookup:
		p.line(depth, prefix+"array-lookup", n)
		p.expr(depth+1, "", n.Input)
		p.expr(depth+1, "index: ", n.Index)
	case *ast.ArrayUnbox:
		p.line(depth, prefix+"unbox", n)
		p.expr(depth+1, "", n.Input)
	case *ast.FunctionCall:
		label := fmt.Sprintf("%scall %s/%d", prefix, n.Name, len(n.Args))
		if p.info.Pushdown[n] {
			label += " (cluster pushdown)"
		}
		p.line(depth, label, n)
		for _, a := range n.Args {
			p.expr(depth+1, "", a)
		}
	case *ast.IfExpr:
		p.line(depth, prefix+"if", n)
		p.expr(depth+1, "cond: ", n.Cond)
		p.expr(depth+1, "then: ", n.Then)
		p.expr(depth+1, "else: ", n.Else)
	case *ast.SwitchExpr:
		p.line(depth, prefix+"switch", n)
		p.expr(depth+1, "input: ", n.Input)
		for _, cs := range n.Cases {
			for _, v := range cs.Values {
				p.expr(depth+1, "case: ", v)
			}
			p.expr(depth+1, "result: ", cs.Result)
		}
		p.expr(depth+1, "default: ", n.Default)
	case *ast.TryCatch:
		p.line(depth, prefix+"try-catch", n)
		p.expr(depth+1, "try: ", n.Try)
		p.expr(depth+1, "catch: ", n.Catch)
	case *ast.Quantified:
		kind := "some"
		if n.Every {
			kind = "every"
		}
		p.line(depth, prefix+kind, n)
		for _, b := range n.Bindings {
			p.expr(depth+1, "$"+b.Var+" in ", b.In)
		}
		p.expr(depth+1, "satisfies: ", n.Satisfies)
	case *ast.InstanceOf:
		p.line(depth, prefix+"instance of "+fmtSeqType(n.Type), n)
		p.expr(depth+1, "", n.Input)
	case *ast.TreatAs:
		p.line(depth, prefix+"treat as "+fmtSeqType(n.Type), n)
		p.expr(depth+1, "", n.Input)
	case *ast.CastableAs:
		p.line(depth, prefix+"castable as "+n.TypeName, n)
		p.expr(depth+1, "", n.Input)
	case *ast.CastAs:
		p.line(depth, prefix+"cast as "+n.TypeName, n)
		p.expr(depth+1, "", n.Input)
	case *ast.FLWOR:
		p.line(depth, prefix+"flwor", n)
		clauses := n.Clauses
		if jp := p.info.Joins[n]; jp != nil {
			p.join(depth+1, jp)
			clauses = clauses[3:] // for, for, where consumed by the join
		}
		vp := p.info.VectorPlans[n]
		for ci := 0; ci < len(clauses); ci++ {
			if ob, ok := clauses[ci].(*ast.OrderByClause); ok && vp != nil && vp.OrderBy == ob {
				// A vectorized order-by runs as a columnar sort operator; a
				// fused top-k absorbs the trailing count + where bound.
				label := "Sort"
				if vp.TopK > 0 {
					label = fmt.Sprintf("TopK(%d)", vp.TopK)
					ci += 2
				}
				p.line(depth+1, p.tag(label, ob), nil)
				p.orderKeys(depth+2, ob)
				continue
			}
			p.clause(depth+1, clauses[ci])
			if ci == 0 && vp != nil {
				if _, ok := clauses[ci].(*ast.ForClause); ok {
					if len(vp.Prune) > 0 {
						p.line(depth+2, "zone-map prune: "+fmtPrune(vp.Prune), nil)
					}
					if !vp.AllColumns && len(vp.Columns) > 0 {
						p.line(depth+2, "columns: "+strings.Join(vp.Columns, ", "), nil)
					}
				}
			}
		}
		p.line(depth+1, "return", nil)
		p.expr(depth+2, "", n.Return)
	default:
		p.line(depth, fmt.Sprintf("%s<%T>", prefix, e), nil)
	}
}

// fmtPrune renders the pushed-down zone-map predicates of a vector scan:
// the conjuncts a segment-backed scan tests against segment zone maps
// before touching any row.
func fmtPrune(preds []PrunePred) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		lit := p.Lit.String()
		if p.Lit.Kind() == item.KindString {
			lit = fmt.Sprintf("%q", string(p.Lit.(item.Str)))
		}
		parts[i] = fmt.Sprintf("%s %s %s", p.Field, p.Op, lit)
	}
	return strings.Join(parts, " and ")
}

// join renders a statically detected equi-join node: the strategy, both
// inputs, the key expression pairs and the residual filter.
func (p *explainPrinter) join(depth int, jp *JoinPlan) {
	label := fmt.Sprintf("Join[%s] for $%s, for $%s", jp.Strategy, jp.Left.Var, jp.Right.Var)
	if jp.Strategy == JoinBroadcast {
		side := "right"
		if jp.BuildLeft {
			side = "left"
		}
		label += " (build: " + side + ")"
	}
	p.line(depth, p.tag(label, jp), nil)
	p.expr(depth+1, "left in: ", jp.Left.In)
	p.expr(depth+1, "right in: ", jp.Right.In)
	for i := range jp.LeftKeys {
		p.line(depth+1, fmt.Sprintf("key %d", i+1), nil)
		p.expr(depth+2, "left: ", jp.LeftKeys[i])
		p.expr(depth+2, "right: ", jp.RightKeys[i])
	}
	for _, res := range jp.Residual {
		p.expr(depth+1, "residual where: ", res)
	}
}

// clause renders one FLWOR clause header plus its key expressions.
func (p *explainPrinter) clause(depth int, cl ast.Clause) {
	switch n := cl.(type) {
	case *ast.ForClause:
		label := "for $" + n.Var
		if n.PosVar != "" {
			label += " at $" + n.PosVar
		}
		if n.AllowEmpty {
			label += " allowing empty"
		}
		p.line(depth, p.tag(label, n), nil)
		p.expr(depth+1, "in: ", n.In)
	case *ast.LetClause:
		label := "let $" + n.Var
		if lp := p.info.RDDLets[n]; lp != nil {
			label += " [cluster-bound"
			if lp.Cache {
				label += ", cached"
			}
			label += "]"
		}
		p.line(depth, p.tag(label, n), nil)
		p.expr(depth+1, ":= ", n.Value)
	case *ast.WhereClause:
		p.line(depth, p.tag("where", n), nil)
		p.expr(depth+1, "", n.Cond)
	case *ast.GroupByClause:
		p.line(depth, p.tag("group by", n), nil)
		for _, spec := range n.Specs {
			if spec.Expr == nil {
				p.line(depth+1, "key $"+spec.Var, nil)
				continue
			}
			p.expr(depth+1, "$"+spec.Var+" := ", spec.Expr)
		}
	case *ast.OrderByClause:
		p.line(depth, p.tag("order by", n), nil)
		p.orderKeys(depth+1, n)
	case *ast.CountClause:
		p.line(depth, p.tag("count $"+n.Var, n), nil)
	}
}

// orderKeys renders the key lines of an order-by clause (or of the Sort /
// TopK operator it vectorizes into).
func (p *explainPrinter) orderKeys(depth int, n *ast.OrderByClause) {
	for _, spec := range n.Specs {
		role := "key"
		if spec.Descending {
			role += " descending"
		}
		if spec.EmptyGreatest {
			role += " empty greatest"
		}
		p.expr(depth, role+": ", spec.Expr)
	}
}

func fmtSeqType(st ast.SequenceType) string {
	if st.EmptySequence {
		return "empty-sequence()"
	}
	return st.ItemType + st.Occurrence
}

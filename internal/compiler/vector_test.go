package compiler

import (
	"testing"

	"rumble/internal/parser"
)

// analyzeVector parses and analyzes q with vectorization on, returning the
// mode of the module body.
func analyzeVector(t *testing.T, q string, cluster bool) Mode {
	t.Helper()
	m, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(m, Options{Cluster: cluster, Vectorize: true})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info.ModeOf(m.Body)
}

func TestVectorEligibility(t *testing.T) {
	eligible := map[string]string{
		"filter project": `for $o in json-file("d.jsonl")
			where $o.score gt 3 return { "s": $o.score }`,
		"group count": `for $o in json-file("d.jsonl")
			group by $t := $o.target return { "t": $t, "n": count($o) }`,
		"group mixed aggregates": `for $o in json-file("d.jsonl")
			group by $t := $o.target
			return { "t": $t, "n": count($o), "s": sum($o.score) }`,
		"lets and logic": `for $o in json-file("d.jsonl")
			let $b := $o.score * 2
			where $b gt 3 and $o.lang eq "fr"
			return $b`,
		"scalar builtin": `for $o in json-file("d.jsonl")
			where contains($o.body, "data") return $o.id`,
		"free variable": `declare variable $min := 3;
			for $o in json-file("d.jsonl") where $o.score ge $min return $o.score`,
		"group by existing variable": `for $o in json-file("d.jsonl")
			let $t := $o.target
			group by $t
			return { "t": $t, "n": count($o) }`,
		"cluster-bound let head": `let $d := json-file("d.jsonl")
			for $x in $d where $x.score ge 100 return $x.body`,
		"order by": `for $o in json-file("d.jsonl")
			order by $o.score return $o.score`,
		"order by descending empty greatest": `for $o in json-file("d.jsonl")
			order by $o.score descending empty greatest, $o.id return $o.id`,
		"fused top-k": `for $o in json-file("d.jsonl")
			order by $o.score descending
			count $c where $c le 10 return $o.id`,
		"positional variable": `for $o at $i in json-file("d.jsonl") return $i`,
		"count clause":        `for $o in json-file("d.jsonl") count $c return $c`,
		"count clause before filter": `for $o in json-file("d.jsonl")
			count $c where $o.score gt 3 return $c`,
		"hash equi-join": `for $o in json-file("a.jsonl")
			for $c in json-file("b.jsonl")
			where $o.k eq $c.k return $o`,
	}
	for name, q := range eligible {
		t.Run("eligible/"+name, func(t *testing.T) {
			if got := analyzeVector(t, q, true); got != ModeVector {
				t.Fatalf("mode = %s, want Vector", got)
			}
		})
	}

	ineligible := map[string]string{
		"allowing empty": `for $o allowing empty in json-file("d.jsonl") return $o`,
		"nested for without equi-predicate": `for $o in json-file("a.jsonl")
			for $c in json-file("b.jsonl")
			return [ $o, $c ]`,
		"count clause after filter": `for $o in json-file("d.jsonl")
			where $o.score gt 3 count $c return $c`,
		"clause after order by": `for $o in json-file("d.jsonl")
			order by $o.score count $c return $c`,
		"top-k bound used in return": `for $o in json-file("d.jsonl")
			order by $o.score count $c where $c le 10 return $c`,
		"general comparison": `for $o in json-file("d.jsonl")
			where $o.tags = "x" return $o`,
		"dynamic lookup key": `for $o in json-file("d.jsonl")
			return $o.($o.key)`,
		"non-whitelisted function": `for $o in json-file("d.jsonl")
			where matches($o.body, "x.*y") return $o`,
		"group var materialized outside aggregate": `for $o in json-file("d.jsonl")
			group by $t := $o.target
			return { "t": $t, "all": [ $o ] }`,
		"clause after group": `for $o in json-file("d.jsonl")
			group by $t := $o.target
			order by $t
			return $t`,
		"udf call": `declare function hot($c) { $c.score ge 3 };
			for $o in json-file("d.jsonl") where hot($o) return $o`,
	}
	for name, q := range ineligible {
		t.Run("ineligible/"+name, func(t *testing.T) {
			if got := analyzeVector(t, q, true); got == ModeVector {
				t.Fatalf("mode = Vector, want non-vector")
			}
		})
	}
}

// TestVectorWithoutCluster pins that vector eligibility does not depend on
// a cluster: a purely local pipeline still upgrades from Local to Vector.
func TestVectorWithoutCluster(t *testing.T) {
	q := `for $o in json-file("d.jsonl") where $o.score gt 3 return $o.score`
	if got := analyzeVector(t, q, false); got != ModeVector {
		t.Fatalf("mode without cluster = %s, want Vector", got)
	}
	// And without the option, nothing changes.
	m, err := parser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(m, Options{Cluster: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.ModeOf(m.Body); got != ModeDataFrame {
		t.Fatalf("mode with vectorize off = %s, want DataFrame", got)
	}
}

// TestVectorParallel pins that ModeVector is a local mode: the runtime
// must materialize it through Stream, never through an RDD.
func TestVectorParallel(t *testing.T) {
	if ModeVector.Parallel() {
		t.Fatal("ModeVector.Parallel() = true, want false")
	}
	if ModeVector.String() != "Vector" {
		t.Fatalf("ModeVector.String() = %q", ModeVector.String())
	}
}

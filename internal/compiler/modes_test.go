package compiler

import (
	"testing"

	"rumble/internal/ast"
	"rumble/internal/parser"
)

// annotateSrc parses and analyzes src, returning the module and info.
func annotateSrc(t *testing.T, src string, cluster bool) (*ast.Module, *Info) {
	t.Helper()
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	info, err := Analyze(m, Options{Cluster: cluster})
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return m, info
}

func TestModeAnnotationTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Mode
	}{
		{"local arithmetic", `1 + 2 * 3`, ModeLocal},
		{"local sequence", `(1, 2, 3)`, ModeLocal},
		{"local flwor", `for $x in (1, 2) return $x + 1`, ModeLocal},
		{"json-file seeds RDD", `json-file("data.jsonl")`, ModeRDD},
		{"parallelize seeds RDD", `parallelize(1 to 100)`, ModeRDD},
		{"collection seeds RDD", `collection("c")`, ModeRDD},
		{"lookup preserves RDD", `json-file("f").guess`, ModeRDD},
		{"path chain preserves RDD", `json-file("f").nested.arr[].x`, ModeRDD},
		{"predicate preserves RDD", `json-file("f")[$$.score gt 2]`, ModeRDD},
		{"simple map preserves RDD", `json-file("f") ! $$.target`, ModeRDD},
		{"distinct-values preserves RDD", `distinct-values(json-file("f").lang)`, ModeRDD},
		{"distinct-values local input", `distinct-values((1, 2, 2))`, ModeLocal},
		{"rdd comma union", `(json-file("a"), json-file("b"))`, ModeRDD},
		{"mixed comma degrades", `(1, json-file("a"))`, ModeLocal},
		{"rdd-backed flwor is DataFrame", `for $o in json-file("f") where $o.guess eq $o.target return $o`, ModeDataFrame},
		{"group-by flwor is DataFrame", `for $o in json-file("f") group by $k := $o.target return { "k": $k, "n": count($o) }`, ModeDataFrame},
		{"leading let keeps flwor local", `let $p := "f" return for $o in json-file($p) return $o`, ModeLocal},
		{"allowing empty keeps flwor local", `for $o allowing empty in json-file("f") return $o`, ModeLocal},
		{"aggregate stays local", `count(json-file("f"))`, ModeLocal},
		{"if with parallel branch is RDD", `if (1 eq 1) then json-file("f") else ()`, ModeRDD},
		{"if with local branches stays local", `if (1 eq 1) then 1 else 2`, ModeLocal},
		{"udf call stays local", `declare function local:f($x) { json-file($x) }; local:f("f")`, ModeLocal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, info := annotateSrc(t, tc.src, true)
			if got := info.ModeOf(m.Body); got != tc.want {
				t.Errorf("mode = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestModeAnnotationWithoutCluster(t *testing.T) {
	// Without a cluster context every expression degrades to ModeLocal.
	sources := []string{
		`json-file("data.jsonl")`,
		`for $o in json-file("f") return $o`,
		`(json-file("a"), json-file("b"))`,
	}
	for _, src := range sources {
		m, info := annotateSrc(t, src, false)
		if got := info.ModeOf(m.Body); got != ModeLocal {
			t.Errorf("mode of %q without cluster = %v, want Local", src, got)
		}
		for _, mode := range info.Modes {
			if mode != ModeLocal {
				t.Errorf("%q: node annotated %v without a cluster", src, mode)
			}
		}
	}
}

func TestAggregatePushdownMarked(t *testing.T) {
	m, info := annotateSrc(t, `count(json-file("f"))`, true)
	call, ok := m.Body.(*ast.FunctionCall)
	if !ok {
		t.Fatalf("body is %T, want FunctionCall", m.Body)
	}
	if !info.Pushdown[call] {
		t.Error("count over an RDD argument should be marked for pushdown")
	}

	m2, info2 := annotateSrc(t, `count((1, 2, 3))`, true)
	call2 := m2.Body.(*ast.FunctionCall)
	if info2.Pushdown[call2] {
		t.Error("count over a local argument must not be marked for pushdown")
	}
}

func TestAggregatePushdownOverDataFrameFLWOR(t *testing.T) {
	// The paper's figure-14 query shape: count over a DataFrame FLWOR.
	m, info := annotateSrc(t,
		`count(for $c in json-file("f") where $c.score gt 1500 return $c)`, true)
	call := m.Body.(*ast.FunctionCall)
	if !info.Pushdown[call] {
		t.Error("count over a DataFrame FLWOR should push down")
	}
	if got := info.ModeOf(call.Args[0]); got != ModeDataFrame {
		t.Errorf("inner FLWOR mode = %v, want DataFrame", got)
	}
}

func TestModeOfSubexpressions(t *testing.T) {
	// Inside a DataFrame FLWOR the clause bodies are compiled for local
	// per-tuple evaluation inside closures: their expressions are Local
	// even though the FLWOR itself runs on DataFrames.
	m, info := annotateSrc(t,
		`for $o in json-file("f") where $o.guess eq $o.target return $o.lang`, true)
	fl := m.Body.(*ast.FLWOR)
	if got := info.ModeOf(fl); got != ModeDataFrame {
		t.Fatalf("flwor mode = %v, want DataFrame", got)
	}
	forIn := fl.Clauses[0].(*ast.ForClause).In
	if got := info.ModeOf(forIn); got != ModeRDD {
		t.Errorf("for input mode = %v, want RDD", got)
	}
	cond := fl.Clauses[1].(*ast.WhereClause).Cond
	if got := info.ModeOf(cond); got != ModeLocal {
		t.Errorf("where condition mode = %v, want Local", got)
	}
	if got := info.ModeOf(fl.Return); got != ModeLocal {
		t.Errorf("return expression mode = %v, want Local", got)
	}
}

func TestRDDLetAnnotation(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		wantLets  int  // cluster-bound lets detected
		wantCache bool // ... of which the first is cached
		wantMode  Mode // mode of the whole FLWOR
	}{
		{"single use binds uncached", `let $d := json-file("f") return count($d)`, 1, false, ModeLocal},
		{"multi use binds cached", `let $d := json-file("f") return (count($d), sum($d))`, 1, true, ModeLocal},
		{"for over let heads DataFrame", `let $d := json-file("f") for $x in $d return $x`, 1, false, ModeDataFrame},
		{"local let not hoisted", `let $p := 1 return $p`, 0, false, ModeLocal},
		{"let after for not hoisted", `for $x in json-file("f") let $y := json-file("g") return $y`, 0, false, ModeDataFrame},
		{"group-by excludes hoist", `let $d := json-file("f") for $x in json-file("g") group by $k := $x.k return count($d)`, 0, false, ModeLocal},
		{"two leading lets both hoist", `let $a := json-file("f") let $b := json-file("g") return (count($a), count($b))`, 2, false, ModeLocal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, info := annotateSrc(t, tc.src, true)
			if got := len(info.RDDLets); got != tc.wantLets {
				t.Fatalf("RDDLets = %d, want %d", got, tc.wantLets)
			}
			fl := m.Body.(*ast.FLWOR)
			if got := info.ModeOf(fl); got != tc.wantMode {
				t.Errorf("flwor mode = %v, want %v", got, tc.wantMode)
			}
			if tc.wantLets > 0 {
				first := fl.Clauses[0].(*ast.LetClause)
				lp := info.RDDLets[first]
				if lp == nil {
					t.Fatal("leading let not marked")
				}
				if lp.Cache != tc.wantCache {
					t.Errorf("cache = %v (uses %d), want %v", lp.Cache, lp.Uses, tc.wantCache)
				}
			}
		})
	}
}

func TestRDDLetVarRefMode(t *testing.T) {
	// References to a cluster-bound let are RDD; a shadowing local
	// re-binding flips later references back to Local.
	m, info := annotateSrc(t, `
		let $x := json-file("f")
		let $x := count($x)
		return $x`, true)
	fl := m.Body.(*ast.FLWOR)
	inner := fl.Clauses[1].(*ast.LetClause).Value.(*ast.FunctionCall).Args[0]
	if got := info.ModeOf(inner); got != ModeRDD {
		t.Errorf("reference to cluster-bound let = %v, want RDD", got)
	}
	if got := info.ModeOf(fl.Return); got != ModeLocal {
		t.Errorf("reference to shadowing local let = %v, want Local", got)
	}
	// Without a cluster nothing hoists and the reference stays local.
	_, noCluster := annotateSrc(t, `let $x := json-file("f") return count($x)`, false)
	if len(noCluster.RDDLets) != 0 {
		t.Error("RDD let detected without a cluster")
	}
}

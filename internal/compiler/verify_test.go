package compiler

import (
	"strings"
	"testing"

	"rumble/internal/ast"
	"rumble/internal/parser"
)

// analyzeQuery parses and analyzes one query, failing the test on either
// static error — the corruption tests need a valid plan to start from.
func analyzeQuery(t *testing.T, q string, opts Options) (*ast.Module, *Info) {
	t.Helper()
	m, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, q)
	}
	info, err := Analyze(m, opts)
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, q)
	}
	return m, info
}

func body(t *testing.T, m *ast.Module) *ast.FLWOR {
	t.Helper()
	f, ok := m.Body.(*ast.FLWOR)
	if !ok {
		t.Fatalf("module body is %T, want *ast.FLWOR", m.Body)
	}
	return f
}

const vectorTopKQuery = `for $x in (1 to 100) order by $x descending count $c where $c le 10 return $x`

const joinQuery = `for $a in parallelize(({"k": 1, "v": "x"}, {"k": 2, "v": "y"}))
for $b in parallelize(({"k": 2, "w": "p"}))
where $a.k eq $b.k
return $a.v || $b.w`

// TestVerifyCleanPlans pins that Verify accepts what Analyze produces
// across every backend the compiler can choose.
func TestVerifyCleanPlans(t *testing.T) {
	queries := []struct {
		name string
		q    string
		opts Options
	}{
		{"local scalar", `1 + 2`, Options{}},
		{"local flwor", `for $x in (1, 2, 3) where $x gt 1 return $x * 2`, Options{}},
		{"dataframe", `for $x in parallelize((1, 2, 3)) return $x`, Options{Cluster: true}},
		{"rdd predicate", `parallelize((1, 2, 3))[$$ gt 1]`, Options{Cluster: true}},
		{"join", joinQuery, Options{Cluster: true}},
		{"vector pipeline", `for $x in (1 to 50) where $x mod 2 eq 0 return {"v": $x}`, Options{Vectorize: true}},
		{"vector group", `for $x in (1 to 50) group by $k := $x mod 3 return count($x)`, Options{Vectorize: true}},
		{"vector topk", vectorTopKQuery, Options{Vectorize: true}},
		{"vector grand aggregate", `sum(for $x in (1 to 50) where $x gt 10 return $x)`, Options{Vectorize: true}},
		{"vector count zero", `count(for $x in (1 to 50) where $x gt 100 return $x) eq 0`, Options{Vectorize: true}},
		{"vector join", joinQuery, Options{Cluster: true, Vectorize: true}},
		{"udf and globals", `declare variable $n := 3; declare function local:sq($x) { $x * $x }; local:sq($n)`, Options{}},
	}
	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			m, info := analyzeQuery(t, tc.q, tc.opts)
			if err := Verify(m, info); err != nil {
				t.Fatalf("clean plan rejected: %v", err)
			}
		})
	}
}

// TestVerifyCorruptedPlans hand-corrupts valid analysis results the way a
// compiler bug would and demands the named diagnostic code for each.
func TestVerifyCorruptedPlans(t *testing.T) {
	cases := []struct {
		name     string
		q        string
		opts     Options
		corrupt  func(t *testing.T, m *ast.Module, info *Info)
		wantCode string
	}{
		{
			name: "erased mode annotation",
			q:    `1 + 2`,
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				delete(info.Modes, m.Body)
			},
			wantCode: "mode-unannotated",
		},
		{
			name: "predicate mode contradicts input",
			q:    `(1 to 5)[$$ gt 3]`,
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.Modes[m.Body] = ModeRDD
			},
			wantCode: "mode-child",
		},
		{
			name: "rdd predicate demoted to local",
			q:    `parallelize((1, 2, 3))[$$ gt 1]`,
			opts: Options{Cluster: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.Modes[m.Body] = ModeLocal
			},
			wantCode: "mode-child",
		},
		{
			name: "dataframe head input not parallel",
			q:    `for $x in parallelize((1, 2, 3)) return $x`,
			opts: Options{Cluster: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				head := body(t, m).Clauses[0].(*ast.ForClause)
				info.Modes[head.In] = ModeLocal
			},
			wantCode: "mode-dataframe-head",
		},
		{
			name: "vector mode without plan",
			q:    `for $x in (1 to 50) where $x gt 2 return $x`,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				delete(info.VectorPlans, body(t, m))
			},
			wantCode: "vector-plan-missing",
		},
		{
			name: "vector plan on non-vector mode",
			q:    `for $x in (1 to 50) where $x gt 2 return $x`,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.Modes[m.Body] = ModeLocal
			},
			wantCode: "vector-plan-orphan",
		},
		{
			name: "non-whitelisted call in vector pipeline",
			q:    `for $x in (1 to 50) where $x gt 2 return string($x)`,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				body(t, m).Return.(*ast.FunctionCall).Name = "serialize"
			},
			wantCode: "vector-operator",
		},
		{
			name: "zero top-k bound",
			q:    vectorTopKQuery,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.VectorPlans[body(t, m)].TopK = 0
			},
			wantCode: "vector-topk",
		},
		{
			name: "top-k bound disagrees with AST",
			q:    vectorTopKQuery,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.VectorPlans[body(t, m)].TopK = 3
			},
			wantCode: "vector-topk",
		},
		{
			name: "join with no key pairs",
			q:    joinQuery,
			opts: Options{Cluster: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				jp := info.Joins[body(t, m)]
				jp.LeftKeys, jp.RightKeys = nil, nil
			},
			wantCode: "join-keys",
		},
		{
			name: "join key arity mismatch",
			q:    joinQuery,
			opts: Options{Cluster: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				jp := info.Joins[body(t, m)]
				jp.RightKeys = append(jp.RightKeys, jp.RightKeys[0])
			},
			wantCode: "join-keys",
		},
		{
			name: "unknown join strategy",
			q:    joinQuery,
			opts: Options{Cluster: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.Joins[body(t, m)].Strategy = JoinStrategy(7)
			},
			wantCode: "join-strategy",
		},
		{
			name: "hash join with build-left flag",
			q:    joinQuery,
			opts: Options{Cluster: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				jp := info.Joins[body(t, m)]
				jp.Strategy = JoinHash
				jp.BuildLeft = true
			},
			wantCode: "join-strategy",
		},
		{
			name: "projected column dropped",
			q:    `for $o in ({"a": 1, "b": 2}, {"a": 3, "b": 4}) where $o.a gt 0 return $o.b`,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				vp := info.VectorPlans[body(t, m)]
				if vp.AllColumns || len(vp.Columns) != 2 {
					t.Fatalf("expected a two-column projection, got AllColumns=%v Columns=%v", vp.AllColumns, vp.Columns)
				}
				vp.Columns = vp.Columns[:1]
			},
			wantCode: "vector-columns",
		},
		{
			name: "all-columns flag cleared on whole-row plan",
			q:    `for $x in (1 to 50) where $x gt 2 return $x`,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				info.VectorPlans[body(t, m)].AllColumns = false
			},
			wantCode: "vector-columns",
		},
		{
			name: "vector agg over grouped pipeline",
			q:    `sum(for $x in (1 to 50) where $x gt 10 return $x)`,
			opts: Options{Vectorize: true},
			corrupt: func(t *testing.T, m *ast.Module, info *Info) {
				call := m.Body.(*ast.FunctionCall)
				info.VectorPlans[call.Args[0].(*ast.FLWOR)].Grouped = true
			},
			wantCode: "vector-agg",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, info := analyzeQuery(t, tc.q, tc.opts)
			if err := Verify(m, info); err != nil {
				t.Fatalf("plan not clean before corruption: %v", err)
			}
			tc.corrupt(t, m, info)
			err := Verify(m, info)
			if err == nil {
				t.Fatalf("corrupted plan verified clean")
			}
			ve, ok := err.(*VerifyError)
			if !ok {
				t.Fatalf("got %T, want *VerifyError", err)
			}
			found := false
			for _, d := range ve.Diags {
				if d.Code == tc.wantCode {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %q diagnostic in: %v", tc.wantCode, err)
			}
			if !strings.Contains(err.Error(), tc.wantCode) {
				t.Fatalf("error text does not carry the code: %v", err)
			}
		})
	}
}

// Package ctxpoll enforces cooperative cancellation in data loops.
//
// Evaluation is cancellable only because every driving loop polls the Go
// context at checkpoints (PR 3): local iterators check dc.GoContext()
// periodically, cluster task loops poll through spark.WithCancel. A new
// iterator whose loop forgets the checkpoint compiles fine and hangs a
// server slot until the query finishes — the class of bug this analyzer
// makes impossible.
//
// The rule: every function whose body contains a loop that directly calls
// a yield-style callback (the push-based streaming protocol of
// internal/runtime and internal/spark) must reach a cancellation
// checkpoint. Reaching one means any of:
//
//   - polling directly: referencing GoContext, cancelOf, WithCancel, or
//     calling Err on a context;
//   - delegating to a child that polls: calling a Stream, streamTuples,
//     StreamRaw, compute, runStage, or runOnce method — the loop drains a
//     source that checkpoints itself;
//   - materializing through the runtime first: Materialize, MaterializeN,
//     CollectRDD and RDD Scan all pass through checkpointing streams, and a
//     loop emitting an already-materialized sequence is bounded by it.
//
// Loops that are provably bounded and checkpoint-free on purpose carry
//
//	//rumble:ctxpoll-ok <why the loop cannot run unbounded>
//
// on the loop line or the line above.
package ctxpoll

import (
	"go/ast"

	"rumble/internal/analysis"
)

// Analyzer is the ctxpoll pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "every yield-driving loop must reach a GoContext cancellation checkpoint (directly or by delegating to a checkpointing child)",
	Run:  run,
}

// checkpointNames are identifiers whose presence in a function marks a
// direct cancellation checkpoint.
var checkpointNames = map[string]bool{
	"GoContext":  true, // dc.GoContext() resolution
	"cancelOf":   true, // runtime's ctx→poll adapter
	"WithCancel": true, // spark's cooperative task-loop wrapper
	"Err":        true, // ctx.Err() polling
}

// delegationNames are method calls that hand iteration to a child which
// performs its own checkpointing.
var delegationNames = map[string]bool{
	"Stream":       true,
	"streamTuples": true,
	"StreamRaw":    true,
	"compute":      true,
	"runStage":     true,
	"runOnce":      true, // shuffle exchange: runs a checkpointing stage
	"Materialize":  true,
	"MaterializeN": true,
	"CollectRDD":   true,
	"Scan":         true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			loops := yieldLoops(fd.Body)
			if len(loops) == 0 {
				continue
			}
			if hasCheckpoint(fd.Body) {
				continue
			}
			for _, loop := range loops {
				if analysis.Suppress(pass, "ctxpoll", loop.Pos()) {
					continue
				}
				pass.Reportf(loop.Pos(),
					"yield loop in %s has no reachable GoContext cancellation checkpoint; poll ctx.Err (or delegate to a checkpointing Stream/compute) or annotate //rumble:ctxpoll-ok <why bounded>",
					fd.Name.Name)
			}
		}
	}
	return nil
}

// yieldLoops returns the outermost for/range statements under body whose
// body calls an identifier named yield. Nested loops inside a flagged loop
// are the same finding, so the walk does not descend into them.
func yieldLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		if callsYield(loopBody) {
			loops = append(loops, n.(ast.Stmt))
			return false
		}
		return true
	})
	return loops
}

// callsYield reports whether any call to an identifier named "yield"
// appears under n (the streaming callback convention of this codebase).
func callsYield(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "yield" {
			found = true
		}
		return !found
	})
	return found
}

// hasCheckpoint reports whether the function body references a direct
// checkpoint or delegates to a checkpointing child anywhere.
func hasCheckpoint(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if checkpointNames[e.Sel.Name] || delegationNames[e.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if checkpointNames[e.Name] || delegationNames[e.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

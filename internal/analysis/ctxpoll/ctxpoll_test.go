package ctxpoll_test

import (
	"testing"

	"rumble/internal/analysis/analysistest"
	"rumble/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpoll.Analyzer, "ctxpoll")
}

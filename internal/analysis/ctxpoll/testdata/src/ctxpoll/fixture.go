package fixture

import "context"

type source struct{}

func (source) Stream(yield func(int) bool) {}

func bad(items []int, yield func(int) bool) {
	for _, it := range items { // want "cancellation checkpoint"
		if !yield(it) {
			return
		}
	}
}

func polled(ctx context.Context, items []int, yield func(int) bool) {
	for i, it := range items {
		if i&63 == 0 && ctx.Err() != nil {
			return
		}
		if !yield(it) {
			return
		}
	}
}

func drains(s source, yield func(int) bool) {
	var buf []int
	s.Stream(func(v int) bool {
		buf = append(buf, v)
		return true
	})
	for _, v := range buf {
		if !yield(v) {
			return
		}
	}
}

func bounded(yield func(int) bool) {
	//rumble:ctxpoll-ok loop is bounded at three iterations
	for i := 0; i < 3; i++ {
		if !yield(i) {
			return
		}
	}
}

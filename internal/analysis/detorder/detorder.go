// Package detorder forbids ranging over maps in deterministic-order paths.
//
// The engine guarantees bit-identical emit order at every worker count:
// morsel results merge in scan-index order, shuffle consumers replay
// buckets, and conformance pins results across Executors ∈ {1,2,8}. A
// `range` over a map silently breaks that guarantee — Go randomizes map
// iteration order per run — so in the packages that uphold ordered emit
// (internal/runtime, internal/vector, internal/spark) every map iteration
// must either follow a recorded deterministic order (first-seen slice,
// sorted keys) or carry an explicit escape:
//
//	//rumble:nondeterministic-ok <why the order cannot be observed>
//
// on the range line or the line above. The justification is mandatory.
package detorder

import (
	"go/ast"
	"go/types"

	"rumble/internal/analysis"
)

// Analyzer is the detorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "forbid range-over-map in deterministic-order packages (emit order must be bit-identical at every worker count)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if analysis.Suppress(pass, "nondeterministic", rs.Pos()) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s iterates in nondeterministic order; emit through a recorded order (first-seen slice, sorted keys) or annotate //rumble:nondeterministic-ok <why>",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}

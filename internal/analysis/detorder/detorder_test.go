package detorder_test

import (
	"testing"

	"rumble/internal/analysis/analysistest"
	"rumble/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "detorder")
}

package fixture

func emit(m map[string]int, order []string, yield func(int)) {
	for _, k := range order {
		yield(m[k])
	}
	for k, v := range m { // want "nondeterministic order"
		_, _ = k, v
	}
}

func escaped(m map[string]int) int {
	total := 0
	//rumble:nondeterministic-ok summing is commutative, order cannot be observed
	for _, v := range m {
		total += v
	}
	return total
}

func escapedNoReason(m map[string]int) {
	//rumble:nondeterministic-ok
	for range m { // want "requires a justification"
	}
}

func slices(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

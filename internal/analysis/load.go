package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package — the unit analyzers run on.
type Package struct {
	Fset      *token.FileSet
	Path      string
	Dir       string
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Escapes   *Escapes
}

// Loader parses and type-checks packages of one module without any external
// tooling: imports inside the module resolve by directory under the module
// root, standard-library imports resolve through the toolchain's source
// importer (GOROOT), and everything else is rejected — the module is
// dependency-free by policy, so an unknown import is itself a finding.
//
// A Loader caches type-checked packages, so one process-wide instance
// type-checks shared dependencies (internal/item, internal/ast, ...) once.
// Loaders are not safe for concurrent use.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string

	std  types.Importer
	pkgs map[string]*types.Package
}

// NewLoader builds a loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks GOROOT packages from source; with cgo
	// disabled every std package resolves to its pure-Go fallback, which is
	// all the type information the analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths load from source
// under the module root, the rest defers to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := l.ModRoot
		if path != l.ModPath {
			dir = filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
		}
		pkg, err := l.check(dir, path, nil, nil)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir under import path, with
// full expression type information for the analyzers. Test files are
// excluded: the invariants gate shipped code.
func (l *Loader) Load(dir, path string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var files []*ast.File
	pkg, err := l.check(dir, path, info, &files)
	if err != nil {
		return nil, err
	}
	// Cache only if nothing imported this path yet: overwriting would hand
	// later packages a second, non-identical copy of the same types.
	if _, ok := l.pkgs[path]; !ok {
		l.pkgs[path] = pkg
	}
	return &Package{
		Fset:      l.Fset,
		Path:      path,
		Dir:       dir,
		Syntax:    files,
		Types:     pkg,
		TypesInfo: info,
		Escapes:   collectEscapes(l.Fset, files),
	}, nil
}

// check parses the non-test Go files of dir and type-checks them as package
// path. When info/filesOut are non-nil they receive the detailed results.
func (l *Loader) check(dir, path string, info *types.Info, filesOut *[]*ast.File) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: %s: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect the first error below, keep going
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	if filesOut != nil {
		*filesOut = files
	}
	return pkg, nil
}

package metricsreg_test

import (
	"testing"

	"rumble/internal/analysis/analysistest"
	"rumble/internal/analysis/metricsreg"
)

func TestMetricsReg(t *testing.T) {
	analysistest.Run(t, "testdata", metricsreg.Analyzer, "metricsreg")
}

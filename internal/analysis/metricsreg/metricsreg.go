// Package metricsreg keeps the spark metric registry consistent.
//
// A metric counter is only useful when it flows all the way out: the
// atomic field in spark.Metrics must be read by the Metrics() snapshot
// method, zeroed by ResetMetrics(), and carried by an exported
// MetricsSnapshot field (the /metrics endpoint marshals the whole snapshot
// struct, so an unexported field silently disappears from the rendering).
// PRs 5–6 each added counters to all three places by hand; this analyzer
// makes the compiler... the linter... do the remembering.
//
// The pass runs on any package declaring a struct named Metrics with
// atomic counter fields; packages without one are skipped, so the analyzer
// is safe to run everywhere.
package metricsreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rumble/internal/analysis"
)

// Analyzer is the metricsreg pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricsreg",
	Doc:  "every Metrics counter field must be snapshotted in Metrics(), zeroed in ResetMetrics(), and exported in MetricsSnapshot",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	metrics := findStruct(pass, "Metrics")
	if metrics == nil {
		return nil
	}
	counters := atomicFields(metrics)
	if len(counters) == 0 {
		return nil
	}
	snapshotFn := findFunc(pass, "Metrics")
	resetFn := findFunc(pass, "ResetMetrics")

	if snapshotFn == nil {
		pass.Reportf(metrics.pos, "package declares a Metrics counter struct but no Metrics() snapshot method")
	} else {
		read := fieldCalls(snapshotFn, "Load")
		for _, f := range counters {
			if !read[f.name] {
				pass.Reportf(f.pos, "metric field %s is never Load-ed in the Metrics() snapshot; it cannot reach /metrics", f.name)
			}
		}
	}
	if resetFn == nil {
		pass.Reportf(metrics.pos, "package declares a Metrics counter struct but no ResetMetrics()")
	} else {
		stored := fieldCalls(resetFn, "Store")
		for _, f := range counters {
			if !stored[f.name] {
				pass.Reportf(f.pos, "metric field %s is never Store-d in ResetMetrics(); resets leave it running", f.name)
			}
		}
	}
	if snap := findStruct(pass, "MetricsSnapshot"); snap != nil {
		for _, f := range snap.fields {
			if !ast.IsExported(f.name) {
				pass.Reportf(f.pos, "MetricsSnapshot field %s is unexported; JSON marshalling drops it from the /metrics rendering", f.name)
			}
		}
		if snapshotFn != nil {
			assigned := literalKeys(snapshotFn)
			for _, f := range snap.fields {
				if !assigned[f.name] {
					pass.Reportf(f.pos, "MetricsSnapshot field %s is never assigned in the Metrics() snapshot literal", f.name)
				}
			}
		}
	}
	return nil
}

type structInfo struct {
	pos    token.Pos
	fields []fieldInfo
	typ    *ast.StructType
}

type fieldInfo struct {
	name   string
	pos    token.Pos
	atomic bool
}

// findStruct locates a package-level struct type declaration by name.
func findStruct(pass *analysis.Pass, name string) *structInfo {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := &structInfo{pos: ts.Pos(), typ: st}
				for _, fld := range st.Fields.List {
					atomic := isAtomicCounter(pass, fld.Type)
					for _, id := range fld.Names {
						info.fields = append(info.fields, fieldInfo{name: id.Name, pos: id.Pos(), atomic: atomic})
					}
				}
				return info
			}
		}
	}
	return nil
}

// atomicFields filters a struct's fields to the atomic counters.
func atomicFields(s *structInfo) []fieldInfo {
	var out []fieldInfo
	for _, f := range s.fields {
		if f.atomic {
			out = append(out, f)
		}
	}
	return out
}

// isAtomicCounter reports whether the field type is a sync/atomic counter
// (atomic.Int64, atomic.Int32, atomic.Uint64, ...) or a fixed-size array
// of them — a histogram bucket array is a counter set and must flow
// through the snapshot/reset/rendering machinery like any scalar.
func isAtomicCounter(pass *analysis.Pass, t ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[t]
	if !ok {
		return false
	}
	return isAtomicType(tv.Type)
}

func isAtomicType(t types.Type) bool {
	if arr, ok := t.(*types.Array); ok {
		return isAtomicType(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	name := named.Obj().Name()
	return strings.HasPrefix(name, "Int") || strings.HasPrefix(name, "Uint")
}

// findFunc locates a package-level function or method by name.
func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// fieldCalls collects the field names X on which <recv>.<X>.<method>()
// or <recv>.<X>[i].<method>() (a bucket-array element) is called
// anywhere in fn.
func fieldCalls(fn *ast.FuncDecl, method string) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		recv := sel.X
		if idx, ok := recv.(*ast.IndexExpr); ok {
			recv = idx.X
		}
		if field, ok := recv.(*ast.SelectorExpr); ok {
			out[field.Sel.Name] = true
		}
		return true
	})
	return out
}

// literalKeys collects the field keys assigned in composite literals in fn.
func literalKeys(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

package fixture

import "sync/atomic"

type Metrics struct {
	Good    atomic.Int64
	NoLoad  atomic.Int64 // want "never Load-ed"
	NoReset atomic.Int64 // want "never Store-d"
}

type MetricsSnapshot struct {
	Good      int64
	hidden    int64 // want "unexported"
	NotFilled int64 // want "never assigned"
}

func (m *Metrics) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Good:   m.Good.Load(),
		hidden: m.NoReset.Load(),
	}
}

func (m *Metrics) ResetMetrics() {
	m.Good.Store(0)
	m.NoLoad.Store(0)
}

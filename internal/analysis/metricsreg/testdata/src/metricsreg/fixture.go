package fixture

import "sync/atomic"

type Metrics struct {
	Good    atomic.Int64
	NoLoad  atomic.Int64 // want "never Load-ed"
	NoReset atomic.Int64 // want "never Store-d"

	// Histogram bucket arrays are counter sets too: an unregistered one
	// silently drops a whole histogram from /metrics.
	GoodHist  [4]atomic.Int64
	GhostHist [4]atomic.Int64 // want "never Load-ed" "never Store-d"
	NoOffHist [4]atomic.Int64 // want "never Store-d"
}

type MetricsSnapshot struct {
	Good      int64
	hidden    int64 // want "unexported"
	NotFilled int64 // want "never assigned"
}

func (m *Metrics) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		Good:   m.Good.Load(),
		hidden: m.NoReset.Load(),
	}
	for i := 0; i < 4; i++ {
		_ = m.GoodHist[i].Load()
		_ = m.NoOffHist[i].Load()
	}
	return snap
}

func (m *Metrics) ResetMetrics() {
	m.Good.Store(0)
	m.NoLoad.Store(0)
	for i := 0; i < 4; i++ {
		m.GoodHist[i].Store(0)
	}
}

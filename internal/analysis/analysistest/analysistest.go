// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want "substring" comments, the same contract
// as golang.org/x/tools/go/analysis/analysistest but implemented on the
// repository's dependency-free framework.
//
// Fixture layout: <testdata>/src/<pkg>/*.go. A line expecting diagnostics
// carries a trailing comment of the form
//
//	// want "substr" "other substr"
//
// and the test fails when a want has no matching diagnostic on its line or
// a diagnostic has no matching want.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rumble/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> relative to the test's working directory,
// runs the analyzer over it, and checks the diagnostics against the
// fixture's want comments. It returns the diagnostics for further checks.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) []analysis.Diagnostic {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loaded, err := loader.Load(dir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(loaded, a)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, dir)
	matched := map[int]bool{} // index into diags
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q (got %v)", w.file, w.line, w.substr, onLine(diags, w.file, w.line))
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	return diags
}

type want struct {
	file   string
	line   int
	substr string
}

// collectWants scans the fixture sources for // want comments.
func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				wants = append(wants, want{file: path, line: i + 1, substr: q[1]})
			}
		}
	}
	return wants
}

func onLine(diags []analysis.Diagnostic, file string, line int) []string {
	var out []string
	for _, d := range diags {
		if d.Pos.Filename == file && d.Pos.Line == line {
			out = append(out, d.Message)
		}
	}
	if len(out) == 0 {
		return []string{fmt.Sprintf("no diagnostics on line %d", line)}
	}
	return out
}

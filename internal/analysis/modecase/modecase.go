// Package modecase requires switches over engine enums to be exhaustive.
//
// The compiler's Mode enum (Local/RDD/DataFrame/Vector) and the join
// strategy enum grow with the engine; a switch that silently falls through
// for a new mode routes queries to the wrong backend. Any switch whose tag
// is one of those enum types must either carry a default clause or name
// every package-level constant of the type in its cases.
package modecase

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rumble/internal/analysis"
)

// Analyzer is the modecase pass.
var Analyzer = &analysis.Analyzer{
	Name: "modecase",
	Doc:  "switches over engine enums (compiler.Mode, compiler.JoinStrategy) must cover every constant or carry a default",
	Run:  run,
}

// enumTypeNames lists the named types treated as closed enums. They live in
// internal/compiler; the package-path check below keeps same-named types
// elsewhere out of scope.
var enumTypeNames = map[string]bool{
	"Mode":         true,
	"JoinStrategy": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named := enumType(tv.Type)
			if named == nil {
				return true
			}
			missing := missingConstants(pass, sw, named)
			if len(missing) == 0 {
				return true
			}
			if analysis.Suppress(pass, "modecase", sw.Pos()) {
				return true
			}
			pass.Reportf(sw.Pos(),
				"switch over %s is not exhaustive: missing %s (add the cases or a default clause)",
				named.Obj().Name(), strings.Join(missing, ", "))
			return true
		})
	}
	return nil
}

// enumType returns the named enum type of t, or nil when t is not one of
// the closed engine enums.
func enumType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !enumTypeNames[obj.Name()] {
		return nil
	}
	if !strings.HasSuffix(obj.Pkg().Path(), "internal/compiler") &&
		!strings.HasSuffix(obj.Pkg().Path(), "modecase") { // fixture packages
		return nil
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return nil
	}
	return named
}

// missingConstants returns the names of package-level constants of typ not
// named by any case clause. A default clause satisfies exhaustiveness.
func missingConstants(pass *analysis.Pass, sw *ast.SwitchStmt, typ *types.Named) []string {
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return nil // default clause: exhaustive by construction
		}
		for _, e := range cc.List {
			covered[constName(pass, e)] = true
		}
	}
	var missing []string
	scope := typ.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), typ) {
			continue
		}
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	return missing
}

// constName resolves a case expression to the constant name it denotes.
func constName(pass *analysis.Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

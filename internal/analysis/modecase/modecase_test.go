package modecase_test

import (
	"testing"

	"rumble/internal/analysis/analysistest"
	"rumble/internal/analysis/modecase"
)

func TestModeCase(t *testing.T) {
	analysistest.Run(t, "testdata", modecase.Analyzer, "modecase")
}

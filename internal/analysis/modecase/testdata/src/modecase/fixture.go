package fixture

type Mode int

const (
	ModeLocal Mode = iota
	ModeRDD
	ModeVector
)

func name(m Mode) string {
	switch m { // want "missing ModeVector"
	case ModeLocal:
		return "local"
	case ModeRDD:
		return "rdd"
	}
	return ""
}

func full(m Mode) string {
	switch m {
	case ModeLocal, ModeRDD, ModeVector:
		return "known"
	}
	return ""
}

func defaulted(m Mode) string {
	switch m {
	case ModeLocal:
		return "local"
	default:
		return "other"
	}
}

func partial(m Mode) bool {
	//rumble:modecase-ok only vector-ness matters on this path
	switch m {
	case ModeVector:
		return true
	}
	return false
}

// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, providing just the surface the
// rumblevet invariant linters need: an Analyzer runs over one type-checked
// package at a time and reports position-tagged diagnostics.
//
// The framework exists because the repository's correctness now rests on
// invariants no compiler checks — deterministic emit order, cooperative
// cancellation checkpoints, item-comparison discipline, metric registration,
// exhaustive Mode switches — and the cheapest place to enforce them is a CI
// gate over the source, not a runtime failure under -race. The module is
// intentionally self-contained (go/parser + go/types only), so the linter
// builds with the bare toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant check. Run is invoked once per package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detorder", ...).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records the type of every expression, selections, uses and
	// definitions, as filled by the loader.
	TypesInfo *types.Info
	// Escapes indexes the //rumble:<name>-ok escape comments of the package
	// by file and line; see Escapes.Allows.
	Escapes *Escapes

	diags *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over one loaded package and returns their
// diagnostics sorted by position.
func Run(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Escapes:   pkg.Escapes,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

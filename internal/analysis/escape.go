package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// EscapePrefix starts every analyzer escape comment. The full form is
//
//	//rumble:<name>-ok <justification>
//
// placed on the offending line or the line directly above it. The
// justification is mandatory: an escape without one is itself reported, so
// every suppressed finding carries its reasoning in the source.
const EscapePrefix = "rumble:"

// Escape is one parsed escape comment.
type Escape struct {
	// Name is the escape class ("nondeterministic", "ctxpoll", ...).
	Name string
	// Reason is the justification text after the marker; empty when the
	// author omitted it (which analyzers must report).
	Reason string
	Pos    token.Position
}

// Escapes indexes the escape comments of a package by file and line.
type Escapes struct {
	byLine map[string]map[int][]Escape
}

// collectEscapes parses every //rumble:<name>-ok comment of the files. A
// comment suppresses findings on its own line (trailing comment) and on the
// line that follows it (standalone comment above the code).
func collectEscapes(fset *token.FileSet, files []*ast.File) *Escapes {
	es := &Escapes{byLine: map[string]map[int][]Escape{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+EscapePrefix)
				if !ok {
					continue
				}
				marker, reason, _ := strings.Cut(text, " ")
				name, ok := strings.CutSuffix(marker, "-ok")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				e := Escape{Name: name, Reason: strings.TrimSpace(reason), Pos: pos}
				lines := es.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Escape{}
					es.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], e)
				lines[pos.Line+1] = append(lines[pos.Line+1], e)
			}
		}
	}
	return es
}

// At returns the escape of class name covering pos (same line or the line
// above), or nil.
func (es *Escapes) At(name string, pos token.Position) *Escape {
	for _, e := range es.byLine[pos.Filename][pos.Line] {
		if e.Name == name {
			return &e
		}
	}
	return nil
}

// Suppress is the shared analyzer helper: when an escape of class name
// covers pos it returns true (the finding is suppressed) — reporting a
// justification-missing diagnostic through report when the escape carries
// no reason.
func Suppress(p *Pass, name string, pos token.Pos) bool {
	esc := p.Escapes.At(name, p.Fset.Position(pos))
	if esc == nil {
		return false
	}
	if esc.Reason == "" {
		p.Reportf(pos, "//%s%s-ok escape requires a justification after the marker", EscapePrefix, name)
	}
	return true
}

// Package itemcmp forbids raw equality on JSONiq item values outside
// internal/item.
//
// Items compare under JSONiq value semantics — 1 eq 1.0, NaN ordered
// greatest, -0.0 equal to +0.0, integers beyond 2^53 distinct — none of
// which Go's ==, != or reflect.DeepEqual implement. Comparing two
// item.Item interfaces with == compares dynamic type identity (Int(1) !=
// Double(1.0)); comparing two item.SortKey structs with == compares raw
// float bits (a NaN key never equals itself). Every comparison must flow
// through item.CompareValues, item.DeepEqual or SortKey.Compare. Nil checks
// (it == nil) stay legal.
package itemcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rumble/internal/analysis"
)

// Analyzer is the itemcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "itemcmp",
	Doc:  "forbid ==/!=/reflect.DeepEqual on item values outside internal/item; use CompareValues/DeepEqual/SortKey.Compare",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/item") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if isNilExpr(pass, e.X) || isNilExpr(pass, e.Y) {
					return true
				}
				name := itemTypeName(pass, e.X)
				if name == "" {
					name = itemTypeName(pass, e.Y)
				}
				if name == "" {
					return true
				}
				if analysis.Suppress(pass, "itemcmp", e.Pos()) {
					return true
				}
				what := "item.CompareValues or item.DeepEqual"
				if name == "SortKey" {
					what = "SortKey.Compare (raw == compares NaN float bits wrong)"
				}
				pass.Reportf(e.Pos(), "%s on item.%s compares Go representations, not JSONiq values; use %s", e.Op, name, what)
			case *ast.CallExpr:
				if !isReflectDeepEqual(pass, e) || len(e.Args) != 2 {
					return true
				}
				name := itemTypeName(pass, e.Args[0])
				if name == "" {
					name = itemTypeName(pass, e.Args[1])
				}
				if name == "" {
					return true
				}
				if analysis.Suppress(pass, "itemcmp", e.Pos()) {
					return true
				}
				pass.Reportf(e.Pos(), "reflect.DeepEqual on item.%s values ignores JSONiq equality (1 vs 1.0, NaN, -0.0); use item.DeepEqual", name)
			}
			return true
		})
	}
	return nil
}

// isNilExpr reports whether e is the untyped nil literal.
func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// itemTypeName returns the offending internal/item type name ("Item",
// "SortKey") when e's static type is — or contains through one level of
// slice/array/map — a value-comparison-bearing item type, else "".
func itemTypeName(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return itemName(tv.Type, 0)
}

func itemName(t types.Type, depth int) string {
	if depth > 2 {
		return ""
	}
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/item") {
			if obj.Name() == "Item" || obj.Name() == "SortKey" {
				return obj.Name()
			}
		}
		return ""
	case *types.Slice:
		return itemName(u.Elem(), depth+1)
	case *types.Array:
		return itemName(u.Elem(), depth+1)
	case *types.Map:
		return itemName(u.Elem(), depth+1)
	case *types.Pointer:
		return itemName(u.Elem(), depth+1)
	}
	return ""
}

// isReflectDeepEqual matches calls to reflect.DeepEqual.
func isReflectDeepEqual(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DeepEqual" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	pkg, ok := obj.(*types.PkgName)
	return ok && pkg.Imported().Path() == "reflect"
}

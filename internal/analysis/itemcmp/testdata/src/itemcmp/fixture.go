package fixture

import (
	"reflect"

	"rumble/internal/item"
)

func eq(a, b item.Item) bool {
	if a == nil {
		return b == nil
	}
	return a == b // want "compares Go representations"
}

func keys(a, b item.SortKey) bool {
	return a != b // want "NaN float bits"
}

func deep(a, b []item.Item) bool {
	return reflect.DeepEqual(a, b) // want "use item.DeepEqual"
}

func pointerIdentity(a, b item.Item) bool {
	//rumble:itemcmp-ok cache identity check wants pointer equality, not value equality
	return a == b
}

func ints(a, b int) bool {
	return a == b
}

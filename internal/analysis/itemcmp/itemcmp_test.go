package itemcmp_test

import (
	"testing"

	"rumble/internal/analysis/analysistest"
	"rumble/internal/analysis/itemcmp"
)

func TestItemCmp(t *testing.T) {
	analysistest.Run(t, "testdata", itemcmp.Analyzer, "itemcmp")
}

package functions

import (
	"encoding/base64"
	"encoding/hex"
	"math"
	"strings"

	"rumble/internal/item"
)

// Additional W3C-library functions: codepoint conversions, padding and
// trimming, binary encodings, math functions, and sequence set operations.
func init() {
	registerCodepointFunctions()
	registerPaddingFunctions()
	registerEncodingFunctions()
	registerMathFunctions()
	registerSetFunctions()
}

func registerCodepointFunctions() {
	register("string-to-codepoints", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "string-to-codepoints")
		if err != nil {
			return nil, err
		}
		var out []item.Item
		for _, r := range s {
			out = append(out, item.Int(int64(r)))
		}
		return out, nil
	})
	register("codepoints-to-string", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		var b strings.Builder
		for _, it := range args[0] {
			n, err := item.CastToInteger(it)
			if err != nil {
				return nil, errf("codepoints-to-string: %v", err)
			}
			cp := int64(n.(item.Int))
			if cp < 0 || cp > 0x10FFFF {
				return nil, errf("codepoints-to-string: %d out of range", cp)
			}
			b.WriteRune(rune(cp))
		}
		return singleton(item.Str(b.String())), nil
	})
	register("translate", 3, 3, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "translate")
		if err != nil {
			return nil, err
		}
		from, err := oneString(args, 1, "translate")
		if err != nil {
			return nil, err
		}
		to, err := oneString(args, 2, "translate")
		if err != nil {
			return nil, err
		}
		fromRunes, toRunes := []rune(from), []rune(to)
		mapping := make(map[rune]rune, len(fromRunes))
		drop := make(map[rune]bool)
		for i, r := range fromRunes {
			if _, seen := mapping[r]; seen || drop[r] {
				continue
			}
			if i < len(toRunes) {
				mapping[r] = toRunes[i]
			} else {
				drop[r] = true
			}
		}
		var b strings.Builder
		for _, r := range s {
			if drop[r] {
				continue
			}
			if m, ok := mapping[r]; ok {
				b.WriteRune(m)
				continue
			}
			b.WriteRune(r)
		}
		return singleton(item.Str(b.String())), nil
	})
}

func registerPaddingFunctions() {
	register("trim", 1, 1, stringMap(strings.TrimSpace))
	register("pad-left", 2, 3, padFunc(true))
	register("pad-right", 2, 3, padFunc(false))
	register("repeat-string", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "repeat-string")
		if err != nil {
			return nil, err
		}
		n, err := oneInt(args, 1, "repeat-string")
		if err != nil {
			return nil, err
		}
		if n < 0 {
			n = 0
		}
		if int64(len(s))*n > 1<<26 {
			return nil, errf("repeat-string: result too large")
		}
		return singleton(item.Str(strings.Repeat(s, int(n)))), nil
	})
}

func padFunc(left bool) func(args [][]item.Item) ([]item.Item, error) {
	return func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "pad")
		if err != nil {
			return nil, err
		}
		width, err := oneInt(args, 1, "pad")
		if err != nil {
			return nil, err
		}
		fill := " "
		if len(args) == 3 {
			fill, err = oneString(args, 2, "pad")
			if err != nil {
				return nil, err
			}
			if fill == "" {
				return nil, errf("pad: empty fill string")
			}
		}
		runes := []rune(s)
		if int64(len(runes)) >= width {
			return singleton(item.Str(s)), nil
		}
		need := int(width) - len(runes)
		pad := strings.Repeat(fill, need/len([]rune(fill))+1)
		pad = string([]rune(pad)[:need])
		if left {
			return singleton(item.Str(pad + s)), nil
		}
		return singleton(item.Str(s + pad)), nil
	}
}

func registerEncodingFunctions() {
	register("hex-encode", 1, 1, stringMap(func(s string) string {
		return hex.EncodeToString([]byte(s))
	}))
	register("hex-decode", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "hex-decode")
		if err != nil {
			return nil, err
		}
		raw, err := hex.DecodeString(s)
		if err != nil {
			return nil, errf("hex-decode: %v", err)
		}
		return singleton(item.Str(string(raw))), nil
	})
	register("base64-encode", 1, 1, stringMap(func(s string) string {
		return base64.StdEncoding.EncodeToString([]byte(s))
	}))
	register("base64-decode", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "base64-decode")
		if err != nil {
			return nil, err
		}
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, errf("base64-decode: %v", err)
		}
		return singleton(item.Str(string(raw))), nil
	})
}

func registerMathFunctions() {
	unary := func(name string, f func(float64) float64) {
		register(name, 1, 1, func(args [][]item.Item) ([]item.Item, error) {
			if len(args[0]) == 0 {
				return nil, nil
			}
			v, err := oneDouble(args, 0, name)
			if err != nil {
				return nil, err
			}
			return singleton(item.Double(f(v))), nil
		})
	}
	unary("exp", math.Exp)
	unary("log", math.Log)
	unary("log10", math.Log10)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	unary("tan", math.Tan)
	unary("atan", math.Atan)
	register("pi", 0, 0, func([][]item.Item) ([]item.Item, error) {
		return singleton(item.Double(math.Pi)), nil
	})
	register("round-half-to-even", 1, 2, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		v, err := oneDouble(args, 0, "round-half-to-even")
		if err != nil {
			return nil, err
		}
		precision := int64(0)
		if len(args) == 2 {
			precision, err = oneInt(args, 1, "round-half-to-even")
			if err != nil {
				return nil, err
			}
		}
		scale := math.Pow(10, float64(precision))
		r := math.RoundToEven(v*scale) / scale
		if args[0][0].Kind() == item.KindInteger && precision >= 0 {
			return singleton(item.Int(int64(r))), nil
		}
		return singleton(item.Double(r)), nil
	})
}

func registerSetFunctions() {
	register("intersect", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		inB := make(map[string]bool, len(args[1]))
		for _, it := range args[1] {
			inB[distinctKey(it)] = true
		}
		var out []item.Item
		seen := map[string]bool{}
		for _, it := range args[0] {
			k := distinctKey(it)
			if inB[k] && !seen[k] {
				seen[k] = true
				out = append(out, it)
			}
		}
		return out, nil
	})
	register("except", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		inB := make(map[string]bool, len(args[1]))
		for _, it := range args[1] {
			inB[distinctKey(it)] = true
		}
		var out []item.Item
		seen := map[string]bool{}
		for _, it := range args[0] {
			k := distinctKey(it)
			if !inB[k] && !seen[k] {
				seen[k] = true
				out = append(out, it)
			}
		}
		return out, nil
	})
	register("union-values", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		return DistinctValues(append(append([]item.Item{}, args[0]...), args[1]...)), nil
	})
}

// Package functions implements the JSONiq builtin function library over
// materialized argument sequences. Aggregations (count, sum, ...) also live
// here in their local form; the runtime pushes them down to Spark actions
// when their argument is physically an RDD.
package functions

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"rumble/internal/item"
	"rumble/internal/jparse"
)

// Func is one builtin: an arity range and the local implementation over
// materialized argument sequences.
type Func struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 means variadic
	Call    func(args [][]item.Item) ([]item.Item, error)
}

// Lookup returns the builtin with the given name.
func Lookup(name string) (Func, bool) {
	f, ok := registry[name]
	return f, ok
}

// Names returns all builtin names (for diagnostics and docs).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

var registry = map[string]Func{}

func register(name string, minArgs, maxArgs int, call func(args [][]item.Item) ([]item.Item, error)) {
	registry[name] = Func{Name: name, MinArgs: minArgs, MaxArgs: maxArgs, Call: call}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// one extracts a required single atomic argument.
func one(args [][]item.Item, i int, fn string) (item.Item, error) {
	if len(args[i]) != 1 {
		return nil, errf("%s: argument %d must be a single item, got %d", fn, i+1, len(args[i]))
	}
	return args[i][0], nil
}

// oneString extracts a required single string argument; the empty sequence
// is treated as the empty string (XPath convention).
func oneString(args [][]item.Item, i int, fn string) (string, error) {
	if len(args[i]) == 0 {
		return "", nil
	}
	it, err := one(args, i, fn)
	if err != nil {
		return "", err
	}
	s, err := item.StringValue(it)
	if err != nil {
		return "", errf("%s: %v", fn, err)
	}
	return s, nil
}

func oneInt(args [][]item.Item, i int, fn string) (int64, error) {
	it, err := one(args, i, fn)
	if err != nil {
		return 0, err
	}
	n, err := item.CastToInteger(it)
	if err != nil {
		return 0, errf("%s: %v", fn, err)
	}
	return int64(n.(item.Int)), nil
}

func oneDouble(args [][]item.Item, i int, fn string) (float64, error) {
	it, err := one(args, i, fn)
	if err != nil {
		return 0, err
	}
	if !item.IsNumeric(it) {
		return 0, errf("%s: argument %d must be numeric, got %s", fn, i+1, it.Kind())
	}
	return item.Float64Value(it), nil
}

func singleton(it item.Item) []item.Item { return []item.Item{it} }

func init() {
	registerSequenceFunctions()
	registerAggregateFunctions()
	registerStringFunctions()
	registerNumericFunctions()
	registerObjectArrayFunctions()
	registerJSONFunctions()
	registerLogicFunctions()
}

func registerSequenceFunctions() {
	register("empty", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		return singleton(item.Bool(len(args[0]) == 0)), nil
	})
	register("exists", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		return singleton(item.Bool(len(args[0]) > 0)), nil
	})
	register("head", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		return args[0][:1], nil
	})
	register("tail", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) <= 1 {
			return nil, nil
		}
		return args[0][1:], nil
	})
	register("reverse", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		in := args[0]
		out := make([]item.Item, len(in))
		for i, it := range in {
			out[len(in)-1-i] = it
		}
		return out, nil
	})
	register("subsequence", 2, 3, func(args [][]item.Item) ([]item.Item, error) {
		seq := args[0]
		start, err := oneDouble(args, 1, "subsequence")
		if err != nil {
			return nil, err
		}
		length := math.Inf(1)
		if len(args) == 3 {
			length, err = oneDouble(args, 2, "subsequence")
			if err != nil {
				return nil, err
			}
		}
		var out []item.Item
		for i, it := range seq {
			pos := float64(i + 1)
			if pos >= math.Round(start) && pos < math.Round(start)+math.Round(length) {
				out = append(out, it)
			}
		}
		return out, nil
	})
	register("insert-before", 3, 3, func(args [][]item.Item) ([]item.Item, error) {
		seq, ins := args[0], args[2]
		pos, err := oneInt(args, 1, "insert-before")
		if err != nil {
			return nil, err
		}
		if pos < 1 {
			pos = 1
		}
		if pos > int64(len(seq))+1 {
			pos = int64(len(seq)) + 1
		}
		out := make([]item.Item, 0, len(seq)+len(ins))
		out = append(out, seq[:pos-1]...)
		out = append(out, ins...)
		out = append(out, seq[pos-1:]...)
		return out, nil
	})
	register("remove", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		seq := args[0]
		pos, err := oneInt(args, 1, "remove")
		if err != nil {
			return nil, err
		}
		if pos < 1 || pos > int64(len(seq)) {
			return seq, nil
		}
		out := make([]item.Item, 0, len(seq)-1)
		out = append(out, seq[:pos-1]...)
		out = append(out, seq[pos:]...)
		return out, nil
	})
	register("distinct-values", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		return DistinctValues(args[0]), nil
	})
	register("index-of", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		needle, err := one(args, 1, "index-of")
		if err != nil {
			return nil, err
		}
		var out []item.Item
		for i, it := range args[0] {
			if c, err := item.CompareValues(it, needle); err == nil && c == 0 {
				out = append(out, item.Int(int64(i+1)))
			}
		}
		return out, nil
	})
	register("exactly-one", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) != 1 {
			return nil, errf("exactly-one: sequence has %d items", len(args[0]))
		}
		return args[0], nil
	})
	register("zero-or-one", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) > 1 {
			return nil, errf("zero-or-one: sequence has %d items", len(args[0]))
		}
		return args[0], nil
	})
	register("one-or-more", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, errf("one-or-more: sequence is empty")
		}
		return args[0], nil
	})
}

// DistinctValues returns the first occurrence of each distinct value in
// sequence order, using serialization equality (numerics normalized).
func DistinctValues(seq []item.Item) []item.Item {
	seen := make(map[string]bool, len(seq))
	var out []item.Item
	for _, it := range seq {
		key := distinctKey(it)
		if !seen[key] {
			seen[key] = true
			out = append(out, it)
		}
	}
	return out
}

// distinctKey normalizes cross-type numeric equality (2 == 2.0).
func distinctKey(it item.Item) string {
	if item.IsNumeric(it) {
		return fmt.Sprintf("n:%g", item.Float64Value(it))
	}
	return string(it.Kind().String()[0]) + ":" + string(it.AppendJSON(nil))
}

func registerAggregateFunctions() {
	register("count", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		return singleton(item.Int(int64(len(args[0])))), nil
	})
	register("sum", 1, 2, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			if len(args) == 2 {
				return args[1], nil
			}
			return singleton(item.Int(0)), nil
		}
		return Sum(args[0])
	})
	register("avg", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		total, err := Sum(args[0])
		if err != nil {
			return nil, err
		}
		res, err := item.Arithmetic(item.OpDiv, total[0], item.Int(int64(len(args[0]))))
		if err != nil {
			return nil, err
		}
		return singleton(res), nil
	})
	register("min", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		return extremum(args[0], true)
	})
	register("max", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		return extremum(args[0], false)
	})
}

// Sum adds a sequence of numeric items with JSONiq promotion rules.
func Sum(seq []item.Item) ([]item.Item, error) {
	acc := seq[0]
	if !item.IsNumeric(acc) {
		return nil, errf("sum: non-numeric item of type %s", acc.Kind())
	}
	for _, it := range seq[1:] {
		if !item.IsNumeric(it) {
			return nil, errf("sum: non-numeric item of type %s", it.Kind())
		}
		var err error
		acc, err = item.Arithmetic(item.OpAdd, acc, it)
		if err != nil {
			return nil, err
		}
	}
	return singleton(acc), nil
}

func extremum(seq []item.Item, isMin bool) ([]item.Item, error) {
	if len(seq) == 0 {
		return nil, nil
	}
	best := seq[0]
	for _, it := range seq[1:] {
		c, err := item.CompareValues(it, best)
		if err != nil {
			return nil, errf("min/max: %v", err)
		}
		if (isMin && c < 0) || (!isMin && c > 0) {
			best = it
		}
	}
	return singleton(best), nil
}

func registerStringFunctions() {
	register("string", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return singleton(item.Str("")), nil
		}
		it, err := one(args, 0, "string")
		if err != nil {
			return nil, err
		}
		s, err := item.StringValue(it)
		if err != nil {
			return nil, err
		}
		return singleton(item.Str(s)), nil
	})
	register("string-length", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "string-length")
		if err != nil {
			return nil, err
		}
		return singleton(item.Int(int64(len([]rune(s))))), nil
	})
	register("concat", 2, -1, func(args [][]item.Item) ([]item.Item, error) {
		var b strings.Builder
		for i := range args {
			s, err := oneString(args, i, "concat")
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return singleton(item.Str(b.String())), nil
	})
	register("string-join", 1, 2, func(args [][]item.Item) ([]item.Item, error) {
		sep := ""
		if len(args) == 2 {
			var err error
			sep, err = oneString(args, 1, "string-join")
			if err != nil {
				return nil, err
			}
		}
		parts := make([]string, len(args[0]))
		for i, it := range args[0] {
			s, err := item.StringValue(it)
			if err != nil {
				return nil, errf("string-join: %v", err)
			}
			parts[i] = s
		}
		return singleton(item.Str(strings.Join(parts, sep))), nil
	})
	register("substring", 2, 3, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "substring")
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		start, err := oneDouble(args, 1, "substring")
		if err != nil {
			return nil, err
		}
		length := math.Inf(1)
		if len(args) == 3 {
			length, err = oneDouble(args, 2, "substring")
			if err != nil {
				return nil, err
			}
		}
		var b strings.Builder
		for i, r := range runes {
			pos := float64(i + 1)
			if pos >= math.Round(start) && pos < math.Round(start)+math.Round(length) {
				b.WriteRune(r)
			}
		}
		return singleton(item.Str(b.String())), nil
	})
	register("upper-case", 1, 1, stringMap(strings.ToUpper))
	register("lower-case", 1, 1, stringMap(strings.ToLower))
	register("normalize-space", 1, 1, stringMap(func(s string) string {
		return strings.Join(strings.Fields(s), " ")
	}))
	register("contains", 2, 2, stringPred("contains", strings.Contains))
	register("starts-with", 2, 2, stringPred("starts-with", strings.HasPrefix))
	register("ends-with", 2, 2, stringPred("ends-with", strings.HasSuffix))
	register("substring-before", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "substring-before")
		if err != nil {
			return nil, err
		}
		sub, err := oneString(args, 1, "substring-before")
		if err != nil {
			return nil, err
		}
		if i := strings.Index(s, sub); i >= 0 {
			return singleton(item.Str(s[:i])), nil
		}
		return singleton(item.Str("")), nil
	})
	register("substring-after", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "substring-after")
		if err != nil {
			return nil, err
		}
		sub, err := oneString(args, 1, "substring-after")
		if err != nil {
			return nil, err
		}
		if i := strings.Index(s, sub); i >= 0 {
			return singleton(item.Str(s[i+len(sub):])), nil
		}
		return singleton(item.Str("")), nil
	})
	register("tokenize", 1, 2, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "tokenize")
		if err != nil {
			return nil, err
		}
		var parts []string
		if len(args) == 1 {
			parts = strings.Fields(s)
		} else {
			pat, err := oneString(args, 1, "tokenize")
			if err != nil {
				return nil, err
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, errf("tokenize: invalid pattern: %v", err)
			}
			parts = re.Split(s, -1)
		}
		out := make([]item.Item, len(parts))
		for i, p := range parts {
			out[i] = item.Str(p)
		}
		return out, nil
	})
	register("matches", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "matches")
		if err != nil {
			return nil, err
		}
		pat, err := oneString(args, 1, "matches")
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, errf("matches: invalid pattern: %v", err)
		}
		return singleton(item.Bool(re.MatchString(s))), nil
	})
	register("replace", 3, 3, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "replace")
		if err != nil {
			return nil, err
		}
		pat, err := oneString(args, 1, "replace")
		if err != nil {
			return nil, err
		}
		repl, err := oneString(args, 2, "replace")
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, errf("replace: invalid pattern: %v", err)
		}
		return singleton(item.Str(re.ReplaceAllString(s, repl))), nil
	})
}

func stringMap(f func(string) string) func(args [][]item.Item) ([]item.Item, error) {
	return func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "string function")
		if err != nil {
			return nil, err
		}
		return singleton(item.Str(f(s))), nil
	}
}

func stringPred(name string, f func(a, b string) bool) func(args [][]item.Item) ([]item.Item, error) {
	return func(args [][]item.Item) ([]item.Item, error) {
		a, err := oneString(args, 0, name)
		if err != nil {
			return nil, err
		}
		b, err := oneString(args, 1, name)
		if err != nil {
			return nil, err
		}
		return singleton(item.Bool(f(a, b))), nil
	}
}

func registerNumericFunctions() {
	register("abs", 1, 1, doubleMapPreserving(math.Abs))
	register("floor", 1, 1, doubleMapPreserving(math.Floor))
	register("ceiling", 1, 1, doubleMapPreserving(math.Ceil))
	register("round", 1, 1, doubleMapPreserving(math.Round))
	register("sqrt", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		f, err := oneDouble(args, 0, "sqrt")
		if err != nil {
			return nil, err
		}
		return singleton(item.Double(math.Sqrt(f))), nil
	})
	register("pow", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		base, err := oneDouble(args, 0, "pow")
		if err != nil {
			return nil, err
		}
		exp, err := oneDouble(args, 1, "pow")
		if err != nil {
			return nil, err
		}
		return singleton(item.Double(math.Pow(base, exp))), nil
	})
	register("number", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return singleton(item.Double(math.NaN())), nil
		}
		it, err := one(args, 0, "number")
		if err != nil {
			return nil, err
		}
		d, err := item.CastToDouble(it)
		if err != nil {
			return singleton(item.Double(math.NaN())), nil
		}
		return singleton(d), nil
	})
}

// doubleMapPreserving applies f to a numeric item, preserving integer-ness
// where the result is integral.
func doubleMapPreserving(f func(float64) float64) func(args [][]item.Item) ([]item.Item, error) {
	return func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		it, err := one(args, 0, "numeric function")
		if err != nil {
			return nil, err
		}
		if !item.IsNumeric(it) {
			return nil, errf("numeric function requires a number, got %s", it.Kind())
		}
		v := f(item.Float64Value(it))
		if it.Kind() == item.KindInteger && v == math.Trunc(v) {
			return singleton(item.Int(int64(v))), nil
		}
		if it.Kind() == item.KindDouble {
			return singleton(item.Double(v)), nil
		}
		// decimal input: stay decimal when integral, else double
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			return singleton(item.Int(int64(v))), nil
		}
		return singleton(item.Double(v)), nil
	}
}

func registerObjectArrayFunctions() {
	register("keys", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		var out []item.Item
		seen := map[string]bool{}
		for _, it := range args[0] {
			if obj, ok := it.(*item.Object); ok {
				for _, k := range obj.Keys() {
					if !seen[k] {
						seen[k] = true
						out = append(out, item.Str(k))
					}
				}
			}
		}
		return out, nil
	})
	register("values", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		var out []item.Item
		for _, it := range args[0] {
			if obj, ok := it.(*item.Object); ok {
				for i := 0; i < obj.Len(); i++ {
					out = append(out, obj.ValueAt(i))
				}
			}
		}
		return out, nil
	})
	register("members", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		var out []item.Item
		for _, it := range args[0] {
			if arr, ok := it.(*item.Array); ok {
				out = append(out, arr.Members()...)
			}
		}
		return out, nil
	})
	register("size", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		it, err := one(args, 0, "size")
		if err != nil {
			return nil, err
		}
		arr, ok := it.(*item.Array)
		if !ok {
			return nil, errf("size: argument must be an array, got %s", it.Kind())
		}
		return singleton(item.Int(int64(arr.Len()))), nil
	})
	register("flatten", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		var out []item.Item
		var walk func(it item.Item)
		walk = func(it item.Item) {
			if arr, ok := it.(*item.Array); ok {
				for _, m := range arr.Members() {
					walk(m)
				}
				return
			}
			out = append(out, it)
		}
		for _, it := range args[0] {
			walk(it)
		}
		return out, nil
	})
	register("project", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		keep := map[string]bool{}
		for _, k := range args[1] {
			s, err := item.StringValue(k)
			if err != nil {
				return nil, errf("project: %v", err)
			}
			keep[s] = true
		}
		var out []item.Item
		for _, it := range args[0] {
			obj, ok := it.(*item.Object)
			if !ok {
				out = append(out, it)
				continue
			}
			var keys []string
			var vals []item.Item
			for i, k := range obj.Keys() {
				if keep[k] {
					keys = append(keys, k)
					vals = append(vals, obj.ValueAt(i))
				}
			}
			out = append(out, item.NewObject(keys, vals))
		}
		return out, nil
	})
	register("remove-keys", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		drop := map[string]bool{}
		for _, k := range args[1] {
			s, err := item.StringValue(k)
			if err != nil {
				return nil, errf("remove-keys: %v", err)
			}
			drop[s] = true
		}
		var out []item.Item
		for _, it := range args[0] {
			obj, ok := it.(*item.Object)
			if !ok {
				out = append(out, it)
				continue
			}
			var keys []string
			var vals []item.Item
			for i, k := range obj.Keys() {
				if !drop[k] {
					keys = append(keys, k)
					vals = append(vals, obj.ValueAt(i))
				}
			}
			out = append(out, item.NewObject(keys, vals))
		}
		return out, nil
	})
	register("object-merge", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		var keys []string
		var vals []item.Item
		seen := map[string]bool{}
		for _, it := range args[0] {
			obj, ok := it.(*item.Object)
			if !ok {
				return nil, errf("object-merge: all items must be objects, got %s", it.Kind())
			}
			for i, k := range obj.Keys() {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
					vals = append(vals, obj.ValueAt(i))
				}
			}
		}
		return singleton(item.NewObject(keys, vals)), nil
	})
}

func registerJSONFunctions() {
	register("json-doc", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "json-doc")
		if err != nil {
			return nil, err
		}
		it, err := jparse.Parse([]byte(s))
		if err != nil {
			return nil, errf("json-doc: %v", err)
		}
		return singleton(it), nil
	})
	register("parse-json", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		s, err := oneString(args, 0, "parse-json")
		if err != nil {
			return nil, err
		}
		it, err := jparse.Parse([]byte(s))
		if err != nil {
			return nil, errf("parse-json: %v", err)
		}
		return singleton(it), nil
	})
	register("serialize", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		it, err := one(args, 0, "serialize")
		if err != nil {
			return nil, err
		}
		return singleton(item.Str(string(it.AppendJSON(nil)))), nil
	})
}

func registerLogicFunctions() {
	register("boolean", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		b, err := item.EffectiveBoolean(args[0])
		if err != nil {
			return nil, err
		}
		return singleton(item.Bool(b)), nil
	})
	register("not", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		b, err := item.EffectiveBoolean(args[0])
		if err != nil {
			return nil, err
		}
		return singleton(item.Bool(!b)), nil
	})
	register("error", 0, 2, func(args [][]item.Item) ([]item.Item, error) {
		msg := "error() called"
		if len(args) >= 1 && len(args[0]) > 0 {
			if s, err := item.StringValue(args[0][0]); err == nil {
				msg = s
			}
		}
		return nil, errf("%s", msg)
	})
	register("null", 0, 0, func(args [][]item.Item) ([]item.Item, error) {
		return singleton(item.Null{}), nil
	})
	register("is-null", 1, 1, func(args [][]item.Item) ([]item.Item, error) {
		it, err := one(args, 0, "is-null")
		if err != nil {
			return nil, err
		}
		return singleton(item.Bool(it.Kind() == item.KindNull)), nil
	})
	register("deep-equal", 2, 2, func(args [][]item.Item) ([]item.Item, error) {
		if len(args[0]) != len(args[1]) {
			return singleton(item.Bool(false)), nil
		}
		for i := range args[0] {
			if !item.DeepEqual(args[0][i], args[1][i]) {
				return singleton(item.Bool(false)), nil
			}
		}
		return singleton(item.Bool(true)), nil
	})
}

package functions

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rumble/internal/item"
)

func call(t *testing.T, name string, args ...[]item.Item) []item.Item {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("function %s not registered", name)
	}
	out, err := f.Call(args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func callErr(t *testing.T, name string, args ...[]item.Item) error {
	t.Helper()
	f, ok := Lookup(name)
	if !ok {
		t.Fatalf("function %s not registered", name)
	}
	_, err := f.Call(args)
	return err
}

func seq(items ...item.Item) []item.Item { return items }

func TestRegistryComplete(t *testing.T) {
	required := []string{
		"count", "sum", "avg", "min", "max", "empty", "exists", "head",
		"tail", "reverse", "subsequence", "distinct-values", "index-of",
		"insert-before", "remove", "exactly-one", "zero-or-one",
		"one-or-more", "string", "string-length", "concat", "string-join",
		"substring", "upper-case", "lower-case", "normalize-space",
		"contains", "starts-with", "ends-with", "substring-before",
		"substring-after", "tokenize", "matches", "replace", "abs",
		"floor", "ceiling", "round", "sqrt", "pow", "number", "keys",
		"values", "members", "size", "flatten", "project", "remove-keys",
		"object-merge", "json-doc", "parse-json", "serialize", "boolean",
		"not", "error", "null", "is-null",
	}
	for _, name := range required {
		if _, ok := Lookup(name); !ok {
			t.Errorf("builtin %s missing from registry", name)
		}
	}
	if len(Names()) < len(required) {
		t.Errorf("registry has %d functions, expected at least %d", len(Names()), len(required))
	}
}

func TestArityMetadata(t *testing.T) {
	f, _ := Lookup("substring")
	if f.MinArgs != 2 || f.MaxArgs != 3 {
		t.Errorf("substring arity = [%d,%d]", f.MinArgs, f.MaxArgs)
	}
	c, _ := Lookup("concat")
	if c.MaxArgs != -1 {
		t.Errorf("concat should be variadic, MaxArgs=%d", c.MaxArgs)
	}
}

func TestSumPromotion(t *testing.T) {
	out := call(t, "sum", seq(item.Int(1), item.Int(2), item.Double(0.5)))
	if out[0].Kind() != item.KindDouble || float64(out[0].(item.Double)) != 3.5 {
		t.Errorf("sum = %v (%s)", out[0], out[0].Kind())
	}
	// empty sum with default
	out = call(t, "sum", nil, seq(item.Str("zero")))
	if string(out[0].(item.Str)) != "zero" {
		t.Errorf("sum((), 'zero') = %v", out[0])
	}
	// empty sum without default is 0
	out = call(t, "sum", nil)
	if int64(out[0].(item.Int)) != 0 {
		t.Errorf("sum(()) = %v", out[0])
	}
	if callErr(t, "sum", seq(item.Int(1), item.Str("x"))) == nil {
		t.Error("sum over mixed types should error")
	}
}

func TestMinMaxComparable(t *testing.T) {
	out := call(t, "min", seq(item.Int(3), item.Double(1.5), item.Int(2)))
	if float64(out[0].(item.Double)) != 1.5 {
		t.Errorf("min = %v", out[0])
	}
	if callErr(t, "min", seq(item.Int(1), item.Str("a"))) == nil {
		t.Error("min over incomparable types should error")
	}
	if out := call(t, "max", nil); len(out) != 0 {
		t.Errorf("max(()) = %v, want empty", out)
	}
}

func TestAvgExactness(t *testing.T) {
	out := call(t, "avg", seq(item.Int(1), item.Int(2)))
	if out[0].String() != "1.5" {
		t.Errorf("avg(1,2) = %s", out[0])
	}
}

func TestDistinctValuesCrossNumeric(t *testing.T) {
	out := DistinctValues(seq(item.Int(2), item.Double(2.0), item.Str("2"), item.Int(2)))
	if len(out) != 2 {
		t.Fatalf("distinct = %v", out)
	}
	if out[0].Kind() != item.KindInteger || out[1].Kind() != item.KindString {
		t.Errorf("distinct kept %s, %s", out[0].Kind(), out[1].Kind())
	}
}

func TestCardinalityFunctions(t *testing.T) {
	if callErr(t, "exactly-one", seq(item.Int(1), item.Int(2))) == nil {
		t.Error("exactly-one of 2 should error")
	}
	if callErr(t, "zero-or-one", seq(item.Int(1), item.Int(2))) == nil {
		t.Error("zero-or-one of 2 should error")
	}
	if callErr(t, "one-or-more", nil) == nil {
		t.Error("one-or-more of 0 should error")
	}
	if out := call(t, "exactly-one", seq(item.Int(7))); int64(out[0].(item.Int)) != 7 {
		t.Error("exactly-one identity broken")
	}
}

func TestSubsequenceEdgeCases(t *testing.T) {
	s := seq(item.Int(1), item.Int(2), item.Int(3), item.Int(4))
	if out := call(t, "subsequence", s, seq(item.Int(0))); len(out) != 4 {
		t.Errorf("subsequence from 0 = %v", out)
	}
	if out := call(t, "subsequence", s, seq(item.Int(3))); len(out) != 2 {
		t.Errorf("subsequence from 3 = %v", out)
	}
	if out := call(t, "subsequence", s, seq(item.Double(2.4)), seq(item.Int(2))); len(out) != 2 {
		t.Errorf("subsequence rounds start: %v", out)
	}
	if out := call(t, "subsequence", s, seq(item.Int(10))); len(out) != 0 {
		t.Errorf("out-of-range subsequence = %v", out)
	}
}

func TestStringFunctionsUnicode(t *testing.T) {
	out := call(t, "substring", seq(item.Str("héllo")), seq(item.Int(2)), seq(item.Int(2)))
	if string(out[0].(item.Str)) != "él" {
		t.Errorf("substring over runes = %q", out[0])
	}
	out = call(t, "string-length", seq(item.Str("😀x")))
	if int64(out[0].(item.Int)) != 2 {
		t.Errorf("string-length = %v", out[0])
	}
}

func TestEmptyStringConvention(t *testing.T) {
	// XPath convention: the empty sequence behaves as "" for string args.
	out := call(t, "string-length", nil)
	if int64(out[0].(item.Int)) != 0 {
		t.Errorf("string-length(()) = %v", out[0])
	}
	out = call(t, "contains", nil, seq(item.Str("")))
	if !bool(out[0].(item.Bool)) {
		t.Errorf(`contains((), "") = %v`, out[0])
	}
}

func TestRegexFunctions(t *testing.T) {
	if callErr(t, "matches", seq(item.Str("x")), seq(item.Str("["))) == nil {
		t.Error("invalid regex should error")
	}
	out := call(t, "replace", seq(item.Str("a1b2")), seq(item.Str("[0-9]")), seq(item.Str("#")))
	if string(out[0].(item.Str)) != "a#b#" {
		t.Errorf("replace = %v", out[0])
	}
	out = call(t, "tokenize", seq(item.Str("a1b22c")), seq(item.Str("[0-9]+")))
	if len(out) != 3 {
		t.Errorf("tokenize = %v", out)
	}
}

func TestObjectFunctions(t *testing.T) {
	o := item.NewObject([]string{"a", "b", "c"}, []item.Item{item.Int(1), item.Int(2), item.Int(3)})
	out := call(t, "project", seq(o), seq(item.Str("a"), item.Str("c")))
	proj := out[0].(*item.Object)
	if proj.Len() != 2 {
		t.Errorf("project kept %d keys", proj.Len())
	}
	if _, ok := proj.Get("b"); ok {
		t.Error("project kept dropped key")
	}
	out = call(t, "remove-keys", seq(o), seq(item.Str("b")))
	rem := out[0].(*item.Object)
	if _, ok := rem.Get("b"); ok || rem.Len() != 2 {
		t.Errorf("remove-keys = %v", rem)
	}
	o2 := item.NewObject([]string{"c", "d"}, []item.Item{item.Int(9), item.Int(4)})
	out = call(t, "object-merge", seq(o, o2))
	merged := out[0].(*item.Object)
	if merged.Len() != 4 {
		t.Errorf("merged has %d keys", merged.Len())
	}
	if v, _ := merged.Get("c"); int64(v.(item.Int)) != 3 {
		t.Errorf("merge should keep first occurrence, c=%v", v)
	}
	// keys over multiple objects dedups
	out = call(t, "keys", seq(o, o2))
	if len(out) != 4 {
		t.Errorf("keys over 2 objects = %v", out)
	}
}

func TestFlattenDeep(t *testing.T) {
	deep := item.NewArray(seq(item.Int(1), item.NewArray(seq(item.NewArray(seq(item.Int(2))), item.Int(3)))))
	out := call(t, "flatten", seq(deep))
	if len(out) != 3 {
		t.Fatalf("flatten = %v", out)
	}
	for i, want := range []int64{1, 2, 3} {
		if int64(out[i].(item.Int)) != want {
			t.Errorf("flatten[%d] = %v", i, out[i])
		}
	}
}

func TestJSONDocRejectsInvalid(t *testing.T) {
	if callErr(t, "json-doc", seq(item.Str("{broken"))) == nil {
		t.Error("json-doc on invalid JSON should error")
	}
}

func TestNumberFunction(t *testing.T) {
	out := call(t, "number", seq(item.Str("not-a-number")))
	if !math.IsNaN(float64(out[0].(item.Double))) {
		t.Errorf("number of garbage = %v, want NaN", out[0])
	}
	out = call(t, "number", nil)
	if !math.IsNaN(float64(out[0].(item.Double))) {
		t.Errorf("number(()) = %v, want NaN", out[0])
	}
	out = call(t, "number", seq(item.Bool(true)))
	if float64(out[0].(item.Double)) != 1 {
		t.Errorf("number(true) = %v", out[0])
	}
}

func TestRoundingPreservesIntegers(t *testing.T) {
	out := call(t, "floor", seq(item.Int(5)))
	if out[0].Kind() != item.KindInteger {
		t.Errorf("floor(int) kind = %s", out[0].Kind())
	}
	out = call(t, "round", seq(item.Double(2.5)))
	if out[0].Kind() != item.KindDouble || float64(out[0].(item.Double)) != 3 {
		t.Errorf("round(2.5) = %v (%s)", out[0], out[0].Kind())
	}
}

func TestErrorFunction(t *testing.T) {
	err := callErr(t, "error", seq(item.Str("custom message")))
	if err == nil || !strings.Contains(err.Error(), "custom message") {
		t.Errorf("error() = %v", err)
	}
	if callErr(t, "error") == nil {
		t.Error("error with no args should still error")
	}
}

// Property: reverse(reverse(s)) == s.
func TestReverseInvolution(t *testing.T) {
	f := func(xs []int16) bool {
		s := make([]item.Item, len(xs))
		for i, x := range xs {
			s[i] = item.Int(int64(x))
		}
		r, _ := Lookup("reverse")
		once, err := r.Call([][]item.Item{s})
		if err != nil {
			return false
		}
		twice, err := r.Call([][]item.Item{once})
		if err != nil || len(twice) != len(s) {
			return false
		}
		for i := range s {
			if !item.DeepEqual(s[i], twice[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct-values is idempotent and order-preserving on first
// occurrences.
func TestDistinctIdempotent(t *testing.T) {
	f := func(xs []int8) bool {
		s := make([]item.Item, len(xs))
		for i, x := range xs {
			s[i] = item.Int(int64(x))
		}
		once := DistinctValues(s)
		twice := DistinctValues(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if !item.DeepEqual(once[i], twice[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: head + tail recompose the sequence.
func TestHeadTailRecompose(t *testing.T) {
	f := func(xs []int16) bool {
		s := make([]item.Item, len(xs))
		for i, x := range xs {
			s[i] = item.Int(int64(x))
		}
		h, _ := Lookup("head")
		tl, _ := Lookup("tail")
		hs, err1 := h.Call([][]item.Item{s})
		ts, err2 := tl.Call([][]item.Item{s})
		if err1 != nil || err2 != nil {
			return false
		}
		return len(hs)+len(ts) == len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package functions

import (
	"testing"
	"testing/quick"

	"rumble/internal/item"
)

func TestCodepointRoundTrip(t *testing.T) {
	out := call(t, "string-to-codepoints", seq(item.Str("héB")))
	if len(out) != 3 || int64(out[0].(item.Int)) != 'h' || int64(out[1].(item.Int)) != 'é' {
		t.Errorf("codepoints = %v", out)
	}
	back := call(t, "codepoints-to-string", out)
	if string(back[0].(item.Str)) != "héB" {
		t.Errorf("round trip = %q", back[0])
	}
	if callErr(t, "codepoints-to-string", seq(item.Int(-1))) == nil {
		t.Error("negative codepoint should error")
	}
}

// Property: codepoints-to-string(string-to-codepoints(s)) == s for valid
// UTF-8 inputs.
func TestCodepointRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		cp, _ := Lookup("string-to-codepoints")
		cps, err := cp.Call([][]item.Item{{item.Str(s)}})
		if err != nil {
			return false
		}
		back, _ := Lookup("codepoints-to-string")
		out, err := back.Call([][]item.Item{cps})
		if err != nil {
			return false
		}
		// Invalid UTF-8 normalizes; compare through the rune view.
		return string(out[0].(item.Str)) == string([]rune(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTranslate(t *testing.T) {
	out := call(t, "translate", seq(item.Str("bare")), seq(item.Str("abr")), seq(item.Str("AB")))
	// a->A, b->B, r dropped (no target)
	if string(out[0].(item.Str)) != "BAe" {
		t.Errorf("translate = %q", out[0])
	}
}

func TestPadding(t *testing.T) {
	if out := call(t, "pad-left", seq(item.Str("7")), seq(item.Int(3)), seq(item.Str("0"))); string(out[0].(item.Str)) != "007" {
		t.Errorf("pad-left = %q", out[0])
	}
	if out := call(t, "pad-right", seq(item.Str("ab")), seq(item.Int(5))); string(out[0].(item.Str)) != "ab   " {
		t.Errorf("pad-right = %q", out[0])
	}
	if out := call(t, "pad-left", seq(item.Str("long")), seq(item.Int(2))); string(out[0].(item.Str)) != "long" {
		t.Errorf("pad shorter than input = %q", out[0])
	}
	if callErr(t, "pad-left", seq(item.Str("x")), seq(item.Int(5)), seq(item.Str(""))) == nil {
		t.Error("empty fill should error")
	}
	if out := call(t, "repeat-string", seq(item.Str("ab")), seq(item.Int(3))); string(out[0].(item.Str)) != "ababab" {
		t.Errorf("repeat-string = %q", out[0])
	}
	if out := call(t, "trim", seq(item.Str("  x "))); string(out[0].(item.Str)) != "x" {
		t.Errorf("trim = %q", out[0])
	}
}

func TestEncodings(t *testing.T) {
	enc := call(t, "hex-encode", seq(item.Str("AB")))
	if string(enc[0].(item.Str)) != "4142" {
		t.Errorf("hex-encode = %q", enc[0])
	}
	dec := call(t, "hex-decode", enc)
	if string(dec[0].(item.Str)) != "AB" {
		t.Errorf("hex-decode = %q", dec[0])
	}
	if callErr(t, "hex-decode", seq(item.Str("zz"))) == nil {
		t.Error("invalid hex should error")
	}
	b64 := call(t, "base64-encode", seq(item.Str("hello")))
	if string(b64[0].(item.Str)) != "aGVsbG8=" {
		t.Errorf("base64-encode = %q", b64[0])
	}
	back := call(t, "base64-decode", b64)
	if string(back[0].(item.Str)) != "hello" {
		t.Errorf("base64-decode = %q", back[0])
	}
}

func TestMathFunctions(t *testing.T) {
	if out := call(t, "exp", seq(item.Int(0))); float64(out[0].(item.Double)) != 1 {
		t.Errorf("exp(0) = %v", out[0])
	}
	if out := call(t, "log10", seq(item.Int(1000))); float64(out[0].(item.Double)) != 3 {
		t.Errorf("log10(1000) = %v", out[0])
	}
	pi := call(t, "pi")
	if float64(pi[0].(item.Double)) < 3.14 || float64(pi[0].(item.Double)) > 3.15 {
		t.Errorf("pi = %v", pi[0])
	}
	// banker's rounding
	if out := call(t, "round-half-to-even", seq(item.Double(2.5))); float64(out[0].(item.Double)) != 2 {
		t.Errorf("round-half-to-even(2.5) = %v", out[0])
	}
	if out := call(t, "round-half-to-even", seq(item.Double(3.5))); float64(out[0].(item.Double)) != 4 {
		t.Errorf("round-half-to-even(3.5) = %v", out[0])
	}
	out := call(t, "round-half-to-even", seq(item.Double(2.345)), seq(item.Int(2)))
	if v := float64(out[0].(item.Double)); v < 2.33 || v > 2.35 {
		t.Errorf("round-half-to-even(2.345, 2) = %v", v)
	}
}

func TestSetOperations(t *testing.T) {
	a := seq(item.Int(1), item.Int(2), item.Int(3), item.Int(2))
	b := seq(item.Int(2), item.Int(4))
	inter := call(t, "intersect", a, b)
	if len(inter) != 1 || int64(inter[0].(item.Int)) != 2 {
		t.Errorf("intersect = %v", inter)
	}
	exc := call(t, "except", a, b)
	if len(exc) != 2 || int64(exc[0].(item.Int)) != 1 || int64(exc[1].(item.Int)) != 3 {
		t.Errorf("except = %v", exc)
	}
	uni := call(t, "union-values", a, b)
	if len(uni) != 4 {
		t.Errorf("union-values = %v", uni)
	}
}

// Property: intersect(a, b) + except(a, b) covers distinct-values(a).
func TestIntersectExceptPartition(t *testing.T) {
	f := func(xs, ys []int8) bool {
		a := make([]item.Item, len(xs))
		for i, x := range xs {
			a[i] = item.Int(int64(x))
		}
		b := make([]item.Item, len(ys))
		for i, y := range ys {
			b[i] = item.Int(int64(y))
		}
		inter, _ := Lookup("intersect")
		exc, _ := Lookup("except")
		i1, err1 := inter.Call([][]item.Item{a, b})
		e1, err2 := exc.Call([][]item.Item{a, b})
		if err1 != nil || err2 != nil {
			return false
		}
		return len(i1)+len(e1) == len(DistinctValues(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

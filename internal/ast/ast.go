// Package ast defines the expression and clause tree that the parser
// produces and the compiler translates into runtime iterators. It mirrors
// Rumble's "tree of expressions and clauses, with a class for each type of
// expression and clause" (§5.3 of the paper).
package ast

import (
	"rumble/internal/item"
	"rumble/internal/lexer"
)

// Expr is any JSONiq expression node.
type Expr interface {
	Pos() lexer.Pos
	exprNode()
}

type base struct {
	P lexer.Pos
}

// Pos returns the source position of the node.
func (b base) Pos() lexer.Pos { return b.P }

// SetPos records the source position; the parser calls it on every node.
func (b *base) SetPos(p lexer.Pos) { b.P = p }
func (base) exprNode()             {}

// Literal is an atomic literal (integer, decimal, double, string, boolean,
// null).
type Literal struct {
	base
	Value item.Item
}

// NewLiteral constructs a literal node.
func NewLiteral(pos lexer.Pos, v item.Item) *Literal {
	return &Literal{base: base{P: pos}, Value: v}
}

// VarRef is a variable reference $name.
type VarRef struct {
	base
	Name string
}

// NewVarRef constructs a variable reference.
func NewVarRef(pos lexer.Pos, name string) *VarRef { return &VarRef{base{pos}, name} }

// ContextItem is the $$ expression.
type ContextItem struct{ base }

// NewContextItem constructs a context item reference.
func NewContextItem(pos lexer.Pos) *ContextItem { return &ContextItem{base{pos}} }

// CommaExpr is sequence construction: e1, e2, ..., flattened.
type CommaExpr struct {
	base
	Exprs []Expr
}

// ObjectConstructor is { k1: v1, ... }. Keys are expressions (NCNames and
// string literals parse to string Literals; dynamic keys are allowed).
type ObjectConstructor struct {
	base
	Keys   []Expr
	Values []Expr
}

// ArrayConstructor is [ expr? ].
type ArrayConstructor struct {
	base
	Body Expr // nil for []
}

// Unary is + or - applied to an operand ("-" may stack).
type Unary struct {
	base
	Minus   bool
	Operand Expr
}

// Arith is a binary arithmetic expression.
type Arith struct {
	base
	Op   item.ArithOp
	L, R Expr
}

// RangeExpr is "L to R".
type RangeExpr struct {
	base
	L, R Expr
}

// ConcatExpr is the string concatenation operator "||".
type ConcatExpr struct {
	base
	L, R Expr
}

// CompareOp is a comparison operator name: one of eq ne lt le gt ge for
// value comparisons and = != < <= > >= for general comparisons.
type CompareOp string

// Comparison is a value or general comparison. General reports whether the
// operator was the general form (=, !=, <, ...), which has existential
// semantics over sequences.
type Comparison struct {
	base
	Op      CompareOp
	General bool
	L, R    Expr
}

// Logic is "and" / "or" (two-valued, with effective boolean values).
type Logic struct {
	base
	IsAnd bool
	L, R  Expr
}

// Predicate is Input[Pred], filtering items by predicate; numeric
// predicates select by position.
type Predicate struct {
	base
	Input Expr
	Pred  Expr
}

// ObjectLookup is Input.Key (Key may be dynamic).
type ObjectLookup struct {
	base
	Input Expr
	Key   Expr
}

// ArrayLookup is Input[[Index]].
type ArrayLookup struct {
	base
	Input Expr
	Index Expr
}

// ArrayUnbox is Input[] — streams the members of each array item.
type ArrayUnbox struct {
	base
	Input Expr
}

// SimpleMap is the "!" operator: Input ! Mapping evaluates Mapping once
// per input item with $$ bound to it, concatenating the results.
type SimpleMap struct {
	base
	Input   Expr
	Mapping Expr
}

// FunctionCall invokes a builtin or user-declared function.
type FunctionCall struct {
	base
	Name string
	Args []Expr
}

// IfExpr is if (Cond) then Then else Else.
type IfExpr struct {
	base
	Cond, Then, Else Expr
}

// SwitchCase is one case of a switch expression; several case values may
// share a return.
type SwitchCase struct {
	Values []Expr
	Result Expr
}

// SwitchExpr is switch (Input) case ... default return Default.
type SwitchExpr struct {
	base
	Input   Expr
	Cases   []SwitchCase
	Default Expr
}

// TryCatch is try { Try } catch * { Catch }. The error description is bound
// to $err:description inside the catch block when requested.
type TryCatch struct {
	base
	Try   Expr
	Catch Expr
}

// QuantifiedBinding is one "$v in expr" binding of a quantified expression.
type QuantifiedBinding struct {
	Var string
	In  Expr
}

// Quantified is some/every $v in e (, ...) satisfies cond.
type Quantified struct {
	base
	Every     bool
	Bindings  []QuantifiedBinding
	Satisfies Expr
}

// SequenceType is a parsed sequence type: an item type name plus an
// occurrence indicator ("", "?", "*", "+"), or empty-sequence().
type SequenceType struct {
	ItemType      string
	Occurrence    string
	EmptySequence bool
}

// InstanceOf is "Input instance of Type".
type InstanceOf struct {
	base
	Input Expr
	Type  SequenceType
}

// TreatAs is "Input treat as Type" — a runtime-checked cast of the static
// type.
type TreatAs struct {
	base
	Input Expr
	Type  SequenceType
}

// CastableAs is "Input castable as TypeName".
type CastableAs struct {
	base
	Input    Expr
	TypeName string
}

// CastAs is "Input cast as TypeName".
type CastAs struct {
	base
	Input    Expr
	TypeName string
}

// --- FLWOR ---

// Clause is any FLWOR clause except return.
type Clause interface {
	Pos() lexer.Pos
	clauseNode()
}

type clauseBase struct {
	P lexer.Pos
}

// Pos returns the source position of the clause.
func (b clauseBase) Pos() lexer.Pos { return b.P }

// SetPos records the source position; the parser calls it on every clause.
func (b *clauseBase) SetPos(p lexer.Pos) { b.P = p }
func (clauseBase) clauseNode()           {}

// ForClause binds Var to each item of In; PosVar ("at $i") optionally binds
// the 1-based position; AllowEmpty keeps a tuple with an empty binding when
// In is empty.
type ForClause struct {
	clauseBase
	Var        string
	PosVar     string
	AllowEmpty bool
	In         Expr
}

// LetClause binds Var to the whole sequence of Value.
type LetClause struct {
	clauseBase
	Var   string
	Value Expr
}

// WhereClause filters tuples by the effective boolean value of Cond.
type WhereClause struct {
	clauseBase
	Cond Expr
}

// GroupSpec is one grouping key: "$v" (group by an existing variable) or
// "$v := expr" (bind then group).
type GroupSpec struct {
	Var  string
	Expr Expr // nil when grouping by an already-bound variable
}

// GroupByClause groups tuples by its key specs; non-grouping variables
// rebind to the concatenation of their values within each group.
type GroupByClause struct {
	clauseBase
	Specs []GroupSpec
}

// OrderSpec is one ordering key.
type OrderSpec struct {
	Expr          Expr
	Descending    bool
	EmptyGreatest bool
}

// OrderByClause sorts the tuple stream.
type OrderByClause struct {
	clauseBase
	Specs []OrderSpec
}

// CountClause binds Var to the 1-based position of each tuple.
type CountClause struct {
	clauseBase
	Var string
}

// FLWOR is the full FLWOR expression: clauses plus the return expression.
type FLWOR struct {
	base
	Clauses []Clause
	Return  Expr
}

// --- Prolog ---

// VarDecl is "declare variable $name := expr;".
type VarDecl struct {
	Pos  lexer.Pos
	Name string
	Init Expr
}

// FunctionDecl is "declare function name($p1, ...) { body };" — the
// user-defined functions the paper lists as future work.
type FunctionDecl struct {
	Pos    lexer.Pos
	Name   string
	Params []string
	Body   Expr
}

// Module is a parsed query: prolog declarations plus the main expression.
type Module struct {
	Vars      []VarDecl
	Functions []FunctionDecl
	Body      Expr
}

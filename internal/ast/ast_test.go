package ast

import (
	"testing"

	"rumble/internal/item"
	"rumble/internal/lexer"
)

func TestPositionsRoundTrip(t *testing.T) {
	pos := lexer.Pos{Line: 3, Col: 7}
	nodes := []Expr{
		NewLiteral(pos, item.Int(1)),
		NewVarRef(pos, "x"),
		NewContextItem(pos),
	}
	for _, n := range nodes {
		if n.Pos() != pos {
			t.Errorf("%T position = %v", n, n.Pos())
		}
	}
	l := &Logic{IsAnd: true}
	l.SetPos(pos)
	if l.Pos() != pos {
		t.Error("SetPos on expression node failed")
	}
	fc := &ForClause{Var: "v"}
	fc.SetPos(pos)
	if fc.Pos() != pos {
		t.Error("SetPos on clause node failed")
	}
}

func TestExprInterfaceCoverage(t *testing.T) {
	// Every node kind must satisfy Expr (compile-time check via
	// assignment; failures break the build rather than this test).
	var exprs = []Expr{
		&Literal{}, &VarRef{}, &ContextItem{}, &CommaExpr{},
		&ObjectConstructor{}, &ArrayConstructor{}, &Unary{}, &Arith{},
		&RangeExpr{}, &ConcatExpr{}, &Comparison{}, &Logic{}, &Predicate{},
		&ObjectLookup{}, &ArrayLookup{}, &ArrayUnbox{}, &SimpleMap{},
		&FunctionCall{}, &IfExpr{}, &SwitchExpr{}, &TryCatch{},
		&Quantified{}, &InstanceOf{}, &TreatAs{}, &CastableAs{}, &CastAs{},
		&FLWOR{},
	}
	if len(exprs) != 27 {
		t.Errorf("%d expression kinds registered", len(exprs))
	}
	var clauses = []Clause{
		&ForClause{}, &LetClause{}, &WhereClause{}, &GroupByClause{},
		&OrderByClause{}, &CountClause{},
	}
	if len(clauses) != 6 {
		t.Errorf("%d clause kinds registered", len(clauses))
	}
}

func TestSequenceTypeFields(t *testing.T) {
	st := SequenceType{ItemType: "integer", Occurrence: "+"}
	if st.EmptySequence {
		t.Error("zero EmptySequence should be false")
	}
	es := SequenceType{EmptySequence: true}
	if es.ItemType != "" {
		t.Error("empty-sequence type should have no item type")
	}
}

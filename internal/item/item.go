// Package item implements the JSONiq Data Model (JDM): items and sequences
// of items. An item is an atomic value (null, boolean, integer, decimal,
// double, string), an object mapping strings to items, or an array holding
// an ordered list of items. Sequences are flat ([]Item) and never nest; a
// sequence of one item is canonically identified with that item.
//
// The package also provides the cross-type comparison, arithmetic, grouping
// and ordering semantics that the runtime and the DataFrame layer rely on.
package item

import (
	"fmt"
	"math/big"
	"strings"
)

// Kind discriminates the dynamic type of an Item.
type Kind int

// The item kinds of the core JSONiq data model.
const (
	KindNull Kind = iota
	KindBoolean
	KindInteger
	KindDecimal
	KindDouble
	KindString
	KindArray
	KindObject
)

// String returns the JSONiq name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBoolean:
		return "boolean"
	case KindInteger:
		return "integer"
	case KindDecimal:
		return "decimal"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindArray:
		return "array"
	case KindObject:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Item is a single value of the JSONiq data model.
//
// Implementations are immutable once constructed; they may be shared freely
// across goroutines, partitions and closures.
type Item interface {
	// Kind reports the dynamic kind of the item.
	Kind() Kind
	// AppendJSON appends the canonical JSON serialization to dst.
	AppendJSON(dst []byte) []byte
	// String returns the canonical JSON serialization (strings unquoted
	// render via AppendJSON; Str.String returns the raw text).
	String() string
}

// Sequence is a flat sequence of items, the universal value of every JSONiq
// expression. A nil or empty slice is the empty sequence.
type Sequence = []Item

// IsAtomic reports whether it is an atomic item (not an object or array).
func IsAtomic(it Item) bool {
	switch it.Kind() {
	case KindArray, KindObject:
		return false
	default:
		return true
	}
}

// IsNumeric reports whether it is an integer, decimal or double.
func IsNumeric(it Item) bool {
	switch it.Kind() {
	case KindInteger, KindDecimal, KindDouble:
		return true
	default:
		return false
	}
}

// Null is the JSON null item.
type Null struct{}

// Kind implements Item.
func (Null) Kind() Kind { return KindNull }

// AppendJSON implements Item.
func (Null) AppendJSON(dst []byte) []byte { return append(dst, "null"...) }

func (Null) String() string { return "null" }

// Bool is a boolean item.
type Bool bool

// Kind implements Item.
func (Bool) Kind() Kind { return KindBoolean }

// AppendJSON implements Item.
func (b Bool) AppendJSON(dst []byte) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func (b Bool) String() string { return string(b.AppendJSON(nil)) }

// Int is an integer item (xs:integer restricted to 64 bits).
type Int int64

// Kind implements Item.
func (Int) Kind() Kind { return KindInteger }

// AppendJSON implements Item.
func (i Int) AppendJSON(dst []byte) []byte { return appendInt(dst, int64(i)) }

func (i Int) String() string { return string(i.AppendJSON(nil)) }

// Double is an IEEE-754 double item.
type Double float64

// Kind implements Item.
func (Double) Kind() Kind { return KindDouble }

// AppendJSON implements Item.
func (d Double) AppendJSON(dst []byte) []byte { return appendDouble(dst, float64(d)) }

func (d Double) String() string { return string(d.AppendJSON(nil)) }

// Dec is an arbitrary-precision decimal item backed by a rational number.
// The zero value is not usable; construct with NewDecimal or DecimalFromString.
type Dec struct {
	rat *big.Rat
}

// NewDecimal returns a decimal item holding r. The rational is not copied;
// callers must not mutate it afterwards.
func NewDecimal(r *big.Rat) Dec { return Dec{rat: r} }

// DecimalFromString parses a decimal literal such as "3.14".
func DecimalFromString(s string) (Dec, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Dec{}, fmt.Errorf("invalid decimal literal %q", s)
	}
	return Dec{rat: r}, nil
}

// Kind implements Item.
func (Dec) Kind() Kind { return KindDecimal }

// Rat returns the underlying rational value. Callers must not mutate it.
func (d Dec) Rat() *big.Rat { return d.rat }

// Float64 returns the nearest double value.
func (d Dec) Float64() float64 {
	f, _ := d.rat.Float64()
	return f
}

// AppendJSON implements Item.
func (d Dec) AppendJSON(dst []byte) []byte {
	if d.rat.IsInt() {
		return append(dst, d.rat.Num().String()...)
	}
	s := d.rat.FloatString(12)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return append(dst, s...)
}

func (d Dec) String() string { return string(d.AppendJSON(nil)) }

// Str is a string item.
type Str string

// Kind implements Item.
func (Str) Kind() Kind { return KindString }

// AppendJSON implements Item.
func (s Str) AppendJSON(dst []byte) []byte { return appendQuoted(dst, string(s)) }

func (s Str) String() string { return string(s) }

// Array is an ordered list of items.
type Array struct {
	members []Item
}

// NewArray returns an array item over members. The slice is not copied;
// callers must not mutate it afterwards.
func NewArray(members []Item) *Array { return &Array{members: members} }

// Kind implements Item.
func (*Array) Kind() Kind { return KindArray }

// Len returns the number of members.
func (a *Array) Len() int { return len(a.members) }

// Member returns the i-th member (0-based).
func (a *Array) Member(i int) Item { return a.members[i] }

// Members returns the member slice. Callers must not mutate it.
func (a *Array) Members() []Item { return a.members }

// AppendJSON implements Item.
func (a *Array) AppendJSON(dst []byte) []byte {
	dst = append(dst, '[')
	for i, m := range a.members {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = m.AppendJSON(dst)
	}
	return append(dst, ']')
}

func (a *Array) String() string { return string(a.AppendJSON(nil)) }

// Object maps string keys to items, preserving insertion order. Lookup is
// O(1) for large objects via a lazily built index, and a linear scan for
// small ones.
type Object struct {
	keys   []string
	values []Item
	index  map[string]int // built when len(keys) > smallObjectLimit
}

const smallObjectLimit = 8

// NewObject returns an object item over parallel key/value slices. The
// slices are not copied; callers must not mutate them afterwards. If a key
// occurs multiple times, the first occurrence wins on lookup.
func NewObject(keys []string, values []Item) *Object {
	o := &Object{keys: keys, values: values}
	if len(keys) > smallObjectLimit {
		o.index = make(map[string]int, len(keys))
		for i := len(keys) - 1; i >= 0; i-- {
			o.index[keys[i]] = i
		}
	}
	return o
}

// ObjectFromMap builds an object from a map with keys sorted for
// determinism. Intended for tests and small literals.
func ObjectFromMap(m map[string]Item) *Object {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	values := make([]Item, len(keys))
	for i, k := range keys {
		values[i] = m[k]
	}
	return NewObject(keys, values)
}

// Kind implements Item.
func (*Object) Kind() Kind { return KindObject }

// Len returns the number of keys.
func (o *Object) Len() int { return len(o.keys) }

// Keys returns the key slice in insertion order. Callers must not mutate it.
func (o *Object) Keys() []string { return o.keys }

// ValueAt returns the value of the i-th key.
func (o *Object) ValueAt(i int) Item { return o.values[i] }

// Get returns the value bound to key, if any.
func (o *Object) Get(key string) (Item, bool) {
	if o.index != nil {
		if i, ok := o.index[key]; ok {
			return o.values[i], true
		}
		return nil, false
	}
	for i, k := range o.keys {
		if k == key {
			return o.values[i], true
		}
	}
	return nil, false
}

// AppendJSON implements Item.
func (o *Object) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	for i, k := range o.keys {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = appendQuoted(dst, k)
		dst = append(dst, " : "...)
		dst = o.values[i].AppendJSON(dst)
	}
	return append(dst, '}')
}

func (o *Object) String() string { return string(o.AppendJSON(nil)) }

// SerializeSequence renders a sequence the way the Rumble shell does: one
// item per line.
func SerializeSequence(seq []Item) string {
	var b strings.Builder
	for i, it := range seq {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.Write(it.AppendJSON(nil))
	}
	return b.String()
}

func sortStrings(s []string) {
	// Insertion sort: ObjectFromMap is used for small literals only.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

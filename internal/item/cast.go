package item

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"
)

// StringValue casts an atomic item to its string value (the "cast as
// string" semantics). Objects and arrays cannot be cast.
func StringValue(it Item) (string, error) {
	switch v := it.(type) {
	case Str:
		return string(v), nil
	case Int:
		return strconv.FormatInt(int64(v), 10), nil
	case Double:
		return string(appendDouble(nil, float64(v))), nil
	case Dec:
		return v.String(), nil
	case Bool:
		if v {
			return "true", nil
		}
		return "false", nil
	case Null:
		return "null", nil
	default:
		return "", fmt.Errorf("cannot cast %s item to string", it.Kind())
	}
}

// CastToInteger casts an atomic item to integer: numbers truncate toward
// zero, strings parse, booleans map to 0/1.
func CastToInteger(it Item) (Item, error) {
	switch v := it.(type) {
	case Int:
		return v, nil
	case Double:
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) || math.Abs(f) >= math.MaxInt64 {
			return nil, fmt.Errorf("cannot cast double %v to integer", f)
		}
		return Int(int64(math.Trunc(f))), nil
	case Dec:
		r := v.Rat()
		z := new(big.Int).Quo(r.Num(), r.Denom())
		if !z.IsInt64() {
			return nil, fmt.Errorf("decimal %s out of integer range", v)
		}
		return Int(z.Int64()), nil
	case Bool:
		if v {
			return Int(1), nil
		}
		return Int(0), nil
	case Str:
		n, err := strconv.ParseInt(strings.TrimSpace(string(v)), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cannot cast string %q to integer", string(v))
		}
		return Int(n), nil
	default:
		return nil, fmt.Errorf("cannot cast %s item to integer", it.Kind())
	}
}

// CastToDouble casts an atomic item to double.
func CastToDouble(it Item) (Item, error) {
	switch v := it.(type) {
	case Double:
		return v, nil
	case Int:
		return Double(float64(v)), nil
	case Dec:
		return Double(v.Float64()), nil
	case Bool:
		if v {
			return Double(1), nil
		}
		return Double(0), nil
	case Str:
		s := strings.TrimSpace(string(v))
		switch s {
		case "NaN":
			return Double(math.NaN()), nil
		case "Infinity", "INF":
			return Double(math.Inf(1)), nil
		case "-Infinity", "-INF":
			return Double(math.Inf(-1)), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("cannot cast string %q to double", string(v))
		}
		return Double(f), nil
	default:
		return nil, fmt.Errorf("cannot cast %s item to double", it.Kind())
	}
}

// CastToDecimal casts an atomic item to decimal.
func CastToDecimal(it Item) (Item, error) {
	switch v := it.(type) {
	case Dec:
		return v, nil
	case Int:
		return Dec{rat: new(big.Rat).SetInt64(int64(v))}, nil
	case Double:
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("cannot cast non-finite double to decimal")
		}
		r := new(big.Rat)
		r.SetFloat64(f)
		return Dec{rat: r}, nil
	case Bool:
		if v {
			return Dec{rat: big.NewRat(1, 1)}, nil
		}
		return Dec{rat: big.NewRat(0, 1)}, nil
	case Str:
		d, err := DecimalFromString(strings.TrimSpace(string(v)))
		if err != nil {
			return nil, fmt.Errorf("cannot cast string %q to decimal", string(v))
		}
		return d, nil
	default:
		return nil, fmt.Errorf("cannot cast %s item to decimal", it.Kind())
	}
}

// CastToBoolean casts an atomic item to boolean: numbers are false iff zero
// or NaN, strings must spell "true"/"false"/"1"/"0".
func CastToBoolean(it Item) (Item, error) {
	switch v := it.(type) {
	case Bool:
		return v, nil
	case Int:
		return Bool(v != 0), nil
	case Double:
		f := float64(v)
		return Bool(!(f == 0 || math.IsNaN(f))), nil
	case Dec:
		return Bool(v.rat.Sign() != 0), nil
	case Str:
		switch strings.TrimSpace(string(v)) {
		case "true", "1":
			return Bool(true), nil
		case "false", "0":
			return Bool(false), nil
		}
		return nil, fmt.Errorf("cannot cast string %q to boolean", string(v))
	default:
		return nil, fmt.Errorf("cannot cast %s item to boolean", it.Kind())
	}
}

// CastTo casts an atomic item to the named core type. Supported targets:
// string, integer, double, decimal, boolean, null.
func CastTo(it Item, typeName string) (Item, error) {
	switch typeName {
	case "string":
		s, err := StringValue(it)
		if err != nil {
			return nil, err
		}
		return Str(s), nil
	case "integer":
		return CastToInteger(it)
	case "double":
		return CastToDouble(it)
	case "decimal":
		return CastToDecimal(it)
	case "boolean":
		return CastToBoolean(it)
	case "null":
		if it.Kind() == KindNull {
			return it, nil
		}
		return nil, fmt.Errorf("cannot cast %s item to null", it.Kind())
	default:
		return nil, fmt.Errorf("unknown type %q in cast", typeName)
	}
}

// Castable reports whether the cast of it to typeName would succeed.
func Castable(it Item, typeName string) bool {
	_, err := CastTo(it, typeName)
	return err == nil
}

// InstanceOf reports whether it is an instance of the named core item type.
// "numeric" matches any of integer/decimal/double, and "atomic" any atomic.
func InstanceOf(it Item, typeName string) bool {
	switch typeName {
	case "item":
		return true
	case "atomic":
		return IsAtomic(it)
	case "numeric":
		return IsNumeric(it)
	case "string":
		return it.Kind() == KindString
	case "integer":
		return it.Kind() == KindInteger
	case "decimal":
		// xs:integer is derived from xs:decimal.
		return it.Kind() == KindDecimal || it.Kind() == KindInteger
	case "double":
		return it.Kind() == KindDouble
	case "boolean":
		return it.Kind() == KindBoolean
	case "null":
		return it.Kind() == KindNull
	case "object":
		return it.Kind() == KindObject
	case "array":
		return it.Kind() == KindArray
	default:
		return false
	}
}

package item

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func mustArith(t *testing.T, op ArithOp, a, b Item) Item {
	t.Helper()
	r, err := Arithmetic(op, a, b)
	if err != nil {
		t.Fatalf("Arithmetic(%s, %v, %v): %v", op, a, b, err)
	}
	return r
}

func TestIntegerArithmetic(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b int64
		want string
	}{
		{OpAdd, 2, 3, "5"},
		{OpSub, 2, 5, "-3"},
		{OpMul, 6, 7, "42"},
		{OpIDiv, 7, 2, "3"},
		{OpIDiv, -7, 2, "-3"},
		{OpMod, 7, 3, "1"},
		{OpMod, -7, 3, "-1"},
		{OpDiv, 6, 3, "2"},   // div promotes to decimal, normalized back to int
		{OpDiv, 1, 2, "0.5"}, // div of integers yields a decimal
	}
	for _, c := range cases {
		got := mustArith(t, c.op, Int(c.a), Int(c.b)).String()
		if got != c.want {
			t.Errorf("%d %s %d = %s, want %s", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithmeticPromotion(t *testing.T) {
	// double contaminates
	r := mustArith(t, OpAdd, Int(1), Double(0.5))
	if r.Kind() != KindDouble || float64(r.(Double)) != 1.5 {
		t.Errorf("int+double = %v (%s)", r, r.Kind())
	}
	// decimal + int stays exact
	d := NewDecimal(big.NewRat(1, 3))
	r = mustArith(t, OpMul, d, Int(3))
	if r.String() != "1" {
		t.Errorf("(1/3)*3 = %s, want 1 (exact rational)", r)
	}
	// div on integers is decimal, never float
	r = mustArith(t, OpDiv, Int(1), Int(3))
	if r.Kind() != KindDecimal {
		t.Errorf("1 div 3 kind = %s, want decimal", r.Kind())
	}
}

func TestIntegerOverflowPromotesToDecimal(t *testing.T) {
	r := mustArith(t, OpAdd, Int(math.MaxInt64), Int(1))
	if r.Kind() != KindDecimal {
		t.Fatalf("MaxInt64+1 kind = %s, want decimal", r.Kind())
	}
	if r.String() != "9223372036854775808" {
		t.Errorf("MaxInt64+1 = %s", r)
	}
	r = mustArith(t, OpMul, Int(math.MaxInt64), Int(2))
	if r.Kind() != KindDecimal {
		t.Errorf("MaxInt64*2 kind = %s, want decimal", r.Kind())
	}
	r = mustArith(t, OpSub, Int(math.MinInt64), Int(1))
	if r.String() != "-9223372036854775809" {
		t.Errorf("MinInt64-1 = %s", r)
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, op := range []ArithOp{OpDiv, OpIDiv, OpMod} {
		if _, err := Arithmetic(op, Int(1), Int(0)); err == nil {
			t.Errorf("1 %s 0 should error", op)
		}
	}
	// double division by zero yields infinity, not an error
	r := mustArith(t, OpDiv, Double(1), Double(0))
	if !math.IsInf(float64(r.(Double)), 1) {
		t.Errorf("1.0 div 0.0 = %v, want +Inf", r)
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Arithmetic(OpAdd, Str("1"), Int(1)); err == nil {
		t.Error("string + int should error")
	}
	if _, err := Arithmetic(OpAdd, NewArray(nil), Int(1)); err == nil {
		t.Error("array + int should error")
	}
}

func TestNegate(t *testing.T) {
	if r, _ := Negate(Int(5)); int64(r.(Int)) != -5 {
		t.Errorf("-(5) = %v", r)
	}
	if r, _ := Negate(Double(2.5)); float64(r.(Double)) != -2.5 {
		t.Errorf("-(2.5) = %v", r)
	}
	r, err := Negate(Int(math.MinInt64))
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "9223372036854775808" {
		t.Errorf("-(MinInt64) = %s", r)
	}
	if _, err := Negate(Str("x")); err == nil {
		t.Error("negating a string should error")
	}
}

// Property: for safe ranges, a+b-b == a through the item layer.
func TestAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		sum := mustA(OpAdd, Int(int64(a)), Int(int64(b)))
		back := mustA(OpSub, sum, Int(int64(b)))
		return DeepEqual(back, Int(int64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: idiv/mod law: a == b*(a idiv b) + (a mod b) for b != 0.
func TestDivModLaw(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		q := mustA(OpIDiv, Int(int64(a)), Int(int64(b)))
		r := mustA(OpMod, Int(int64(a)), Int(int64(b)))
		recomposed := mustA(OpAdd, mustA(OpMul, Int(int64(b)), q), r)
		return DeepEqual(recomposed, Int(int64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decimal arithmetic is exact: (a/b)*(b) == a over rationals.
func TestDecimalExactness(t *testing.T) {
	f := func(a int16, b int16) bool {
		if b == 0 {
			return true
		}
		q := mustA(OpDiv, Int(int64(a)), Int(int64(b)))
		back := mustA(OpMul, q, Int(int64(b)))
		return DeepEqual(back, Int(int64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustA(op ArithOp, a, b Item) Item {
	r, err := Arithmetic(op, a, b)
	if err != nil {
		panic(err)
	}
	return r
}

func TestCasts(t *testing.T) {
	if r, _ := CastToInteger(Double(2.9)); int64(r.(Int)) != 2 {
		t.Errorf("integer(2.9) = %v, want truncation", r)
	}
	if r, _ := CastToInteger(Str(" 42 ")); int64(r.(Int)) != 42 {
		t.Errorf(`integer(" 42 ") = %v`, r)
	}
	if _, err := CastToInteger(Str("4.5")); err == nil {
		t.Error(`integer("4.5") should error`)
	}
	if r, _ := CastToDouble(Str("2.5e3")); float64(r.(Double)) != 2500 {
		t.Errorf(`double("2.5e3") = %v`, r)
	}
	if r, _ := CastToBoolean(Str("true")); !bool(r.(Bool)) {
		t.Errorf(`boolean("true") = %v`, r)
	}
	if _, err := CastToBoolean(Str("yes")); err == nil {
		t.Error(`boolean("yes") should error`)
	}
	if s, _ := StringValue(Int(-7)); s != "-7" {
		t.Errorf("string(-7) = %q", s)
	}
	if s, _ := StringValue(Bool(false)); s != "false" {
		t.Errorf("string(false) = %q", s)
	}
	if _, err := StringValue(NewArray(nil)); err == nil {
		t.Error("string([]) should error")
	}
}

func TestCastToAndInstanceOf(t *testing.T) {
	r, err := CastTo(Str("12"), "integer")
	if err != nil || int64(r.(Int)) != 12 {
		t.Errorf("CastTo integer = %v, %v", r, err)
	}
	if !Castable(Str("12"), "integer") || Castable(Str("x"), "integer") {
		t.Error("Castable misreports")
	}
	if !InstanceOf(Int(1), "integer") || !InstanceOf(Int(1), "decimal") || !InstanceOf(Int(1), "numeric") {
		t.Error("integer should be instance of integer/decimal/numeric")
	}
	if InstanceOf(Str("x"), "numeric") || !InstanceOf(Str("x"), "atomic") {
		t.Error("string classification wrong")
	}
	if !InstanceOf(NewArray(nil), "array") || !InstanceOf(NewObject(nil, nil), "object") {
		t.Error("structured classification wrong")
	}
	if !InstanceOf(Null{}, "null") || !InstanceOf(Null{}, "item") {
		t.Error("null classification wrong")
	}
}

package item

import (
	"bytes"
	"math"
	"testing"
)

// fuzzKeyItem maps fuzz primitives to one atomic key sequence: the empty
// sequence or a null, boolean, string, integer or double item — the kinds
// EncodeSortKey accepts.
func fuzzKeyItem(kind uint8, i int64, f float64, s string) []Item {
	switch kind % 6 {
	case 0:
		return nil
	case 1:
		return []Item{Null{}}
	case 2:
		return []Item{Bool(i&1 == 0)}
	case 3:
		return []Item{Str(s)}
	case 4:
		return []Item{Int(i)}
	default:
		return []Item{Double(f)}
	}
}

// boundaryDouble reports whether d falls where the (Num, Int) encoding is
// documented to collapse against int64 values: NaN orders greatest by
// sentinel (CompareValues cannot order it at all), and integral doubles at
// or beyond 2^63 share their rounded Num with in-range int64 keys without
// an exact Int tie-breaker.
func boundaryDouble(it Item) bool {
	d, ok := it.(Double)
	if !ok {
		return false
	}
	return math.IsNaN(float64(d)) || math.Abs(float64(d)) >= 9.223372036854775808e18
}

// FuzzSortKeyTotalOrder checks the sort-key encoding contract on arbitrary
// key pairs:
//
//   - Compare is a total order: reflexive, antisymmetric, and transitive
//     (probed with a third key derived from the same inputs);
//   - AppendSortKey agrees with Compare exactly — two keys encode to the
//     same bytes if and only if Compare orders them equal, and byte-wise
//     lexicographic order never contradicts Compare, so hash-join and
//     group-by bucketing by encoded bytes matches order-by semantics;
//   - where CompareValues defines an ordering (and away from the documented
//     NaN/2^63 boundaries), the key order agrees with the value order.
func FuzzSortKeyTotalOrder(f *testing.F) {
	f.Add(uint8(4), int64(9223372036854775807), 9.223372036854775808e18, "")
	f.Add(uint8(5), int64(1)<<53, float64(1<<53)+2, "x")
	f.Add(uint8(5), int64(0), math.NaN(), "NaN")
	f.Add(uint8(5), int64(-1), math.Copysign(0, -1), "")
	f.Add(uint8(3), int64(0), math.Inf(-1), "a\x00b")
	f.Add(uint8(0), int64(42), 42.0, "42")
	for a := uint8(0); a < 6; a++ {
		f.Add(a, int64(-7), 0.5, "k")
	}
	f.Fuzz(func(t *testing.T, kind uint8, i int64, fl float64, s string) {
		seqs := [][]Item{
			fuzzKeyItem(kind, i, fl, s),
			fuzzKeyItem(kind>>3, fl2i(fl), float64(i), s+"\x00"),
			fuzzKeyItem(kind+1, i/2, -fl, s),
		}
		var keys []SortKey
		var items [][]Item
		for _, seq := range seqs {
			k, err := EncodeSortKey(seq, false)
			if err != nil {
				t.Fatalf("encoding a legal atomic key failed: %v", err)
			}
			keys = append(keys, k)
			items = append(items, seq)
		}
		for x, kx := range keys {
			if kx.Compare(kx) != 0 {
				t.Errorf("key %+v does not compare equal to itself", kx)
			}
			for y, ky := range keys {
				c := kx.Compare(ky)
				if rc := ky.Compare(kx); rc != -c {
					t.Errorf("antisymmetry violated: %+v vs %+v: %d and %d", kx, ky, c, rc)
				}
				bx := AppendSortKey(nil, kx)
				by := AppendSortKey(nil, ky)
				if (c == 0) != bytes.Equal(bx, by) {
					t.Errorf("encoding disagrees with Compare (%d): %+v -> %x, %+v -> %x", c, kx, bx, ky, by)
				}
				if len(items[x]) == 1 && len(items[y]) == 1 &&
					!boundaryDouble(items[x][0]) && !boundaryDouble(items[y][0]) {
					if vc, err := CompareValues(items[x][0], items[y][0]); err == nil && vc != c {
						t.Errorf("key order %d disagrees with value order %d: %v vs %v",
							c, vc, items[x][0], items[y][0])
					}
				}
				for _, kz := range keys {
					if c <= 0 && ky.Compare(kz) <= 0 && kx.Compare(kz) > 0 {
						t.Errorf("transitivity violated: %+v <= %+v <= %+v but not %+v <= %+v", kx, ky, kz, kx, kz)
					}
				}
			}
		}
	})
}

// fl2i derives an int64 from a float without triggering conversion traps
// on NaN or out-of-range values.
func fl2i(f float64) int64 {
	if math.IsNaN(f) || f < -9.2e18 || f > 9.2e18 {
		return 0
	}
	return int64(f)
}

package item

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// appendInt appends the decimal representation of v.
func appendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// appendDouble appends the JSON representation of a double. NaN and
// infinities, which JSON cannot represent, serialize as JSONiq spells them
// ("NaN", "Infinity", "-Infinity") so that round-tripping through the shell
// stays lossless.
func appendDouble(dst []byte, f float64) []byte {
	switch {
	case math.IsNaN(f):
		return append(dst, "NaN"...)
	case math.IsInf(f, 1):
		return append(dst, "Infinity"...)
	case math.IsInf(f, -1):
		return append(dst, "-Infinity"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'E'
	}
	return strconv.AppendFloat(dst, f, format, -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendQuoted appends s as a JSON string literal, escaping control
// characters, quotes and backslashes.
func appendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		// Multi-byte runes pass through verbatim; JSON permits raw UTF-8.
		_, size := utf8.DecodeRuneInString(s[i:])
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

package item

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func mustCmp(t *testing.T, a, b Item) int {
	t.Helper()
	c, err := CompareValues(a, b)
	if err != nil {
		t.Fatalf("CompareValues(%v, %v): %v", a, b, err)
	}
	return c
}

func TestCompareNumericCrossType(t *testing.T) {
	dec := NewDecimal(big.NewRat(5, 2)) // 2.5
	cases := []struct {
		a, b Item
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Double(2.0), 0},
		{Int(2), Double(2.5), -1},
		{dec, Double(2.5), 0},
		{dec, Int(2), 1},
		{dec, Int(3), -1},
		{Double(-1), dec, -1},
	}
	for _, c := range cases {
		if got := mustCmp(t, c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStringsBooleans(t *testing.T) {
	if mustCmp(t, Str("a"), Str("b")) != -1 || mustCmp(t, Str("b"), Str("b")) != 0 {
		t.Error("string comparison wrong")
	}
	if mustCmp(t, Bool(false), Bool(true)) != -1 || mustCmp(t, Bool(true), Bool(true)) != 0 {
		t.Error("boolean comparison wrong")
	}
}

func TestNullComparesLowerThanEverything(t *testing.T) {
	for _, other := range []Item{Int(-100), Double(-1e300), Str(""), Bool(false)} {
		if mustCmp(t, Null{}, other) != -1 {
			t.Errorf("null should compare lower than %v", other)
		}
		if mustCmp(t, other, Null{}) != 1 {
			t.Errorf("%v should compare higher than null", other)
		}
	}
	if mustCmp(t, Null{}, Null{}) != 0 {
		t.Error("null eq null should hold")
	}
}

func TestCompareIncompatibleTypesErrors(t *testing.T) {
	incompatible := [][2]Item{
		{Str("1"), Int(1)},
		{Bool(true), Int(1)},
		{Str("true"), Bool(true)},
		{NewArray(nil), Int(1)},
		{NewObject(nil, nil), NewObject(nil, nil)},
	}
	for _, p := range incompatible {
		if _, err := CompareValues(p[0], p[1]); !errors.Is(err, ErrNonComparable) {
			t.Errorf("CompareValues(%v, %v) err = %v, want ErrNonComparable", p[0], p[1], err)
		}
	}
}

func TestDeepEqual(t *testing.T) {
	a1 := NewArray([]Item{Int(1), NewObject([]string{"k"}, []Item{Str("v")})})
	a2 := NewArray([]Item{Int(1), NewObject([]string{"k"}, []Item{Str("v")})})
	if !DeepEqual(a1, a2) {
		t.Error("structurally equal arrays not DeepEqual")
	}
	a3 := NewArray([]Item{Int(1), NewObject([]string{"k"}, []Item{Str("w")})})
	if DeepEqual(a1, a3) {
		t.Error("different arrays DeepEqual")
	}
	if !DeepEqual(Int(2), Double(2.0)) {
		t.Error("cross-numeric DeepEqual should hold")
	}
	if DeepEqual(Str("1"), Int(1)) {
		t.Error("string vs number should not be DeepEqual")
	}
	o1 := NewObject([]string{"a", "b"}, []Item{Int(1), Int(2)})
	o2 := NewObject([]string{"b", "a"}, []Item{Int(2), Int(1)})
	if !DeepEqual(o1, o2) {
		t.Error("objects with same pairs in different order should be DeepEqual")
	}
}

func TestEncodeSortKeyTags(t *testing.T) {
	cases := []struct {
		seq []Item
		tag int
	}{
		{nil, TagEmptyLeast},
		{[]Item{Null{}}, TagNull},
		{[]Item{Bool(true)}, TagTrue},
		{[]Item{Bool(false)}, TagFalse},
		{[]Item{Str("x")}, TagString},
		{[]Item{Int(7)}, TagNumber},
		{[]Item{Double(7)}, TagNumber},
	}
	for _, c := range cases {
		k, err := EncodeSortKey(c.seq, false)
		if err != nil {
			t.Fatalf("EncodeSortKey(%v): %v", c.seq, err)
		}
		if k.Tag != c.tag {
			t.Errorf("EncodeSortKey(%v).Tag = %d, want %d", c.seq, k.Tag, c.tag)
		}
	}
	if k, _ := EncodeSortKey(nil, true); k.Tag != TagEmptyGreatest {
		t.Error("empty greatest tag not used")
	}
}

func TestEncodeSortKeyErrors(t *testing.T) {
	if _, err := EncodeSortKey([]Item{Int(1), Int(2)}, false); err == nil {
		t.Error("multi-item key should error")
	}
	if _, err := EncodeSortKey([]Item{NewArray(nil)}, false); err == nil {
		t.Error("array key should error")
	}
}

func TestSortKeyOrderMatchesPaperSemantics(t *testing.T) {
	// empty < null < true < false(?) — per the paper's tag table, true=3 and
	// false=4, so true sorts before false; strings before numbers.
	seqs := [][]Item{
		nil,
		{Null{}},
		{Bool(true)},
		{Bool(false)},
		{Str("a")},
		{Str("b")},
		{Int(1)},
		{Int(2)},
	}
	var prev SortKey
	for i, s := range seqs {
		k, err := EncodeSortKey(s, false)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && prev.Compare(k) != -1 {
			t.Errorf("key %d (%v) not strictly greater than predecessor", i, s)
		}
		prev = k
	}
}

func TestDecodeSortKeyRoundTrip(t *testing.T) {
	inputs := [][]Item{{Null{}}, {Bool(true)}, {Bool(false)}, {Str("s")}, {Int(42)}, {Double(2.5)}}
	for _, in := range inputs {
		k, err := EncodeSortKey(in, false)
		if err != nil {
			t.Fatal(err)
		}
		out, ok := DecodeSortKey(k)
		if !ok {
			t.Fatalf("DecodeSortKey(%v) reported empty", in)
		}
		if !DeepEqual(in[0], out) {
			t.Errorf("round trip %v -> %v", in[0], out)
		}
	}
	if _, ok := DecodeSortKey(SortKey{Tag: TagEmptyLeast}); ok {
		t.Error("empty key decoded to an item")
	}
}

// Property: SortKey.Compare is a total preorder consistent with
// CompareValues on homogeneous numeric keys.
func TestSortKeyCompareConsistentWithValueCompare(t *testing.T) {
	f := func(a, b float64) bool {
		ka, err1 := EncodeSortKey([]Item{Double(a)}, false)
		kb, err2 := EncodeSortKey([]Item{Double(b)}, false)
		if err1 != nil || err2 != nil {
			return false
		}
		c, err := CompareValues(Double(a), Double(b))
		if err != nil {
			return false
		}
		return ka.Compare(kb) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric: sign(cmp(a,b)) == -sign(cmp(b,a)).
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		ab := mustCompare(Int(a), Int(b))
		ba := mustCompare(Int(b), Int(a))
		return ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustCompare(a, b Item) int {
	c, err := CompareValues(a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Property: Hash is deterministic and serialization-stable.
func TestHashDeterministic(t *testing.T) {
	f := func(s string, n int64) bool {
		o1 := NewObject([]string{"s", "n"}, []Item{Str(s), Int(n)})
		o2 := NewObject([]string{"s", "n"}, []Item{Str(s), Int(n)})
		return Hash(o1) == Hash(o2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveBoolean(t *testing.T) {
	cases := []struct {
		seq  []Item
		want bool
	}{
		{nil, false},
		{[]Item{Bool(true)}, true},
		{[]Item{Bool(false)}, false},
		{[]Item{Null{}}, false},
		{[]Item{Str("")}, false},
		{[]Item{Str("x")}, true},
		{[]Item{Int(0)}, false},
		{[]Item{Int(3)}, true},
		{[]Item{Double(0)}, false},
		{[]Item{NewArray(nil)}, true},
		{[]Item{NewObject(nil, nil)}, true},
		{[]Item{NewObject(nil, nil), Int(1)}, true},
	}
	for _, c := range cases {
		got, err := EffectiveBoolean(c.seq)
		if err != nil {
			t.Fatalf("EffectiveBoolean(%v): %v", c.seq, err)
		}
		if got != c.want {
			t.Errorf("EffectiveBoolean(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
	if _, err := EffectiveBoolean([]Item{Int(1), Int(2)}); err == nil {
		t.Error("EBV of multi-atomic sequence should error")
	}
}

package item

import (
	"errors"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func mustCmp(t *testing.T, a, b Item) int {
	t.Helper()
	c, err := CompareValues(a, b)
	if err != nil {
		t.Fatalf("CompareValues(%v, %v): %v", a, b, err)
	}
	return c
}

func TestCompareNumericCrossType(t *testing.T) {
	dec := NewDecimal(big.NewRat(5, 2)) // 2.5
	cases := []struct {
		a, b Item
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Double(2.0), 0},
		{Int(2), Double(2.5), -1},
		{dec, Double(2.5), 0},
		{dec, Int(2), 1},
		{dec, Int(3), -1},
		{Double(-1), dec, -1},
	}
	for _, c := range cases {
		if got := mustCmp(t, c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStringsBooleans(t *testing.T) {
	if mustCmp(t, Str("a"), Str("b")) != -1 || mustCmp(t, Str("b"), Str("b")) != 0 {
		t.Error("string comparison wrong")
	}
	if mustCmp(t, Bool(false), Bool(true)) != -1 || mustCmp(t, Bool(true), Bool(true)) != 0 {
		t.Error("boolean comparison wrong")
	}
}

func TestNullComparesLowerThanEverything(t *testing.T) {
	for _, other := range []Item{Int(-100), Double(-1e300), Str(""), Bool(false)} {
		if mustCmp(t, Null{}, other) != -1 {
			t.Errorf("null should compare lower than %v", other)
		}
		if mustCmp(t, other, Null{}) != 1 {
			t.Errorf("%v should compare higher than null", other)
		}
	}
	if mustCmp(t, Null{}, Null{}) != 0 {
		t.Error("null eq null should hold")
	}
}

func TestCompareIncompatibleTypesErrors(t *testing.T) {
	incompatible := [][2]Item{
		{Str("1"), Int(1)},
		{Bool(true), Int(1)},
		{Str("true"), Bool(true)},
		{NewArray(nil), Int(1)},
		{NewObject(nil, nil), NewObject(nil, nil)},
	}
	for _, p := range incompatible {
		if _, err := CompareValues(p[0], p[1]); !errors.Is(err, ErrNonComparable) {
			t.Errorf("CompareValues(%v, %v) err = %v, want ErrNonComparable", p[0], p[1], err)
		}
	}
}

func TestDeepEqual(t *testing.T) {
	a1 := NewArray([]Item{Int(1), NewObject([]string{"k"}, []Item{Str("v")})})
	a2 := NewArray([]Item{Int(1), NewObject([]string{"k"}, []Item{Str("v")})})
	if !DeepEqual(a1, a2) {
		t.Error("structurally equal arrays not DeepEqual")
	}
	a3 := NewArray([]Item{Int(1), NewObject([]string{"k"}, []Item{Str("w")})})
	if DeepEqual(a1, a3) {
		t.Error("different arrays DeepEqual")
	}
	if !DeepEqual(Int(2), Double(2.0)) {
		t.Error("cross-numeric DeepEqual should hold")
	}
	if DeepEqual(Str("1"), Int(1)) {
		t.Error("string vs number should not be DeepEqual")
	}
	o1 := NewObject([]string{"a", "b"}, []Item{Int(1), Int(2)})
	o2 := NewObject([]string{"b", "a"}, []Item{Int(2), Int(1)})
	if !DeepEqual(o1, o2) {
		t.Error("objects with same pairs in different order should be DeepEqual")
	}
}

func TestEncodeSortKeyTags(t *testing.T) {
	cases := []struct {
		seq []Item
		tag int
	}{
		{nil, TagEmptyLeast},
		{[]Item{Null{}}, TagNull},
		{[]Item{Bool(true)}, TagTrue},
		{[]Item{Bool(false)}, TagFalse},
		{[]Item{Str("x")}, TagString},
		{[]Item{Int(7)}, TagNumber},
		{[]Item{Double(7)}, TagNumber},
	}
	for _, c := range cases {
		k, err := EncodeSortKey(c.seq, false)
		if err != nil {
			t.Fatalf("EncodeSortKey(%v): %v", c.seq, err)
		}
		if k.Tag != c.tag {
			t.Errorf("EncodeSortKey(%v).Tag = %d, want %d", c.seq, k.Tag, c.tag)
		}
	}
	if k, _ := EncodeSortKey(nil, true); k.Tag != TagEmptyGreatest {
		t.Error("empty greatest tag not used")
	}
}

func TestEncodeSortKeyErrors(t *testing.T) {
	if _, err := EncodeSortKey([]Item{Int(1), Int(2)}, false); err == nil {
		t.Error("multi-item key should error")
	}
	if _, err := EncodeSortKey([]Item{NewArray(nil)}, false); err == nil {
		t.Error("array key should error")
	}
}

func TestSortKeyOrderMatchesPaperSemantics(t *testing.T) {
	// empty < null < false < true < strings < numbers; the boolean order
	// agrees with CompareValues (false < true).
	seqs := [][]Item{
		nil,
		{Null{}},
		{Bool(false)},
		{Bool(true)},
		{Str("a")},
		{Str("b")},
		{Int(1)},
		{Int(2)},
	}
	var prev SortKey
	for i, s := range seqs {
		k, err := EncodeSortKey(s, false)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && prev.Compare(k) != -1 {
			t.Errorf("key %d (%v) not strictly greater than predecessor", i, s)
		}
		prev = k
	}
}

func TestDecodeSortKeyRoundTrip(t *testing.T) {
	inputs := [][]Item{{Null{}}, {Bool(true)}, {Bool(false)}, {Str("s")}, {Int(42)}, {Double(2.5)}}
	for _, in := range inputs {
		k, err := EncodeSortKey(in, false)
		if err != nil {
			t.Fatal(err)
		}
		out, ok := DecodeSortKey(k)
		if !ok {
			t.Fatalf("DecodeSortKey(%v) reported empty", in)
		}
		if !DeepEqual(in[0], out) {
			t.Errorf("round trip %v -> %v", in[0], out)
		}
	}
	if _, ok := DecodeSortKey(SortKey{Tag: TagEmptyLeast}); ok {
		t.Error("empty key decoded to an item")
	}
}

// Property: SortKey.Compare is a total preorder consistent with
// CompareValues on homogeneous numeric keys.
func TestSortKeyCompareConsistentWithValueCompare(t *testing.T) {
	f := func(a, b float64) bool {
		ka, err1 := EncodeSortKey([]Item{Double(a)}, false)
		kb, err2 := EncodeSortKey([]Item{Double(b)}, false)
		if err1 != nil || err2 != nil {
			return false
		}
		c, err := CompareValues(Double(a), Double(b))
		if err != nil {
			return false
		}
		return ka.Compare(kb) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric: sign(cmp(a,b)) == -sign(cmp(b,a)).
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		ab := mustCompare(Int(a), Int(b))
		ba := mustCompare(Int(b), Int(a))
		return ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustCompare(a, b Item) int {
	c, err := CompareValues(a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Property: Hash is deterministic and serialization-stable.
func TestHashDeterministic(t *testing.T) {
	f := func(s string, n int64) bool {
		o1 := NewObject([]string{"s", "n"}, []Item{Str(s), Int(n)})
		o2 := NewObject([]string{"s", "n"}, []Item{Str(s), Int(n)})
		return Hash(o1) == Hash(o2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveBoolean(t *testing.T) {
	cases := []struct {
		seq  []Item
		want bool
	}{
		{nil, false},
		{[]Item{Bool(true)}, true},
		{[]Item{Bool(false)}, false},
		{[]Item{Null{}}, false},
		{[]Item{Str("")}, false},
		{[]Item{Str("x")}, true},
		{[]Item{Int(0)}, false},
		{[]Item{Int(3)}, true},
		{[]Item{Double(0)}, false},
		{[]Item{NewArray(nil)}, true},
		{[]Item{NewObject(nil, nil)}, true},
		{[]Item{NewObject(nil, nil), Int(1)}, true},
	}
	for _, c := range cases {
		got, err := EffectiveBoolean(c.seq)
		if err != nil {
			t.Fatalf("EffectiveBoolean(%v): %v", c.seq, err)
		}
		if got != c.want {
			t.Errorf("EffectiveBoolean(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
	if _, err := EffectiveBoolean([]Item{Int(1), Int(2)}); err == nil {
		t.Error("EBV of multi-atomic sequence should error")
	}
}

// sortKeyDomain is a cross-kind set of atomic items covering every tag,
// boundary integers around the float64-exact range, and NaN.
func sortKeyDomain() [][]Item {
	const maxExact = int64(1) << 53 // 9007199254740992
	return [][]Item{
		nil,
		{Null{}},
		{Bool(false)},
		{Bool(true)},
		{Str("")},
		{Str("NaN")}, // must not collide with the NaN number sentinel
		{Str("a")},
		{Str("b")},
		{Int(-maxExact - 1)},
		{Int(-3)},
		{Int(0)},
		{Int(2)},
		{Int(maxExact - 1)},
		{Int(maxExact)},
		{Int(maxExact + 1)},
		{Int(maxExact + 2)},
		{Int(1<<62 + 1)},
		{Double(math.Inf(-1))},
		{Double(-2.5)},
		{Double(-0.0)},
		{Double(0.0)},
		{Double(2.0)},
		{Double(2.5)},
		{Double(float64(maxExact))},
		{Double(1e300)},
		{Double(math.Inf(1))},
		{Double(math.NaN())},
		{NewDecimal(big.NewRat(5, 2))},
		{NewDecimal(new(big.Rat).SetInt64(maxExact + 1))},
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// Property (§4.7 correctness): for every pair of comparable atomic items,
// the SortKey ordering agrees with CompareValues. NaN pairs are excluded:
// CompareValues inherits IEEE unordered semantics while sort keys place
// NaN deterministically greatest among numbers (tested separately below).
func TestSortKeyAgreesWithCompareValues(t *testing.T) {
	domain := sortKeyDomain()
	isNaN := func(s []Item) bool {
		d, ok := s[0].(Double)
		return ok && math.IsNaN(float64(d))
	}
	for _, sa := range domain {
		for _, sb := range domain {
			if len(sa) == 0 || len(sb) == 0 || isNaN(sa) || isNaN(sb) {
				continue
			}
			cv, err := CompareValues(sa[0], sb[0])
			if err != nil {
				continue // non-comparable pair: no agreement required
			}
			ka, err := EncodeSortKey(sa, false)
			if err != nil {
				t.Fatal(err)
			}
			kb, err := EncodeSortKey(sb, false)
			if err != nil {
				t.Fatal(err)
			}
			if sign(ka.Compare(kb)) != sign(cv) {
				t.Errorf("SortKey order of (%v, %v) = %d disagrees with CompareValues = %d",
					sa[0], sb[0], ka.Compare(kb), cv)
			}
		}
	}
}

// Property: SortKey.Compare is a total order over the whole domain
// (antisymmetric and transitive), including NaN and the empty sequence.
func TestSortKeyTotalOrder(t *testing.T) {
	var keys []SortKey
	for _, s := range sortKeyDomain() {
		k, err := EncodeSortKey(s, false)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for _, a := range keys {
		for _, b := range keys {
			if sign(a.Compare(b)) != -sign(b.Compare(a)) {
				t.Errorf("not antisymmetric: %+v vs %+v", a, b)
			}
			for _, c := range keys {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Errorf("not transitive: %+v <= %+v <= %+v but a > c", a, b, c)
				}
			}
		}
	}
}

func TestSortKeyBooleanOrder(t *testing.T) {
	kf, _ := EncodeSortKey([]Item{Bool(false)}, false)
	kt, _ := EncodeSortKey([]Item{Bool(true)}, false)
	if kf.Compare(kt) != -1 {
		t.Error("false must sort before true, like CompareValues")
	}
	if cv, _ := CompareValues(Bool(false), Bool(true)); cv != -1 {
		t.Error("CompareValues(false, true) should be -1")
	}
}

func TestSortKeyNaNGreatestAndSelfEqual(t *testing.T) {
	nan, _ := EncodeSortKey([]Item{Double(math.NaN())}, false)
	nan2, _ := EncodeSortKey([]Item{Double(math.NaN())}, false)
	if nan.Compare(nan2) != 0 {
		t.Error("NaN key must equal itself (stable group-by bucket)")
	}
	for _, other := range []Item{Int(0), Double(math.Inf(1)), Double(-1e300), Int(1 << 62)} {
		k, err := EncodeSortKey([]Item{other}, false)
		if err != nil {
			t.Fatal(err)
		}
		if nan.Compare(k) != 1 || k.Compare(nan) != -1 {
			t.Errorf("NaN must order greater than %v", other)
		}
	}
	// NaN stays below non-number tags and is distinct from the string "NaN".
	s, _ := EncodeSortKey([]Item{Str("NaN")}, false)
	if nan.Compare(s) == 0 {
		t.Error("number NaN collides with string \"NaN\"")
	}
	// Raw hand-built NaN keys (no sentinel) still order deterministically.
	raw := SortKey{Tag: TagNumber, Num: math.NaN()}
	five := SortKey{Tag: TagNumber, Num: 5}
	if raw.Compare(five) != 1 || five.Compare(raw) != -1 || raw.Compare(raw) != 0 {
		t.Error("raw NaN keys must order greatest deterministically")
	}
}

func TestSortKeyLargeIntegersExact(t *testing.T) {
	const maxExact = int64(1) << 53
	a, _ := EncodeSortKey([]Item{Int(maxExact)}, false)
	b, _ := EncodeSortKey([]Item{Int(maxExact + 1)}, false)
	if a.Compare(b) != -1 {
		t.Errorf("Int(2^53) vs Int(2^53+1): Compare = %d, want -1", a.Compare(b))
	}
	if string(AppendSortKey(nil, a)) == string(AppendSortKey(nil, b)) {
		t.Error("Int(2^53) and Int(2^53+1) encode to the same bucket key")
	}
	// Round trip preserves the exact value.
	for _, v := range []int64{maxExact, maxExact + 1, -maxExact - 1, 1<<62 + 1} {
		k, _ := EncodeSortKey([]Item{Int(v)}, false)
		got, ok := DecodeSortKey(k)
		if !ok || !DeepEqual(got, Int(v)) {
			t.Errorf("Int(%d) round-tripped to %v", v, got)
		}
	}
	// A double that is mathematically equal still lands in the same bucket.
	d, _ := EncodeSortKey([]Item{Double(float64(maxExact))}, false)
	if a.Compare(d) != 0 || string(AppendSortKey(nil, a)) != string(AppendSortKey(nil, d)) {
		t.Error("Int(2^53) and Double(2^53) must share a bucket")
	}
}

func TestAppendSortKeyCanonical(t *testing.T) {
	// Encodings are equal exactly when Compare says equal, across the domain.
	domain := sortKeyDomain()
	for _, sa := range domain {
		for _, sb := range domain {
			ka, _ := EncodeSortKey(sa, false)
			kb, _ := EncodeSortKey(sb, false)
			sameBytes := string(AppendSortKey(nil, ka)) == string(AppendSortKey(nil, kb))
			if sameBytes != (ka.Compare(kb) == 0) {
				t.Errorf("byte encoding of %v vs %v: sameBytes=%v but Compare=%d",
					sa, sb, sameBytes, ka.Compare(kb))
			}
		}
	}
	// -0.0 and +0.0 must share one canonical encoding.
	kn, _ := EncodeSortKey([]Item{Double(math.Copysign(0, -1))}, false)
	kp, _ := EncodeSortKey([]Item{Double(0)}, false)
	if string(AppendSortKey(nil, kn)) != string(AppendSortKey(nil, kp)) {
		t.Error("-0.0 and +0.0 encode differently")
	}
}

func TestCompareNumericExactAtFloatBoundary(t *testing.T) {
	const maxExact = int64(1) << 53
	// Mixed int/double comparisons are mathematically exact now.
	if c := mustCompare(Int(maxExact+1), Double(float64(maxExact))); c != 1 {
		t.Errorf("Int(2^53+1) vs Double(2^53) = %d, want 1", c)
	}
	if c := mustCompare(Int(maxExact), Double(float64(maxExact))); c != 0 {
		t.Errorf("Int(2^53) vs Double(2^53) = %d, want 0", c)
	}
	// Infinities still compare correctly against integers.
	if c := mustCompare(Int(1<<62), Double(math.Inf(1))); c != -1 {
		t.Error("int must compare below +Inf")
	}
	if c := mustCompare(Int(1<<62), Double(math.Inf(-1))); c != 1 {
		t.Error("int must compare above -Inf")
	}
}

func TestSortKeyNonIntegerDecimalDoesNotEqualInteger(t *testing.T) {
	// Dec(2^53 + 1/2) rounds to the float 2^53; it must not land in the
	// same join/group bucket as the genuinely equal-to-float Int(2^53).
	const maxExact = int64(1) << 53
	half := new(big.Rat).Add(new(big.Rat).SetInt64(maxExact), big.NewRat(1, 2))
	kd, err := EncodeSortKey([]Item{NewDecimal(half)}, false)
	if err != nil {
		t.Fatal(err)
	}
	ki, _ := EncodeSortKey([]Item{Int(maxExact)}, false)
	if kd.Compare(ki) == 0 {
		t.Error("Dec(2^53+1/2) compares equal to Int(2^53)")
	}
	if string(AppendSortKey(nil, kd)) == string(AppendSortKey(nil, ki)) {
		t.Error("Dec(2^53+1/2) shares a bucket key with Int(2^53)")
	}
	// CompareValues agrees they differ (exact big.Rat comparison).
	if c := mustCompare(NewDecimal(half), Int(maxExact)); c == 0 {
		t.Error("CompareValues thinks the values are equal")
	}
}

package item

import (
	"fmt"
	"math"
	"math/big"
)

// ArithOp names a binary arithmetic operator.
type ArithOp int

// The JSONiq arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv  // div: integer operands promote to decimal
	OpIDiv // idiv: integer division
	OpMod
)

// String returns the JSONiq spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "div"
	case OpIDiv:
		return "idiv"
	case OpMod:
		return "mod"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Arithmetic applies op to two numeric items with JSONiq type promotion:
// double if either operand is a double, else decimal if either is a decimal
// (and always for div on non-doubles), else integer.
func Arithmetic(op ArithOp, a, b Item) (Item, error) {
	if !IsNumeric(a) || !IsNumeric(b) {
		return nil, fmt.Errorf("arithmetic %s requires numeric operands, got %s and %s", op, a.Kind(), b.Kind())
	}
	if a.Kind() == KindDouble || b.Kind() == KindDouble {
		return doubleArith(op, Float64Value(a), Float64Value(b))
	}
	if op == OpIDiv {
		return intDivide(a, b)
	}
	if a.Kind() == KindDecimal || b.Kind() == KindDecimal || op == OpDiv {
		return decimalArith(op, ratValue(a), ratValue(b))
	}
	return intArith(op, int64(a.(Int)), int64(b.(Int)))
}

func intArith(op ArithOp, a, b int64) (Item, error) {
	switch op {
	case OpAdd:
		if r, ok := addOverflows(a, b); ok {
			return decimalArith(op, new(big.Rat).SetInt64(a), new(big.Rat).SetInt64(b))
		} else {
			return Int(r), nil
		}
	case OpSub:
		if r, ok := addOverflows(a, -b); ok && b != math.MinInt64 {
			return decimalArith(op, new(big.Rat).SetInt64(a), new(big.Rat).SetInt64(b))
		} else if b == math.MinInt64 {
			return decimalArith(op, new(big.Rat).SetInt64(a), new(big.Rat).SetInt64(b))
		} else {
			return Int(r), nil
		}
	case OpMul:
		if a != 0 {
			r := a * b
			if r/a != b {
				return decimalArith(op, new(big.Rat).SetInt64(a), new(big.Rat).SetInt64(b))
			}
			return Int(r), nil
		}
		return Int(0), nil
	case OpMod:
		if b == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		return Int(a % b), nil
	default:
		return nil, fmt.Errorf("integer arithmetic: unsupported operator %s", op)
	}
}

// addOverflows returns a+b and whether the addition overflowed.
func addOverflows(a, b int64) (int64, bool) {
	r := a + b
	return r, (b > 0 && r < a) || (b < 0 && r > a)
}

func intDivide(a, b Item) (Item, error) {
	if a.Kind() == KindDecimal || b.Kind() == KindDecimal {
		ra, rb := ratValue(a), ratValue(b)
		if rb.Sign() == 0 {
			return nil, fmt.Errorf("integer division by zero")
		}
		q := new(big.Rat).Quo(ra, rb)
		z := new(big.Int).Quo(q.Num(), q.Denom())
		if !z.IsInt64() {
			return nil, fmt.Errorf("idiv result out of int64 range")
		}
		return Int(z.Int64()), nil
	}
	ia, ib := int64(a.(Int)), int64(b.(Int))
	if ib == 0 {
		return nil, fmt.Errorf("integer division by zero")
	}
	return Int(ia / ib), nil
}

func decimalArith(op ArithOp, a, b *big.Rat) (Item, error) {
	r := new(big.Rat)
	switch op {
	case OpAdd:
		r.Add(a, b)
	case OpSub:
		r.Sub(a, b)
	case OpMul:
		r.Mul(a, b)
	case OpDiv:
		if b.Sign() == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		r.Quo(a, b)
	case OpMod:
		if b.Sign() == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		// a mod b = a - b * trunc(a/b), matching Go's % for integers.
		q := new(big.Rat).Quo(a, b)
		t := new(big.Int).Quo(q.Num(), q.Denom())
		r.Sub(a, new(big.Rat).Mul(b, new(big.Rat).SetInt(t)))
	default:
		return nil, fmt.Errorf("decimal arithmetic: unsupported operator %s", op)
	}
	return normalizeDecimal(r), nil
}

// normalizeDecimal narrows integral rationals that fit an int64 back to Int,
// keeping the common case allocation-free downstream.
func normalizeDecimal(r *big.Rat) Item {
	if r.IsInt() && r.Num().IsInt64() {
		return Int(r.Num().Int64())
	}
	return Dec{rat: r}
}

func doubleArith(op ArithOp, a, b float64) (Item, error) {
	switch op {
	case OpAdd:
		return Double(a + b), nil
	case OpSub:
		return Double(a - b), nil
	case OpMul:
		return Double(a * b), nil
	case OpDiv:
		return Double(a / b), nil
	case OpIDiv:
		if b == 0 {
			return nil, fmt.Errorf("integer division by zero")
		}
		q := math.Trunc(a / b)
		if math.IsNaN(q) || math.IsInf(q, 0) || math.Abs(q) > math.MaxInt64 {
			return nil, fmt.Errorf("idiv result out of int64 range")
		}
		return Int(int64(q)), nil
	case OpMod:
		return Double(math.Mod(a, b)), nil
	default:
		return nil, fmt.Errorf("double arithmetic: unsupported operator %s", op)
	}
}

// Negate returns the arithmetic negation of a numeric item.
func Negate(a Item) (Item, error) {
	switch v := a.(type) {
	case Int:
		if int64(v) == math.MinInt64 {
			return Dec{rat: new(big.Rat).Neg(new(big.Rat).SetInt64(int64(v)))}, nil
		}
		return Int(-v), nil
	case Double:
		return Double(-v), nil
	case Dec:
		return Dec{rat: new(big.Rat).Neg(v.rat)}, nil
	default:
		return nil, fmt.Errorf("unary minus requires a numeric operand, got %s", a.Kind())
	}
}

// EffectiveBoolean computes the effective boolean value of a sequence:
// empty is false; a single boolean is itself; a single numeric is false iff
// zero or NaN; a single string is false iff empty; null is false; a single
// object or array is true; longer sequences are an error unless the first
// item is a node-like (object/array), which JSONiq treats as true.
func EffectiveBoolean(seq []Item) (bool, error) {
	if len(seq) == 0 {
		return false, nil
	}
	first := seq[0]
	if len(seq) > 1 {
		if !IsAtomic(first) {
			return true, nil
		}
		return false, fmt.Errorf("effective boolean value of a sequence of %d atomic items", len(seq))
	}
	switch v := first.(type) {
	case Bool:
		return bool(v), nil
	case Null:
		return false, nil
	case Str:
		return v != "", nil
	case Int:
		return v != 0, nil
	case Double:
		return !(float64(v) == 0 || math.IsNaN(float64(v))), nil
	case Dec:
		return v.rat.Sign() != 0, nil
	default:
		return true, nil
	}
}

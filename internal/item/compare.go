package item

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/big"
)

// ErrNonComparable is wrapped by comparison errors for incompatible types.
var ErrNonComparable = fmt.Errorf("items are not comparable")

// CompareValues compares two atomic items under JSONiq value-comparison
// semantics and returns -1, 0 or +1. Numeric kinds compare numerically
// across integer/decimal/double. null compares equal to null and lower than
// any other atomic. Comparing a string with a number, a boolean with a
// string, or any non-atomic item is an error.
func CompareValues(a, b Item) (int, error) {
	ka, kb := a.Kind(), b.Kind()
	if ka == KindArray || ka == KindObject || kb == KindArray || kb == KindObject {
		return 0, fmt.Errorf("%w: %s vs %s", ErrNonComparable, ka, kb)
	}
	if ka == KindNull || kb == KindNull {
		switch {
		case ka == KindNull && kb == KindNull:
			return 0, nil
		case ka == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if IsNumeric(a) && IsNumeric(b) {
		return compareNumeric(a, b), nil
	}
	if ka == KindString && kb == KindString {
		sa, sb := string(a.(Str)), string(b.(Str))
		switch {
		case sa < sb:
			return -1, nil
		case sa > sb:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if ka == KindBoolean && kb == KindBoolean {
		ba, bb := bool(a.(Bool)), bool(b.(Bool))
		switch {
		case ba == bb:
			return 0, nil
		case !ba:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("%w: %s vs %s", ErrNonComparable, ka, kb)
}

func compareNumeric(a, b Item) int {
	// Promote to the widest representation present. Pairs without a double
	// compare exactly through big.Rat. A finite double also compares
	// exactly against an integer or decimal (SetFloat64 is lossless), so
	// Int(2^53) and Int(2^53+1) stay distinguishable from Double(2^53);
	// only double-double pairs and non-finite doubles use float ordering.
	if a.Kind() == KindDouble || b.Kind() == KindDouble {
		fa, fb := Float64Value(a), Float64Value(b)
		bothDouble := a.Kind() == KindDouble && b.Kind() == KindDouble
		finite := !math.IsNaN(fa) && !math.IsInf(fa, 0) &&
			!math.IsNaN(fb) && !math.IsInf(fb, 0)
		if !bothDouble && finite {
			return ratValue(a).Cmp(ratValue(b))
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	if a.Kind() == KindDecimal || b.Kind() == KindDecimal {
		return ratValue(a).Cmp(ratValue(b))
	}
	ia, ib := int64(a.(Int)), int64(b.(Int))
	switch {
	case ia < ib:
		return -1
	case ia > ib:
		return 1
	default:
		return 0
	}
}

// DeepEqual reports structural equality of two items, as used by
// deep-equal() and by group-by key equivalence on nested values. Unlike
// CompareValues it never errors: items of different kinds are unequal
// (except cross-numeric comparisons, which compare numerically).
func DeepEqual(a, b Item) bool {
	if IsNumeric(a) && IsNumeric(b) {
		return compareNumeric(a, b) == 0
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case KindNull:
		return true
	case KindBoolean:
		return a.(Bool) == b.(Bool)
	case KindString:
		return a.(Str) == b.(Str)
	case KindArray:
		aa, ab := a.(*Array), b.(*Array)
		if aa.Len() != ab.Len() {
			return false
		}
		for i := 0; i < aa.Len(); i++ {
			if !DeepEqual(aa.Member(i), ab.Member(i)) {
				return false
			}
		}
		return true
	case KindObject:
		oa, ob := a.(*Object), b.(*Object)
		if oa.Len() != ob.Len() {
			return false
		}
		for i, k := range oa.Keys() {
			v, ok := ob.Get(k)
			if !ok || !DeepEqual(oa.ValueAt(i), v) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Float64Value returns the numeric value of a numeric item as float64.
// It panics on non-numeric items; callers must check IsNumeric first.
func Float64Value(it Item) float64 {
	switch v := it.(type) {
	case Int:
		return float64(v)
	case Double:
		return float64(v)
	case Dec:
		return v.Float64()
	default:
		panic(fmt.Sprintf("item: Float64Value on %s item", it.Kind()))
	}
}

func ratValue(it Item) *big.Rat {
	switch v := it.(type) {
	case Int:
		return new(big.Rat).SetInt64(int64(v))
	case Dec:
		return v.Rat()
	case Double:
		r := new(big.Rat)
		r.SetFloat64(float64(v))
		return r
	default:
		panic(fmt.Sprintf("item: ratValue on %s item", it.Kind()))
	}
}

// Type tags used by the typed group/sort key encoding of §4.7 of the
// paper: an integer column carrying the tag, a string column, a double
// column and an exact-integer column carrying the value when applicable.
// false sorts before true, agreeing with CompareValues.
const (
	TagEmptyLeast    = 1 // empty sequence, ordered lowest (default)
	TagNull          = 2
	TagFalse         = 3
	TagTrue          = 4
	TagString        = 5
	TagNumber        = 6
	TagEmptyGreatest = 7 // empty sequence when "empty greatest" is in force
)

// NaNStr is the string-column sentinel EncodeSortKey gives NaN keys. Real
// numbers encode an empty string column, so the lexicographic (Tag, Str,
// Num, Int) comparison deterministically orders NaN greatest among numbers
// (and equal to itself) without ever comparing a raw NaN double.
const NaNStr = "NaN"

// SortKey is the typed encoding of one grouping/ordering variable, matching
// the native DataFrame columns the paper creates (type tag, string value,
// double value) plus an exact-integer column that keeps integers outside
// the float64-exact range (|v| > 2^53) distinguishable. Rows group and
// order correctly by comparing (Tag, Str, Num, Int) lexicographically.
type SortKey struct {
	Tag int
	Str string
	Num float64
	// Int is the exact integer value when the key is an integral number
	// representable in int64 (it then equals the key's mathematical value,
	// breaking float64 ties such as 2^53 vs 2^53+1), and 0 otherwise.
	Int int64
}

// exactInt returns the int64 tie-breaker for a numeric key whose double
// column is f: the exact integer value when f is integral and inside the
// int64 range, else 0. Every value collapsing to the same float64 bucket
// gets its true integer here, so the (Num, Int) pair orders exactly.
func exactInt(f float64) int64 {
	if f == math.Trunc(f) && f >= -9.223372036854775808e18 && f < 9.223372036854775808e18 {
		return int64(f)
	}
	return 0
}

// EncodeSortKey encodes the sequence bound to a grouping/ordering variable.
// The sequence must be empty or hold a single atomic item; group-by
// tolerates any atomic (heterogeneous keys are legal), which is why the
// encoding is total over atomics.
func EncodeSortKey(seq []Item, emptyGreatest bool) (SortKey, error) {
	if len(seq) == 0 {
		if emptyGreatest {
			return SortKey{Tag: TagEmptyGreatest}, nil
		}
		return SortKey{Tag: TagEmptyLeast}, nil
	}
	if len(seq) > 1 {
		return SortKey{}, fmt.Errorf("key binds a sequence of %d items; a single atomic is required", len(seq))
	}
	it := seq[0]
	switch it.Kind() {
	case KindNull:
		return SortKey{Tag: TagNull}, nil
	case KindBoolean:
		if bool(it.(Bool)) {
			return SortKey{Tag: TagTrue}, nil
		}
		return SortKey{Tag: TagFalse}, nil
	case KindString:
		return SortKey{Tag: TagString, Str: string(it.(Str))}, nil
	case KindInteger:
		return IntKey(int64(it.(Int))), nil
	case KindDecimal:
		r := it.(Dec).Rat()
		num := canonFloat(it.(Dec).Float64())
		if r.IsInt() && r.Num().IsInt64() {
			return SortKey{Tag: TagNumber, Num: num, Int: r.Num().Int64()}, nil
		}
		// Non-integral (or beyond-int64) decimals leave Int at 0: even when
		// their float64 image lands in an integral bucket (|v| >= 2^52),
		// they must not falsely equal an exact integer carried in the Int
		// column. Their sub-ulp ordering collapses like the seed's float64
		// encoding — a narrower corner than a wrong join match.
		return SortKey{Tag: TagNumber, Num: num}, nil
	case KindDouble:
		return NumberKey(float64(it.(Double))), nil
	default:
		return SortKey{}, fmt.Errorf("key binds a non-atomic %s item", it.Kind())
	}
}

// NumberKey encodes a double value as a sort key, the shared number-column
// encoding: NaN carries the NaNStr sentinel (greatest among numbers), -0.0
// canonicalizes to +0.0, and integral values in range carry their exact
// int64 in the Int column. EncodeSortKey and the vector backend's typed
// columns both build their number keys through it.
func NumberKey(f float64) SortKey {
	if math.IsNaN(f) {
		return SortKey{Tag: TagNumber, Str: NaNStr, Num: math.Inf(1)}
	}
	f = canonFloat(f)
	return SortKey{Tag: TagNumber, Num: f, Int: exactInt(f)}
}

// IntKey encodes an int64 value as a sort key, matching EncodeSortKey's
// integer-item encoding exactly.
func IntKey(v int64) SortKey {
	return SortKey{Tag: TagNumber, Num: float64(v), Int: v}
}

// canonFloat maps -0.0 to +0.0 so equal keys share one encoding.
func canonFloat(f float64) float64 {
	if f == 0 {
		return 0
	}
	return f
}

// Compare orders two sort keys lexicographically over (Tag, Str, Num, Int).
// The ordering is total: NaN keys carry the NaNStr sentinel in the string
// column (greatest among numbers), and integers beyond the float64-exact
// range break their Num ties on the exact Int column. Raw NaN doubles in
// hand-built keys still order deterministically (greatest).
func (k SortKey) Compare(o SortKey) int {
	if k.Tag != o.Tag {
		if k.Tag < o.Tag {
			return -1
		}
		return 1
	}
	if k.Str != o.Str {
		if k.Str < o.Str {
			return -1
		}
		return 1
	}
	switch {
	case k.Num < o.Num:
		return -1
	case k.Num > o.Num:
		return 1
	}
	if nk, no := math.IsNaN(k.Num), math.IsNaN(o.Num); nk != no {
		if nk {
			return 1
		}
		return -1
	}
	switch {
	case k.Int < o.Int:
		return -1
	case k.Int > o.Int:
		return 1
	default:
		return 0
	}
}

// AppendSortKey appends a canonical byte encoding of the key to dst, for
// use as a hash-join or group-by bucket key: two keys encode to the same
// bytes exactly when Compare orders them equal. The layout is tag byte,
// uvarint string length, string bytes, 8-byte Num bits, 8-byte Int.
func AppendSortKey(dst []byte, k SortKey) []byte {
	dst = append(dst, byte(k.Tag))
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(k.Str)))
	dst = append(dst, lenBuf[:n]...)
	dst = append(dst, k.Str...)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(canonFloat(k.Num)))
	dst = append(dst, b[:]...)
	binary.BigEndian.PutUint64(b[:], uint64(k.Int))
	return append(dst, b[:]...)
}

// DecodeSortKey reconstructs the original grouping key item from its typed
// encoding, as the ARRAY_DISTINCT step of §4.7 does. The boolean result is
// false for the empty sequence.
func DecodeSortKey(k SortKey) (Item, bool) {
	switch k.Tag {
	case TagEmptyLeast, TagEmptyGreatest:
		return nil, false
	case TagNull:
		return Null{}, true
	case TagTrue:
		return Bool(true), true
	case TagFalse:
		return Bool(false), true
	case TagString:
		return Str(k.Str), true
	case TagNumber:
		if k.Str == NaNStr {
			return Double(math.NaN()), true
		}
		if k.Num == math.Trunc(k.Num) && k.Num >= -9.223372036854775808e18 && k.Num < 9.223372036854775808e18 {
			// Integral keys round-trip through the exact Int column, so
			// Int(2^53+1) comes back unchanged.
			return Int(k.Int), true
		}
		return Double(k.Num), true
	default:
		return nil, false
	}
}

// Hash returns a 64-bit FNV-1a hash of the item's canonical serialization,
// used by the shuffle's hash partitioner.
func Hash(it Item) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range it.AppendJSON(nil) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

package item

import (
	"fmt"
	"math"
	"math/big"
)

// ErrNonComparable is wrapped by comparison errors for incompatible types.
var ErrNonComparable = fmt.Errorf("items are not comparable")

// CompareValues compares two atomic items under JSONiq value-comparison
// semantics and returns -1, 0 or +1. Numeric kinds compare numerically
// across integer/decimal/double. null compares equal to null and lower than
// any other atomic. Comparing a string with a number, a boolean with a
// string, or any non-atomic item is an error.
func CompareValues(a, b Item) (int, error) {
	ka, kb := a.Kind(), b.Kind()
	if ka == KindArray || ka == KindObject || kb == KindArray || kb == KindObject {
		return 0, fmt.Errorf("%w: %s vs %s", ErrNonComparable, ka, kb)
	}
	if ka == KindNull || kb == KindNull {
		switch {
		case ka == KindNull && kb == KindNull:
			return 0, nil
		case ka == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if IsNumeric(a) && IsNumeric(b) {
		return compareNumeric(a, b), nil
	}
	if ka == KindString && kb == KindString {
		sa, sb := string(a.(Str)), string(b.(Str))
		switch {
		case sa < sb:
			return -1, nil
		case sa > sb:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if ka == KindBoolean && kb == KindBoolean {
		ba, bb := bool(a.(Bool)), bool(b.(Bool))
		switch {
		case ba == bb:
			return 0, nil
		case !ba:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("%w: %s vs %s", ErrNonComparable, ka, kb)
}

func compareNumeric(a, b Item) int {
	// Promote to the widest representation present. Integer/decimal pairs
	// compare exactly through big.Rat; any double forces float comparison.
	if a.Kind() == KindDouble || b.Kind() == KindDouble {
		fa, fb := Float64Value(a), Float64Value(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	if a.Kind() == KindDecimal || b.Kind() == KindDecimal {
		return ratValue(a).Cmp(ratValue(b))
	}
	ia, ib := int64(a.(Int)), int64(b.(Int))
	switch {
	case ia < ib:
		return -1
	case ia > ib:
		return 1
	default:
		return 0
	}
}

// DeepEqual reports structural equality of two items, as used by
// deep-equal() and by group-by key equivalence on nested values. Unlike
// CompareValues it never errors: items of different kinds are unequal
// (except cross-numeric comparisons, which compare numerically).
func DeepEqual(a, b Item) bool {
	if IsNumeric(a) && IsNumeric(b) {
		return compareNumeric(a, b) == 0
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case KindNull:
		return true
	case KindBoolean:
		return a.(Bool) == b.(Bool)
	case KindString:
		return a.(Str) == b.(Str)
	case KindArray:
		aa, ab := a.(*Array), b.(*Array)
		if aa.Len() != ab.Len() {
			return false
		}
		for i := 0; i < aa.Len(); i++ {
			if !DeepEqual(aa.Member(i), ab.Member(i)) {
				return false
			}
		}
		return true
	case KindObject:
		oa, ob := a.(*Object), b.(*Object)
		if oa.Len() != ob.Len() {
			return false
		}
		for i, k := range oa.Keys() {
			v, ok := ob.Get(k)
			if !ok || !DeepEqual(oa.ValueAt(i), v) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Float64Value returns the numeric value of a numeric item as float64.
// It panics on non-numeric items; callers must check IsNumeric first.
func Float64Value(it Item) float64 {
	switch v := it.(type) {
	case Int:
		return float64(v)
	case Double:
		return float64(v)
	case Dec:
		return v.Float64()
	default:
		panic(fmt.Sprintf("item: Float64Value on %s item", it.Kind()))
	}
}

func ratValue(it Item) *big.Rat {
	switch v := it.(type) {
	case Int:
		return new(big.Rat).SetInt64(int64(v))
	case Dec:
		return v.Rat()
	case Double:
		r := new(big.Rat)
		r.SetFloat64(float64(v))
		return r
	default:
		panic(fmt.Sprintf("item: ratValue on %s item", it.Kind()))
	}
}

// Type tags used by the three-column group/sort key encoding of §4.7 of the
// paper: an integer column carrying the tag, a string column and a double
// column carrying the value when applicable.
const (
	TagEmptyLeast    = 1 // empty sequence, ordered lowest (default)
	TagNull          = 2
	TagTrue          = 3
	TagFalse         = 4
	TagString        = 5
	TagNumber        = 6
	TagEmptyGreatest = 7 // empty sequence when "empty greatest" is in force
)

// SortKey is the typed encoding of one grouping/ordering variable, matching
// the DataFrame columns the paper creates (type tag, string value, double
// value). Rows group and order correctly by comparing (Tag, Str, Num)
// lexicographically.
type SortKey struct {
	Tag int
	Str string
	Num float64
}

// EncodeSortKey encodes the sequence bound to a grouping/ordering variable.
// The sequence must be empty or hold a single atomic item; group-by
// tolerates any atomic (heterogeneous keys are legal), which is why the
// encoding is total over atomics.
func EncodeSortKey(seq []Item, emptyGreatest bool) (SortKey, error) {
	if len(seq) == 0 {
		if emptyGreatest {
			return SortKey{Tag: TagEmptyGreatest}, nil
		}
		return SortKey{Tag: TagEmptyLeast}, nil
	}
	if len(seq) > 1 {
		return SortKey{}, fmt.Errorf("key binds a sequence of %d items; a single atomic is required", len(seq))
	}
	it := seq[0]
	switch it.Kind() {
	case KindNull:
		return SortKey{Tag: TagNull}, nil
	case KindBoolean:
		if bool(it.(Bool)) {
			return SortKey{Tag: TagTrue}, nil
		}
		return SortKey{Tag: TagFalse}, nil
	case KindString:
		return SortKey{Tag: TagString, Str: string(it.(Str))}, nil
	case KindInteger, KindDecimal, KindDouble:
		return SortKey{Tag: TagNumber, Num: Float64Value(it)}, nil
	default:
		return SortKey{}, fmt.Errorf("key binds a non-atomic %s item", it.Kind())
	}
}

// Compare orders two sort keys lexicographically over (Tag, Str, Num).
func (k SortKey) Compare(o SortKey) int {
	if k.Tag != o.Tag {
		if k.Tag < o.Tag {
			return -1
		}
		return 1
	}
	if k.Str != o.Str {
		if k.Str < o.Str {
			return -1
		}
		return 1
	}
	switch {
	case k.Num < o.Num:
		return -1
	case k.Num > o.Num:
		return 1
	default:
		return 0
	}
}

// DecodeSortKey reconstructs the original grouping key item from its typed
// encoding, as the ARRAY_DISTINCT step of §4.7 does. The boolean result is
// false for the empty sequence.
func DecodeSortKey(k SortKey) (Item, bool) {
	switch k.Tag {
	case TagEmptyLeast, TagEmptyGreatest:
		return nil, false
	case TagNull:
		return Null{}, true
	case TagTrue:
		return Bool(true), true
	case TagFalse:
		return Bool(false), true
	case TagString:
		return Str(k.Str), true
	case TagNumber:
		if k.Num == math.Trunc(k.Num) && math.Abs(k.Num) < 1e15 {
			return Int(int64(k.Num)), true
		}
		return Double(k.Num), true
	default:
		return nil, false
	}
}

// Hash returns a 64-bit FNV-1a hash of the item's canonical serialization,
// used by the shuffle's hash partitioner.
func Hash(it Item) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range it.AppendJSON(nil) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

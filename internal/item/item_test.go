package item

import (
	"math/big"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBoolean: "boolean", KindInteger: "integer",
		KindDecimal: "decimal", KindDouble: "double", KindString: "string",
		KindArray: "array", KindObject: "object",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestAtomicSerialization(t *testing.T) {
	dec, err := DecimalFromString("3.140")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		it   Item
		want string
	}{
		{Null{}, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(0), "0"},
		{Int(-42), "-42"},
		{Int(9223372036854775807), "9223372036854775807"},
		{Double(1.5), "1.5"},
		{Double(0), "0"},
		{Double(-2.25), "-2.25"},
		{dec, "3.14"},
		{Str("hello"), `"hello"`},
		{Str(`quote " and \ slash`), `"quote \" and \\ slash"`},
		{Str("tab\tnewline\n"), `"tab\tnewline\n"`},
		{Str("unicode: héllo→"), `"unicode: héllo→"`},
		{Str("ctrl\x01"), "\"ctrl\\u0001\""},
	}
	for _, c := range cases {
		if got := string(c.it.AppendJSON(nil)); got != c.want {
			t.Errorf("AppendJSON(%#v) = %s, want %s", c.it, got, c.want)
		}
	}
}

func TestDoubleSpecialValues(t *testing.T) {
	inf, err := CastToDouble(Str("Infinity"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(inf.AppendJSON(nil)); got != "Infinity" {
		t.Errorf("Infinity serializes as %s", got)
	}
	nan, err := CastToDouble(Str("NaN"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(nan.AppendJSON(nil)); got != "NaN" {
		t.Errorf("NaN serializes as %s", got)
	}
}

func TestObjectLookup(t *testing.T) {
	o := NewObject([]string{"a", "b", "c"}, []Item{Int(1), Str("x"), Bool(true)})
	if v, ok := o.Get("b"); !ok || v.(Str) != "x" {
		t.Errorf(`Get("b") = %v, %v`, v, ok)
	}
	if _, ok := o.Get("missing"); ok {
		t.Error("Get on absent key returned ok")
	}
	if o.Len() != 3 {
		t.Errorf("Len = %d", o.Len())
	}
}

func TestObjectLargeUsesIndex(t *testing.T) {
	n := 50
	keys := make([]string, n)
	vals := make([]Item, n)
	for i := range keys {
		keys[i] = strings.Repeat("k", i+1)
		vals[i] = Int(i)
	}
	o := NewObject(keys, vals)
	if o.index == nil {
		t.Fatal("large object did not build an index")
	}
	for i, k := range keys {
		v, ok := o.Get(k)
		if !ok || int64(v.(Int)) != int64(i) {
			t.Fatalf("Get(%q) = %v, %v", k, v, ok)
		}
	}
}

func TestObjectDuplicateKeyFirstWins(t *testing.T) {
	o := NewObject([]string{"k", "k"}, []Item{Int(1), Int(2)})
	if v, _ := o.Get("k"); int64(v.(Int)) != 1 {
		t.Errorf("duplicate key lookup = %v, want first occurrence", v)
	}
	keys := make([]string, 20)
	vals := make([]Item, 20)
	for i := range keys {
		keys[i] = "k"
		vals[i] = Int(int64(i))
	}
	big := NewObject(keys, vals)
	if v, _ := big.Get("k"); int64(v.(Int)) != 0 {
		t.Errorf("indexed duplicate key lookup = %v, want first occurrence", v)
	}
}

func TestObjectSerialization(t *testing.T) {
	o := NewObject([]string{"b", "a"}, []Item{Int(2), Int(1)})
	want := `{"b" : 2, "a" : 1}`
	if got := o.String(); got != want {
		t.Errorf("object serializes as %s, want %s (insertion order)", got, want)
	}
}

func TestArray(t *testing.T) {
	a := NewArray([]Item{Int(1), Str("two"), NewArray(nil)})
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	want := `[1, "two", []]`
	if got := a.String(); got != want {
		t.Errorf("array serializes as %s, want %s", got, want)
	}
}

func TestObjectFromMapDeterministic(t *testing.T) {
	m := map[string]Item{"z": Int(1), "a": Int(2), "m": Int(3)}
	o1, o2 := ObjectFromMap(m), ObjectFromMap(m)
	if o1.String() != o2.String() {
		t.Error("ObjectFromMap is not deterministic")
	}
	if o1.Keys()[0] != "a" || o1.Keys()[2] != "z" {
		t.Errorf("keys not sorted: %v", o1.Keys())
	}
}

func TestSerializeSequence(t *testing.T) {
	got := SerializeSequence([]Item{Int(1), Str("a")})
	if got != "1\n\"a\"" {
		t.Errorf("SerializeSequence = %q", got)
	}
	if SerializeSequence(nil) != "" {
		t.Error("empty sequence should serialize to empty string")
	}
}

func TestDecimalNormalization(t *testing.T) {
	d := NewDecimal(big.NewRat(10, 4))
	if got := d.String(); got != "2.5" {
		t.Errorf("10/4 serializes as %s", got)
	}
	whole := NewDecimal(big.NewRat(8, 2))
	if got := whole.String(); got != "4" {
		t.Errorf("8/2 serializes as %s", got)
	}
}

func TestIsAtomicIsNumeric(t *testing.T) {
	if !IsAtomic(Int(1)) || !IsAtomic(Null{}) || IsAtomic(NewArray(nil)) {
		t.Error("IsAtomic misclassifies")
	}
	if !IsNumeric(Int(1)) || !IsNumeric(Double(1)) || IsNumeric(Str("1")) {
		t.Error("IsNumeric misclassifies")
	}
}

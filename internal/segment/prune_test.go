package segment

import (
	"math"
	"math/rand"
	"testing"

	"rumble/internal/item"
)

// evalPredicate is the reference semantics a skip decision must respect:
// field lookup with vector.Lookup behavior (non-objects and missing keys
// yield absent, which a value comparison absorbs to false), then
// item.CompareValues — the engine's single source of comparison truth.
func evalPredicate(row item.Item, p Predicate) (matched, errored bool) {
	o, ok := row.(*item.Object)
	if !ok {
		return false, false
	}
	v, present := o.Get(p.Field)
	if !present {
		return false, false
	}
	c, err := item.CompareValues(v, p.Lit)
	if err != nil {
		return false, true
	}
	switch p.Op {
	case "eq":
		return c == 0, false
	case "ne":
		return c != 0, false
	case "lt":
		return c < 0, false
	case "le":
		return c <= 0, false
	case "gt":
		return c > 0, false
	case "ge":
		return c >= 0, false
	}
	return false, true
}

// chainOutcome walks the conjunct chain left to right the way the scan
// does: stop at the first failing conjunct; an error anywhere before that
// is an error the query must surface.
type chainOutcome int

const (
	chainRejected chainOutcome = iota // failed some conjunct, no error
	chainMatched                      // satisfied every conjunct
	chainErrored                      // errored before rejection
)

func evalChain(row item.Item, preds []Predicate) chainOutcome {
	for _, p := range preds {
		m, e := evalPredicate(row, p)
		if e {
			return chainErrored
		}
		if !m {
			return chainRejected
		}
	}
	return chainMatched
}

// requireSkipSound fails the test when Skip claims a segment is skippable
// but some row would have matched the chain or errored inside it.
func requireSkipSound(t *testing.T, rows []item.Item, preds []Predicate) bool {
	t.Helper()
	meta := Meta{Rows: len(rows), Cols: ZoneMaps(rows)}
	if !Skip(meta, preds) {
		return false
	}
	for i, r := range rows {
		switch evalChain(r, preds) {
		case chainMatched:
			t.Fatalf("Skip pruned a segment whose row %d (%v) matches %+v", i, r, preds)
		case chainErrored:
			t.Fatalf("Skip pruned a segment whose row %d (%v) errors in %+v", i, r, preds)
		}
	}
	return true
}

// TestSkipProperty: for randomized segments and predicate chains, a
// pruned segment never contains a row that matches or errors — pruning
// changes neither results nor error selection, only work.
func TestSkipProperty(t *testing.T) {
	values := []item.Item{
		nil, // absent
		item.Null{},
		item.Bool(true),
		item.Bool(false),
		item.Int(0),
		item.Int(1),
		item.Int(-5),
		item.Int(123),
		item.Int(1 << 62),
		item.Int(math.MaxInt64),
		item.Int(math.MinInt64),
		item.Double(0.5),
		item.Double(math.Copysign(0, -1)),
		item.Double(1e300),
		item.Double(math.Inf(1)),
		item.Double(math.Inf(-1)),
		item.Double(math.NaN()),
		item.Double(9223372036854775808), // 2^63: the key-order hazard zone
		dec("10000000000000001/10000000000000000"),
		dec("1"),
		dec("1/3"),
		item.Str(""),
		item.Str("a"),
		item.Str("zz"),
		item.NewArray([]item.Item{item.Int(1)}),
		obj("k", item.Int(1)),
	}
	lits := []item.Item{
		item.Int(0), item.Int(1), item.Int(7), item.Int(1 << 62), item.Int(math.MaxInt64),
		item.Double(0.5), item.Double(1e300), item.Double(9223372036854775808),
		item.Str(""), item.Str("a"), item.Str("m"),
		dec("10000000000000001/10000000000000000"), dec("3/2"),
	}
	ops := []string{"eq", "ne", "lt", "le", "gt", "ge"}
	fields := []string{"a", "b", "c"}

	rng := rand.New(rand.NewSource(7))
	skips := 0
	for iter := 0; iter < 2000; iter++ {
		nrows := 1 + rng.Intn(24)
		rows := make([]item.Item, nrows)
		for i := range rows {
			if rng.Intn(12) == 0 {
				rows[i] = values[rng.Intn(len(values))] // sometimes a non-object row
				if rows[i] == nil {
					rows[i] = item.Null{}
				}
				continue
			}
			var keys []string
			var vals []item.Item
			for _, f := range fields {
				v := values[rng.Intn(len(values))]
				if v == nil {
					continue
				}
				keys = append(keys, f)
				vals = append(vals, v)
			}
			rows[i] = item.NewObject(keys, vals)
		}
		// Biasing toward a narrow value range makes disjoint predicates
		// common enough that the skip branch is exercised heavily.
		if rng.Intn(2) == 0 {
			for i := range rows {
				rows[i] = obj("a", item.Int(rng.Intn(5)), "b", item.Int(100+rng.Intn(5)))
			}
		}
		preds := make([]Predicate, 1+rng.Intn(3))
		for i := range preds {
			preds[i] = Predicate{
				Field: fields[rng.Intn(len(fields))],
				Op:    ops[rng.Intn(len(ops))],
				Lit:   lits[rng.Intn(len(lits))],
			}
		}
		if requireSkipSound(t, rows, preds) {
			skips++
		}
	}
	// The property is vacuous if pruning never fires; the biased half of
	// the iterations guarantees plenty of genuinely disjoint chains.
	if skips < 100 {
		t.Fatalf("only %d of 2000 iterations skipped — generator no longer exercises pruning", skips)
	}
}

// TestSkipPinned pins the individual pruning rules, including the
// correctness hazards that force conservatism.
func TestSkipPinned(t *testing.T) {
	intRows := func(vals ...int64) []item.Item {
		rows := make([]item.Item, len(vals))
		for i, v := range vals {
			rows[i] = obj("v", item.Int(v))
		}
		return rows
	}
	meta := func(rows []item.Item) Meta { return Meta{Rows: len(rows), Cols: ZoneMaps(rows)} }
	pred := func(op string, lit item.Item) []Predicate {
		return []Predicate{{Field: "v", Op: op, Lit: lit}}
	}

	cases := []struct {
		name  string
		rows  []item.Item
		preds []Predicate
		want  bool
	}{
		{"eq outside range skips", intRows(1, 2, 10), pred("eq", item.Int(100)), true},
		{"eq inside range scans", intRows(1, 2, 10), pred("eq", item.Int(2)), false},
		{"lt below min skips", intRows(10, 20), pred("lt", item.Int(10)), true},
		{"lt reaching min scans", intRows(10, 20), pred("lt", item.Int(11)), false},
		{"gt above max skips", intRows(10, 20), pred("gt", item.Int(20)), true},
		{"ge above max skips", intRows(10, 20), pred("ge", item.Int(21)), true},
		{"le below min skips", intRows(10, 20), pred("le", item.Int(9)), true},
		{"ne constant column skips", intRows(5, 5, 5), pred("ne", item.Int(5)), true},
		{"ne varied column scans", intRows(5, 6), pred("ne", item.Int(5)), false},
		{
			"column absent everywhere skips",
			intRows(1, 2),
			[]Predicate{{Field: "nope", Op: "eq", Lit: item.Int(1)}},
			true,
		},
		{
			// Dec("1.0000000000000001") > 1 matches `v gt 1`, but its sort
			// key collapses onto 1.0 below Int(1)'s key: without the Dec
			// guard the max<=lit rule would prune the matching row away.
			"decimal declines range pruning",
			[]item.Item{obj("v", dec("10000000000000001/10000000000000000"))},
			pred("gt", item.Int(1)),
			false,
		},
		{
			// The same sub-ulp collapse from the literal side: Double(1.0)
			// satisfies `v ne 1.0000000000000001` but shares the Dec
			// literal's sort key, so ne pruning must decline.
			"decimal literal declines ne pruning",
			[]item.Item{obj("v", item.Double(1))},
			pred("ne", dec("10000000000000001/10000000000000000")),
			false,
		},
		{
			// Same hazard, eq side: equal values encode equal keys even for
			// decimals, so eq pruning stays available.
			"decimal keeps eq pruning",
			[]item.Item{obj("v", dec("10000000000000001/10000000000000000"))},
			pred("eq", item.Int(5)),
			true,
		},
		{
			// Int(2^63-1) < Double(2^63) as values, but its sort key sits
			// above Double(2^63)'s: the magnitude guard declines the prune
			// that key order would wrongly allow.
			"2^63 neighborhood declines range pruning",
			intRows(math.MaxInt64),
			pred("lt", item.Double(9223372036854775808)),
			false,
		},
		{
			"boolean in column poisons numeric predicate",
			[]item.Item{obj("v", item.Bool(true))},
			pred("eq", item.Int(5)),
			false,
		},
		{
			"number in column poisons string predicate",
			[]item.Item{obj("v", item.Int(1))},
			pred("eq", item.Str("a")),
			false,
		},
		{
			"nested value poisons predicate",
			[]item.Item{obj("v", item.NewArray(nil))},
			pred("eq", item.Int(5)),
			false,
		},
		{
			// null < 5, so `v gt 5` rejects a null row without error: the
			// range rules prune it naturally.
			"all-null column skips gt",
			[]item.Item{obj("v", item.Null{})},
			pred("gt", item.Int(5)),
			true,
		},
		{
			// ...but `v lt 5` matches null rows, so no prune.
			"all-null column scans lt",
			[]item.Item{obj("v", item.Null{})},
			pred("lt", item.Int(5)),
			false,
		},
		{
			// An unsafe first conjunct blocks pruning on a disjoint second:
			// the error the first conjunct would raise must surface.
			"unsafe earlier conjunct blocks later disjoint",
			[]item.Item{obj("v", item.Bool(true), "w", item.Int(1))},
			[]Predicate{
				{Field: "v", Op: "eq", Lit: item.Int(5)},
				{Field: "w", Op: "eq", Lit: item.Int(99)},
			},
			false,
		},
		{
			"safe earlier conjunct passes through to disjoint",
			[]item.Item{obj("v", item.Int(3), "w", item.Int(1))},
			[]Predicate{
				{Field: "v", Op: "lt", Lit: item.Int(10)},
				{Field: "w", Op: "eq", Lit: item.Int(99)},
			},
			true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Skip(meta(tc.rows), tc.preds); got != tc.want {
				t.Fatalf("Skip = %v, want %v", got, tc.want)
			}
			if tc.want {
				requireSkipSound(t, tc.rows, tc.preds)
			}
		})
	}
}

package segment

import (
	"math"

	"rumble/internal/item"
)

// Predicate is one zone-map-prunable conjunct pushed down from a vector
// pipeline's leading where run: a value comparison between a top-level
// field of the scan variable and an integer, double or string literal.
type Predicate struct {
	Field string // top-level object field the left operand looks up
	Op    string // eq, ne, lt, le, gt, ge (value comparison)
	Lit   item.Item
}

// numericLit reports whether the literal is a number (vs a string).
func (p Predicate) numericLit() bool {
	switch p.Lit.(type) {
	case item.Int, item.Double, item.Dec:
		return true
	default:
		return false
	}
}

// key returns the literal's sort key. Only Int, Double, Dec and Str
// literals are admitted by the compiler, all of which encode without
// error.
func (p Predicate) key() item.SortKey {
	sk, err := item.EncodeSortKey([]item.Item{p.Lit}, false)
	if err != nil {
		// Unreachable for admitted literal kinds; a zero key compares
		// least and can only make pruning more conservative for lt/le.
		return item.SortKey{}
	}
	return sk
}

// magnitudeGuard is the |value| bound beyond which range pruning declines:
// near 2^63 the sort-key order of int64 vs float64 values diverges from
// true value order (the float64 image of 2^63-1 rounds up to 2^63 and the
// exact-int tie-breaker zeroes out above the boundary), so keys there must
// not drive skip decisions. 2^62 leaves a whole power of two of margin.
const magnitudeGuard = float64(1 << 62)

// check evaluates the predicate against one column's zone map. safe
// reports that evaluating the predicate cannot error on any row of the
// segment; disjoint (only meaningful when safe) reports that no row can
// satisfy it. Missing and absent values never satisfy or error on a value
// comparison (the comparison absorbs them), and null compares without
// error against every literal kind, ordering below numbers and strings.
func (p Predicate) check(z ZoneMap) (safe, disjoint bool) {
	if z.Present == 0 {
		// Every row yields absent: the comparison absorbs to false.
		return true, true
	}
	if p.numericLit() {
		if z.Kinds&(KindFalse|KindTrue|KindString|KindItem) != 0 {
			return false, false
		}
	} else {
		if z.Kinds&(KindFalse|KindTrue|KindInt|KindDouble|KindDec|KindItem) != 0 {
			return false, false
		}
	}
	if !z.HasRange {
		return true, false
	}
	lit := p.key()
	min, max := z.Min.SortKey(), z.Max.SortKey()
	if nanKey(lit) || nanKey(min) || nanKey(max) {
		// NaN cannot be ingested from JSON, but never prune on one.
		return true, false
	}
	// Range and inequality pruning additionally need key order to agree
	// with value order across every pair the segment can contain:
	// decimals (in the column or as the literal) collapse sub-ulp detail
	// into their float64 image, and the 2^63 neighborhood misorders
	// int-vs-double keys, so both decline.
	_, litDec := p.Lit.(item.Dec)
	rangeExact := z.Kinds&KindDec == 0 && !litDec &&
		math.Abs(min.Num) < magnitudeGuard && math.Abs(max.Num) < magnitudeGuard &&
		math.Abs(lit.Num) < magnitudeGuard
	switch p.Op {
	case "eq":
		// Safe even with decimals: equal values always encode equal keys,
		// so a literal outside [min, max] matches no row.
		return true, lit.Compare(min) < 0 || lit.Compare(max) > 0
	case "ne":
		// Prune only when every key equals the literal's key and key
		// equality implies value equality (rangeExact). Null rows would
		// satisfy ne against a non-null literal, but their key differs
		// from any admitted literal's, so min == max == lit excludes them.
		return true, rangeExact && min.Compare(lit) == 0 && max.Compare(lit) == 0
	case "lt":
		return true, rangeExact && min.Compare(lit) >= 0
	case "le":
		return true, rangeExact && min.Compare(lit) > 0
	case "gt":
		return true, rangeExact && max.Compare(lit) <= 0
	case "ge":
		return true, rangeExact && max.Compare(lit) < 0
	default:
		return false, false
	}
}

func nanKey(k item.SortKey) bool {
	return math.IsNaN(k.Num) || (k.Tag == item.TagNumber && k.Str == item.NaNStr)
}

// Skip reports whether the ordered conjunct chain preds allows skipping
// the whole segment described by meta. Conjuncts evaluate left to right
// with and-semantics, so the segment skips exactly when some conjunct is
// provably unsatisfiable by every row while all conjuncts before it are
// provably error-free — rows failing the disjoint conjunct never reach
// anything downstream, so neither results nor error selection change.
func Skip(meta Meta, preds []Predicate) bool {
	for _, p := range preds {
		z, ok := meta.Zone(p.Field)
		if !ok {
			// The column appears nowhere in the segment: every row yields
			// absent, so the conjunct is error-free and nothing passes.
			return true
		}
		safe, disjoint := p.check(z)
		if !safe {
			return false
		}
		if disjoint {
			return true
		}
	}
	return false
}
